// Tests for fault injection and self-healing admission: the
// ResourceBudget fail/repair semantics (capacity-to-zero, stranded
// reporting through the provenance ledgers, bit-identical restore),
// FaultState XML round-trips with legacy byte-stability, the admission
// controller's evacuate/re-admit recovery with its per-client verdicts,
// the fault-epoch plan-cache regression (a stale plan must never replay
// onto a failed platform), the LRU-bounded plan cache, and the
// x125-seed fail/repair/admit/depart property wall.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "apps/suite/churn.hpp"
#include "mapping/admission.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "platform/fault.hpp"
#include "platform/io.hpp"
#include "platform/resource_budget.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace mamps::mapping {
namespace {

using platform::FaultState;
using platform::InterconnectKind;
using platform::ResourceBudget;
using platform::TdmConfig;
using platform::TileId;

platform::Architecture stockArch(std::uint32_t tiles, InterconnectKind kind,
                                 std::uint32_t fslMaxLinks = 0) {
  platform::TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = kind;
  request.fslMaxLinks = fslMaxLinks;
  return platform::generateFromTemplate(request);
}

platform::Architecture tdmArch(std::uint32_t tiles, std::uint32_t slotsPerWheel) {
  platform::TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = InterconnectKind::Fsl;
  return platform::generateFromTemplate(platform::withTdm(request, slotsPerWheel, 100));
}

// The suite workload is expensive to prepare (per-application analysis)
// and immutable — share one instance across every test in this file.
const suite::ChurnWorkload& sharedWorkload() {
  static const suite::ChurnWorkload workload = suite::suiteChurnWorkload();
  return workload;
}

// ------------------------------------------------ budget: tile failures

TEST(FaultBudgetTest, FailTileDropsCapacityAndRepairRestoresBitIdentically) {
  const auto arch = stockArch(3, InterconnectKind::Fsl);
  ResourceBudget budget(arch);
  budget.commitBaseline(runtimeLayerInstrBytes(), runtimeLayerDataBytes());
  const ResourceBudget healthy = budget;

  EXPECT_TRUE(budget.failTile(1).empty());  // nobody was on it
  EXPECT_TRUE(budget.tileFailed(1));
  EXPECT_FALSE(budget.tileAvailable(1, /*client=*/0));
  EXPECT_EQ(budget.freeTileSlots(1), 0u);
  EXPECT_EQ(budget.freeInstrBytes(1), 0u);
  EXPECT_EQ(budget.freeDataBytes(1), 0u);
  EXPECT_THROW(budget.reserveTileSlots(1, 0, 1), Error);
  EXPECT_THROW(budget.commitTile(1, 0, 100, 64, 64), Error);
  EXPECT_FALSE(budget == healthy);  // an outstanding failure is visible

  // Double-fail and not-failed repair are caller bugs.
  EXPECT_THROW((void)budget.failTile(1), Error);
  EXPECT_THROW(budget.repairTile(0), Error);

  budget.repairTile(1);
  EXPECT_TRUE(budget == healthy);  // fail -> repair touched nothing else
}

TEST(FaultBudgetTest, FailTileReportsExactlyTheStrandedClients) {
  const auto arch = stockArch(3, InterconnectKind::Fsl);
  ResourceBudget budget(arch);
  budget.commitTile(0, /*client=*/7, 100, 64, 64);
  budget.commitTile(1, /*client=*/3, 100, 64, 64);
  budget.commitTile(1, /*client=*/3, 100, 64, 64);  // same client again

  const auto stranded = budget.failTile(1);
  ASSERT_EQ(stranded.size(), 1u);
  EXPECT_EQ(stranded[0], 3u);
  EXPECT_EQ(budget.strandedClients(), stranded);

  // Client 7 (tile 0) is untouched; evacuating 3 clears the stranding.
  budget.release(3);
  EXPECT_TRUE(budget.strandedClients().empty());
  budget.repairTile(1);
}

// ------------------------------------------------- budget: NoC failures

TEST(FaultBudgetTest, FailedNocLinkBlocksRoutesAndReportsWireHolders) {
  const auto arch = stockArch(4, InterconnectKind::NocMesh);
  ResourceBudget budget(arch);
  const auto route = budget.nocTopology().xyRoute(0, 3);
  ASSERT_FALSE(route.empty());
  ASSERT_TRUE(budget.reserveNocWires(route, 2, /*client=*/5));

  const auto stranded = budget.failNocLink(route.front());
  ASSERT_EQ(stranded.size(), 1u);
  EXPECT_EQ(stranded[0], 5u);

  // No new wires across the failed link, even though capacity remains.
  EXPECT_FALSE(budget.reserveNocWires(route, 1, /*client=*/6));
  budget.repairNocLink(route.front());
  EXPECT_TRUE(budget.reserveNocWires(route, 1, /*client=*/6));

  EXPECT_THROW((void)budget.failNocLink(9999), Error);
  EXPECT_THROW(budget.repairNocLink(route.front()), Error);
}

// ------------------------------------------------- budget: FSL failures

TEST(FaultBudgetTest, FailedFslIndicesAreSkippedAndShrinkTheCapacity) {
  const auto arch = stockArch(2, InterconnectKind::Fsl, /*fslMaxLinks=*/3);
  ResourceBudget budget(arch);

  // Fail index 0 while it is unminted: allocation must skip it.
  EXPECT_TRUE(budget.failFslLink(0).empty());
  EXPECT_EQ(budget.fslLinksAvailable(), 2u);
  EXPECT_EQ(budget.allocateFslLink(/*client=*/1), 1u);
  EXPECT_EQ(budget.allocateFslLink(/*client=*/1), 2u);
  // Capacity 3 minus one dead index: a third live link cannot exist.
  EXPECT_EQ(budget.fslLinksAvailable(), 0u);
  EXPECT_THROW((void)budget.allocateFslLink(1), Error);

  // Repair returns the index to circulation, lowest-first.
  budget.repairFslLink(0);
  EXPECT_EQ(budget.allocateFslLink(/*client=*/2), 0u);

  // Failing a LIVE link reports its (single) holder.
  const auto stranded = budget.failFslLink(2);
  ASSERT_EQ(stranded.size(), 1u);
  EXPECT_EQ(stranded[0], 1u);
  EXPECT_EQ(budget.strandedClients(), stranded);
}

TEST(FaultBudgetTest, FslFailAllocateReleaseRepairRestoresPristine) {
  const auto arch = stockArch(2, InterconnectKind::Fsl, /*fslMaxLinks=*/4);
  ResourceBudget budget(arch);
  const ResourceBudget pristine = budget;

  // The parking path: failing a free index forces the next mint to skip
  // it onto the free-list; release() renormalizes the tail; repair must
  // land back on bit-identical pristine.
  EXPECT_TRUE(budget.failFslLink(0).empty());
  EXPECT_EQ(budget.allocateFslLink(/*client=*/9), 1u);
  budget.release(9);
  budget.repairFslLink(0);
  EXPECT_TRUE(budget == pristine);
}

// --------------------------------------------- budget: degraded wheels

TEST(FaultBudgetTest, DegradedWheelShrinksCapacityAndStrandsOverCommit) {
  const auto arch = tdmArch(2, /*slotsPerWheel=*/4);
  ResourceBudget budget(arch);
  budget.reserveTileSlots(0, /*client=*/11, 3);

  // Degrading to 3 still fits the reservation: nobody is stranded.
  TdmConfig threeSlots{3, 150};
  EXPECT_TRUE(budget.degradeTileWheel(0, threeSlots).empty());
  EXPECT_EQ(budget.tileSlotCapacity(0), 3u);
  EXPECT_EQ(budget.tileWheelOverheadCycles(0), 150u);
  EXPECT_EQ(budget.freeTileSlots(0), 0u);
  budget.repairTileWheel(0);
  EXPECT_EQ(budget.tileSlotCapacity(0), 4u);
  EXPECT_EQ(budget.tileWheelOverheadCycles(0), 100u);

  // Degrading below the committed slots strands every holder.
  TdmConfig twoSlots{2, 100};
  const auto stranded = budget.degradeTileWheel(0, twoSlots);
  ASSERT_EQ(stranded.size(), 1u);
  EXPECT_EQ(stranded[0], 11u);
  EXPECT_EQ(budget.strandedClients(), stranded);
  budget.repairTileWheel(0);

  // Invalid degraded wheels are model errors.
  EXPECT_THROW((void)budget.degradeTileWheel(0, TdmConfig{0, 0}), ModelError);
  EXPECT_THROW((void)budget.degradeTileWheel(0, TdmConfig{5, 0}), ModelError);
}

// ----------------------------------------------------- XML round-trips

TEST(FaultXmlTest, LegacyDocumentsStayByteStableOnRewrite) {
  for (const InterconnectKind kind : {InterconnectKind::NocMesh, InterconnectKind::Fsl}) {
    const auto arch = stockArch(4, kind);
    const std::string xml = platform::architectureToXml(arch);
    // No fault attributes appear in a healthy document...
    EXPECT_EQ(xml.find("failed"), std::string::npos);
    EXPECT_EQ(xml.find("degraded"), std::string::npos);
    // ...the fault-aware writer with an empty state is byte-identical...
    EXPECT_EQ(platform::architectureToXml(arch, FaultState{}), xml);
    // ...and parse -> rewrite is byte-stable, via both entry points.
    EXPECT_EQ(platform::architectureToXml(platform::architectureFromString(xml)), xml);
    const auto parsed = platform::architectureWithFaultsFromString(xml);
    EXPECT_TRUE(parsed.faults.empty());
    EXPECT_EQ(platform::architectureToXml(parsed.arch, parsed.faults), xml);
  }
}

TEST(FaultXmlTest, NocFaultAnnotationsRoundTrip) {
  const auto arch = stockArch(4, InterconnectKind::NocMesh);
  FaultState faults;
  faults.failedTiles = {1, 3};
  faults.failedNocLinks = {0, 2, 5};
  faults.degradedTdm.emplace(2, TdmConfig{1, 40});
  faults.validate(arch);

  const std::string xml = platform::architectureToXml(arch, faults);
  EXPECT_NE(xml.find("failed=\"true\""), std::string::npos);
  EXPECT_NE(xml.find("failedLinks=\"0,2,5\""), std::string::npos);

  const auto parsed = platform::architectureWithFaultsFromString(xml);
  EXPECT_TRUE(parsed.faults == faults);
  // Round-trip again: the annotated document is itself byte-stable.
  EXPECT_EQ(platform::architectureToXml(parsed.arch, parsed.faults), xml);
}

TEST(FaultXmlTest, FslFaultAnnotationsRoundTrip) {
  const auto arch = stockArch(3, InterconnectKind::Fsl, /*fslMaxLinks=*/8);
  FaultState faults;
  faults.failedFslLinks = {0, 7};
  faults.validate(arch);

  const std::string xml = platform::architectureToXml(arch, faults);
  const auto parsed = platform::architectureWithFaultsFromString(xml);
  EXPECT_TRUE(parsed.faults == faults);
  EXPECT_EQ(platform::architectureToXml(parsed.arch, parsed.faults), xml);
}

TEST(FaultXmlTest, ValidationRejectsFaultsThePlatformCannotHave) {
  const auto noc = stockArch(4, InterconnectKind::NocMesh);
  const auto fsl = stockArch(4, InterconnectKind::Fsl, /*fslMaxLinks=*/4);

  FaultState badTile;
  badTile.failedTiles = {99};
  EXPECT_THROW(badTile.validate(noc), ModelError);

  FaultState nocOnFsl;
  nocOnFsl.failedNocLinks = {0};
  EXPECT_THROW(nocOnFsl.validate(fsl), ModelError);

  FaultState fslOnNoc;
  fslOnNoc.failedFslLinks = {0};
  EXPECT_THROW(fslOnNoc.validate(noc), ModelError);

  FaultState fslRange;
  fslRange.failedFslLinks = {4};
  EXPECT_THROW(fslRange.validate(fsl), ModelError);

  FaultState badWheel;
  badWheel.degradedTdm.emplace(0, TdmConfig{7, 0});  // built with 1 slot
  EXPECT_THROW(badWheel.validate(noc), ModelError);
}

// --------------------------------------- controller: evacuate + recover

TEST(FaultAdmissionTest, SingleTileFailureEvacuatesAndRecovers) {
  const suite::ChurnWorkload& workload = sharedWorkload();
  const auto arch = platform::generateFromTemplate(platform::largeMeshPreset(12));
  AdmissionController controller(arch);

  // Fill residents from the suite mix (whichever instances fit — a
  // rejection on the shared platform is a legitimate outcome).
  std::vector<ClientId> admitted;
  for (std::size_t app = 0; app < workload.caches.size(); ++app) {
    const AdmissionDecision d = controller.admit(workload.caches[app], workload.options[app]);
    if (d.admitted()) {
      admitted.push_back(*d.client);
    }
  }
  ASSERT_GE(admitted.size(), 2u);

  // Fail a tile the first resident actually uses.
  const MappingResult& victim = controller.resident(admitted.front());
  const TileId failed = victim.mapping.actorToTile.front();
  const RecoveryReport report =
      controller.injectFault(FaultEvent::tileFailure(failed));

  ASSERT_FALSE(report.stranded.empty());
  EXPECT_EQ(report.stranded.size(), report.recovered.size() + report.degraded.size());
  EXPECT_GE(report.recovered.size(), 1u);  // the residual has room to heal
  EXPECT_EQ(report.verdicts.size(), admitted.size());
  EXPECT_EQ(controller.faultEpoch(), 1u);

  // Nothing resident references the failed tile, and every recovered
  // guarantee still composes.
  EXPECT_TRUE(controller.budget().strandedClients().empty());
  for (const ClientId client : controller.residentIds()) {
    const auto* ledger = controller.budget().ledger(client);
    ASSERT_NE(ledger, nullptr);
    EXPECT_EQ(ledger->tiles.count(failed), 0u);
    EXPECT_TRUE(controller.resident(client).meetsConstraint);
    for (const TileId t : controller.resident(client).mapping.actorToTile) {
      EXPECT_NE(t, failed);
    }
  }
  for (const ClientId client : report.recovered) {
    EXPECT_EQ(report.verdicts.at(client), RecoveryOutcome::Recovered);
  }

  // fail -> repair -> drain lands on bit-identical pristine.
  controller.repair(FaultEvent::tileFailure(failed));
  EXPECT_EQ(controller.faultEpoch(), 2u);
  for (const ClientId client : controller.residentIds()) {
    controller.depart(client);
  }
  EXPECT_TRUE(controller.pristine());
  EXPECT_EQ(controller.stats().evacuated,
            controller.stats().recovered + controller.stats().degradedClients);
}

// Regression (pre-fix failure): replayAdmission re-committed a recorded
// plan without re-validating resource liveness. With the plan cache
// keyed only by the reservation signature, "admit -> depart -> fail
// tile -> admit" reproduced the original residual signature and
// replayed the stale plan straight onto the failed tile. The fault
// epoch in the decision key forces a miss and a fresh (fault-aware)
// recompute.
TEST(FaultAdmissionTest, StalePlanNeverReplaysOntoAFailedTile) {
  const suite::ChurnWorkload& workload = sharedWorkload();
  const auto arch = platform::generateFromTemplate(platform::largeMeshPreset(12));
  AdmissionController controller(arch);
  const std::size_t app = 0;

  const AdmissionDecision first = controller.admit(workload.caches[app], workload.options[app]);
  ASSERT_TRUE(first.admitted());
  const TileId failed = first.result->mapping.actorToTile.front();
  controller.depart(*first.client);

  // Sanity: on the unchanged platform the decision IS replayed.
  const AdmissionDecision replay = controller.admit(workload.caches[app], workload.options[app]);
  ASSERT_TRUE(replay.admitted());
  EXPECT_TRUE(replay.planCacheHit);
  controller.depart(*replay.client);

  // Now the platform changes underneath the cache: the same residual
  // signature, but the plan's tile is gone.
  (void)controller.injectFault(FaultEvent::tileFailure(failed));
  const AdmissionDecision after = controller.admit(workload.caches[app], workload.options[app]);
  EXPECT_FALSE(after.planCacheHit);  // epoch changed: stale plan cannot hit
  ASSERT_TRUE(after.admitted());     // 11 healthy tiles remain
  for (const TileId t : after.result->mapping.actorToTile) {
    EXPECT_NE(t, failed);
  }
  const auto* ledger = controller.budget().ledger(*after.client);
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->tiles.count(failed), 0u);
}

TEST(FaultAdmissionTest, RecoveryHeadroomHoldsBackAdmissionsButNotRecovery) {
  const suite::ChurnWorkload& workload = sharedWorkload();
  const auto arch = platform::generateFromTemplate(platform::largeMeshPreset(12));

  // Measure the application's tile footprint on the empty platform,
  // then reserve everything beyond it: the first instance exactly
  // reaches the headroom boundary and the second must cross it.
  std::size_t footprint = 0;
  {
    AdmissionController probe(arch);
    const AdmissionDecision d = probe.admit(workload.caches[0], workload.options[0]);
    ASSERT_TRUE(d.admitted());
    footprint = probe.budget().ledger(*d.client)->tiles.size();
    ASSERT_GE(footprint, 1u);
  }
  AdmissionOptions options;
  options.recovery.spareTiles = static_cast<std::uint32_t>(12 - footprint);
  AdmissionController controller(arch, options);

  // The first instance fits exactly inside the headroom...
  const AdmissionDecision a = controller.admit(workload.caches[0], workload.options[0]);
  ASSERT_TRUE(a.admitted());
  // ...the second would eat into the reserve and is rejected for it.
  const AdmissionDecision b = controller.admit(workload.caches[0], workload.options[0]);
  ASSERT_FALSE(b.admitted());
  EXPECT_NE(b.reason.find("headroom"), std::string::npos);

  // Recovery bypasses the headroom: the evacuated resident re-lands
  // even though a normal admission would be rejected in this state.
  const TileId failed = controller.resident(*a.client).mapping.actorToTile.front();
  const RecoveryReport report = controller.injectFault(FaultEvent::tileFailure(failed));
  ASSERT_EQ(report.stranded.size(), 1u);
  ASSERT_EQ(report.recovered.size(), 1u);
  EXPECT_EQ(report.recovered.front(), *a.client);
  EXPECT_TRUE(controller.resident(*a.client).meetsConstraint);
}

// ------------------------------------------- satellite: LRU plan cache

TEST(FaultAdmissionTest, TinyLruCapIsBitIdenticalToCacheOff) {
  const suite::ChurnWorkload& workload = sharedWorkload();
  const auto arch = platform::generateFromTemplate(platform::largeMeshPreset(12));

  AdmissionOptions capped;
  capped.planCacheCapacity = 1;  // evicts on almost every decision
  AdmissionOptions off;
  off.planCache = false;
  AdmissionController a(arch, capped);
  AdmissionController b(arch, off);

  // Same alternating admit/depart sequence on both controllers: every
  // decision must match field-for-field (an eviction only ever costs a
  // recompute, never changes an outcome).
  Rng rng(7);
  std::vector<ClientId> residentsA;
  std::vector<ClientId> residentsB;
  for (int i = 0; i < 40; ++i) {
    if (!residentsA.empty() && rng.chance(0.4)) {
      const std::size_t pick = static_cast<std::size_t>(rng.range(0, residentsA.size() - 1));
      a.depart(residentsA[pick]);
      b.depart(residentsB[pick]);
      residentsA.erase(residentsA.begin() + static_cast<std::ptrdiff_t>(pick));
      residentsB.erase(residentsB.begin() + static_cast<std::ptrdiff_t>(pick));
      continue;
    }
    const std::size_t app = static_cast<std::size_t>(rng.range(0, workload.caches.size() - 1));
    const AdmissionDecision da = a.admit(workload.caches[app], workload.options[app]);
    const AdmissionDecision db = b.admit(workload.caches[app], workload.options[app]);
    ASSERT_EQ(da.admitted(), db.admitted());
    if (da.admitted()) {
      EXPECT_EQ(da.result->mapping.actorToTile, db.result->mapping.actorToTile);
      EXPECT_EQ(da.result->throughput.iterationsPerCycle,
                db.result->throughput.iterationsPerCycle);
      residentsA.push_back(*da.client);
      residentsB.push_back(*db.client);
    }
    EXPECT_TRUE(a.budget() == b.budget());
  }
  EXPECT_LE(a.planCacheSize(), 1u);
  EXPECT_GT(a.stats().planCacheEvictions, 0u);
  EXPECT_EQ(b.stats().planCacheHits, 0u);
}

// ------------------------------------------------ fault churn (suite)

TEST(FaultChurnTest, SeededFaultChurnConservesTheBudget) {
  const suite::ChurnWorkload& workload = sharedWorkload();
  const auto arch = platform::generateFromTemplate(platform::largeMeshPreset(12));
  AdmissionController controller(arch);

  suite::ChurnOptions options;
  options.seed = 42;
  options.events = 300;
  options.faultChance = 0.08;
  options.repairChance = 0.25;
  const suite::ChurnResult result = suite::runChurnTrace(controller, workload, options);

  EXPECT_TRUE(result.pristineAfterDrain);
  EXPECT_GT(result.stats.faultsInjected, 0u);
  EXPECT_EQ(result.stats.faultsInjected, result.stats.repairs);
  EXPECT_EQ(result.stats.evacuated, result.stats.recovered + result.stats.degradedClients);

  std::size_t faultEvents = 0;
  for (const suite::ChurnEvent& event : result.trace) {
    if (event.kind == suite::ChurnEvent::Kind::Fault) {
      ++faultEvents;
      EXPECT_EQ(event.strandedCount, event.recoveredCount + event.degradedCount);
    }
  }
  EXPECT_EQ(faultEvents, result.stats.faultsInjected);
}

TEST(FaultChurnTest, FaultFreeTraceIsBitIdenticalToLegacy) {
  // faultChance = 0 must not consume a single extra RNG draw: the trace
  // (event for event) matches a controller run with the legacy options.
  const suite::ChurnWorkload& workload = sharedWorkload();
  const auto arch = platform::generateFromTemplate(platform::largeMeshPreset(12));

  suite::ChurnOptions legacy;
  legacy.seed = 11;
  legacy.events = 120;
  AdmissionController a(arch);
  const suite::ChurnResult withDefaults = suite::runChurnTrace(a, workload, legacy);

  suite::ChurnOptions zeroed = legacy;
  zeroed.faultChance = 0.0;
  zeroed.repairChance = 0.0;
  AdmissionController b(arch);
  const suite::ChurnResult withZeroKnobs = suite::runChurnTrace(b, workload, zeroed);

  ASSERT_EQ(withDefaults.trace.size(), withZeroKnobs.trace.size());
  for (std::size_t i = 0; i < withDefaults.trace.size(); ++i) {
    EXPECT_EQ(withDefaults.trace[i].kind, withZeroKnobs.trace[i].kind);
    EXPECT_EQ(withDefaults.trace[i].client, withZeroKnobs.trace[i].client);
    EXPECT_EQ(withDefaults.trace[i].admitted, withZeroKnobs.trace[i].admitted);
  }
  EXPECT_TRUE(withDefaults.pristineAfterDrain);
  EXPECT_TRUE(withZeroKnobs.pristineAfterDrain);
}

// ------------------------------- x125 fail/repair/admit/depart property

class FaultChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Any seeded interleaving of admissions, departures, tile failures, and
// repairs: no client is ever left on a failed resource, recovered
// guarantees still compose, and repair-all + drain lands on
// bit-identical pristine.
TEST_P(FaultChurnProperty, NeverStrandsNeverLeaksAlwaysComposes) {
  const suite::ChurnWorkload& workload = sharedWorkload();
  static const platform::Architecture arch =
      platform::generateFromTemplate(platform::largeMeshPreset(6));
  AdmissionController controller(arch);

  Rng rng(GetParam());
  std::vector<FaultEvent> outstanding;
  const std::size_t steps = 12 + rng.range(0, 12);
  for (std::size_t i = 0; i < steps; ++i) {
    switch (rng.range(0, 4)) {
      case 0:
      case 1: {  // arrival
        const std::size_t app =
            static_cast<std::size_t>(rng.range(0, workload.caches.size() - 1));
        (void)controller.admit(workload.caches[app], workload.options[app]);
        break;
      }
      case 2: {  // departure
        const auto residents = controller.residentIds();
        if (!residents.empty()) {
          controller.depart(
              residents[static_cast<std::size_t>(rng.range(0, residents.size() - 1))]);
        }
        break;
      }
      case 3: {  // fault: a healthy tile fails (keep one tile alive)
        if (outstanding.size() + 1 >= arch.tileCount()) {
          break;
        }
        std::vector<TileId> healthy;
        for (TileId t = 0; t < arch.tileCount(); ++t) {
          if (!controller.budget().tileFailed(t)) {
            healthy.push_back(t);
          }
        }
        const TileId tile =
            healthy[static_cast<std::size_t>(rng.range(0, healthy.size() - 1))];
        const FaultEvent fault = FaultEvent::tileFailure(tile);
        (void)controller.injectFault(fault);
        outstanding.push_back(fault);
        break;
      }
      default: {  // repair a random outstanding failure
        if (!outstanding.empty()) {
          const std::size_t pick =
              static_cast<std::size_t>(rng.range(0, outstanding.size() - 1));
          controller.repair(outstanding[pick]);
          outstanding.erase(outstanding.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        break;
      }
    }

    // Invariants after EVERY event: no resident on a failed resource,
    // and every resident's guarantee (re-analyzed at recovery time for
    // recovered clients) still meets its constraint.
    EXPECT_TRUE(controller.budget().strandedClients().empty());
    for (const ClientId client : controller.residentIds()) {
      const auto* ledger = controller.budget().ledger(client);
      ASSERT_NE(ledger, nullptr);
      for (const auto& [tile, share] : ledger->tiles) {
        EXPECT_FALSE(controller.budget().tileFailed(tile));
      }
      EXPECT_TRUE(controller.resident(client).meetsConstraint);
    }
  }

  // Repair everything, drain everyone: bit-identical pristine.
  for (const FaultEvent& fault : outstanding) {
    controller.repair(fault);
  }
  for (const ClientId client : controller.residentIds()) {
    controller.depart(client);
  }
  EXPECT_TRUE(controller.pristine());
  EXPECT_EQ(controller.stats().evacuated,
            controller.stats().recovered + controller.stats().degradedClients);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultChurnProperty, ::testing::Range<std::uint64_t>(0, 125));

}  // namespace
}  // namespace mamps::mapping
