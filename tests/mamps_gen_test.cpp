// Tests for the MAMPS platform generator: memory sizing, hardware and
// software artifact generation, and the project driver.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "mamps/generator.hpp"
#include "mamps/hwgen.hpp"
#include "mamps/memory_map.hpp"
#include "mamps/project.hpp"
#include "mamps/swgen.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "test_util.hpp"

namespace mamps::gen {
namespace {

using mapping::MappingResult;
using platform::InterconnectKind;

struct Fixture {
  sdf::ApplicationModel app;
  platform::Architecture arch;
  MappingResult result;
};

Fixture makeFixture(std::uint32_t tiles, InterconnectKind kind) {
  Fixture f{test::makeAppModel(test::figure2Graph(), {500, 800, 400}), {}, {}};
  platform::TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = kind;
  f.arch = platform::generateFromTemplate(request);
  auto mapped = mapping::mapApplication(f.app, f.arch, {});
  if (!mapped) {
    throw Error("fixture mapping failed");
  }
  f.result = std::move(*mapped);
  return f;
}

// -------------------------------------------------------------- MemoryMap

TEST(MemoryMapTest, RoundToBramIsPowerOfTwo) {
  EXPECT_EQ(roundToBram(0), 1024u);
  EXPECT_EQ(roundToBram(1024), 1024u);
  EXPECT_EQ(roundToBram(1025), 2048u);
  EXPECT_EQ(roundToBram(100000), 131072u);
}

TEST(MemoryMapTest, IncludesRuntimeLayerAndActors) {
  const Fixture f = makeFixture(2, InterconnectKind::Fsl);
  const auto maps = computeMemoryMaps(f.app, f.arch, f.result.mapping);
  ASSERT_EQ(maps.size(), 2u);
  for (const TileMemoryMap& m : maps) {
    EXPECT_EQ(m.runtimeInstrBytes, mapping::runtimeLayerInstrBytes());
    EXPECT_GE(m.instrBytes(), m.runtimeInstrBytes);
  }
  // All actor code lives somewhere.
  std::uint32_t totalActorInstr = 0;
  for (const TileMemoryMap& m : maps) {
    totalActorInstr += m.actorInstrBytes;
  }
  EXPECT_EQ(totalActorInstr, 3u * 4096u);
}

TEST(MemoryMapTest, InterTileBuffersSplitAcrossTiles) {
  const Fixture f = makeFixture(3, InterconnectKind::Fsl);
  const auto maps = computeMemoryMaps(f.app, f.arch, f.result.mapping);
  // Every inter-tile channel contributes alpha_src and alpha_dst bytes.
  std::uint64_t expected = 0;
  for (sdf::ChannelId c = 0; c < f.app.graph().channelCount(); ++c) {
    const auto& route = f.result.mapping.channelRoutes[c];
    const auto& channel = f.app.graph().channel(c);
    if (route.interTile) {
      expected += (f.result.mapping.srcBufferTokens[c] + f.result.mapping.dstBufferTokens[c]) *
                  channel.tokenSizeBytes;
    } else if (!channel.isSelfEdge()) {
      expected += f.result.mapping.localCapacityTokens[c] * channel.tokenSizeBytes;
    } else {
      expected += channel.initialTokens * channel.tokenSizeBytes;
    }
  }
  std::uint64_t total = 0;
  for (const TileMemoryMap& m : maps) {
    total += m.bufferBytes;
  }
  EXPECT_EQ(total, expected);
}

TEST(MemoryMapTest, OverflowDetected) {
  Fixture f = makeFixture(1, InterconnectKind::Fsl);
  // Shrink the tile below what is needed.
  platform::Architecture tiny("tiny");
  platform::Tile t = f.arch.tile(0);
  t.memory = {8 * 1024, 2 * 1024};
  tiny.addTile(t);
  EXPECT_THROW(computeMemoryMaps(f.app, tiny, f.result.mapping), GenerationError);
}

// ------------------------------------------------------------------ HW gen

TEST(HwGenTest, MhsListsAllTilesAndLinks) {
  const Fixture f = makeFixture(2, InterconnectKind::Fsl);
  const auto maps = computeMemoryMaps(f.app, f.arch, f.result.mapping);
  const std::string mhs = generateSystemMhs(f.app, f.arch, f.result.mapping, maps);
  EXPECT_NE(mhs.find("tile0_pe"), std::string::npos);
  EXPECT_NE(mhs.find("tile1_pe"), std::string::npos);
  EXPECT_NE(mhs.find("xps_uartlite"), std::string::npos);  // master peripherals
  // One FSL instance per inter-tile channel.
  std::size_t fslCount = 0;
  for (const auto& route : f.result.mapping.channelRoutes) {
    fslCount += route.interTile ? 1 : 0;
  }
  std::size_t found = 0;
  for (std::size_t pos = 0; (pos = mhs.find("BEGIN fsl_v20", pos)) != std::string::npos; ++pos) {
    ++found;
  }
  EXPECT_EQ(found, fslCount);
}

TEST(HwGenTest, NocMhsDescribesMesh) {
  const Fixture f = makeFixture(4, InterconnectKind::NocMesh);
  const auto maps = computeMemoryMaps(f.app, f.arch, f.result.mapping);
  const std::string mhs = generateSystemMhs(f.app, f.arch, f.result.mapping, maps);
  EXPECT_NE(mhs.find("sdm_noc"), std::string::npos);
  EXPECT_NE(mhs.find("C_ROWS = 2"), std::string::npos);
  EXPECT_NE(mhs.find("C_COLS = 2"), std::string::npos);
  EXPECT_NE(mhs.find("C_FLOW_CONTROL = 1"), std::string::npos);
}

TEST(HwGenTest, VhdlMentionsRoutersAndConnections) {
  const Fixture f = makeFixture(4, InterconnectKind::NocMesh);
  const std::string vhdl = generateInterconnectVhdl(f.app, f.arch, f.result.mapping);
  EXPECT_NE(vhdl.find("router_0"), std::string::npos);
  EXPECT_NE(vhdl.find("router_3"), std::string::npos);
  EXPECT_NE(vhdl.find("wires"), std::string::npos);
}

// ------------------------------------------------------------------ SW gen

TEST(SwGenTest, ChannelsHeaderHasAllChannels) {
  const Fixture f = makeFixture(2, InterconnectKind::Fsl);
  const std::string header = generateChannelsHeader(f.app, f.arch, f.result.mapping);
  for (const sdf::Channel& c : f.app.graph().channels()) {
    EXPECT_NE(header.find(c.name), std::string::npos) << c.name;
  }
  EXPECT_NE(header.find("TOKEN_SIZE_"), std::string::npos);
}

TEST(SwGenTest, TileMainContainsScheduleInOrder) {
  const Fixture f = makeFixture(1, InterconnectKind::Fsl);
  const std::string main0 = generateTileMain(f.app, f.arch, f.result.mapping, 0);
  // Schedule table must list one wrapper call per firing, in order.
  const auto& schedule = f.result.mapping.schedules[0];
  std::size_t pos = main0.find("schedule[");
  ASSERT_NE(pos, std::string::npos);
  for (const sdf::ActorId a : schedule) {
    const std::string entry = "wrap_" + f.app.graph().actor(a).name + ",";
    pos = main0.find(entry, pos);
    EXPECT_NE(pos, std::string::npos) << entry;
  }
}

TEST(SwGenTest, WrappersSendAndReceiveInterTileTokens) {
  const Fixture f = makeFixture(3, InterconnectKind::Fsl);
  bool sawSend = false;
  bool sawReceive = false;
  for (platform::TileId t = 0; t < f.arch.tileCount(); ++t) {
    const std::string code = generateTileMain(f.app, f.arch, f.result.mapping, t);
    sawSend = sawSend || code.find("mamps_send_token") != std::string::npos;
    sawReceive = sawReceive || code.find("mamps_receive_token") != std::string::npos;
  }
  EXPECT_TRUE(sawSend);
  EXPECT_TRUE(sawReceive);
}

TEST(SwGenTest, MainLoopIsEndless) {
  const Fixture f = makeFixture(1, InterconnectKind::Fsl);
  const std::string code = generateTileMain(f.app, f.arch, f.result.mapping, 0);
  EXPECT_NE(code.find("for (;;)"), std::string::npos);
  EXPECT_NE(code.find("mamps_runtime_init"), std::string::npos);
}

// ----------------------------------------------------------------- Project

TEST(ProjectTest, TclTargetsVirtex6) {
  const Fixture f = makeFixture(2, InterconnectKind::Fsl);
  const std::string tcl = generateXpsTcl(f.arch);
  EXPECT_NE(tcl.find("virtex6"), std::string::npos);
  EXPECT_NE(tcl.find("run bits"), std::string::npos);
  EXPECT_NE(tcl.find("tile0_sw"), std::string::npos);
  EXPECT_NE(tcl.find("tile1_sw"), std::string::npos);
}

TEST(ProjectTest, ManifestDescribesBinding) {
  const Fixture f = makeFixture(2, InterconnectKind::Fsl);
  const std::string manifest = generateManifest(f.app, f.arch, f.result.mapping);
  for (const sdf::Actor& a : f.app.graph().actors()) {
    EXPECT_NE(manifest.find(a.name), std::string::npos);
  }
}

TEST(GeneratorTest, ProducesAllArtifacts) {
  const Fixture f = makeFixture(2, InterconnectKind::Fsl);
  const PlatformProject project = generatePlatform(f.app, f.arch, f.result.mapping);
  EXPECT_TRUE(project.files.contains("hw/system.mhs"));
  EXPECT_TRUE(project.files.contains("hw/interconnect.vhd"));
  EXPECT_TRUE(project.files.contains("sw/include/channels.h"));
  EXPECT_TRUE(project.files.contains("sw/tile0/main.c"));
  EXPECT_TRUE(project.files.contains("sw/tile1/main.c"));
  EXPECT_TRUE(project.files.contains("build.tcl"));
  EXPECT_TRUE(project.files.contains("MANIFEST.txt"));
  EXPECT_GT(project.generationTime.count(), 0.0);
}

TEST(GeneratorTest, WritesFilesToDisk) {
  const Fixture f = makeFixture(2, InterconnectKind::Fsl);
  const PlatformProject project = generatePlatform(f.app, f.arch, f.result.mapping);
  const auto dir = std::filesystem::temp_directory_path() / "mamps_gen_test";
  std::filesystem::remove_all(dir);
  project.writeTo(dir.string());
  EXPECT_TRUE(std::filesystem::exists(dir / "hw" / "system.mhs"));
  EXPECT_TRUE(std::filesystem::exists(dir / "sw" / "tile0" / "main.c"));
  std::ifstream in(dir / "MANIFEST.txt");
  std::string firstLine;
  std::getline(in, firstLine);
  EXPECT_EQ(firstLine, "MAMPS project manifest");
  std::filesystem::remove_all(dir);
}

TEST(GeneratorTest, MismatchedMappingRejected) {
  const Fixture f = makeFixture(2, InterconnectKind::Fsl);
  mapping::Mapping broken = f.result.mapping;
  broken.actorToTile.pop_back();
  EXPECT_THROW(generatePlatform(f.app, f.arch, broken), GenerationError);
}

}  // namespace
}  // namespace mamps::gen
