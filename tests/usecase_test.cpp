// Tests for the multi-application use-case registry: registry
// integrity, end-to-end co-mapping of every use case (all constraints
// met on ONE shared platform), the MCR-vs-state-space cross-check of
// the per-application guarantees, the pinned MJPEG standalone rational,
// workload design-point sweeps through the DSE engine, and the
// composition check that each co-mapped application's simulated
// execution on the shared platform respects its analyzed guarantee.
#include <gtest/gtest.h>

#include <set>

#include "apps/suite/usecases.hpp"
#include "mamps/generator.hpp"
#include "mapping/dse.hpp"
#include "platform/arch_template.hpp"
#include "sim/platform_sim.hpp"

namespace mamps::suite {
namespace {

using mapping::DseOptions;
using mapping::DseResult;
using mapping::WorkloadResult;
using platform::TileId;

// ---------------------------------------------------------------- Registry

TEST(UseCaseRegistryTest, RegistryIsStableAndValid) {
  const auto useCases = builtinUseCases();
  ASSERT_EQ(useCases.size(), 3u);
  EXPECT_EQ(useCases[0].name, "mjpeg_h263_mesh");
  EXPECT_EQ(useCases[1].name, "cd2dat_ring_hetero");
  EXPECT_EQ(useCases[2].name, "suite_tdm_mesh");
  for (const UseCase& uc : useCases) {
    SCOPED_TRACE(uc.name);
    EXPECT_FALSE(uc.description.empty());
    ASSERT_GE(uc.apps.size(), 2u);
    for (const UseCaseApp& app : uc.apps) {
      SCOPED_TRACE(app.name);
      app.model.validate();
      EXPECT_FALSE(app.model.throughputConstraint().isZero())
          << "use-case applications must be throughput-constrained";
    }
  }
}

TEST(UseCaseRegistryTest, FindUseCaseByName) {
  EXPECT_EQ(findUseCase("cd2dat_ring_hetero").name, "cd2dat_ring_hetero");
  EXPECT_THROW((void)findUseCase("nope"), Error);
}

TEST(UseCaseRegistryTest, WorkloadOptionsCarryPerAppKnobsAndPriorities) {
  const UseCase uc = findUseCase("cd2dat_ring_hetero");
  const mapping::WorkloadOptions options = useCaseWorkloadOptions(uc);
  ASSERT_EQ(options.appOptions.size(), uc.apps.size());
  ASSERT_EQ(options.priorities.size(), uc.apps.size());
  EXPECT_EQ(options.priorities[0], 1);  // cd2dat maps first
  EXPECT_EQ(options.appOptions[0].maxTiles, 2u);
}

// ----------------------------------------------------------- Pinned MJPEG

TEST(UseCaseFlowTest, MjpegStandalonePinIsUnchanged) {
  // The use case embeds the case-study decoder with the worked-example
  // calibration; standalone on the 2-tile FSL platform the single code
  // path (mapApplication == one-app mapWorkload) must still produce the
  // pinned rational of docs/throughput.md.
  const UseCase uc = findUseCase("mjpeg_h263_mesh");
  platform::TemplateRequest request;
  request.tileCount = 2;
  const auto arch = platform::generateFromTemplate(request);
  const auto result = mapping::mapApplication(uc.apps[0].model, arch, {});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->throughput.iterationsPerCycle, Rational(1, 1'236'968));
}

// ------------------------------------------------- End-to-end, per use case

TEST(UseCaseFlowTest, EveryUseCaseCoMapsWithAllConstraintsMet) {
  for (const UseCase& uc : builtinUseCases()) {
    SCOPED_TRACE(uc.name);
    const WorkloadResult workload = mapUseCase(uc);
    ASSERT_TRUE(workload.feasible());
    EXPECT_TRUE(workload.meetsConstraints());
    // Every guarantee runs on the MCR fast path, and the TDM slot
    // shares compose: summed over the workload, no tile's wheel is
    // oversubscribed (an exclusive 1-slot wheel degenerates to the
    // one-application-per-tile rule).
    const auto arch = platform::generateFromTemplate(uc.platform);
    std::vector<std::uint32_t> slotsClaimed(arch.tileCount(), 0);
    for (std::size_t i = 0; i < uc.apps.size(); ++i) {
      SCOPED_TRACE(uc.apps[i].name);
      const auto& result = *workload.apps[i];
      EXPECT_TRUE(result.meetsConstraint);
      EXPECT_EQ(result.throughput.engine, analysis::ThroughputEngine::Mcr);
      ASSERT_EQ(result.mapping.tileTdmSlots.size(), arch.tileCount());
      for (const TileId t : result.mapping.actorToTile) {
        EXPECT_GT(result.mapping.tileTdmSlots[t], 0u)
            << "tile " << t << " hosts actors without a slot reservation";
      }
      for (TileId t = 0; t < arch.tileCount(); ++t) {
        slotsClaimed[t] += result.mapping.tileTdmSlots[t];
      }
    }
    for (TileId t = 0; t < arch.tileCount(); ++t) {
      EXPECT_LE(slotsClaimed[t], arch.tile(t).tdm.slotsPerWheel)
          << "tile " << t << "'s TDM wheel is oversubscribed";
    }
  }
}

TEST(UseCaseFlowTest, GuaranteesCrossCheckedAgainstStateSpace) {
  // The per-application MCR guarantees on the shared platform must be
  // reproduced exactly by the state-space engine on the same
  // binding-aware models.
  for (const UseCase& uc : builtinUseCases()) {
    const WorkloadResult workload = mapUseCase(uc);
    ASSERT_TRUE(workload.feasible());
    for (std::size_t i = 0; i < uc.apps.size(); ++i) {
      SCOPED_TRACE(uc.name + "/" + uc.apps[i].name);
      const auto& result = *workload.apps[i];
      analysis::ThroughputOptions stateSpace;
      stateSpace.engine = analysis::ThroughputEngine::StateSpace;
      const auto reference =
          analysis::computeThroughput(result.model.graph, result.model.resources, stateSpace);
      ASSERT_TRUE(reference.ok());
      EXPECT_EQ(reference.iterationsPerCycle, result.throughput.iterationsPerCycle);
    }
  }
}

TEST(UseCaseFlowTest, CoMappedGuaranteesHoldInSimulationOnTheSharedPlatform) {
  // Composition at execution level: each co-mapped application,
  // simulated on the shared platform with its own tiles and links, must
  // sustain at least its analyzed guarantee (tiles are exclusive and
  // SDM wires dedicated, so the co-runner cannot slow it down).
  const UseCase uc = findUseCase("cd2dat_ring_hetero");
  const auto arch = platform::generateFromTemplate(uc.platform);
  const WorkloadResult workload = mapUseCase(uc);
  ASSERT_TRUE(workload.feasible());
  for (std::size_t i = 0; i < uc.apps.size(); ++i) {
    SCOPED_TRACE(uc.apps[i].name);
    const auto& result = *workload.apps[i];
    sim::PlatformSim simulator(uc.apps[i].model, arch, result.mapping);
    sim::SimOptions options;
    options.warmupIterations = 2;
    options.measureIterations = 16;
    const sim::SimResult sim = simulator.run(options);
    ASSERT_TRUE(sim.ok());
    EXPECT_GE(sim.iterationsPerCycle(),
              result.throughput.iterationsPerCycle.toDouble() * (1 - 1e-9));
  }
}

TEST(UseCaseFlowTest, UseCaseProjectsGenerateForEveryApplication) {
  // The generated-platform path accepts co-mapped applications: each
  // application of a use case yields a complete MAMPS project against
  // the shared architecture.
  const UseCase uc = findUseCase("cd2dat_ring_hetero");
  const auto arch = platform::generateFromTemplate(uc.platform);
  const WorkloadResult workload = mapUseCase(uc);
  ASSERT_TRUE(workload.feasible());
  for (std::size_t i = 0; i < uc.apps.size(); ++i) {
    SCOPED_TRACE(uc.apps[i].name);
    const gen::PlatformProject project =
        gen::generatePlatform(uc.apps[i].model, arch, workload.apps[i]->mapping);
    EXPECT_TRUE(project.files.contains("hw/system.mhs"));
    EXPECT_TRUE(project.files.contains("MANIFEST.txt"));
  }
}

// -------------------------------------------------------------- DSE sweeps

TEST(UseCaseSweepTest, WorkloadPointsSweepDeterministically) {
  const UseCase uc = findUseCase("mjpeg_h263_mesh");
  const UseCaseSweep sweep = useCaseDesignPoints(uc);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.points[0].label, "mjpeg_h263_mesh/12t_nocMesh");
  EXPECT_EQ(sweep.points[1].label, "mjpeg_h263_mesh/12t_nocMesh_ca");

  DseOptions serial;
  serial.threads = 1;
  const DseResult serialRun = mapping::exploreDesignSpace(sweep.apps, sweep.points, serial);
  DseOptions parallel;
  parallel.threads = 4;
  const DseResult parallelRun = mapping::exploreDesignSpace(sweep.apps, sweep.points, parallel);
  ASSERT_EQ(serialRun.points.size(), parallelRun.points.size());
  for (std::size_t p = 0; p < serialRun.points.size(); ++p) {
    SCOPED_TRACE(serialRun.points[p].label);
    ASSERT_TRUE(serialRun.points[p].workload.has_value());
    ASSERT_TRUE(parallelRun.points[p].workload.has_value());
    ASSERT_EQ(serialRun.points[p].feasible(), parallelRun.points[p].feasible());
    const WorkloadResult& a = *serialRun.points[p].workload;
    const WorkloadResult& b = *parallelRun.points[p].workload;
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
      ASSERT_EQ(a.apps[i].has_value(), b.apps[i].has_value());
      if (!a.apps[i]) {
        continue;
      }
      EXPECT_EQ(a.apps[i]->throughput.iterationsPerCycle,
                b.apps[i]->throughput.iterationsPerCycle);
      EXPECT_EQ(a.apps[i]->mapping.actorToTile, b.apps[i]->mapping.actorToTile);
    }
  }
}

TEST(UseCaseSweepTest, WorkloadPointsGetAutoLabelsAndValidation) {
  const UseCase uc = findUseCase("cd2dat_ring_hetero");
  UseCaseSweep sweep = useCaseDesignPoints(uc);
  sweep.points[0].label.clear();
  sweep.points.resize(1);
  const DseResult run = mapping::exploreDesignSpace(sweep.apps, sweep.points, {});
  EXPECT_EQ(run.points[0].label, "4t+1ip_fsl_wl2");

  // Out-of-range workload indices are rejected.
  sweep.points[0].workloadApps = {0, 7};
  EXPECT_THROW((void)mapping::exploreDesignSpace(sweep.apps, sweep.points, {}), ModelError);
}

TEST(UseCaseSweepTest, SingleAppOverloadStillMapsPlainPoints) {
  // The legacy single-application sweep is the degenerate case of the
  // workload sweep: a point without workloadApps maps the sweep's
  // application with the point's own options.
  const UseCase uc = findUseCase("mjpeg_h263_mesh");
  mapping::DesignPoint point;
  point.platform.tileCount = 2;
  const DseResult run = mapping::exploreDesignSpace(uc.apps[0].model, {point}, {});
  ASSERT_EQ(run.points.size(), 1u);
  ASSERT_TRUE(run.points[0].feasible());
  EXPECT_FALSE(run.points[0].workload.has_value());
  EXPECT_EQ(run.points[0].mapping->throughput.iterationsPerCycle, Rational(1, 1'236'968));
}

}  // namespace
}  // namespace mamps::suite
