// Tests for the platform simulator: timing against the analytic bound,
// functional byte transport, profiling, and the conservative-guarantee
// invariant on randomized applications.
#include <gtest/gtest.h>

#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "sim/platform_sim.hpp"
#include "test_util.hpp"

namespace mamps::sim {
namespace {

using mapping::MappingResult;
using platform::InterconnectKind;

struct Deployed {
  sdf::ApplicationModel app;
  platform::Architecture arch;
  MappingResult result;
};

Deployed deploy(sdf::ApplicationModel app, std::uint32_t tiles, InterconnectKind kind,
                const mapping::MappingOptions& options = {}) {
  platform::TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = kind;
  Deployed d{std::move(app), platform::generateFromTemplate(request), {}};
  auto mapped = mapping::mapApplication(d.app, d.arch, options);
  if (!mapped) {
    throw Error("deploy: mapping failed");
  }
  d.result = std::move(*mapped);
  return d;
}

double boundOf(const Deployed& d) { return d.result.throughput.iterationsPerCycle.toDouble(); }

// ------------------------------------------------------------------ Timing

TEST(SimTest, WcetRunMatchesAnalysisExactly) {
  // With every firing at its WCET the simulator executes exactly the
  // behaviour the worst-case analysis explored: identical throughput.
  const Deployed d = deploy(test::makeAppModel(test::figure2Graph(), {500, 800, 400}), 2,
                            InterconnectKind::Fsl);
  PlatformSim simulator(d.app, d.arch, d.result.mapping);  // default = WCET costs
  const SimResult result = simulator.run();
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.iterationsPerCycle(), boundOf(d), boundOf(d) * 1e-6);
}

TEST(SimTest, FasterActorsNeverFallBelowBound) {
  const Deployed d = deploy(test::makeAppModel(test::figure2Graph(), {500, 800, 400}), 2,
                            InterconnectKind::Fsl);
  PlatformSim simulator(d.app, d.arch, d.result.mapping);
  simulator.setBehavior(0, std::make_unique<ConstantCostBehavior>(100));
  simulator.setBehavior(1, std::make_unique<ConstantCostBehavior>(300));
  simulator.setBehavior(2, std::make_unique<ConstantCostBehavior>(50));
  const SimResult result = simulator.run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.iterationsPerCycle(), boundOf(d) * (1.0 - 1e-9));
}

TEST(SimTest, NocRunAlsoRespectsBound) {
  const Deployed d = deploy(test::makeAppModel(test::figure2Graph(), {500, 800, 400}), 3,
                            InterconnectKind::NocMesh);
  PlatformSim simulator(d.app, d.arch, d.result.mapping);
  const SimResult result = simulator.run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.iterationsPerCycle(), boundOf(d) * (1.0 - 1e-9));
}

TEST(SimTest, ProfilingCountsFirings) {
  const Deployed d = deploy(test::makeAppModel(test::figure2Graph(), {100, 100, 100}), 1,
                            InterconnectKind::Fsl);
  PlatformSim simulator(d.app, d.arch, d.result.mapping);
  SimOptions options;
  options.warmupIterations = 2;
  options.measureIterations = 10;
  const SimResult result = simulator.run(options);
  ASSERT_TRUE(result.ok());
  // Actor B (q=2) fires twice per iteration; the run stops when the
  // reference actor completes iteration 12, at which point B's last
  // firing of the pipeline tail may still be in flight.
  EXPECT_GE(result.firings[1], 22u);
  EXPECT_EQ(result.maxFiringCycles[0], 100u);
  EXPECT_GT(result.totalFiringCycles[1], result.maxFiringCycles[1]);
}

TEST(SimTest, VariableCostsReportMaximum) {
  class Alternating final : public ActorBehavior {
   public:
    std::uint64_t fire(FiringData&) override { return (++n_ % 2 == 0) ? 80 : 40; }

   private:
    std::uint64_t n_ = 0;
  };
  const Deployed d = deploy(test::makeAppModel(test::figure2Graph(), {100, 100, 100}), 1,
                            InterconnectKind::Fsl);
  PlatformSim simulator(d.app, d.arch, d.result.mapping);
  simulator.setBehavior(0, std::make_unique<Alternating>());
  const SimResult result = simulator.run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.maxFiringCycles[0], 80u);
}

// -------------------------------------------------------------- Functional

/// A source that emits an incrementing byte pattern and a sink that
/// checks it: exercises byte-accurate transport across the interconnect.
class PatternSource final : public ActorBehavior {
 public:
  std::uint64_t fire(FiringData& data) override {
    for (auto& tokens : data.outputs) {
      for (auto& token : tokens) {
        for (auto& byte : token) {
          byte = static_cast<std::uint8_t>(counter_++);
        }
      }
    }
    return 50;
  }

 private:
  std::uint32_t counter_ = 0;
};

class PatternSink final : public ActorBehavior {
 public:
  std::uint64_t fire(FiringData& data) override {
    for (const auto& tokens : data.inputs) {
      for (const auto& token : tokens) {
        for (const auto byte : token) {
          if (byte != static_cast<std::uint8_t>(expected_++)) {
            ++errors;
          }
        }
      }
    }
    return 30;
  }

  std::uint64_t errors = 0;

 private:
  std::uint32_t expected_ = 0;
};

sdf::ApplicationModel patternApp(std::uint32_t tokenSize) {
  sdf::Graph g("pattern");
  const auto src = g.addActor("src");
  const auto dst = g.addActor("dst");
  sdf::ChannelSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.tokenSizeBytes = tokenSize;
  spec.name = "data";
  g.connect(spec);
  g.connect(dst, 1, src, 1, 4, "window");
  sdf::ApplicationModel model(std::move(g));
  for (sdf::ActorId a = 0; a < 2; ++a) {
    sdf::ActorImplementation impl;
    impl.functionName = a == 0 ? "src" : "dst";
    impl.processorType = "microblaze";
    impl.wcetCycles = 100;
    impl.instrMemBytes = 1024;
    impl.dataMemBytes = 512;
    impl.argumentChannels = {0};
    model.addImplementation(a, impl);
  }
  // The window back-edge carries no data.
  model.setImplicit(1, true);
  return model;
}

class TransportTest : public ::testing::TestWithParam<std::tuple<InterconnectKind, std::uint32_t>> {
};

TEST_P(TransportTest, BytesArriveExactlyOnceInOrder) {
  const auto [kind, tokenSize] = GetParam();
  const Deployed d = deploy(patternApp(tokenSize), 2, kind);
  PlatformSim simulator(d.app, d.arch, d.result.mapping);
  simulator.setBehavior(0, std::make_unique<PatternSource>());
  auto sink = std::make_unique<PatternSink>();
  PatternSink* sinkPtr = sink.get();
  simulator.setBehavior(1, std::move(sink));
  const SimResult result = simulator.run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sinkPtr->errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransportTest,
    ::testing::Combine(::testing::Values(InterconnectKind::Fsl, InterconnectKind::NocMesh),
                       ::testing::Values(4u, 7u, 64u, 400u)));

TEST(SimTest, InterTileByteAccounting) {
  const Deployed d = deploy(patternApp(64), 2, InterconnectKind::Fsl);
  PlatformSim simulator(d.app, d.arch, d.result.mapping);
  SimOptions options;
  options.warmupIterations = 0;
  options.measureIterations = 8;
  const SimResult result = simulator.run(options);
  ASSERT_TRUE(result.ok());
  // The data channel moved tokens; the implicit window edge moved none.
  EXPECT_GT(result.interTileBytes[0], 0u);
  EXPECT_EQ(result.interTileBytes[0] % 64, 0u);
}

// ------------------------------------------------- Guarantee (property)

class GuaranteeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GuaranteeProperty, MeasuredNeverBelowGuarantee) {
  Rng rng(GetParam() * 7919);
  test::RandomGraphOptions opt;
  opt.minActors = 2;
  opt.maxActors = 5;
  opt.maxQ = 3;
  const sdf::Graph g = test::randomConsistentGraph(rng, opt);
  const auto wcets = test::randomExecTimes(rng, g, 50, 500);
  const sdf::ApplicationModel app = test::makeAppModel(g, wcets);

  platform::TemplateRequest request;
  request.tileCount = static_cast<std::uint32_t>(rng.range(1, 3));
  request.interconnect =
      rng.chance(0.5) ? InterconnectKind::Fsl : InterconnectKind::NocMesh;
  const platform::Architecture arch = platform::generateFromTemplate(request);
  const auto mapped = mapping::mapApplication(app, arch, {});
  ASSERT_TRUE(mapped.has_value());
  ASSERT_TRUE(mapped->throughput.ok());

  PlatformSim simulator(app, arch, mapped->mapping);
  // Random per-actor costs at or below WCET.
  for (sdf::ActorId a = 0; a < g.actorCount(); ++a) {
    simulator.setBehavior(
        a, std::make_unique<ConstantCostBehavior>(rng.range(wcets[a] / 2, wcets[a])));
  }
  const SimResult result = simulator.run();
  ASSERT_TRUE(result.ok()) << "seed " << GetParam();
  const double bound = mapped->throughput.iterationsPerCycle.toDouble();
  EXPECT_GE(result.iterationsPerCycle(), bound * (1.0 - 1e-9)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuaranteeProperty, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mamps::sim
