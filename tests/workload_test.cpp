// Tests for the shared-platform resource budget and the multi-
// application co-mapping flow: budget accounting (capacity minus
// committed reservations, exclusive tile ownership, SDM wire and FSL
// link state), mapWorkload's residual-budget semantics, and the
// property suite (x125 seeds) pinning that co-mapped reservations never
// exceed capacities, that a co-mapped application's guarantee is never
// better than its standalone mapping on the same platform, and that a
// one-application workload is bit-identical to mapApplication.
#include <gtest/gtest.h>

#include <set>

#include "mapping/binding.hpp"
#include "mapping/workload.hpp"
#include "platform/arch_template.hpp"
#include "platform/resource_budget.hpp"
#include "sdf/repetition_vector.hpp"
#include "test_util.hpp"

namespace mamps::mapping {
namespace {

using platform::InterconnectKind;
using platform::ResourceBudget;
using platform::TileBudget;
using platform::TileId;
using sdf::ApplicationModel;

platform::Architecture stockArch(std::uint32_t tiles, InterconnectKind kind) {
  platform::TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = kind;
  return platform::generateFromTemplate(request);
}

// --------------------------------------------------------- ResourceBudget

TEST(ResourceBudgetTest, BaselineChargesSoftwareTilesOnly) {
  const auto arch =
      platform::generateFromTemplate(platform::heterogeneousPreset(2, {"accel"}));
  ResourceBudget budget(arch);
  budget.commitBaseline(8 * 1024, 2 * 1024);
  ASSERT_EQ(budget.tiles().size(), 3u);
  EXPECT_EQ(budget.tiles()[0].instrBytes, 8u * 1024u);
  EXPECT_EQ(budget.tiles()[1].dataBytes, 2u * 1024u);
  // The hardware IP tile runs no software.
  EXPECT_EQ(budget.tiles()[2].instrBytes, 0u);
  EXPECT_EQ(budget.tiles()[2].dataBytes, 0u);
  // Baseline claims nothing.
  EXPECT_TRUE(budget.tileAvailable(0, 7));
}

TEST(ResourceBudgetTest, CommitClaimsTheTileExclusively) {
  // On the default 1-slot TDM wheel, a slot-oblivious commit claims the
  // whole wheel: the pre-TDM exclusive-ownership semantics.
  const auto arch = stockArch(2, InterconnectKind::Fsl);
  ResourceBudget budget(arch);
  budget.commitTile(0, /*client=*/0, 100, 1024, 512);
  EXPECT_TRUE(budget.tileAvailable(0, 0));
  EXPECT_FALSE(budget.tileAvailable(0, 1));
  EXPECT_TRUE(budget.tileAvailable(1, 1));
  EXPECT_EQ(budget.tileSlots(0, 0), 1u);
  EXPECT_EQ(budget.freeTileSlots(0), 0u);
  EXPECT_EQ(budget.tiles()[0].loadCycles, 100u);
  EXPECT_THROW(budget.commitTile(0, 1, 1, 1, 1), Error);
  EXPECT_THROW(budget.commitTile(0, TileBudget::kNoClient, 1, 1, 1), Error);
}

TEST(ResourceBudgetTest, CommitBeyondResidualMemoryThrows) {
  const auto arch = stockArch(1, InterconnectKind::Fsl);
  ResourceBudget budget(arch);
  const std::uint32_t capacity = arch.tile(0).memory.instrBytes;
  budget.commitTile(0, 0, 0, capacity - 100, 0);
  EXPECT_EQ(budget.freeInstrBytes(0), 100u);
  EXPECT_THROW(budget.commitTile(0, 0, 0, 101, 0), Error);
  budget.commitTile(0, 0, 0, 100, 0);
  EXPECT_EQ(budget.freeInstrBytes(0), 0u);
}

TEST(ResourceBudgetTest, NocWireReservationIsAllOrNothing) {
  const auto arch = stockArch(4, InterconnectKind::NocMesh);
  ResourceBudget budget(arch);
  const auto route = budget.nocTopology().xyRoute(0, 3);
  ASSERT_FALSE(route.empty());
  const std::uint32_t perLink = arch.noc().wiresPerLink;
  EXPECT_TRUE(budget.reserveNocWires(route, perLink - 1, /*client=*/0));
  EXPECT_EQ(budget.usedWires(route.front()), perLink - 1);
  // Over-subscription commits nothing on any link.
  EXPECT_FALSE(budget.reserveNocWires(route, 2, /*client=*/1));
  EXPECT_EQ(budget.usedWires(route.front()), perLink - 1);
  EXPECT_TRUE(budget.reserveNocWires(route, 1, /*client=*/1));
}

TEST(ResourceBudgetTest, FslIndicesAreUniqueAcrossClients) {
  const auto arch = stockArch(2, InterconnectKind::Fsl);
  ResourceBudget budget(arch);
  EXPECT_EQ(budget.allocateFslLink(/*client=*/0), 0u);
  EXPECT_EQ(budget.allocateFslLink(/*client=*/1), 1u);
  EXPECT_EQ(budget.fslLinksUsed(), 2u);
}

// ------------------------------------------------------------ mapWorkload

ApplicationModel smallApp(const std::vector<std::uint64_t>& wcets) {
  return test::makeAppModel(test::figure2Graph(), wcets);
}

TEST(WorkloadTest, UsageSumsEqualCommittedReservations) {
  // The combined accounting must be exactly baseline + every mapped
  // application's actor reservations — produced by the budget, not
  // recomputed ad hoc.
  const ApplicationModel a = smallApp({500, 800, 400});
  const ApplicationModel b = smallApp({100, 200, 300});
  const auto arch = stockArch(4, InterconnectKind::Fsl);
  const std::vector<AppAnalysisCache> caches{prepareApplication(a), prepareApplication(b)};
  const WorkloadResult workload = mapWorkload(caches, arch, {});
  ASSERT_TRUE(workload.feasible());

  std::vector<TileUsage> expected(arch.tileCount());
  for (TileId t = 0; t < arch.tileCount(); ++t) {
    if (arch.tile(t).kind != platform::TileKind::HardwareIp) {
      expected[t].instrBytes = runtimeLayerInstrBytes();
      expected[t].dataBytes = runtimeLayerDataBytes();
    }
  }
  for (std::size_t k = 0; k < caches.size(); ++k) {
    const ApplicationModel& app = k == 0 ? a : b;
    const auto q = *sdf::computeRepetitionVector(app.graph());
    const auto& mapping = workload.apps[k]->mapping;
    for (sdf::ActorId actor = 0; actor < app.graph().actorCount(); ++actor) {
      const TileId t = mapping.actorToTile[actor];
      const auto* impl = app.implementationFor(actor, arch.tile(t).processorType);
      ASSERT_NE(impl, nullptr);
      expected[t].loadCycles += impl->wcetCycles * q[actor];
      expected[t].instrBytes += impl->instrMemBytes;
      expected[t].dataBytes += impl->dataMemBytes;
    }
  }
  ASSERT_EQ(workload.usage.size(), expected.size());
  for (TileId t = 0; t < arch.tileCount(); ++t) {
    SCOPED_TRACE("tile " + std::to_string(t));
    EXPECT_EQ(workload.usage[t].loadCycles, expected[t].loadCycles);
    EXPECT_EQ(workload.usage[t].instrBytes, expected[t].instrBytes);
    EXPECT_EQ(workload.usage[t].dataBytes, expected[t].dataBytes);
  }
}

TEST(WorkloadTest, CoMappedApplicationsNeverShareTiles) {
  const ApplicationModel a = smallApp({500, 800, 400});
  const ApplicationModel b = smallApp({100, 200, 300});
  const auto arch = stockArch(4, InterconnectKind::Fsl);
  const std::vector<AppAnalysisCache> caches{prepareApplication(a), prepareApplication(b)};
  const WorkloadResult workload = mapWorkload(caches, arch, {});
  ASSERT_TRUE(workload.feasible());
  std::set<TileId> tilesOfA(workload.apps[0]->mapping.actorToTile.begin(),
                            workload.apps[0]->mapping.actorToTile.end());
  for (const TileId t : workload.apps[1]->mapping.actorToTile) {
    EXPECT_FALSE(tilesOfA.contains(t)) << "tile " << t << " hosts both applications";
  }
}

TEST(WorkloadTest, PrioritiesControlTheMappingOrder) {
  // On a 2-tile platform two 3-actor applications cannot both map (each
  // needs at least one tile, the first claims both under load
  // balancing... unless capped); the higher-priority one wins.
  const ApplicationModel a = smallApp({500, 800, 400});
  const ApplicationModel b = smallApp({100, 200, 300});
  const auto arch = stockArch(2, InterconnectKind::Fsl);
  const std::vector<AppAnalysisCache> caches{prepareApplication(a), prepareApplication(b)};

  WorkloadOptions preferSecond;
  preferSecond.priorities = {0, 1};
  const WorkloadResult workload = mapWorkload(caches, arch, preferSecond);
  ASSERT_EQ(workload.mappingOrder, (std::vector<std::size_t>{1, 0}));
  // The high-priority application maps; whether the other fits depends
  // on the residual, and results still come back in input order.
  ASSERT_TRUE(workload.apps[1].has_value());
  EXPECT_TRUE(workload.apps[1]->throughput.ok());
}

TEST(WorkloadTest, InfeasibleApplicationCommitsNothing) {
  // The middle application cannot be placed (no memory anywhere);
  // the applications around it map exactly as if it were absent.
  const ApplicationModel a = smallApp({500, 800, 400});
  const ApplicationModel big =
      test::makeAppModel(test::figure2Graph(), {10, 10, 10}, /*instrMem=*/200 * 1024);
  const ApplicationModel b = smallApp({100, 200, 300});
  const auto arch = stockArch(4, InterconnectKind::Fsl);
  const std::vector<AppAnalysisCache> with{prepareApplication(a), prepareApplication(big),
                                           prepareApplication(b)};
  const std::vector<AppAnalysisCache> without{prepareApplication(a), prepareApplication(b)};
  const WorkloadResult withBig = mapWorkload(with, arch, {});
  const WorkloadResult withoutBig = mapWorkload(without, arch, {});
  EXPECT_FALSE(withBig.apps[1].has_value());
  ASSERT_TRUE(withBig.apps[2].has_value());
  ASSERT_TRUE(withoutBig.apps[1].has_value());
  EXPECT_EQ(withBig.apps[2]->mapping.actorToTile, withoutBig.apps[1]->mapping.actorToTile);
  EXPECT_EQ(withBig.apps[2]->throughput.iterationsPerCycle,
            withoutBig.apps[1]->throughput.iterationsPerCycle);
  for (TileId t = 0; t < arch.tileCount(); ++t) {
    EXPECT_EQ(withBig.usage[t].loadCycles, withoutBig.usage[t].loadCycles);
    EXPECT_EQ(withBig.usage[t].instrBytes, withoutBig.usage[t].instrBytes);
  }
}

TEST(WorkloadTest, MaxTilesCapsTheFootprint) {
  const ApplicationModel app = smallApp({500, 800, 400});
  const auto arch = stockArch(4, InterconnectKind::Fsl);
  MappingOptions capped;
  capped.maxTiles = 1;
  const auto result = mapApplication(app, arch, capped);
  ASSERT_TRUE(result.has_value());
  const std::set<TileId> tiles(result->mapping.actorToTile.begin(),
                               result->mapping.actorToTile.end());
  EXPECT_EQ(tiles.size(), 1u);
}

TEST(WorkloadTest, MismatchedOptionVectorsAreRejected) {
  const ApplicationModel a = smallApp({500, 800, 400});
  const auto arch = stockArch(2, InterconnectKind::Fsl);
  const std::vector<AppAnalysisCache> caches{prepareApplication(a)};
  WorkloadOptions badOptions;
  badOptions.appOptions.resize(2);
  EXPECT_THROW((void)mapWorkload(caches, arch, badOptions), ModelError);
  WorkloadOptions badPriorities;
  badPriorities.priorities = {1, 2};
  EXPECT_THROW((void)mapWorkload(caches, arch, badPriorities), ModelError);
}

// -------------------------------------------------------- property suite

/// Property tests over seeded random consistent applications: each
/// param value seeds a distinct workload / platform combination.
class WorkloadProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] Rng rng(std::uint64_t offset = 0) const {
    return Rng(0x9e3779b97f4a7c15ull + GetParam() + offset);
  }

  /// A random application with per-actor WCETs and modest memory needs.
  [[nodiscard]] ApplicationModel randomApp(Rng& gen) const {
    test::RandomGraphOptions options;
    options.minActors = 2;
    options.maxActors = 5;
    sdf::Graph g = test::randomConsistentGraph(gen, options);
    const auto wcets = test::randomExecTimes(gen, g, 10, 500);
    return test::makeAppModel(std::move(g), wcets, /*instrMem=*/2048, /*dataMem=*/512);
  }

  /// A random platform: 2-5 tiles, FSL or NoC by seed.
  [[nodiscard]] platform::Architecture randomArch(Rng& gen) const {
    const auto tiles = static_cast<std::uint32_t>(gen.range(2, 5));
    return stockArch(tiles, gen.chance(0.5) ? InterconnectKind::NocMesh
                                            : InterconnectKind::Fsl);
  }
};

TEST_P(WorkloadProperty, CoMappedReservationsRespectCapacitiesAndOwnership) {
  Rng gen = rng(1);
  const ApplicationModel a = randomApp(gen);
  const ApplicationModel b = randomApp(gen);
  const auto arch = randomArch(gen);
  const std::vector<AppAnalysisCache> caches{prepareApplication(a), prepareApplication(b)};
  const WorkloadResult workload = mapWorkload(caches, arch, {});
  // Reservations never exceed the tile capacities...
  for (TileId t = 0; t < arch.tileCount(); ++t) {
    EXPECT_LE(workload.usage[t].instrBytes, arch.tile(t).memory.instrBytes)
        << "tile " << t << " seed " << GetParam();
    EXPECT_LE(workload.usage[t].dataBytes, arch.tile(t).memory.dataBytes)
        << "tile " << t << " seed " << GetParam();
  }
  // ...and no tile hosts actors of two applications.
  if (workload.apps[0] && workload.apps[1]) {
    const std::set<TileId> tilesOfA(workload.apps[0]->mapping.actorToTile.begin(),
                                    workload.apps[0]->mapping.actorToTile.end());
    for (const TileId t : workload.apps[1]->mapping.actorToTile) {
      EXPECT_FALSE(tilesOfA.contains(t)) << "tile " << t << " seed " << GetParam();
    }
  }
}

TEST_P(WorkloadProperty, CoMappedThroughputNeverBeatsStandalone) {
  // Mapped onto the residual of `first`, `second` can never be faster
  // than it could go standalone on the same platform. The standalone
  // reference sweeps the footprint cap: the greedy binder minimizes a
  // cost function, not throughput, so its *uncapped* mapping is not
  // always its best one — but on a homogeneous FSL platform (uniform
  // point-to-point links, identical tiles) the co-mapped binding onto m
  // leftover tiles is isomorphic to a standalone binding capped at m
  // tiles, which the sweep covers. (On the mesh, tile position breaks
  // that isomorphism, so the NoC is exercised by the other properties.)
  Rng gen = rng(2);
  const ApplicationModel first = randomApp(gen);
  const ApplicationModel second = randomApp(gen);
  const auto tiles = static_cast<std::uint32_t>(gen.range(2, 5));
  const auto arch = stockArch(tiles, InterconnectKind::Fsl);
  const std::vector<AppAnalysisCache> caches{prepareApplication(first),
                                             prepareApplication(second)};
  const WorkloadResult workload = mapWorkload(caches, arch, {});
  if (!workload.apps[1]) {
    return;  // nothing to compare on this seed
  }
  ASSERT_TRUE(workload.apps[1]->throughput.ok()) << "seed " << GetParam();
  Rational best(0);
  for (std::uint32_t cap = 0; cap <= tiles; ++cap) {
    MappingOptions options;
    options.maxTiles = cap;
    const auto standalone = mapApplication(caches[1], arch, options);
    if (standalone && standalone->throughput.ok()) {
      best = std::max(best, standalone->throughput.iterationsPerCycle);
    }
  }
  ASSERT_GT(best, Rational(0)) << "seed " << GetParam();
  EXPECT_LE(workload.apps[1]->throughput.iterationsPerCycle, best) << "seed " << GetParam();
}

TEST_P(WorkloadProperty, OneAppWorkloadIsBitIdenticalToMapApplication) {
  Rng gen = rng(3);
  const ApplicationModel app = randomApp(gen);
  const auto arch = randomArch(gen);
  const AppAnalysisCache cache = prepareApplication(app);
  WorkloadOptions workloadOptions;
  WorkloadResult workload = mapWorkload(std::span(&cache, 1), arch, workloadOptions);
  const auto direct = mapApplication(cache, arch, {});
  ASSERT_EQ(workload.apps[0].has_value(), direct.has_value()) << "seed " << GetParam();
  if (!direct) {
    return;
  }
  const MappingResult& viaWorkload = *workload.apps[0];
  EXPECT_EQ(viaWorkload.throughput.status, direct->throughput.status);
  EXPECT_EQ(viaWorkload.throughput.iterationsPerCycle, direct->throughput.iterationsPerCycle);
  EXPECT_EQ(viaWorkload.throughput.engine, direct->throughput.engine);
  EXPECT_EQ(viaWorkload.meetsConstraint, direct->meetsConstraint);
  EXPECT_EQ(viaWorkload.mapping.actorToTile, direct->mapping.actorToTile);
  EXPECT_EQ(viaWorkload.mapping.schedules, direct->mapping.schedules);
  EXPECT_EQ(viaWorkload.mapping.localCapacityTokens, direct->mapping.localCapacityTokens);
  EXPECT_EQ(viaWorkload.mapping.srcBufferTokens, direct->mapping.srcBufferTokens);
  EXPECT_EQ(viaWorkload.mapping.dstBufferTokens, direct->mapping.dstBufferTokens);
  ASSERT_EQ(viaWorkload.usage.size(), direct->usage.size());
  for (std::size_t t = 0; t < direct->usage.size(); ++t) {
    EXPECT_EQ(viaWorkload.usage[t].loadCycles, direct->usage[t].loadCycles);
    EXPECT_EQ(viaWorkload.usage[t].instrBytes, direct->usage[t].instrBytes);
    EXPECT_EQ(viaWorkload.usage[t].dataBytes, direct->usage[t].dataBytes);
    EXPECT_EQ(viaWorkload.usage[t].actors, direct->usage[t].actors);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadProperty, ::testing::Range<std::uint64_t>(0, 125));

}  // namespace
}  // namespace mamps::mapping
