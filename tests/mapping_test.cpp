// Unit and integration tests for the mapping module: binding, static
// order scheduling, binding-aware graph construction, and the complete
// mapping step.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mapping/flow.hpp"
#include "mapping/schedule.hpp"
#include "platform/arch_template.hpp"
#include "sdf/repetition_vector.hpp"
#include "test_util.hpp"

namespace mamps::mapping {
namespace {

using platform::Architecture;
using platform::InterconnectKind;
using platform::TemplateRequest;
using sdf::ActorId;
using sdf::ApplicationModel;

Architecture makeArch(std::uint32_t tiles, InterconnectKind kind) {
  TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = kind;
  return platform::generateFromTemplate(request);
}

// ----------------------------------------------------------------- Binding

TEST(BindingTest, AllActorsBound) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {100, 200, 50});
  const Architecture arch = makeArch(2, InterconnectKind::Fsl);
  const auto binding = bindActors(app, arch, {});
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->actorToTile.size(), 3u);
  for (const auto t : binding->actorToTile) {
    EXPECT_LT(t, arch.tileCount());
  }
}

TEST(BindingTest, LoadIsBalancedAcrossTiles) {
  // Two heavy independent actors should land on different tiles.
  sdf::Graph g("two");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, a, 1, 1, "sa");
  g.connect(b, 1, b, 1, 1, "sb");
  const ApplicationModel app = test::makeAppModel(std::move(g), {1000, 1000});
  const Architecture arch = makeArch(2, InterconnectKind::Fsl);
  const auto binding = bindActors(app, arch, {});
  ASSERT_TRUE(binding.has_value());
  EXPECT_NE(binding->actorToTile[0], binding->actorToTile[1]);
}

TEST(BindingTest, CommunicationPullsActorsTogether) {
  // A tightly communicating pair with tiny compute should share a tile
  // when the communication weight dominates.
  sdf::Graph g("pair");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  sdf::ChannelSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.tokenSizeBytes = 4096;
  spec.name = "big";
  g.connect(spec);
  const ApplicationModel app = test::makeAppModel(std::move(g), {10, 10});
  const Architecture arch = makeArch(2, InterconnectKind::Fsl);
  MappingOptions options;
  options.weights.processing = 0.01;
  options.weights.communication = 10.0;
  const auto binding = bindActors(app, arch, options);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->actorToTile[0], binding->actorToTile[1]);
}

TEST(BindingTest, MemoryLimitForcesSpread) {
  sdf::Graph g("mem");
  g.addActor("a");
  g.addActor("b");
  // Each actor needs most of a tile's instruction memory.
  const ApplicationModel app =
      test::makeAppModel(std::move(g), {100, 100}, /*instrMem=*/100 * 1024, /*dataMem=*/1024);
  TemplateRequest request;
  request.tileCount = 2;
  request.tileMemory = {128 * 1024, 64 * 1024};
  const Architecture arch = platform::generateFromTemplate(request);
  const auto binding = bindActors(app, arch, {});
  ASSERT_TRUE(binding.has_value());
  EXPECT_NE(binding->actorToTile[0], binding->actorToTile[1]);
}

TEST(BindingTest, InfeasibleMemoryReturnsNullopt) {
  sdf::Graph g("toofat");
  g.addActor("a");
  const ApplicationModel app =
      test::makeAppModel(std::move(g), {100}, /*instrMem=*/200 * 1024, /*dataMem=*/1024);
  TemplateRequest request;
  request.tileCount = 1;
  request.tileMemory = {64 * 1024, 64 * 1024};
  const Architecture arch = platform::generateFromTemplate(request);
  EXPECT_FALSE(bindActors(app, arch, {}).has_value());
}

TEST(BindingTest, ProcessorTypeMismatchReturnsNullopt) {
  sdf::ApplicationModel app(test::pipelineGraph(1, 1));
  for (ActorId a = 0; a < 2; ++a) {
    sdf::ActorImplementation impl;
    impl.functionName = "f";
    impl.processorType = "dsp";  // the template only provides microblaze
    impl.wcetCycles = 10;
    app.addImplementation(a, impl);
  }
  const Architecture arch = makeArch(2, InterconnectKind::Fsl);
  EXPECT_FALSE(bindActors(app, arch, {}).has_value());
}

// ---------------------------------------------------------------- Schedule

TEST(ScheduleTest, EveryActorAppearsQTimes) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {10, 20, 30});
  const Architecture arch = makeArch(2, InterconnectKind::Fsl);
  const auto binding = bindActors(app, arch, {});
  ASSERT_TRUE(binding.has_value());
  const auto schedules = buildStaticOrderSchedules(app, arch, binding->actorToTile);
  ASSERT_TRUE(schedules.has_value());
  const auto q = *sdf::computeRepetitionVector(app.graph());
  std::map<ActorId, std::uint64_t> count;
  for (const auto& schedule : *schedules) {
    for (const ActorId a : schedule) {
      ++count[a];
    }
  }
  for (ActorId a = 0; a < app.graph().actorCount(); ++a) {
    EXPECT_EQ(count[a], q[a]) << "actor " << app.graph().actor(a).name;
  }
}

TEST(ScheduleTest, ActorsOnlyOnTheirTile) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {10, 20, 30});
  const Architecture arch = makeArch(3, InterconnectKind::Fsl);
  const auto binding = bindActors(app, arch, {});
  ASSERT_TRUE(binding.has_value());
  const auto schedules = buildStaticOrderSchedules(app, arch, binding->actorToTile);
  ASSERT_TRUE(schedules.has_value());
  for (platform::TileId t = 0; t < arch.tileCount(); ++t) {
    for (const ActorId a : (*schedules)[t]) {
      EXPECT_EQ(binding->actorToTile[a], t);
    }
  }
}

TEST(ScheduleTest, RespectsDataDependencies) {
  // In a chain a->b->c on one tile, the first firing order must be a, b, c.
  sdf::Graph g("chain");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  const auto c = g.addActor("c");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, c, 1);
  const ApplicationModel app = test::makeAppModel(std::move(g), {5, 5, 5});
  const Architecture arch = makeArch(1, InterconnectKind::Fsl);
  const std::vector<platform::TileId> binding{0, 0, 0};
  const auto schedules = buildStaticOrderSchedules(app, arch, binding);
  ASSERT_TRUE(schedules.has_value());
  ASSERT_EQ((*schedules)[0].size(), 3u);
  EXPECT_EQ((*schedules)[0][0], a);
  EXPECT_EQ((*schedules)[0][1], b);
  EXPECT_EQ((*schedules)[0][2], c);
}

TEST(ScheduleTest, DeadlockedGraphReturnsNullopt) {
  sdf::Graph g("dead");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1);  // no tokens
  const ApplicationModel app = test::makeAppModel(std::move(g), {5, 5});
  const Architecture arch = makeArch(1, InterconnectKind::Fsl);
  EXPECT_FALSE(buildStaticOrderSchedules(app, arch, {0, 0}).has_value());
}

// ------------------------------------------------------------ BindingAware

TEST(BindingAwareTest, LocalMappingAddsNoCommActors) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {10, 20, 30});
  const Architecture arch = makeArch(1, InterconnectKind::Fsl);
  MappingOptions options;
  const auto result = mapApplication(app, arch, options);
  ASSERT_TRUE(result.has_value());
  // Everything on one tile: no channel is expanded.
  EXPECT_TRUE(result->model.expanded.empty());
  EXPECT_EQ(result->model.graph.graph.actorCount(), 3u);
  ASSERT_TRUE(result->throughput.ok());
}

TEST(BindingAwareTest, InterTileChannelsAreExpanded) {
  sdf::Graph g("two");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  sdf::ChannelSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.tokenSizeBytes = 8;
  spec.name = "fwd";
  g.connect(spec);
  g.connect(b, 1, a, 1, 4, "ret");
  const ApplicationModel app = test::makeAppModel(std::move(g), {1000, 1000});
  const Architecture arch = makeArch(2, InterconnectKind::Fsl);
  const auto result = mapApplication(app, arch, {});
  ASSERT_TRUE(result.has_value());
  // Both channels cross tiles: both are expanded.
  EXPECT_EQ(result->model.expanded.size(), 2u);
  // 2 actors + 2 * 8 comm actors.
  EXPECT_EQ(result->model.graph.graph.actorCount(), 18u);
  ASSERT_TRUE(result->throughput.ok());
  EXPECT_GT(result->throughput.iterationsPerCycle, Rational(0));
}

TEST(BindingAwareTest, PeSerializationInflatesActorTimes) {
  sdf::Graph g("two");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  sdf::ChannelSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.tokenSizeBytes = 40;  // 10 words
  spec.name = "fwd";
  g.connect(spec);
  g.connect(b, 1, a, 1, 4, "ret");
  const ApplicationModel app = test::makeAppModel(std::move(g), {1000, 1000});
  const Architecture arch = makeArch(2, InterconnectKind::Fsl);

  Mapping mapping;
  mapping.actorToTile = {0, 1};
  mapping.schedules = {{0}, {1}};
  mapping.channelRoutes.assign(2, {});
  mapping.channelRoutes[0] = {.interTile = true, .srcTile = 0, .dstTile = 1};
  mapping.channelRoutes[1] = {.interTile = true, .srcTile = 1, .dstTile = 0};
  mapping.localCapacityTokens.assign(2, 0);
  mapping.srcBufferTokens = {2, 6};
  mapping.dstBufferTokens = {2, 2};

  mapping.serialization = comm::SerializationMode::OnProcessor;
  const auto pe = buildBindingAware(app, arch, mapping, {1000, 1000});
  mapping.serialization = comm::SerializationMode::CommAssist;
  const auto ca = buildBindingAware(app, arch, mapping, {1000, 1000});

  // PE mode: actor time grows by serialization + deserialization.
  EXPECT_GT(pe.graph.execTime[0], 1000u);
  EXPECT_GT(pe.graph.execTime[1], 1000u);
  // CA mode: actor time unchanged; s1 carries the (smaller) CA time.
  EXPECT_EQ(ca.graph.execTime[0], 1000u);
  EXPECT_GT(ca.graph.execTime[ca.expanded[0].s1], 0u);
  EXPECT_EQ(pe.graph.execTime[pe.expanded[0].s1], 0u);
}

TEST(BindingAwareTest, CaModeYieldsHigherThroughputForCommHeavyApps) {
  // The Section 6.3 experiment in miniature: many words per token and
  // modest compute -> offloading serialization helps.
  sdf::Graph g("heavy");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  sdf::ChannelSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.tokenSizeBytes = 256;  // 64 words
  spec.name = "fwd";
  g.connect(spec);
  g.connect(b, 1, a, 1, 4, "ret");
  const ApplicationModel app = test::makeAppModel(std::move(g), {200, 200});
  const Architecture arch = makeArch(2, InterconnectKind::Fsl);

  MappingOptions options;
  options.serialization = comm::SerializationMode::OnProcessor;
  const auto pe = mapApplication(app, arch, options);
  options.serialization = comm::SerializationMode::CommAssist;
  const auto ca = mapApplication(app, arch, options);
  ASSERT_TRUE(pe.has_value());
  ASSERT_TRUE(ca.has_value());
  ASSERT_TRUE(pe->throughput.ok());
  ASSERT_TRUE(ca->throughput.ok());
  EXPECT_GT(ca->throughput.iterationsPerCycle, pe->throughput.iterationsPerCycle);
}

// -------------------------------------------------------------------- Flow

TEST(FlowTest, Figure2OnOneTile) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {10, 20, 30});
  const Architecture arch = makeArch(1, InterconnectKind::Fsl);
  const auto result = mapApplication(app, arch, {});
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->throughput.ok());
  // One iteration = A + 2B + C = 10 + 40 + 30 = 80 cycles, fully serial.
  EXPECT_EQ(result->throughput.iterationsPerCycle, Rational(1, 80));
}

TEST(FlowTest, ThroughputConstraintSatisfactionReported) {
  sdf::ApplicationModel app = test::makeAppModel(test::figure2Graph(), {10, 20, 30});
  app.setThroughputConstraint(Rational(1, 100));  // achievable (1/80)
  const Architecture arch = makeArch(1, InterconnectKind::Fsl);
  const auto ok = mapApplication(app, arch, {});
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->meetsConstraint);

  app.setThroughputConstraint(Rational(1, 10));  // impossible
  const auto bad = mapApplication(app, arch, {});
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->meetsConstraint);
}

TEST(FlowTest, MoreTilesDoNotHurtThroughput) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {500, 800, 400});
  const auto one = mapApplication(app, makeArch(1, InterconnectKind::Fsl), {});
  const auto three = mapApplication(app, makeArch(3, InterconnectKind::Fsl), {});
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(three.has_value());
  ASSERT_TRUE(one->throughput.ok());
  ASSERT_TRUE(three->throughput.ok());
  EXPECT_GE(three->throughput.iterationsPerCycle * Rational(11, 10),
            one->throughput.iterationsPerCycle);
}

TEST(FlowTest, BindingAwareGraphsStayOnTheMcrFastPath) {
  // The flow's hot path: binding-aware graphs (comm-model expansion,
  // capacity back-edges, static-order schedules) must be analyzable by
  // the MCR engine, and the fast path must agree with the state-space
  // engine to the exact rational on both interconnects.
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {500, 800, 400});
  for (const auto kind : {InterconnectKind::Fsl, InterconnectKind::NocMesh}) {
    const auto result = mapApplication(app, makeArch(3, kind), {});
    ASSERT_TRUE(result.has_value());
    ASSERT_TRUE(result->throughput.ok());
    EXPECT_EQ(result->throughput.engine, analysis::ThroughputEngine::Mcr);

    analysis::ThroughputOptions stateSpace;
    stateSpace.engine = analysis::ThroughputEngine::StateSpace;
    const auto reference =
        analysis::computeThroughput(result->model.graph, result->model.resources, stateSpace);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(result->throughput.iterationsPerCycle, reference.iterationsPerCycle);
  }
}

TEST(FlowTest, NocMappingWorks) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {500, 800, 400});
  const auto result = mapApplication(app, makeArch(4, InterconnectKind::NocMesh), {});
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->throughput.ok());
  // Inter-tile channels must have routes with reserved wires.
  for (const ChannelRoute& r : result->mapping.channelRoutes) {
    if (r.interTile) {
      EXPECT_FALSE(r.route.empty());
      EXPECT_GE(r.wires, 1u);
    }
  }
}

TEST(FlowTest, FslFasterOrEqualNoc) {
  // Point-to-point FSLs avoid router latency; with equal settings the
  // FSL mapping must not be slower (Section 5.3.1).
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {500, 800, 400});
  const auto fsl = mapApplication(app, makeArch(3, InterconnectKind::Fsl), {});
  const auto noc = mapApplication(app, makeArch(3, InterconnectKind::NocMesh), {});
  ASSERT_TRUE(fsl.has_value());
  ASSERT_TRUE(noc.has_value());
  ASSERT_TRUE(fsl->throughput.ok());
  ASSERT_TRUE(noc->throughput.ok());
  EXPECT_GE(fsl->throughput.iterationsPerCycle, noc->throughput.iterationsPerCycle);
}

TEST(FlowTest, AnalyzeMappingWithMeasuredTimes) {
  // Shorter measured execution times must never lower the predicted
  // throughput (the "expected" value of Figure 6 sits above the
  // worst-case line).
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {100, 200, 300});
  const Architecture arch = makeArch(2, InterconnectKind::Fsl);
  const auto result = mapApplication(app, arch, {});
  ASSERT_TRUE(result.has_value());
  const auto expected = analyzeMapping(app, arch, result->mapping, {50, 100, 150});
  ASSERT_TRUE(expected.ok());
  EXPECT_GE(expected.iterationsPerCycle, result->throughput.iterationsPerCycle);
}

TEST(FlowTest, InconsistentAppRejected) {
  sdf::Graph g("bad");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 2, b, 1, 0, "c1");
  g.connect(a, 1, b, 1, 0, "c2");
  const ApplicationModel app = test::makeAppModel(std::move(g), {10, 10});
  EXPECT_FALSE(mapApplication(app, makeArch(2, InterconnectKind::Fsl), {}).has_value());
}

TEST(FlowTest, UsageAccountsRuntimeLayer) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {10, 20, 30});
  const auto result = mapApplication(app, makeArch(2, InterconnectKind::Fsl), {});
  ASSERT_TRUE(result.has_value());
  for (const TileUsage& usage : result->usage) {
    EXPECT_GE(usage.instrBytes, runtimeLayerInstrBytes());
    EXPECT_GE(usage.dataBytes, runtimeLayerDataBytes());
  }
}

}  // namespace
}  // namespace mamps::mapping
