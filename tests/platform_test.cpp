// Unit tests for the platform module: architecture model, template
// generation, NoC topology/wire allocation, and the area model.
#include <gtest/gtest.h>

#include "platform/arch_template.hpp"
#include "platform/architecture.hpp"
#include "platform/area.hpp"
#include "platform/io.hpp"
#include "platform/noc_topology.hpp"

namespace mamps::platform {
namespace {

// ------------------------------------------------------------ Architecture

TEST(ArchitectureTest, AddTiles) {
  Architecture arch("a");
  Tile t;
  t.name = "tile0";
  t.kind = TileKind::Master;
  const TileId id = arch.addTile(t);
  EXPECT_EQ(arch.tileCount(), 1u);
  EXPECT_EQ(arch.tile(id).name, "tile0");
  EXPECT_TRUE(arch.tile(id).hasPeripherals());
}

TEST(ArchitectureTest, DuplicateTileNameThrows) {
  Architecture arch;
  Tile t;
  t.name = "x";
  arch.addTile(t);
  EXPECT_THROW(arch.addTile(t), ModelError);
}

TEST(ArchitectureTest, MemoryLimitEnforced) {
  Architecture arch;
  Tile t;
  t.name = "big";
  t.memory = {200 * 1024, 100 * 1024};  // 300 kB > 256 kB
  EXPECT_THROW(arch.addTile(t), ModelError);
}

TEST(ArchitectureTest, AtMostOneMaster) {
  Architecture arch;
  Tile a;
  a.name = "m1";
  a.kind = TileKind::Master;
  Tile b;
  b.name = "m2";
  b.kind = TileKind::Master;
  arch.addTile(a);
  arch.addTile(b);
  EXPECT_THROW(arch.validate(), ModelError);
}

TEST(ArchitectureTest, NocMeshMustCoverTiles) {
  Architecture arch;
  for (int i = 0; i < 5; ++i) {
    Tile t;
    t.name = "t";
    t.name += std::to_string(i);
    arch.addTile(t);
  }
  arch.setInterconnect(InterconnectKind::NocMesh);
  arch.noc().rows = 2;
  arch.noc().cols = 2;  // 4 < 5 tiles
  EXPECT_THROW(arch.validate(), ModelError);
  arch.noc().cols = 3;
  EXPECT_NO_THROW(arch.validate());
}

TEST(ArchitectureTest, ZeroSlotTdmWheelIsRejected) {
  Architecture arch;
  Tile t;
  t.name = "t0";
  t.tdm.slotsPerWheel = 0;
  arch.addTile(t);
  EXPECT_THROW(arch.validate(), ModelError);
}

TEST(ArchitectureTest, HardwareIpCannotRunATdmScheduler) {
  Architecture arch;
  Tile ip;
  ip.name = "accel";
  ip.kind = TileKind::HardwareIp;
  ip.tdm.slotsPerWheel = 4;
  arch.addTile(ip);
  EXPECT_THROW(arch.validate(), ModelError);
  // The degenerate 1-slot wheel (no sharing) stays legal on IP tiles.
  Architecture ok;
  ip.tdm.slotsPerWheel = 1;
  ok.addTile(ip);
  EXPECT_NO_THROW(ok.validate());
}

TEST(ArchitectureTest, WithTdmConfiguresProcessorTilesOnly) {
  const Architecture arch =
      generateFromTemplate(withTdm(heterogeneousPreset(4, {"accel"}), 4, 200));
  for (TileId t = 0; t < arch.tileCount(); ++t) {
    if (arch.tile(t).kind == TileKind::HardwareIp) {
      EXPECT_EQ(arch.tile(t).tdm, TdmConfig{});
    } else {
      EXPECT_EQ(arch.tile(t).tdm.slotsPerWheel, 4u);
      EXPECT_EQ(arch.tile(t).tdm.wheelOverheadCycles, 200u);
      EXPECT_TRUE(arch.tile(t).tdm.shared());
    }
  }
}

TEST(ArchitectureTest, KindNamesRoundTrip) {
  for (const TileKind kind : {TileKind::Master, TileKind::Slave, TileKind::CommAssist,
                              TileKind::HardwareIp}) {
    EXPECT_EQ(tileKindFromName(tileKindName(kind)), kind);
  }
  EXPECT_THROW((void)tileKindFromName("bogus"), ParseError);
  for (const InterconnectKind kind : {InterconnectKind::Fsl, InterconnectKind::NocMesh}) {
    EXPECT_EQ(interconnectKindFromName(interconnectKindName(kind)), kind);
  }
}

// ---------------------------------------------------------------- Template

TEST(TemplateTest, GeneratesRequestedTileCount) {
  TemplateRequest request;
  request.tileCount = 4;
  const Architecture arch = generateFromTemplate(request);
  EXPECT_EQ(arch.tileCount(), 4u);
  EXPECT_EQ(arch.tile(0).kind, TileKind::Master);
  EXPECT_EQ(arch.tile(1).kind, TileKind::Slave);
}

TEST(TemplateTest, CommAssistTiles) {
  TemplateRequest request;
  request.tileCount = 3;
  request.withCommAssist = true;
  const Architecture arch = generateFromTemplate(request);
  EXPECT_EQ(arch.tile(0).kind, TileKind::Master);
  EXPECT_EQ(arch.tile(1).kind, TileKind::CommAssist);
  EXPECT_EQ(arch.tile(2).kind, TileKind::CommAssist);
}

TEST(TemplateTest, NocMeshNearSquare) {
  TemplateRequest request;
  request.tileCount = 6;
  request.interconnect = InterconnectKind::NocMesh;
  const Architecture arch = generateFromTemplate(request);
  EXPECT_EQ(arch.noc().rows * arch.noc().cols, 6u);
  EXPECT_EQ(arch.noc().rows, 2u);
  EXPECT_EQ(arch.noc().cols, 3u);
}

TEST(TemplateTest, ZeroTilesThrows) {
  TemplateRequest request;
  request.tileCount = 0;
  EXPECT_THROW(generateFromTemplate(request), ModelError);
}

class NearSquareTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NearSquareTest, CoversAndStaysNearSquare) {
  const std::uint32_t n = GetParam();
  const auto [rows, cols] = nearSquareMesh(n);
  EXPECT_GE(rows * cols, n);
  EXPECT_LE(rows, cols);
  // Near-square: the aspect gap stays small.
  EXPECT_LE(cols - rows, (n < 4 ? 3u : (cols + 1) / 2));
  // Minimality of the column count for the chosen row count.
  if (n > 0) {
    EXPECT_LT(rows * (cols - 1), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NearSquareTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 17, 25, 60));

// ------------------------------------------------------------ NocTopology

TEST(NocTopologyTest, LinkEnumeration) {
  NocConfig config;
  config.rows = 2;
  config.cols = 2;
  const NocTopology topo(config);
  EXPECT_EQ(topo.routerCount(), 4u);
  // 2x2 mesh: 4 undirected edges -> 8 directed links.
  EXPECT_EQ(topo.linkCount(), 8u);
}

TEST(NocTopologyTest, CoordMapping) {
  NocConfig config;
  config.rows = 2;
  config.cols = 3;
  const NocTopology topo(config);
  EXPECT_EQ(topo.coordOf(0), (MeshCoord{0, 0}));
  EXPECT_EQ(topo.coordOf(4), (MeshCoord{1, 1}));
  EXPECT_EQ(topo.routerAt({2, 1}), 5u);
  EXPECT_THROW((void)topo.coordOf(6), ModelError);
}

TEST(NocTopologyTest, XyRouteGoesXFirst) {
  NocConfig config;
  config.rows = 3;
  config.cols = 3;
  const NocTopology topo(config);
  // Router 0 (0,0) to router 8 (2,2): x,x then y,y.
  const auto route = topo.xyRoute(0, 8);
  ASSERT_EQ(route.size(), 4u);
  EXPECT_EQ(topo.link(route[0]).fromRouter, 0u);
  EXPECT_EQ(topo.link(route[0]).toRouter, 1u);
  EXPECT_EQ(topo.link(route[1]).toRouter, 2u);
  EXPECT_EQ(topo.link(route[2]).toRouter, 5u);
  EXPECT_EQ(topo.link(route[3]).toRouter, 8u);
}

TEST(NocTopologyTest, RouteLengthEqualsHopDistance) {
  NocConfig config;
  config.rows = 3;
  config.cols = 4;
  const NocTopology topo(config);
  for (std::uint32_t a = 0; a < topo.routerCount(); ++a) {
    for (std::uint32_t b = 0; b < topo.routerCount(); ++b) {
      EXPECT_EQ(topo.xyRoute(a, b).size(), topo.hopDistance(a, b));
    }
  }
}

TEST(NocTopologyTest, EmptyRouteForSameRouter) {
  NocConfig config;
  config.rows = 2;
  config.cols = 2;
  const NocTopology topo(config);
  EXPECT_TRUE(topo.xyRoute(3, 3).empty());
}

// ----------------------------------------------------------- WireAllocator

TEST(WireAllocatorTest, ReserveAndRelease) {
  NocConfig config;
  config.rows = 1;
  config.cols = 2;
  config.wiresPerLink = 8;
  const NocTopology topo(config);
  WireAllocator alloc(topo);
  const auto route = topo.xyRoute(0, 1);
  ASSERT_EQ(route.size(), 1u);
  EXPECT_TRUE(alloc.reserve(route, 5));
  EXPECT_EQ(alloc.usedWires(route[0]), 5u);
  EXPECT_EQ(alloc.freeWires(route[0]), 3u);
  EXPECT_FALSE(alloc.reserve(route, 4));  // only 3 left
  EXPECT_TRUE(alloc.reserve(route, 3));
  alloc.release(route, 5);
  EXPECT_EQ(alloc.freeWires(route[0]), 5u);
}

TEST(WireAllocatorTest, FailedReserveChangesNothing) {
  NocConfig config;
  config.rows = 1;
  config.cols = 3;
  config.wiresPerLink = 4;
  const NocTopology topo(config);
  WireAllocator alloc(topo);
  const auto longRoute = topo.xyRoute(0, 2);
  const auto shortRoute = topo.xyRoute(1, 2);
  ASSERT_TRUE(alloc.reserve(shortRoute, 3));
  // Long route needs 4 on both links but the second has only 1 free.
  EXPECT_FALSE(alloc.reserve(longRoute, 4));
  EXPECT_EQ(alloc.usedWires(longRoute[0]), 0u);  // first link untouched
}

TEST(WireAllocatorTest, ReleaseTooMuchThrows) {
  NocConfig config;
  config.rows = 1;
  config.cols = 2;
  const NocTopology topo(config);
  WireAllocator alloc(topo);
  EXPECT_THROW(alloc.release(topo.xyRoute(0, 1), 1), ModelError);
}

TEST(WireAllocatorTest, CyclesPerWord) {
  EXPECT_EQ(WireAllocator::cyclesPerWord(32), 1u);
  EXPECT_EQ(WireAllocator::cyclesPerWord(16), 2u);
  EXPECT_EQ(WireAllocator::cyclesPerWord(8), 4u);
  EXPECT_EQ(WireAllocator::cyclesPerWord(1), 32u);
  EXPECT_EQ(WireAllocator::cyclesPerWord(5), 7u);
  EXPECT_THROW((void)WireAllocator::cyclesPerWord(0), ModelError);
}

// -------------------------------------------------------------------- Area

TEST(AreaTest, FlowControlAddsTwelvePercent) {
  NocConfig with;
  with.flowControl = true;
  NocConfig without = with;
  without.flowControl = false;
  const double ratio = static_cast<double>(nocRouterSlices(with)) /
                       static_cast<double>(nocRouterSlices(without));
  EXPECT_NEAR(ratio, 1.12, 0.005);
}

TEST(AreaTest, TileKindsHaveDistinctAreas) {
  Tile master{.name = "m", .kind = TileKind::Master};
  Tile slave{.name = "s", .kind = TileKind::Slave};
  Tile ca{.name = "c", .kind = TileKind::CommAssist};
  Tile ip{.name = "i", .kind = TileKind::HardwareIp};
  EXPECT_GT(tileSlices(master), tileSlices(slave));
  EXPECT_GT(tileSlices(ca), tileSlices(slave));
  EXPECT_LT(tileSlices(ip), tileSlices(slave));
}

TEST(AreaTest, TdmWheelChargesPerSlotSlices) {
  // A shared wheel is not free silicon: the slot table, the timer, and
  // the per-slot context cost slices. The model charges one
  // tdmSlotSlices term per slot beyond the first, so a 1-slot (i.e.
  // unshared) tile pays nothing extra.
  Tile plain{.name = "p", .kind = TileKind::Slave};
  Tile shared = plain;
  shared.tdm.slotsPerWheel = 4;
  const AreaModel model;
  EXPECT_EQ(tileSlices(plain, model) + 3 * model.tdmSlotSlices, tileSlices(shared, model));

  // Hardware IP tiles never run the scheduler and never pay for it.
  Tile ip{.name = "i", .kind = TileKind::HardwareIp};
  Tile ipTdm = ip;
  ipTdm.tdm.slotsPerWheel = 4;  // ignored by the model (validate rejects it anyway)
  EXPECT_EQ(tileSlices(ip, model), tileSlices(ipTdm, model));
}

TEST(AreaTest, PlatformAreaSumsComponents) {
  TemplateRequest request;
  request.tileCount = 2;
  const Architecture arch = generateFromTemplate(request);
  const std::uint32_t total = platformSlices(arch, /*fslLinkCount=*/3);
  const AreaModel model;
  EXPECT_EQ(total, tileSlices(arch.tile(0)) + tileSlices(arch.tile(1)) + 3 * model.fslLinkSlices);
}

TEST(AreaTest, NocAreaScalesWithMesh) {
  TemplateRequest request;
  request.tileCount = 4;
  request.interconnect = InterconnectKind::NocMesh;
  const Architecture small = generateFromTemplate(request);
  request.tileCount = 9;
  const Architecture large = generateFromTemplate(request);
  EXPECT_GT(interconnectSlices(large, 0), interconnectSlices(small, 0));
}

// ---------------------------------------------------------------------- IO

TEST(PlatformIoTest, ArchitectureRoundTripFsl) {
  TemplateRequest request;
  request.tileCount = 3;
  const Architecture original = generateFromTemplate(request);
  const Architecture reparsed = architectureFromString(architectureToXml(original));
  EXPECT_EQ(reparsed.name(), original.name());
  ASSERT_EQ(reparsed.tileCount(), original.tileCount());
  for (TileId t = 0; t < original.tileCount(); ++t) {
    EXPECT_EQ(reparsed.tile(t).name, original.tile(t).name);
    EXPECT_EQ(reparsed.tile(t).kind, original.tile(t).kind);
    EXPECT_EQ(reparsed.tile(t).memory.instrBytes, original.tile(t).memory.instrBytes);
  }
  EXPECT_EQ(reparsed.interconnect(), InterconnectKind::Fsl);
  EXPECT_EQ(reparsed.fsl().fifoDepthWords, original.fsl().fifoDepthWords);
}

TEST(PlatformIoTest, ArchitectureRoundTripNoc) {
  TemplateRequest request;
  request.tileCount = 6;
  request.interconnect = InterconnectKind::NocMesh;
  request.nocWiresPerLink = 16;
  const Architecture original = generateFromTemplate(request);
  const Architecture reparsed = architectureFromString(architectureToXml(original));
  EXPECT_EQ(reparsed.interconnect(), InterconnectKind::NocMesh);
  EXPECT_EQ(reparsed.noc().rows, original.noc().rows);
  EXPECT_EQ(reparsed.noc().cols, original.noc().cols);
  EXPECT_EQ(reparsed.noc().wiresPerLink, 16u);
  EXPECT_EQ(reparsed.noc().flowControl, true);
}

TEST(PlatformIoTest, TdmConfigRoundTripsBitIdentically) {
  // write -> read -> write: the serialized form is a fixed point, so
  // TDM attributes survive any number of save/load cycles unchanged.
  const Architecture original =
      generateFromTemplate(withTdm(heterogeneousPreset(4, {"accel"}), 4, 200));
  const std::string xml = architectureToXml(original);
  const Architecture reparsed = architectureFromString(xml);
  ASSERT_EQ(reparsed.tileCount(), original.tileCount());
  for (TileId t = 0; t < original.tileCount(); ++t) {
    EXPECT_EQ(reparsed.tile(t).tdm, original.tile(t).tdm);
  }
  EXPECT_EQ(architectureToXml(reparsed), xml);
}

TEST(PlatformIoTest, AbsentTdmAttributesDefaultToAnExclusiveTile) {
  // Pre-TDM architecture files carry no tdm attributes; they must load
  // as 1-slot (exclusive) wheels, and writing them back must not
  // invent the attributes — old files stay byte-stable.
  TemplateRequest request;
  request.tileCount = 3;
  const Architecture original = generateFromTemplate(request);
  const std::string xml = architectureToXml(original);
  EXPECT_EQ(xml.find("tdmSlots"), std::string::npos);
  const Architecture reparsed = architectureFromString(xml);
  for (TileId t = 0; t < reparsed.tileCount(); ++t) {
    EXPECT_EQ(reparsed.tile(t).tdm, TdmConfig{});
    EXPECT_FALSE(reparsed.tile(t).tdm.shared());
  }
  EXPECT_EQ(architectureToXml(reparsed), xml);
}

TEST(PlatformIoTest, MalformedArchitectureThrows) {
  EXPECT_THROW(architectureFromString("<architecture/>"), ParseError);  // no interconnect
  EXPECT_THROW(architectureFromString("<other interconnect=\"fsl\"/>"), ParseError);
}

}  // namespace
}  // namespace mamps::platform
