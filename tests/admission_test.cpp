// Tests for release-capable resource budgets and online admission
// control: regression tests for the commit-only leak class (the FSL
// monotone counter, the unchecked baseline commit, routeChannels'
// partial commits), the x125-seed commit/release round-trip property
// (bit-identical pristine after any interleaving plus full teardown),
// the plan cache's replay-equals-recompute pin, and seeded churn traces
// (>= 1000 events exclusive, 2000 events TDM) on the largeMeshPreset
// and heterogeneousPreset platforms asserting budget conservation and
// guarantee stability.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apps/suite/churn.hpp"
#include "mapping/admission.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "platform/resource_budget.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace mamps::mapping {
namespace {

using platform::InterconnectKind;
using platform::ResourceBudget;
using platform::TileBudget;
using platform::TileId;

platform::Architecture stockArch(std::uint32_t tiles, InterconnectKind kind,
                                 std::uint32_t fslMaxLinks = 0) {
  platform::TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = kind;
  request.fslMaxLinks = fslMaxLinks;
  return platform::generateFromTemplate(request);
}

// ------------------------------------------------ regression: FSL links

// Pre-fix, FSL indices came from a monotone counter: releases never
// returned links, so churn exhausted the (physical) link supply and
// "links used" grew without bound.
TEST(ResourceBudgetRegressionTest, FslLinksComeFromACappedFreeList) {
  const auto arch = stockArch(2, InterconnectKind::Fsl);
  ResourceBudget budget(arch);
  EXPECT_EQ(budget.fslLinkCapacity(),
            platform::FslConfig::kFslPortsPerTile * arch.tileCount());

  const std::uint32_t a = budget.allocateFslLink(/*client=*/0);
  const std::uint32_t b = budget.allocateFslLink(/*client=*/1);
  const std::uint32_t c = budget.allocateFslLink(/*client=*/0);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(budget.fslLinksUsed(), 3u);

  // Client 0 departs: its two links return, and the live count reports
  // live links, not the high-water mark.
  budget.release(0);
  EXPECT_EQ(budget.fslLinksUsed(), 1u);

  // Reuse is lowest-first: the next client gets index 0 back, not 3.
  EXPECT_EQ(budget.allocateFslLink(/*client=*/2), 0u);
  EXPECT_EQ(budget.allocateFslLink(/*client=*/2), 2u);
  EXPECT_EQ(budget.fslLinksUsed(), 3u);
}

TEST(ResourceBudgetRegressionTest, FslLinkCapacityIsEnforced) {
  const auto arch = stockArch(2, InterconnectKind::Fsl, /*fslMaxLinks=*/2);
  ResourceBudget budget(arch);
  EXPECT_EQ(budget.fslLinkCapacity(), 2u);
  (void)budget.allocateFslLink(0);
  (void)budget.allocateFslLink(1);
  EXPECT_THROW((void)budget.allocateFslLink(2), Error);
  // A departure frees capacity again — the cap is on *live* links.
  budget.release(0);
  EXPECT_EQ(budget.allocateFslLink(2), 0u);
}

// --------------------------------------- regression: baseline over-commit

// Pre-fix, commitBaseline added the runtime-layer image to every tile
// unchecked: a platform with tiles too small for the image silently
// over-committed (and could wrap the 32-bit byte counters), breaking
// every residual-memory query downstream.
TEST(ResourceBudgetRegressionTest, CommitBaselineRejectsOverCommit) {
  platform::TemplateRequest request;
  request.tileCount = 2;
  request.interconnect = InterconnectKind::Fsl;
  request.tileMemory = {4 * 1024, 1 * 1024};  // smaller than the image
  const auto arch = platform::generateFromTemplate(request);

  ResourceBudget budget(arch);
  const ResourceBudget before = budget;
  EXPECT_THROW(budget.commitBaseline(8 * 1024, 2 * 1024), Error);
  // All-or-nothing: the failed baseline committed nothing on any tile.
  EXPECT_TRUE(budget == before);

  // Overflow-safety: a near-UINT32_MAX image must throw, not wrap.
  EXPECT_THROW(budget.commitBaseline(0xffffffffu, 0xffffffffu), Error);
  EXPECT_TRUE(budget == before);

  // The image fits after halving the data segment.
  budget.commitBaseline(4 * 1024, 1 * 1024);
  EXPECT_EQ(budget.freeInstrBytes(0), 0u);
}

// ------------------------------------- regression: routeChannels commits

// Pre-fix, routeChannels committed wires channel by channel and
// returned false mid-way, leaving the earlier channels' reservations in
// the caller's budget. Batch callers masked it by throwing the budget
// copy away; a long-lived budget (the admission controller's platform
// state) leaks.
TEST(RouteChannelsRegressionTest, FailedNocRoutingCommitsNothing) {
  const auto arch = stockArch(4, InterconnectKind::NocMesh);
  ResourceBudget budget(arch);

  sdf::Graph g("chain");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  const auto c = g.addActor("c");
  g.connect(a, 1, b, 1, 0);
  g.connect(b, 1, c, 1, 0);
  const std::vector<TileId> actorToTile = {0, 1, 3};

  // Saturate the second channel's route (1 -> 3) so routing fails only
  // after the first channel (0 -> 1) already allocated.
  const auto blocked = budget.nocTopology().xyRoute(1, 3);
  ASSERT_TRUE(budget.reserveNocWires(blocked, arch.noc().wiresPerLink, /*client=*/9));

  const ResourceBudget before = budget;
  std::vector<ChannelRoute> routes;
  EXPECT_FALSE(routeChannels(g, arch, actorToTile, MappingOptions{}, budget, /*client=*/0, routes));
  // All-or-nothing: the first channel's wires are NOT left behind.
  EXPECT_TRUE(budget == before);
}

TEST(RouteChannelsRegressionTest, FailedFslRoutingCommitsNothing) {
  const auto arch = stockArch(3, InterconnectKind::Fsl, /*fslMaxLinks=*/1);
  ResourceBudget budget(arch);

  sdf::Graph g("chain");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  const auto c = g.addActor("c");
  g.connect(a, 1, b, 1, 0);
  g.connect(b, 1, c, 1, 0);
  const std::vector<TileId> actorToTile = {0, 1, 2};

  const ResourceBudget before = budget;
  std::vector<ChannelRoute> routes;
  // Two inter-tile channels, one link of capacity: the first channel's
  // FSL allocation must not survive the second channel's failure.
  EXPECT_FALSE(routeChannels(g, arch, actorToTile, MappingOptions{}, budget, /*client=*/0, routes));
  EXPECT_TRUE(budget == before);
  EXPECT_EQ(budget.fslLinksUsed(), 0u);
}

// --------------------------------------------------- release semantics

TEST(ResourceBudgetReleaseTest, ReleaseRestoresThePristineBudget) {
  const auto arch = stockArch(4, InterconnectKind::NocMesh);
  ResourceBudget budget(arch);
  budget.commitBaseline(runtimeLayerInstrBytes(), runtimeLayerDataBytes());
  const ResourceBudget pristine = budget;

  budget.commitTile(0, /*client=*/0, 500, 1024, 256);
  budget.commitTile(1, /*client=*/0, 300, 512, 128);
  budget.commitTile(2, /*client=*/1, 700, 2048, 512);
  ASSERT_TRUE(budget.reserveNocWires(budget.nocTopology().xyRoute(0, 1), 2, /*client=*/0));
  ASSERT_TRUE(budget.reserveNocWires(budget.nocTopology().xyRoute(2, 3), 4, /*client=*/1));
  EXPECT_FALSE(budget == pristine);

  // The ledger records exactly what release() will hand back.
  const platform::ClientLedger* ledger = budget.ledger(0);
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->tiles.size(), 2u);
  EXPECT_EQ(ledger->tiles.at(0).loadCycles, 500u);
  EXPECT_EQ(ledger->tiles.at(1).instrBytes, 512u);

  budget.release(1);
  EXPECT_TRUE(budget.tiles()[2].slotOwners.empty());
  EXPECT_FALSE(budget == pristine);  // client 0 still resident
  budget.release(0);
  EXPECT_TRUE(budget == pristine);
  EXPECT_EQ(budget.ledger(0), nullptr);
}

TEST(ResourceBudgetReleaseTest, ReleaseOfUnknownClientThrows) {
  const auto arch = stockArch(2, InterconnectKind::Fsl);
  ResourceBudget budget(arch);
  EXPECT_THROW(budget.release(7), Error);
  budget.commitTile(0, 7, 1, 1, 1);
  budget.release(7);
  // Double-release is a caller bug, loudly.
  EXPECT_THROW(budget.release(7), Error);
}

// ------------------------------------- x125 commit/release round trips

class BudgetRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Any interleaving of commits and releases that ends with every client
// released leaves the budget bit-identical to the freshly baselined
// one: nothing leaks, nothing drifts.
TEST_P(BudgetRoundTripProperty, AnyInterleavingTearsDownToPristine) {
  Rng rng(GetParam());
  const bool noc = rng.chance(0.5);
  const auto arch = stockArch(4, noc ? InterconnectKind::NocMesh : InterconnectKind::Fsl);
  ResourceBudget budget(arch);
  budget.commitBaseline(runtimeLayerInstrBytes(), runtimeLayerDataBytes());
  const ResourceBudget pristine = budget;

  constexpr std::uint32_t kClients = 4;
  const std::size_t steps = 20 + rng.range(0, 40);
  for (std::size_t i = 0; i < steps; ++i) {
    const std::uint32_t client = static_cast<std::uint32_t>(rng.range(0, kClients - 1));
    switch (rng.range(0, 3)) {
      case 0: {  // tile commit (only where this client may and it fits)
        const TileId tile = static_cast<TileId>(rng.range(0, arch.tileCount() - 1));
        const std::uint32_t instr = static_cast<std::uint32_t>(rng.range(0, 512));
        const std::uint32_t data = static_cast<std::uint32_t>(rng.range(0, 256));
        if (budget.tileAvailable(tile, client) && budget.freeInstrBytes(tile) >= instr &&
            budget.freeDataBytes(tile) >= data) {
          budget.commitTile(tile, client, rng.range(1, 1000), instr, data);
        }
        break;
      }
      case 1: {  // interconnect claim
        if (noc) {
          const TileId src = static_cast<TileId>(rng.range(0, arch.tileCount() - 1));
          const TileId dst = static_cast<TileId>(rng.range(0, arch.tileCount() - 1));
          if (src != dst) {
            (void)budget.reserveNocWires(budget.nocTopology().xyRoute(src, dst),
                                         static_cast<std::uint32_t>(rng.range(1, 4)), client);
          }
        } else if (budget.fslLinksUsed() < budget.fslLinkCapacity()) {
          (void)budget.allocateFslLink(client);
        }
        break;
      }
      default: {  // release a random resident client
        if (budget.ledger(client) != nullptr) {
          budget.release(client);
        }
        break;
      }
    }
  }

  // Full teardown, in seed-dependent order.
  std::vector<std::uint32_t> resident;
  for (std::uint32_t client = 0; client < kClients; ++client) {
    if (budget.ledger(client) != nullptr) {
      resident.push_back(client);
    }
  }
  while (!resident.empty()) {
    const std::size_t pick = static_cast<std::size_t>(rng.range(0, resident.size() - 1));
    budget.release(resident[pick]);
    resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  EXPECT_TRUE(budget == pristine);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetRoundTripProperty,
                         ::testing::Range<std::uint64_t>(0, 125));

// ------------------------------------------------- admission controller

TEST(AdmissionControllerTest, FirstAdmissionMatchesTheStandaloneFlow) {
  const suite::ChurnWorkload workload = suite::suiteChurnWorkload();
  const auto arch =
      platform::generateFromTemplate(platform::heterogeneousPreset(4, {"accel"}));

  AdmissionController controller(arch);
  const std::size_t app = 1;  // cd2dat
  const AdmissionDecision decision =
      controller.admit(workload.caches[app], workload.options[app]);
  ASSERT_TRUE(decision.admitted());

  // An admission onto the empty controller IS the standalone mapping
  // step: same code path, same baselined budget, same client id.
  const auto standalone = mapApplication(workload.caches[app], arch, workload.options[app]);
  ASSERT_TRUE(standalone.has_value());
  EXPECT_EQ(decision.result->mapping.actorToTile, standalone->mapping.actorToTile);
  EXPECT_EQ(decision.result->throughput.iterationsPerCycle,
            standalone->throughput.iterationsPerCycle);
  EXPECT_EQ(decision.result->meetsConstraint, standalone->meetsConstraint);

  controller.depart(*decision.client);
  EXPECT_TRUE(controller.pristine());
}

TEST(AdmissionControllerTest, RejectionLeavesTheBudgetUntouched) {
  const suite::ChurnWorkload workload = suite::suiteChurnWorkload();
  const auto arch = platform::generateFromTemplate(platform::heterogeneousPreset(4, {"accel"}));
  AdmissionController controller(arch);

  // Admit the converter until the platform is full; the first rejection
  // must leave the live budget bit-identical to before the attempt.
  bool sawRejection = false;
  for (int i = 0; i < 16 && !sawRejection; ++i) {
    const ResourceBudget before = controller.budget();
    const AdmissionDecision decision =
        controller.admit(workload.caches[1], workload.options[1]);
    if (!decision.admitted()) {
      sawRejection = true;
      EXPECT_FALSE(decision.reason.empty());
      EXPECT_TRUE(controller.budget() == before);
    }
  }
  EXPECT_TRUE(sawRejection);
  EXPECT_GT(controller.residentCount(), 0u);
  EXPECT_GT(controller.stats().rejected, 0u);
}

TEST(AdmissionControllerTest, ResidentGuaranteesAreStableUnderChurn) {
  const suite::ChurnWorkload workload = suite::suiteChurnWorkload();
  const auto arch = platform::generateFromTemplate(platform::largeMeshPreset(12));
  AdmissionController controller(arch);

  const AdmissionDecision first = controller.admit(workload.caches[0], workload.options[0]);
  ASSERT_TRUE(first.admitted());
  const Rational pinned = first.result->throughput.iterationsPerCycle;
  EXPECT_TRUE(first.result->meetsConstraint);

  // Neighbours come and go; the resident's guarantee must not move (its
  // resources are exclusively committed — nothing can perturb it).
  const AdmissionDecision b = controller.admit(workload.caches[1], workload.options[1]);
  const AdmissionDecision c = controller.admit(workload.caches[3], workload.options[3]);
  ASSERT_TRUE(b.admitted());
  ASSERT_TRUE(c.admitted());
  EXPECT_EQ(controller.resident(*first.client).throughput.iterationsPerCycle, pinned);
  controller.depart(*b.client);
  EXPECT_EQ(controller.resident(*first.client).throughput.iterationsPerCycle, pinned);
  EXPECT_TRUE(controller.resident(*first.client).meetsConstraint);

  controller.depart(*c.client);
  controller.depart(*first.client);
  EXPECT_TRUE(controller.pristine());
}

TEST(AdmissionControllerTest, DepartOfUnknownClientThrows) {
  const auto arch = stockArch(2, InterconnectKind::Fsl);
  AdmissionController controller(arch);
  EXPECT_THROW(controller.depart(3), Error);
}

TEST(AdmissionControllerTest, PlanCacheReplayIsBitIdenticalToRecompute) {
  const suite::ChurnWorkload workload = suite::suiteChurnWorkload();
  const auto arch = platform::generateFromTemplate(platform::heterogeneousPreset(4, {"accel"}));

  AdmissionOptions cold;
  cold.planCache = false;
  AdmissionController cached(arch);
  AdmissionController recomputed(arch, cold);

  // Drive both controllers through the same sequence, revisiting the
  // same residual states so the cached controller replays decisions.
  const std::size_t script[] = {1, 3, 1, 3};
  for (int round = 0; round < 3; ++round) {
    std::vector<ClientId> mine;
    std::vector<ClientId> theirs;
    for (const std::size_t app : script) {
      const AdmissionDecision a = cached.admit(workload.caches[app], workload.options[app]);
      const AdmissionDecision b = recomputed.admit(workload.caches[app], workload.options[app]);
      ASSERT_EQ(a.admitted(), b.admitted());
      if (a.admitted()) {
        mine.push_back(*a.client);
        theirs.push_back(*b.client);
        EXPECT_EQ(a.result->mapping.actorToTile, b.result->mapping.actorToTile);
        EXPECT_EQ(a.result->throughput.iterationsPerCycle,
                  b.result->throughput.iterationsPerCycle);
        EXPECT_EQ(a.result->meetsConstraint, b.result->meetsConstraint);
      }
      // Same client ids, same commitments: the live budgets stay equal.
      EXPECT_TRUE(cached.budget() == recomputed.budget());
    }
    for (std::size_t i = 0; i < mine.size(); ++i) {
      cached.depart(mine[i]);
      recomputed.depart(theirs[i]);
    }
    EXPECT_TRUE(cached.pristine());
    EXPECT_TRUE(recomputed.pristine());
  }
  EXPECT_GT(cached.stats().planCacheHits, 0u);
  EXPECT_EQ(recomputed.stats().planCacheHits, 0u);
}

// ----------------------------------------------------- churn traces

void expectConservedChurn(const platform::Architecture& arch,
                          const suite::ChurnWorkload& workload,
                          std::size_t events = 1000,
                          std::size_t hitDivisor = 4) {
  AdmissionController controller(arch);
  suite::ChurnOptions options;
  options.seed = 42;
  options.events = events;
  const suite::ChurnResult result = suite::runChurnTrace(controller, workload, options);

  // Conservation: after the final drain the live budget is
  // bit-identical to pristine — 1000+ interleaved commit/release cycles
  // leaked nothing.
  EXPECT_TRUE(result.pristineAfterDrain);
  EXPECT_EQ(controller.residentCount(), 0u);

  // The trace is internally consistent.
  EXPECT_EQ(result.stats.arrivals, result.admitSeconds.size());
  EXPECT_EQ(result.stats.admitted + result.stats.rejected, result.stats.arrivals);
  EXPECT_EQ(result.stats.admitted, result.stats.departures);
  EXPECT_EQ(result.stats.admitted, result.clientApp.size());
  EXPECT_GT(result.stats.admitted, 0u);
  // Residual states recur under churn, so the plan cache must be doing
  // real work (the p99 latency of bench_admission depends on it). The
  // bound is loose: the mesh's per-link wire state makes many more
  // residual states distinct than the FSL platforms see, and partial
  // slot occupancy multiplies the distinct states again on TDM wheels.
  EXPECT_GT(result.stats.planCacheHits, result.stats.arrivals / hitDivisor);
}

TEST(AdmissionChurnTest, BudgetIsConservedOnTheLargeMesh) {
  expectConservedChurn(platform::generateFromTemplate(platform::largeMeshPreset(12)),
                       suite::suiteChurnWorkload());
}

TEST(AdmissionChurnTest, BudgetIsConservedOnTheHeterogeneousPlatform) {
  expectConservedChurn(
      platform::generateFromTemplate(platform::heterogeneousPreset(4, {"accel"})),
      suite::suiteChurnWorkload());
}

// TDM churn: the same event stream, but every arrival reserves 2 of 4
// slots per tile instead of a whole tile, so instances pack two-deep.
// Conservation must still hold bit-identically after the drain — a
// leaked slot reservation (unlike a leaked whole tile) would be
// invisible to capacity checks for a long time, so the pristine pin is
// the only guard.
TEST(AdmissionChurnTest, TdmBudgetIsConservedOnTheLargeMesh) {
  // The mesh crosses per-link wire state with per-tile slot occupancy,
  // so recurring residuals are much rarer than on the FSL platforms —
  // the hit bound only asserts the cache still earns its keep.
  expectConservedChurn(
      platform::generateFromTemplate(platform::withTdm(platform::largeMeshPreset(12), 4, 200)),
      suite::suiteTdmChurnWorkload(4, 2), /*events=*/2000, /*hitDivisor=*/20);
}

TEST(AdmissionChurnTest, TdmBudgetIsConservedOnTheHeterogeneousPlatform) {
  expectConservedChurn(
      platform::generateFromTemplate(
          platform::withTdm(platform::heterogeneousPreset(4, {"accel"}), 4, 200)),
      suite::suiteTdmChurnWorkload(4, 2), /*events=*/2000, /*hitDivisor=*/8);
}

}  // namespace
}  // namespace mamps::mapping
