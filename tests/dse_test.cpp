// Tests for the design-space exploration engine: determinism of the
// parallel sweep (point-for-point equality with the serial run),
// equivalence of the incremental and from-scratch analysis paths at
// flow level, and the shared application-preparation cache.
#include <gtest/gtest.h>

#include "mapping/dse.hpp"
#include "platform/arch_template.hpp"
#include "sdf/repetition_vector.hpp"
#include "test_util.hpp"

namespace mamps::mapping {
namespace {

using platform::InterconnectKind;
using sdf::ApplicationModel;

/// Figure 2 with heavy WCETs and a constraint most points only meet
/// after buffer growth, so sweeps exercise the re-analysis loop.
ApplicationModel constrainedApp() {
  ApplicationModel app = test::makeAppModel(test::figure2Graph(), {500, 800, 400});
  app.setThroughputConstraint(Rational(1, 2600));
  return app;
}

std::vector<DesignPoint> sweepPoints() {
  std::vector<DesignPoint> points;
  for (const auto kind : {InterconnectKind::Fsl, InterconnectKind::NocMesh}) {
    for (std::uint32_t tiles = 1; tiles <= 4; ++tiles) {
      DesignPoint point;
      point.platform.tileCount = tiles;
      point.platform.interconnect = kind;
      point.options.initialBufferScale = 1;
      points.push_back(point);
    }
  }
  return points;
}

void expectPointwiseEqual(const DseResult& a, const DseResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    const DesignPointResult& pa = a.points[i];
    const DesignPointResult& pb = b.points[i];
    EXPECT_EQ(pa.label, pb.label);
    ASSERT_EQ(pa.feasible(), pb.feasible());
    if (!pa.feasible()) {
      continue;
    }
    EXPECT_EQ(pa.mapping->throughput.status, pb.mapping->throughput.status);
    EXPECT_EQ(pa.mapping->throughput.iterationsPerCycle,
              pb.mapping->throughput.iterationsPerCycle);
    EXPECT_EQ(pa.mapping->throughput.engine, pb.mapping->throughput.engine);
    EXPECT_EQ(pa.mapping->meetsConstraint, pb.mapping->meetsConstraint);
    EXPECT_EQ(pa.mapping->mapping.actorToTile, pb.mapping->mapping.actorToTile);
    EXPECT_EQ(pa.mapping->mapping.schedules, pb.mapping->mapping.schedules);
    EXPECT_EQ(pa.mapping->mapping.localCapacityTokens, pb.mapping->mapping.localCapacityTokens);
    EXPECT_EQ(pa.mapping->mapping.srcBufferTokens, pb.mapping->mapping.srcBufferTokens);
    EXPECT_EQ(pa.mapping->mapping.dstBufferTokens, pb.mapping->mapping.dstBufferTokens);
  }
}

TEST(DseTest, ParallelSweepMatchesSerialPointForPoint) {
  // The determinism contract: any thread count returns the same result
  // vector as the serial run, in input order.
  const ApplicationModel app = constrainedApp();
  const auto points = sweepPoints();
  DseOptions serial;
  serial.threads = 1;
  const DseResult serialRun = exploreDesignSpace(app, points, serial);
  for (const unsigned threads : {2u, 4u}) {
    DseOptions parallel;
    parallel.threads = threads;
    const DseResult parallelRun = exploreDesignSpace(app, points, parallel);
    expectPointwiseEqual(serialRun, parallelRun);
  }
}

TEST(DseTest, IncrementalFlowMatchesFromScratchFlow) {
  // mapApplication's two analysis paths (incremental context vs rebuild
  // every growth round) must produce bit-identical mappings.
  const ApplicationModel app = constrainedApp();
  for (const DesignPoint& point : sweepPoints()) {
    const platform::Architecture arch = platform::generateFromTemplate(point.platform);
    MappingOptions incremental = point.options;
    incremental.incrementalAnalysis = true;
    MappingOptions scratch = point.options;
    scratch.incrementalAnalysis = false;
    const auto a = mapApplication(app, arch, incremental);
    const auto b = mapApplication(app, arch, scratch);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) {
      continue;
    }
    EXPECT_EQ(a->throughput.status, b->throughput.status);
    EXPECT_EQ(a->throughput.iterationsPerCycle, b->throughput.iterationsPerCycle);
    EXPECT_EQ(a->meetsConstraint, b->meetsConstraint);
    EXPECT_EQ(a->mapping.localCapacityTokens, b->mapping.localCapacityTokens);
    EXPECT_EQ(a->mapping.srcBufferTokens, b->mapping.srcBufferTokens);
    EXPECT_EQ(a->mapping.dstBufferTokens, b->mapping.dstBufferTokens);
    // The final binding-aware models must agree channel for channel
    // (the incremental path patches instead of rebuilding).
    ASSERT_EQ(a->model.graph.graph.channelCount(), b->model.graph.graph.channelCount());
    for (sdf::ChannelId c = 0; c < a->model.graph.graph.channelCount(); ++c) {
      EXPECT_EQ(a->model.graph.graph.channel(c).initialTokens,
                b->model.graph.graph.channel(c).initialTokens)
          << "channel " << a->model.graph.graph.channel(c).name;
    }
  }
}

TEST(DseTest, ResultsComeBackInInputOrderWithLabels) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {10, 20, 30});
  auto points = sweepPoints();
  points[0].label = "custom";
  const DseResult sweep = exploreDesignSpace(app, points);
  ASSERT_EQ(sweep.points.size(), points.size());
  EXPECT_EQ(sweep.points[0].label, "custom");
  EXPECT_EQ(sweep.points[1].label, "2t_fsl");
  EXPECT_EQ(sweep.points[4].label, "1t_nocMesh");
  EXPECT_EQ(sweep.feasibleCount(), points.size());
  EXPECT_GT(sweep.totalSeconds, 0.0);
  EXPECT_GT(sweep.meanPointSeconds(), 0.0);
}

TEST(DseTest, InfeasiblePointsAreReportedNotDropped) {
  // Each actor needs most of a tile's instruction memory: one tile can
  // hold only one actor, so the single-tile points are infeasible while
  // the 4-tile points map fine.
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {10, 20, 30},
                                                 /*instrMem=*/100 * 1024, /*dataMem=*/1024);
  std::vector<DesignPoint> points;
  for (const std::uint32_t tiles : {1u, 4u}) {
    DesignPoint point;
    point.platform.tileCount = tiles;
    point.platform.tileMemory = {128 * 1024, 64 * 1024};
    points.push_back(point);
  }
  const DseResult sweep = exploreDesignSpace(app, points);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_FALSE(sweep.points[0].feasible());
  EXPECT_TRUE(sweep.points[1].feasible());
  EXPECT_EQ(sweep.feasibleCount(), 1u);
}

TEST(DseTest, EmptySweepReturnsEmptyResult) {
  const ApplicationModel app = test::makeAppModel(test::figure2Graph(), {10, 20, 30});
  const DseResult sweep = exploreDesignSpace(app, {});
  EXPECT_TRUE(sweep.points.empty());
  EXPECT_EQ(sweep.feasibleCount(), 0u);
  EXPECT_EQ(sweep.meanPointSeconds(), 0.0);
}

TEST(DseTest, SharedPreparationMatchesPerPointPreparation) {
  const ApplicationModel app = constrainedApp();
  const auto points = sweepPoints();
  DseOptions shared;  // default: reusePreparation = true
  DseOptions perPoint;
  perPoint.reusePreparation = false;
  expectPointwiseEqual(exploreDesignSpace(app, points, shared),
                       exploreDesignSpace(app, points, perPoint));
}

TEST(DseTest, CachedMapApplicationMatchesUncached) {
  const ApplicationModel app = constrainedApp();
  const AppAnalysisCache cache = prepareApplication(app);
  EXPECT_TRUE(cache.consistent);
  EXPECT_TRUE(cache.deadlockFree);
  EXPECT_EQ(cache.repetition, *sdf::computeRepetitionVector(app.graph()));
  ASSERT_TRUE(cache.wcetByType.contains("microblaze"));
  EXPECT_EQ(cache.wcetByType.at("microblaze")[1], 800u);

  platform::TemplateRequest request;
  request.tileCount = 2;
  const platform::Architecture arch = platform::generateFromTemplate(request);
  const auto cached = mapApplication(cache, arch, {});
  const auto direct = mapApplication(app, arch, {});
  ASSERT_EQ(cached.has_value(), direct.has_value());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->throughput.iterationsPerCycle, direct->throughput.iterationsPerCycle);
  EXPECT_EQ(cached->mapping.actorToTile, direct->mapping.actorToTile);
}

TEST(DseTest, InconsistentAppIsRejectedThroughTheCache) {
  sdf::Graph g("bad");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 2, b, 1, 0, "c1");
  g.connect(a, 1, b, 1, 0, "c2");
  const ApplicationModel app = test::makeAppModel(std::move(g), {10, 10});
  const AppAnalysisCache cache = prepareApplication(app);
  EXPECT_FALSE(cache.consistent);
  platform::TemplateRequest request;
  request.tileCount = 2;
  EXPECT_FALSE(mapApplication(cache, platform::generateFromTemplate(request), {}).has_value());
}

}  // namespace
}  // namespace mamps::mapping
