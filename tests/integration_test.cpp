// End-to-end integration tests: the complete flow from interchange-
// format inputs to generated platform and simulated execution,
// heterogeneous platforms with multiple actor implementations, and
// cross-module consistency checks.
#include <gtest/gtest.h>

#include "apps/mjpeg/actors.hpp"
#include "apps/mjpeg/testdata.hpp"
#include "mamps/generator.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "platform/io.hpp"
#include "sdf/io.hpp"
#include "sim/platform_sim.hpp"
#include "test_util.hpp"

namespace mamps {
namespace {

// ------------------------------------------------------ XML-driven flow

TEST(IntegrationTest, FlowFromInterchangeFiles) {
  // The paper's Section 2 point: one common input format feeds both the
  // mapping and the platform generation tools. Run the whole flow from
  // serialized inputs.
  sdf::ApplicationModel original = test::makeAppModel(test::figure2Graph(), {300, 500, 200});
  original.setThroughputConstraint(Rational(1, 3000));
  const std::string appXml = sdf::applicationModelToXml(original);

  platform::TemplateRequest request;
  request.tileCount = 2;
  const std::string archXml = platform::architectureToXml(platform::generateFromTemplate(request));

  // Both tools parse the same files.
  const sdf::ApplicationModel app = sdf::applicationModelFromString(appXml);
  const platform::Architecture arch = platform::architectureFromString(archXml);

  const auto result = mapping::mapApplication(app, arch, {});
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->throughput.ok());
  EXPECT_TRUE(result->meetsConstraint);

  const gen::PlatformProject project = gen::generatePlatform(app, arch, result->mapping);
  EXPECT_GE(project.files.size(), 6u);

  sim::PlatformSim simulator(app, arch, result->mapping);
  const sim::SimResult sim = simulator.run();
  ASSERT_TRUE(sim.ok());
  EXPECT_GE(sim.iterationsPerCycle(),
            result->throughput.iterationsPerCycle.toDouble() * (1 - 1e-9));
}

// -------------------------------------------------------- Heterogeneity

/// An application where one actor has two implementations: a slow
/// software one for the Microblaze and a fast one for a hardware IP
/// tile (Section 3: "the application model can specify multiple
/// implementations for each actor ... allows the tool flow to map the
/// actors on a heterogeneous platform").
sdf::ApplicationModel heterogeneousApp() {
  sdf::Graph g("hetero");
  const auto producer = g.addActor("producer");
  const auto filter = g.addActor("filter");
  const auto consumer = g.addActor("consumer");
  g.connect(producer, 1, filter, 1, 0, "in");
  g.connect(filter, 1, consumer, 1, 0, "out");
  g.connect(consumer, 1, producer, 1, 4, "window");
  sdf::ApplicationModel model(std::move(g));

  const auto add = [&model](sdf::ActorId actor, const char* fn, const char* proc,
                            std::uint64_t wcet, std::vector<sdf::ChannelId> args) {
    sdf::ActorImplementation impl;
    impl.functionName = fn;
    impl.processorType = proc;
    impl.wcetCycles = wcet;
    impl.instrMemBytes = 2048;
    impl.dataMemBytes = 1024;
    impl.argumentChannels = std::move(args);
    model.addImplementation(actor, impl);
  };
  add(0, "produce", "microblaze", 400, {0});
  add(2, "consume", "microblaze", 400, {1});
  // The filter exists for both processor types with very different WCETs.
  add(1, "filter_sw", "microblaze", 5000, {0, 1});
  add(1, "filter_hw", "fir_ip", 250, {0, 1});
  model.setImplicit(2, true);
  return model;
}

TEST(IntegrationTest, HeterogeneousPlatformUsesIpImplementation) {
  const sdf::ApplicationModel app = heterogeneousApp();

  // Homogeneous platform: the filter must fall back to software.
  platform::TemplateRequest request;
  request.tileCount = 2;
  const platform::Architecture softArch = platform::generateFromTemplate(request);
  const auto soft = mapping::mapApplication(app, softArch, {});
  ASSERT_TRUE(soft.has_value());
  ASSERT_TRUE(soft->throughput.ok());

  // Heterogeneous platform: add a hardware IP tile for the filter.
  platform::Architecture hardArch = softArch;
  platform::Tile ip;
  ip.name = "fir0";
  ip.kind = platform::TileKind::HardwareIp;
  ip.processorType = "fir_ip";
  ip.memory = {4 * 1024, 4 * 1024};
  hardArch.addTile(ip);
  hardArch.setName("hetero_arch");
  const auto hard = mapping::mapApplication(app, hardArch, {});
  ASSERT_TRUE(hard.has_value());
  ASSERT_TRUE(hard->throughput.ok());

  // The flow selects the correct implementation automatically and the
  // IP-accelerated platform is strictly faster.
  const auto filterTile = hard->mapping.actorToTile[1];
  EXPECT_EQ(hardArch.tile(filterTile).processorType, "fir_ip");
  EXPECT_GT(hard->throughput.iterationsPerCycle, soft->throughput.iterationsPerCycle);
}

TEST(IntegrationTest, HeterogeneousGuaranteeHoldsInSimulation) {
  const sdf::ApplicationModel app = heterogeneousApp();
  platform::TemplateRequest request;
  request.tileCount = 2;
  platform::Architecture arch = platform::generateFromTemplate(request);
  platform::Tile ip;
  ip.name = "fir0";
  ip.kind = platform::TileKind::HardwareIp;
  ip.processorType = "fir_ip";
  arch.addTile(ip);
  const auto result = mapping::mapApplication(app, arch, {});
  ASSERT_TRUE(result.has_value());

  sim::PlatformSim simulator(app, arch, result->mapping);
  const sim::SimResult sim = simulator.run();
  ASSERT_TRUE(sim.ok());
  EXPECT_GE(sim.iterationsPerCycle(),
            result->throughput.iterationsPerCycle.toDouble() * (1 - 1e-9));
}

// --------------------------------------------------- Serialization modes

TEST(IntegrationTest, CommAssistTilesInTemplate) {
  platform::TemplateRequest request;
  request.tileCount = 3;
  request.withCommAssist = true;
  const platform::Architecture arch = platform::generateFromTemplate(request);
  const sdf::ApplicationModel app = test::makeAppModel(test::figure2Graph(), {300, 500, 200});
  mapping::MappingOptions options;
  options.serialization = comm::SerializationMode::CommAssist;
  const auto result = mapping::mapApplication(app, arch, options);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->throughput.ok());

  // The generated hardware instantiates the CA blocks.
  const auto project = gen::generatePlatform(app, arch, result->mapping);
  EXPECT_NE(project.files.at("hw/system.mhs").find("mamps_comm_assist"), std::string::npos);

  sim::PlatformSim simulator(app, arch, result->mapping);
  const auto sim = simulator.run();
  ASSERT_TRUE(sim.ok());
  EXPECT_GE(sim.iterationsPerCycle(),
            result->throughput.iterationsPerCycle.toDouble() * (1 - 1e-9));
}

// ----------------------------------------------- MJPEG project generation

TEST(IntegrationTest, MjpegProjectArtifactsAreComplete) {
  const auto stream = mjpeg::encodeSequence(mjpeg::makeSyntheticSequence(1, 48, 32), {});
  const mjpeg::MjpegApp app = mjpeg::buildMjpegApp(mjpeg::calibrateWcets(stream));
  platform::TemplateRequest request;
  request.tileCount = 3;
  const platform::Architecture arch = platform::generateFromTemplate(request);
  const auto result = mapping::mapApplication(app.model, arch, {});
  ASSERT_TRUE(result.has_value());

  const auto project = gen::generatePlatform(app.model, arch, result->mapping);
  // Wrappers for all five actors appear in the per-tile sources.
  std::string allSources;
  for (platform::TileId t = 0; t < arch.tileCount(); ++t) {
    allSources += project.files.at("sw/tile" + std::to_string(t) + "/main.c");
  }
  for (const char* actor : {"VLD", "IQZZ", "IDCT", "CC", "Raster"}) {
    EXPECT_NE(allSources.find("wrap_" + std::string(actor)), std::string::npos) << actor;
  }
  // Init functions of the state-carrying actors are invoked.
  EXPECT_NE(allSources.find("actor_vld_init"), std::string::npos);
  // The channels header defines every channel of Figure 5.
  const std::string& header = project.files.at("sw/include/channels.h");
  for (const char* channel : {"vld2iqzz", "iqzz2idct", "idct2cc", "cc2raster", "subHeader1",
                              "subHeader2", "vldState", "rasterState"}) {
    EXPECT_NE(header.find(channel), std::string::npos) << channel;
  }
}

// --------------------------------------------- Buffer growth under load

TEST(IntegrationTest, BufferGrowthRescuesTightConstraint) {
  // A constraint just beyond what minimal buffers deliver forces the
  // flow's buffer-growth loop to act.
  sdf::ApplicationModel app = test::makeAppModel(test::figure2Graph(), {300, 500, 200});
  platform::TemplateRequest request;
  request.tileCount = 2;
  const platform::Architecture arch = platform::generateFromTemplate(request);

  mapping::MappingOptions tight;
  tight.initialBufferScale = 1;
  tight.bufferGrowthRounds = 0;
  const auto minimal = mapping::mapApplication(app, arch, tight);
  ASSERT_TRUE(minimal.has_value());
  ASSERT_TRUE(minimal->throughput.ok());

  // Demand a bit more than the minimal-buffer mapping achieves.
  app.setThroughputConstraint(minimal->throughput.iterationsPerCycle * Rational(101, 100));
  mapping::MappingOptions growing = tight;
  growing.bufferGrowthRounds = 4;
  const auto grown = mapping::mapApplication(app, arch, growing);
  ASSERT_TRUE(grown.has_value());
  if (grown->meetsConstraint) {
    EXPECT_GT(grown->throughput.iterationsPerCycle, minimal->throughput.iterationsPerCycle);
  }
  // Either way the flow reports the outcome honestly.
  EXPECT_TRUE(grown->throughput.ok());
}

}  // namespace
}  // namespace mamps
