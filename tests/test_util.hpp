// Shared helpers for the test suites: well-known graphs and a random
// consistent-SDF-graph generator for property-based tests.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "sdf/app_model.hpp"
#include "sdf/graph.hpp"
#include "support/rng.hpp"

namespace mamps::test {

/// The example graph of Figure 2 of the paper: A fires first (self-edge
/// with one initial token), produces 2 tokens to B and 1 to C; B fires
/// twice producing 1 token to C each time; C consumes 2 from B and 1
/// from A. Repetition vector: q = [1, 2, 1].
inline sdf::Graph figure2Graph() {
  sdf::Graph g("figure2");
  const auto a = g.addActor("A");
  const auto b = g.addActor("B");
  const auto c = g.addActor("C");
  g.connect(a, 2, b, 1, 0, "a2b");
  g.connect(a, 1, c, 1, 0, "a2c");
  g.connect(b, 1, c, 2, 0, "b2c");
  g.connect(a, 1, a, 1, 1, "aState");
  return g;
}

/// A two-actor pipeline producer -> consumer with the given rates.
inline sdf::Graph pipelineGraph(std::uint32_t prod, std::uint32_t cons,
                                std::uint64_t initialTokens = 0) {
  sdf::Graph g("pipeline");
  const auto p = g.addActor("producer");
  const auto c = g.addActor("consumer");
  g.connect(p, prod, c, cons, initialTokens, "link");
  return g;
}

/// A ring of n actors with one token on the closing edge.
inline sdf::Graph ringGraph(std::uint32_t n) {
  sdf::Graph g("ring");
  std::vector<sdf::ActorId> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = "r";
    name += std::to_string(i);
    ids.push_back(g.addActor(std::move(name)));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const bool closing = (i + 1 == n);
    g.connect(ids[i], 1, ids[(i + 1) % n], 1, closing ? 1 : 0);
  }
  return g;
}

struct RandomGraphOptions {
  std::uint32_t minActors = 2;
  std::uint32_t maxActors = 6;
  std::uint32_t maxRateFactor = 3;  ///< multiplies the balance-derived base rates
  std::uint32_t maxExtraChannels = 4;
  std::uint32_t maxQ = 4;           ///< per-actor repetition count used to derive rates
  bool ensureLive = true;           ///< add tokens so one iteration completes
};

/// A random *consistent* SDF graph: rates are derived from a randomly
/// chosen repetition vector, so the balance equations hold by
/// construction. A spanning chain keeps the graph connected; extra
/// channels (possibly creating cycles) are added on top. When
/// `ensureLive` is set, channels that point "backwards" receive enough
/// initial tokens for one full iteration, making the graph deadlock-free.
inline sdf::Graph randomConsistentGraph(Rng& rng, const RandomGraphOptions& opt = {}) {
  sdf::Graph g("random");
  const auto n =
      static_cast<std::uint32_t>(rng.range(opt.minActors, opt.maxActors));
  std::vector<sdf::ActorId> ids;
  std::vector<std::uint64_t> q;
  ids.reserve(n);
  q.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = "x";
    name += std::to_string(i);
    ids.push_back(g.addActor(std::move(name)));
    q.push_back(rng.range(1, opt.maxQ));
  }
  const auto addChannel = [&](std::uint32_t from, std::uint32_t to) {
    const std::uint64_t gg = std::gcd(q[from], q[to]);
    const std::uint64_t k = rng.range(1, opt.maxRateFactor);
    const auto prod = static_cast<std::uint32_t>(q[to] / gg * k);
    const auto cons = static_cast<std::uint32_t>(q[from] / gg * k);
    std::uint64_t tokens = 0;
    if (opt.ensureLive && from >= to) {
      // Backward or self edge: provision a full iteration of tokens.
      tokens = q[from] * prod;
    } else if (rng.chance(0.3)) {
      tokens = rng.range(0, 3);
    }
    g.connect(ids[from], prod, ids[to], cons, tokens);
  };
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    addChannel(i, i + 1);
  }
  const auto extra = static_cast<std::uint32_t>(rng.range(0, opt.maxExtraChannels));
  for (std::uint32_t e = 0; e < extra; ++e) {
    const auto from = static_cast<std::uint32_t>(rng.range(0, n - 1));
    const auto to = static_cast<std::uint32_t>(rng.range(0, n - 1));
    addChannel(from, to);
  }
  return g;
}

/// A complete application model around a graph: one "microblaze"
/// implementation per actor with the given WCETs (cycled when fewer
/// WCETs than actors are given).
inline sdf::ApplicationModel makeAppModel(sdf::Graph graph,
                                          const std::vector<std::uint64_t>& wcets,
                                          std::uint32_t instrMem = 4096,
                                          std::uint32_t dataMem = 1024) {
  sdf::ApplicationModel model(std::move(graph));
  for (sdf::ActorId a = 0; a < model.graph().actorCount(); ++a) {
    sdf::ActorImplementation impl;
    impl.functionName = "actor_" + model.graph().actor(a).name;
    impl.processorType = "microblaze";
    impl.wcetCycles = wcets.empty() ? 100 : wcets[a % wcets.size()];
    impl.instrMemBytes = instrMem;
    impl.dataMemBytes = dataMem;
    for (const sdf::ChannelId c : model.graph().actor(a).outputs) {
      if (!model.graph().channel(c).isSelfEdge()) {
        impl.argumentChannels.push_back(c);
      }
    }
    model.addImplementation(a, impl);
  }
  return model;
}

/// Random execution times in [lo, hi] for every actor of `g`.
inline std::vector<std::uint64_t> randomExecTimes(Rng& rng, const sdf::Graph& g,
                                                  std::uint64_t lo = 1, std::uint64_t hi = 20) {
  std::vector<std::uint64_t> out(g.actorCount());
  for (auto& t : out) {
    t = rng.range(lo, hi);
  }
  return out;
}

}  // namespace mamps::test
