// Tests for TDM processor sharing: slot-wheel reservation semantics on
// the resource budget (validation, the commit auto-claim rule, release
// teardown), the deterministic WCET-inflation pin, the x125-seed
// property wall around composability — (a) the TDM-inflated guarantee
// is never optimistic against a standalone run slowed to the same slot
// fraction, (b) any interleaving of slot reservations, commits, and
// releases tears down to a bit-identical pristine budget — plus the
// admission-control regressions: the plan cache is keyed on slot
// occupancy (a replay against different slot state must miss, not
// corrupt), replay reconstructs slot reservations exactly, and the
// headline capacity claim that TDM sharing admits strictly more
// instances than exclusive tiles on the 12-tile mesh.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/suite/churn.hpp"
#include "apps/suite/synthetic.hpp"
#include "mapping/admission.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "platform/resource_budget.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace mamps::mapping {
namespace {

using platform::InterconnectKind;
using platform::ResourceBudget;
using platform::TileId;

platform::Architecture tdmArch(std::uint32_t tiles, InterconnectKind kind,
                               std::uint32_t slotsPerWheel,
                               std::uint32_t wheelOverheadCycles = 0) {
  platform::TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = kind;
  return platform::generateFromTemplate(
      platform::withTdm(request, slotsPerWheel, wheelOverheadCycles));
}

// ------------------------------------------------ slot-wheel semantics

TEST(TdmBudgetTest, SlotReservationsShareOneWheel) {
  const auto arch = tdmArch(2, InterconnectKind::Fsl, 4);
  ResourceBudget budget(arch);
  EXPECT_EQ(budget.tileSlotCapacity(0), 4u);
  EXPECT_EQ(budget.freeTileSlots(0), 4u);

  budget.reserveTileSlots(0, /*client=*/0, 1);
  budget.reserveTileSlots(0, /*client=*/1, 2);
  EXPECT_EQ(budget.tileSlots(0, 0), 1u);
  EXPECT_EQ(budget.tileSlots(0, 1), 2u);
  EXPECT_EQ(budget.freeTileSlots(0), 1u);

  // Over-subscription is rejected; the wheel is a hard capacity.
  EXPECT_THROW(budget.reserveTileSlots(0, /*client=*/2, 2), Error);
  budget.reserveTileSlots(0, /*client=*/2, 1);
  EXPECT_EQ(budget.freeTileSlots(0), 0u);

  // A full wheel still admits clients that already hold slots.
  EXPECT_TRUE(budget.tileAvailable(0, 1));
  EXPECT_FALSE(budget.tileAvailable(0, /*client=*/3));
}

TEST(TdmBudgetTest, ReservationArgumentsAreValidated) {
  const auto arch = tdmArch(2, InterconnectKind::Fsl, 4);
  ResourceBudget budget(arch);
  EXPECT_THROW(budget.reserveTileSlots(0, /*client=*/0, 0), ModelError);
  EXPECT_THROW(budget.reserveTileSlots(0, platform::TileBudget::kNoClient, 1), Error);
  // A failed reservation records nothing.
  EXPECT_EQ(budget.ledger(0), nullptr);
  EXPECT_EQ(budget.freeTileSlots(0), 4u);
}

TEST(TdmBudgetTest, CommitAutoClaimsTheWholeWheelOnlyWhenUnreserved) {
  const auto arch = tdmArch(2, InterconnectKind::Fsl, 4);
  ResourceBudget budget(arch);

  // Slot-oblivious commit on an untouched wheel claims all of it — the
  // pre-TDM exclusive semantics, so legacy callers keep their guarantee.
  budget.commitTile(0, /*client=*/0, 100, 64, 64);
  EXPECT_EQ(budget.tileSlots(0, 0), 4u);
  EXPECT_EQ(budget.freeTileSlots(0), 0u);

  // On a partially reserved wheel, a client without slots must not
  // commit: silently sharing would break the resident's guarantee.
  budget.reserveTileSlots(1, /*client=*/1, 1);
  EXPECT_THROW(budget.commitTile(1, /*client=*/2, 100, 64, 64), Error);
  // The holder itself commits fine and keeps exactly its slice.
  budget.commitTile(1, /*client=*/1, 100, 64, 64);
  EXPECT_EQ(budget.tileSlots(1, 1), 1u);
  EXPECT_EQ(budget.freeTileSlots(1), 3u);
}

TEST(TdmBudgetTest, ReleaseReturnsSlotsToPristine) {
  const auto arch = tdmArch(2, InterconnectKind::Fsl, 4);
  ResourceBudget budget(arch);
  budget.commitBaseline(runtimeLayerInstrBytes(), runtimeLayerDataBytes());
  const ResourceBudget pristine = budget;

  budget.reserveTileSlots(0, /*client=*/0, 2);
  budget.commitTile(0, /*client=*/0, 500, 128, 64);
  budget.reserveTileSlots(0, /*client=*/1, 1);
  budget.commitTile(1, /*client=*/1, 300, 128, 64);
  EXPECT_FALSE(budget == pristine);

  budget.release(0);
  EXPECT_EQ(budget.freeTileSlots(0), 3u);  // client 1 still holds one
  budget.release(1);
  EXPECT_TRUE(budget == pristine);
}

// --------------------------------------------- deterministic inflation

TEST(TdmMappingTest, SharedWheelInflatesTheGuaranteeExactly) {
  // One tile, 4-slot wheel, 100-cycle switch overhead. Holding 2 of 4
  // slots inflates every WCET to ceil(w * 4/2) + 100; the analyzed
  // guarantee must equal re-analyzing the same mapping with exactly
  // those inflated execution times — no more, no less.
  const auto arch = tdmArch(1, InterconnectKind::Fsl, 4, /*wheelOverheadCycles=*/100);
  const sdf::ApplicationModel app =
      test::makeAppModel(test::figure2Graph(), {1000, 1000, 1000});

  MappingOptions half;
  half.tdmSlots = 2;
  const auto shared = mapApplication(app, arch, half);
  ASSERT_TRUE(shared.has_value());
  ASSERT_TRUE(shared->throughput.ok());
  ASSERT_EQ(shared->mapping.tileTdmSlots.size(), 1u);
  EXPECT_EQ(shared->mapping.tileTdmSlots[0], 2u);

  const std::vector<std::uint64_t> inflated(app.graph().actorCount(), 1000 * 2 + 100);
  const auto reference = analyzeMapping(app, arch, shared->mapping, inflated);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(shared->throughput.iterationsPerCycle, reference.iterationsPerCycle);

  // Claiming the whole wheel (tdmSlots = 0) is the exclusive case: no
  // inflation, no overhead, bit-identical to the plain-platform run.
  const auto whole = mapApplication(app, arch, MappingOptions{});
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->mapping.tileTdmSlots[0], 4u);
  platform::TemplateRequest plain;
  plain.tileCount = 1;
  plain.interconnect = InterconnectKind::Fsl;
  const auto exclusive =
      mapApplication(app, platform::generateFromTemplate(plain), MappingOptions{});
  ASSERT_TRUE(exclusive.has_value());
  EXPECT_EQ(whole->throughput.iterationsPerCycle, exclusive->throughput.iterationsPerCycle);
}

// ------------------------- property (a): the guarantee is conservative

class TdmConservativeProperty : public ::testing::TestWithParam<std::uint64_t> {};

// For any seeded synthetic application mapped onto a shared wheel with
// k of S slots, the TDM guarantee (ceil slicing + wheel overhead) must
// never beat the idealized reference: the same mapping analyzed with
// every WCET slowed by exactly S/k (floor — optimistic slicing, no
// overhead). If this ever fails, the admission controller is promising
// composed throughput the wheel cannot deliver.
TEST_P(TdmConservativeProperty, InflatedGuaranteeIsNeverOptimistic) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const std::uint32_t wheel = static_cast<std::uint32_t>(2 + rng.range(0, 6));  // 2..8
  const std::uint32_t held = static_cast<std::uint32_t>(1 + rng.range(0, wheel - 2));
  const auto arch =
      tdmArch(4, rng.chance(0.5) ? InterconnectKind::NocMesh : InterconnectKind::Fsl, wheel,
              static_cast<std::uint32_t>(rng.range(0, 400)));

  suite::SyntheticOptions synth;
  synth.seed = seed;
  constexpr suite::Topology kTopologies[] = {suite::Topology::Chain, suite::Topology::Ring,
                                             suite::Topology::ForkJoin};
  synth.topology = kTopologies[seed % 3];
  synth.actors = static_cast<std::uint32_t>(3 + seed % 5);
  synth.accelChance = 0.0;  // every actor runs on the shared processors
  const sdf::ApplicationModel app = suite::buildSynthetic(synth);

  MappingOptions options;
  options.tdmSlots = held;
  const auto result = mapApplication(app, arch, options);
  if (!result.has_value()) {
    return;  // infeasible under this seed: nothing to compare
  }
  ASSERT_TRUE(result->throughput.ok());

  std::vector<std::uint64_t> slowed = app.wcetVector("microblaze");
  for (std::uint64_t& w : slowed) {
    w = w * wheel / held;  // floor: strictly optimistic vs the ceil + overhead
  }
  const auto reference = analyzeMapping(app, arch, result->mapping, slowed);
  ASSERT_TRUE(reference.ok());
  EXPECT_LE(result->throughput.iterationsPerCycle, reference.iterationsPerCycle)
      << "wheel=" << wheel << " held=" << held;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TdmConservativeProperty,
                         ::testing::Range<std::uint64_t>(0, 125));

// ----------------------- property (b): slot round trips are loss-free

class TdmSlotRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Any interleaving of slot reservations, tile commits, interconnect
// claims, and releases that ends with every client released leaves the
// budget bit-identical to the freshly baselined one — partial slot
// occupancy must not open a new leak class.
TEST_P(TdmSlotRoundTripProperty, InterleavedSlotReservationsTearDownToPristine) {
  Rng rng(GetParam());
  const bool noc = rng.chance(0.5);
  const std::uint32_t wheel = static_cast<std::uint32_t>(2 + rng.range(0, 6));
  const auto arch = tdmArch(4, noc ? InterconnectKind::NocMesh : InterconnectKind::Fsl, wheel,
                            static_cast<std::uint32_t>(rng.range(0, 300)));
  ResourceBudget budget(arch);
  budget.commitBaseline(runtimeLayerInstrBytes(), runtimeLayerDataBytes());
  const ResourceBudget pristine = budget;

  constexpr std::uint32_t kClients = 4;
  const std::size_t steps = 20 + rng.range(0, 40);
  for (std::size_t i = 0; i < steps; ++i) {
    const std::uint32_t client = static_cast<std::uint32_t>(rng.range(0, kClients - 1));
    const TileId tile = static_cast<TileId>(rng.range(0, arch.tileCount() - 1));
    switch (rng.range(0, 4)) {
      case 0: {  // slot reservation (only what the wheel still has free)
        const std::uint32_t slots = static_cast<std::uint32_t>(1 + rng.range(0, wheel - 1));
        if (budget.freeTileSlots(tile) >= slots) {
          budget.reserveTileSlots(tile, client, slots);
        }
        break;
      }
      case 1: {  // tile commit (holders and untouched wheels only)
        const std::uint32_t instr = static_cast<std::uint32_t>(rng.range(0, 512));
        const std::uint32_t data = static_cast<std::uint32_t>(rng.range(0, 256));
        const bool mayCommit =
            budget.tileSlots(tile, client) > 0 || budget.tiles()[tile].slotOwners.empty();
        if (mayCommit && budget.freeInstrBytes(tile) >= instr &&
            budget.freeDataBytes(tile) >= data) {
          budget.commitTile(tile, client, rng.range(1, 1000), instr, data);
        }
        break;
      }
      case 2: {  // interconnect claim
        if (noc) {
          const TileId dst = static_cast<TileId>(rng.range(0, arch.tileCount() - 1));
          if (tile != dst) {
            (void)budget.reserveNocWires(budget.nocTopology().xyRoute(tile, dst),
                                         static_cast<std::uint32_t>(rng.range(1, 4)), client);
          }
        } else if (budget.fslLinksUsed() < budget.fslLinkCapacity()) {
          (void)budget.allocateFslLink(client);
        }
        break;
      }
      default: {  // release a random resident client
        if (budget.ledger(client) != nullptr) {
          budget.release(client);
        }
        break;
      }
    }
  }

  // Full teardown, in seed-dependent order.
  std::vector<std::uint32_t> resident;
  for (std::uint32_t client = 0; client < kClients; ++client) {
    if (budget.ledger(client) != nullptr) {
      resident.push_back(client);
    }
  }
  while (!resident.empty()) {
    const std::size_t pick = static_cast<std::size_t>(rng.range(0, resident.size() - 1));
    budget.release(resident[pick]);
    resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  EXPECT_TRUE(budget == pristine);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TdmSlotRoundTripProperty,
                         ::testing::Range<std::uint64_t>(0, 125));

// ---------------------------------------- plan cache vs slot occupancy

TEST(TdmAdmissionTest, PlanCacheIsKeyedOnSlotOccupancy) {
  // One tile, 4-slot wheel. The two resident applications are tuned so
  // their committed tile load is IDENTICAL (120-cycle actors inflated
  // x4 on one slot == 240-cycle actors inflated x2 on two slots) and
  // their memory footprints match: between rounds the ONLY difference
  // in the residual platform is how many slots the resident holds. A
  // plan cache keyed on load and memory alone would replay round 1's
  // decision; the slot-occupancy term in the key must force a miss.
  platform::TemplateRequest request;
  request.tileCount = 1;
  request.interconnect = InterconnectKind::Fsl;
  const auto arch = platform::generateFromTemplate(platform::withTdm(request, 4, 0));

  const sdf::ApplicationModel oneSlotResident =
      test::makeAppModel(test::figure2Graph(), {120, 120, 120});
  const sdf::ApplicationModel twoSlotResident =
      test::makeAppModel(test::figure2Graph(), {240, 240, 240});
  const sdf::ApplicationModel probe = test::makeAppModel(test::figure2Graph(), {70, 70, 70});
  const AppAnalysisCache oneSlotCache = prepareApplication(oneSlotResident);
  const AppAnalysisCache twoSlotCache = prepareApplication(twoSlotResident);
  const AppAnalysisCache probeCache = prepareApplication(probe);

  MappingOptions oneSlot;
  oneSlot.tdmSlots = 1;
  MappingOptions twoSlots;
  twoSlots.tdmSlots = 2;

  AdmissionController controller(arch);

  // Round 1: resident holds ONE slot; the probe's decision is computed
  // cold and cached against that residual.
  const AdmissionDecision r1 = controller.admit(oneSlotCache, oneSlot);
  ASSERT_TRUE(r1.admitted());
  const AdmissionDecision p1 = controller.admit(probeCache, twoSlots);
  ASSERT_TRUE(p1.admitted());
  EXPECT_FALSE(p1.planCacheHit);
  EXPECT_EQ(p1.result->mapping.tileTdmSlots[0], 2u);
  controller.depart(*p1.client);
  controller.depart(*r1.client);
  ASSERT_TRUE(controller.pristine());

  // Round 2: same load, same memory, but the resident holds TWO slots.
  // The probe's identical request must MISS and recompute — and the
  // wheel must end up exactly accounted, not oversubscribed.
  const AdmissionDecision r2 = controller.admit(twoSlotCache, twoSlots);
  ASSERT_TRUE(r2.admitted());
  const AdmissionDecision p2 = controller.admit(probeCache, twoSlots);
  ASSERT_TRUE(p2.admitted());
  EXPECT_FALSE(p2.planCacheHit);
  EXPECT_EQ(p2.result->mapping.tileTdmSlots[0], 2u);
  EXPECT_EQ(controller.budget().freeTileSlots(0), 0u);
  controller.depart(*p2.client);
  controller.depart(*r2.client);
  ASSERT_TRUE(controller.pristine());

  // Round 3: round 1's residual recurs — now the probe must HIT, and
  // the replay must reconstruct its slot reservation exactly.
  const AdmissionDecision r3 = controller.admit(oneSlotCache, oneSlot);
  ASSERT_TRUE(r3.admitted());
  const AdmissionDecision p3 = controller.admit(probeCache, twoSlots);
  ASSERT_TRUE(p3.admitted());
  EXPECT_TRUE(p3.planCacheHit);
  EXPECT_EQ(p3.result->mapping.tileTdmSlots[0], 2u);
  EXPECT_EQ(controller.budget().tileSlots(0, *p3.client), 2u);
  EXPECT_EQ(p3.result->throughput.iterationsPerCycle, p1.result->throughput.iterationsPerCycle);
  controller.depart(*p3.client);
  controller.depart(*r3.client);
  EXPECT_TRUE(controller.pristine());
}

TEST(TdmAdmissionTest, ReplayIsBitIdenticalToRecomputeOnTdmWheels) {
  // The two-controller pin of admission_test, on a TDM platform: a
  // cached controller and a cache-disabled one driven through the same
  // slot-sharing sequence must stay budget-equal at every step.
  const suite::ChurnWorkload workload = suite::suiteTdmChurnWorkload(4, 2);
  const auto arch = platform::generateFromTemplate(
      platform::withTdm(platform::heterogeneousPreset(4, {"accel"}), 4, 200));

  AdmissionOptions cold;
  cold.planCache = false;
  AdmissionController cached(arch);
  AdmissionController recomputed(arch, cold);

  const std::size_t script[] = {1, 3, 1, 3};
  for (int round = 0; round < 3; ++round) {
    std::vector<ClientId> mine;
    std::vector<ClientId> theirs;
    for (const std::size_t app : script) {
      const AdmissionDecision a = cached.admit(workload.caches[app], workload.options[app]);
      const AdmissionDecision b = recomputed.admit(workload.caches[app], workload.options[app]);
      ASSERT_EQ(a.admitted(), b.admitted());
      if (a.admitted()) {
        mine.push_back(*a.client);
        theirs.push_back(*b.client);
        EXPECT_EQ(a.result->mapping.actorToTile, b.result->mapping.actorToTile);
        EXPECT_EQ(a.result->mapping.tileTdmSlots, b.result->mapping.tileTdmSlots);
        EXPECT_EQ(a.result->throughput.iterationsPerCycle,
                  b.result->throughput.iterationsPerCycle);
      }
      EXPECT_TRUE(cached.budget() == recomputed.budget());
    }
    for (std::size_t i = 0; i < mine.size(); ++i) {
      cached.depart(mine[i]);
      recomputed.depart(theirs[i]);
    }
    EXPECT_TRUE(cached.pristine());
    EXPECT_TRUE(recomputed.pristine());
  }
  EXPECT_GT(cached.stats().planCacheHits, 0u);
  EXPECT_EQ(recomputed.stats().planCacheHits, 0u);
}

// ------------------------------------------------- headline capacity

TEST(TdmAdmissionTest, TdmAdmitsStrictlyMoreH263InstancesOnTheLargeMesh) {
  // The tentpole claim: with 4-slot wheels and 2-slot reservations the
  // 12-tile mesh admits strictly more H.263 instances than exclusive
  // tiles do — same application model (the slice-relaxed constraint)
  // on both sides, every admitted instance carrying a met guarantee.
  const suite::ChurnWorkload workload = suite::suiteTdmChurnWorkload(4, 2);
  const std::size_t app = 0;  // h263

  const auto admitUntilFull = [&](const platform::Architecture& arch,
                                  const MappingOptions& options) {
    AdmissionController controller(arch);
    std::size_t admitted = 0;
    for (;;) {
      const AdmissionDecision decision = controller.admit(workload.caches[app], options);
      if (!decision.admitted()) {
        break;
      }
      EXPECT_TRUE(decision.result->meetsConstraint);
      ++admitted;
    }
    return admitted;
  };

  MappingOptions exclusiveOptions = workload.options[app];
  exclusiveOptions.tdmSlots = 0;  // claim whole (1-slot) wheels
  const std::size_t exclusiveCount = admitUntilFull(
      platform::generateFromTemplate(platform::largeMeshPreset(12)), exclusiveOptions);
  const std::size_t tdmCount = admitUntilFull(
      platform::generateFromTemplate(platform::withTdm(platform::largeMeshPreset(12), 4, 200)),
      workload.options[app]);

  EXPECT_GT(exclusiveCount, 0u);
  EXPECT_GT(tdmCount, exclusiveCount)
      << "TDM sharing must admit strictly more instances than exclusive tiles";
}

}  // namespace
}  // namespace mamps::mapping
