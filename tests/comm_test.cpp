// Unit tests for the communication model (Figure 4): channel expansion,
// parameter derivation, and the model's analytic properties.
#include <gtest/gtest.h>

#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "comm/model.hpp"
#include "comm/params.hpp"
#include "sdf/repetition_vector.hpp"
#include "test_util.hpp"

namespace mamps::comm {
namespace {

using sdf::ChannelId;
using sdf::Graph;
using sdf::TimedGraph;

/// A strongly bounded two-actor graph whose only forward channel can be
/// expanded: src -> dst plus a return edge keeping execution bounded.
TimedGraph boundedPair(std::uint32_t tokenSize, std::uint64_t srcTime, std::uint64_t dstTime,
                       std::uint64_t windowTokens = 4) {
  Graph g("pair");
  const auto src = g.addActor("src");
  const auto dst = g.addActor("dst");
  sdf::ChannelSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.prodRate = 1;
  spec.consRate = 1;
  spec.tokenSizeBytes = tokenSize;
  spec.name = "fwd";
  g.connect(spec);
  g.connect(dst, 1, src, 1, windowTokens, "ret");
  return TimedGraph{std::move(g), {srcTime, dstTime}, {}};
}

CommModelParams basicParams(std::uint32_t n) {
  CommModelParams p;
  p.wordsPerToken = n;
  p.serializeTime = 10;
  p.deserializeTime = 10;
  p.cyclesPerWord = 1;
  p.latencyCycles = 3;
  p.wordsInFlight = 2;
  p.connectionBufferWords = 8;
  p.txBufferWords = 8;
  p.srcBufferTokens = 2;
  p.dstBufferTokens = 2;
  return p;
}

// ----------------------------------------------------------- wordsPerToken

TEST(WordsPerTokenTest, RoundsUpToWords) {
  EXPECT_EQ(wordsPerToken(1), 1u);
  EXPECT_EQ(wordsPerToken(4), 1u);
  EXPECT_EQ(wordsPerToken(5), 2u);
  EXPECT_EQ(wordsPerToken(128), 32u);
  EXPECT_THROW((void)wordsPerToken(0), Error);
}

// -------------------------------------------------------------- Parameters

TEST(ParamsTest, SerializationCostsOrdering) {
  // The CA must be cheaper than the software loop for any token size
  // (this is the premise of the Section 6.3 experiment).
  for (const std::uint32_t words : {1u, 4u, 32u, 256u}) {
    EXPECT_LT(commAssistSerializationCost().cycles(words),
              processorSerializationCost().cycles(words));
  }
}

TEST(ParamsTest, FslParamsDeriveFromConfig) {
  sdf::Channel channel;
  channel.src = 0;
  channel.dst = 1;
  channel.tokenSizeBytes = 16;  // 4 words
  platform::FslConfig config;
  config.fifoDepthWords = 16;
  config.latencyCycles = 1;
  const CommModelParams p =
      fslParams(channel, config, SerializationMode::OnProcessor, 4, 4);
  EXPECT_EQ(p.wordsPerToken, 4u);
  EXPECT_EQ(p.cyclesPerWord, 1u);
  EXPECT_EQ(p.latencyCycles, 1u);
  EXPECT_EQ(p.wordsInFlight, 1u);
  EXPECT_EQ(p.connectionBufferWords, 16u);
  EXPECT_EQ(p.serializeTime, processorSerializationCost().cycles(4));
}

TEST(ParamsTest, NocParamsScaleWithWiresAndHops) {
  sdf::Channel channel;
  channel.src = 0;
  channel.dst = 1;
  channel.tokenSizeBytes = 8;
  platform::NocConfig config;
  config.hopLatencyCycles = 3;
  const CommModelParams few =
      nocParams(channel, config, /*hops=*/2, /*wires=*/4, SerializationMode::CommAssist, 4, 4);
  const CommModelParams many =
      nocParams(channel, config, /*hops=*/2, /*wires=*/16, SerializationMode::CommAssist, 4, 4);
  EXPECT_GT(few.cyclesPerWord, many.cyclesPerWord);
  EXPECT_EQ(few.latencyCycles, 6u);
  EXPECT_EQ(few.wordsInFlight, 2u);
  const CommModelParams far =
      nocParams(channel, config, /*hops=*/5, /*wires=*/4, SerializationMode::CommAssist, 4, 4);
  EXPECT_GT(far.latencyCycles, few.latencyCycles);
  EXPECT_THROW(
      (void)nocParams(channel, config, 2, 0, SerializationMode::CommAssist, 4, 4), ModelError);
  EXPECT_THROW(
      (void)nocParams(channel, config, 2, 64, SerializationMode::CommAssist, 4, 4), ModelError);
}

TEST(ParamsTest, ValidationCatchesTightBuffers) {
  CommModelParams p = basicParams(2);
  p.srcBufferTokens = 0;
  EXPECT_THROW(p.validateFor(1, 1, 0), ModelError);
  p = basicParams(2);
  p.dstBufferTokens = 0;
  EXPECT_THROW(p.validateFor(1, 1, 0), ModelError);
  p = basicParams(2);
  // alpha_src must also cover initial tokens resting in the source buffer.
  EXPECT_THROW(p.validateFor(1, 1, 5), ModelError);
}

// --------------------------------------------------------------- Expansion

TEST(ExpansionTest, CreatesEightActorsPerChannel) {
  const TimedGraph timed = boundedPair(8, 5, 5);
  const ChannelId fwd = *timed.graph.findChannel("fwd");
  const CommExpansion result = expandChannels(timed, {{fwd, basicParams(2)}});
  // 2 original + 8 model actors.
  EXPECT_EQ(result.graph.graph.actorCount(), 10u);
  ASSERT_EQ(result.expanded.size(), 1u);
  EXPECT_EQ(result.graph.graph.actor(result.expanded[0].s1).name, "fwd_s1");
  EXPECT_EQ(result.graph.graph.actor(result.expanded[0].d1).name, "fwd_d1");
  // The latency stage pipelines words.
  EXPECT_EQ(result.graph.concurrencyLimit(result.expanded[0].c2), 0u);
}

TEST(ExpansionTest, PreservesActorIdsAndLocalChannels) {
  const TimedGraph timed = boundedPair(8, 5, 5);
  const ChannelId fwd = *timed.graph.findChannel("fwd");
  const CommExpansion result = expandChannels(timed, {{fwd, basicParams(2)}});
  EXPECT_EQ(result.graph.graph.actor(0).name, "src");
  EXPECT_EQ(result.graph.graph.actor(1).name, "dst");
  EXPECT_TRUE(result.graph.graph.findChannel("ret").has_value());
  EXPECT_FALSE(result.graph.graph.findChannel("fwd").has_value());  // replaced
}

TEST(ExpansionTest, ExpandedGraphIsConsistentAndLive) {
  const TimedGraph timed = boundedPair(8, 5, 5);
  const ChannelId fwd = *timed.graph.findChannel("fwd");
  const CommExpansion result = expandChannels(timed, {{fwd, basicParams(2)}});
  EXPECT_TRUE(sdf::isConsistent(result.graph.graph));
  EXPECT_TRUE(sdf::isDeadlockFree(result.graph.graph));
}

TEST(ExpansionTest, InitialTokensLandInSourceBuffer) {
  Graph g("init");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  sdf::ChannelSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.initialTokens = 2;
  spec.name = "fwd";
  g.connect(spec);
  g.connect(b, 1, a, 1, 2, "ret");
  const TimedGraph timed{std::move(g), {3, 3}, {}};
  CommModelParams p = basicParams(1);
  p.srcBufferTokens = 4;  // must cover prodRate + initial
  const CommExpansion result =
      expandChannels(timed, {{*timed.graph.findChannel("fwd"), p}});
  const auto srcq = result.graph.graph.findChannel("fwd_srcq");
  ASSERT_TRUE(srcq.has_value());
  EXPECT_EQ(result.graph.graph.channel(*srcq).initialTokens, 2u);
  const auto alphaSrc = result.graph.graph.findChannel("fwd_alpha_src");
  ASSERT_TRUE(alphaSrc.has_value());
  EXPECT_EQ(result.graph.graph.channel(*alphaSrc).initialTokens, 2u);  // 4 - 2
}

TEST(ExpansionTest, SelfEdgeCannotBeExpanded) {
  Graph g;
  const auto a = g.addActor("a");
  g.connect(a, 1, a, 1, 1, "self");
  const TimedGraph timed{std::move(g), {1}, {}};
  EXPECT_THROW(expandChannels(timed, {{0, basicParams(1)}}), ModelError);
}

TEST(ExpansionTest, ThroughputWithGenerousResourcesApproachesOriginal) {
  // With zero comm times and ample buffers the expansion must not slow
  // the graph down.
  const TimedGraph plain = boundedPair(4, 10, 10);
  const auto original = analysis::computeThroughput(plain);
  ASSERT_TRUE(original.ok());

  CommModelParams p;
  p.wordsPerToken = 1;
  p.serializeTime = 0;
  p.deserializeTime = 0;
  p.cyclesPerWord = 0;
  p.latencyCycles = 0;
  p.wordsInFlight = 8;
  p.connectionBufferWords = 64;
  p.txBufferWords = 64;
  p.srcBufferTokens = 8;
  p.dstBufferTokens = 8;
  const CommExpansion expanded =
      expandChannels(plain, {{*plain.graph.findChannel("fwd"), p}});
  const auto result = analysis::computeThroughput(expanded.graph);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.iterationsPerCycle, original.iterationsPerCycle);
}

TEST(ExpansionTest, ThroughputMonotoneInWordsInFlight) {
  const TimedGraph plain = boundedPair(64, 4, 4, /*windowTokens=*/8);
  const ChannelId fwd = *plain.graph.findChannel("fwd");
  Rational previous(0);
  for (const std::uint32_t w : {1u, 2u, 4u, 8u}) {
    CommModelParams p = basicParams(16);
    p.wordsInFlight = w;
    p.srcBufferTokens = 8;
    p.dstBufferTokens = 8;
    const auto result =
        analysis::computeThroughput(expandChannels(plain, {{fwd, p}}).graph);
    ASSERT_TRUE(result.ok()) << "w=" << w;
    EXPECT_GE(result.iterationsPerCycle, previous);
    previous = result.iterationsPerCycle;
  }
}

TEST(ExpansionTest, ThroughputMonotoneInBuffers) {
  const TimedGraph plain = boundedPair(64, 4, 4, /*windowTokens=*/8);
  const ChannelId fwd = *plain.graph.findChannel("fwd");
  Rational previous(0);
  for (const std::uint64_t buf : {2u, 3u, 4u, 6u}) {
    CommModelParams p = basicParams(16);
    p.srcBufferTokens = buf;
    p.dstBufferTokens = buf;
    const auto result =
        analysis::computeThroughput(expandChannels(plain, {{fwd, p}}).graph);
    ASSERT_TRUE(result.ok()) << "buf=" << buf;
    EXPECT_GE(result.iterationsPerCycle, previous);
    previous = result.iterationsPerCycle;
  }
}

TEST(ExpansionTest, SlowInterconnectBecomesBottleneck) {
  const TimedGraph plain = boundedPair(64, 4, 4, /*windowTokens=*/8);
  const ChannelId fwd = *plain.graph.findChannel("fwd");
  CommModelParams fast = basicParams(16);
  fast.cyclesPerWord = 1;
  fast.srcBufferTokens = 8;
  fast.dstBufferTokens = 8;
  CommModelParams slow = fast;
  slow.cyclesPerWord = 8;  // 16 words * 8 cycles >> actor times
  const auto fastResult =
      analysis::computeThroughput(expandChannels(plain, {{fwd, fast}}).graph);
  const auto slowResult =
      analysis::computeThroughput(expandChannels(plain, {{fwd, slow}}).graph);
  ASSERT_TRUE(fastResult.ok());
  ASSERT_TRUE(slowResult.ok());
  EXPECT_GT(fastResult.iterationsPerCycle, slowResult.iterationsPerCycle);
  // The slow connection needs at least 16 words * 8 cycles per token.
  EXPECT_LE(slowResult.iterationsPerCycle, Rational(1, 128));
}

TEST(ExpansionTest, MultiRateChannelExpansion) {
  Graph g("mr");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  sdf::ChannelSpec spec;
  spec.src = a;
  spec.prodRate = 2;
  spec.dst = b;
  spec.consRate = 3;
  spec.tokenSizeBytes = 8;
  spec.name = "fwd";
  g.connect(spec);
  g.connect(b, 3, a, 2, 12, "ret");  // q(a)=3, q(b)=2
  const TimedGraph timed{std::move(g), {5, 5}, {}};
  CommModelParams p = basicParams(2);
  p.srcBufferTokens = 6;
  p.dstBufferTokens = 6;
  const CommExpansion result =
      expandChannels(timed, {{*timed.graph.findChannel("fwd"), p}});
  EXPECT_TRUE(sdf::isConsistent(result.graph.graph));
  const auto q = sdf::computeRepetitionVector(result.graph.graph);
  ASSERT_TRUE(q.has_value());
  // q(a)=3, q(b)=2; s1 runs once per token: 3*2=6; words: 6*2=12.
  EXPECT_EQ((*q)[result.expanded[0].s1], 6u);
  EXPECT_EQ((*q)[result.expanded[0].c1], 12u);
  const auto throughput = analysis::computeThroughput(result.graph);
  EXPECT_TRUE(throughput.ok());
}

}  // namespace
}  // namespace mamps::comm
