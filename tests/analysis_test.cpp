// Unit tests for throughput, cycle-ratio, and buffer-sizing analyses.
#include <gtest/gtest.h>

#include "analysis/buffer.hpp"
#include "analysis/incremental.hpp"
#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "sdf/hsdf.hpp"
#include "sdf/repetition_vector.hpp"
#include "test_util.hpp"

namespace mamps::analysis {
namespace {

using sdf::Graph;
using sdf::TimedGraph;

// -------------------------------------------------------------- Throughput

TEST(ThroughputTest, SingleActorWithSelfEdge) {
  Graph g;
  const auto a = g.addActor("a");
  g.connect(a, 1, a, 1, 1);
  const TimedGraph timed{std::move(g), {10}};
  const auto result = computeThroughput(timed);
  ASSERT_TRUE(result.ok());
  // One firing per 10 cycles.
  EXPECT_EQ(result.iterationsPerCycle, Rational(1, 10));
}

TEST(ThroughputTest, TwoActorRing) {
  // a -> b -> a with one token: strictly alternating firings.
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1, 1);
  const TimedGraph timed{std::move(g), {3, 7}};
  const auto result = computeThroughput(timed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.iterationsPerCycle, Rational(1, 10));
}

TEST(ThroughputTest, TwoTokenRingPipelines) {
  // With two tokens in the ring the two actors work concurrently; the
  // slower one dominates.
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1, 2);
  const TimedGraph timed{std::move(g), {3, 7}};
  const auto result = computeThroughput(timed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.iterationsPerCycle, Rational(1, 7));
}

TEST(ThroughputTest, DeadlockedGraph) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1);  // no tokens
  const TimedGraph timed{std::move(g), {1, 1}};
  const auto result = computeThroughput(timed);
  EXPECT_EQ(result.status, ThroughputResult::Status::Deadlock);
  EXPECT_TRUE(result.iterationsPerCycle.isZero());
}

TEST(ThroughputTest, InconsistentGraph) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 2, b, 1);
  g.connect(a, 1, b, 1);
  const TimedGraph timed{std::move(g), {1, 1}};
  EXPECT_EQ(computeThroughput(timed).status, ThroughputResult::Status::Inconsistent);
}

TEST(ThroughputTest, UnboundedZeroTimeCycle) {
  Graph g;
  const auto a = g.addActor("a");
  g.connect(a, 1, a, 1, 1);
  const TimedGraph timed{std::move(g), {0}};
  EXPECT_EQ(computeThroughput(timed).status, ThroughputResult::Status::Unbounded);
}

TEST(ThroughputTest, SourceSinkWithoutBoundIsUnbounded) {
  // An unbounded source (no cycle anywhere) fires infinitely fast in the
  // self-timed semantics only when it has zero execution time; with
  // non-zero time its own serial firing bounds the rate.
  Graph g;
  const auto a = g.addActor("src");
  const auto b = g.addActor("snk");
  g.connect(a, 1, b, 1);
  const TimedGraph timed{std::move(g), {4, 1}};
  const auto result = computeThroughput(timed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.iterationsPerCycle, Rational(1, 4));
}

TEST(ThroughputTest, DivergesOnUnboundedAccumulation) {
  // Figure 2 is consistent but not strongly bounded: A outpaces B, so
  // tokens pile up on a2b forever under self-timed execution. The
  // state-space engine must detect this instead of running away.
  const TimedGraph timed{test::figure2Graph(), {1, 1, 1}};
  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  EXPECT_EQ(computeThroughput(timed, options).status, ThroughputResult::Status::Diverged);
}

TEST(ThroughputTest, McrResolvesDivergentGraph) {
  // The unified entry point routes the same graph to the MCR engine,
  // which reports the exact long-run iteration rate: B is the
  // bottleneck with two serialized unit-time firings per iteration.
  const TimedGraph timed{test::figure2Graph(), {1, 1, 1}};
  const auto result = computeThroughput(timed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.engine, ThroughputEngine::Mcr);
  EXPECT_EQ(result.iterationsPerCycle, Rational(1, 2));
}

TEST(ThroughputTest, Figure2WithCapacitiesMatchesMcr) {
  const TimedGraph timed{test::figure2Graph(), {1, 1, 1}};
  const auto capacities = minimalDeadlockFreeCapacities(timed.graph);
  ASSERT_TRUE(capacities.has_value());
  const TimedGraph bounded = withCapacities(timed, *capacities);
  const auto result = computeThroughput(bounded);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.iterationsPerCycle, throughputViaMcr(bounded).value());
}

TEST(ThroughputTest, MultiRatePipelineMatchesHandComputation) {
  // prod=2,cons=1, capacity 2: the source needs both slots free, so the
  // execution fully serializes: 10 (src) + 6 + 6 (two sink firings
  // releasing the slots) = period 22.
  Graph g = test::pipelineGraph(2, 1);
  const TimedGraph timed{std::move(g), {10, 6}};
  const auto result = computeThroughput(withCapacities(timed, {2}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.iterationsPerCycle, Rational(1, 22));
}

TEST(ThroughputTest, AutoConcurrencyAllowsUnboundedSourceOverlap) {
  // A source without input constraints can overlap itself infinitely
  // when auto-concurrency is enabled: unbounded throughput.
  Graph g = test::pipelineGraph(2, 1);
  const TimedGraph timed{std::move(g), {10, 6}};
  ThroughputOptions options;
  options.autoConcurrency = true;
  EXPECT_EQ(computeThroughput(timed, options).status, ThroughputResult::Status::Unbounded);
}

TEST(ThroughputTest, AutoConcurrencyRaisesThroughput) {
  // Same bounded pipeline: the sink's two firings per iteration overlap
  // when auto-concurrency is on (period 16), but serialize when it is
  // off (period 22).
  const auto makeTimed = [] {
    Graph g;
    const auto src = g.addActor("src");
    const auto snk = g.addActor("snk");
    g.connect(src, 2, snk, 1, 0, "link");
    g.connect(src, 1, src, 1, 1, "srcSelf");
    return TimedGraph{std::move(g), {10, 6}};
  };
  const auto serial = computeThroughput(withCapacities(makeTimed(), {2, 0}));
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial.iterationsPerCycle, Rational(1, 22));

  ThroughputOptions options;
  options.autoConcurrency = true;
  const auto overlapped = computeThroughput(withCapacities(makeTimed(), {2, 0}), options);
  ASSERT_TRUE(overlapped.ok());
  EXPECT_EQ(overlapped.iterationsPerCycle, Rational(1, 16));
}

TEST(ThroughputTest, ZeroTimeActorsAreFine) {
  // Zero-time "bookkeeping" actors (as in the communication model of
  // Figure 4) must not break the analysis as long as a timed cycle
  // exists.
  Graph g;
  const auto a = g.addActor("a");
  const auto s2 = g.addActor("s2");
  const auto b = g.addActor("b");
  g.connect(a, 1, s2, 1);
  g.connect(s2, 1, b, 1);
  g.connect(b, 1, a, 1, 1);
  const TimedGraph timed{std::move(g), {5, 0, 3}};
  const auto result = computeThroughput(timed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.iterationsPerCycle, Rational(1, 8));
}

TEST(ThroughputTest, ExecTimeSizeMismatchThrows) {
  const TimedGraph timed{test::figure2Graph(), {1, 1}};
  EXPECT_THROW((void)computeThroughput(timed), AnalysisError);
}

// -------------------------------------------------------------- CycleRatio

TEST(CycleRatioTest, SimpleRing) {
  sdf::TimedGraph ring{test::ringGraph(3), {2, 3, 4}};
  const auto result = maxCycleRatioHoward(ring);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ratio, Rational(9));  // (2+3+4)/1 token
}

TEST(CycleRatioTest, PicksHeaviestCycle) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  const auto c = g.addActor("c");
  // Cycle 1: a<->b with 1 token, weight 2+3=5.
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1, 1);
  // Cycle 2: a<->c with 2 tokens, weight 2+9=11 -> ratio 11/2 > 5.
  g.connect(a, 1, c, 1);
  g.connect(c, 1, a, 1, 2);
  sdf::TimedGraph timed{std::move(g), {2, 3, 9}};
  const auto result = maxCycleRatioHoward(timed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ratio, Rational(11, 2));
}

TEST(CycleRatioTest, DetectsDeadlockCycle) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1);  // zero tokens on the whole cycle
  sdf::TimedGraph timed{std::move(g), {1, 1}};
  EXPECT_EQ(maxCycleRatioHoward(timed).status, CycleRatioResult::Status::Deadlock);
  EXPECT_EQ(maxCycleRatioBruteForce(timed).status, CycleRatioResult::Status::Deadlock);
}

TEST(CycleRatioTest, AcyclicGraph) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  sdf::TimedGraph timed{std::move(g), {1, 1}};
  EXPECT_EQ(maxCycleRatioHoward(timed).status, CycleRatioResult::Status::Acyclic);
  EXPECT_EQ(maxCycleRatioBruteForce(timed).status, CycleRatioResult::Status::Acyclic);
}

TEST(CycleRatioTest, RejectsMultiRateGraphs) {
  sdf::TimedGraph timed{test::pipelineGraph(2, 1), {1, 1}};
  EXPECT_THROW((void)maxCycleRatioHoward(timed), AnalysisError);
  EXPECT_THROW((void)maxCycleRatioBruteForce(timed), AnalysisError);
}

TEST(CycleRatioTest, HowardMatchesBruteForceOnKnownGraph) {
  sdf::TimedGraph timed{test::figure2Graph(), {5, 3, 2}};
  const auto expansion = sdf::toHsdf(timed);
  const auto howard = maxCycleRatioHoward(expansion.hsdf);
  const auto brute = maxCycleRatioBruteForce(expansion.hsdf);
  ASSERT_TRUE(howard.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(howard.ratio, brute.ratio);
}

TEST(CycleRatioTest, ThroughputViaMcrMatchesStateSpace) {
  // A strongly connected graph recurs without extra capacities.
  const sdf::TimedGraph timed{test::ringGraph(4), {2, 5, 3, 7}};
  const auto mcr = throughputViaMcr(timed);
  const auto ss = computeThroughput(timed);
  ASSERT_TRUE(mcr.has_value());
  ASSERT_TRUE(ss.ok());
  EXPECT_EQ(*mcr, Rational(1, 17));
  EXPECT_EQ(*mcr, ss.iterationsPerCycle);
}

TEST(CycleRatioTest, ThroughputViaMcrDetectsDeadlock) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1);
  const sdf::TimedGraph timed{std::move(g), {1, 1}};
  EXPECT_FALSE(throughputViaMcr(timed).has_value());
}

// ----------------------------------------------------------- UnifiedEngine

TEST(EngineDispatchTest, AutoPicksMcrAndMatchesStateSpace) {
  const sdf::TimedGraph timed{test::ringGraph(4), {2, 5, 3, 7}};
  const auto viaAuto = computeThroughput(timed);
  ASSERT_TRUE(viaAuto.ok());
  EXPECT_EQ(viaAuto.engine, ThroughputEngine::Mcr);
  EXPECT_GT(viaAuto.hsdfActors, 0u);

  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  const auto viaStateSpace = computeThroughput(timed, options);
  ASSERT_TRUE(viaStateSpace.ok());
  EXPECT_EQ(viaStateSpace.engine, ThroughputEngine::StateSpace);
  EXPECT_EQ(viaAuto.iterationsPerCycle, viaStateSpace.iterationsPerCycle);
}

TEST(EngineDispatchTest, AutoConcurrencyFallsBackToStateSpace) {
  const sdf::TimedGraph timed{test::ringGraph(3), {1, 2, 3}};
  ThroughputOptions options;
  options.autoConcurrency = true;
  const auto result = computeThroughput(timed, options);
  EXPECT_EQ(result.engine, ThroughputEngine::StateSpace);
}

TEST(EngineDispatchTest, ForcedMcrRejectsAutoConcurrency) {
  const sdf::TimedGraph timed{test::ringGraph(3), {1, 2, 3}};
  ThroughputOptions options;
  options.engine = ThroughputEngine::Mcr;
  options.autoConcurrency = true;
  EXPECT_THROW((void)computeThroughput(timed, options), AnalysisError);
}

TEST(EngineDispatchTest, ExpansionSizeCapFallsBackToStateSpace) {
  const sdf::TimedGraph timed{test::ringGraph(3), {1, 2, 3}};
  ThroughputOptions options;
  options.maxMcrHsdfSize = 1;  // every expansion exceeds this
  const auto result = computeThroughput(timed, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.engine, ThroughputEngine::StateSpace);
}

TEST(EngineDispatchTest, EngineNames) {
  EXPECT_STREQ(throughputEngineName(ThroughputEngine::Auto), "auto");
  EXPECT_STREQ(throughputEngineName(ThroughputEngine::StateSpace), "state-space");
  EXPECT_STREQ(throughputEngineName(ThroughputEngine::Mcr), "mcr");
}

/// Two actors sharing one resource in a fixed a-b order, plus an
/// unbound third actor closing the ring.
struct SharedResourceFixture {
  sdf::TimedGraph timed;
  ResourceConstraints resources;

  SharedResourceFixture() {
    Graph g;
    const auto a = g.addActor("a");
    const auto b = g.addActor("b");
    const auto c = g.addActor("c");
    g.connect(a, 1, b, 1);
    g.connect(b, 1, c, 1);
    g.connect(c, 1, a, 1, 2);
    timed = TimedGraph{std::move(g), {4, 6, 5}};
    resources.actorResource = {0, 0, ResourceConstraints::kUnbound};
    resources.staticOrder = {{a, b}};
  }
};

TEST(EngineDispatchTest, ResourceConstrainedMcrMatchesStateSpace) {
  const SharedResourceFixture fx;
  const auto viaAuto = computeThroughput(fx.timed, fx.resources);
  ASSERT_TRUE(viaAuto.ok());
  EXPECT_EQ(viaAuto.engine, ThroughputEngine::Mcr);

  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  const auto viaStateSpace = computeThroughput(fx.timed, fx.resources, options);
  ASSERT_TRUE(viaStateSpace.ok());
  EXPECT_EQ(viaAuto.iterationsPerCycle, viaStateSpace.iterationsPerCycle);
  // The shared resource serializes a and b: its schedule cycle carries
  // one wrap-around token over 4 + 6 = 10 cycles of work, dominating
  // the ring cycle (15 cycles over 2 tokens).
  EXPECT_EQ(viaAuto.iterationsPerCycle, Rational(1, 10));
}

TEST(EngineDispatchTest, PartialScheduleFallsBackToStateSpace) {
  // A schedule covering only one of b's two firings per iteration has
  // no exact MCR encoding; Auto must fall back.
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 2, b, 1);
  g.connect(b, 1, a, 2, 2, "back");
  const TimedGraph timed{std::move(g), {3, 4}};
  ResourceConstraints resources;
  resources.actorResource = {0, 0};
  resources.staticOrder = {{a, b}};  // b fires twice per iteration (q = [1, 2])
  const auto result = computeThroughput(timed, resources);
  EXPECT_EQ(result.engine, ThroughputEngine::StateSpace);

  ThroughputOptions forced;
  forced.engine = ThroughputEngine::Mcr;
  EXPECT_THROW((void)computeThroughput(timed, resources, forced), AnalysisError);
}

TEST(EngineDispatchTest, ScheduledDeadlockAgreesAcrossEngines) {
  // Schedule order b-before-a while only a can fire first: both engines
  // must report deadlock.
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1, 1);
  const TimedGraph timed{std::move(g), {2, 3}};
  ResourceConstraints resources;
  resources.actorResource = {0, 0};
  resources.staticOrder = {{b, a}};
  const auto viaAuto = computeThroughput(timed, resources);
  EXPECT_EQ(viaAuto.status, ThroughputResult::Status::Deadlock);
  EXPECT_EQ(viaAuto.engine, ThroughputEngine::Mcr);

  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  EXPECT_EQ(computeThroughput(timed, resources, options).status,
            ThroughputResult::Status::Deadlock);
}

TEST(EngineDispatchTest, PrefixPruningKeepsResultExact) {
  // A tiny stored-state budget forces the pruner to drop transient
  // states; the detected period must still yield the exact throughput.
  const sdf::TimedGraph timed{test::ringGraph(5), {3, 1, 4, 1, 5}};
  ThroughputOptions pruned;
  pruned.engine = ThroughputEngine::StateSpace;
  pruned.maxStoredStates = 4;  // clamped to the internal minimum of 16
  const auto result = computeThroughput(timed, pruned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.iterationsPerCycle, throughputViaMcr(timed).value());
}

// ----------------------------------------------------------- HsdfEdgeCases

TEST(HsdfEdgeCaseTest, SelfLoopWithExcessTokens) {
  // Initial tokens exceeding the consumption rate: three tokens in a
  // two-actor ring let both actors pipeline fully.
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1, 3, "ring");  // 3 tokens > consRate 1
  const TimedGraph timed{std::move(g), {4, 6}};
  const auto mcr = throughputViaMcr(timed);
  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  const auto ss = computeThroughput(timed, options);
  ASSERT_TRUE(mcr.has_value());
  ASSERT_TRUE(ss.ok());
  EXPECT_EQ(*mcr, ss.iterationsPerCycle);
  EXPECT_EQ(*mcr, Rational(1, 6));  // enough tokens: the slower actor dominates
}

TEST(HsdfEdgeCaseTest, MultiRateChainWithLargeRepetitionVector) {
  // Rates 5:3 then 1:3 give q = [9, 15, 5]: 29 HSDF copies. Bound the
  // chain with capacities so the state-space engine recurs, and check
  // both engines produce the identical exact rational.
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  const auto c = g.addActor("c");
  g.connect(a, 5, b, 3, 0, "ab");
  g.connect(b, 1, c, 3, 0, "bc");
  const TimedGraph timed{std::move(g), {7, 2, 3}};
  const auto capacities = minimalDeadlockFreeCapacities(timed.graph);
  ASSERT_TRUE(capacities.has_value());
  const TimedGraph bounded = withCapacities(timed, *capacities);

  const auto viaAuto = computeThroughput(bounded);
  EXPECT_EQ(viaAuto.engine, ThroughputEngine::Mcr);
  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  const auto ss = computeThroughput(bounded, options);
  ASSERT_TRUE(viaAuto.ok());
  ASSERT_TRUE(ss.ok());
  EXPECT_EQ(viaAuto.iterationsPerCycle, ss.iterationsPerCycle);
}

TEST(HsdfEdgeCaseTest, InitialTokensExceedingConsumptionRate) {
  // d > cons on a multi-rate channel exercises the "initial token"
  // branch of the expansion for several firings of the consumer.
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 2, b, 3, 7, "ab");  // 7 initial tokens, cons 3
  g.connect(b, 3, a, 2, 0, "ba");  // mirrored rates keep q = [3, 2]
  const TimedGraph timed{std::move(g), {5, 4}};
  const auto mcr = throughputViaMcr(timed);
  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  const auto ss = computeThroughput(timed, options);
  ASSERT_TRUE(mcr.has_value());
  ASSERT_TRUE(ss.ok());
  EXPECT_EQ(*mcr, ss.iterationsPerCycle);
}

TEST(HsdfEdgeCaseTest, PureSelfLoopActor) {
  // A single actor whose only channel is a multi-token self-loop.
  Graph g;
  const auto a = g.addActor("a");
  g.connect(a, 2, a, 2, 4, "self");
  const TimedGraph timed{std::move(g), {9}};
  const auto mcr = throughputViaMcr(timed);
  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  const auto ss = computeThroughput(timed, options);
  ASSERT_TRUE(mcr.has_value());
  ASSERT_TRUE(ss.ok());
  EXPECT_EQ(*mcr, ss.iterationsPerCycle);
  EXPECT_EQ(*mcr, Rational(1, 9));  // serialized by the seq constraint
}

// ------------------------------------------------------------------ Buffer

TEST(BufferTest, WithCapacitiesAddsBackEdges) {
  const Graph g = test::pipelineGraph(2, 3);
  const Graph capped = withCapacities(g, {6});
  EXPECT_EQ(capped.channelCount(), 2u);
  const auto space = capped.findChannel("link_space");
  ASSERT_TRUE(space.has_value());
  EXPECT_EQ(capped.channel(*space).initialTokens, 6u);
  EXPECT_EQ(capped.channel(*space).prodRate, 3u);
  EXPECT_EQ(capped.channel(*space).consRate, 2u);
}

TEST(BufferTest, WithCapacitiesPreservesConcurrencyLimits) {
  // Regression: the TimedGraph overload once rebuilt the struct field by
  // field and dropped maxConcurrent, silently serializing every actor of
  // the capacitated graph (limit-0 comm-model latency stages included).
  Graph g = test::pipelineGraph(1, 1);
  TimedGraph timed{std::move(g), {5, 7}};
  timed.maxConcurrent = {0, 3};
  const TimedGraph capped = withCapacities(timed, {4});
  EXPECT_EQ(capped.maxConcurrent, timed.maxConcurrent);
  EXPECT_EQ(capped.execTime, timed.execTime);
  EXPECT_EQ(capped.graph.channelCount(), 2u);
}

TEST(BufferTest, CapacitatedPipelinedStageKeepsItsOverlap) {
  // src -> lat -> dst with a pipelined (limit-0) latency stage, both
  // channels capacitated to 4. The critical cycle runs through a space
  // back-edge: 4 tokens over src+lat (or lat+dst) = 101 cycles of work,
  // so throughput is 4/101. The old dropped-limit rebuild serialized
  // lat, whose implicit self-edge then dominated at 1/100.
  Graph g;
  const auto src = g.addActor("src");
  const auto lat = g.addActor("lat");
  const auto dst = g.addActor("dst");
  g.connect(src, 1, lat, 1, 0, "in");
  g.connect(lat, 1, dst, 1, 0, "out");
  TimedGraph timed{std::move(g), {1, 100, 1}};
  timed.maxConcurrent = {1, 0, 1};
  const TimedGraph capped = withCapacities(timed, {4, 4});

  const auto viaMcr = computeThroughput(capped);
  ASSERT_TRUE(viaMcr.ok());
  EXPECT_EQ(viaMcr.engine, ThroughputEngine::Mcr);
  EXPECT_EQ(viaMcr.iterationsPerCycle, Rational(4, 101));

  ThroughputOptions stateSpace;
  stateSpace.engine = ThroughputEngine::StateSpace;
  const auto reference = computeThroughput(capped, stateSpace);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference.iterationsPerCycle, viaMcr.iterationsPerCycle);

  // The serialized reading is strictly slower — preserving the limit is
  // a real calibration change, not a cosmetic one.
  TimedGraph serialized = capped;
  serialized.maxConcurrent.clear();
  const auto slow = computeThroughput(serialized);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow.iterationsPerCycle, Rational(1, 100));
  EXPECT_LT(slow.iterationsPerCycle, viaMcr.iterationsPerCycle);
}

TEST(BufferTest, ZeroCapacityMeansUnbounded) {
  const Graph g = test::pipelineGraph(1, 1);
  const Graph capped = withCapacities(g, {0});
  EXPECT_EQ(capped.channelCount(), 1u);
}

TEST(BufferTest, SelfEdgesAreNeverCapacitated) {
  Graph g;
  const auto a = g.addActor("a");
  g.connect(a, 1, a, 1, 1);
  const Graph capped = withCapacities(g, {4});
  EXPECT_EQ(capped.channelCount(), 1u);
}

TEST(BufferTest, CapacityBelowInitialTokensThrows) {
  const Graph g = test::pipelineGraph(1, 1, /*initialTokens=*/5);
  EXPECT_THROW(withCapacities(g, {3}), ModelError);
}

TEST(BufferTest, CapacityBelowRateThrows) {
  const Graph g = test::pipelineGraph(4, 1);
  EXPECT_THROW(withCapacities(g, {2}), ModelError);
}

TEST(BufferTest, LowerBoundFormula) {
  sdf::Channel c;
  c.prodRate = 2;
  c.consRate = 3;
  c.initialTokens = 0;
  // 2 + 3 - gcd(2,3) + 0 = 4
  EXPECT_EQ(capacityLowerBound(c), 4u);
  c.prodRate = 4;
  c.consRate = 4;
  EXPECT_EQ(capacityLowerBound(c), 4u);
}

TEST(BufferTest, MinimalCapacitiesKeepGraphLive) {
  const Graph g = test::figure2Graph();
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  EXPECT_TRUE(sdf::isDeadlockFree(withCapacities(g, *capacities)));
}

TEST(BufferTest, MinimalCapacitiesOfPipeline) {
  const Graph g = test::pipelineGraph(2, 3);
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  EXPECT_GE((*capacities)[0], 4u);
  EXPECT_TRUE(sdf::isDeadlockFree(withCapacities(g, *capacities)));
}

TEST(BufferTest, DeadlockedGraphHasNoCapacities) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1);
  EXPECT_FALSE(minimalDeadlockFreeCapacities(g).has_value());
}

TEST(BufferTest, SizingReachesUnboundedThroughput) {
  Graph g = test::pipelineGraph(1, 1);
  const TimedGraph timed{std::move(g), {4, 4}};
  const auto unbounded = computeThroughput(timed);
  ASSERT_TRUE(unbounded.ok());
  const auto sized = sizeBuffersForThroughput(timed, unbounded.iterationsPerCycle);
  ASSERT_TRUE(sized.has_value());
  EXPECT_GE(sized->achievedThroughput, unbounded.iterationsPerCycle);
  EXPECT_GT(sized->totalBytes, 0u);
}

TEST(BufferTest, SizingTreatsUnboundedThroughputAsMeetingAnyTarget) {
  // Every cycle has zero total execution time: the graph fires
  // infinitely fast, so any finite target is met by the minimal
  // deadlock-free distribution (regression: this used to be reported
  // as "target unreachable").
  Graph g = test::pipelineGraph(1, 1);
  const TimedGraph timed{std::move(g), {0, 0}};
  const auto sized = sizeBuffersForThroughput(timed, Rational(5));
  ASSERT_TRUE(sized.has_value());
  EXPECT_GE(sized->achievedThroughput, Rational(5));
}

TEST(BufferTest, SizingFailsForImpossibleTarget) {
  Graph g = test::pipelineGraph(1, 1);
  const TimedGraph timed{std::move(g), {4, 4}};
  EXPECT_FALSE(sizeBuffersForThroughput(timed, Rational(1, 2)).has_value());
}

TEST(BufferTest, ThroughputIsMonotoneInCapacity) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1, 0, "ab");
  const TimedGraph timed{std::move(g), {2, 5}};
  Rational previous(0);
  for (std::uint64_t cap = 1; cap <= 5; ++cap) {
    const auto result = computeThroughput(withCapacities(timed, {cap}));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.iterationsPerCycle, previous);
    previous = result.iterationsPerCycle;
  }
}

// ------------------------------------------------------------- Incremental

TEST(IncrementalTest, PatchedTokensMatchFromScratch) {
  // Ring a -> b -> a; the back-edge acts as the capacity. Growing it
  // through the context must track a from-scratch analysis exactly.
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1, 0, "fwd");
  const auto back = g.connect(b, 1, a, 1, 1, "back");
  TimedGraph timed{std::move(g), {3, 7}};

  IncrementalThroughput incremental(timed);
  EXPECT_TRUE(incremental.onFastPath());
  for (std::uint64_t tokens = 1; tokens <= 4; ++tokens) {
    timed.graph.setInitialTokens(back, tokens);
    incremental.setInitialTokens(back, tokens);
    const auto fresh = computeThroughput(timed);
    const auto patched = incremental.compute();
    ASSERT_EQ(patched.status, fresh.status) << "tokens " << tokens;
    EXPECT_EQ(patched.iterationsPerCycle, fresh.iterationsPerCycle) << "tokens " << tokens;
    EXPECT_EQ(patched.engine, ThroughputEngine::Mcr);
  }
}

TEST(IncrementalTest, DetectsDeadlockAfterTokenRemoval) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1, 0, "fwd");
  const auto back = g.connect(b, 1, a, 1, 1, "back");
  const TimedGraph timed{std::move(g), {3, 7}};
  IncrementalThroughput incremental(timed);
  ASSERT_TRUE(incremental.compute().ok());
  incremental.setInitialTokens(back, 0);
  EXPECT_EQ(incremental.compute().status, ThroughputResult::Status::Deadlock);
  incremental.setInitialTokens(back, 2);
  EXPECT_TRUE(incremental.compute().ok());
}

TEST(IncrementalTest, AutoConcurrencyFallsBackToStateSpace) {
  Graph g;
  const auto a = g.addActor("a");
  g.connect(a, 1, a, 1, 3, "state");
  const TimedGraph timed{std::move(g), {5}};
  ThroughputOptions options;
  options.autoConcurrency = true;
  IncrementalThroughput incremental(timed, nullptr, options);
  EXPECT_FALSE(incremental.onFastPath());
  const auto viaContext = incremental.compute();
  const auto fresh = computeThroughput(timed, options);
  EXPECT_EQ(viaContext.engine, ThroughputEngine::StateSpace);
  ASSERT_EQ(viaContext.status, fresh.status);
  EXPECT_EQ(viaContext.iterationsPerCycle, fresh.iterationsPerCycle);
}

TEST(IncrementalTest, OutOfRangeChannelThrows) {
  Graph g;
  const auto a = g.addActor("a");
  g.connect(a, 1, a, 1, 1);
  IncrementalThroughput incremental(TimedGraph{std::move(g), {1}});
  EXPECT_THROW((void)incremental.setInitialTokens(99, 1), AnalysisError);
}

// --------------------------------------------------- Concurrency limits > 1

TEST(ThroughputTest, FiniteConcurrencyLimitStaysOnFastPathAndMatches) {
  // One actor, limit 2, self-timed: two overlapping firings of 10
  // cycles each -> 2 iterations per 10 cycles.
  Graph g;
  g.addActor("a");
  TimedGraph timed{std::move(g), {10}};
  timed.maxConcurrent = {2};
  const char* reason = nullptr;
  EXPECT_TRUE(mcrFastPathApplicable(timed, nullptr, {}, &reason)) << reason;
  const auto viaMcr = computeThroughput(timed);
  EXPECT_EQ(viaMcr.engine, ThroughputEngine::Mcr);
  ASSERT_TRUE(viaMcr.ok());
  EXPECT_EQ(viaMcr.iterationsPerCycle, Rational(2, 10));

  ThroughputOptions stateSpace;
  stateSpace.engine = ThroughputEngine::StateSpace;
  const auto reference = computeThroughput(timed, stateSpace);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference.iterationsPerCycle, viaMcr.iterationsPerCycle);
}

TEST(ThroughputTest, ConcurrencyLimitBoundsPipelineDepth) {
  // Producer (limit 3) feeding a consumer through a capacitated channel:
  // the limit gates how many productions can be in flight.
  for (const std::uint32_t limit : {1u, 2u, 3u}) {
    Graph g;
    const auto p = g.addActor("p");
    const auto c = g.addActor("c");
    g.connect(p, 1, c, 1, 0, "fwd");
    g.connect(c, 1, p, 1, 4, "space");
    TimedGraph timed{std::move(g), {4, 12}};
    timed.maxConcurrent = {limit, 1};
    const auto viaMcr = computeThroughput(timed);
    ASSERT_TRUE(viaMcr.ok());
    EXPECT_EQ(viaMcr.engine, ThroughputEngine::Mcr);
    ThroughputOptions stateSpace;
    stateSpace.engine = ThroughputEngine::StateSpace;
    const auto reference = computeThroughput(timed, stateSpace);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(viaMcr.iterationsPerCycle, reference.iterationsPerCycle) << "limit " << limit;
  }
}

}  // namespace
}  // namespace mamps::analysis
