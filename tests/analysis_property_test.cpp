// Property-based tests on randomized consistent SDF graphs. These pin
// the relations between the independent implementations: repetition
// vectors satisfy the balance equations, the state-space throughput
// analysis agrees with the MCR analysis on the HSDF expansion, buffer
// capacities preserve liveness, and throughput is monotone in buffer
// capacity.
#include <gtest/gtest.h>

#include "analysis/buffer.hpp"
#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "sdf/hsdf.hpp"
#include "sdf/repetition_vector.hpp"
#include "test_util.hpp"

namespace mamps::analysis {
namespace {

using sdf::Graph;
using sdf::TimedGraph;

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphProperty, RepetitionVectorSatisfiesBalanceEquations) {
  Rng rng(GetParam());
  const Graph g = test::randomConsistentGraph(rng);
  const auto q = sdf::computeRepetitionVector(g);
  ASSERT_TRUE(q.has_value()) << "generator must produce consistent graphs";
  for (const sdf::Channel& c : g.channels()) {
    EXPECT_EQ((*q)[c.src] * c.prodRate, (*q)[c.dst] * c.consRate) << "channel " << c.name;
  }
}

TEST_P(RandomGraphProperty, RepetitionVectorIsMinimal) {
  Rng rng(GetParam() + 1000);
  const Graph g = test::randomConsistentGraph(rng);
  const auto q = sdf::computeRepetitionVector(g);
  ASSERT_TRUE(q.has_value());
  // Minimality: the gcd over each connected component must be 1; for the
  // generator's connected graphs, the global gcd is 1.
  std::uint64_t gcd = 0;
  for (const auto v : *q) {
    gcd = std::gcd(gcd, v);
    EXPECT_GT(v, 0u);
  }
  EXPECT_EQ(gcd, 1u);
}

TEST_P(RandomGraphProperty, GeneratedGraphsAreLive) {
  Rng rng(GetParam() + 2000);
  const Graph g = test::randomConsistentGraph(rng);
  EXPECT_TRUE(sdf::isDeadlockFree(g));
}

TEST_P(RandomGraphProperty, OneIterationRestoresInitialTokens) {
  Rng rng(GetParam() + 3000);
  const Graph g = test::randomConsistentGraph(rng);
  const auto q = *sdf::computeRepetitionVector(g);
  // Net token change per channel over one iteration is zero by the
  // balance equations; verify by counting.
  for (const sdf::Channel& c : g.channels()) {
    const std::int64_t produced = static_cast<std::int64_t>(q[c.src] * c.prodRate);
    const std::int64_t consumed = static_cast<std::int64_t>(q[c.dst] * c.consRate);
    EXPECT_EQ(produced, consumed);
  }
}

TEST_P(RandomGraphProperty, StateSpaceThroughputMatchesMcrOnHsdf) {
  Rng rng(GetParam() + 4000);
  test::RandomGraphOptions opt;
  opt.maxActors = 5;
  opt.maxQ = 3;
  const Graph g = test::randomConsistentGraph(rng, opt);
  // Compare on the strongly-bounded (capacitated) graph: state-space
  // analysis requires bounded token accumulation, and the flow only ever
  // analyzes binding-aware graphs, which are bounded by construction.
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  const TimedGraph bounded =
      withCapacities(TimedGraph{g, test::randomExecTimes(rng, g)}, *capacities);

  const auto viaStateSpace = computeThroughput(bounded);
  const auto viaMcr = throughputViaMcr(bounded);
  ASSERT_TRUE(viaStateSpace.ok());
  ASSERT_TRUE(viaMcr.has_value());
  EXPECT_EQ(viaStateSpace.iterationsPerCycle, *viaMcr)
      << "state-space and MCR throughput disagree (seed " << GetParam() << ")";
}

TEST_P(RandomGraphProperty, HowardMatchesBruteForceOnRandomHsdf) {
  Rng rng(GetParam() + 5000);
  test::RandomGraphOptions opt;
  opt.maxActors = 4;
  opt.maxQ = 3;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const TimedGraph timed{g, test::randomExecTimes(rng, g)};
  const auto expansion = sdf::toHsdf(timed);
  const auto howard = maxCycleRatioHoward(expansion.hsdf);
  const auto brute = maxCycleRatioBruteForce(expansion.hsdf);
  ASSERT_EQ(howard.status, brute.status);
  if (howard.ok()) {
    EXPECT_EQ(howard.ratio, brute.ratio) << "seed " << GetParam();
  }
}

TEST_P(RandomGraphProperty, MinimalCapacitiesPreserveLiveness) {
  Rng rng(GetParam() + 6000);
  const Graph g = test::randomConsistentGraph(rng);
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  EXPECT_TRUE(sdf::isDeadlockFree(withCapacities(g, *capacities)));
}

TEST_P(RandomGraphProperty, BoundedThroughputNeverExceedsUnbounded) {
  Rng rng(GetParam() + 7000);
  test::RandomGraphOptions opt;
  opt.maxActors = 5;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const TimedGraph timed{g, test::randomExecTimes(rng, g)};
  // Unbounded-buffer ceiling via MCR (handles non-strongly-bounded graphs).
  const auto unbounded = throughputViaMcr(timed);
  ASSERT_TRUE(unbounded.has_value());

  auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  const auto bounded = computeThroughput(withCapacities(timed, *capacities));
  ASSERT_TRUE(bounded.ok());
  EXPECT_LE(bounded.iterationsPerCycle, *unbounded);
}

TEST_P(RandomGraphProperty, ThroughputMonotoneUnderCapacityGrowth) {
  Rng rng(GetParam() + 8000);
  test::RandomGraphOptions opt;
  opt.maxActors = 4;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const TimedGraph timed{g, test::randomExecTimes(rng, g)};
  auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());

  Rational previous(0);
  for (int round = 0; round < 3; ++round) {
    const auto result = computeThroughput(withCapacities(timed, *capacities));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.iterationsPerCycle, previous);
    previous = result.iterationsPerCycle;
    for (std::size_t c = 0; c < capacities->size(); ++c) {
      if ((*capacities)[c] != 0) {
        (*capacities)[c] += g.channel(static_cast<sdf::ChannelId>(c)).prodRate;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace mamps::analysis
