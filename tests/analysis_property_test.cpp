// Property-based tests on randomized consistent SDF graphs. These pin
// the relations between the independent implementations: repetition
// vectors satisfy the balance equations, the state-space throughput
// analysis agrees with the MCR analysis on the HSDF expansion, buffer
// capacities preserve liveness, and throughput is monotone in buffer
// capacity.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <optional>
#include <string>

#include "analysis/buffer.hpp"
#include "analysis/incremental.hpp"
#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "sdf/hsdf.hpp"
#include "sdf/repetition_vector.hpp"
#include "test_util.hpp"

namespace mamps::analysis {
namespace {

using sdf::Graph;
using sdf::TimedGraph;

/// Base seed for every randomized sequence, taken from MAMPS_TEST_SEED.
/// Unset or unparsable means 0, i.e. the historical fixed sequences; a
/// CI job can export a different value to explore fresh graphs while
/// every failure stays reproducible from the logged seed.
std::uint64_t baseSeed() {
  static const std::uint64_t value = [] {
    const char* env = std::getenv("MAMPS_TEST_SEED");
    if (env == nullptr || *env == '\0' || *env == '-') return std::uint64_t{0};
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') return std::uint64_t{0};
    return std::uint64_t{parsed};
  }();
  return value;
}

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    // Attach the effective seeding to every failure message so a red run
    // is reproducible with MAMPS_TEST_SEED=<base> and the test's param.
    trace_.emplace(__FILE__, __LINE__,
                   "MAMPS_TEST_SEED base=" + std::to_string(baseSeed()) +
                       " param=" + std::to_string(GetParam()));
  }
  void TearDown() override { trace_.reset(); }

  /// Rng for one property; `offset` decorrelates the per-test sequences.
  [[nodiscard]] Rng makeRng(std::uint64_t offset) const {
    return Rng(baseSeed() + GetParam() + offset);
  }

 private:
  std::optional<::testing::ScopedTrace> trace_;
};

TEST_P(RandomGraphProperty, RepetitionVectorSatisfiesBalanceEquations) {
  Rng rng = makeRng(0);
  const Graph g = test::randomConsistentGraph(rng);
  const auto q = sdf::computeRepetitionVector(g);
  ASSERT_TRUE(q.has_value()) << "generator must produce consistent graphs";
  for (const sdf::Channel& c : g.channels()) {
    EXPECT_EQ((*q)[c.src] * c.prodRate, (*q)[c.dst] * c.consRate) << "channel " << c.name;
  }
}

TEST_P(RandomGraphProperty, RepetitionVectorIsMinimal) {
  Rng rng = makeRng(1000);
  const Graph g = test::randomConsistentGraph(rng);
  const auto q = sdf::computeRepetitionVector(g);
  ASSERT_TRUE(q.has_value());
  // Minimality: the gcd over each connected component must be 1; for the
  // generator's connected graphs, the global gcd is 1.
  std::uint64_t gcd = 0;
  for (const auto v : *q) {
    gcd = std::gcd(gcd, v);
    EXPECT_GT(v, 0u);
  }
  EXPECT_EQ(gcd, 1u);
}

TEST_P(RandomGraphProperty, GeneratedGraphsAreLive) {
  Rng rng = makeRng(2000);
  const Graph g = test::randomConsistentGraph(rng);
  EXPECT_TRUE(sdf::isDeadlockFree(g));
}

TEST_P(RandomGraphProperty, OneIterationRestoresInitialTokens) {
  Rng rng = makeRng(3000);
  const Graph g = test::randomConsistentGraph(rng);
  const auto q = *sdf::computeRepetitionVector(g);
  // Net token change per channel over one iteration is zero by the
  // balance equations; verify by counting.
  for (const sdf::Channel& c : g.channels()) {
    const std::int64_t produced = static_cast<std::int64_t>(q[c.src] * c.prodRate);
    const std::int64_t consumed = static_cast<std::int64_t>(q[c.dst] * c.consRate);
    EXPECT_EQ(produced, consumed);
  }
}

TEST_P(RandomGraphProperty, StateSpaceThroughputMatchesMcrOnHsdf) {
  Rng rng = makeRng(4000);
  test::RandomGraphOptions opt;
  opt.maxActors = 5;
  opt.maxQ = 3;
  const Graph g = test::randomConsistentGraph(rng, opt);
  // Compare on the strongly-bounded (capacitated) graph: state-space
  // analysis requires bounded token accumulation, and the flow only ever
  // analyzes binding-aware graphs, which are bounded by construction.
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  const TimedGraph bounded =
      withCapacities(TimedGraph{g, test::randomExecTimes(rng, g)}, *capacities);

  ThroughputOptions stateSpace;
  stateSpace.engine = ThroughputEngine::StateSpace;
  const auto viaStateSpace = computeThroughput(bounded, stateSpace);
  const auto viaMcr = throughputViaMcr(bounded);
  ASSERT_TRUE(viaStateSpace.ok());
  ASSERT_TRUE(viaMcr.has_value());
  EXPECT_EQ(viaStateSpace.iterationsPerCycle, *viaMcr)
      << "state-space and MCR throughput disagree (seed " << GetParam() << ")";
}

TEST_P(RandomGraphProperty, ResourceConstrainedEnginesAgree) {
  // Bind the actors of a strongly-bounded random graph to a couple of
  // shared resources with a randomized full-iteration static order and
  // pin the two engines against each other: the MCR encoding of the
  // schedules must reproduce the state-space semantics exactly,
  // including schedule-induced deadlocks.
  Rng rng = makeRng(9000);
  test::RandomGraphOptions opt;
  opt.maxActors = 4;
  opt.maxQ = 3;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  TimedGraph bounded = withCapacities(TimedGraph{g, test::randomExecTimes(rng, g)}, *capacities);
  const auto q = *sdf::computeRepetitionVector(bounded.graph);

  ResourceConstraints resources;
  const std::uint32_t resourceCount = static_cast<std::uint32_t>(rng.range(1, 2));
  resources.staticOrder.resize(resourceCount);
  resources.actorResource.assign(bounded.graph.actorCount(), ResourceConstraints::kUnbound);
  // Only the original actors are bound (the space back-edge construction
  // adds no actors); leave a random subset unbound.
  std::vector<std::vector<sdf::ActorId>> pending(resourceCount);
  for (sdf::ActorId a = 0; a < g.actorCount(); ++a) {
    if (rng.chance(0.25)) {
      continue;  // dedicated resource
    }
    const auto r = static_cast<std::uint32_t>(rng.range(0, resourceCount - 1));
    resources.actorResource[a] = r;
    for (std::uint64_t i = 0; i < q[a]; ++i) {
      pending[r].push_back(a);
    }
  }
  // Random interleaving that keeps per-actor appearance order intact
  // (any interleaving does: appearances of one actor are interchangeable).
  for (std::uint32_t r = 0; r < resourceCount; ++r) {
    auto& source = pending[r];
    auto& order = resources.staticOrder[r];
    while (!source.empty()) {
      const std::size_t pick = rng.range(0, source.size() - 1);
      order.push_back(source[pick]);
      source.erase(source.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }

  ThroughputOptions stateSpace;
  stateSpace.engine = ThroughputEngine::StateSpace;
  const auto viaStateSpace = computeThroughput(bounded, resources, stateSpace);
  const auto viaMcr = computeThroughput(bounded, resources);
  ASSERT_EQ(viaMcr.engine, ThroughputEngine::Mcr)
      << "full-iteration schedules must stay on the fast path";
  ASSERT_EQ(viaStateSpace.status, viaMcr.status) << "seed " << GetParam();
  if (viaStateSpace.ok()) {
    EXPECT_EQ(viaStateSpace.iterationsPerCycle, viaMcr.iterationsPerCycle)
        << "seed " << GetParam();
  }
}

TEST_P(RandomGraphProperty, IncrementalMatchesFromScratchAcrossBufferGrowth) {
  // The DSE engine's core invariant: patching capacity back-edge token
  // counts in an IncrementalThroughput context yields the *exact* same
  // rational (and verdict, and engine) as a from-scratch
  // computeThroughput of the patched graph, across a random sequence of
  // buffer-growth steps.
  Rng rng = makeRng(10000);
  test::RandomGraphOptions opt;
  opt.maxActors = 5;
  opt.maxQ = 3;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  TimedGraph bounded =
      withCapacities(TimedGraph{g, test::randomExecTimes(rng, g)}, *capacities);

  IncrementalThroughput incremental(bounded);
  for (int round = 0; round < 6; ++round) {
    const auto fresh = computeThroughput(bounded);
    const auto patched = incremental.compute();
    ASSERT_EQ(patched.engine, fresh.engine) << "round " << round;
    ASSERT_EQ(patched.status, fresh.status) << "round " << round;
    EXPECT_EQ(patched.iterationsPerCycle, fresh.iterationsPerCycle) << "round " << round;
    EXPECT_EQ(patched.hsdfActors, fresh.hsdfActors) << "round " << round;
    // Grow a random subset of the capacity back-edges (the channels
    // appended after the forward channels) in both representations.
    for (sdf::ChannelId c = static_cast<sdf::ChannelId>(g.channelCount());
         c < bounded.graph.channelCount(); ++c) {
      if (!rng.chance(0.5)) {
        continue;
      }
      const std::uint64_t tokens =
          bounded.graph.channel(c).initialTokens + rng.range(1, 4);
      bounded.graph.setInitialTokens(c, tokens);
      incremental.setInitialTokens(c, tokens);
    }
  }
}

TEST_P(RandomGraphProperty, IncrementalMatchesFromScratchUnderSchedules) {
  // Same invariant on resource-constrained graphs: the cached
  // static-order chains plus warm-started Howard must stay exact while
  // capacities grow.
  Rng rng = makeRng(11000);
  test::RandomGraphOptions opt;
  opt.maxActors = 4;
  opt.maxQ = 3;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  TimedGraph bounded =
      withCapacities(TimedGraph{g, test::randomExecTimes(rng, g)}, *capacities);
  const auto q = *sdf::computeRepetitionVector(bounded.graph);

  // Bind every original actor to one shared resource with a randomized
  // full-iteration order (appearances of one actor are interchangeable).
  ResourceConstraints resources;
  resources.staticOrder.resize(1);
  resources.actorResource.assign(bounded.graph.actorCount(), ResourceConstraints::kUnbound);
  std::vector<sdf::ActorId> pending;
  for (sdf::ActorId a = 0; a < g.actorCount(); ++a) {
    resources.actorResource[a] = 0;
    for (std::uint64_t i = 0; i < q[a]; ++i) {
      pending.push_back(a);
    }
  }
  while (!pending.empty()) {
    const std::size_t pick = rng.range(0, pending.size() - 1);
    resources.staticOrder[0].push_back(pending[pick]);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  IncrementalThroughput incremental(bounded, &resources);
  EXPECT_TRUE(incremental.onFastPath());
  for (int round = 0; round < 5; ++round) {
    const auto fresh = computeThroughput(bounded, resources);
    const auto patched = incremental.compute();
    ASSERT_EQ(patched.engine, fresh.engine) << "round " << round;
    ASSERT_EQ(patched.status, fresh.status) << "round " << round;
    EXPECT_EQ(patched.iterationsPerCycle, fresh.iterationsPerCycle) << "round " << round;
    for (sdf::ChannelId c = static_cast<sdf::ChannelId>(g.channelCount());
         c < bounded.graph.channelCount(); ++c) {
      if (!rng.chance(0.4)) {
        continue;
      }
      const std::uint64_t tokens =
          bounded.graph.channel(c).initialTokens + rng.range(1, 3);
      bounded.graph.setInitialTokens(c, tokens);
      incremental.setInitialTokens(c, tokens);
    }
  }
}

TEST_P(RandomGraphProperty, ConcurrencyLimitedEnginesAgree) {
  // Finite self-concurrency limits > 1 took the state-space engine
  // before the virtual-self-edge encoding landed in toHsdf; pin the
  // engines against each other under random limits.
  Rng rng = makeRng(12000);
  test::RandomGraphOptions opt;
  opt.maxActors = 4;
  opt.maxQ = 3;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  TimedGraph bounded =
      withCapacities(TimedGraph{g, test::randomExecTimes(rng, g)}, *capacities);
  bounded.maxConcurrent.resize(bounded.graph.actorCount());
  for (auto& limit : bounded.maxConcurrent) {
    limit = static_cast<std::uint32_t>(rng.range(0, 3));  // 0 = unlimited
  }

  ThroughputOptions stateSpace;
  stateSpace.engine = ThroughputEngine::StateSpace;
  const auto viaStateSpace = computeThroughput(bounded, stateSpace);
  const auto viaMcr = computeThroughput(bounded);
  ASSERT_EQ(viaMcr.engine, ThroughputEngine::Mcr)
      << "finite limits must stay on the fast path";
  ASSERT_EQ(viaStateSpace.status, viaMcr.status) << "seed " << GetParam();
  if (viaStateSpace.ok()) {
    EXPECT_EQ(viaStateSpace.iterationsPerCycle, viaMcr.iterationsPerCycle)
        << "seed " << GetParam();
  }
}

TEST_P(RandomGraphProperty, WithCapacitiesPreservesConcurrencyLimits) {
  // Unlike ConcurrencyLimitedEnginesAgree (which assigns limits to the
  // already-capacitated graph, and therefore never noticed), this
  // property assigns random limits *before* capacitating — the exact
  // path the flow takes through buildBindingAware. withCapacities must
  // carry the limits through, and both engines must agree on the
  // resulting capacitated, concurrency-limited graph.
  Rng rng = makeRng(13000);
  test::RandomGraphOptions opt;
  opt.maxActors = 4;
  opt.maxQ = 3;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  TimedGraph timed{g, test::randomExecTimes(rng, g)};
  timed.maxConcurrent.resize(timed.graph.actorCount());
  for (auto& limit : timed.maxConcurrent) {
    limit = static_cast<std::uint32_t>(rng.range(0, 3));  // 0 = unlimited
  }

  const TimedGraph bounded = withCapacities(timed, *capacities);
  ASSERT_EQ(bounded.maxConcurrent, timed.maxConcurrent) << "seed " << GetParam();
  ASSERT_EQ(bounded.execTime, timed.execTime) << "seed " << GetParam();

  ThroughputOptions stateSpace;
  stateSpace.engine = ThroughputEngine::StateSpace;
  const auto viaStateSpace = computeThroughput(bounded, stateSpace);
  const auto viaMcr = computeThroughput(bounded);
  ASSERT_EQ(viaMcr.engine, ThroughputEngine::Mcr)
      << "finite limits must stay on the fast path";
  ASSERT_EQ(viaStateSpace.status, viaMcr.status) << "seed " << GetParam();
  if (viaStateSpace.ok()) {
    EXPECT_EQ(viaStateSpace.iterationsPerCycle, viaMcr.iterationsPerCycle)
        << "seed " << GetParam();
  }
}

TEST_P(RandomGraphProperty, HowardMatchesBruteForceOnRandomHsdf) {
  Rng rng = makeRng(5000);
  test::RandomGraphOptions opt;
  opt.maxActors = 4;
  opt.maxQ = 3;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const TimedGraph timed{g, test::randomExecTimes(rng, g)};
  const auto expansion = sdf::toHsdf(timed);
  const auto howard = maxCycleRatioHoward(expansion.hsdf);
  const auto brute = maxCycleRatioBruteForce(expansion.hsdf);
  ASSERT_EQ(howard.status, brute.status);
  if (howard.ok()) {
    EXPECT_EQ(howard.ratio, brute.ratio) << "seed " << GetParam();
  }
}

TEST_P(RandomGraphProperty, MinimalCapacitiesPreserveLiveness) {
  Rng rng = makeRng(6000);
  const Graph g = test::randomConsistentGraph(rng);
  const auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  EXPECT_TRUE(sdf::isDeadlockFree(withCapacities(g, *capacities)));
}

TEST_P(RandomGraphProperty, BoundedThroughputNeverExceedsUnbounded) {
  Rng rng = makeRng(7000);
  test::RandomGraphOptions opt;
  opt.maxActors = 5;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const TimedGraph timed{g, test::randomExecTimes(rng, g)};
  // Unbounded-buffer ceiling via MCR (handles non-strongly-bounded graphs).
  const auto unbounded = throughputViaMcr(timed);
  ASSERT_TRUE(unbounded.has_value());

  auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());
  const auto bounded = computeThroughput(withCapacities(timed, *capacities));
  ASSERT_TRUE(bounded.ok());
  EXPECT_LE(bounded.iterationsPerCycle, *unbounded);
}

TEST_P(RandomGraphProperty, ThroughputMonotoneUnderCapacityGrowth) {
  Rng rng = makeRng(8000);
  test::RandomGraphOptions opt;
  opt.maxActors = 4;
  const Graph g = test::randomConsistentGraph(rng, opt);
  const TimedGraph timed{g, test::randomExecTimes(rng, g)};
  auto capacities = minimalDeadlockFreeCapacities(g);
  ASSERT_TRUE(capacities.has_value());

  Rational previous(0);
  for (int round = 0; round < 3; ++round) {
    const auto result = computeThroughput(withCapacities(timed, *capacities));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.iterationsPerCycle, previous);
    previous = result.iterationsPerCycle;
    for (std::size_t c = 0; c < capacities->size(); ++c) {
      if ((*capacities)[c] != 0) {
        (*capacities)[c] += g.channel(static_cast<sdf::ChannelId>(c)).prodRate;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty, ::testing::Range<std::uint64_t>(1, 26));

// Soak run: 4x more seeds, disabled by default so CI stays fast. Opt in
// with --gtest_also_run_disabled_tests (or ad hoc via
// `./analysis_property_test --gtest_filter='DISABLED_Soak/*' --gtest_also_run_disabled_tests`).
INSTANTIATE_TEST_SUITE_P(DISABLED_Soak, RandomGraphProperty,
                         ::testing::Range<std::uint64_t>(26, 126));

}  // namespace
}  // namespace mamps::analysis
