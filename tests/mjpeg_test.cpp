// Tests for the MJPEG case study: codec primitives, encoder/decoder
// round trips, the Figure 5 application model, and the full flow with
// functional verification on the simulated platform.
#include <gtest/gtest.h>

#include "apps/mjpeg/actors.hpp"
#include "apps/mjpeg/bitio.hpp"
#include "apps/mjpeg/cost_model.hpp"
#include "apps/mjpeg/dct.hpp"
#include "apps/mjpeg/encoder.hpp"
#include "apps/mjpeg/tables.hpp"
#include "apps/mjpeg/testdata.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "sdf/repetition_vector.hpp"
#include "sim/platform_sim.hpp"
#include "support/rng.hpp"

namespace mamps::mjpeg {
namespace {

// ------------------------------------------------------------------- BitIO

TEST(BitIoTest, RoundTripBits) {
  BitWriter writer;
  writer.putBits(0b1011, 4);
  writer.putBits(0x1234, 16);
  writer.putBit(false);
  const auto bytes = writer.finish();
  BitReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.getBits(4), 0b1011u);
  EXPECT_EQ(reader.getBits(16), 0x1234u);
  EXPECT_FALSE(reader.getBit());
}

TEST(BitIoTest, ReadPastEndThrows) {
  BitWriter writer;
  writer.putBits(0xff, 8);
  const auto bytes = writer.finish();
  BitReader reader(bytes.data(), bytes.size());
  (void)reader.getBits(8);
  EXPECT_THROW((void)reader.getBit(), Error);
}

// ------------------------------------------------------------------ Tables

TEST(TablesTest, ZigzagIsAPermutation) {
  std::array<bool, 64> seen{};
  for (const auto idx : kZigzagOrder) {
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(TablesTest, ZigzagStartsCorrectly) {
  EXPECT_EQ(kZigzagOrder[0], 0);
  EXPECT_EQ(kZigzagOrder[1], 1);
  EXPECT_EQ(kZigzagOrder[2], 8);
  EXPECT_EQ(kZigzagOrder[63], 63);
}

TEST(TablesTest, QuantScaling) {
  const auto q50 = scaledQuantTable(kLumaQuant, 50);
  EXPECT_EQ(q50[0], kLumaQuant[0]);
  const auto q90 = scaledQuantTable(kLumaQuant, 90);
  EXPECT_LT(q90[0], q50[0]);
  const auto q10 = scaledQuantTable(kLumaQuant, 10);
  EXPECT_GT(q10[0], q50[0]);
  for (const auto v : scaledQuantTable(kLumaQuant, 100)) {
    EXPECT_GE(v, 1);
  }
}

TEST(TablesTest, HuffmanEncodeDecodeRoundTrip) {
  // Every symbol of every table must decode back to itself.
  struct Source {
    std::vector<bool> bits;
    std::size_t pos = 0;
    bool getBit() { return bits.at(pos++); }
  };
  const auto check = [](const HuffmanTable& table, const std::vector<std::uint8_t>& symbols) {
    for (const std::uint8_t symbol : symbols) {
      const auto code = table.encode(symbol);
      Source source;
      for (int i = code.length - 1; i >= 0; --i) {
        source.bits.push_back(((code.code >> i) & 1) != 0);
      }
      EXPECT_EQ(table.decode(source), symbol);
    }
  };
  std::vector<std::uint8_t> dcSymbols;
  for (std::uint8_t s = 0; s <= 11; ++s) {
    dcSymbols.push_back(s);
  }
  check(lumaDcTable(), dcSymbols);
  check(chromaDcTable(), dcSymbols);
  check(lumaAcTable(), {0x00, 0x01, 0x11, 0xf0, 0xfa, 0x23});
  check(chromaAcTable(), {0x00, 0x01, 0x11, 0xf0, 0xfa, 0x23});
}

TEST(TablesTest, MagnitudeRoundTrip) {
  for (int v = -255; v <= 255; ++v) {
    const std::uint8_t cat = magnitudeCategory(v);
    EXPECT_EQ(extendMagnitude(magnitudeBits(v, cat), cat), v) << v;
  }
  EXPECT_EQ(magnitudeCategory(0), 0);
  EXPECT_EQ(magnitudeCategory(1), 1);
  EXPECT_EQ(magnitudeCategory(-1), 1);
  EXPECT_EQ(magnitudeCategory(255), 8);
}

// --------------------------------------------------------------------- DCT

TEST(DctTest, IdctMatchesReference) {
  mamps::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    // Sparse, realistically-sized spectra (dense +/-200 blocks would
    // exceed the sample range and only exercise the clamp).
    Block freq{};
    freq[0] = static_cast<std::int16_t>(static_cast<std::int64_t>(rng.range(0, 1600)) - 800);
    for (int k = 0; k < 10; ++k) {
      freq[rng.range(1, 63)] =
          static_cast<std::int16_t>(static_cast<std::int64_t>(rng.range(0, 160)) - 80);
    }
    std::array<std::int16_t, 64> fixed{};
    inverseDct(freq, fixed);
    std::array<double, 64> reference{};
    inverseDctReference(freq, reference);
    for (std::size_t i = 0; i < 64; ++i) {
      const double clamped = std::clamp(reference[i], -256.0, 255.0);
      EXPECT_NEAR(fixed[i], clamped, 2.0) << "coefficient " << i;
    }
  }
}

TEST(DctTest, ForwardInverseRoundTrip) {
  mamps::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::array<std::int16_t, 64> spatial{};
    for (auto& v : spatial) {
      v = static_cast<std::int16_t>(static_cast<std::int64_t>(rng.range(0, 255)) - 128);
    }
    Block freq{};
    forwardDct(spatial, freq);
    std::array<std::int16_t, 64> back{};
    inverseDct(freq, back);
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_NEAR(back[i], spatial[i], 3) << "sample " << i;
    }
  }
}

TEST(DctTest, FlatBlockHasOnlyDc) {
  std::array<std::int16_t, 64> spatial{};
  spatial.fill(64);
  Block freq{};
  forwardDct(spatial, freq);
  EXPECT_NEAR(freq[0], 64 * 8, 8);  // DC = mean * 8
  for (std::size_t i = 1; i < 64; ++i) {
    EXPECT_NEAR(freq[i], 0, 2);
  }
  EXPECT_LE(nonZeroCount(freq), 3u);
}

// ------------------------------------------------------------------- Codec

TEST(CodecTest, EncodeDecodeRoundTripIsClose) {
  const auto frames = makeTestSequence("gradient", 2, 48, 32);
  EncoderOptions options;
  options.quality = 90;
  const auto stream = encodeSequence(frames, options);
  const auto decoded = referenceDecode(stream);
  ASSERT_EQ(decoded.size(), 2u);
  // Lossy codec: expect bounded per-pixel error on smooth content.
  double totalError = 0;
  std::size_t samples = 0;
  for (std::size_t f = 0; f < decoded.size(); ++f) {
    ASSERT_GE(decoded[f].width, frames[f].width);
    for (std::uint32_t y = 0; y < frames[f].height; ++y) {
      for (std::uint32_t x = 0; x < frames[f].width; ++x) {
        for (int ch = 0; ch < 3; ++ch) {
          const int a = frames[f].rgb[(y * frames[f].width + x) * 3 + ch];
          const int b = decoded[f].rgb[(y * decoded[f].width + x) * 3 + ch];
          totalError += std::abs(a - b);
          ++samples;
        }
      }
    }
  }
  EXPECT_LT(totalError / static_cast<double>(samples), 12.0);
}

TEST(CodecTest, AllSamplingsDecode) {
  for (const Sampling s :
       {Sampling::Yuv444, Sampling::Yuv422, Sampling::Yuv420, Sampling::Yuv410}) {
    const auto frames = makeTestSequence("checker", 1, 32, 32);
    EncoderOptions options;
    options.sampling = s;
    const auto stream = encodeSequence(frames, options);
    const auto decoded = referenceDecode(stream);
    ASSERT_EQ(decoded.size(), 1u) << "sampling " << static_cast<int>(s);
    EXPECT_GE(decoded[0].width, 32u);
  }
}

TEST(CodecTest, HigherQualityIsMoreAccurate) {
  const auto frames = makeTestSequence("plasma", 1, 32, 32);
  const auto errorAt = [&](std::uint8_t quality) {
    EncoderOptions options;
    options.quality = quality;
    const auto decoded = referenceDecode(encodeSequence(frames, options));
    double err = 0;
    for (std::size_t i = 0; i < frames[0].rgb.size(); ++i) {
      err += std::abs(static_cast<int>(frames[0].rgb[i]) -
                      static_cast<int>(decoded[0].rgb[i]));
    }
    return err;
  };
  EXPECT_LT(errorAt(95), errorAt(25));
}

TEST(CodecTest, SyntheticSequenceHasHigherEntropy) {
  // Random data must cost more bits than smooth data (this drives the
  // worst-case-vs-measured gap of Figure 6).
  const auto smooth = makeTestSequence("gradient", 1, 48, 32);
  const auto noisy = makeSyntheticSequence(1, 48, 32);
  EncoderOptions options;
  EXPECT_GT(encodeSequence(noisy, options).size(), encodeSequence(smooth, options).size());
}

// ----------------------------------------------------------------- AppModel

TEST(MjpegAppTest, RepetitionVectorMatchesFigure5) {
  const MjpegApp app = buildMjpegApp({1000, 100, 500, 300, 100});
  const auto q = sdf::computeRepetitionVector(app.model.graph());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[app.vld], 1u);
  EXPECT_EQ((*q)[app.iqzz], 10u);
  EXPECT_EQ((*q)[app.idct], 10u);
  EXPECT_EQ((*q)[app.cc], 1u);
  EXPECT_EQ((*q)[app.raster], 1u);
}

TEST(MjpegAppTest, StateEdgesAreImplicit) {
  const MjpegApp app = buildMjpegApp({1, 1, 1, 1, 1});
  EXPECT_TRUE(app.model.isImplicit(app.vldState));
  EXPECT_TRUE(app.model.isImplicit(app.rasterState));
  EXPECT_TRUE(app.model.isExplicit(app.vld2iqzz));
  EXPECT_TRUE(app.model.isExplicit(app.subHeader1));
  app.model.validate();
}

TEST(MjpegAppTest, WcetCalibrationCoversMeasurement) {
  const auto stream = encodeSequence(makeSyntheticSequence(1, 48, 32), {});
  const MjpegWcets measured = measureCosts(stream);
  const MjpegWcets wcets = calibrateWcets(stream, 10);
  EXPECT_GT(wcets.vld, measured.vld);
  EXPECT_GT(wcets.idct, measured.idct);
  EXPECT_GT(measured.vld, 0u);
  EXPECT_GT(measured.raster, 0u);
}

TEST(MjpegAppTest, RandomDataCostsMoreThanSmoothData) {
  const auto smooth = encodeSequence(makeTestSequence("gradient", 1, 48, 32), {});
  const auto noisy = encodeSequence(makeSyntheticSequence(1, 48, 32), {});
  EXPECT_GT(measureCosts(noisy).vld, measureCosts(smooth).vld);
}

// -------------------------------------------------------- Platform decode

struct MjpegDeployment {
  MjpegApp app;
  platform::Architecture arch;
  mapping::MappingResult result;
  std::vector<std::uint8_t> stream;
};

MjpegDeployment deployMjpeg(platform::InterconnectKind kind, std::uint32_t tiles,
                            const std::string& sequence) {
  const auto frames = sequence == "synthetic" ? makeSyntheticSequence(2, 48, 32)
                                              : makeTestSequence(sequence, 2, 48, 32);
  MjpegDeployment d;
  d.stream = encodeSequence(frames, {});
  const auto calibration = encodeSequence(makeSyntheticSequence(2, 48, 32), {});
  d.app = buildMjpegApp(calibrateWcets(calibration));
  platform::TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = kind;
  d.arch = platform::generateFromTemplate(request);
  auto mapped = mapping::mapApplication(d.app.model, d.arch, {});
  if (!mapped) {
    throw Error("deployMjpeg: mapping failed");
  }
  d.result = std::move(*mapped);
  return d;
}

TEST(MjpegPlatformTest, DecodedFramesMatchReference) {
  const MjpegDeployment d = deployMjpeg(platform::InterconnectKind::Fsl, 3, "plasma");
  sim::PlatformSim simulator(d.app.model, d.arch, d.result.mapping);
  const MjpegBehaviors handles = attachMjpegBehaviors(simulator, d.app, d.stream);
  sim::SimOptions options;
  options.warmupIterations = 0;
  // Two 48x32 frames are 12 MCUs; run a few more so the pipeline tail
  // (Raster) drains past the second frame boundary.
  options.measureIterations = 16;
  const sim::SimResult result = simulator.run(options);
  ASSERT_TRUE(result.ok());

  const auto reference = referenceDecode(d.stream);
  const auto& decoded = handles.raster->frames();
  ASSERT_GE(decoded.size(), 2u);
  ASSERT_EQ(reference.size(), 2u);
  for (std::size_t f = 0; f < 2; ++f) {
    ASSERT_EQ(decoded[f].width, reference[f].width);
    ASSERT_EQ(decoded[f].height, reference[f].height);
    EXPECT_EQ(decoded[f].rgb, reference[f].rgb) << "frame " << f;
  }
}

TEST(MjpegPlatformTest, DecodedFramesMatchReferenceOnNoc) {
  const MjpegDeployment d = deployMjpeg(platform::InterconnectKind::NocMesh, 3, "checker");
  sim::PlatformSim simulator(d.app.model, d.arch, d.result.mapping);
  const MjpegBehaviors handles = attachMjpegBehaviors(simulator, d.app, d.stream);
  sim::SimOptions options;
  options.warmupIterations = 0;
  options.measureIterations = 12;
  const sim::SimResult result = simulator.run(options);
  ASSERT_TRUE(result.ok());
  const auto reference = referenceDecode(d.stream);
  ASSERT_GE(handles.raster->frames().size(), 1u);
  EXPECT_EQ(handles.raster->frames()[0].rgb, reference[0].rgb);
}

class MjpegGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<platform::InterconnectKind, std::string>> {};

TEST_P(MjpegGuaranteeTest, MeasuredThroughputAtLeastGuaranteed) {
  const auto [kind, sequence] = GetParam();
  const MjpegDeployment d = deployMjpeg(kind, 3, sequence);
  ASSERT_TRUE(d.result.throughput.ok());
  sim::PlatformSim simulator(d.app.model, d.arch, d.result.mapping);
  attachMjpegBehaviors(simulator, d.app, d.stream);
  sim::SimOptions options;
  options.warmupIterations = 2;
  options.measureIterations = 20;
  const sim::SimResult result = simulator.run(options);
  ASSERT_TRUE(result.ok());
  const double bound = d.result.throughput.iterationsPerCycle.toDouble();
  EXPECT_GE(result.iterationsPerCycle(), bound * (1.0 - 1e-9))
      << "sequence " << sequence;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MjpegGuaranteeTest,
    ::testing::Combine(::testing::Values(platform::InterconnectKind::Fsl,
                                         platform::InterconnectKind::NocMesh),
                       ::testing::Values(std::string("synthetic"), std::string("gradient"),
                                         std::string("stripes"))));

}  // namespace
}  // namespace mamps::mjpeg
