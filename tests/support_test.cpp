// Unit tests for the support library: Rational, strings, XML, Rng.
#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"
#include "support/rational.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/xml.hpp"

namespace mamps {
namespace {

// ---------------------------------------------------------------- Rational

TEST(RationalTest, DefaultIsZero) {
  const Rational r;
  EXPECT_TRUE(r.isZero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(RationalTest, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(RationalTest, NormalizesNegativeDenominator) {
  const Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(RationalTest, ZeroDenominatorThrows) { EXPECT_THROW(Rational(1, 0), Error); }

TEST(RationalTest, Addition) { EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6)); }

TEST(RationalTest, Subtraction) { EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6)); }

TEST(RationalTest, Multiplication) { EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2)); }

TEST(RationalTest, Division) { EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2)); }

TEST(RationalTest, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), Error);
}

TEST(RationalTest, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(7, 8), Rational(3, 4));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
}

TEST(RationalTest, ToString) {
  EXPECT_EQ(Rational(3, 4).toString(), "3/4");
  EXPECT_EQ(Rational(5).toString(), "5");
  EXPECT_EQ(Rational(-2, 6).toString(), "-1/3");
}

TEST(RationalTest, ToDouble) { EXPECT_DOUBLE_EQ(Rational(1, 4).toDouble(), 0.25); }

TEST(RationalTest, Reciprocal) {
  EXPECT_EQ(Rational(3, 7).reciprocal(), Rational(7, 3));
  EXPECT_THROW((void)Rational(0).reciprocal(), Error);
}

TEST(RationalTest, OverflowThrows) {
  const Rational big(std::int64_t{1} << 62, 1);
  EXPECT_THROW(big * big, Error);
}

TEST(RationalTest, CheckedLcm) {
  EXPECT_EQ(checkedLcm(4, 6), 12);
  EXPECT_EQ(checkedLcm(7, 13), 91);
  EXPECT_EQ(checkedLcm(0, 5), 0);
}

// A small parameterized sweep of arithmetic identities.
class RationalIdentityTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RationalIdentityTest, AdditiveInverse) {
  const auto [n, d] = GetParam();
  const Rational r(n, d);
  EXPECT_TRUE((r + (-r)).isZero());
}

TEST_P(RationalIdentityTest, MultiplicativeInverse) {
  const auto [n, d] = GetParam();
  const Rational r(n, d);
  if (!r.isZero()) {
    EXPECT_EQ(r * r.reciprocal(), Rational(1));
  }
}

TEST_P(RationalIdentityTest, DistributiveLaw) {
  const auto [n, d] = GetParam();
  const Rational r(n, d);
  const Rational a(3, 5);
  const Rational b(-7, 2);
  EXPECT_EQ(r * (a + b), r * a + r * b);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RationalIdentityTest,
                         ::testing::Values(std::pair{1, 2}, std::pair{-3, 4}, std::pair{0, 1},
                                           std::pair{10, 15}, std::pair{-7, -21},
                                           std::pair{1000, 3}, std::pair{-1, 1000000}));

// ----------------------------------------------------------------- strings

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitEmpty) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("foo", "foobar"));
}

TEST(StringsTest, ParseU64) {
  EXPECT_EQ(parseU64("42"), 42u);
  EXPECT_EQ(parseU64(" 7 "), 7u);
  EXPECT_THROW((void)parseU64("x"), ParseError);
  EXPECT_THROW((void)parseU64(""), ParseError);
  EXPECT_THROW((void)parseU64("12x"), ParseError);
}

TEST(StringsTest, ParseI64) {
  EXPECT_EQ(parseI64("-42"), -42);
  EXPECT_THROW((void)parseI64("4.2"), ParseError);
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parseDouble("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(parseDouble("-3e2"), -300.0);
  EXPECT_THROW((void)parseDouble("abc"), ParseError);
}

TEST(StringsTest, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strprintf("%.2f", 1.5), "1.50");
}

TEST(StringsTest, SanitizeIdentifier) {
  EXPECT_EQ(sanitizeIdentifier("actor-1.b"), "actor_1_b");
  EXPECT_EQ(sanitizeIdentifier("2fast"), "_2fast");
  EXPECT_EQ(sanitizeIdentifier(""), "_");
}

// --------------------------------------------------------------------- XML

TEST(XmlTest, ParsesSimpleElement) {
  const auto doc = xml::parse("<root a=\"1\" b='two'><child/></root>");
  EXPECT_EQ(doc.root().name(), "root");
  EXPECT_EQ(doc.root().attribute("a"), "1");
  EXPECT_EQ(doc.root().attribute("b"), "two");
  ASSERT_EQ(doc.root().children().size(), 1u);
  EXPECT_EQ(doc.root().children()[0]->name(), "child");
}

TEST(XmlTest, ParsesTextContent) {
  const auto doc = xml::parse("<m>  hello world  </m>");
  EXPECT_EQ(doc.root().text(), "hello world");
}

TEST(XmlTest, ParsesEntities) {
  const auto doc = xml::parse("<m v=\"&lt;&amp;&gt;\">&quot;&apos;&#65;</m>");
  EXPECT_EQ(doc.root().attribute("v"), "<&>");
  EXPECT_EQ(doc.root().text(), "\"'A");
}

TEST(XmlTest, SkipsCommentsAndDeclaration) {
  const auto doc =
      xml::parse("<?xml version=\"1.0\"?><!-- hi --><r><!-- inner --><c/></r>");
  EXPECT_EQ(doc.root().name(), "r");
  EXPECT_EQ(doc.root().children().size(), 1u);
}

TEST(XmlTest, NestedStructure) {
  const auto doc = xml::parse("<a><b><c x=\"1\"/></b><b/></a>");
  const auto bs = doc.root().childrenNamed("b");
  ASSERT_EQ(bs.size(), 2u);
  ASSERT_EQ(bs[0]->children().size(), 1u);
  EXPECT_EQ(bs[0]->children()[0]->attribute("x"), "1");
}

TEST(XmlTest, MismatchedTagThrows) {
  EXPECT_THROW(xml::parse("<a></b>"), ParseError);
}

TEST(XmlTest, UnterminatedThrows) {
  EXPECT_THROW(xml::parse("<a><b></b>"), ParseError);
}

TEST(XmlTest, TrailingContentThrows) {
  EXPECT_THROW(xml::parse("<a/><b/>"), ParseError);
}

TEST(XmlTest, RequiredAttributeThrows) {
  const auto doc = xml::parse("<a/>");
  EXPECT_THROW((void)doc.root().requiredAttribute("x"), ParseError);
}

TEST(XmlTest, RequiredChildThrows) {
  const auto doc = xml::parse("<a><b/></a>");
  EXPECT_NO_THROW((void)doc.root().requiredChild("b"));
  EXPECT_THROW((void)doc.root().requiredChild("c"), ParseError);
}

TEST(XmlTest, RoundTrip) {
  auto root = std::make_unique<xml::Element>("top");
  root->setAttribute("name", "a<b&c");
  auto& child = root->addChild("inner");
  child.setAttribute("k", "v\"q");
  child.setText("text & more");
  const xml::Document original(std::move(root));
  const auto reparsed = xml::parse(original.toString());
  EXPECT_EQ(reparsed.root().attribute("name"), "a<b&c");
  const auto* inner = reparsed.root().firstChild("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->attribute("k"), "v\"q");
  EXPECT_EQ(inner->text(), "text & more");
}

TEST(XmlTest, EscapeCoversSpecials) {
  EXPECT_EQ(xml::escape("<a&'\">"), "&lt;a&amp;&apos;&quot;&gt;");
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    differences += (a.next() != b.next()) ? 1 : 0;
  }
  EXPECT_GT(differences, 5);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values occur
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace mamps
