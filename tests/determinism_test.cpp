// Order-independence regression tests for the determinism audit: the
// analysis and admission results must be pure functions of the problem,
// never of container iteration order or insertion order. Each test
// computes the same quantity twice with a perturbed input ordering
// (edge order, channel insertion order, token-update order, cache
// eviction pressure) and requires bit-identical results. These pin the
// audited sites: the MCR parallel-edge collapse (mcm.cpp,
// incremental.cpp), the state-space representative-channel selection
// (throughput.cpp), and the admission plan cache (admission.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/incremental.hpp"
#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "apps/suite/churn.hpp"
#include "mapping/admission.hpp"
#include "platform/arch_template.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace mamps::analysis {
namespace {

using sdf::ChannelId;
using sdf::Graph;
using sdf::TimedGraph;

/// Seeded Fisher-Yates shuffle (std::shuffle's output is
/// implementation-defined, so it could not pin a regression).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.range(0, i - 1)]);
  }
}

/// A random cycle-ratio problem that always contains at least one
/// token-carrying cycle (a ring through every node), plus random chords.
std::vector<CycleRatioEdge> randomCycleRatioEdges(Rng& rng, std::size_t nodes) {
  std::vector<CycleRatioEdge> edges;
  for (std::size_t i = 0; i < nodes; ++i) {
    CycleRatioEdge e;
    e.from = static_cast<std::uint32_t>(i);
    e.to = static_cast<std::uint32_t>((i + 1) % nodes);
    e.weight = static_cast<std::int64_t>(rng.range(1, 20));
    e.delay = static_cast<std::int64_t>(i + 1 == nodes ? rng.range(1, 3) : rng.range(0, 2));
    edges.push_back(e);
  }
  const std::size_t chords = rng.range(0, 2 * nodes);
  for (std::size_t c = 0; c < chords; ++c) {
    CycleRatioEdge e;
    e.from = static_cast<std::uint32_t>(rng.range(0, nodes - 1));
    e.to = static_cast<std::uint32_t>(rng.range(0, nodes - 1));
    e.weight = static_cast<std::int64_t>(rng.range(1, 20));
    e.delay = static_cast<std::int64_t>(rng.range(0, 3));
    edges.push_back(e);  // parallel and self edges are fair game
  }
  return edges;
}

TEST(DeterminismTest, CycleRatioSolverIsEdgeOrderInvariant) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const std::size_t nodes = rng.range(3, 9);
    const std::vector<CycleRatioEdge> edges = randomCycleRatioEdges(rng, nodes);

    CycleRatioSolver reference;
    const CycleRatioResult expected = reference.solve(nodes, edges);

    for (int perm = 0; perm < 4; ++perm) {
      std::vector<CycleRatioEdge> permuted = edges;
      shuffle(permuted, rng);
      CycleRatioSolver solver;
      const CycleRatioResult got = solver.solve(nodes, permuted);
      ASSERT_EQ(got.status, expected.status) << "seed " << seed << " perm " << perm;
      if (expected.ok()) {
        EXPECT_EQ(got.ratio, expected.ratio) << "seed " << seed << " perm " << perm;
      }
      // Warm restart on the permuted order must agree as well.
      const CycleRatioResult warm = solver.solve(nodes, permuted);
      EXPECT_EQ(warm.status, expected.status) << "seed " << seed << " perm " << perm;
      if (expected.ok()) {
        EXPECT_EQ(warm.ratio, expected.ratio) << "seed " << seed << " perm " << perm;
      }
    }
  }
}

/// The same graph with its channels connected in a permuted order (the
/// actor set and ids are identical; only ChannelIds are relabelled).
Graph withPermutedChannels(const Graph& g, Rng& rng) {
  Graph out(g.name());
  for (sdf::ActorId a = 0; a < g.actorCount(); ++a) {
    out.addActor(g.actor(a).name);
  }
  std::vector<ChannelId> order(g.channelCount());
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    order[c] = c;
  }
  shuffle(order, rng);
  for (const ChannelId c : order) {
    const sdf::Channel& ch = g.channel(c);
    out.connect(ch.src, ch.prodRate, ch.dst, ch.consRate, ch.initialTokens, ch.name);
  }
  return out;
}

TEST(DeterminismTest, StateSpaceThroughputIsChannelInsertionOrderInvariant) {
  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed + 100);
    const Graph g = test::randomConsistentGraph(rng);
    const std::vector<std::uint64_t> exec = test::randomExecTimes(rng, g);
    const ThroughputResult expected = computeThroughput(TimedGraph{g, exec}, options);

    for (int perm = 0; perm < 3; ++perm) {
      const Graph permuted = withPermutedChannels(g, rng);
      const ThroughputResult got = computeThroughput(TimedGraph{permuted, exec}, options);
      ASSERT_EQ(got.status, expected.status) << "seed " << seed << " perm " << perm;
      EXPECT_EQ(got.iterationsPerCycle, expected.iterationsPerCycle)
          << "seed " << seed << " perm " << perm;
      // The explored state sequence is a relabelling of the original:
      // the representative-channel selection must not leak layout into
      // the verdict.
      EXPECT_EQ(got.statesExplored, expected.statesExplored)
          << "seed " << seed << " perm " << perm;
      EXPECT_EQ(got.periodCycles, expected.periodCycles) << "seed " << seed << " perm " << perm;
    }
  }
}

TEST(DeterminismTest, IncrementalTokenUpdateOrderIsInvariant) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed + 200);
    const Graph g = test::randomConsistentGraph(rng);
    if (g.channelCount() == 0) {
      continue;
    }
    const TimedGraph timed{g, test::randomExecTimes(rng, g)};

    // One token patch per channel, applied in two different orders.
    std::vector<std::pair<ChannelId, std::uint64_t>> patches;
    for (ChannelId c = 0; c < g.channelCount(); ++c) {
      patches.emplace_back(c, g.channel(c).initialTokens + rng.range(0, 4));
    }

    IncrementalThroughput ascending(timed);
    for (const auto& [channel, tokens] : patches) {
      ascending.setInitialTokens(channel, tokens);
    }
    const ThroughputResult a = ascending.compute();

    IncrementalThroughput descending(timed);
    shuffle(patches, rng);
    for (const auto& [channel, tokens] : patches) {
      descending.setInitialTokens(channel, tokens);
    }
    const ThroughputResult b = descending.compute();

    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    EXPECT_EQ(a.iterationsPerCycle, b.iterationsPerCycle) << "seed " << seed;
    EXPECT_EQ(a.engine, b.engine) << "seed " << seed;

    // Both must also equal the from-scratch analysis of the patched
    // graph (the incremental path's defining contract).
    const ThroughputResult scratch = computeThroughput(ascending.graph());
    ASSERT_EQ(a.status, scratch.status) << "seed " << seed;
    EXPECT_EQ(a.iterationsPerCycle, scratch.iterationsPerCycle) << "seed " << seed;
  }
}

TEST(DeterminismTest, StateSpaceExplorationIsRepeatable) {
  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 300);
    const Graph g = test::randomConsistentGraph(rng);
    const TimedGraph timed{g, test::randomExecTimes(rng, g)};
    const ThroughputResult first = computeThroughput(timed, options);
    const ThroughputResult second = computeThroughput(timed, options);
    ASSERT_EQ(first.status, second.status) << "seed " << seed;
    EXPECT_EQ(first.iterationsPerCycle, second.iterationsPerCycle) << "seed " << seed;
    EXPECT_EQ(first.statesExplored, second.statesExplored) << "seed " << seed;
    EXPECT_EQ(first.periodCycles, second.periodCycles) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mamps::analysis

namespace mamps::mapping {
namespace {

TEST(DeterminismTest, PlanCacheEvictionPressurePreservesDecisions) {
  const suite::ChurnWorkload workload = suite::suiteChurnWorkload();
  const auto arch =
      platform::generateFromTemplate(platform::heterogeneousPreset(4, {"accel"}));

  // A one-entry cache thrashes on this alternating script; every
  // decision must still be bit-identical to the cache-off controller.
  AdmissionOptions tiny;
  tiny.planCacheCapacity = 1;
  AdmissionOptions cold;
  cold.planCache = false;
  AdmissionController capped(arch, tiny);
  AdmissionController recomputed(arch, cold);

  const std::size_t script[] = {1, 3, 1, 3};
  for (int round = 0; round < 3; ++round) {
    std::vector<ClientId> mine;
    std::vector<ClientId> theirs;
    for (const std::size_t app : script) {
      const AdmissionDecision a = capped.admit(workload.caches[app], workload.options[app]);
      const AdmissionDecision b = recomputed.admit(workload.caches[app], workload.options[app]);
      ASSERT_EQ(a.admitted(), b.admitted());
      if (a.admitted()) {
        mine.push_back(*a.client);
        theirs.push_back(*b.client);
        EXPECT_EQ(a.result->mapping.actorToTile, b.result->mapping.actorToTile);
        EXPECT_EQ(a.result->throughput.iterationsPerCycle,
                  b.result->throughput.iterationsPerCycle);
        EXPECT_EQ(a.result->meetsConstraint, b.result->meetsConstraint);
      }
      EXPECT_TRUE(capped.budget() == recomputed.budget());
      EXPECT_LE(capped.planCacheSize(), 1u);
    }
    for (std::size_t i = 0; i < mine.size(); ++i) {
      capped.depart(mine[i]);
      recomputed.depart(theirs[i]);
    }
    EXPECT_TRUE(capped.pristine());
    EXPECT_TRUE(recomputed.pristine());
  }
  EXPECT_GT(capped.stats().planCacheEvictions, 0u);
}

}  // namespace
}  // namespace mamps::mapping
