// Property wall for the flat-data analysis core: every performance
// mechanism introduced by the arena/SoA rewrite — the flat HSDF
// expansion, cross-point Howard warm starts, and the per-SCC parallel
// solves — must be *result-invisible*. Each test sweeps 125 random
// seeds and requires bit-identical ThroughputResults (rational,
// schedules, buffers, statesExplored) between the optimized path and a
// reference path: the legacy sdf::toHsdf expansion, a cold sequential
// solver, or the from-scratch mapping pipeline
// (MappingOptions::incrementalAnalysis off). Per the contract in
// analysis/throughput.hpp, the comparison covers every field *except*
// the wall-clock phase counters (expansionNanos/solveNanos/storeNanos),
// which are measurements, not results.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/incremental.hpp"
#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "mapping/dse.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "sdf/hsdf.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace mamps::analysis {
namespace {

constexpr std::uint64_t kSeeds = 125;

/// Full-field equality of two ThroughputResults, excluding the
/// wall-clock phase counters (the one documented exception).
void expectSameResult(const ThroughputResult& got, const ThroughputResult& want,
                      std::uint64_t seed, const char* what) {
  ASSERT_EQ(got.status, want.status) << what << " seed " << seed;
  EXPECT_EQ(got.iterationsPerCycle, want.iterationsPerCycle) << what << " seed " << seed;
  EXPECT_EQ(got.engine, want.engine) << what << " seed " << seed;
  EXPECT_EQ(got.statesExplored, want.statesExplored) << what << " seed " << seed;
  EXPECT_EQ(got.periodCycles, want.periodCycles) << what << " seed " << seed;
  EXPECT_EQ(got.hsdfActors, want.hsdfActors) << what << " seed " << seed;
}

TEST(PerfWall, FlatExpansionMatchesLegacyHsdfExpansion) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    const sdf::Graph g = test::randomConsistentGraph(rng);
    const sdf::TimedGraph timed{g, test::randomExecTimes(rng, g)};

    const ThroughputResult flat = computeThroughputMcr(timed);

    // Reference: the copy-out expansion (sdf/hsdf.cpp) feeding a cold
    // solver — the pre-flat pipeline, still used by throughputViaMcr.
    const sdf::HsdfExpansion legacy = sdf::toHsdf(timed);
    ASSERT_EQ(flat.hsdfActors, legacy.hsdf.graph.actorCount()) << "seed " << seed;
    const CycleRatioResult ref = maxCycleRatioHoward(legacy.hsdf);
    switch (ref.status) {
      case CycleRatioResult::Status::Ok:
        ASSERT_EQ(flat.status, ThroughputResult::Status::Ok) << "seed " << seed;
        EXPECT_EQ(flat.iterationsPerCycle, ref.ratio.reciprocal()) << "seed " << seed;
        break;
      case CycleRatioResult::Status::Deadlock:
        ASSERT_EQ(flat.status, ThroughputResult::Status::Deadlock) << "seed " << seed;
        break;
      case CycleRatioResult::Status::Acyclic:
        ASSERT_EQ(flat.status, ThroughputResult::Status::Unbounded) << "seed " << seed;
        break;
    }

    // Cross-engine: when the state-space semantics terminates with a
    // verdict on the same graph, the rational must agree exactly.
    ThroughputOptions stateSpace;
    stateSpace.engine = ThroughputEngine::StateSpace;
    const ThroughputResult simulated = computeThroughput(timed, stateSpace);
    if (simulated.status == ThroughputResult::Status::Ok &&
        flat.status == ThroughputResult::Status::Ok) {
      EXPECT_EQ(simulated.iterationsPerCycle, flat.iterationsPerCycle) << "seed " << seed;
    }
  }
}

TEST(PerfWall, WarmStartAndThreadCountAreResultIdentical) {
  // One handle chained across all 125 graphs: most adoptions are
  // cross-graph (wrong size, wrong shape), which per SolverWarmStart's
  // contract must be just as harmless as a well-matched seed.
  SolverWarmStart chained;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed + 1000);
    const sdf::Graph g = test::randomConsistentGraph(rng);
    const sdf::TimedGraph timed{g, test::randomExecTimes(rng, g)};

    const ThroughputResult cold = computeThroughputMcr(timed);

    ThroughputOptions threaded;
    threaded.solverThreads = 3;
    expectSameResult(computeThroughputMcr(timed, nullptr, threaded), cold, seed, "threads=3");

    IncrementalThroughput warm(timed);
    warm.adoptWarmStart(chained);
    expectSameResult(warm.compute(), cold, seed, "warm-started");
    warm.exportWarmStart(chained);

    // Warm start and threading composed, twice in a row on one context
    // (the second solve warm-starts from the first's converged policy).
    ThroughputOptions both;
    both.solverThreads = 4;
    IncrementalThroughput combined(timed, nullptr, both);
    combined.adoptWarmStart(chained);
    expectSameResult(combined.compute(), cold, seed, "warm+threads first");
    expectSameResult(combined.compute(), cold, seed, "warm+threads second");
  }
}

TEST(PerfWall, StateSpaceFlatStoreIsRepeatableAndOrderInvariant) {
  ThroughputOptions options;
  options.engine = ThroughputEngine::StateSpace;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed + 2000);
    const sdf::Graph g = test::randomConsistentGraph(rng);
    const sdf::TimedGraph timed{g, test::randomExecTimes(rng, g)};
    const ThroughputResult first = computeThroughput(timed, options);
    // The open-addressing store resolves membership by exact key
    // equality (the hash only picks a probe start), so repeated runs
    // must agree on every field including statesExplored.
    expectSameResult(computeThroughput(timed, options), first, seed, "state-space rerun");
  }
}

}  // namespace
}  // namespace mamps::analysis

namespace mamps::mapping {
namespace {

using analysis::SolverWarmStart;

constexpr std::uint64_t kMappingSeeds = 125;

/// A small random application the mapping flow can always ingest.
sdf::ApplicationModel randomApp(Rng& rng) {
  test::RandomGraphOptions opt;
  opt.maxActors = 5;
  opt.maxExtraChannels = 3;
  return test::makeAppModel(test::randomConsistentGraph(rng, opt),
                            {rng.range(20, 120), rng.range(20, 120), rng.range(20, 120)});
}

/// Full comparison of two mapping outcomes: binding, schedules, buffer
/// distributions, and the throughput guarantee (minus phase counters).
void expectSameMapping(const std::optional<MappingResult>& got,
                       const std::optional<MappingResult>& want, std::uint64_t seed,
                       const char* what) {
  ASSERT_EQ(got.has_value(), want.has_value()) << what << " seed " << seed;
  if (!got.has_value()) {
    return;
  }
  EXPECT_EQ(got->mapping.actorToTile, want->mapping.actorToTile) << what << " seed " << seed;
  EXPECT_EQ(got->mapping.schedules, want->mapping.schedules) << what << " seed " << seed;
  EXPECT_EQ(got->mapping.localCapacityTokens, want->mapping.localCapacityTokens)
      << what << " seed " << seed;
  EXPECT_EQ(got->mapping.srcBufferTokens, want->mapping.srcBufferTokens)
      << what << " seed " << seed;
  EXPECT_EQ(got->mapping.dstBufferTokens, want->mapping.dstBufferTokens)
      << what << " seed " << seed;
  EXPECT_EQ(got->mapping.fslLinkCount(), want->mapping.fslLinkCount())
      << what << " seed " << seed;
  EXPECT_EQ(got->meetsConstraint, want->meetsConstraint) << what << " seed " << seed;
  ASSERT_EQ(got->throughput.status, want->throughput.status) << what << " seed " << seed;
  EXPECT_EQ(got->throughput.iterationsPerCycle, want->throughput.iterationsPerCycle)
      << what << " seed " << seed;
  EXPECT_EQ(got->throughput.statesExplored, want->throughput.statesExplored)
      << what << " seed " << seed;
  EXPECT_EQ(got->throughput.engine, want->throughput.engine) << what << " seed " << seed;
}

TEST(PerfWall, MappingPathsBitIdenticalToFromScratchBaseline) {
  platform::TemplateRequest request;
  request.tileCount = 3;
  const auto arch = platform::generateFromTemplate(request);
  // One warm-start handle chained across all seeds, as a DSE worker
  // would carry it across the points of a sweep.
  SolverWarmStart chained;
  for (std::uint64_t seed = 0; seed < kMappingSeeds; ++seed) {
    Rng rng(seed + 3000);
    const sdf::ApplicationModel app = randomApp(rng);
    const AppAnalysisCache cache = prepareApplication(app);

    // Baseline: the from-scratch pipeline — incremental re-analysis
    // off, so every buffer-growth round rebuilds and solves cold.
    MappingOptions scratch;
    scratch.incrementalAnalysis = false;
    const std::optional<MappingResult> baseline = mapApplication(cache, arch, scratch);

    const std::optional<MappingResult> incremental = mapApplication(cache, arch, {});
    expectSameMapping(incremental, baseline, seed, "incremental");

    MappingOptions warm;
    warm.solverWarmStart = &chained;
    expectSameMapping(mapApplication(cache, arch, warm), baseline, seed, "warm-started");
  }
}

TEST(PerfWall, DseWarmStartAndThreadsAreResultIdentical) {
  Rng rng(9000);
  const sdf::ApplicationModel app = randomApp(rng);
  std::vector<DesignPoint> points;
  for (std::uint32_t tiles = 2; tiles <= 4; ++tiles) {
    for (const auto kind : {platform::InterconnectKind::Fsl, platform::InterconnectKind::NocMesh}) {
      DesignPoint point;
      point.platform.tileCount = tiles;
      point.platform.interconnect = kind;
      points.push_back(point);
    }
  }

  DseOptions cold;
  cold.threads = 1;
  cold.crossPointWarmStart = false;
  const DseResult reference = exploreDesignSpace(app, points, cold);
  ASSERT_EQ(reference.points.size(), points.size());

  DseOptions warmSequential;
  warmSequential.threads = 1;
  DseOptions warmParallel;
  warmParallel.threads = 4;
  for (const DseOptions& options : {warmSequential, warmParallel}) {
    const DseResult got = exploreDesignSpace(app, points, options);
    ASSERT_EQ(got.points.size(), reference.points.size());
    for (std::size_t i = 0; i < got.points.size(); ++i) {
      EXPECT_EQ(got.points[i].label, reference.points[i].label) << "point " << i;
      EXPECT_EQ(got.points[i].platformSlices, reference.points[i].platformSlices)
          << "point " << i;
      expectSameMapping(got.points[i].mapping, reference.points[i].mapping, i, "dse point");
    }
  }
  // Area is genuinely wired through: a feasible point occupies slices.
  for (const DesignPointResult& point : reference.points) {
    if (point.feasible()) {
      EXPECT_GT(point.platformSlices, 0u);
    }
  }
}

}  // namespace
}  // namespace mamps::mapping
