// Unit tests for the SDF core: graph construction, repetition vectors,
// deadlock analysis, HSDF conversion, the application model, and XML I/O.
#include <gtest/gtest.h>

#include "sdf/app_model.hpp"
#include "sdf/graph.hpp"
#include "sdf/hsdf.hpp"
#include "sdf/io.hpp"
#include "sdf/repetition_vector.hpp"
#include "test_util.hpp"

namespace mamps::sdf {
namespace {

// ------------------------------------------------------------------- Graph

TEST(GraphTest, AddActorsAndChannels) {
  Graph g("t");
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  const auto c = g.connect(a, 2, b, 3, 1, "ab");
  EXPECT_EQ(g.actorCount(), 2u);
  EXPECT_EQ(g.channelCount(), 1u);
  EXPECT_EQ(g.channel(c).prodRate, 2u);
  EXPECT_EQ(g.channel(c).consRate, 3u);
  EXPECT_EQ(g.channel(c).initialTokens, 1u);
  EXPECT_EQ(g.actor(a).outputs.size(), 1u);
  EXPECT_EQ(g.actor(b).inputs.size(), 1u);
}

TEST(GraphTest, DuplicateActorNameThrows) {
  Graph g;
  g.addActor("a");
  EXPECT_THROW(g.addActor("a"), ModelError);
}

TEST(GraphTest, EmptyActorNameThrows) {
  Graph g;
  EXPECT_THROW(g.addActor(""), ModelError);
}

TEST(GraphTest, ZeroRateThrows) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  EXPECT_THROW(g.connect(a, 0, b, 1), ModelError);
  EXPECT_THROW(g.connect(a, 1, b, 0), ModelError);
}

TEST(GraphTest, BadEndpointThrows) {
  Graph g;
  const auto a = g.addActor("a");
  EXPECT_THROW(g.connect(a, 1, 99, 1), ModelError);
}

TEST(GraphTest, SelfEdge) {
  Graph g;
  const auto a = g.addActor("a");
  const auto c = g.connect(a, 1, a, 1, 1);
  EXPECT_TRUE(g.channel(c).isSelfEdge());
  EXPECT_EQ(g.actor(a).inputs.size(), 1u);
  EXPECT_EQ(g.actor(a).outputs.size(), 1u);
}

TEST(GraphTest, FindByName) {
  Graph g;
  g.addActor("alpha");
  g.addActor("beta");
  EXPECT_EQ(g.findActor("beta"), ActorId{1});
  EXPECT_FALSE(g.findActor("gamma").has_value());
  EXPECT_EQ(g.actorByName("alpha"), ActorId{0});
  EXPECT_THROW((void)g.actorByName("gamma"), ModelError);
}

TEST(GraphTest, AutoChannelNamesAreUnique) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  const auto c1 = g.connect(a, 1, b, 1);
  const auto c2 = g.connect(a, 1, b, 1);
  EXPECT_NE(g.channel(c1).name, g.channel(c2).name);
}

TEST(GraphTest, DuplicateChannelNameThrows) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1, 0, "x");
  EXPECT_THROW(g.connect(a, 1, b, 1, 0, "x"), ModelError);
}

TEST(GraphTest, Connectivity) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.addActor("island");
  g.connect(a, 1, b, 1);
  EXPECT_FALSE(g.isConnected());
}

TEST(GraphTest, ConnectedGraph) { EXPECT_TRUE(test::figure2Graph().isConnected()); }

TEST(GraphTest, EmptyGraphIsConnected) { EXPECT_TRUE(Graph().isConnected()); }

TEST(GraphTest, SetInitialTokens) {
  Graph g = test::pipelineGraph(1, 1);
  g.setInitialTokens(0, 5);
  EXPECT_EQ(g.channel(0).initialTokens, 5u);
}

TEST(GraphTest, ValidatePasses) { EXPECT_NO_THROW(test::figure2Graph().validate()); }

// -------------------------------------------------------- RepetitionVector

TEST(RepetitionVectorTest, Figure2) {
  const auto q = computeRepetitionVector(test::figure2Graph());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 1u);  // A
  EXPECT_EQ((*q)[1], 2u);  // B
  EXPECT_EQ((*q)[2], 1u);  // C
}

TEST(RepetitionVectorTest, Pipeline) {
  const auto q = computeRepetitionVector(test::pipelineGraph(3, 2));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 2u);
  EXPECT_EQ((*q)[1], 3u);
}

TEST(RepetitionVectorTest, HomogeneousRing) {
  const auto q = computeRepetitionVector(test::ringGraph(5));
  ASSERT_TRUE(q.has_value());
  for (const auto v : *q) {
    EXPECT_EQ(v, 1u);
  }
}

TEST(RepetitionVectorTest, InconsistentGraph) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 2, b, 1);
  g.connect(a, 1, b, 1);  // contradicts the first channel
  EXPECT_FALSE(computeRepetitionVector(g).has_value());
  EXPECT_FALSE(isConsistent(g));
}

TEST(RepetitionVectorTest, DisconnectedComponentsScaledIndependently) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  const auto c = g.addActor("c");
  const auto d = g.addActor("d");
  g.connect(a, 2, b, 1);
  g.connect(c, 1, d, 3);
  const auto q = computeRepetitionVector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 1u);
  EXPECT_EQ((*q)[1], 2u);
  EXPECT_EQ((*q)[2], 3u);
  EXPECT_EQ((*q)[3], 1u);
}

TEST(RepetitionVectorTest, IsolatedActorGetsOne) {
  Graph g;
  g.addActor("solo");
  const auto q = computeRepetitionVector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 1u);
}

TEST(RepetitionVectorTest, MjpegShapedRates) {
  // VLD produces up to 10 blocks per MCU (Figure 5): rate-10 edge.
  Graph g;
  const auto vld = g.addActor("vld");
  const auto iqzz = g.addActor("iqzz");
  g.connect(vld, 10, iqzz, 1);
  const auto q = computeRepetitionVector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 1u);
  EXPECT_EQ((*q)[1], 10u);
}

TEST(RepetitionVectorTest, FiringsPerIteration) {
  EXPECT_EQ(firingsPerIteration(test::figure2Graph()), 4u);
  Graph inconsistent;
  const auto a = inconsistent.addActor("a");
  const auto b = inconsistent.addActor("b");
  inconsistent.connect(a, 2, b, 1);
  inconsistent.connect(a, 1, b, 1);
  EXPECT_THROW((void)firingsPerIteration(inconsistent), AnalysisError);
}

// ---------------------------------------------------------------- Deadlock

TEST(DeadlockTest, Figure2IsLive) { EXPECT_TRUE(isDeadlockFree(test::figure2Graph())); }

TEST(DeadlockTest, TokenlessRingDeadlocks) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 1, b, 1);
  g.connect(b, 1, a, 1);  // no initial tokens anywhere
  EXPECT_FALSE(isDeadlockFree(g));
}

TEST(DeadlockTest, RingWithTokenIsLive) { EXPECT_TRUE(isDeadlockFree(test::ringGraph(4))); }

TEST(DeadlockTest, SelfEdgeWithoutTokenDeadlocks) {
  Graph g;
  const auto a = g.addActor("a");
  g.connect(a, 1, a, 1, 0);
  EXPECT_FALSE(isDeadlockFree(g));
}

TEST(DeadlockTest, MultiRateCycleNeedsEnoughTokens) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 2, b, 3);
  g.connect(b, 3, a, 2, 1);  // one token is not enough for a to fire (needs 2)
  EXPECT_FALSE(isDeadlockFree(g));

  Graph g2;
  const auto a2 = g2.addActor("a");
  const auto b2 = g2.addActor("b");
  g2.connect(a2, 2, b2, 3);
  g2.connect(b2, 3, a2, 2, 6);
  EXPECT_TRUE(isDeadlockFree(g2));
}

// -------------------------------------------------------------------- HSDF

TEST(HsdfTest, ActorCountsMatchRepetitionVector) {
  TimedGraph timed{test::figure2Graph(), {5, 3, 2}};
  const HsdfExpansion expansion = toHsdf(timed);
  // q = [1, 2, 1] -> 4 HSDF actors.
  EXPECT_EQ(expansion.hsdf.graph.actorCount(), 4u);
  EXPECT_EQ(expansion.originalActor.size(), 4u);
  EXPECT_EQ(expansion.hsdf.execTime.size(), 4u);
}

TEST(HsdfTest, AllRatesAreOne) {
  TimedGraph timed{test::figure2Graph(), {5, 3, 2}};
  const HsdfExpansion expansion = toHsdf(timed);
  for (const Channel& c : expansion.hsdf.graph.channels()) {
    EXPECT_EQ(c.prodRate, 1u);
    EXPECT_EQ(c.consRate, 1u);
  }
}

TEST(HsdfTest, ExecTimesCarriedOver) {
  TimedGraph timed{test::figure2Graph(), {5, 3, 2}};
  const HsdfExpansion expansion = toHsdf(timed);
  for (std::size_t i = 0; i < expansion.hsdf.graph.actorCount(); ++i) {
    EXPECT_EQ(expansion.hsdf.execTime[i], timed.execTime[expansion.originalActor[i]]);
  }
}

TEST(HsdfTest, HsdfOfHomogeneousGraphKeepsStructure) {
  TimedGraph timed{test::ringGraph(3), {1, 1, 1}};
  const HsdfExpansion expansion = toHsdf(timed);
  EXPECT_EQ(expansion.hsdf.graph.actorCount(), 3u);
  // Original 3 channels + 3 no-auto-concurrency self-edges.
  EXPECT_EQ(expansion.hsdf.graph.channelCount(), 6u);
}

TEST(HsdfTest, InconsistentGraphThrows) {
  Graph g;
  const auto a = g.addActor("a");
  const auto b = g.addActor("b");
  g.connect(a, 2, b, 1);
  g.connect(a, 1, b, 1);
  TimedGraph timed{std::move(g), {1, 1}};
  EXPECT_THROW(toHsdf(timed), AnalysisError);
}

TEST(HsdfTest, HsdfIsConsistentAndLiveForLiveInput) {
  TimedGraph timed{test::figure2Graph(), {5, 3, 2}};
  const HsdfExpansion expansion = toHsdf(timed);
  EXPECT_TRUE(isConsistent(expansion.hsdf.graph));
  EXPECT_TRUE(isDeadlockFree(expansion.hsdf.graph));
}

// -------------------------------------------------------- ApplicationModel

ApplicationModel makeFigure2Model() {
  ApplicationModel model(test::figure2Graph());
  for (ActorId a = 0; a < model.graph().actorCount(); ++a) {
    ActorImplementation impl;
    impl.functionName = "actor_" + model.graph().actor(a).name;
    impl.processorType = "microblaze";
    impl.wcetCycles = 100 * (a + 1);
    impl.instrMemBytes = 1024;
    impl.dataMemBytes = 512;
    for (const ChannelId c : model.graph().actor(a).outputs) {
      if (!model.graph().channel(c).isSelfEdge()) {
        impl.argumentChannels.push_back(c);
      }
    }
    model.addImplementation(a, impl);
  }
  return model;
}

TEST(ApplicationModelTest, SelfEdgesDefaultImplicit) {
  const ApplicationModel model = makeFigure2Model();
  const auto selfEdge = model.graph().findChannel("aState");
  ASSERT_TRUE(selfEdge.has_value());
  EXPECT_TRUE(model.isImplicit(*selfEdge));
  const auto dataEdge = model.graph().findChannel("a2b");
  ASSERT_TRUE(dataEdge.has_value());
  EXPECT_TRUE(model.isExplicit(*dataEdge));
}

TEST(ApplicationModelTest, ValidateAcceptsCompleteModel) {
  EXPECT_NO_THROW(makeFigure2Model().validate());
}

TEST(ApplicationModelTest, ValidateRejectsMissingImplementation) {
  ApplicationModel model(test::figure2Graph());
  EXPECT_THROW(model.validate(), ModelError);
}

TEST(ApplicationModelTest, ImplementationForProcessorType) {
  const ApplicationModel model = makeFigure2Model();
  EXPECT_NE(model.implementationFor(0, "microblaze"), nullptr);
  EXPECT_EQ(model.implementationFor(0, "arm"), nullptr);
}

TEST(ApplicationModelTest, WcetVector) {
  const ApplicationModel model = makeFigure2Model();
  const auto wcet = model.wcetVector("microblaze");
  ASSERT_EQ(wcet.size(), 3u);
  EXPECT_EQ(wcet[0], 100u);
  EXPECT_EQ(wcet[1], 200u);
  EXPECT_EQ(wcet[2], 300u);
  EXPECT_THROW(model.wcetVector("arm"), ModelError);
}

TEST(ApplicationModelTest, ArgumentMustBeIncident) {
  ApplicationModel model(test::figure2Graph());
  ActorImplementation impl;
  impl.functionName = "f";
  impl.processorType = "microblaze";
  impl.argumentChannels.push_back(2);  // b2c is not incident to actor A
  EXPECT_THROW(model.addImplementation(0, impl), ModelError);
}

TEST(ApplicationModelTest, ImplicitArgumentRejectedByValidate) {
  ApplicationModel model = makeFigure2Model();
  // Force the self-edge of A into an implementation argument list.
  const auto selfEdge = *model.graph().findChannel("aState");
  model.setImplicit(selfEdge, false);
  ActorImplementation impl;
  impl.functionName = "g";
  impl.processorType = "other";
  impl.argumentChannels.push_back(selfEdge);
  model.addImplementation(0, impl);
  model.setImplicit(selfEdge, true);
  EXPECT_THROW(model.validate(), ModelError);
}

TEST(ApplicationModelTest, ThroughputConstraint) {
  ApplicationModel model = makeFigure2Model();
  model.setThroughputConstraint(Rational(1, 1000));
  EXPECT_EQ(model.throughputConstraint(), Rational(1, 1000));
  EXPECT_THROW(model.setThroughputConstraint(Rational(-1, 2)), ModelError);
}

// ---------------------------------------------------------------------- IO

TEST(IoTest, GraphRoundTrip) {
  const Graph original = test::figure2Graph();
  const Graph reparsed = graphFromString(graphToXml(original));
  EXPECT_EQ(reparsed.name(), original.name());
  ASSERT_EQ(reparsed.actorCount(), original.actorCount());
  ASSERT_EQ(reparsed.channelCount(), original.channelCount());
  for (ChannelId c = 0; c < original.channelCount(); ++c) {
    EXPECT_EQ(reparsed.channel(c).name, original.channel(c).name);
    EXPECT_EQ(reparsed.channel(c).prodRate, original.channel(c).prodRate);
    EXPECT_EQ(reparsed.channel(c).consRate, original.channel(c).consRate);
    EXPECT_EQ(reparsed.channel(c).initialTokens, original.channel(c).initialTokens);
    EXPECT_EQ(reparsed.channel(c).tokenSizeBytes, original.channel(c).tokenSizeBytes);
  }
}

TEST(IoTest, ApplicationModelRoundTrip) {
  ApplicationModel model = makeFigure2Model();
  model.setThroughputConstraint(Rational(3, 700));
  const ApplicationModel reparsed = applicationModelFromString(applicationModelToXml(model));
  EXPECT_EQ(reparsed.throughputConstraint(), Rational(3, 700));
  ASSERT_EQ(reparsed.graph().actorCount(), model.graph().actorCount());
  for (ActorId a = 0; a < model.graph().actorCount(); ++a) {
    const auto& lhs = model.implementations(a);
    const auto& rhs = reparsed.implementations(a);
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].functionName, rhs[i].functionName);
      EXPECT_EQ(lhs[i].processorType, rhs[i].processorType);
      EXPECT_EQ(lhs[i].wcetCycles, rhs[i].wcetCycles);
      EXPECT_EQ(lhs[i].argumentChannels, rhs[i].argumentChannels);
    }
  }
  for (ChannelId c = 0; c < model.graph().channelCount(); ++c) {
    EXPECT_EQ(reparsed.isImplicit(c), model.isImplicit(c));
  }
}

TEST(IoTest, MalformedGraphXmlThrows) {
  EXPECT_THROW(graphFromString("<sdfGraph><channel src=\"x\" dst=\"y\"/></sdfGraph>"),
               Error);
  EXPECT_THROW(graphFromString("<wrongRoot/>"), ParseError);
}

TEST(IoTest, GraphXmlIsParsableXml) {
  // The emitted XML must parse with the generic XML parser too.
  EXPECT_NO_THROW(xml::parse(graphToXml(test::figure2Graph())));
}

}  // namespace
}  // namespace mamps::sdf
