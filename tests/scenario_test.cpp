// The scenario-suite tests: registry integrity, generator determinism,
// the new platform template presets, and — the point of the suite — one
// end-to-end flow test per application (analyze -> bind -> schedule ->
// grow buffers -> throughput guarantee) plus DSE sweeps over the
// scenario design points. The flow-level regression for the
// withCapacities concurrency-limit drop also lives here: binding-aware
// models of multi-tile scenario mappings must carry the comm model's
// pipelined (limit-0) latency stages through the capacity rewrite.
#include <gtest/gtest.h>

#include <set>

#include "apps/suite/h263.hpp"
#include "apps/suite/samplerate.hpp"
#include "apps/suite/suite.hpp"
#include "apps/suite/synthetic.hpp"
#include "mamps/generator.hpp"
#include "mapping/dse.hpp"
#include "platform/arch_template.hpp"
#include "sdf/io.hpp"
#include "sdf/repetition_vector.hpp"
#include "sim/platform_sim.hpp"

namespace mamps::suite {
namespace {

using mapping::DesignPoint;
using mapping::DseOptions;
using mapping::DseResult;

// ---------------------------------------------------------------- Registry

TEST(ScenarioSuiteTest, RegistryIsStableAndValid) {
  const auto scenarios = builtinScenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].name, "h263");
  EXPECT_EQ(scenarios[1].name, "cd2dat");
  EXPECT_EQ(scenarios[2].name, "synthetic_fork");
  EXPECT_EQ(scenarios[3].name, "synthetic_ring");
  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(s.name);
    EXPECT_FALSE(s.description.empty());
    EXPECT_GE(s.platforms.size(), 2u);
    s.model.validate();
    EXPECT_TRUE(sdf::computeRepetitionVector(s.model.graph()).has_value());
    EXPECT_TRUE(sdf::isDeadlockFree(s.model.graph()));
    EXPECT_TRUE(s.model.graph().isConnected());
  }
}

TEST(ScenarioSuiteTest, FindScenarioByName) {
  EXPECT_EQ(findScenario("cd2dat").name, "cd2dat");
  EXPECT_THROW((void)findScenario("nope"), Error);
}

TEST(ScenarioSuiteTest, ScenarioShapesAreGenuinelyDifferent) {
  // The suite exists to exercise shapes MJPEG does not: cyclic
  // application graphs and deep multi-rate chains.
  const auto q263 = *sdf::computeRepetitionVector(findScenario("h263").model.graph());
  EXPECT_EQ(q263, (std::vector<std::uint64_t>{1, 66, 66, 1}));
  const auto qSr = *sdf::computeRepetitionVector(findScenario("cd2dat").model.graph());
  EXPECT_EQ(qSr, (std::vector<std::uint64_t>{147, 49, 14, 8, 32, 160}));
  // h263 and synthetic_ring contain an application-level cycle through
  // non-self channels (MJPEG's only cycles are state self-edges).
  for (const char* name : {"h263", "synthetic_ring"}) {
    SCOPED_TRACE(name);
    const Scenario s = findScenario(name);
    bool hasBackEdge = false;
    for (const sdf::Channel& c : s.model.graph().channels()) {
      hasBackEdge = hasBackEdge || (!c.isSelfEdge() && c.initialTokens > 0);
    }
    EXPECT_TRUE(hasBackEdge);
  }
}

// --------------------------------------------------------------- Generator

TEST(SyntheticGeneratorTest, SameSeedSameModelDifferentSeedDifferentModel) {
  SyntheticOptions options;
  options.seed = 99;
  const auto a = buildSynthetic(options);
  const auto b = buildSynthetic(options);
  EXPECT_EQ(sdf::applicationModelToXml(a), sdf::applicationModelToXml(b));
  options.seed = 100;
  EXPECT_NE(sdf::applicationModelToXml(a), sdf::applicationModelToXml(buildSynthetic(options)));
}

TEST(SyntheticGeneratorTest, AllTopologiesAreConsistentAndLive) {
  for (const Topology topology : {Topology::Chain, Topology::Ring, Topology::ForkJoin}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 17ull, 123ull}) {
      SCOPED_TRACE("topology " + std::to_string(static_cast<int>(topology)) + " seed " +
                   std::to_string(seed));
      SyntheticOptions options;
      options.seed = seed;
      options.topology = topology;
      const auto model = buildSynthetic(options);
      model.validate();
      EXPECT_TRUE(sdf::computeRepetitionVector(model.graph()).has_value());
      EXPECT_TRUE(sdf::isDeadlockFree(model.graph()));
      EXPECT_TRUE(model.graph().isConnected());
    }
  }
}

TEST(SyntheticGeneratorTest, RejectsDegenerateOptions) {
  SyntheticOptions tooFew;
  tooFew.actors = 2;
  EXPECT_THROW((void)buildSynthetic(tooFew), ModelError);
  SyntheticOptions emptyRange;
  emptyRange.wcetLo = 10;
  emptyRange.wcetHi = 5;
  EXPECT_THROW((void)buildSynthetic(emptyRange), ModelError);
}

// ---------------------------------------------------------------- Presets

TEST(PlatformPresetTest, LargeMeshPreset) {
  const auto arch = platform::generateFromTemplate(platform::largeMeshPreset());
  EXPECT_EQ(arch.tileCount(), 12u);
  EXPECT_EQ(arch.interconnect(), platform::InterconnectKind::NocMesh);
  EXPECT_EQ(arch.noc().rows * arch.noc().cols, 12u);
  EXPECT_EQ(arch.noc().wiresPerLink, 64u);
  EXPECT_EQ(arch.noc().connectionBufferWords, 8u);
}

TEST(PlatformPresetTest, HeterogeneousPresetAppendsIpTiles) {
  const auto arch =
      platform::generateFromTemplate(platform::heterogeneousPreset(3, {"accel", "fir_ip"}));
  ASSERT_EQ(arch.tileCount(), 5u);
  EXPECT_EQ(arch.tile(0).kind, platform::TileKind::Master);
  EXPECT_EQ(arch.tile(3).kind, platform::TileKind::HardwareIp);
  EXPECT_EQ(arch.tile(3).processorType, "accel");
  EXPECT_EQ(arch.tile(4).processorType, "fir_ip");
}

TEST(PlatformPresetTest, NocMeshCountsIpTiles) {
  platform::TemplateRequest request;
  request.tileCount = 3;
  request.interconnect = platform::InterconnectKind::NocMesh;
  request.hardwareIpTiles = {"accel", "accel", "accel"};
  const auto arch = platform::generateFromTemplate(request);
  EXPECT_EQ(arch.tileCount(), 6u);
  EXPECT_GE(arch.noc().rows * arch.noc().cols, 6u);
}

// ------------------------------------------------- End-to-end, per scenario

/// Map a scenario on every recommended platform; every platform must be
/// feasible with a positive throughput guarantee on the MCR fast path.
std::vector<mapping::MappingResult> runScenario(const Scenario& s) {
  std::vector<mapping::MappingResult> results;
  for (const platform::TemplateRequest& request : s.platforms) {
    const auto arch = platform::generateFromTemplate(request);
    SCOPED_TRACE(s.name + " on " + arch.name());
    auto result = mapping::mapApplication(s.model, arch, s.options);
    EXPECT_TRUE(result.has_value());
    if (!result) {
      continue;
    }
    EXPECT_TRUE(result->throughput.ok());
    EXPECT_GT(result->throughput.iterationsPerCycle, Rational(0));
    EXPECT_EQ(result->throughput.engine, analysis::ThroughputEngine::Mcr);
    results.push_back(std::move(*result));
  }
  return results;
}

TEST(ScenarioFlowTest, H263EndToEnd) {
  const Scenario s = findScenario("h263");
  const auto results = runScenario(s);
  ASSERT_EQ(results.size(), s.platforms.size());
  // Pinned calibration: the 2-tile FSL guarantee (the binding gathers
  // the whole decoder on one tile; one slice = 552400 cycles serial).
  EXPECT_EQ(results[0].throughput.iterationsPerCycle, Rational(1, 552400));
  // The heterogeneous platform offloads the IDCT to the accel tile and
  // beats every homogeneous mapping.
  const auto& hetero = results[3];
  const auto arch = platform::generateFromTemplate(s.platforms[3]);
  const sdf::ActorId idct = s.model.graph().actorByName("IDCT");
  EXPECT_EQ(arch.tile(hetero.mapping.actorToTile[idct]).processorType, "accel");
  for (std::size_t i = 0; i + 1 < results.size(); ++i) {
    EXPECT_GT(hetero.throughput.iterationsPerCycle, results[i].throughput.iterationsPerCycle);
  }
  for (const auto& result : results) {
    EXPECT_TRUE(result.meetsConstraint);
  }
}

TEST(ScenarioFlowTest, Cd2datEndToEnd) {
  const Scenario s = findScenario("cd2dat");
  const auto results = runScenario(s);
  ASSERT_EQ(results.size(), s.platforms.size());
  // Pinned calibration: the 2-tile FSL split pipeline.
  EXPECT_EQ(results[0].throughput.iterationsPerCycle, Rational(1, 30576));
  for (const auto& result : results) {
    EXPECT_TRUE(result.meetsConstraint);
  }
  // The 2-tile mapping splits the chain: the comm model is in play.
  EXPECT_FALSE(results[0].model.expanded.empty());
}

TEST(ScenarioFlowTest, SyntheticForkEndToEnd) {
  const Scenario s = findScenario("synthetic_fork");
  const auto results = runScenario(s);
  ASSERT_EQ(results.size(), s.platforms.size());
  // The constraint is calibrated to need real parallelism: the 2-tile
  // point misses it, the 4-tile NoC and the accel platform meet it.
  EXPECT_FALSE(results[0].meetsConstraint);
  EXPECT_TRUE(results[1].meetsConstraint);
  EXPECT_TRUE(results[2].meetsConstraint);
  // The heterogeneous platform actually uses an accel tile.
  const auto arch = platform::generateFromTemplate(s.platforms[2]);
  bool usesAccel = false;
  for (const auto tile : results[2].mapping.actorToTile) {
    usesAccel = usesAccel || arch.tile(tile).processorType == "accel";
  }
  EXPECT_TRUE(usesAccel);
}

TEST(ScenarioFlowTest, SyntheticRingEndToEnd) {
  const Scenario s = findScenario("synthetic_ring");
  const auto results = runScenario(s);
  ASSERT_EQ(results.size(), s.platforms.size());
  // Cross-check the fast path against the state-space engine on the
  // first (2-tile) binding-aware model: both engines must produce the
  // same exact rational on this cyclic, concurrency-limited graph.
  analysis::ThroughputOptions stateSpace;
  stateSpace.engine = analysis::ThroughputEngine::StateSpace;
  const auto reference = analysis::computeThroughput(results[0].model.graph,
                                                     results[0].model.resources, stateSpace);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference.iterationsPerCycle, results[0].throughput.iterationsPerCycle);
}

TEST(ScenarioFlowTest, BindingAwareModelsCarryConcurrencyLimits) {
  // Flow-level regression for the withCapacities maxConcurrent drop:
  // a multi-tile mapping expands inter-tile channels into the comm
  // model, whose latency stages pipeline (limit 0). The capacity
  // rewrite runs after the expansion, so the final binding-aware graph
  // must still carry those limits.
  const Scenario s = findScenario("cd2dat");
  const auto arch = platform::generateFromTemplate(s.platforms[0]);
  const auto result = mapping::mapApplication(s.model, arch, s.options);
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->model.expanded.empty());
  const sdf::TimedGraph& graph = result->model.graph;
  ASSERT_FALSE(graph.maxConcurrent.empty());
  for (const comm::ExpandedChannel& e : result->model.expanded) {
    EXPECT_EQ(graph.concurrencyLimit(e.c2), 0u)
        << "latency stage " << graph.graph.actor(e.c2).name << " must pipeline";
  }
}

// ----------------------------------------------- Generation and simulation

TEST(ScenarioFlowTest, Cd2datGeneratesProjectAndSimulationRespectsGuarantee) {
  // The suite used to stop at the analyzed mapping; this drives one
  // scenario through the rest of the flow: MAMPS project generation
  // produces the complete artifact set, and the cycle-level platform
  // simulation sustains at least the analyzed guarantee (the paper's
  // conservative-bound claim, now asserted on a suite scenario).
  const Scenario s = findScenario("cd2dat");
  const auto arch = platform::generateFromTemplate(s.platforms[0]);
  const auto result = mapping::mapApplication(s.model, arch, s.options);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->throughput.iterationsPerCycle, Rational(1, 30576));

  const gen::PlatformProject project = gen::generatePlatform(s.model, arch, result->mapping);
  EXPECT_TRUE(project.files.contains("hw/system.mhs"));
  EXPECT_TRUE(project.files.contains("sw/include/channels.h"));
  EXPECT_TRUE(project.files.contains("sw/tile0/main.c"));
  EXPECT_TRUE(project.files.contains("sw/tile1/main.c"));
  EXPECT_TRUE(project.files.contains("build.tcl"));

  sim::PlatformSim simulator(s.model, arch, result->mapping);
  sim::SimOptions options;
  options.warmupIterations = 2;
  options.measureIterations = 16;
  const sim::SimResult sim = simulator.run(options);
  ASSERT_TRUE(sim.ok());
  EXPECT_GE(sim.iterationsPerCycle(),
            result->throughput.iterationsPerCycle.toDouble() * (1 - 1e-9));
}

// -------------------------------------------------------------- DSE sweeps

TEST(ScenarioSweepTest, ParallelSweepMatchesSerial) {
  const Scenario s = findScenario("synthetic_fork");
  const auto points = scenarioDesignPoints(s);
  ASSERT_EQ(points.size(), 2 * s.platforms.size());
  DseOptions serial;
  serial.threads = 1;
  const DseResult serialRun = mapping::exploreDesignSpace(s.model, points, serial);
  DseOptions parallel;
  parallel.threads = 4;
  const DseResult parallelRun = mapping::exploreDesignSpace(s.model, points, parallel);
  ASSERT_EQ(serialRun.points.size(), parallelRun.points.size());
  EXPECT_EQ(serialRun.feasibleCount(), points.size());
  for (std::size_t i = 0; i < serialRun.points.size(); ++i) {
    SCOPED_TRACE(serialRun.points[i].label);
    ASSERT_EQ(serialRun.points[i].feasible(), parallelRun.points[i].feasible());
    EXPECT_EQ(serialRun.points[i].label, parallelRun.points[i].label);
    if (!serialRun.points[i].feasible()) {
      continue;
    }
    EXPECT_EQ(serialRun.points[i].mapping->throughput.iterationsPerCycle,
              parallelRun.points[i].mapping->throughput.iterationsPerCycle);
    EXPECT_EQ(serialRun.points[i].mapping->mapping.actorToTile,
              parallelRun.points[i].mapping->mapping.actorToTile);
  }
}

TEST(ScenarioSweepTest, DesignPointLabelsNameScenarioAndPlatform) {
  const Scenario s = findScenario("h263");
  const auto points = scenarioDesignPoints(s);
  std::set<std::string> labels;
  for (const DesignPoint& p : points) {
    labels.insert(p.label);
    EXPECT_EQ(p.label.rfind("h263/", 0), 0u) << p.label;
  }
  EXPECT_EQ(labels.size(), points.size()) << "labels must be unique";
  EXPECT_TRUE(labels.contains("h263/2t_fsl"));
  EXPECT_TRUE(labels.contains("h263/2t_fsl_ca"));
  EXPECT_TRUE(labels.contains("h263/3t+1ip_fsl"));  // hetero: 3 PE + 1 IP tile
}

TEST(ScenarioSweepTest, IncrementalMatchesFromScratchOnScenarios) {
  // The incremental analysis context must be bit-identical to the
  // from-scratch path on the suite's shapes, exactly as it is for
  // MJPEG (bench_dse) and Figure 2 (dse_test).
  for (const char* name : {"h263", "cd2dat"}) {
    const Scenario s = findScenario(name);
    const auto arch = platform::generateFromTemplate(s.platforms[0]);
    mapping::MappingOptions incremental = s.options;
    incremental.incrementalAnalysis = true;
    mapping::MappingOptions scratch = s.options;
    scratch.incrementalAnalysis = false;
    const auto a = mapping::mapApplication(s.model, arch, incremental);
    const auto b = mapping::mapApplication(s.model, arch, scratch);
    ASSERT_EQ(a.has_value(), b.has_value()) << name;
    ASSERT_TRUE(a.has_value()) << name;
    EXPECT_EQ(a->throughput.iterationsPerCycle, b->throughput.iterationsPerCycle) << name;
    EXPECT_EQ(a->mapping.localCapacityTokens, b->mapping.localCapacityTokens) << name;
    EXPECT_EQ(a->mapping.srcBufferTokens, b->mapping.srcBufferTokens) << name;
  }
}

}  // namespace
}  // namespace mamps::suite
