// The SDF3 mapping step of the design flow (Section 5.1): binding,
// routing, buffer distribution, static-order scheduling, and the
// guaranteed-throughput analysis of the resulting binding-aware graph.
#pragma once

#include <optional>

#include "mapping/binding.hpp"
#include "mapping/binding_aware.hpp"
#include "mapping/mapping.hpp"

namespace mamps::mapping {

struct MappingResult {
  Mapping mapping;
  BindingAwareModel model;            ///< built with WCETs
  analysis::ThroughputResult throughput;  ///< the conservative guarantee
  bool meetsConstraint = false;
  std::vector<TileUsage> usage;       ///< per-tile load and memory accounting
};

/// Run the complete mapping step. Returns nullopt when no feasible
/// binding exists or the application deadlocks; otherwise the best
/// mapping found (meetsConstraint reports whether the application's
/// throughput constraint is satisfied).
[[nodiscard]] std::optional<MappingResult> mapApplication(const sdf::ApplicationModel& app,
                                                          const platform::Architecture& arch,
                                                          const MappingOptions& options = {});

/// Re-analyze an existing mapping with different actor execution times
/// (e.g. measured instead of worst-case) and/or a different
/// serialization mode. Used for the "expected" curves of Figure 6 and
/// the communication-assist experiment of Section 6.3.
[[nodiscard]] analysis::ThroughputResult analyzeMapping(
    const sdf::ApplicationModel& app, const platform::Architecture& arch, const Mapping& mapping,
    const std::vector<std::uint64_t>& actorExecTimes);

}  // namespace mamps::mapping
