// The SDF3 mapping step of the design flow (Section 5.1): binding,
// routing, buffer distribution, static-order scheduling, and the
// guaranteed-throughput analysis of the resulting binding-aware graph.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mapping/binding.hpp"
#include "mapping/binding_aware.hpp"
#include "mapping/mapping.hpp"

namespace mamps::mapping {

/// Architecture-independent precomputation of one application, shared
/// read-only across the design points of a sweep so that consistency,
/// deadlock, repetition-vector, and WCET lookups run once per
/// application instead of once per design point. Holds a pointer to the
/// application model: the model must outlive the cache (and must not be
/// mutated while the cache is in use — all members are immutable after
/// construction, making the cache safe to share across sweep workers).
struct AppAnalysisCache {
  const sdf::ApplicationModel* app = nullptr;
  bool consistent = false;    ///< balance equations solvable
  bool deadlockFree = false;  ///< one iteration completes (unbounded buffers)
  std::vector<std::uint64_t> repetition;  ///< q (empty when inconsistent)
  /// processor type -> per-actor WCET in cycles; kNoWcet marks actors
  /// without an implementation for that type.
  std::map<std::string, std::vector<std::uint64_t>, std::less<>> wcetByType;
  static constexpr std::uint64_t kNoWcet = ~std::uint64_t{0};
};

/// Validate `app` once and precompute everything mapApplication needs
/// that does not depend on the architecture.
[[nodiscard]] AppAnalysisCache prepareApplication(const sdf::ApplicationModel& app);

struct MappingResult {
  Mapping mapping;
  BindingAwareModel model;            ///< built with WCETs
  analysis::ThroughputResult throughput;  ///< the conservative guarantee
  bool meetsConstraint = false;
  /// Per-tile load and memory accounting, produced by the shared
  /// platform::ResourceBudget: the committed reservations (runtime-layer
  /// baseline plus every application admitted so far, this one included)
  /// as of this application's admission, with this application's actors
  /// listed per tile. For a single application this is simply its own
  /// usage on top of the runtime layer.
  std::vector<TileUsage> usage;
};

/// Run the complete mapping step — the one-application special case of
/// mapping::mapWorkload (mapping/workload.hpp); both share a single
/// code path. Returns nullopt when no feasible binding exists or the
/// application deadlocks; otherwise the best mapping found
/// (meetsConstraint reports whether the application's throughput
/// constraint is satisfied).
[[nodiscard]] std::optional<MappingResult> mapApplication(const sdf::ApplicationModel& app,
                                                          const platform::Architecture& arch,
                                                          const MappingOptions& options = {});

/// Cached variant for sweeps: identical results to the overload above
/// (which simply prepares a fresh cache), but the application-level
/// precomputation is taken from `cache`.
[[nodiscard]] std::optional<MappingResult> mapApplication(const AppAnalysisCache& cache,
                                                          const platform::Architecture& arch,
                                                          const MappingOptions& options = {});

/// Re-analyze an existing mapping with different actor execution times
/// (e.g. measured instead of worst-case) and/or a different
/// serialization mode. Used for the "expected" curves of Figure 6 and
/// the communication-assist experiment of Section 6.3.
[[nodiscard]] analysis::ThroughputResult analyzeMapping(
    const sdf::ApplicationModel& app, const platform::Architecture& arch, const Mapping& mapping,
    const std::vector<std::uint64_t>& actorExecTimes);

}  // namespace mamps::mapping
