#include "mapping/schedule.hpp"

#include <algorithm>
#include <limits>

#include "sdf/repetition_vector.hpp"

namespace mamps::mapping {

using platform::TileId;
using sdf::ActorId;
using sdf::ChannelId;

std::optional<std::vector<std::vector<ActorId>>> buildStaticOrderSchedules(
    const sdf::ApplicationModel& app, const platform::Architecture& arch,
    const std::vector<TileId>& actorToTile) {
  const sdf::Graph& g = app.graph();
  const auto qOpt = sdf::computeRepetitionVector(g);
  if (!qOpt) {
    throw ModelError("buildStaticOrderSchedules: inconsistent graph");
  }
  const auto& q = *qOpt;
  if (actorToTile.size() != g.actorCount()) {
    throw ModelError("buildStaticOrderSchedules: binding size mismatch");
  }

  // Resource-constrained list scheduling of one iteration with WCETs and
  // unbounded channels. Event-driven: tiles pick the ready actor that
  // became enabled first (ties: smallest actor id) whenever they go idle.
  std::vector<std::uint64_t> tokens(g.channelCount());
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    tokens[c] = g.channel(c).initialTokens;
  }
  std::vector<std::uint64_t> remainingFirings(q.begin(), q.end());
  std::vector<std::uint64_t> wcet(g.actorCount());
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    const auto* impl = app.implementationFor(a, arch.tile(actorToTile[a]).processorType);
    if (impl == nullptr) {
      throw ModelError("buildStaticOrderSchedules: actor " + g.actor(a).name +
                       " has no implementation for its tile");
    }
    wcet[a] = impl->wcetCycles;
  }

  struct Running {
    ActorId actor = sdf::kInvalidActor;
    std::uint64_t finishTime = 0;
  };
  std::vector<std::optional<Running>> busy(arch.tileCount());
  std::vector<std::vector<ActorId>> schedules(arch.tileCount());

  const auto isReady = [&](ActorId a) {
    if (remainingFirings[a] == 0) {
      return false;
    }
    for (const ChannelId c : g.actor(a).inputs) {
      if (tokens[c] < g.channel(c).consRate) {
        return false;
      }
    }
    return true;
  };

  std::uint64_t now = 0;
  std::uint64_t totalRemaining = 0;
  for (const auto r : remainingFirings) {
    totalRemaining += r;
  }

  while (totalRemaining > 0) {
    // Start work on every idle tile (repeat: a start may enable another
    // actor on the same tile only after completion, but zero-WCET actors
    // complete immediately below).
    bool started = true;
    while (started) {
      started = false;
      for (TileId t = 0; t < arch.tileCount(); ++t) {
        if (busy[t].has_value()) {
          continue;
        }
        std::optional<ActorId> pick;
        for (ActorId a = 0; a < g.actorCount(); ++a) {
          if (actorToTile[a] == t && isReady(a)) {
            pick = a;
            break;  // smallest actor id among ready ones
          }
        }
        if (!pick) {
          continue;
        }
        for (const ChannelId c : g.actor(*pick).inputs) {
          tokens[c] -= g.channel(c).consRate;
        }
        busy[t] = Running{*pick, now + wcet[*pick]};
        schedules[t].push_back(*pick);
        started = true;
      }
      // Retire zero-time work immediately so it can cascade.
      for (TileId t = 0; t < arch.tileCount(); ++t) {
        if (busy[t] && busy[t]->finishTime == now) {
          for (const ChannelId c : g.actor(busy[t]->actor).outputs) {
            tokens[c] += g.channel(c).prodRate;
          }
          --remainingFirings[busy[t]->actor];
          --totalRemaining;
          busy[t].reset();
          started = true;
        }
      }
    }

    // Advance to the earliest completion.
    std::uint64_t nextTime = std::numeric_limits<std::uint64_t>::max();
    for (TileId t = 0; t < arch.tileCount(); ++t) {
      if (busy[t]) {
        nextTime = std::min(nextTime, busy[t]->finishTime);
      }
    }
    if (nextTime == std::numeric_limits<std::uint64_t>::max()) {
      return std::nullopt;  // nothing running and nothing startable: deadlock
    }
    now = nextTime;
    for (TileId t = 0; t < arch.tileCount(); ++t) {
      if (busy[t] && busy[t]->finishTime == now) {
        for (const ChannelId c : g.actor(busy[t]->actor).outputs) {
          tokens[c] += g.channel(c).prodRate;
        }
        --remainingFirings[busy[t]->actor];
        --totalRemaining;
        busy[t].reset();
      }
    }
  }

  return schedules;
}

}  // namespace mamps::mapping
