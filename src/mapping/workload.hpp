// Multi-application co-mapping: map a workload of applications onto
// ONE shared platform.
//
// The paper's flow maps multiple throughput-constrained applications
// onto a single generated MPSoC. mapWorkload() realizes that: the
// applications are mapped iteratively (in priority order) onto the
// residual platform::ResourceBudget — each successful mapping commits
// its tile, memory, SDM-wire, and FSL-link reservations, and the next
// application only sees what is left. The per-application guarantees
// compose because every committed resource is exclusive (tiles host one
// application, SDM wires and FSL links belong to one connection), so
// co-mapped applications cannot perturb each other's analyzed
// schedules.
//
// mapApplication() (mapping/flow.hpp) is the one-application special
// case of mapWorkload() — a single code path produces both.
//
// Determinism contract: mapWorkload is a pure function of its inputs.
// Results are returned in input order regardless of the priority order
// used for mapping.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mapping/flow.hpp"
#include "platform/resource_budget.hpp"

namespace mamps::mapping {

/// Tuning knobs for mapWorkload().
struct WorkloadOptions {
  /// Mapping knobs applied to every application of the workload.
  MappingOptions options{};
  /// Per-application overrides; when non-empty it must have one entry
  /// per application and replaces `options` for that application.
  std::vector<MappingOptions> appOptions{};
  /// Mapping priorities, one per application when non-empty: higher
  /// priorities are mapped (and thus claim resources) first; ties keep
  /// input order. Empty = map in input order.
  std::vector<int> priorities{};
};

/// Outcome of mapping a workload onto one shared platform.
struct WorkloadResult {
  /// Per application, in input order: the mapping and its throughput
  /// guarantee, or nullopt when the application could not be mapped
  /// onto the residual budget (infeasible applications commit nothing).
  std::vector<std::optional<MappingResult>> apps;
  /// Combined per-tile accounting of the shared platform, produced by
  /// the final ResourceBudget (baseline runtime layer plus every mapped
  /// application). TileUsage::actors is empty here: actor ids are
  /// application-local; per-application actors are in each
  /// MappingResult::usage.
  std::vector<TileUsage> usage;
  /// The order (input indices) in which applications were mapped.
  std::vector<std::size_t> mappingOrder;

  /// Number of applications that produced a mapping.
  /// @return count of non-null entries of `apps`
  [[nodiscard]] std::size_t mappedCount() const;
  /// True when every application produced a mapping.
  /// @return mappedCount() == apps.size()
  [[nodiscard]] bool feasible() const { return mappedCount() == apps.size(); }
  /// True when every application is mapped AND meets its own throughput
  /// constraint.
  /// @return feasible() and every MappingResult::meetsConstraint
  [[nodiscard]] bool meetsConstraints() const;
};

/// Map a workload of prepared applications onto `arch`. Applications
/// are mapped in priority order onto the residual resource budget; see
/// the header comment for the composition and determinism contracts.
/// @param apps the prepared applications (see prepareApplication); the
///   underlying models must outlive the call
/// @param arch the shared platform
/// @param options workload-level and per-application knobs
/// @return per-application results in input order plus the combined
///   platform accounting
/// @throws ModelError when `options` per-application vectors do not
///   match the workload size
[[nodiscard]] WorkloadResult mapWorkload(std::span<const AppAnalysisCache> apps,
                                         const platform::Architecture& arch,
                                         const WorkloadOptions& options = {});

}  // namespace mamps::mapping
