// Multi-application co-mapping: map a workload of applications onto
// ONE shared platform.
//
// The paper's flow maps multiple throughput-constrained applications
// onto a single generated MPSoC. mapWorkload() realizes that: the
// applications are mapped iteratively (in priority order) onto the
// residual platform::ResourceBudget — each successful mapping commits
// its tile, memory, SDM-wire, and FSL-link reservations, and the next
// application only sees what is left. The per-application guarantees
// compose because every committed resource is exclusive (tiles host one
// application, SDM wires and FSL links belong to one connection), so
// co-mapped applications cannot perturb each other's analyzed
// schedules.
//
// mapApplication() (mapping/flow.hpp) is the one-application special
// case of mapWorkload() — a single code path produces both.
//
// Determinism contract: mapWorkload is a pure function of its inputs.
// Results are returned in input order regardless of the priority order
// used for mapping.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mapping/flow.hpp"
#include "platform/resource_budget.hpp"

namespace mamps::mapping {

/// Tuning knobs for mapWorkload().
struct WorkloadOptions {
  /// Mapping knobs applied to every application of the workload.
  MappingOptions options{};
  /// Per-application overrides; when non-empty it must have one entry
  /// per application and replaces `options` for that application.
  std::vector<MappingOptions> appOptions{};
  /// Mapping priorities, one per application when non-empty: higher
  /// priorities are mapped (and thus claim resources) first; ties keep
  /// input order. Empty = map in input order.
  std::vector<int> priorities{};
};

/// Outcome of mapping a workload onto one shared platform.
struct WorkloadResult {
  /// Per application, in input order: the mapping and its throughput
  /// guarantee, or nullopt when the application could not be mapped
  /// onto the residual budget (infeasible applications commit nothing).
  std::vector<std::optional<MappingResult>> apps;
  /// Combined per-tile accounting of the shared platform, produced by
  /// the final ResourceBudget (baseline runtime layer plus every mapped
  /// application). TileUsage::actors is empty here: actor ids are
  /// application-local; per-application actors are in each
  /// MappingResult::usage.
  std::vector<TileUsage> usage;
  /// The order (input indices) in which applications were mapped.
  std::vector<std::size_t> mappingOrder;

  /// Number of applications that produced a mapping.
  /// @return count of non-null entries of `apps`
  [[nodiscard]] std::size_t mappedCount() const;
  /// True when every application produced a mapping.
  /// @return mappedCount() == apps.size()
  [[nodiscard]] bool feasible() const { return mappedCount() == apps.size(); }
  /// True when every application is mapped AND meets its own throughput
  /// constraint.
  /// @return feasible() and every MappingResult::meetsConstraint
  [[nodiscard]] bool meetsConstraints() const;
};

/// Assign interconnect resources to every inter-tile channel of a bound
/// application, committing them to `budget` under `client`'s name. For
/// the NoC this reserves SDM wires along each XY route (halving the
/// per-connection request when links fill up); for FSL every inter-tile
/// channel gets a dedicated link from the budget's capped free-list.
/// All-or-nothing: the allocation is trialled on a copy internally, so
/// on failure `budget` is untouched — callers may pass long-lived
/// budgets (the admission controller's live platform state) directly.
/// @param g the application graph
/// @param arch the shared platform
/// @param actorToTile the binding (actor -> tile)
/// @param options mapping knobs (requested SDM wires per connection)
/// @param budget the shared budget to commit into
/// @param client the committing client id
/// @param routes output: one ChannelRoute per channel
/// @return true on success; false when a NoC connection cannot be
///   routed at even one wire, or the FSL link capacity is exhausted
[[nodiscard]] bool routeChannels(const sdf::Graph& g, const platform::Architecture& arch,
                                 const std::vector<platform::TileId>& actorToTile,
                                 const MappingOptions& options,
                                 platform::ResourceBudget& budget, std::uint32_t client,
                                 std::vector<ChannelRoute>& routes);

/// The complete mapping step for ONE application on the residual of
/// `budget`: bind, schedule, route, distribute buffers, analyze. On
/// success the application's reservations are committed into `budget`
/// under `client`'s name (release them with
/// platform::ResourceBudget::release); on failure the budget is
/// untouched. This is the code path shared by mapWorkload (one call per
/// application, in priority order) and the online
/// mapping::AdmissionController (one call per arriving client).
/// @param cache the prepared application (see prepareApplication)
/// @param arch the shared platform
/// @param options mapping knobs for this application
/// @param budget the shared budget; advanced only on success
/// @param client the committing client id
/// @return the mapping and its guarantee, or nullopt when the
///   application cannot be mapped onto the residual
[[nodiscard]] std::optional<MappingResult> mapOntoBudget(const AppAnalysisCache& cache,
                                                         const platform::Architecture& arch,
                                                         const MappingOptions& options,
                                                         platform::ResourceBudget& budget,
                                                         std::uint32_t client);

/// Map a workload of prepared applications onto `arch`. Applications
/// are mapped in priority order onto the residual resource budget; see
/// the header comment for the composition and determinism contracts.
/// @param apps the prepared applications (see prepareApplication); the
///   underlying models must outlive the call
/// @param arch the shared platform
/// @param options workload-level and per-application knobs
/// @return per-application results in input order plus the combined
///   platform accounting
/// @throws ModelError when `options` per-application vectors do not
///   match the workload size
[[nodiscard]] WorkloadResult mapWorkload(std::span<const AppAnalysisCache> apps,
                                         const platform::Architecture& arch,
                                         const WorkloadOptions& options = {});

}  // namespace mamps::mapping
