// Parallel, incremental design-space exploration (the Section 7 use
// case): sweep a set of candidate platform instances, run the complete
// mapping step on each, and return every point's guaranteed-throughput
// verdict. Three mechanisms make sweeping hundreds of points fast:
//
//   1. *Incremental re-analysis* inside each point's buffer-growth loop
//      (analysis::IncrementalThroughput — cached HSDF expansion,
//      patched capacity tokens, warm-started Howard),
//   2. *reuse across points* of the application-level precomputation
//      (mapping::AppAnalysisCache — consistency, repetition vector,
//      deadlock check, WCET tables), and
//   3. a *parallel sweep* over a worker pool with no shared mutable
//      state per point.
//
// Determinism contract: exploreDesignSpace returns results in input
// order and every field of every result is identical for any thread
// count, including 1 (pinned by tests/dse_test.cpp). Workers share only
// immutable state (the application model and its cache); each design
// point owns its architecture, mapping, and analysis context outright.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mapping/flow.hpp"
#include "mapping/workload.hpp"
#include "platform/arch_template.hpp"

namespace mamps::mapping {

/// One candidate platform instance plus the mapping knobs to try on it.
struct DesignPoint {
  /// The architecture template to instantiate for this point.
  platform::TemplateRequest platform{};
  /// Mapping knobs (serialization mode, buffer policy, ...) for
  /// single-application points; ignored when `workloadApps` is set.
  MappingOptions options{};
  /// Multi-application point: indices into the `apps` vector of the
  /// workload overload of exploreDesignSpace, co-mapped onto this
  /// platform via mapWorkload. Empty = single-application point
  /// (the sweep's application, mapped with `options`).
  std::vector<std::size_t> workloadApps{};
  /// Workload knobs (per-app options, priorities) for multi-application
  /// points; `workloadOptions.appOptions`, when used, is indexed like
  /// `workloadApps`.
  WorkloadOptions workloadOptions{};
  /// Display label; auto-generated ("<n>t_<interconnect>", with a
  /// "_wl<k>" suffix for k-application workload points) when empty.
  std::string label;
};

/// Outcome of one design point.
struct DesignPointResult {
  /// The (possibly auto-generated) label of the point.
  std::string label;
  /// Single-application points: the mapping and its throughput
  /// guarantee; nullopt when no feasible binding exists or the
  /// application deadlocks (always nullopt for workload points).
  std::optional<MappingResult> mapping;
  /// Workload points: the co-mapping outcome (nullopt for
  /// single-application points).
  std::optional<WorkloadResult> workload;
  /// FPGA area of this point's platform in Virtex-6 slices
  /// (platform::platformSlices with the mapping's live FSL links), so a
  /// sweep reports the throughput × area trade-off directly. Filled for
  /// every point, including infeasible ones (with zero live links).
  std::uint32_t platformSlices = 0;
  /// Wall time spent mapping and analyzing this point, in seconds.
  double seconds = 0.0;

  /// True when the point produced a mapping (for workload points: every
  /// application of the workload mapped).
  /// @return mapping.has_value(), or WorkloadResult::feasible()
  [[nodiscard]] bool feasible() const {
    return mapping.has_value() || (workload.has_value() && workload->feasible());
  }
};

/// Tuning knobs for exploreDesignSpace().
struct DseOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Share one AppAnalysisCache across all points. Disabling re-prepares
  /// the application per point; it exists for the from-scratch baseline
  /// of bench/bench_dse.cpp and changes nothing about the results.
  bool reusePreparation = true;
  /// Cross-point Howard warm starts: each worker keeps one
  /// analysis::SolverWarmStart handle and threads it through the points
  /// it processes, so a point's cycle-ratio solves seed from the
  /// previous point's converged policy (points are swept in input
  /// order, which generated sweeps lay out so neighbors differ in one
  /// knob). Pure acceleration — results are bit-identical with the
  /// flag off, with any thread count, and for any point-to-worker
  /// assignment, because Howard converges to the unique maximum cycle
  /// ratio from any initial policy (see docs/throughput.md). Exists as
  /// a flag for the cold baseline of bench/bench_dse.cpp.
  bool crossPointWarmStart = true;
};

/// Result of a sweep.
struct DseResult {
  /// One entry per input point, in input order.
  std::vector<DesignPointResult> points;
  /// Wall time of the whole sweep, in seconds.
  double totalSeconds = 0.0;

  /// Number of points that produced a mapping.
  /// @return the count of feasible points
  [[nodiscard]] std::size_t feasibleCount() const;
  /// Mean per-point latency: the average of the points' individual
  /// wall times (unlike totalSeconds / size, this is independent of
  /// how many workers ran the sweep).
  /// @return the mean of DesignPointResult::seconds, or 0 for empty
  ///   sweeps
  [[nodiscard]] double meanPointSeconds() const;
};

/// Run the complete mapping step on every design point. See the header
/// comment for the performance mechanisms and the determinism contract.
/// @param app the application to map (must outlive the call)
/// @param points the platform instances and mapping knobs to sweep;
///   `workloadApps` entries may only reference index 0 in this overload
/// @param options worker-pool and caching knobs
/// @return per-point results in input order plus sweep-level timing
[[nodiscard]] DseResult exploreDesignSpace(const sdf::ApplicationModel& app,
                                           const std::vector<DesignPoint>& points,
                                           const DseOptions& options = {});

/// Multi-application sweep: like the overload above, but points may
/// co-map any subset of `apps` (DesignPoint::workloadApps) onto their
/// platform through mapWorkload. Application-level precomputation is
/// shared per application across all points (one AppAnalysisCache
/// each), and the same parallelism and determinism contracts hold:
/// results in input order, bit-identical for any thread count.
/// @param apps the applications referenced by the points (non-null,
///   must outlive the call)
/// @param points the platform instances and workloads to sweep
/// @param options worker-pool and caching knobs
/// @return per-point results in input order plus sweep-level timing
/// @throws ModelError when a point references an app index out of range
[[nodiscard]] DseResult exploreDesignSpace(const std::vector<const sdf::ApplicationModel*>& apps,
                                           const std::vector<DesignPoint>& points,
                                           const DseOptions& options = {});

}  // namespace mamps::mapping
