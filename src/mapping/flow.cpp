#include "mapping/flow.hpp"

#include "mapping/workload.hpp"
#include "sdf/repetition_vector.hpp"

namespace mamps::mapping {

using sdf::ActorId;

AppAnalysisCache prepareApplication(const sdf::ApplicationModel& app) {
  app.validate();
  AppAnalysisCache cache;
  cache.app = &app;
  const auto q = sdf::computeRepetitionVector(app.graph());
  cache.consistent = q.has_value();
  if (!cache.consistent) {
    return cache;
  }
  cache.repetition = *q;
  cache.deadlockFree = sdf::isDeadlockFree(app.graph());
  for (ActorId a = 0; a < app.graph().actorCount(); ++a) {
    for (const sdf::ActorImplementation& impl : app.implementations(a)) {
      auto& wcet = cache.wcetByType
                       .try_emplace(impl.processorType,
                                    std::vector<std::uint64_t>(app.graph().actorCount(),
                                                               AppAnalysisCache::kNoWcet))
                       .first->second;
      wcet[a] = impl.wcetCycles;
    }
  }
  return cache;
}

std::optional<MappingResult> mapApplication(const sdf::ApplicationModel& app,
                                            const platform::Architecture& arch,
                                            const MappingOptions& options) {
  return mapApplication(prepareApplication(app), arch, options);
}

std::optional<MappingResult> mapApplication(const AppAnalysisCache& cache,
                                            const platform::Architecture& arch,
                                            const MappingOptions& options) {
  // The one-application special case of the workload flow: same binding,
  // routing, buffer-growth, and analysis code path, on a fresh budget.
  WorkloadOptions workloadOptions;
  workloadOptions.options = options;
  WorkloadResult workload = mapWorkload(std::span(&cache, 1), arch, workloadOptions);
  return std::move(workload.apps.front());
}

analysis::ThroughputResult analyzeMapping(const sdf::ApplicationModel& app,
                                          const platform::Architecture& arch,
                                          const Mapping& mapping,
                                          const std::vector<std::uint64_t>& actorExecTimes) {
  const BindingAwareModel model = buildBindingAware(app, arch, mapping, actorExecTimes);
  return analysis::computeThroughput(model.graph, model.resources);
}

}  // namespace mamps::mapping
