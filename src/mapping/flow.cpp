#include "mapping/flow.hpp"

#include <algorithm>

#include "analysis/buffer.hpp"
#include "analysis/incremental.hpp"
#include "mapping/schedule.hpp"
#include "platform/noc_topology.hpp"
#include "sdf/repetition_vector.hpp"
#include "support/log.hpp"

namespace mamps::mapping {

using platform::TileId;
using sdf::ActorId;
using sdf::ChannelId;

namespace {

/// Assign interconnect resources to every inter-tile channel. For the
/// NoC this reserves SDM wires along the XY route (degrading the wire
/// count when links fill up); for FSL every channel gets a dedicated
/// link. Returns false when a NoC connection cannot be routed at all.
bool routeChannels(const sdf::Graph& g, const platform::Architecture& arch,
                   const std::vector<TileId>& actorToTile, const MappingOptions& options,
                   std::vector<ChannelRoute>& routes) {
  routes.assign(g.channelCount(), {});
  std::uint32_t fslIndex = 0;

  std::optional<platform::NocTopology> topology;
  std::optional<platform::WireAllocator> allocator;
  if (arch.interconnect() == platform::InterconnectKind::NocMesh) {
    topology.emplace(arch.noc());
    allocator.emplace(*topology);
  }

  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const sdf::Channel& channel = g.channel(c);
    ChannelRoute& route = routes[c];
    route.srcTile = actorToTile[channel.src];
    route.dstTile = actorToTile[channel.dst];
    route.interTile = route.srcTile != route.dstTile;
    if (!route.interTile) {
      continue;
    }
    if (arch.interconnect() == platform::InterconnectKind::Fsl) {
      route.fslIndex = fslIndex++;
      continue;
    }
    route.route = topology->xyRoute(route.srcTile, route.dstTile);
    std::uint32_t wires = std::min(options.nocWiresPerConnection, arch.noc().wiresPerLink);
    wires = std::max<std::uint32_t>(wires, 1);
    while (!allocator->reserve(route.route, wires)) {
      if (wires == 1) {
        return false;  // the route is saturated
      }
      wires /= 2;
    }
    route.wires = wires;
  }
  return true;
}

/// Initial buffer distribution: conservative lower bounds scaled by the
/// configured factor.
void assignBuffers(const sdf::Graph& g, const std::vector<ChannelRoute>& routes,
                   std::uint32_t scale, Mapping& mapping) {
  mapping.localCapacityTokens.assign(g.channelCount(), 0);
  mapping.srcBufferTokens.assign(g.channelCount(), 0);
  mapping.dstBufferTokens.assign(g.channelCount(), 0);
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const sdf::Channel& channel = g.channel(c);
    if (channel.isSelfEdge()) {
      continue;
    }
    if (routes[c].interTile) {
      mapping.srcBufferTokens[c] =
          (std::uint64_t{channel.prodRate} + channel.initialTokens) * scale;
      mapping.dstBufferTokens[c] = std::uint64_t{channel.consRate} * scale;
    } else {
      mapping.localCapacityTokens[c] = analysis::capacityLowerBound(channel) * scale;
    }
  }
}

void growBuffers(const sdf::Graph& g, Mapping& mapping) {
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    if (g.channel(c).isSelfEdge()) {
      continue;
    }
    if (mapping.channelRoutes[c].interTile) {
      mapping.srcBufferTokens[c] *= 2;
      mapping.dstBufferTokens[c] *= 2;
    } else {
      mapping.localCapacityTokens[c] *= 2;
    }
  }
}

/// Push the mapping's current buffer sizes into the binding-aware model
/// (and, when given, the incremental analysis context) by patching the
/// capacity back-edges' initial tokens — the only part of the model that
/// depends on buffer sizes, so this replaces a full rebuild.
void patchCapacityTokens(const sdf::Graph& g, const Mapping& mapping, BindingAwareModel& model,
                         analysis::IncrementalThroughput* context) {
  const auto apply = [&](ChannelId id, std::uint64_t tokens) {
    if (id == sdf::kInvalidChannel) {
      return;
    }
    model.graph.graph.setInitialTokens(id, tokens);
    if (context != nullptr) {
      context->setInitialTokens(id, tokens);
    }
  };
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const sdf::Channel& channel = g.channel(c);
    if (channel.isSelfEdge()) {
      continue;
    }
    const CapacityEdgeIds& ids = model.capacityEdges[c];
    if (mapping.channelRoutes[c].interTile) {
      apply(ids.alphaSrc, mapping.srcBufferTokens[c] - channel.initialTokens);
      apply(ids.alphaDst, mapping.dstBufferTokens[c]);
    } else {
      apply(ids.localSpace, mapping.localCapacityTokens[c] - channel.initialTokens);
    }
  }
}

}  // namespace

AppAnalysisCache prepareApplication(const sdf::ApplicationModel& app) {
  app.validate();
  AppAnalysisCache cache;
  cache.app = &app;
  const auto q = sdf::computeRepetitionVector(app.graph());
  cache.consistent = q.has_value();
  if (!cache.consistent) {
    return cache;
  }
  cache.repetition = *q;
  cache.deadlockFree = sdf::isDeadlockFree(app.graph());
  for (ActorId a = 0; a < app.graph().actorCount(); ++a) {
    for (const sdf::ActorImplementation& impl : app.implementations(a)) {
      auto& wcet = cache.wcetByType
                       .try_emplace(impl.processorType,
                                    std::vector<std::uint64_t>(app.graph().actorCount(),
                                                               AppAnalysisCache::kNoWcet))
                       .first->second;
      wcet[a] = impl.wcetCycles;
    }
  }
  return cache;
}

std::optional<MappingResult> mapApplication(const sdf::ApplicationModel& app,
                                            const platform::Architecture& arch,
                                            const MappingOptions& options) {
  return mapApplication(prepareApplication(app), arch, options);
}

std::optional<MappingResult> mapApplication(const AppAnalysisCache& cache,
                                            const platform::Architecture& arch,
                                            const MappingOptions& options) {
  const sdf::ApplicationModel& app = *cache.app;
  arch.validate();
  const sdf::Graph& g = app.graph();
  if (!cache.consistent || !cache.deadlockFree) {
    return std::nullopt;
  }

  const auto binding = bindActors(app, arch, options);
  if (!binding) {
    logWarning("mapApplication: no feasible binding");
    return std::nullopt;
  }

  const auto schedules = buildStaticOrderSchedules(app, arch, binding->actorToTile);
  if (!schedules) {
    logWarning("mapApplication: schedule construction deadlocked");
    return std::nullopt;
  }

  MappingResult result;
  result.mapping.actorToTile = binding->actorToTile;
  result.mapping.schedules = *schedules;
  result.mapping.serialization = options.serialization;
  result.usage = binding->usage;

  // Route with the requested SDM width; when a link saturates, retry the
  // whole allocation with a globally halved request so early connections
  // do not starve later ones.
  {
    std::uint32_t wires = std::max<std::uint32_t>(1, options.nocWiresPerConnection);
    MappingOptions attempt = options;
    for (;;) {
      attempt.nocWiresPerConnection = wires;
      if (routeChannels(g, arch, binding->actorToTile, attempt,
                        result.mapping.channelRoutes)) {
        break;
      }
      if (wires == 1) {
        logWarning("mapApplication: NoC routing failed (saturated links)");
        return std::nullopt;
      }
      wires /= 2;
    }
  }

  // WCETs per actor on its bound tile (from the per-application cache;
  // bindActors only places actors on tiles they have an implementation
  // for, so the lookups always hit).
  std::vector<std::uint64_t> wcet(g.actorCount());
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    const auto it = cache.wcetByType.find(arch.tile(binding->actorToTile[a]).processorType);
    if (it == cache.wcetByType.end() || it->second[a] == AppAnalysisCache::kNoWcet) {
      throw ModelError("mapApplication: actor " + g.actor(a).name +
                       " bound to a tile without an implementation");
    }
    wcet[a] = it->second[a];
  }

  // Buffer distribution: start from scaled lower bounds, grow until the
  // throughput constraint holds or the growth budget is spent.
  assignBuffers(g, result.mapping.channelRoutes, std::max<std::uint32_t>(1, options.initialBufferScale),
                result.mapping);
  const Rational constraint = app.throughputConstraint();
  const auto constraintMet = [&](const analysis::ThroughputResult& t) {
    return t.ok() && (constraint.isZero() || t.iterationsPerCycle >= constraint);
  };
  if (options.incrementalAnalysis) {
    // Build the binding-aware model once; growth rounds only change
    // capacity back-edge tokens, which are patched into the model and
    // the incremental context instead of rebuilding and re-expanding.
    result.model = buildBindingAware(app, arch, result.mapping, wcet);
    analysis::IncrementalThroughput context(result.model.graph, &result.model.resources);
    result.throughput = context.compute();
    for (std::uint32_t round = 0;; ++round) {
      const bool met = constraintMet(result.throughput);
      if (met || round >= options.bufferGrowthRounds) {
        result.meetsConstraint = met;
        break;
      }
      growBuffers(g, result.mapping);
      patchCapacityTokens(g, result.mapping, result.model, &context);
      result.throughput = context.compute();
    }
  } else {
    // From-scratch baseline: rebuild the model and re-run the unified
    // analysis every round (bit-identical to the incremental path).
    for (std::uint32_t round = 0;; ++round) {
      result.model = buildBindingAware(app, arch, result.mapping, wcet);
      result.throughput =
          analysis::computeThroughput(result.model.graph, result.model.resources);
      const bool met = constraintMet(result.throughput);
      if (met || round >= options.bufferGrowthRounds) {
        result.meetsConstraint = met;
        break;
      }
      growBuffers(g, result.mapping);
    }
  }
  return result;
}

analysis::ThroughputResult analyzeMapping(const sdf::ApplicationModel& app,
                                          const platform::Architecture& arch,
                                          const Mapping& mapping,
                                          const std::vector<std::uint64_t>& actorExecTimes) {
  const BindingAwareModel model = buildBindingAware(app, arch, mapping, actorExecTimes);
  return analysis::computeThroughput(model.graph, model.resources);
}

}  // namespace mamps::mapping
