#include "mapping/binding_aware.hpp"

#include <map>

#include "analysis/buffer.hpp"
#include "comm/params.hpp"

namespace mamps::mapping {

using comm::CommModelParams;
using comm::SerializationMode;
using sdf::ActorId;
using sdf::ChannelId;

BindingAwareModel buildBindingAware(const sdf::ApplicationModel& app,
                                    const platform::Architecture& arch, const Mapping& mapping,
                                    const std::vector<std::uint64_t>& actorExecTimes) {
  const sdf::Graph& g = app.graph();
  if (actorExecTimes.size() != g.actorCount()) {
    throw ModelError("buildBindingAware: execTime size mismatch");
  }
  if (mapping.actorToTile.size() != g.actorCount() ||
      mapping.channelRoutes.size() != g.channelCount()) {
    throw ModelError("buildBindingAware: mapping shape mismatch");
  }

  const bool onPe = mapping.serialization == SerializationMode::OnProcessor;
  const comm::SerializationCost serCost = onPe ? comm::processorSerializationCost()
                                               : comm::commAssistSerializationCost();

  // Effective actor execution times: with PE-based serialization the
  // wrapper serializes every produced token and de-serializes every
  // consumed token of inter-tile channels inline.
  std::vector<std::uint64_t> effective = actorExecTimes;
  if (onPe) {
    for (ChannelId c = 0; c < g.channelCount(); ++c) {
      if (!mapping.channelRoutes[c].interTile) {
        continue;
      }
      const sdf::Channel& channel = g.channel(c);
      const std::uint32_t n = comm::wordsPerToken(channel.tokenSizeBytes);
      effective[channel.src] += std::uint64_t{channel.prodRate} * serCost.cycles(n);
      effective[channel.dst] += std::uint64_t{channel.consRate} * serCost.cycles(n);
    }
  }

  // Communication-model parameters per inter-tile channel.
  std::map<ChannelId, CommModelParams> params;
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const ChannelRoute& route = mapping.channelRoutes[c];
    if (!route.interTile) {
      continue;
    }
    const sdf::Channel& channel = g.channel(c);
    CommModelParams p;
    if (arch.interconnect() == platform::InterconnectKind::Fsl) {
      p = comm::fslParams(channel, arch.fsl(), mapping.serialization, mapping.srcBufferTokens[c],
                          mapping.dstBufferTokens[c]);
    } else {
      p = comm::nocParams(channel, arch.noc(), static_cast<std::uint32_t>(route.route.size()),
                          route.wires, mapping.serialization, mapping.srcBufferTokens[c],
                          mapping.dstBufferTokens[c]);
    }
    if (onPe) {
      // The serialization cost already sits in the actor times; the s1/d1
      // stages of the model then only mark the hand-over to the NI.
      p.serializeTime = 0;
      p.deserializeTime = 0;
    }
    params.emplace(c, p);
  }

  // lint:allow(timedgraph-rebuild) -- origin point: this literal CREATES the timed view (same actor set as g, annotations built above); there is no prior TimedGraph to rebuild from
  sdf::TimedGraph timed{g, std::move(effective), {}};
  comm::CommExpansion expansion = comm::expandChannels(timed, params);

  // Capacity back-edges for the local channels. The expansion copies
  // unexpanded channels first, in their original order.
  analysis::BufferCapacities capacities(expansion.graph.graph.channelCount(), 0);
  {
    std::size_t newId = 0;
    for (ChannelId c = 0; c < g.channelCount(); ++c) {
      if (params.contains(c)) {
        continue;
      }
      if (!g.channel(c).isSelfEdge()) {
        capacities[newId] = mapping.localCapacityTokens[c];
      }
      ++newId;
    }
  }
  BindingAwareModel out;
  out.graph = analysis::withCapacities(expansion.graph, capacities);
  out.expanded = std::move(expansion.expanded);

  // Record where each application channel's capacity tokens live.
  // Inter-tile channels: the alpha back-edges of the expansion. Local
  // channels: the space back-edges, which withCapacities appends after
  // the expansion's channels in channel order (only bounded, non-self
  // channels get one).
  out.capacityEdges.assign(g.channelCount(), {});
  for (const comm::ExpandedChannel& e : out.expanded) {
    out.capacityEdges[e.original].alphaSrc = e.alphaSrc;
    out.capacityEdges[e.original].alphaDst = e.alphaDst;
  }
  {
    auto spaceId = static_cast<ChannelId>(expansion.graph.graph.channelCount());
    std::size_t newId = 0;
    for (ChannelId c = 0; c < g.channelCount(); ++c) {
      if (params.contains(c)) {
        continue;
      }
      if (capacities[newId] != 0 && !g.channel(c).isSelfEdge()) {
        out.capacityEdges[c].localSpace = spaceId++;
      }
      ++newId;
    }
  }

  // Resource constraints: application actors occupy their tile's PE in
  // static order; communication-model stages are NI/interconnect
  // hardware (or the CA) with dedicated resources.
  out.resources.actorResource.assign(out.graph.graph.actorCount(),
                                     analysis::ResourceConstraints::kUnbound);
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    out.resources.actorResource[a] = mapping.actorToTile[a];
  }
  out.resources.staticOrder = mapping.schedules;
  return out;
}

}  // namespace mamps::mapping
