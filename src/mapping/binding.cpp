#include "mapping/binding.hpp"

#include <algorithm>

#include "platform/noc_topology.hpp"
#include "sdf/repetition_vector.hpp"

namespace mamps::mapping {

using platform::Architecture;
using platform::ResourceBudget;
using platform::TileId;
using sdf::ActorId;
using sdf::ApplicationModel;
using sdf::ChannelId;

std::uint32_t runtimeLayerInstrBytes() { return 8 * 1024; }
std::uint32_t runtimeLayerDataBytes() { return 2 * 1024; }

namespace {

/// Hop distance between two tiles for latency costing; 1 for FSL
/// (dedicated point-to-point links), XY distance for the NoC.
std::uint32_t tileDistance(const Architecture& arch, const ResourceBudget& budget, TileId a,
                           TileId b) {
  if (a == b) {
    return 0;
  }
  if (arch.interconnect() == platform::InterconnectKind::Fsl) {
    return 1;
  }
  return budget.nocTopology().hopDistance(a, b);
}

/// TDM slots the application wants on a candidate tile: the whole wheel
/// when options.tdmSlots is 0 (exclusive, the pre-TDM default), else
/// the requested share clamped to the wheel size (so a 1-slot wheel —
/// or a hardware IP tile — is still claimed whole).
std::uint32_t desiredSlots(const ResourceBudget& budget, TileId tile,
                           const MappingOptions& options) {
  const std::uint32_t capacity = budget.tileSlotCapacity(tile);
  return options.tdmSlots == 0 ? capacity : std::min(options.tdmSlots, capacity);
}

}  // namespace

std::optional<BindingResult> bindActors(const ApplicationModel& app, const MappingOptions& options,
                                        ResourceBudget& budget, std::uint32_t client) {
  const Architecture& arch = *budget.arch();
  const sdf::Graph& g = app.graph();
  const auto qOpt = sdf::computeRepetitionVector(g);
  if (!qOpt) {
    throw ModelError("bindActors: application graph is inconsistent");
  }
  const auto& q = *qOpt;
  if (arch.tileCount() == 0) {
    return std::nullopt;
  }

  BindingResult result;
  result.actorToTile.assign(g.actorCount(), 0);
  result.usage.assign(arch.tileCount(), {});

  // Total work, for normalizing the processing cost.
  double totalWork = 0;
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    const auto& impls = app.implementations(a);
    if (impls.empty()) {
      throw ModelError("bindActors: actor " + g.actor(a).name + " has no implementation");
    }
    totalWork += static_cast<double>(impls.front().wcetCycles) * static_cast<double>(q[a]);
  }
  totalWork = std::max(totalWork, 1.0);

  // Bind heaviest actors first: their placement dominates the balance.
  std::vector<ActorId> order(g.actorCount());
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    order[a] = a;
  }
  std::sort(order.begin(), order.end(), [&](ActorId x, ActorId y) {
    const auto workOf = [&](ActorId a) {
      return static_cast<double>(app.implementations(a).front().wcetCycles) *
             static_cast<double>(q[a]);
    };
    const double wx = workOf(x);
    const double wy = workOf(y);
    if (wx != wy) {
      return wx > wy;
    }
    return x < y;
  });

  std::vector<bool> bound(g.actorCount(), false);
  std::uint32_t claimedTiles = 0;

  for (const ActorId a : order) {
    double bestCost = 0;
    std::optional<TileId> bestTile;
    const sdf::ActorImplementation* bestImpl = nullptr;

    for (TileId t = 0; t < arch.tileCount(); ++t) {
      if (budget.tileFailed(t)) {
        continue;  // never place work on a failed tile
      }
      const platform::Tile& tile = arch.tile(t);
      const bool holdsSlots = budget.tileSlots(t, client) > 0;
      if (!holdsSlots && budget.freeTileSlots(t) < desiredSlots(budget, t, options)) {
        continue;  // the wheel cannot seat this application's share
      }
      if (options.maxTiles != 0 && claimedTiles >= options.maxTiles && !holdsSlots) {
        continue;  // the application's tile footprint is capped
      }
      const sdf::ActorImplementation* impl = app.implementationFor(a, tile.processorType);
      if (impl == nullptr) {
        continue;  // no implementation for this processor type
      }
      const platform::TileBudget& committed = budget.tiles()[t];
      if (impl->instrMemBytes > budget.freeInstrBytes(t) ||
          impl->dataMemBytes > budget.freeDataBytes(t)) {
        continue;  // memory does not fit the residual
      }

      // Cost functions (Section 5.1): processing, memory, communication,
      // latency; all normalized to [0, ~1] before weighting.
      const double processing =
          (static_cast<double>(committed.loadCycles) +
           static_cast<double>(impl->wcetCycles) * static_cast<double>(q[a])) /
          totalWork;
      const double memory =
          static_cast<double>(committed.instrBytes + impl->instrMemBytes + committed.dataBytes +
                              impl->dataMemBytes) /
          static_cast<double>(tile.memory.totalBytes());

      double commBytes = 0;
      double latencyHops = 0;
      const auto accountChannel = [&](ChannelId cid, ActorId other) {
        if (!bound[other]) {
          return;
        }
        const sdf::Channel& c = g.channel(cid);
        const TileId otherTile = result.actorToTile[other];
        if (otherTile == t) {
          return;  // local communication is free
        }
        const double bytesPerIteration = static_cast<double>(q[c.src]) *
                                         static_cast<double>(c.prodRate) *
                                         static_cast<double>(c.tokenSizeBytes);
        commBytes += bytesPerIteration;
        latencyHops += tileDistance(arch, budget, t, otherTile);
      };
      for (const ChannelId cid : g.actor(a).inputs) {
        accountChannel(cid, g.channel(cid).src);
      }
      for (const ChannelId cid : g.actor(a).outputs) {
        if (!g.channel(cid).isSelfEdge()) {
          accountChannel(cid, g.channel(cid).dst);
        }
      }
      const double communication = commBytes / 4096.0;
      const double latency = latencyHops / 8.0;

      const double cost = options.weights.processing * processing +
                          options.weights.memory * memory +
                          options.weights.communication * communication +
                          options.weights.latency * latency;
      if (!bestTile || cost < bestCost) {
        bestCost = cost;
        bestTile = t;
        bestImpl = impl;
      }
    }

    if (!bestTile) {
      return std::nullopt;  // actor cannot be placed anywhere
    }
    result.actorToTile[a] = *bestTile;
    bound[a] = true;
    if (budget.tileSlots(*bestTile, client) == 0) {
      ++claimedTiles;
      budget.reserveTileSlots(*bestTile, client, desiredSlots(budget, *bestTile, options));
    }
    budget.commitTile(*bestTile, client, bestImpl->wcetCycles * q[a], bestImpl->instrMemBytes,
                      bestImpl->dataMemBytes);
    result.usage[*bestTile].actors.push_back(a);
  }

  // The per-tile accounting is the budget's committed state (baseline +
  // every client so far), not a recomputation.
  for (TileId t = 0; t < arch.tileCount(); ++t) {
    const platform::TileBudget& committed = budget.tiles()[t];
    result.usage[t].loadCycles = committed.loadCycles;
    result.usage[t].instrBytes = committed.instrBytes;
    result.usage[t].dataBytes = committed.dataBytes;
  }
  return result;
}

std::optional<BindingResult> bindActors(const ApplicationModel& app, const Architecture& arch,
                                        const MappingOptions& options) {
  platform::ResourceBudget budget(arch);
  budget.commitBaseline(runtimeLayerInstrBytes(), runtimeLayerDataBytes());
  return bindActors(app, options, budget, /*client=*/0);
}

}  // namespace mamps::mapping
