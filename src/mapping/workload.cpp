#include "mapping/workload.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/buffer.hpp"
#include "analysis/incremental.hpp"
#include "mapping/binding.hpp"
#include "mapping/schedule.hpp"
#include "support/log.hpp"

namespace mamps::mapping {

using platform::ResourceBudget;
using platform::TileId;
using sdf::ActorId;
using sdf::ChannelId;

bool routeChannels(const sdf::Graph& g, const platform::Architecture& arch,
                   const std::vector<TileId>& actorToTile, const MappingOptions& options,
                   ResourceBudget& budget, std::uint32_t client,
                   std::vector<ChannelRoute>& routes) {
  // All-or-nothing: allocate on a copy, commit only a complete success.
  // The contract is load-bearing for callers that hold a long-lived
  // budget (the admission controller's live platform state): a failed
  // route must not corrupt it.
  ResourceBudget trial = budget;
  routes.assign(g.channelCount(), {});
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const sdf::Channel& channel = g.channel(c);
    ChannelRoute& route = routes[c];
    route.srcTile = actorToTile[channel.src];
    route.dstTile = actorToTile[channel.dst];
    route.interTile = route.srcTile != route.dstTile;
    if (!route.interTile) {
      continue;
    }
    if (arch.interconnect() == platform::InterconnectKind::Fsl) {
      if (trial.fslLinksAvailable() == 0) {
        return false;  // the FSL port budget (minus failed links) is exhausted
      }
      route.fslIndex = trial.allocateFslLink(client);
      continue;
    }
    route.route = trial.nocTopology().xyRoute(route.srcTile, route.dstTile);
    std::uint32_t wires = std::min(options.nocWiresPerConnection, arch.noc().wiresPerLink);
    wires = std::max<std::uint32_t>(wires, 1);
    while (!trial.reserveNocWires(route.route, wires, client)) {
      if (wires == 1) {
        return false;  // the route is saturated
      }
      wires /= 2;
    }
    route.wires = wires;
  }
  budget = std::move(trial);
  return true;
}

namespace {

/// Initial buffer distribution: conservative lower bounds scaled by the
/// configured factor.
void assignBuffers(const sdf::Graph& g, const std::vector<ChannelRoute>& routes,
                   std::uint32_t scale, Mapping& mapping) {
  mapping.localCapacityTokens.assign(g.channelCount(), 0);
  mapping.srcBufferTokens.assign(g.channelCount(), 0);
  mapping.dstBufferTokens.assign(g.channelCount(), 0);
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const sdf::Channel& channel = g.channel(c);
    if (channel.isSelfEdge()) {
      continue;
    }
    if (routes[c].interTile) {
      mapping.srcBufferTokens[c] =
          (std::uint64_t{channel.prodRate} + channel.initialTokens) * scale;
      mapping.dstBufferTokens[c] = std::uint64_t{channel.consRate} * scale;
    } else {
      mapping.localCapacityTokens[c] = analysis::capacityLowerBound(channel) * scale;
    }
  }
}

void growBuffers(const sdf::Graph& g, Mapping& mapping) {
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    if (g.channel(c).isSelfEdge()) {
      continue;
    }
    if (mapping.channelRoutes[c].interTile) {
      mapping.srcBufferTokens[c] *= 2;
      mapping.dstBufferTokens[c] *= 2;
    } else {
      mapping.localCapacityTokens[c] *= 2;
    }
  }
}

/// Push the mapping's current buffer sizes into the binding-aware model
/// (and, when given, the incremental analysis context) by patching the
/// capacity back-edges' initial tokens — the only part of the model that
/// depends on buffer sizes, so this replaces a full rebuild.
void patchCapacityTokens(const sdf::Graph& g, const Mapping& mapping, BindingAwareModel& model,
                         analysis::IncrementalThroughput* context) {
  const auto apply = [&](ChannelId id, std::uint64_t tokens) {
    if (id == sdf::kInvalidChannel) {
      return;
    }
    model.graph.graph.setInitialTokens(id, tokens);
    if (context != nullptr) {
      context->setInitialTokens(id, tokens);
    }
  };
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const sdf::Channel& channel = g.channel(c);
    if (channel.isSelfEdge()) {
      continue;
    }
    const CapacityEdgeIds& ids = model.capacityEdges[c];
    if (mapping.channelRoutes[c].interTile) {
      apply(ids.alphaSrc, mapping.srcBufferTokens[c] - channel.initialTokens);
      apply(ids.alphaDst, mapping.dstBufferTokens[c]);
    } else {
      apply(ids.localSpace, mapping.localCapacityTokens[c] - channel.initialTokens);
    }
  }
}

}  // namespace

std::optional<MappingResult> mapOntoBudget(const AppAnalysisCache& cache,
                                           const platform::Architecture& arch,
                                           const MappingOptions& options, ResourceBudget& budget,
                                           std::uint32_t client) {
  const sdf::ApplicationModel& app = *cache.app;
  const sdf::Graph& g = app.graph();
  if (!cache.consistent || !cache.deadlockFree) {
    return std::nullopt;
  }

  // Trial everything on a copy; `budget` only advances on success.
  ResourceBudget work = budget;
  const auto binding = bindActors(app, options, work, client);
  if (!binding) {
    logWarning("mapOntoBudget: no feasible binding");
    return std::nullopt;
  }

  const auto schedules = buildStaticOrderSchedules(app, arch, binding->actorToTile);
  if (!schedules) {
    logWarning("mapOntoBudget: schedule construction deadlocked");
    return std::nullopt;
  }

  MappingResult result;
  result.mapping.actorToTile = binding->actorToTile;
  result.mapping.schedules = *schedules;
  result.mapping.serialization = options.serialization;
  result.usage = binding->usage;

  // Route with the requested SDM width; when a link saturates, retry the
  // whole allocation with a globally halved request so early connections
  // do not starve later ones. routeChannels is all-or-nothing, so a
  // failed attempt leaves `work` untouched.
  {
    std::uint32_t wires = std::max<std::uint32_t>(1, options.nocWiresPerConnection);
    MappingOptions attempt = options;
    for (;;) {
      attempt.nocWiresPerConnection = wires;
      if (routeChannels(g, arch, binding->actorToTile, attempt, work, client,
                        result.mapping.channelRoutes)) {
        break;
      }
      if (wires == 1) {
        logWarning("mapOntoBudget: routing failed (saturated links or FSL capacity)");
        return std::nullopt;
      }
      wires /= 2;
    }
  }

  // Record the TDM shares the binder reserved; admission replay
  // re-reserves exactly these before re-committing load/memory.
  result.mapping.tileTdmSlots.assign(arch.tileCount(), 0);
  for (TileId t = 0; t < arch.tileCount(); ++t) {
    result.mapping.tileTdmSlots[t] = work.tileSlots(t, client);
  }

  // WCETs per actor on its bound tile (from the per-application cache;
  // bindActors only places actors on tiles they have an implementation
  // for, so the lookups always hit).
  std::vector<std::uint64_t> wcet(g.actorCount());
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    const auto it = cache.wcetByType.find(arch.tile(binding->actorToTile[a]).processorType);
    if (it == cache.wcetByType.end() || it->second[a] == AppAnalysisCache::kNoWcet) {
      throw ModelError("mapOntoBudget: actor " + g.actor(a).name +
                       " bound to a tile without an implementation");
    }
    wcet[a] = it->second[a];
    // Conservative TDM accounting: holding k of the wheel's S slots,
    // a firing of raw length w needs at most ceil(w / (k/S)) cycles of
    // wall-clock wheel time plus the slot-switch overhead, REGARDLESS
    // of what co-resident applications run in the other slots. The
    // analyzed throughput under these inflated WCETs is therefore a
    // composable lower bound. A fully-held wheel stays uninflated (the
    // exclusive pre-TDM case).
    const platform::TileId t = binding->actorToTile[a];
    const std::uint32_t held = work.tileSlots(t, client);
    const std::uint32_t wheel = work.tileSlotCapacity(t);
    if (held != 0 && held < wheel) {
      // The effective wheel (degraded when the tile is) sets both the
      // share and the switch overhead.
      wcet[a] = (wcet[a] * wheel + held - 1) / held + work.tileWheelOverheadCycles(t);
    }
  }

  // Buffer distribution: start from scaled lower bounds, grow until the
  // throughput constraint holds or the growth budget is spent.
  assignBuffers(g, result.mapping.channelRoutes,
                std::max<std::uint32_t>(1, options.initialBufferScale), result.mapping);
  const Rational constraint = app.throughputConstraint();
  const auto constraintMet = [&](const analysis::ThroughputResult& t) {
    return t.ok() && (constraint.isZero() || t.iterationsPerCycle >= constraint);
  };
  if (options.incrementalAnalysis) {
    // Build the binding-aware model once; growth rounds only change
    // capacity back-edge tokens, which are patched into the model and
    // the incremental context instead of rebuilding and re-expanding.
    result.model = buildBindingAware(app, arch, result.mapping, wcet);
    analysis::IncrementalThroughput context(result.model.graph, &result.model.resources);
    // Cross-run warm start: seed the first solve from the caller's
    // handle (e.g. the previous design point of a DSE sweep) and hand
    // the converged policy back after the growth loop. Acceleration
    // only — results never depend on the seed.
    if (options.solverWarmStart != nullptr) {
      context.adoptWarmStart(*options.solverWarmStart);
    }
    result.throughput = context.compute();
    for (std::uint32_t round = 0;; ++round) {
      const bool met = constraintMet(result.throughput);
      if (met || round >= options.bufferGrowthRounds) {
        result.meetsConstraint = met;
        break;
      }
      growBuffers(g, result.mapping);
      patchCapacityTokens(g, result.mapping, result.model, &context);
      result.throughput = context.compute();
    }
    if (options.solverWarmStart != nullptr && context.onFastPath()) {
      context.exportWarmStart(*options.solverWarmStart);
    }
  } else {
    // From-scratch baseline: rebuild the model and re-run the unified
    // analysis every round (bit-identical to the incremental path).
    for (std::uint32_t round = 0;; ++round) {
      result.model = buildBindingAware(app, arch, result.mapping, wcet);
      result.throughput =
          analysis::computeThroughput(result.model.graph, result.model.resources);
      const bool met = constraintMet(result.throughput);
      if (met || round >= options.bufferGrowthRounds) {
        result.meetsConstraint = met;
        break;
      }
      growBuffers(g, result.mapping);
    }
  }
  budget = std::move(work);
  return result;
}

std::size_t WorkloadResult::mappedCount() const {
  std::size_t n = 0;
  for (const auto& app : apps) {
    n += app.has_value() ? 1 : 0;
  }
  return n;
}

bool WorkloadResult::meetsConstraints() const {
  if (!feasible()) {
    return false;
  }
  for (const auto& app : apps) {
    if (!app->meetsConstraint) {
      return false;
    }
  }
  return true;
}

WorkloadResult mapWorkload(std::span<const AppAnalysisCache> apps,
                           const platform::Architecture& arch, const WorkloadOptions& options) {
  arch.validate();
  if (!options.appOptions.empty() && options.appOptions.size() != apps.size()) {
    throw ModelError("mapWorkload: appOptions size does not match the workload");
  }
  if (!options.priorities.empty() && options.priorities.size() != apps.size()) {
    throw ModelError("mapWorkload: priorities size does not match the workload");
  }

  // Priority order: higher first, ties in input order (stable).
  std::vector<std::size_t> order(apps.size());
  std::iota(order.begin(), order.end(), 0);
  if (!options.priorities.empty()) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return options.priorities[a] > options.priorities[b];
    });
  }

  ResourceBudget budget(arch);
  budget.commitBaseline(runtimeLayerInstrBytes(), runtimeLayerDataBytes());

  WorkloadResult out;
  out.apps.resize(apps.size());
  out.mappingOrder = order;
  for (const std::size_t i : order) {
    const MappingOptions& appOptions =
        options.appOptions.empty() ? options.options : options.appOptions[i];
    out.apps[i] =
        mapOntoBudget(apps[i], arch, appOptions, budget, static_cast<std::uint32_t>(i));
  }

  // Combined platform accounting straight from the final budget.
  out.usage.assign(arch.tileCount(), {});
  for (TileId t = 0; t < arch.tileCount(); ++t) {
    const platform::TileBudget& committed = budget.tiles()[t];
    out.usage[t].loadCycles = committed.loadCycles;
    out.usage[t].instrBytes = committed.instrBytes;
    out.usage[t].dataBytes = committed.dataBytes;
  }
  return out;
}

}  // namespace mamps::mapping
