// Resource-aware actor binding driven by generic cost functions
// (Section 5.1). Actors are bound one by one, heaviest first; each
// candidate tile is scored on processing balance, memory headroom,
// inter-tile communication volume, and interconnect latency.
#pragma once

#include <optional>
#include <vector>

#include "mapping/mapping.hpp"

namespace mamps::mapping {

struct BindingResult {
  std::vector<platform::TileId> actorToTile;
  std::vector<TileUsage> usage;  ///< per tile
};

/// Bind every actor of `app` to a tile of `arch`. Actors can only go to
/// tiles whose processor type they have an implementation for, and only
/// where instruction/data memory still fits. Returns nullopt when no
/// feasible binding exists.
[[nodiscard]] std::optional<BindingResult> bindActors(const sdf::ApplicationModel& app,
                                                      const platform::Architecture& arch,
                                                      const MappingOptions& options);

/// Fixed memory cost of the scheduling and communication layer included
/// in every Microblaze tile's image (Section 5.2).
[[nodiscard]] std::uint32_t runtimeLayerInstrBytes();
[[nodiscard]] std::uint32_t runtimeLayerDataBytes();

}  // namespace mamps::mapping
