// Resource-aware actor binding driven by generic cost functions
// (Section 5.1). Actors are bound one by one, heaviest first; each
// candidate tile is scored on processing balance, memory headroom,
// inter-tile communication volume, and interconnect latency. All
// capacity checks and reservations go through the shared-platform
// platform::ResourceBudget, so a workload's applications bind onto the
// residual of what earlier applications committed.
#pragma once

#include <optional>
#include <vector>

#include "mapping/mapping.hpp"
#include "platform/resource_budget.hpp"

namespace mamps::mapping {

struct BindingResult {
  std::vector<platform::TileId> actorToTile;
  /// Per tile: the budget's committed reservations after this binding
  /// (baseline + every client mapped so far) plus this application's
  /// actors on that tile.
  std::vector<TileUsage> usage;
};

/// Bind every actor of `app` to a tile of the budget's architecture.
/// Actors can only go to tiles whose processor type they have an
/// implementation for, that are not claimed by another client, and
/// where instruction/data memory still fits the residual budget.
/// Successful placements are committed to `budget` (claiming the tiles
/// for `client`); on failure the budget is left partially committed, so
/// callers trial a copy. Returns nullopt when no feasible binding
/// exists.
[[nodiscard]] std::optional<BindingResult> bindActors(const sdf::ApplicationModel& app,
                                                      const MappingOptions& options,
                                                      platform::ResourceBudget& budget,
                                                      std::uint32_t client);

/// Single-application convenience: bind onto a fresh budget of `arch`
/// (with the runtime layer as baseline). Identical to the workload
/// overload with one client.
[[nodiscard]] std::optional<BindingResult> bindActors(const sdf::ApplicationModel& app,
                                                      const platform::Architecture& arch,
                                                      const MappingOptions& options);

/// Fixed memory cost of the scheduling and communication layer included
/// in every Microblaze tile's image (Section 5.2).
[[nodiscard]] std::uint32_t runtimeLayerInstrBytes();
[[nodiscard]] std::uint32_t runtimeLayerDataBytes();

}  // namespace mamps::mapping
