#include "mapping/mapping.hpp"

// Mapping is a data-only module; its behaviour lives in binding.cpp,
// schedule.cpp, binding_aware.cpp, and flow.cpp. This translation unit
// exists to anchor the library target.
namespace mamps::mapping {}
