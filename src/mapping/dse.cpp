#include "mapping/dse.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "analysis/mcm.hpp"
#include "platform/area.hpp"
#include "support/thread_annotations.hpp"

namespace mamps::mapping {

namespace {

using Clock = std::chrono::steady_clock;

/// First-error collector for a worker pool: keeps the earliest captured
/// exception, drops the rest. The slot is MAMPS_GUARDED_BY the
/// collector's mutex, so the clang -Wthread-safety CI leg proves no
/// worker path touches it outside the lock.
class ErrorCollector {
 public:
  /// Record the in-flight exception if no earlier one is held.
  void capture() MAMPS_EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    if (!first_) {
      first_ = std::current_exception();
    }
  }

  /// Rethrow the held exception, if any. Call after the pool joined.
  void rethrowIfSet() MAMPS_EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    if (first_) {
      std::rethrow_exception(first_);
    }
  }

 private:
  support::Mutex mu_;
  std::exception_ptr first_ MAMPS_GUARDED_BY(mu_);
};

double seconds(Clock::duration d) { return std::chrono::duration<double>(d).count(); }

std::string makeLabel(const DesignPoint& point) {
  if (!point.label.empty()) {
    return point.label;
  }
  std::string label = std::to_string(point.platform.tileCount);
  label += "t";
  // Call out hardware IP tiles ("3t+1ip") so heterogeneous and
  // homogeneous points with the same processor-tile count stay
  // distinguishable.
  if (!point.platform.hardwareIpTiles.empty()) {
    label += "+";
    label += std::to_string(point.platform.hardwareIpTiles.size());
    label += "ip";
  }
  label += "_";
  label += platform::interconnectKindName(point.platform.interconnect);
  if (!point.workloadApps.empty()) {
    label += "_wl";
    label += std::to_string(point.workloadApps.size());
  }
  return label;
}

/// Run one design point end to end. Everything this touches is either
/// point-local or immutable shared state except `warm`, which is owned
/// by exactly one worker (each worker passes its own handle), so points
/// are freely parallelizable.
DesignPointResult explorePoint(const std::vector<const sdf::ApplicationModel*>& apps,
                               const std::vector<AppAnalysisCache>* caches,
                               const DesignPoint& point, analysis::SolverWarmStart* warm) {
  DesignPointResult result;
  result.label = makeLabel(point);
  const auto start = Clock::now();
  const platform::Architecture arch = platform::generateFromTemplate(point.platform);
  // Uncached sweeps (the from-scratch baseline) prepare per point.
  std::vector<AppAnalysisCache> local;
  const auto cacheFor = [&](std::size_t i) -> const AppAnalysisCache& {
    if (caches != nullptr) {
      return (*caches)[i];
    }
    return local.emplace_back(prepareApplication(*apps[i]));
  };
  std::uint32_t fslLinks = 0;
  if (point.workloadApps.empty()) {
    MappingOptions options = point.options;
    if (warm != nullptr) {
      options.solverWarmStart = warm;
    }
    result.mapping = mapApplication(cacheFor(0), arch, options);
    if (result.mapping) {
      fslLinks = result.mapping->mapping.fslLinkCount();
    }
  } else {
    std::vector<AppAnalysisCache> workload;
    workload.reserve(point.workloadApps.size());
    for (const std::size_t i : point.workloadApps) {
      workload.push_back(cacheFor(i));
    }
    WorkloadOptions options = point.workloadOptions;
    if (warm != nullptr) {
      options.options.solverWarmStart = warm;
      for (MappingOptions& appOptions : options.appOptions) {
        appOptions.solverWarmStart = warm;
      }
    }
    result.workload = mapWorkload(workload, arch, options);
    for (const std::optional<MappingResult>& app : result.workload->apps) {
      if (app) {
        fslLinks += app->mapping.fslLinkCount();
      }
    }
  }
  result.platformSlices = platform::platformSlices(arch, fslLinks);
  result.seconds = seconds(Clock::now() - start);
  return result;
}

}  // namespace

std::size_t DseResult::feasibleCount() const {
  std::size_t n = 0;
  for (const DesignPointResult& p : points) {
    n += p.feasible() ? 1 : 0;
  }
  return n;
}

double DseResult::meanPointSeconds() const {
  if (points.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const DesignPointResult& p : points) {
    sum += p.seconds;
  }
  return sum / static_cast<double>(points.size());
}

DseResult exploreDesignSpace(const sdf::ApplicationModel& app,
                             const std::vector<DesignPoint>& points, const DseOptions& options) {
  return exploreDesignSpace(std::vector<const sdf::ApplicationModel*>{&app}, points, options);
}

DseResult exploreDesignSpace(const std::vector<const sdf::ApplicationModel*>& apps,
                             const std::vector<DesignPoint>& points, const DseOptions& options) {
  const auto sweepStart = Clock::now();
  if (apps.empty() && !points.empty()) {
    throw ModelError("exploreDesignSpace: no applications given");
  }
  for (const DesignPoint& point : points) {
    for (const std::size_t i : point.workloadApps) {
      if (i >= apps.size()) {
        throw ModelError("exploreDesignSpace: workload app index out of range");
      }
    }
  }
  std::optional<std::vector<AppAnalysisCache>> caches;
  if (options.reusePreparation) {
    caches.emplace();
    caches->reserve(apps.size());
    for (const sdf::ApplicationModel* app : apps) {
      caches->push_back(prepareApplication(*app));
    }
  }
  const std::vector<AppAnalysisCache>* sharedCaches = caches ? &*caches : nullptr;

  DseResult out;
  out.points.resize(points.size());

  // Deterministic by construction: worker i writes only out.points[i],
  // and every point's computation depends only on immutable inputs plus
  // its worker's private warm-start handle — which Howard's unique
  // fixpoint makes result-neutral — so the result is independent of
  // scheduling and thread count.
  std::atomic<std::size_t> next{0};
  ErrorCollector errors;
  const auto worker = [&] {
    analysis::SolverWarmStart warm;
    analysis::SolverWarmStart* warmPtr = options.crossPointWarmStart ? &warm : nullptr;
    for (std::size_t i = next.fetch_add(1); i < points.size(); i = next.fetch_add(1)) {
      try {
        out.points[i] = explorePoint(apps, sharedCaches, points[i], warmPtr);
      } catch (...) {
        errors.capture();
      }
    }
  };

  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, points.size());
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
  }  // jthreads join here
  errors.rethrowIfSet();

  out.totalSeconds = seconds(Clock::now() - sweepStart);
  return out;
}

}  // namespace mamps::mapping
