// Mapping data structures: the output of the SDF3 step of the flow
// (Section 5.1): "Buffer distributions, task mapping and static-order
// schedules are determined and gathered in the mapping output of SDF3."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/params.hpp"
#include "platform/architecture.hpp"
#include "platform/noc_topology.hpp"
#include "sdf/app_model.hpp"
#include "support/rational.hpp"

namespace mamps::analysis {
struct SolverWarmStart;  // analysis/mcm.hpp
}  // namespace mamps::analysis

namespace mamps::mapping {

/// Interconnect assignment of one inter-tile channel.
struct ChannelRoute {
  bool interTile = false;
  platform::TileId srcTile = 0;
  platform::TileId dstTile = 0;
  /// NoC: the XY route (link ids) and the reserved SDM wires.
  std::vector<platform::LinkId> route{};
  std::uint32_t wires = 0;
  /// FSL: index of the dedicated point-to-point link.
  std::uint32_t fslIndex = 0;
};

/// A complete mapping of an application onto an architecture.
struct Mapping {
  /// actor -> tile
  std::vector<platform::TileId> actorToTile;
  /// channel -> interconnect assignment (interTile == false for local channels)
  std::vector<ChannelRoute> channelRoutes;
  /// Local channels: buffer capacity in tokens (0 for inter-tile channels).
  std::vector<std::uint64_t> localCapacityTokens;
  /// Inter-tile channels: source-/destination-side buffers in tokens
  /// (alpha_src / alpha_dst of the communication model).
  std::vector<std::uint64_t> srcBufferTokens;
  std::vector<std::uint64_t> dstBufferTokens;
  /// Per tile: the cyclic static-order schedule (actor firings).
  std::vector<std::vector<sdf::ActorId>> schedules;
  /// Where the (de)serialization runs.
  comm::SerializationMode serialization = comm::SerializationMode::OnProcessor;
  /// Per tile of the architecture: TDM slots this application reserved
  /// on the tile's wheel (0 = tile not used). Admission replay
  /// re-reserves exactly these shares before re-committing load/memory,
  /// so a cached plan reconstructs the same budget state.
  std::vector<std::uint32_t> tileTdmSlots;

  /// Dedicated FSL links this mapping's inter-tile channels occupy
  /// (one per inter-tile channel). ChannelRoute::fslIndex is allocated
  /// globally across a co-mapped workload (the links share one
  /// platform), so this counts the application's own links; the
  /// workload's platform total is platform::ResourceBudget's
  /// fslLinksUsed().
  [[nodiscard]] std::uint32_t fslLinkCount() const {
    std::uint32_t n = 0;
    for (const ChannelRoute& r : channelRoutes) {
      n += r.interTile ? 1 : 0;
    }
    return n;
  }
};

/// Weights of the generic cost functions steering the binding
/// (Section 5.1: processing, memory usage, communication, latency).
struct CostWeights {
  double processing = 1.0;
  double memory = 0.25;
  double communication = 0.5;
  double latency = 0.25;
};

struct MappingOptions {
  CostWeights weights;
  comm::SerializationMode serialization = comm::SerializationMode::OnProcessor;
  /// SDM wires requested per NoC connection; degraded when links fill up.
  std::uint32_t nocWiresPerConnection = 8;
  /// Rounds of buffer enlargement when the throughput constraint is missed.
  std::uint32_t bufferGrowthRounds = 4;
  /// Scale factor applied to the minimal buffer sizes up front; the
  /// paper's flow computes buffer distributions that sustain the
  /// throughput, which small minimal buffers typically do not.
  std::uint32_t initialBufferScale = 2;
  /// Re-analyze buffer-growth rounds through an incremental throughput
  /// context (cached HSDF expansion, patched capacity tokens,
  /// warm-started Howard) instead of rebuilding the binding-aware model
  /// from scratch each round. Results are bit-identical either way
  /// (pinned by tests/dse_test.cpp); disabling exists for baselines and
  /// cross-checks.
  bool incrementalAnalysis = true;
  /// Maximum number of tiles this application may claim (0 = no limit).
  /// The binder balances load, so without a cap the first application
  /// of a co-mapped workload spreads over every free tile; capping its
  /// footprint leaves residual tiles for the applications mapped after
  /// it (see mapping/workload.hpp).
  std::uint32_t maxTiles = 0;
  /// TDM slots to reserve on every claimed tile (0 = claim the whole
  /// wheel, the exclusive pre-TDM behavior; clamped to the wheel size).
  /// With k slots of an S-slot wheel, every actor's WCET is inflated to
  /// ceil(wcet * S / k) + wheelOverheadCycles before analysis, so the
  /// guarantee is a valid lower bound whatever co-residents do.
  std::uint32_t tdmSlots = 0;
  /// Optional cross-run solver warm-start handle (non-owning; null =
  /// cold solves). When set, the buffer-growth loop's incremental
  /// analysis seeds Howard's policy iteration from the handle and
  /// writes its converged policy back, so consecutive mappings of
  /// similar design points (a DSE sweep's neighboring platforms) skip
  /// most improvement sweeps. Pure acceleration: results are
  /// bit-identical with or without it (see analysis::SolverWarmStart),
  /// and admission decision keys deliberately exclude it.
  analysis::SolverWarmStart* solverWarmStart = nullptr;
};

/// Intermediate per-tile accounting used by binding and generation.
struct TileUsage {
  std::uint64_t loadCycles = 0;       ///< sum of wcet * repetitions
  std::uint32_t instrBytes = 0;
  std::uint32_t dataBytes = 0;
  std::vector<sdf::ActorId> actors;
};

}  // namespace mamps::mapping
