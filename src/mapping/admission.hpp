// Online admission control: serve a churn of applications on ONE live
// shared platform.
//
// mapping::mapWorkload is batch-only — it maps a fixed workload once.
// The serving story of the paper's runtime (many throughput-constrained
// streams sharing one MPSoC, each arriving and departing independently,
// in the shape of a per-client streaming server) needs the online
// counterpart: AdmissionController holds the platform's live
// platform::ResourceBudget and, per arriving client, runs the complete
// mapping step (mapping::mapOntoBudget) as a trial on a copy. A client
// is *admitted* only when it maps AND meets its own throughput
// constraint on the residual — then the copy becomes the live budget —
// and *rejected* otherwise, leaving the live budget untouched. A
// departing client is torn down exactly through the budget's per-client
// provenance (platform::ResourceBudget::release), so admissions and
// departures can interleave forever without leaking a tile, wire, or
// FSL link: after full teardown the budget is bit-identical to pristine.
//
// Guarantees compose under churn for the same reason they compose in a
// batch workload: every commitment is exclusive, so no admission or
// departure can perturb a resident client's analyzed schedule — a
// resident's guarantee is exactly as valid the day it departs as the
// moment it was admitted (pinned by tests/admission_test.cpp).
//
// Decision latency: admissions are dominated by the mapping step
// (binding + scheduling + buffer growth + MCR analysis — milliseconds
// for the scenario-suite applications). Under churn the same residual
// states recur, so the controller memoizes each decision in a *plan
// cache* keyed by (application, options, canonical residual signature):
// a hit replays the recorded mapping by committing its reservations
// directly (microseconds), bypassing re-binding and re-analysis. The
// signature covers every budget field the mapping step reads, so a
// replayed decision is bit-identical to recomputing it
// (tests/admission_test.cpp pins this); bench/bench_admission.cpp
// reports the resulting p50/p99 decision latency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mapping/workload.hpp"
#include "platform/resource_budget.hpp"

namespace mamps::mapping {

/// Identifies one admitted client (stream instance) of the controller.
using ClientId = std::uint32_t;

/// Tuning knobs for AdmissionController.
struct AdmissionOptions {
  /// Reject applications that map but miss their own throughput
  /// constraint (a guarantee that does not compose is not a guarantee).
  /// Disabling admits any feasible mapping.
  bool requireConstraint = true;
  /// Memoize decisions per (application, options, residual signature)
  /// and replay them on repeat states. Replayed decisions are
  /// bit-identical to recomputed ones; disabling exists for the cold
  /// baseline of bench/bench_admission.cpp.
  bool planCache = true;
};

/// Outcome of one admission attempt.
struct AdmissionDecision {
  /// The admitted client's id (release it with depart()); nullopt when
  /// the application was rejected.
  std::optional<ClientId> client;
  /// The admitted mapping and its throughput guarantee; nullopt when
  /// rejected.
  std::optional<MappingResult> result;
  /// Wall time of this decision, in seconds.
  double seconds = 0.0;
  /// True when the decision was replayed from the plan cache.
  bool planCacheHit = false;
  /// Why the application was rejected (empty when admitted).
  std::string reason;

  /// Was the application admitted?
  /// @return true when `client` is set
  [[nodiscard]] bool admitted() const { return client.has_value(); }
};

/// Lifetime counters of one controller.
struct AdmissionStats {
  std::size_t arrivals = 0;      ///< admit() calls
  std::size_t admitted = 0;      ///< arrivals that were admitted
  std::size_t rejected = 0;      ///< arrivals that were rejected
  std::size_t departures = 0;    ///< depart() calls
  std::size_t planCacheHits = 0; ///< decisions replayed from the cache
};

/// Online admission control against one live shared platform. See the
/// header comment for semantics; not thread-safe (wrap externally to
/// serve concurrent arrival streams).
class AdmissionController {
 public:
  /// Start a controller over `arch` with the MAMPS runtime layer
  /// committed as the platform baseline on every software tile.
  /// @param arch the shared platform; must outlive the controller
  /// @param options admission knobs
  explicit AdmissionController(const platform::Architecture& arch,
                               const AdmissionOptions& options = {});

  /// Try to admit one application instance onto the live residual.
  /// Trial-on-copy: the live budget advances only when the decision is
  /// an admission. The cache (and its application model) must outlive
  /// every decision that may be replayed from the plan cache.
  /// @param app the prepared application (see prepareApplication)
  /// @param options mapping knobs for this instance
  /// @return the decision (client id + mapping when admitted)
  [[nodiscard]] AdmissionDecision admit(const AppAnalysisCache& app,
                                        const MappingOptions& options = {});

  /// Tear down a resident client: every tile, SDM wire, and FSL link it
  /// holds returns to the residual exactly.
  /// @param client the departing client (from an admitted decision)
  /// @throws Error when `client` is not resident (double-depart or
  ///   unknown id)
  void depart(ClientId client);

  /// The live shared budget (capacity minus every resident's
  /// reservations).
  /// @return the budget
  [[nodiscard]] const platform::ResourceBudget& budget() const { return budget_; }

  /// The pristine reference: the budget as constructed (baseline only,
  /// no clients). After every resident departs, budget() == this,
  /// field for field.
  /// @return the pristine budget
  [[nodiscard]] const platform::ResourceBudget& pristineBudget() const { return pristine_; }

  /// Has the live budget returned to pristine (no residents, nothing
  /// leaked)?
  /// @return budget() == pristineBudget()
  [[nodiscard]] bool pristine() const { return budget_ == pristine_; }

  /// Number of currently resident clients.
  /// @return the resident count
  [[nodiscard]] std::size_t residentCount() const { return residents_.size(); }

  /// The resident clients, in ascending id order.
  /// @return the ids of every resident
  [[nodiscard]] std::vector<ClientId> residentIds() const;

  /// A resident client's admitted mapping (the guarantee it was
  /// admitted with).
  /// @param client the resident to look up
  /// @return the mapping result recorded at admission
  /// @throws Error when `client` is not resident
  [[nodiscard]] const MappingResult& resident(ClientId client) const;

  /// Lifetime counters.
  /// @return the stats
  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }

 private:
  /// One memoized decision: the full admitted mapping, or the rejection.
  struct CachedDecision {
    bool admitted = false;
    MappingResult plan;  ///< meaningful only when admitted
    std::string reason;  ///< meaningful only when rejected
  };

  /// Canonical signature of everything the mapping step reads from the
  /// live budget, plus the application and options identities.
  [[nodiscard]] std::string decisionKey(const AppAnalysisCache& app,
                                        const MappingOptions& options) const;
  /// Replay a memoized admission by committing its reservations against
  /// the live budget. Returns false when the replayed commitments fail
  /// validation (the caller then falls back to the cold path).
  [[nodiscard]] bool replayAdmission(const CachedDecision& cached, const AppAnalysisCache& app,
                                     ClientId client, AdmissionDecision& out);

  const platform::Architecture* arch_ = nullptr;
  AdmissionOptions options_{};
  platform::ResourceBudget budget_;
  platform::ResourceBudget pristine_;
  ClientId nextClient_ = 0;
  std::map<ClientId, MappingResult> residents_;
  std::unordered_map<std::string, CachedDecision> plans_;
  AdmissionStats stats_{};
};

}  // namespace mamps::mapping
