// Online admission control: serve a churn of applications on ONE live
// shared platform.
//
// mapping::mapWorkload is batch-only — it maps a fixed workload once.
// The serving story of the paper's runtime (many throughput-constrained
// streams sharing one MPSoC, each arriving and departing independently,
// in the shape of a per-client streaming server) needs the online
// counterpart: AdmissionController holds the platform's live
// platform::ResourceBudget and, per arriving client, runs the complete
// mapping step (mapping::mapOntoBudget) as a trial on a copy. A client
// is *admitted* only when it maps AND meets its own throughput
// constraint on the residual — then the copy becomes the live budget —
// and *rejected* otherwise, leaving the live budget untouched. A
// departing client is torn down exactly through the budget's per-client
// provenance (platform::ResourceBudget::release), so admissions and
// departures can interleave forever without leaking a tile, wire, or
// FSL link: after full teardown the budget is bit-identical to pristine.
//
// Guarantees compose under churn for the same reason they compose in a
// batch workload: every commitment is exclusive, so no admission or
// departure can perturb a resident client's analyzed schedule — a
// resident's guarantee is exactly as valid the day it departs as the
// moment it was admitted (pinned by tests/admission_test.cpp).
//
// Decision latency: admissions are dominated by the mapping step
// (binding + scheduling + buffer growth + MCR analysis — milliseconds
// for the scenario-suite applications). Under churn the same residual
// states recur, so the controller memoizes each decision in a *plan
// cache* keyed by (application, options, canonical residual signature):
// a hit replays the recorded mapping by committing its reservations
// directly (microseconds), bypassing re-binding and re-analysis. The
// signature covers every budget field the mapping step reads, so a
// replayed decision is bit-identical to recomputing it
// (tests/admission_test.cpp pins this); bench/bench_admission.cpp
// reports the resulting p50/p99 decision latency. The cache is
// LRU-bounded (AdmissionOptions::planCacheCapacity) and keyed by a
// *fault epoch* so a plan recorded on a healthy platform can never
// replay onto a failed one.
//
// Fault tolerance: the platform can fail underneath the residents.
// injectFault applies one platform::FaultState transition to the live
// budget, *evacuates* every stranded client (exact teardown through
// its ledger), and immediately tries to re-admit each one — same
// client id, same application, same options — onto the healthy
// residual, in admission (oldest-first) order. Each resident gets a
// verdict: Recovered (re-admitted with a fresh composable guarantee),
// Degraded (evacuated but rejected by the residual — the client is
// gone), or Untouched (its reservations never referenced the failed
// resource). A RecoveryPolicy headroom keeps normal admissions from
// filling the platform so full that recovery has no room to work;
// recovery re-admissions themselves bypass the headroom. repair()
// undoes a fault; after every fault is repaired and every client
// departs, the budget is bit-identical to pristine (nothing about a
// fail/repair cycle leaks).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mapping/workload.hpp"
#include "platform/fault.hpp"
#include "platform/resource_budget.hpp"
#include "support/thread_annotations.hpp"

namespace mamps::mapping {

/// Identifies one admitted client (stream instance) of the controller.
using ClientId = std::uint32_t;

/// Spare-capacity headroom for fault recovery: normal admissions are
/// rejected when committing them would leave the platform with less
/// free capacity than this, so evacuated clients have room to land.
/// Recovery re-admissions bypass the headroom (using the reserve is
/// their purpose). An all-zero policy (the default) disables the check.
struct RecoveryPolicy {
  /// Admit only while at least this many healthy, completely unreserved
  /// tiles (no TDM slot held by any client) would remain.
  std::uint32_t spareTiles = 0;
  /// Admit only while at least this much interconnect capacity would
  /// remain: total free SDM wires across healthy NoC links, or free
  /// (allocatable) FSL links.
  std::uint32_t spareWires = 0;

  /// Does the policy enforce anything?
  /// @return true when either knob is nonzero
  [[nodiscard]] bool active() const { return spareTiles > 0 || spareWires > 0; }
};

/// Tuning knobs for AdmissionController.
struct AdmissionOptions {
  /// Reject applications that map but miss their own throughput
  /// constraint (a guarantee that does not compose is not a guarantee).
  /// Disabling admits any feasible mapping.
  bool requireConstraint = true;
  /// Memoize decisions per (application, options, residual signature)
  /// and replay them on repeat states. Replayed decisions are
  /// bit-identical to recomputed ones; disabling exists for the cold
  /// baseline of bench/bench_admission.cpp.
  bool planCache = true;
  /// Maximum plan-cache entries; least-recently-used decisions are
  /// evicted beyond it. 0 = unbounded. Any cap yields decisions
  /// bit-identical to cache-off (an eviction only costs a recompute).
  std::size_t planCacheCapacity = 0;
  /// Spare-capacity headroom reserved for fault recovery.
  RecoveryPolicy recovery{};
};

/// Outcome of one admission attempt.
struct AdmissionDecision {
  /// The admitted client's id (release it with depart()); nullopt when
  /// the application was rejected.
  std::optional<ClientId> client;
  /// The admitted mapping and its throughput guarantee; nullopt when
  /// rejected.
  std::optional<MappingResult> result;
  /// Wall time of this decision, in seconds.
  double seconds = 0.0;
  /// True when the decision was replayed from the plan cache.
  bool planCacheHit = false;
  /// Why the application was rejected (empty when admitted).
  std::string reason;

  /// Was the application admitted?
  /// @return true when `client` is set
  [[nodiscard]] bool admitted() const { return client.has_value(); }
};

/// One platform fault (or its repair target): exactly one resource.
struct FaultEvent {
  /// Which resource kind failed.
  enum class Kind {
    TileFail,     ///< a processor/IP tile went down
    NocLinkFail,  ///< a directed NoC mesh link went down
    FslLinkFail,  ///< an FSL point-to-point link went down
    TdmDegrade,   ///< a tile came back with a degraded TDM wheel
  };

  Kind kind = Kind::TileFail;   ///< the resource kind
  platform::TileId tile = 0;    ///< TileFail / TdmDegrade: the tile
  platform::LinkId link = 0;    ///< NocLinkFail: the directed link
  std::uint32_t fslIndex = 0;   ///< FslLinkFail: the link index
  platform::TdmConfig wheel{};  ///< TdmDegrade: the degraded wheel

  /// A failed tile.
  /// @param t the tile
  /// @return the event
  [[nodiscard]] static FaultEvent tileFailure(platform::TileId t) {
    FaultEvent e;
    e.kind = Kind::TileFail;
    e.tile = t;
    return e;
  }
  /// A failed directed NoC link.
  /// @param l the link
  /// @return the event
  [[nodiscard]] static FaultEvent nocLinkFailure(platform::LinkId l) {
    FaultEvent e;
    e.kind = Kind::NocLinkFail;
    e.link = l;
    return e;
  }
  /// A failed FSL link index.
  /// @param index the index
  /// @return the event
  [[nodiscard]] static FaultEvent fslLinkFailure(std::uint32_t index) {
    FaultEvent e;
    e.kind = Kind::FslLinkFail;
    e.fslIndex = index;
    return e;
  }
  /// A degraded TDM wheel on a tile.
  /// @param t the tile
  /// @param degraded the effective wheel
  /// @return the event
  [[nodiscard]] static FaultEvent tdmDegrade(platform::TileId t,
                                             const platform::TdmConfig& degraded) {
    FaultEvent e;
    e.kind = Kind::TdmDegrade;
    e.tile = t;
    e.wheel = degraded;
    return e;
  }
};

/// Per-client verdict of one fault injection.
enum class RecoveryOutcome {
  Recovered,  ///< evacuated and re-admitted (fresh guarantee, same id)
  Degraded,   ///< evacuated but rejected by the residual; client is gone
  Untouched,  ///< never referenced the failed resource
};

/// What one injectFault did to the residents.
struct RecoveryReport {
  /// Every client that was resident at injection time, with its verdict.
  std::map<ClientId, RecoveryOutcome> verdicts;
  /// The evacuated (stranded) clients, ascending.
  std::vector<ClientId> stranded;
  /// The re-admitted subset of `stranded`, ascending.
  std::vector<ClientId> recovered;
  /// The rejected subset of `stranded` (no longer resident), ascending.
  std::vector<ClientId> degraded;
  /// Wall time of the complete evacuate + re-admit pass, in seconds.
  double seconds = 0.0;
};

/// Lifetime counters of one controller.
struct AdmissionStats {
  std::size_t arrivals = 0;           ///< admit() calls
  std::size_t admitted = 0;           ///< arrivals that were admitted
  std::size_t rejected = 0;           ///< arrivals that were rejected
  std::size_t departures = 0;         ///< depart() calls
  std::size_t planCacheHits = 0;      ///< decisions replayed from the cache
  std::size_t planCacheMisses = 0;    ///< cache-enabled decisions computed cold
  std::size_t planCacheEvictions = 0; ///< LRU evictions (capacity pressure)
  std::size_t faultsInjected = 0;     ///< injectFault() calls
  std::size_t repairs = 0;            ///< repair() calls
  std::size_t evacuated = 0;          ///< clients stranded by faults
  std::size_t recovered = 0;          ///< stranded clients re-admitted
  std::size_t degradedClients = 0;    ///< stranded clients lost (rejected)
};

/// Online admission control against one live shared platform. See the
/// header comment for semantics. Internally synchronized: every public
/// member function takes the controller's mutex, so concurrent arrival
/// streams may share one controller. The reference-returning accessors
/// (budget(), pristineBudget(), resident(), faults(), stats()) read the
/// referenced state under the lock but hand the reference out unlocked
/// — dereference them only while no other thread is mutating the
/// controller, or copy under your own quiescence point. The shared
/// state is MAMPS_GUARDED_BY(mu_), so the clang CI leg verifies with
/// -Wthread-safety that no path touches it without the lock.
class AdmissionController {
 public:
  /// Start a controller over `arch` with the MAMPS runtime layer
  /// committed as the platform baseline on every software tile.
  /// @param arch the shared platform; must outlive the controller
  /// @param options admission knobs
  explicit AdmissionController(const platform::Architecture& arch,
                               const AdmissionOptions& options = {});

  /// Try to admit one application instance onto the live residual.
  /// Trial-on-copy: the live budget advances only when the decision is
  /// an admission. The cache (and its application model) must outlive
  /// every decision that may be replayed from the plan cache — and
  /// survive until the client departs, since fault recovery re-maps
  /// residents from their recorded application.
  /// @param app the prepared application (see prepareApplication)
  /// @param options mapping knobs for this instance
  /// @return the decision (client id + mapping when admitted)
  [[nodiscard]] AdmissionDecision admit(const AppAnalysisCache& app,
                                        const MappingOptions& options = {}) MAMPS_EXCLUDES(mu_);

  /// Tear down a resident client: every tile, SDM wire, and FSL link it
  /// holds returns to the residual exactly.
  /// @param client the departing client (from an admitted decision)
  /// @throws Error when `client` is not resident (double-depart or
  ///   unknown id)
  void depart(ClientId client) MAMPS_EXCLUDES(mu_);

  /// Apply one platform fault to the live budget, evacuate every
  /// stranded resident, and try to re-admit each onto the residual
  /// (trial-on-copy, admission order, same client id, headroom
  /// bypassed). Bumps the fault epoch so no stale plan can replay.
  /// @param fault the failing resource
  /// @return the per-client verdicts plus the recovery wall time
  /// @throws Error when the resource is already failed or out of range
  RecoveryReport injectFault(const FaultEvent& fault) MAMPS_EXCLUDES(mu_);

  /// Undo one fault: the resource's capacity returns bit-identically
  /// (repair never touches reservations). Bumps the fault epoch.
  /// Residents are not re-shuffled — the freed capacity simply serves
  /// future admissions.
  /// @param fault the resource to repair (matched by kind + identity;
  ///   the wheel payload of a TdmDegrade is ignored)
  /// @throws Error when the resource is not currently failed
  void repair(const FaultEvent& fault) MAMPS_EXCLUDES(mu_);

  /// The live platform fault state (empty = healthy).
  /// @return the budget's faults
  [[nodiscard]] const platform::FaultState& faults() const MAMPS_EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    return budget_.faults();
  }

  /// Monotone counter bumped on every injectFault and repair; prefixed
  /// to every plan-cache key, so within one controller a cached plan
  /// can only ever replay against the exact fault state it was
  /// recorded under.
  /// @return the current epoch (0 = never faulted)
  [[nodiscard]] std::uint64_t faultEpoch() const MAMPS_EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    return faultEpoch_;
  }

  /// The live shared budget (capacity minus every resident's
  /// reservations).
  /// @return the budget
  [[nodiscard]] const platform::ResourceBudget& budget() const MAMPS_EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    return budget_;
  }

  /// The pristine reference: the budget as constructed (baseline only,
  /// no clients, no faults). After every resident departs and every
  /// fault is repaired, budget() == this, field for field.
  /// @return the pristine budget
  [[nodiscard]] const platform::ResourceBudget& pristineBudget() const { return pristine_; }

  /// Has the live budget returned to pristine (no residents, no
  /// outstanding faults, nothing leaked)?
  /// @return budget() == pristineBudget()
  [[nodiscard]] bool pristine() const MAMPS_EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    return budget_ == pristine_;
  }

  /// Number of currently resident clients.
  /// @return the resident count
  [[nodiscard]] std::size_t residentCount() const MAMPS_EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    return residents_.size();
  }

  /// The resident clients, in ascending id order.
  /// @return the ids of every resident
  [[nodiscard]] std::vector<ClientId> residentIds() const MAMPS_EXCLUDES(mu_);

  /// A resident client's admitted mapping (the guarantee it was
  /// admitted with — refreshed when the client was recovered after a
  /// fault).
  /// @param client the resident to look up
  /// @return the mapping result recorded at (re-)admission
  /// @throws Error when `client` is not resident
  [[nodiscard]] const MappingResult& resident(ClientId client) const MAMPS_EXCLUDES(mu_);

  /// Lifetime counters.
  /// @return the stats
  [[nodiscard]] const AdmissionStats& stats() const MAMPS_EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    return stats_;
  }

  /// Current plan-cache entry count (bounded by planCacheCapacity).
  /// @return the number of memoized decisions
  [[nodiscard]] std::size_t planCacheSize() const MAMPS_EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    return plans_.size();
  }

 private:
  /// One resident client: its admitted mapping plus everything needed
  /// to re-admit it after a fault (the prepared application and the
  /// mapping knobs it was admitted with).
  struct Resident {
    MappingResult result;
    const AppAnalysisCache* app = nullptr;
    MappingOptions options;
  };

  /// One memoized decision: the full admitted mapping, or the rejection.
  struct CachedDecision {
    bool admitted = false;
    MappingResult plan;  ///< meaningful only when admitted
    std::string reason;  ///< meaningful only when rejected
    /// This entry's position in lru_ (front = most recently used).
    std::list<std::string>::iterator lruPosition;
  };

  /// Canonical signature of everything the mapping step reads from the
  /// live budget, plus the application, options, fault-epoch, and
  /// headroom-enforcement identities.
  [[nodiscard]] std::string decisionKey(const AppAnalysisCache& app,
                                        const MappingOptions& options,
                                        bool enforceHeadroom) const MAMPS_REQUIRES(mu_);
  /// Replay a memoized admission by committing its reservations against
  /// the live budget. Returns false when the replayed commitments fail
  /// validation (the caller then falls back to the cold path).
  [[nodiscard]] bool replayAdmission(const CachedDecision& cached, const AppAnalysisCache& app,
                                     const MappingOptions& options, ClientId client,
                                     AdmissionDecision& out) MAMPS_REQUIRES(mu_);
  /// The complete decision path (cache lookup, replay or cold mapping,
  /// memoization, commitment) for one client id. Recovery re-admissions
  /// pass enforceHeadroom = false.
  [[nodiscard]] AdmissionDecision decide(const AppAnalysisCache& app,
                                         const MappingOptions& options, ClientId client,
                                         bool enforceHeadroom) MAMPS_REQUIRES(mu_);
  /// Would the post-admission residual `work` violate the recovery
  /// headroom policy?
  [[nodiscard]] bool violatesHeadroom(const platform::ResourceBudget& work) const;
  /// Move a cache entry to the LRU front.
  void touchCacheEntry(CachedDecision& entry) MAMPS_REQUIRES(mu_);
  /// Insert a decision into the cache, evicting the LRU tail past the
  /// capacity.
  void storeCacheEntry(std::string key, CachedDecision memo) MAMPS_REQUIRES(mu_);

  /// Serializes every public entry point. The private helpers above
  /// are MAMPS_REQUIRES(mu_): they are only reachable with the lock
  /// held, and never take it themselves (the mutex is non-recursive).
  mutable support::Mutex mu_;

  const platform::Architecture* arch_ = nullptr;  ///< immutable after construction
  AdmissionOptions options_{};                    ///< immutable after construction
  platform::ResourceBudget budget_ MAMPS_GUARDED_BY(mu_);
  platform::ResourceBudget pristine_;  ///< immutable after construction
  ClientId nextClient_ MAMPS_GUARDED_BY(mu_) = 0;
  std::map<ClientId, Resident> residents_ MAMPS_GUARDED_BY(mu_);
  /// Ordered map: plan-cache bookkeeping (size, eviction scans) must
  /// never depend on hash-bucket layout.
  std::map<std::string, CachedDecision> plans_ MAMPS_GUARDED_BY(mu_);
  /// Keys ordered by recency, front = most recent (LRU eviction order).
  std::list<std::string> lru_ MAMPS_GUARDED_BY(mu_);
  std::uint64_t faultEpoch_ MAMPS_GUARDED_BY(mu_) = 0;
  AdmissionStats stats_ MAMPS_GUARDED_BY(mu_) = {};
};

}  // namespace mamps::mapping
