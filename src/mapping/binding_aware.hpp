// Binding-aware graph construction.
//
// The binding-aware graph is the application graph transformed to
// reflect all mapping decisions, so that a throughput analysis of it is
// a conservative bound for the generated platform:
//   - inter-tile channels are replaced by the Figure 4 communication
//     model (serialization, latency-rate connection, de-serialization,
//     and all buffer back-pressure edges),
//   - local channels get capacity back-edges for their allocated buffers,
//   - actors are bound to tile resources with the static-order schedule
//     (enforced by the resource-constrained throughput analysis),
//   - with PE-based serialization, the (de)serialization work is added
//     to the actor execution times, matching the generated wrapper code
//     which serializes outputs and de-serializes inputs inline.
#pragma once

#include <vector>

#include "analysis/throughput.hpp"
#include "comm/model.hpp"
#include "mapping/mapping.hpp"

namespace mamps::mapping {

/// Binding-aware channel ids that carry an application channel's buffer
/// capacity as initial tokens. Exactly one family is set per channel:
/// local channels have the space back-edge, inter-tile channels the
/// alpha_src/alpha_dst pair of the communication model. These are the
/// only channels of the model whose token counts change when the flow
/// grows buffers, which is what makes incremental re-analysis possible.
struct CapacityEdgeIds {
  /// Local channels: the `<name>_space` back-edge; tokens = capacity -
  /// initial tokens of the forward channel.
  sdf::ChannelId localSpace = sdf::kInvalidChannel;
  /// Inter-tile channels: the alpha_src back-edge; tokens =
  /// srcBufferTokens - initial tokens.
  sdf::ChannelId alphaSrc = sdf::kInvalidChannel;
  /// Inter-tile channels: the alpha_dst back-edge; tokens =
  /// dstBufferTokens.
  sdf::ChannelId alphaDst = sdf::kInvalidChannel;
};

struct BindingAwareModel {
  sdf::TimedGraph graph;
  analysis::ResourceConstraints resources;
  /// One entry per inter-tile channel (communication model actor ids).
  std::vector<comm::ExpandedChannel> expanded;
  /// One entry per *application* channel: where its capacity lives in
  /// `graph` (all ids invalid for self-edges).
  std::vector<CapacityEdgeIds> capacityEdges;
};

/// Build the binding-aware model. `actorExecTimes` are the per-firing
/// execution times of the application actors *excluding* serialization
/// (WCETs for the guarantee; measured times for the expected value).
[[nodiscard]] BindingAwareModel buildBindingAware(const sdf::ApplicationModel& app,
                                                  const platform::Architecture& arch,
                                                  const Mapping& mapping,
                                                  const std::vector<std::uint64_t>& actorExecTimes);

}  // namespace mamps::mapping
