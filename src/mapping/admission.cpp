#include "mapping/admission.hpp"

#include <chrono>

#include "mapping/binding.hpp"
#include "support/strings.hpp"

namespace mamps::mapping {

using platform::ResourceBudget;
using platform::TileBudget;
using platform::TileId;
using sdf::ActorId;

AdmissionController::AdmissionController(const platform::Architecture& arch,
                                         const AdmissionOptions& options)
    : arch_(&arch), options_(options), budget_(arch) {
  arch.validate();
  budget_.commitBaseline(runtimeLayerInstrBytes(), runtimeLayerDataBytes());
  pristine_ = budget_;
}

std::string AdmissionController::decisionKey(const AppAnalysisCache& app,
                                             const MappingOptions& options,
                                             bool enforceHeadroom) const {
  // Everything the mapping step (mapOntoBudget) reads must be covered:
  // the application (the cache is a pure function of the model), the
  // mapping knobs, and — from the live budget — per-tile slot occupancy
  // and committed load/memory, per-link SDM wires, and the live FSL
  // link count. Slot occupancy is load-bearing: two residuals with
  // identical load/memory but different reserved TDM slots bind (and
  // inflate WCETs) differently, so omitting it would replay a stale
  // plan and corrupt the budget. Fully-reserved wheels are collapsed to
  // a marker: binding skips them before reading any of their values,
  // and FSL link *indices* are re-allocated on replay, so neither
  // affects the decision.
  //
  // The fault epoch leads the key: it is bumped on every injectFault
  // AND repair, so within this controller an epoch uniquely identifies
  // one platform fault state — a plan recorded on a healthy platform
  // can never replay onto a failed one (or vice versa), even when the
  // reservation signature matches. The headroom flag separates the two
  // decision families (normal admissions vs recovery re-admissions,
  // which bypass the headroom) when a RecoveryPolicy is active.
  // lint:allow(nondeterminism) -- process-local cache key: the cache must outlive the app model, so its address IS its identity; the key is never serialized or compared across runs
  std::string key = strprintf("e%llu|h%d|app=%p|o=%a,%a,%a,%a,%d,%u,%u,%u,%d,%u,%u|",
                              static_cast<unsigned long long>(faultEpoch_),
                              enforceHeadroom ? 1 : 0,
                              static_cast<const void*>(app.app), options.weights.processing,
                              options.weights.memory, options.weights.communication,
                              options.weights.latency, static_cast<int>(options.serialization),
                              options.nocWiresPerConnection, options.bufferGrowthRounds,
                              options.initialBufferScale,
                              options.incrementalAnalysis ? 1 : 0, options.maxTiles,
                              options.tdmSlots);
  for (TileId t = 0; t < arch_->tileCount(); ++t) {
    const TileBudget& tile = budget_.tiles()[t];
    if (budget_.freeTileSlots(t) == 0) {
      key += "X;";  // wheel fully reserved (or tile failed): unavailable
    } else {
      key += strprintf("%llu,%u,%u,s%u;", static_cast<unsigned long long>(tile.loadCycles),
                       tile.instrBytes, tile.dataBytes, tile.slotsUsed());
    }
  }
  if (arch_->interconnect() == platform::InterconnectKind::NocMesh) {
    key += "|w";
    const std::size_t links = budget_.nocTopology().linkCount();
    for (platform::LinkId link = 0; link < links; ++link) {
      key += strprintf("%u,", budget_.usedWires(link));
    }
  } else {
    key += strprintf("|f%u", budget_.fslLinksUsed());
  }
  return key;
}

void AdmissionController::touchCacheEntry(CachedDecision& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lruPosition);
}

void AdmissionController::storeCacheEntry(std::string key, CachedDecision memo) {
  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    // Re-memoization after a failed replay: keep the LRU node, refresh
    // the decision.
    memo.lruPosition = it->second.lruPosition;
    it->second = std::move(memo);
    touchCacheEntry(it->second);
    return;
  }
  lru_.push_front(key);
  memo.lruPosition = lru_.begin();
  plans_.emplace(std::move(key), std::move(memo));
  if (options_.planCacheCapacity > 0 && plans_.size() > options_.planCacheCapacity) {
    plans_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.planCacheEvictions;
  }
}

bool AdmissionController::violatesHeadroom(const ResourceBudget& work) const {
  const RecoveryPolicy& policy = options_.recovery;
  if (policy.spareTiles > 0) {
    std::uint32_t freeTiles = 0;
    for (TileId t = 0; t < arch_->tileCount(); ++t) {
      if (!work.tileFailed(t) && work.tiles()[t].slotOwners.empty()) {
        ++freeTiles;
      }
    }
    if (freeTiles < policy.spareTiles) {
      return true;
    }
  }
  if (policy.spareWires > 0) {
    std::uint64_t spare = 0;
    if (arch_->interconnect() == platform::InterconnectKind::NocMesh) {
      const std::uint32_t capacity = arch_->noc().wiresPerLink;
      const std::size_t links = work.nocTopology().linkCount();
      for (platform::LinkId link = 0; link < links; ++link) {
        if (work.faults().nocLinkFailed(link)) {
          continue;  // a failed link's capacity is not spare
        }
        spare += capacity - work.usedWires(link);
      }
    } else {
      spare = work.fslLinksAvailable();
    }
    if (spare < policy.spareWires) {
      return true;
    }
  }
  return false;
}

bool AdmissionController::replayAdmission(const CachedDecision& cached,
                                          const AppAnalysisCache& app,
                                          const MappingOptions& options, ClientId client,
                                          AdmissionDecision& out) {
  const sdf::Graph& g = app.app->graph();
  MappingResult result = cached.plan;
  ResourceBudget work = budget_;
  try {
    // Re-reserve the plan's TDM shares first: commitTile only claims
    // whole wheels implicitly, and the plan's inflated guarantee is
    // only valid for exactly these slot counts.
    for (TileId t = 0; t < result.mapping.tileTdmSlots.size(); ++t) {
      if (result.mapping.tileTdmSlots[t] > 0) {
        work.reserveTileSlots(t, client, result.mapping.tileTdmSlots[t]);
      }
    }
    for (ActorId a = 0; a < g.actorCount(); ++a) {
      const TileId tile = result.mapping.actorToTile[a];
      const auto* impl = app.app->implementationFor(a, arch_->tile(tile).processorType);
      if (impl == nullptr) {
        return false;
      }
      work.commitTile(tile, client, impl->wcetCycles * app.repetition[a], impl->instrMemBytes,
                      impl->dataMemBytes);
    }
    for (ChannelRoute& route : result.mapping.channelRoutes) {
      if (!route.interTile) {
        continue;
      }
      if (arch_->interconnect() == platform::InterconnectKind::Fsl) {
        // Link indices are budget state, not plan state: take fresh
        // ones from the free-list so provenance stays exact.
        route.fslIndex = work.allocateFslLink(client);
      } else if (!work.reserveNocWires(route.route, route.wires, client)) {
        return false;
      }
    }
  } catch (const Error&) {
    return false;  // signature mismatch bug: fall back to the cold path
  }
  // The per-tile accounting reflects the budget *now*, not at plan
  // time: other residents' reservations may differ even though the
  // decision (which only reads unclaimed tiles) is identical.
  for (TileId t = 0; t < arch_->tileCount(); ++t) {
    const TileBudget& committed = work.tiles()[t];
    result.usage[t].loadCycles = committed.loadCycles;
    result.usage[t].instrBytes = committed.instrBytes;
    result.usage[t].dataBytes = committed.dataBytes;
  }
  budget_ = std::move(work);
  out.client = client;
  out.result = std::move(result);
  residents_.emplace(client, Resident{*out.result, &app, options});
  return true;
}

AdmissionDecision AdmissionController::decide(const AppAnalysisCache& app,
                                              const MappingOptions& options, ClientId client,
                                              bool enforceHeadroom) {
  const auto start = std::chrono::steady_clock::now();
  AdmissionDecision decision;
  const bool headroom = enforceHeadroom && options_.recovery.active();

  std::string key;
  CachedDecision* cached = nullptr;
  if (options_.planCache) {
    key = decisionKey(app, options, headroom);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      cached = &it->second;
    }
  }

  bool decided = false;
  if (cached != nullptr) {
    if (!cached->admitted) {
      decision.reason = cached->reason;
      decided = true;
    } else {
      decided = replayAdmission(*cached, app, options, client, decision);
    }
    if (decided) {
      touchCacheEntry(*cached);
    }
    decision.planCacheHit = decided;
  }

  if (!decided) {
    if (options_.planCache) {
      ++stats_.planCacheMisses;
    }
    // Cold path: the complete mapping step, trialled on a copy of the
    // live budget so a rejection (infeasible OR constraint-missing OR
    // headroom-violating) commits nothing.
    ResourceBudget work = budget_;
    auto result = mapOntoBudget(app, *arch_, options, work, client);
    if (!result.has_value()) {
      decision.reason = "no feasible mapping on the residual platform";
    } else if (options_.requireConstraint && !result->meetsConstraint) {
      decision.reason = "throughput guarantee does not compose with the residents";
    } else if (headroom && violatesHeadroom(work)) {
      decision.reason = "admission would cut into the recovery headroom";
    } else {
      budget_ = std::move(work);
      decision.client = client;
      decision.result = std::move(result);
      residents_.emplace(client, Resident{*decision.result, &app, options});
    }
    if (options_.planCache) {
      CachedDecision memo;
      memo.admitted = decision.admitted();
      if (memo.admitted) {
        memo.plan = *decision.result;
      } else {
        memo.reason = decision.reason;
      }
      storeCacheEntry(std::move(key), std::move(memo));
    }
  }

  if (decision.planCacheHit) {
    ++stats_.planCacheHits;
  }
  decision.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return decision;
}

AdmissionDecision AdmissionController::admit(const AppAnalysisCache& app,
                                             const MappingOptions& options) {
  support::MutexLock lock(mu_);
  ++stats_.arrivals;
  const ClientId client = nextClient_++;
  AdmissionDecision decision = decide(app, options, client, /*enforceHeadroom=*/true);
  if (decision.admitted()) {
    ++stats_.admitted;
  } else {
    ++stats_.rejected;
  }
  return decision;
}

void AdmissionController::depart(ClientId client) {
  support::MutexLock lock(mu_);
  const auto it = residents_.find(client);
  if (it == residents_.end()) {
    throw Error("AdmissionController::depart: client " + std::to_string(client) +
                " is not resident");
  }
  budget_.release(client);
  residents_.erase(it);
  ++stats_.departures;
}

RecoveryReport AdmissionController::injectFault(const FaultEvent& fault) {
  support::MutexLock lock(mu_);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::uint32_t> stranded;
  switch (fault.kind) {
    case FaultEvent::Kind::TileFail:
      stranded = budget_.failTile(fault.tile);
      break;
    case FaultEvent::Kind::NocLinkFail:
      stranded = budget_.failNocLink(fault.link);
      break;
    case FaultEvent::Kind::FslLinkFail:
      stranded = budget_.failFslLink(fault.fslIndex);
      break;
    case FaultEvent::Kind::TdmDegrade:
      stranded = budget_.degradeTileWheel(fault.tile, fault.wheel);
      break;
  }
  ++faultEpoch_;  // no plan recorded before this fault may replay now
  ++stats_.faultsInjected;
  stats_.evacuated += stranded.size();

  RecoveryReport report;
  for (const auto& [client, res] : residents_) {
    report.verdicts[client] = RecoveryOutcome::Untouched;
  }

  // Evacuate every stranded client before re-admitting any: teardown
  // first frees the maximum healthy capacity for recovery to work with.
  std::vector<std::pair<ClientId, Resident>> evacuees;
  evacuees.reserve(stranded.size());
  for (const std::uint32_t client : stranded) {
    const auto it = residents_.find(client);
    if (it == residents_.end()) {
      throw Error("AdmissionController::injectFault: stranded client " +
                  std::to_string(client) + " is not resident");
    }
    report.stranded.push_back(client);
    evacuees.emplace_back(client, std::move(it->second));
    residents_.erase(it);
    budget_.release(client);
  }

  // Re-admit in admission (oldest-first) order under the SAME client
  // id, bypassing the recovery headroom — using the reserve is its
  // purpose. Each attempt is the full trial-on-copy decision, so a
  // failed recovery commits nothing.
  for (const auto& [client, res] : evacuees) {
    const AdmissionDecision decision = decide(*res.app, res.options, client,
                                              /*enforceHeadroom=*/false);
    if (decision.admitted()) {
      report.verdicts[client] = RecoveryOutcome::Recovered;
      report.recovered.push_back(client);
      ++stats_.recovered;
    } else {
      report.verdicts[client] = RecoveryOutcome::Degraded;
      report.degraded.push_back(client);
      ++stats_.degradedClients;
    }
  }
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

void AdmissionController::repair(const FaultEvent& fault) {
  support::MutexLock lock(mu_);
  switch (fault.kind) {
    case FaultEvent::Kind::TileFail:
      budget_.repairTile(fault.tile);
      break;
    case FaultEvent::Kind::NocLinkFail:
      budget_.repairNocLink(fault.link);
      break;
    case FaultEvent::Kind::FslLinkFail:
      budget_.repairFslLink(fault.fslIndex);
      break;
    case FaultEvent::Kind::TdmDegrade:
      budget_.repairTileWheel(fault.tile);
      break;
  }
  ++faultEpoch_;  // plans recorded under the fault may not replay now
  ++stats_.repairs;
}

std::vector<ClientId> AdmissionController::residentIds() const {
  support::MutexLock lock(mu_);
  std::vector<ClientId> ids;
  ids.reserve(residents_.size());
  for (const auto& [client, res] : residents_) {
    ids.push_back(client);
  }
  return ids;
}

const MappingResult& AdmissionController::resident(ClientId client) const {
  support::MutexLock lock(mu_);
  const auto it = residents_.find(client);
  if (it == residents_.end()) {
    throw Error("AdmissionController::resident: client " + std::to_string(client) +
                " is not resident");
  }
  return it->second.result;
}

}  // namespace mamps::mapping
