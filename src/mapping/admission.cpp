#include "mapping/admission.hpp"

#include <chrono>

#include "mapping/binding.hpp"
#include "support/strings.hpp"

namespace mamps::mapping {

using platform::ResourceBudget;
using platform::TileBudget;
using platform::TileId;
using sdf::ActorId;

AdmissionController::AdmissionController(const platform::Architecture& arch,
                                         const AdmissionOptions& options)
    : arch_(&arch), options_(options), budget_(arch) {
  arch.validate();
  budget_.commitBaseline(runtimeLayerInstrBytes(), runtimeLayerDataBytes());
  pristine_ = budget_;
}

std::string AdmissionController::decisionKey(const AppAnalysisCache& app,
                                             const MappingOptions& options) const {
  // Everything the mapping step (mapOntoBudget) reads must be covered:
  // the application (the cache is a pure function of the model), the
  // mapping knobs, and — from the live budget — per-tile slot occupancy
  // and committed load/memory, per-link SDM wires, and the live FSL
  // link count. Slot occupancy is load-bearing: two residuals with
  // identical load/memory but different reserved TDM slots bind (and
  // inflate WCETs) differently, so omitting it would replay a stale
  // plan and corrupt the budget. Fully-reserved wheels are collapsed to
  // a marker: binding skips them before reading any of their values,
  // and FSL link *indices* are re-allocated on replay, so neither
  // affects the decision.
  std::string key = strprintf("app=%p|o=%a,%a,%a,%a,%d,%u,%u,%u,%d,%u,%u|",
                              static_cast<const void*>(app.app), options.weights.processing,
                              options.weights.memory, options.weights.communication,
                              options.weights.latency, static_cast<int>(options.serialization),
                              options.nocWiresPerConnection, options.bufferGrowthRounds,
                              options.initialBufferScale,
                              options.incrementalAnalysis ? 1 : 0, options.maxTiles,
                              options.tdmSlots);
  for (TileId t = 0; t < arch_->tileCount(); ++t) {
    const TileBudget& tile = budget_.tiles()[t];
    if (budget_.freeTileSlots(t) == 0) {
      key += "X;";  // wheel fully reserved: unavailable to a fresh client
    } else {
      key += strprintf("%llu,%u,%u,s%u;", static_cast<unsigned long long>(tile.loadCycles),
                       tile.instrBytes, tile.dataBytes, tile.slotsUsed());
    }
  }
  if (arch_->interconnect() == platform::InterconnectKind::NocMesh) {
    key += "|w";
    const std::size_t links = budget_.nocTopology().linkCount();
    for (platform::LinkId link = 0; link < links; ++link) {
      key += strprintf("%u,", budget_.usedWires(link));
    }
  } else {
    key += strprintf("|f%u", budget_.fslLinksUsed());
  }
  return key;
}

bool AdmissionController::replayAdmission(const CachedDecision& cached,
                                          const AppAnalysisCache& app, ClientId client,
                                          AdmissionDecision& out) {
  const sdf::Graph& g = app.app->graph();
  MappingResult result = cached.plan;
  ResourceBudget work = budget_;
  try {
    // Re-reserve the plan's TDM shares first: commitTile only claims
    // whole wheels implicitly, and the plan's inflated guarantee is
    // only valid for exactly these slot counts.
    for (TileId t = 0; t < result.mapping.tileTdmSlots.size(); ++t) {
      if (result.mapping.tileTdmSlots[t] > 0) {
        work.reserveTileSlots(t, client, result.mapping.tileTdmSlots[t]);
      }
    }
    for (ActorId a = 0; a < g.actorCount(); ++a) {
      const TileId tile = result.mapping.actorToTile[a];
      const auto* impl = app.app->implementationFor(a, arch_->tile(tile).processorType);
      if (impl == nullptr) {
        return false;
      }
      work.commitTile(tile, client, impl->wcetCycles * app.repetition[a], impl->instrMemBytes,
                      impl->dataMemBytes);
    }
    for (ChannelRoute& route : result.mapping.channelRoutes) {
      if (!route.interTile) {
        continue;
      }
      if (arch_->interconnect() == platform::InterconnectKind::Fsl) {
        // Link indices are budget state, not plan state: take fresh
        // ones from the free-list so provenance stays exact.
        route.fslIndex = work.allocateFslLink(client);
      } else if (!work.reserveNocWires(route.route, route.wires, client)) {
        return false;
      }
    }
  } catch (const Error&) {
    return false;  // signature mismatch bug: fall back to the cold path
  }
  // The per-tile accounting reflects the budget *now*, not at plan
  // time: other residents' reservations may differ even though the
  // decision (which only reads unclaimed tiles) is identical.
  for (TileId t = 0; t < arch_->tileCount(); ++t) {
    const TileBudget& committed = work.tiles()[t];
    result.usage[t].loadCycles = committed.loadCycles;
    result.usage[t].instrBytes = committed.instrBytes;
    result.usage[t].dataBytes = committed.dataBytes;
  }
  budget_ = std::move(work);
  out.client = client;
  out.result = std::move(result);
  residents_.emplace(client, *out.result);
  return true;
}

AdmissionDecision AdmissionController::admit(const AppAnalysisCache& app,
                                             const MappingOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  AdmissionDecision decision;
  ++stats_.arrivals;
  const ClientId client = nextClient_++;

  std::string key;
  const CachedDecision* cached = nullptr;
  if (options_.planCache) {
    key = decisionKey(app, options);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      cached = &it->second;
    }
  }

  bool decided = false;
  if (cached != nullptr) {
    if (!cached->admitted) {
      decision.reason = cached->reason;
      decided = true;
    } else {
      decided = replayAdmission(*cached, app, client, decision);
    }
    decision.planCacheHit = decided;
  }

  if (!decided) {
    // Cold path: the complete mapping step, trialled on a copy of the
    // live budget so a rejection (infeasible OR constraint-missing)
    // commits nothing.
    ResourceBudget work = budget_;
    auto result = mapOntoBudget(app, *arch_, options, work, client);
    if (!result.has_value()) {
      decision.reason = "no feasible mapping on the residual platform";
    } else if (options_.requireConstraint && !result->meetsConstraint) {
      decision.reason = "throughput guarantee does not compose with the residents";
    } else {
      budget_ = std::move(work);
      decision.client = client;
      decision.result = std::move(result);
      residents_.emplace(client, *decision.result);
    }
    if (options_.planCache) {
      CachedDecision memo;
      memo.admitted = decision.admitted();
      if (memo.admitted) {
        memo.plan = *decision.result;
      } else {
        memo.reason = decision.reason;
      }
      plans_.emplace(std::move(key), std::move(memo));
    }
  }

  if (decision.admitted()) {
    ++stats_.admitted;
  } else {
    ++stats_.rejected;
  }
  if (decision.planCacheHit) {
    ++stats_.planCacheHits;
  }
  decision.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return decision;
}

void AdmissionController::depart(ClientId client) {
  const auto it = residents_.find(client);
  if (it == residents_.end()) {
    throw Error("AdmissionController::depart: client " + std::to_string(client) +
                " is not resident");
  }
  budget_.release(client);
  residents_.erase(it);
  ++stats_.departures;
}

std::vector<ClientId> AdmissionController::residentIds() const {
  std::vector<ClientId> ids;
  ids.reserve(residents_.size());
  for (const auto& [client, result] : residents_) {
    ids.push_back(client);
  }
  return ids;
}

const MappingResult& AdmissionController::resident(ClientId client) const {
  const auto it = residents_.find(client);
  if (it == residents_.end()) {
    throw Error("AdmissionController::resident: client " + std::to_string(client) +
                " is not resident");
  }
  return it->second;
}

}  // namespace mamps::mapping
