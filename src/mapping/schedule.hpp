// Static-order schedule construction.
//
// Given a binding, a resource-constrained list scheduling of one graph
// iteration (with WCETs) determines, per tile, the order in which actor
// firings start. That order, repeated cyclically, is the static-order
// schedule that the MAMPS runtime executes as a lookup table.
#pragma once

#include <optional>
#include <vector>

#include "mapping/mapping.hpp"

namespace mamps::mapping {

/// Build one static-order schedule per tile. Each bound actor `a`
/// appears exactly q[a] times in its tile's schedule. Returns nullopt
/// when the graph deadlocks (cannot complete an iteration).
[[nodiscard]] std::optional<std::vector<std::vector<sdf::ActorId>>> buildStaticOrderSchedules(
    const sdf::ApplicationModel& app, const platform::Architecture& arch,
    const std::vector<platform::TileId>& actorToTile);

}  // namespace mamps::mapping
