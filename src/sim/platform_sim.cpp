#include "sim/platform_sim.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "comm/params.hpp"
#include "mapping/binding_aware.hpp"
#include "sdf/repetition_vector.hpp"

namespace mamps::sim {

using mapping::BindingAwareModel;
using sdf::ActorId;
using sdf::ChannelId;

struct PlatformSim::Impl {
  sdf::ApplicationModel app;
  platform::Architecture arch;
  mapping::Mapping mapping;
  BindingAwareModel model;  ///< structure + comm-actor timing (WCET-based)

  std::vector<std::unique_ptr<ActorBehavior>> behaviors;  // per original actor
  std::vector<std::uint64_t> serOverhead;  ///< PE-mode (de)serialization cycles per firing
  std::vector<std::vector<ChannelId>> explicitIns;   // per original actor
  std::vector<std::vector<ChannelId>> explicitOuts;  // per original actor

  Impl(const sdf::ApplicationModel& appIn, const platform::Architecture& archIn,
       const mapping::Mapping& mappingIn)
      : app(appIn), arch(archIn), mapping(mappingIn) {
    // The binding-aware model provides the executable structure; the
    // original-actor execution times in it are WCETs and are replaced by
    // behavior costs at run time.
    std::vector<std::uint64_t> wcet(app.graph().actorCount());
    for (ActorId a = 0; a < app.graph().actorCount(); ++a) {
      const auto* impl =
          app.implementationFor(a, arch.tile(mapping.actorToTile.at(a)).processorType);
      if (impl == nullptr) {
        throw ModelError("PlatformSim: actor " + app.graph().actor(a).name +
                         " lacks an implementation for its tile");
      }
      wcet[a] = impl->wcetCycles;
    }
    model = mapping::buildBindingAware(app, arch, mapping, wcet);

    behaviors.resize(app.graph().actorCount());
    for (ActorId a = 0; a < app.graph().actorCount(); ++a) {
      behaviors[a] = std::make_unique<ConstantCostBehavior>(wcet[a]);
    }

    // PE-mode serialization overhead per firing (matches buildBindingAware).
    serOverhead.assign(app.graph().actorCount(), 0);
    if (mapping.serialization == comm::SerializationMode::OnProcessor) {
      const comm::SerializationCost cost = comm::processorSerializationCost();
      for (ChannelId c = 0; c < app.graph().channelCount(); ++c) {
        if (!mapping.channelRoutes.at(c).interTile) {
          continue;
        }
        const sdf::Channel& channel = app.graph().channel(c);
        const std::uint32_t n = comm::wordsPerToken(channel.tokenSizeBytes);
        serOverhead[channel.src] += std::uint64_t{channel.prodRate} * cost.cycles(n);
        serOverhead[channel.dst] += std::uint64_t{channel.consRate} * cost.cycles(n);
      }
    }

    explicitIns.resize(app.graph().actorCount());
    explicitOuts.resize(app.graph().actorCount());
    for (ActorId a = 0; a < app.graph().actorCount(); ++a) {
      for (const ChannelId c : app.graph().actor(a).inputs) {
        if (app.isExplicit(c)) {
          explicitIns[a].push_back(c);
        }
      }
      for (const ChannelId c : app.graph().actor(a).outputs) {
        if (app.isExplicit(c)) {
          explicitOuts[a].push_back(c);
        }
      }
    }
  }
};

PlatformSim::PlatformSim(const sdf::ApplicationModel& app, const platform::Architecture& arch,
                         const mapping::Mapping& mapping)
    : impl_(std::make_unique<Impl>(app, arch, mapping)) {}

PlatformSim::~PlatformSim() = default;

void PlatformSim::setBehavior(ActorId actor, std::unique_ptr<ActorBehavior> behavior) {
  if (actor >= impl_->behaviors.size()) {
    throw ModelError("PlatformSim::setBehavior: actor id out of range");
  }
  if (behavior == nullptr) {
    throw ModelError("PlatformSim::setBehavior: null behavior");
  }
  impl_->behaviors[actor] = std::move(behavior);
}

namespace {

/// The event-driven execution engine. It runs the binding-aware
/// structure (graph + resources) exactly like the worst-case analysis
/// does, but with per-firing costs from the functional behaviors and
/// byte-accurate payload transport alongside the token counting.
class Engine {
 public:
  Engine(PlatformSim::Impl& impl, const SimOptions& options)
      : impl_(impl),
        graph_(impl.model.graph.graph),
        options_(options),
        originalActors_(impl.app.graph().actorCount()) {
    tokens_.resize(graph_.channelCount());
    for (ChannelId c = 0; c < graph_.channelCount(); ++c) {
      tokens_[c] = graph_.channel(c).initialTokens;
    }
    remaining_.resize(graph_.actorCount());
    pendingOutputs_.resize(originalActors_);
    const auto& resources = impl_.model.resources;
    schedulePos_.assign(resources.staticOrder.size(), 0);
    resourceBusy_.assign(resources.staticOrder.size(), 0);

    // Payload queues per original explicit channel; initial tokens get
    // payloads from the source actor's init function.
    payloads_.resize(impl_.app.graph().channelCount());
    for (ChannelId c = 0; c < impl_.app.graph().channelCount(); ++c) {
      const sdf::Channel& channel = impl_.app.graph().channel(c);
      if (!impl_.app.isExplicit(c) || channel.initialTokens == 0) {
        continue;
      }
      auto initial = impl_.behaviors[channel.src]->initialTokens(c, channel.initialTokens,
                                                                 channel.tokenSizeBytes);
      if (initial.size() != channel.initialTokens) {
        throw ModelError("initialTokens produced wrong count for channel " + channel.name);
      }
      for (auto& t : initial) {
        t.resize(channel.tokenSizeBytes);
        payloads_[c].push_back(std::move(t));
      }
    }

    result_.maxFiringCycles.assign(originalActors_, 0);
    result_.totalFiringCycles.assign(originalActors_, 0);
    result_.firings.assign(originalActors_, 0);
    result_.interTileBytes.assign(impl_.app.graph().channelCount(), 0);
    qRef_ = computeQRef();
  }

  SimResult run() {
    const std::uint64_t warmupFirings = options_.warmupIterations * qRef_;
    const std::uint64_t endFirings =
        (options_.warmupIterations + options_.measureIterations) * qRef_;

    while (now_ <= options_.maxCycles) {
      settleInstant();
      if (refCompletions_ >= warmupFirings && measureStart_ == kUnset) {
        measureStart_ = now_;
      }
      if (refCompletions_ >= endFirings) {
        result_.status = SimResult::Status::Ok;
        result_.measuredCycles = now_ - measureStart_;
        result_.measuredIterations = options_.measureIterations;
        break;
      }
      const bool anyOngoing = std::any_of(remaining_.begin(), remaining_.end(),
                                          [](const auto& r) { return !r.empty(); });
      if (!anyOngoing) {
        result_.status = SimResult::Status::Deadlock;
        break;
      }
      advanceTime();
    }
    result_.totalCycles = now_;
    return std::move(result_);
  }

 private:
  static constexpr std::uint64_t kUnset = std::numeric_limits<std::uint64_t>::max();

  [[nodiscard]] std::uint64_t computeQRef() const {
    const auto q = sdf::computeRepetitionVector(impl_.app.graph());
    if (!q) {
      throw ModelError("PlatformSim: inconsistent application graph");
    }
    return (*q)[0];
  }

  [[nodiscard]] std::uint32_t resourceOf(ActorId a) const {
    return a < impl_.model.resources.actorResource.size()
               ? impl_.model.resources.actorResource[a]
               : analysis::ResourceConstraints::kUnbound;
  }

  [[nodiscard]] bool isReady(ActorId a) const {
    const std::uint32_t limit = impl_.model.graph.concurrencyLimit(a);
    if (limit != 0 && remaining_[a].size() >= limit) {
      return false;
    }
    const std::uint32_t res = resourceOf(a);
    if (res != analysis::ResourceConstraints::kUnbound) {
      if (resourceBusy_[res] != 0) {
        return false;
      }
      const auto& order = impl_.model.resources.staticOrder[res];
      if (order[schedulePos_[res]] != a) {
        return false;
      }
    }
    for (const ChannelId c : graph_.actor(a).inputs) {
      if (tokens_[c] < graph_.channel(c).consRate) {
        return false;
      }
    }
    return true;
  }

  void startFiring(ActorId a) {
    for (const ChannelId c : graph_.actor(a).inputs) {
      tokens_[c] -= graph_.channel(c).consRate;
    }
    std::uint64_t cost = 0;
    if (a < originalActors_) {
      cost = runBehavior(a) + impl_.serOverhead[a];
    } else {
      cost = impl_.model.graph.execTime[a];
    }
    auto& r = remaining_[a];
    r.insert(std::upper_bound(r.begin(), r.end(), cost), cost);
    const std::uint32_t res = resourceOf(a);
    if (res != analysis::ResourceConstraints::kUnbound) {
      ++resourceBusy_[res];
      schedulePos_[res] =
          (schedulePos_[res] + 1) % impl_.model.resources.staticOrder[res].size();
    }
  }

  /// Execute the functional behavior: pop input payloads, produce output
  /// payloads (buffered until the firing completes), return the cost.
  std::uint64_t runBehavior(ActorId a) {
    const sdf::Graph& appGraph = impl_.app.graph();
    FiringData data;
    data.inputs.resize(impl_.explicitIns[a].size());
    for (std::size_t i = 0; i < impl_.explicitIns[a].size(); ++i) {
      const ChannelId c = impl_.explicitIns[a][i];
      const std::uint32_t rate = appGraph.channel(c).consRate;
      auto& queue = payloads_[c];
      if (queue.size() < rate) {
        throw ModelError("payload underflow on channel " + appGraph.channel(c).name);
      }
      for (std::uint32_t k = 0; k < rate; ++k) {
        data.inputs[i].push_back(std::move(queue.front()));
        queue.pop_front();
      }
    }
    data.outputs.resize(impl_.explicitOuts[a].size());
    for (std::size_t i = 0; i < impl_.explicitOuts[a].size(); ++i) {
      const ChannelId c = impl_.explicitOuts[a][i];
      data.outputs[i].assign(appGraph.channel(c).prodRate,
                             Token(appGraph.channel(c).tokenSizeBytes, 0));
    }
    const std::uint64_t cost = impl_.behaviors[a]->fire(data);

    result_.maxFiringCycles[a] = std::max(result_.maxFiringCycles[a], cost);
    result_.totalFiringCycles[a] += cost;
    ++result_.firings[a];

    // Stash outputs; delivered at completion (SDF produce-at-end).
    auto& pending = pendingOutputs_[a];
    pending.clear();
    for (std::size_t i = 0; i < impl_.explicitOuts[a].size(); ++i) {
      const ChannelId c = impl_.explicitOuts[a][i];
      for (auto& token : data.outputs[i]) {
        token.resize(appGraph.channel(c).tokenSizeBytes);
        pending.emplace_back(c, std::move(token));
      }
    }
    return cost;
  }

  void completeFiring(ActorId a) {
    remaining_[a].erase(remaining_[a].begin());
    for (const ChannelId c : graph_.actor(a).outputs) {
      tokens_[c] += graph_.channel(c).prodRate;
    }
    if (a < originalActors_) {
      for (auto& [channel, token] : pendingOutputs_[a]) {
        if (impl_.mapping.channelRoutes.at(channel).interTile) {
          result_.interTileBytes[channel] += token.size();
        }
        payloads_[channel].push_back(std::move(token));
      }
      pendingOutputs_[a].clear();
      if (a == 0) {
        ++refCompletions_;
      }
    }
    const std::uint32_t res = resourceOf(a);
    if (res != analysis::ResourceConstraints::kUnbound) {
      --resourceBusy_[res];
    }
  }

  void settleInstant() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (ActorId a = 0; a < graph_.actorCount(); ++a) {
        while (isReady(a)) {
          startFiring(a);
          changed = true;
          // Serialized actors can hold only one firing; the loop exits
          // via isReady. Unlimited-concurrency zero-time actors are
          // bounded by their input tokens.
        }
      }
      for (ActorId a = 0; a < graph_.actorCount(); ++a) {
        while (!remaining_[a].empty() && remaining_[a].front() == 0) {
          completeFiring(a);
          changed = true;
        }
      }
    }
  }

  void advanceTime() {
    std::uint64_t delta = std::numeric_limits<std::uint64_t>::max();
    for (const auto& r : remaining_) {
      if (!r.empty()) {
        delta = std::min(delta, r.front());
      }
    }
    now_ += delta;
    for (auto& r : remaining_) {
      for (auto& v : r) {
        v -= delta;
      }
    }
  }

  PlatformSim::Impl& impl_;
  const sdf::Graph& graph_;
  SimOptions options_;
  std::size_t originalActors_;

  std::vector<std::uint64_t> tokens_;
  std::vector<std::vector<std::uint64_t>> remaining_;
  std::vector<std::vector<std::pair<ChannelId, Token>>> pendingOutputs_;
  std::vector<std::deque<Token>> payloads_;
  std::vector<std::uint32_t> schedulePos_;
  std::vector<std::uint32_t> resourceBusy_;

  std::uint64_t now_ = 0;
  std::uint64_t refCompletions_ = 0;
  std::uint64_t measureStart_ = kUnset;
  std::uint64_t qRef_ = 1;
  SimResult result_;
};

}  // namespace

SimResult PlatformSim::run(const SimOptions& options) {
  Engine engine(*impl_, options);
  return engine.run();
}

}  // namespace mamps::sim
