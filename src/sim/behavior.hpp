// Functional actor behaviors for the platform simulator.
//
// The simulator executes the *real* actor implementations: a behavior
// receives the payload bytes of its input tokens and must produce the
// payload bytes of its output tokens, exactly like the C actor functions
// of the generated platform (Listing 1). The returned value is the
// firing's execution time in clock cycles — the behavior's cost model
// plays the role of the cycle counter on the FPGA.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sdf/graph.hpp"

namespace mamps::sim {

/// One token's payload.
using Token = std::vector<std::uint8_t>;

/// Inputs/outputs of one firing, ordered like the *explicit* channels in
/// the actor's graph port order (inputs first by channel id order, then
/// outputs). Each entry holds rate-many tokens.
struct FiringData {
  std::vector<std::vector<Token>> inputs;   ///< [explicit input idx][token]
  std::vector<std::vector<Token>> outputs;  ///< [explicit output idx][token], pre-sized
};

class ActorBehavior {
 public:
  virtual ~ActorBehavior() = default;

  /// Execute one firing; fill `data.outputs`; return the execution time
  /// of this firing in cycles (excluding any (de)serialization, which
  /// the platform adds according to the serialization mode).
  virtual std::uint64_t fire(FiringData& data) = 0;

  /// Payload of the initial tokens this actor's *output* channel starts
  /// with (the actor_X_init() function of Listing 1). Default: zeroed.
  virtual std::vector<Token> initialTokens(sdf::ChannelId /*channel*/, std::uint64_t count,
                                           std::uint32_t tokenSizeBytes) {
    return std::vector<Token>(count, Token(tokenSizeBytes, 0));
  }
};

/// A behavior with a fixed cost and zeroed outputs — the default for
/// timing-only simulations.
class ConstantCostBehavior : public ActorBehavior {
 public:
  explicit ConstantCostBehavior(std::uint64_t cycles) : cycles_(cycles) {}

  std::uint64_t fire(FiringData& /*data*/) override { return cycles_; }

 private:
  std::uint64_t cycles_;
};

}  // namespace mamps::sim
