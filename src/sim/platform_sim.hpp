// Cycle-level simulator of the generated MAMPS platform.
//
// This is the repository's stand-in for the Virtex-6 FPGA: it executes
// the mapped application with real data through the generated system
// structure —
//   - one processing element per tile running its static-order schedule
//     as a cyclic lookup table,
//   - per inter-tile channel: a source token buffer (alpha_src), an NI
//     transmit engine + word FIFO, a rate/latency link with at most `w`
//     words in flight and alpha_n receive buffering (credit-based flow
//     control), a receive assembler, and a destination token buffer
//     (alpha_dst),
//   - local channels as on-tile token FIFOs with their allocated
//     capacities.
// With PE-based serialization the (de)serialization cycles are charged
// to the actor's occupancy of its PE; with a communication assist the
// CA engines charge their own time and the PE is relieved (Section 4.1).
//
// Every stage matches one actor of the Figure 4 communication model
// with identical timing parameters, so an execution of this simulator
// is one of the behaviours covered by the binding-aware SDF3 analysis:
// as long as every firing's actual cost is at most the actor's WCET,
// the measured throughput is lower-bounded by the SDF3 guarantee. That
// relation is the paper's headline claim (Figure 6) and is asserted by
// the integration tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "mapping/flow.hpp"
#include "sim/behavior.hpp"

namespace mamps::sim {

struct SimOptions {
  /// Iterations discarded before measurement starts (the paper measures
  /// the long-term average to exclude initialization effects, Sec. 5).
  std::uint64_t warmupIterations = 4;
  /// Iterations in the measurement window.
  std::uint64_t measureIterations = 32;
  /// Hard cap on simulated cycles.
  std::uint64_t maxCycles = 2'000'000'000ULL;
};

struct SimResult {
  enum class Status { Ok, Deadlock, CycleLimit };
  Status status = Status::CycleLimit;

  std::uint64_t totalCycles = 0;        ///< simulated time at stop
  std::uint64_t measuredCycles = 0;     ///< length of the measurement window
  std::uint64_t measuredIterations = 0;
  /// Long-term average throughput in iterations per cycle.
  [[nodiscard]] double iterationsPerCycle() const {
    return measuredCycles == 0 ? 0.0
                               : static_cast<double>(measuredIterations) /
                                     static_cast<double>(measuredCycles);
  }

  /// Profiling: per actor, the maximum and total observed firing cost
  /// (excluding serialization) and the firing count. The maxima are the
  /// "execution time measurement" inputs of the expected-throughput
  /// analysis (Section 6.1).
  std::vector<std::uint64_t> maxFiringCycles;
  std::vector<std::uint64_t> totalFiringCycles;
  std::vector<std::uint64_t> firings;
  /// Bytes moved over the interconnect per channel (zero for local
  /// channels); used by the communication-overhead accounting.
  std::vector<std::uint64_t> interTileBytes;

  [[nodiscard]] bool ok() const { return status == Status::Ok; }
};

/// The simulated platform. Behaviors are registered per actor; actors
/// without a behavior run with their WCET as a constant cost.
class PlatformSim {
 public:
  PlatformSim(const sdf::ApplicationModel& app, const platform::Architecture& arch,
              const mapping::Mapping& mapping);
  ~PlatformSim();
  PlatformSim(const PlatformSim&) = delete;
  PlatformSim& operator=(const PlatformSim&) = delete;

  /// Attach the functional implementation of one actor.
  void setBehavior(sdf::ActorId actor, std::unique_ptr<ActorBehavior> behavior);

  /// Run the simulation; reference for iteration counting is actor 0.
  [[nodiscard]] SimResult run(const SimOptions& options = {});

  struct Impl;  // public: the engine in the implementation file uses it

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace mamps::sim
