#include "apps/suite/suite.hpp"

#include "apps/suite/h263.hpp"
#include "apps/suite/samplerate.hpp"
#include "apps/suite/synthetic.hpp"

namespace mamps::suite {

namespace {

using platform::InterconnectKind;
using platform::TemplateRequest;

TemplateRequest stockRequest(std::uint32_t tiles, InterconnectKind kind) {
  TemplateRequest request;
  request.tileCount = tiles;
  request.interconnect = kind;
  return request;
}

Scenario h263Scenario() {
  Scenario s;
  s.name = "h263";
  s.description =
      "H.263-style decoder: cyclic through the reference-frame feedback, "
      "coarse-grained multi-rate (66 blocks per slice)";
  H263App app = buildH263App();
  // Calibrated against the recommended platforms: the single-iteration
  // serial bound is ~1/552400, so multi-tile pipelining (and buffer
  // growth) is needed to reach the constraint.
  app.model.setThroughputConstraint(Rational(1, 600'000));
  s.model = std::move(app.model);
  s.platforms = {stockRequest(2, InterconnectKind::Fsl),
                 stockRequest(3, InterconnectKind::Fsl),
                 stockRequest(4, InterconnectKind::NocMesh),
                 platform::heterogeneousPreset(3, {"accel"})};
  // 66 blocks back to back in the static order need ~66-token buffers;
  // the growth loop doubles from the lower bound, so give it headroom.
  s.options.bufferGrowthRounds = 10;
  return s;
}

Scenario cd2datScenario() {
  Scenario s;
  s.name = "cd2dat";
  s.description =
      "CD->DAT sample-rate converter: deep multi-rate chain, "
      "q = [147, 49, 14, 8, 32, 160]";
  SampleRateApp app = buildSampleRateApp();
  // Serial single-tile bound is ~1/51940 per iteration (147 samples).
  app.model.setThroughputConstraint(Rational(1, 60'000));
  s.model = std::move(app.model);
  s.platforms = {stockRequest(2, InterconnectKind::Fsl),
                 stockRequest(3, InterconnectKind::NocMesh),
                 platform::largeMeshPreset(12)};
  // The 147-firing CD stage needs a full iteration buffered on some
  // schedules (see h263Scenario).
  s.options.bufferGrowthRounds = 10;
  return s;
}

Scenario syntheticForkScenario() {
  Scenario s;
  s.name = "synthetic_fork";
  s.description =
      "seeded fork-join workload (10 actors, two parallel branches, "
      "accelerator implementations on some actors)";
  SyntheticOptions options;
  options.seed = 42;
  options.topology = Topology::ForkJoin;
  options.actors = 10;
  options.accelChance = 0.4;
  s.model = buildSynthetic(options);
  // Only reachable with real parallelism (4t NoC: 1/6879; the hetero
  // accel platform: 1/3621); small platforms report meetsConstraint =
  // false, which the cross-application bench counts.
  s.model.setThroughputConstraint(Rational(1, 6'900));
  s.platforms = {stockRequest(2, InterconnectKind::Fsl),
                 stockRequest(4, InterconnectKind::NocMesh),
                 platform::heterogeneousPreset(3, {"accel", "accel"}),
                 platform::largeMeshPreset(12)};
  return s;
}

Scenario syntheticRingScenario() {
  Scenario s;
  s.name = "synthetic_ring";
  s.description =
      "seeded ring workload (8 actors, one application-level cycle "
      "provisioned with a full iteration of tokens)";
  SyntheticOptions options;
  options.seed = 7;
  options.topology = Topology::Ring;
  options.actors = 8;
  options.accelChance = 0.0;
  s.model = buildSynthetic(options);
  // Met immediately on the 2-tile platform (1/31317); the others start
  // below it and drive the buffer-growth loop.
  s.model.setThroughputConstraint(Rational(1, 32'500));
  s.platforms = {stockRequest(2, InterconnectKind::Fsl),
                 stockRequest(3, InterconnectKind::Fsl),
                 stockRequest(4, InterconnectKind::NocMesh)};
  return s;
}

}  // namespace

std::vector<Scenario> builtinScenarios() {
  std::vector<Scenario> all;
  all.push_back(h263Scenario());
  all.push_back(cd2datScenario());
  all.push_back(syntheticForkScenario());
  all.push_back(syntheticRingScenario());
  return all;
}

Scenario findScenario(std::string_view name) {
  for (Scenario& s : builtinScenarios()) {
    if (s.name == name) {
      return std::move(s);
    }
  }
  throw Error("findScenario: unknown scenario '" + std::string(name) + "'");
}

std::vector<mapping::DesignPoint> scenarioDesignPoints(const Scenario& scenario) {
  std::vector<mapping::DesignPoint> points;
  for (const TemplateRequest& request : scenario.platforms) {
    for (const auto serialization :
         {comm::SerializationMode::OnProcessor, comm::SerializationMode::CommAssist}) {
      mapping::DesignPoint point;
      point.platform = request;
      point.options = scenario.options;
      point.options.serialization = serialization;
      // IP tiles are called out separately ("3t+1ip") so a homogeneous
      // platform with the same total tile count cannot collide. Built
      // with appends: GCC 12's -Wrestrict falsely fires on the
      // equivalent operator+ chain.
      const std::size_t ipTiles = request.hardwareIpTiles.size();
      std::string label = scenario.name;
      label += "/";
      label += std::to_string(request.tileCount);
      label += "t";
      if (ipTiles > 0) {
        label += "+";
        label += std::to_string(ipTiles);
        label += "ip";
      }
      label += "_";
      label += platform::interconnectKindName(request.interconnect);
      if (serialization == comm::SerializationMode::CommAssist) {
        label += "_ca";
      }
      point.label = std::move(label);
      points.push_back(std::move(point));
    }
  }
  return points;
}

}  // namespace mamps::suite
