#include "apps/suite/churn.hpp"

#include <algorithm>

#include "apps/suite/suite.hpp"
#include "support/rng.hpp"

namespace mamps::suite {

ChurnWorkload suiteChurnWorkload(std::uint32_t maxTiles) {
  ChurnWorkload workload;
  for (Scenario& scenario : builtinScenarios()) {
    workload.names.push_back(scenario.name);
    workload.models.push_back(std::move(scenario.model));
    mapping::MappingOptions options = scenario.options;
    options.maxTiles = maxTiles;
    workload.options.push_back(options);
  }
  // Caches last: they hold pointers into the (now stable) deque slots.
  for (const sdf::ApplicationModel& model : workload.models) {
    workload.caches.push_back(mapping::prepareApplication(model));
  }
  return workload;
}

ChurnWorkload suiteTdmChurnWorkload(std::uint32_t slotsPerWheel, std::uint32_t slotsPerApp,
                                    std::uint32_t maxTiles) {
  if (slotsPerWheel == 0 || slotsPerApp == 0 || slotsPerApp > slotsPerWheel) {
    throw Error("suiteTdmChurnWorkload: need 0 < slotsPerApp <= slotsPerWheel");
  }
  ChurnWorkload workload;
  for (Scenario& scenario : builtinScenarios()) {
    workload.names.push_back(scenario.name);
    // Slice-proportional constraint: an instance holding k of S slots
    // is analyzed with WCETs inflated ~S/k, so it can only promise
    // ~k/S of the dedicated-tile rate; the extra slack factor leaves
    // room for the ceil rounding, the wheel overhead, and the
    // interconnect latencies that do not scale with the slice. The
    // fork graph's short actors make the per-firing wheel overhead its
    // dominant inflation term, so it gets double the slack.
    sdf::ApplicationModel model = std::move(scenario.model);
    const std::int64_t extra = scenario.name == "synthetic_fork" ? 4 : 2;
    const Rational c = model.throughputConstraint();
    model.setThroughputConstraint(c * Rational(slotsPerApp, extra * std::int64_t{slotsPerWheel}));
    workload.models.push_back(std::move(model));
    mapping::MappingOptions options = scenario.options;
    options.maxTiles = maxTiles;
    options.tdmSlots = slotsPerApp;
    workload.options.push_back(options);
  }
  for (const sdf::ApplicationModel& model : workload.models) {
    workload.caches.push_back(mapping::prepareApplication(model));
  }
  return workload;
}

ChurnResult runChurnTrace(mapping::AdmissionController& controller,
                          const ChurnWorkload& workload, const ChurnOptions& options) {
  if (workload.caches.empty()) {
    throw Error("runChurnTrace: empty workload");
  }
  Rng rng(options.seed);
  ChurnResult result;
  std::vector<mapping::ClientId> residents = controller.residentIds();
  std::vector<platform::TileId> failedTiles;

  const auto departOne = [&](std::size_t pick) {
    ChurnEvent event;
    event.kind = ChurnEvent::Kind::Departure;
    event.client = residents[pick];
    controller.depart(residents[pick]);
    residents.erase(residents.begin() + static_cast<std::ptrdiff_t>(pick));
    result.trace.push_back(event);
  };

  const auto repairOne = [&](std::size_t pick) {
    ChurnEvent event;
    event.kind = ChurnEvent::Kind::Repair;
    event.tile = failedTiles[pick];
    controller.repair(mapping::FaultEvent::tileFailure(failedTiles[pick]));
    failedTiles.erase(failedTiles.begin() + static_cast<std::ptrdiff_t>(pick));
    result.trace.push_back(event);
  };

  // Every fault-churn draw is gated behind the fault knobs so a trace
  // with the default (fault-free) options consumes exactly the legacy
  // RNG sequence — seeded arrival/departure traces stay bit-identical.
  const bool faultsEnabled = options.faultChance > 0 || options.repairChance > 0;
  const std::size_t tileCount = controller.budget().arch()->tileCount();

  for (std::size_t i = 0; i < options.events; ++i) {
    if (faultsEnabled) {
      if (!failedTiles.empty() && rng.chance(options.repairChance)) {
        repairOne(static_cast<std::size_t>(rng.range(0, failedTiles.size() - 1)));
        continue;
      }
      // Keep at least one tile healthy so the platform never fully
      // disappears underneath the trace.
      if (failedTiles.size() + 1 < tileCount && rng.chance(options.faultChance)) {
        std::vector<platform::TileId> healthy;
        for (platform::TileId t = 0; t < tileCount; ++t) {
          if (!controller.budget().tileFailed(t)) {
            healthy.push_back(t);
          }
        }
        const platform::TileId tile =
            healthy[static_cast<std::size_t>(rng.range(0, healthy.size() - 1))];
        const mapping::RecoveryReport report =
            controller.injectFault(mapping::FaultEvent::tileFailure(tile));
        failedTiles.push_back(tile);
        ChurnEvent event;
        event.kind = ChurnEvent::Kind::Fault;
        event.tile = tile;
        event.seconds = report.seconds;
        event.strandedCount = report.stranded.size();
        event.recoveredCount = report.recovered.size();
        event.degradedCount = report.degraded.size();
        // Degraded clients are gone; recovered ones keep their id (and
        // stay in `residents`).
        for (const mapping::ClientId lost : report.degraded) {
          residents.erase(std::remove(residents.begin(), residents.end(), lost),
                          residents.end());
        }
        result.trace.push_back(event);
        continue;
      }
    }
    if (!residents.empty() && rng.chance(options.departChance)) {
      departOne(static_cast<std::size_t>(rng.range(0, residents.size() - 1)));
      continue;
    }
    ChurnEvent event;
    event.appIndex = static_cast<std::size_t>(rng.range(0, workload.caches.size() - 1));
    const mapping::AdmissionDecision decision =
        controller.admit(workload.caches[event.appIndex], workload.options[event.appIndex]);
    event.client = decision.client;
    event.admitted = decision.admitted();
    event.planCacheHit = decision.planCacheHit;
    event.seconds = decision.seconds;
    result.admitSeconds.push_back(decision.seconds);
    if (decision.admitted()) {
      residents.push_back(*decision.client);
      result.clientApp.emplace(*decision.client, event.appIndex);
    }
    result.trace.push_back(event);
  }

  // Repair every outstanding failure, then drain: fail -> repair ->
  // drain must land on bit-identical pristine, so fault churn leaves
  // the conservation verdict exactly as strong as before.
  while (!failedTiles.empty()) {
    repairOne(failedTiles.size() - 1);
  }
  // Final drain: everyone leaves, and the budget must be pristine again
  // — the conservation property this whole subsystem exists to keep.
  while (!residents.empty()) {
    departOne(residents.size() - 1);
  }
  result.pristineAfterDrain = controller.pristine();
  result.stats = controller.stats();
  return result;
}

}  // namespace mamps::suite
