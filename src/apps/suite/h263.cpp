#include "apps/suite/h263.hpp"

namespace mamps::suite {

namespace {

constexpr std::uint32_t kBlockTokenBytes = 128;  // 64 coefficients, 16 bit
constexpr std::uint32_t kRefTokenBytes = 4;      // reference-frame handle

}  // namespace

H263App buildH263App(const H263Options& options) {
  if (options.macroblocksPerFrame == 0) {
    throw ModelError("buildH263App: macroblocksPerFrame must be positive");
  }
  const std::uint32_t blocks = 6 * options.macroblocksPerFrame;

  H263App app;
  sdf::Graph g("h263");
  app.vld = g.addActor("VLD");
  app.iq = g.addActor("IQ");
  app.idct = g.addActor("IDCT");
  app.mc = g.addActor("MC");

  const auto connect = [&g](sdf::ActorId src, std::uint32_t prod, sdf::ActorId dst,
                            std::uint32_t cons, std::uint64_t tokens, std::uint32_t size,
                            const char* name) {
    sdf::ChannelSpec spec;
    spec.src = src;
    spec.prodRate = prod;
    spec.dst = dst;
    spec.consRate = cons;
    spec.initialTokens = tokens;
    spec.tokenSizeBytes = size;
    spec.name = name;
    return g.connect(spec);
  };
  app.vld2iq = connect(app.vld, blocks, app.iq, 1, 0, kBlockTokenBytes, "vld2iq");
  app.iq2idct = connect(app.iq, 1, app.idct, 1, 0, kBlockTokenBytes, "iq2idct");
  app.idct2mc = connect(app.idct, 1, app.mc, blocks, 0, kBlockTokenBytes, "idct2mc");
  // The cyclic part: MC hands the reconstructed reference frame back to
  // the VLD; the single initial token is the (grey) start-up frame.
  app.refFrame = connect(app.mc, 1, app.vld, 1, 1, kRefTokenBytes, "refFrame");
  app.vldState = connect(app.vld, 1, app.vld, 1, 1, 4, "vldState");
  app.mcState = connect(app.mc, 1, app.mc, 1, 1, 4, "mcState");

  app.model = sdf::ApplicationModel(std::move(g));

  const auto addImpl = [&app](sdf::ActorId actor, const char* fn, const char* proc,
                              std::uint64_t wcet, std::uint32_t instr, std::uint32_t dataMem,
                              std::vector<sdf::ChannelId> args) {
    sdf::ActorImplementation impl;
    impl.functionName = fn;
    impl.initFunctionName = std::string(fn) + "_init";
    impl.processorType = proc;
    impl.wcetCycles = wcet;
    impl.instrMemBytes = instr;
    impl.dataMemBytes = dataMem;
    impl.argumentChannels = std::move(args);
    app.model.addImplementation(actor, impl);
  };
  addImpl(app.vld, "actor_h263_vld", "microblaze", options.vldWcet, 14 * 1024, 6 * 1024,
          {app.vld2iq, app.refFrame});
  addImpl(app.iq, "actor_h263_iq", "microblaze", options.iqWcet, 3 * 1024, 1 * 1024,
          {app.vld2iq, app.iq2idct});
  addImpl(app.idct, "actor_h263_idct", "microblaze", options.idctWcet, 5 * 1024, 2 * 1024,
          {app.iq2idct, app.idct2mc});
  // Hardware IDCT: the same interface, an eighth of the cycles.
  addImpl(app.idct, "accel_h263_idct", "accel", options.idctWcet / 8, 0, 2 * 1024,
          {app.iq2idct, app.idct2mc});
  addImpl(app.mc, "actor_h263_mc", "microblaze", options.mcWcet, 6 * 1024, 12 * 1024,
          {app.idct2mc, app.refFrame});
  return app;
}

}  // namespace mamps::suite
