// The multi-application scenario suite.
//
// The paper sells the flow as a multi-application mapping system, but
// the repository's only end-to-end case study used to be the MJPEG
// decoder. This registry adds application models with genuinely
// different shapes — an H.263-style decoder (cyclic, coarse-grained
// multi-rate), the CD->DAT sample-rate converter (deep multi-rate
// chain), and two pinned instances of the seeded synthetic workload
// generator (fork-join with accelerator offload, all-cyclic ring) —
// each paired with the platform templates it should be driven through.
// Everything here runs the complete analyze -> bind -> schedule ->
// grow-buffers -> DSE pipeline; tests/scenario_test.cpp registers one
// end-to-end flow test per scenario and bench/bench_scenarios.cpp
// sweeps the whole suite.
#pragma once

#include <string>
#include <vector>

#include "mapping/dse.hpp"
#include "platform/arch_template.hpp"
#include "sdf/app_model.hpp"

/// \namespace mamps::suite
/// \brief The multi-application scenario suite: application models,
/// seeded workload generation, and the scenario registry.

namespace mamps::suite {

/// One suite entry: an application plus its recommended platforms.
struct Scenario {
  /// Stable identifier ("h263", "cd2dat", ...).
  std::string name;
  /// One-line description of what shape this scenario exercises.
  std::string description;
  /// The application, complete with implementations and a throughput
  /// constraint calibrated so that at least one recommended platform
  /// meets it (typically after buffer growth).
  sdf::ApplicationModel model;
  /// Platform templates this scenario is expected to map onto
  /// end-to-end; every entry must yield a feasible mapping.
  std::vector<platform::TemplateRequest> platforms;
  /// Calibrated mapping knobs. Coarse-grained multi-rate scenarios need
  /// a larger buffer-growth budget than the default: the list scheduler
  /// may order all q[a] firings of an actor back to back, which only
  /// executes once the connecting buffers hold a full iteration's worth
  /// of tokens.
  mapping::MappingOptions options{};
};

/// The built-in scenarios, in a stable order.
/// @return h263, cd2dat, synthetic_fork, synthetic_ring
[[nodiscard]] std::vector<Scenario> builtinScenarios();

/// Look up a built-in scenario by name.
/// @param name one of the builtinScenarios() names
/// @return the scenario
/// @throws Error when the name is unknown
[[nodiscard]] Scenario findScenario(std::string_view name);

/// Expand a scenario into design points: its recommended platforms
/// crossed with both serialization modes, labelled
/// "<scenario>/<n>t[+<m>ip]_<interconnect>[_ca]" (the "+<m>ip" segment
/// appears for platforms with hardware IP tiles). Feed to
/// mapping::exploreDesignSpace for a cross-application sweep.
/// @param scenario the scenario to expand
/// @return one DesignPoint per platform x serialization combination
[[nodiscard]] std::vector<mapping::DesignPoint> scenarioDesignPoints(const Scenario& scenario);

}  // namespace mamps::suite
