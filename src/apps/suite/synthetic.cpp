#include "apps/suite/synthetic.hpp"

#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace mamps::suite {

namespace {

/// Rates for an edge between actors with repetition counts qFrom/qTo:
/// prod = qTo/g * k, cons = qFrom/g * k keeps the balance equation
/// qFrom * prod == qTo * cons for any scale factor k.
struct EdgeRates {
  std::uint32_t prod = 1;
  std::uint32_t cons = 1;
};

EdgeRates ratesFor(std::uint64_t qFrom, std::uint64_t qTo, Rng& rng,
                   std::uint32_t maxRateFactor) {
  const std::uint64_t g = std::gcd(qFrom, qTo);
  const std::uint64_t k = rng.range(1, maxRateFactor);
  return {static_cast<std::uint32_t>(qTo / g * k), static_cast<std::uint32_t>(qFrom / g * k)};
}

}  // namespace

sdf::ApplicationModel buildSynthetic(const SyntheticOptions& options) {
  if (options.actors < 3) {
    throw ModelError("buildSynthetic: need at least 3 actors");
  }
  if (options.maxQ == 0 || options.maxRateFactor == 0 || options.wcetLo > options.wcetHi ||
      options.tokenSizeLoWords == 0 || options.tokenSizeLoWords > options.tokenSizeHiWords) {
    throw ModelError("buildSynthetic: empty distribution range");
  }
  // Rates are bounded by maxQ * maxRateFactor; reject option combinations
  // whose truncation to the 32-bit channel rates would silently break the
  // consistency-by-construction guarantee.
  if (std::uint64_t{options.maxQ} * options.maxRateFactor >
      std::numeric_limits<std::uint32_t>::max()) {
    throw ModelError("buildSynthetic: maxQ * maxRateFactor overflows the channel rates");
  }
  Rng rng(options.seed);
  const std::uint32_t n = options.actors;

  sdf::Graph g("synthetic_" + std::to_string(options.seed));
  std::vector<sdf::ActorId> ids;
  std::vector<std::uint64_t> q;
  ids.reserve(n);
  q.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ids.push_back(g.addActor("w" + std::to_string(i)));
    q.push_back(rng.range(1, options.maxQ));
  }

  // Forward edges carry no tokens; a backward (cycle-closing) edge is
  // provisioned with one full iteration of its own production, which
  // keeps the generated graph live by construction.
  const auto connect = [&](std::uint32_t from, std::uint32_t to, bool backward) {
    const EdgeRates r = ratesFor(q[from], q[to], rng, options.maxRateFactor);
    sdf::ChannelSpec spec;
    spec.src = ids[from];
    spec.prodRate = r.prod;
    spec.dst = ids[to];
    spec.consRate = r.cons;
    spec.initialTokens = backward ? q[from] * r.prod : 0;
    spec.tokenSizeBytes =
        4 * static_cast<std::uint32_t>(
                rng.range(options.tokenSizeLoWords, options.tokenSizeHiWords));
    return g.connect(spec);
  };

  switch (options.topology) {
    case Topology::Chain:
    case Topology::Ring: {
      for (std::uint32_t i = 0; i + 1 < n; ++i) {
        connect(i, i + 1, false);
      }
      for (std::uint32_t e = 0; e < options.extraChannels; ++e) {
        const auto from = static_cast<std::uint32_t>(rng.range(0, n - 2));
        const auto to = static_cast<std::uint32_t>(rng.range(from + 1, n - 1));
        connect(from, to, false);
      }
      if (options.topology == Topology::Ring) {
        connect(n - 1, 0, /*backward=*/true);
      }
      break;
    }
    case Topology::ForkJoin: {
      // Actor 0 forks, odd ids form one branch, even ids (from 2) the
      // other, actor n-1 joins. Branches are chains.
      std::vector<std::uint32_t> branchA;
      std::vector<std::uint32_t> branchB;
      for (std::uint32_t i = 1; i + 1 < n; ++i) {
        (i % 2 == 1 ? branchA : branchB).push_back(i);
      }
      for (const auto& branch : {branchA, branchB}) {
        std::uint32_t prev = 0;
        for (const std::uint32_t a : branch) {
          connect(prev, a, false);
          prev = a;
        }
        connect(prev, n - 1, false);
      }
      for (std::uint32_t e = 0; e < options.extraChannels; ++e) {
        // Extra skip edges stay within a branch to keep the DAG shape.
        const auto& branch = rng.chance(0.5) ? branchA : branchB;
        if (branch.size() < 2) {
          continue;
        }
        const auto i = static_cast<std::uint32_t>(rng.range(0, branch.size() - 2));
        const auto j = static_cast<std::uint32_t>(rng.range(i + 1, branch.size() - 1));
        connect(branch[i], branch[j], false);
      }
      break;
    }
  }

  // State self-edges.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (rng.chance(options.stateChance)) {
      g.connect(ids[i], 1, ids[i], 1, 1, g.actor(ids[i]).name + "State");
    }
  }

  sdf::ApplicationModel model(std::move(g));
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t wcet = rng.range(options.wcetLo, options.wcetHi);
    std::vector<sdf::ChannelId> args;
    for (const sdf::ChannelId c : model.graph().actor(ids[i]).outputs) {
      if (!model.graph().channel(c).isSelfEdge()) {
        args.push_back(c);
      }
    }
    for (const sdf::ChannelId c : model.graph().actor(ids[i]).inputs) {
      if (!model.graph().channel(c).isSelfEdge()) {
        args.push_back(c);
      }
    }
    sdf::ActorImplementation impl;
    impl.functionName = "actor_" + model.graph().actor(ids[i]).name;
    impl.processorType = "microblaze";
    impl.wcetCycles = wcet;
    impl.instrMemBytes = options.instrMemBytes;
    impl.dataMemBytes = options.dataMemBytes;
    impl.argumentChannels = args;
    model.addImplementation(ids[i], impl);
    if (rng.chance(options.accelChance)) {
      sdf::ActorImplementation accel = impl;
      accel.functionName = "accel_" + model.graph().actor(ids[i]).name;
      accel.processorType = "accel";
      accel.wcetCycles = std::max<std::uint64_t>(1, wcet / 6);
      accel.instrMemBytes = 0;
      model.addImplementation(ids[i], accel);
    }
  }
  model.validate();
  return model;
}

}  // namespace mamps::suite
