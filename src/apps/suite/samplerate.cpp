#include "apps/suite/samplerate.hpp"

namespace mamps::suite {

namespace {

constexpr std::uint32_t kSampleBytes = 4;  // one 32-bit PCM sample per token

}  // namespace

SampleRateApp buildSampleRateApp(const SampleRateOptions& options) {
  SampleRateApp app;
  sdf::Graph g("cd2dat");
  app.cd = g.addActor("CD");
  app.s1 = g.addActor("S1");
  app.s2 = g.addActor("S2");
  app.s3 = g.addActor("S3");
  app.s4 = g.addActor("S4");
  app.dat = g.addActor("DAT");

  const auto connect = [&g](sdf::ActorId src, std::uint32_t prod, sdf::ActorId dst,
                            std::uint32_t cons, std::uint64_t tokens, const char* name) {
    sdf::ChannelSpec spec;
    spec.src = src;
    spec.prodRate = prod;
    spec.dst = dst;
    spec.consRate = cons;
    spec.initialTokens = tokens;
    spec.tokenSizeBytes = kSampleBytes;
    spec.name = name;
    return g.connect(spec);
  };
  // 160/147 = (2/3) * (4/7) * (4/7) * (5/1): each stage is a polyphase
  // resampler with the stated production/consumption rates.
  const auto cd2s1 = connect(app.cd, 1, app.s1, 3, 0, "cd2s1");
  const auto s12s2 = connect(app.s1, 2, app.s2, 7, 0, "s12s2");
  const auto s22s3 = connect(app.s2, 4, app.s3, 7, 0, "s22s3");
  const auto s32s4 = connect(app.s3, 4, app.s4, 1, 0, "s32s4");
  const auto s42dat = connect(app.s4, 5, app.dat, 1, 0, "s42dat");
  // State self-edges on the I/O actors and the boundary FIR stages (the
  // middle stages are modeled stateless, keeping the shape mixed).
  connect(app.cd, 1, app.cd, 1, 1, "cdState");
  connect(app.s1, 1, app.s1, 1, 1, "s1State");
  connect(app.s4, 1, app.s4, 1, 1, "s4State");
  connect(app.dat, 1, app.dat, 1, 1, "datState");

  app.model = sdf::ApplicationModel(std::move(g));

  const auto addImpl = [&app](sdf::ActorId actor, const char* fn, std::uint64_t wcet,
                              std::uint32_t instr, std::uint32_t dataMem,
                              std::vector<sdf::ChannelId> args) {
    sdf::ActorImplementation impl;
    impl.functionName = fn;
    impl.processorType = "microblaze";
    impl.wcetCycles = wcet;
    impl.instrMemBytes = instr;
    impl.dataMemBytes = dataMem;
    impl.argumentChannels = std::move(args);
    app.model.addImplementation(actor, impl);
  };
  addImpl(app.cd, "actor_cd_src", options.ioWcet, 2 * 1024, 512, {cd2s1});
  addImpl(app.s1, "actor_fir_2_3", options.stage1Wcet, 3 * 1024, 2 * 1024, {cd2s1, s12s2});
  addImpl(app.s2, "actor_fir_4_7", options.stage2Wcet, 3 * 1024, 2 * 1024, {s12s2, s22s3});
  addImpl(app.s3, "actor_fir_4_7b", options.stage3Wcet, 3 * 1024, 2 * 1024, {s22s3, s32s4});
  addImpl(app.s4, "actor_fir_5_1", options.stage4Wcet, 3 * 1024, 2 * 1024, {s32s4, s42dat});
  addImpl(app.dat, "actor_dat_sink", options.ioWcet, 2 * 1024, 512, {s42dat});
  return app;
}

}  // namespace mamps::suite
