// Seeded arrival/departure churn traces for online admission control.
//
// The scenario suite gives us four applications with calibrated
// throughput constraints; this driver turns them into a serving
// workload: a seeded stream of arrivals (a random suite application
// asks to be admitted onto the shared platform) and departures (a
// random resident leaves and its resources are released). Feeding such
// a trace through mapping::AdmissionController exercises exactly the
// lifecycle the batch flow never does — thousands of interleaved
// commit/release cycles against ONE live platform::ResourceBudget —
// and makes the leak class this PR fixes observable: after the final
// drain the budget must be bit-identical to pristine, or something
// (a tile share, an SDM wire, an FSL link) leaked on the way.
//
// tests/admission_test.cpp runs seeded traces on the largeMeshPreset
// and heterogeneousPreset platforms and asserts budget conservation
// plus guarantee stability for every resident;
// bench/bench_admission.cpp reports the decision-latency distribution
// (p50/p99) over the same traces.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mapping/admission.hpp"
#include "sdf/app_model.hpp"

namespace mamps::suite {

/// The application mix a churn trace draws its arrivals from. The
/// models live in a std::deque so AppAnalysisCache::app pointers stay
/// valid as the struct moves around (caches reference models by
/// address).
struct ChurnWorkload {
  /// Application names, aligned with `caches` ("h263", ...).
  std::vector<std::string> names;
  /// The owning storage of the application models.
  std::deque<sdf::ApplicationModel> models;
  /// One prepared cache per model, aligned with `names`.
  std::vector<mapping::AppAnalysisCache> caches;
  /// Calibrated per-application mapping knobs, aligned with `names`.
  std::vector<mapping::MappingOptions> options;
};

/// The four suite scenarios (h263, cd2dat, synthetic_fork,
/// synthetic_ring) as a churn mix, each with its calibrated scenario
/// options plus a footprint cap so several instances fit side by side.
/// @param maxTiles per-application tile cap (0 = no cap); the co-mapping
///   use cases established 2 as the value that leaves room for
///   neighbours
/// @return the workload (self-contained; safe to move)
[[nodiscard]] ChurnWorkload suiteChurnWorkload(std::uint32_t maxTiles = 2);

/// TDM variant of the suite churn mix for platforms whose tiles carry a
/// shared slot wheel (platform::withTdm): every application requests
/// `slotsPerApp` TDM slots per claimed tile, and each scenario's
/// throughput constraint is relaxed to the slice-proportional rate
/// `constraint * slotsPerApp / (2 * slotsPerWheel)` — a stream that
/// tolerates its fair share of a shared processor (the extra factor 2
/// absorbs the wheel overhead and the non-scaling interconnect
/// latencies in the conservative guarantee). The point of the variant:
/// several instances pack onto one tile while every admitted instance
/// still carries a composable analyzed guarantee.
/// @param slotsPerWheel the wheel size of the target platform's tiles
/// @param slotsPerApp TDM slots each application reserves per tile
/// @param maxTiles per-application tile cap (0 = no cap)
/// @return the workload (self-contained; safe to move)
[[nodiscard]] ChurnWorkload suiteTdmChurnWorkload(std::uint32_t slotsPerWheel,
                                                  std::uint32_t slotsPerApp,
                                                  std::uint32_t maxTiles = 2);

/// Tuning knobs for runChurnTrace().
struct ChurnOptions {
  /// Seed of the event stream; the trace is a pure function of the seed
  /// and the workload.
  std::uint64_t seed = 1;
  /// Number of arrival/departure events to draw (the final drain adds
  /// its departures on top).
  std::size_t events = 1000;
  /// Probability an event is a departure when residents exist
  /// (arrivals otherwise).
  double departChance = 0.45;
  /// Probability an event fails a random healthy tile (the controller
  /// evacuates and re-admits the stranded residents). 0 disables fault
  /// churn entirely — no extra RNG draws, so legacy seeded traces stay
  /// bit-identical.
  double faultChance = 0.0;
  /// Probability an event repairs a random outstanding tile failure
  /// (when one exists). Every failure still outstanding after the last
  /// event is repaired before the final drain, so the conservation
  /// verdict (drain == pristine) is unchanged by fault churn.
  double repairChance = 0.0;
};

/// One event of a churn trace.
struct ChurnEvent {
  /// What happened.
  enum class Kind {
    Arrival,    ///< an application asked to be admitted
    Departure,  ///< a resident left (including the final drain)
    Fault,      ///< a tile failed; stranded residents were evacuated
    Repair      ///< a failed tile was repaired (including the final sweep)
  };
  /// What happened.
  Kind kind = Kind::Arrival;
  /// Index into the workload of the arriving application (arrivals
  /// only).
  std::size_t appIndex = 0;
  /// The client: the admitted id for successful arrivals, the departing
  /// id for departures; unset for rejected arrivals and fault/repair
  /// events.
  std::optional<mapping::ClientId> client;
  /// Was the arrival admitted? (false for departures)
  bool admitted = false;
  /// Was the decision replayed from the plan cache? (arrivals only)
  bool planCacheHit = false;
  /// Decision latency (arrivals) or recovery latency (faults), seconds.
  double seconds = 0.0;
  /// The failed/repaired tile (Fault/Repair events only).
  platform::TileId tile = 0;
  /// Residents stranded by this fault (Fault events only).
  std::size_t strandedCount = 0;
  /// Stranded residents re-admitted under their old id (Fault only).
  std::size_t recoveredCount = 0;
  /// Stranded residents lost to the fault (Fault events only).
  std::size_t degradedCount = 0;
};

/// Outcome of one churn trace.
struct ChurnResult {
  /// Every event, in order (drawn events plus the final drain).
  std::vector<ChurnEvent> trace;
  /// Which workload application each admitted client was, over the
  /// whole trace (departed clients included) — lets callers check a
  /// resident's guarantee against its application's pinned value.
  std::map<mapping::ClientId, std::size_t> clientApp;
  /// Controller counters at the end of the trace.
  mapping::AdmissionStats stats;
  /// Per-arrival decision latencies, in seconds, in arrival order.
  std::vector<double> admitSeconds;
  /// Did the budget return to bit-identical pristine after the final
  /// drain? (AdmissionController::pristine() — the conservation check)
  bool pristineAfterDrain = false;
};

/// Run a seeded churn trace against `controller`: draw
/// `options.events` arrival/departure events from `workload`, then
/// drain every remaining resident and record whether the live budget
/// returned to pristine. The controller is left drained (empty) so
/// traces can be run back to back on one controller.
/// @param controller the live controller (its platform decides who fits)
/// @param workload the application mix; must outlive the controller's
///   plan cache (decisions referencing its models may be replayed later)
/// @param options trace knobs
/// @return the trace, latency samples, and the conservation verdict
[[nodiscard]] ChurnResult runChurnTrace(mapping::AdmissionController& controller,
                                        const ChurnWorkload& workload,
                                        const ChurnOptions& options = {});

}  // namespace mamps::suite
