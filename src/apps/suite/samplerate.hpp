// The classic CD -> DAT sample-rate converter chain as an SDF
// application: 44.1 kHz in, 48 kHz out, the 160/147 ratio factored into
// four polyphase FIR stages
//
//   CD --1:3--> S1 --2:7--> S2 --4:7--> S3 --4:1--> S4 --5:1--> DAT
//
// with the canonical repetition vector q = [147, 49, 14, 8, 32, 160].
// One iteration converts 147 input samples into 160 output samples.
// This is the deepest multi-rate shape of the suite: the rates are
// mutually coprime-ish, so the HSDF expansion is far larger than the
// actor count and every stage fires a different number of times — the
// polar opposite of the near-homogeneous MJPEG pipeline.
#pragma once

#include <cstdint>

#include "sdf/app_model.hpp"

namespace mamps::suite {

/// Calibration knobs of the converter chain.
struct SampleRateOptions {
  /// WCET in cycles of fetching/emitting one sample frame.
  std::uint64_t ioWcet = 40;
  /// WCET in cycles of one firing of each FIR stage (S1..S4). Firings
  /// process different sample counts, hence the different defaults.
  std::uint64_t stage1Wcet = 380;
  std::uint64_t stage2Wcet = 520;
  std::uint64_t stage3Wcet = 640;
  std::uint64_t stage4Wcet = 270;
};

/// The application model plus handles to its actors.
struct SampleRateApp {
  sdf::ApplicationModel model;
  sdf::ActorId cd = 0;
  sdf::ActorId s1 = 0;
  sdf::ActorId s2 = 0;
  sdf::ActorId s3 = 0;
  sdf::ActorId s4 = 0;
  sdf::ActorId dat = 0;
};

/// Build the converter model (Microblaze implementations throughout).
/// @param options WCET calibration
/// @return the model with actor handles
[[nodiscard]] SampleRateApp buildSampleRateApp(const SampleRateOptions& options = {});

}  // namespace mamps::suite
