// An H.263-style video decoder as an SDF application.
//
//   VLD --B--> IQ --1--> IDCT --1--> MC
//    ^                                |
//    '------------ refFrame ----------'   (1 initial token)
//
// B = 6 * macroblocksPerFrame block tokens per frame. One graph
// iteration decodes one frame slice. Unlike the MJPEG case study the
// graph is *cyclic* through the reference-frame feedback (motion
// compensation needs the previous reconstructed frame before the VLD
// may parse the next one), so throughput analysis has to reason about
// an application-level cycle, not just the comm-model and schedule
// cycles. This is the classic H.263 decoder shape of the SDF
// literature, scaled by macroblocksPerFrame.
#pragma once

#include <cstdint>

#include "sdf/app_model.hpp"

namespace mamps::suite {

/// Shape and calibration knobs of the H.263-style decoder.
struct H263Options {
  /// Macroblocks per decoded slice; 11 = one QCIF GOB row. Each
  /// macroblock is 6 blocks (4:2:0), so the block rate is 6x this.
  std::uint32_t macroblocksPerFrame = 11;
  /// WCETs in cycles: slice parse, per-block inverse quantization and
  /// IDCT, and whole-slice motion compensation.
  std::uint64_t vldWcet = 26000;
  std::uint64_t iqWcet = 1800;
  std::uint64_t idctWcet = 5600;
  std::uint64_t mcWcet = 38000;
};

/// The application model plus handles to its actors and channels.
struct H263App {
  sdf::ApplicationModel model;
  sdf::ActorId vld = 0;
  sdf::ActorId iq = 0;
  sdf::ActorId idct = 0;
  sdf::ActorId mc = 0;
  sdf::ChannelId vld2iq = 0;
  sdf::ChannelId iq2idct = 0;
  sdf::ChannelId idct2mc = 0;
  sdf::ChannelId refFrame = 0;  ///< the cyclic MC -> VLD feedback
  sdf::ChannelId vldState = 0;
  sdf::ChannelId mcState = 0;
};

/// Build the decoder model. Every actor has a Microblaze
/// implementation; the IDCT additionally carries an "accel" hardware
/// implementation so heterogeneous platforms can offload it.
/// @param options shape and WCET calibration
/// @return the model with actor/channel handles
[[nodiscard]] H263App buildH263App(const H263Options& options = {});

}  // namespace mamps::suite
