// The multi-application use-case registry.
//
// A *use case* is a workload of applications that must run together on
// ONE shared platform — the paper's headline scenario (multiple
// throughput-constrained applications on one generated MPSoC). Each
// built-in use case pairs a workload (suite scenarios and/or the MJPEG
// decoder of the case study) with the platform template it is expected
// to co-map onto, with every application meeting its own throughput
// constraint on the residual budget. tests/usecase_test.cpp runs every
// use case end-to-end and cross-checks the per-application guarantees
// against the state-space engine; bench/bench_usecases.cpp sweeps the
// registry and records the trajectory in ../BENCH_usecases.json.
#pragma once

#include <string>
#include <vector>

#include "mapping/dse.hpp"
#include "mapping/workload.hpp"
#include "platform/arch_template.hpp"
#include "sdf/app_model.hpp"

namespace mamps::suite {

/// One application of a use-case workload.
struct UseCaseApp {
  /// Stable identifier within the use case ("mjpeg", "h263", ...).
  std::string name;
  /// The application, with a throughput constraint calibrated so the
  /// whole workload is satisfiable on the use case's platform.
  sdf::ApplicationModel model;
  /// Calibrated mapping knobs for this application.
  mapping::MappingOptions options{};
  /// Mapping priority: higher-priority applications claim platform
  /// resources first (ties keep registry order).
  int priority = 0;
};

/// A use case: a workload plus the shared platform it co-maps onto.
struct UseCase {
  /// Stable identifier ("mjpeg_h263_mesh", ...).
  std::string name;
  /// One-line description of what the use case exercises.
  std::string description;
  /// The workload, in registry order (>= 2 applications).
  std::vector<UseCaseApp> apps;
  /// The shared platform template; the whole workload must co-map onto
  /// it with every application meeting its constraint.
  platform::TemplateRequest platform;
};

/// The built-in use cases, in a stable order.
/// @return mjpeg_h263_mesh, cd2dat_ring_hetero, suite_tdm_mesh
[[nodiscard]] std::vector<UseCase> builtinUseCases();

/// Look up a built-in use case by name.
/// @param useCase one of the builtinUseCases() names
/// @return the use case
/// @throws Error when the name is unknown
[[nodiscard]] UseCase findUseCase(std::string_view useCase);

/// The workload knobs of a use case: per-application options and
/// priorities, assembled from its apps.
/// @param useCase the use case to assemble options for
/// @return options ready for mapping::mapWorkload
[[nodiscard]] mapping::WorkloadOptions useCaseWorkloadOptions(const UseCase& useCase);

/// Co-map the whole workload of a use case onto its platform.
/// @param useCase the use case to map
/// @return per-application results plus the combined platform usage
[[nodiscard]] mapping::WorkloadResult mapUseCase(const UseCase& useCase);

/// A use case expanded for mapping::exploreDesignSpace: the application
/// list plus workload design points (the use case's platform crossed
/// with both serialization modes, labelled
/// "<usecase>/<platform>[_ca]"). The pointers reference the use case's
/// models, so `useCase` must outlive the sweep.
struct UseCaseSweep {
  /// The applications referenced by the points.
  std::vector<const sdf::ApplicationModel*> apps;
  /// One workload DesignPoint per serialization mode.
  std::vector<mapping::DesignPoint> points;
};

/// Expand a use case into workload design points.
/// @param useCase the use case to expand (must outlive the result)
/// @return the apps vector and labelled points for exploreDesignSpace
[[nodiscard]] UseCaseSweep useCaseDesignPoints(const UseCase& useCase);

}  // namespace mamps::suite
