#include "apps/suite/usecases.hpp"

#include "apps/mjpeg/actors.hpp"
#include "apps/suite/suite.hpp"

namespace mamps::suite {

namespace {

/// The MJPEG decoder of the case study with the pinned calibration of
/// the worked example (docs/throughput.md): measurement-calibrated
/// WCETs on the synthetic worst-case stream. Standalone on the 2-tile
/// FSL platform this model analyzes to exactly 1/1236968 iterations per
/// cycle (pinned by tests/usecase_test.cpp).
sdf::ApplicationModel mjpegModel() {
  mjpeg::MjpegWcets wcets;
  wcets.vld = 80696;
  wcets.iqzz = 8536;
  wcets.idct = 102575;
  wcets.cc = 93280;
  wcets.raster = 19646;
  return mjpeg::buildMjpegApp(wcets).model;
}

UseCase mjpegH263Mesh() {
  UseCase uc;
  uc.name = "mjpeg_h263_mesh";
  uc.description =
      "the MJPEG case-study decoder co-mapped with the cyclic H.263 "
      "decoder on the 12-tile SDM mesh";
  uc.platform = platform::largeMeshPreset(12);

  UseCaseApp mjpeg;
  mjpeg.name = "mjpeg";
  mjpeg.model = mjpegModel();
  // Calibrated against the residual mesh: the decoder pipeline spreads
  // over the tiles the H.263 workload leaves free.
  mjpeg.model.setThroughputConstraint(Rational(1, 1'500'000));
  mjpeg.priority = 1;  // the case study is the primary application
  uc.apps.push_back(std::move(mjpeg));

  UseCaseApp h263;
  h263.name = "h263";
  const Scenario scenario = findScenario("h263");
  h263.model = scenario.model;
  h263.options = scenario.options;
  uc.apps.push_back(std::move(h263));
  return uc;
}

UseCase cd2datRingHetero() {
  UseCase uc;
  uc.name = "cd2dat_ring_hetero";
  uc.description =
      "the CD->DAT sample-rate converter co-mapped with the seeded ring "
      "workload on the heterogeneous preset";
  uc.platform = platform::heterogeneousPreset(4, {"accel"});

  UseCaseApp cd2dat;
  cd2dat.name = "cd2dat";
  Scenario scenario = findScenario("cd2dat");
  cd2dat.model = std::move(scenario.model);
  cd2dat.options = scenario.options;
  // Without a footprint cap the load-balancing binder would spread the
  // converter over every processor tile and starve the ring; two tiles
  // meet its constraint comfortably (standalone 2-tile pin: 1/30576).
  cd2dat.options.maxTiles = 2;
  cd2dat.priority = 1;  // the converter claims its pipeline tiles first
  uc.apps.push_back(std::move(cd2dat));

  UseCaseApp ring;
  ring.name = "synthetic_ring";
  Scenario ringScenario = findScenario("synthetic_ring");
  ring.model = std::move(ringScenario.model);
  ring.options = ringScenario.options;
  ring.options.maxTiles = 2;
  uc.apps.push_back(std::move(ring));
  return uc;
}

UseCase suiteTdmMesh() {
  UseCase uc;
  uc.name = "suite_tdm_mesh";
  uc.description =
      "all four suite scenarios sharing TDM slot wheels on the 12-tile "
      "SDM mesh (2 of 4 slots each, constraints relaxed to the slice "
      "rate)";
  // 4-slot wheels with a 200-cycle slot-switch overhead; two
  // applications can share every processor tile.
  uc.platform = platform::withTdm(platform::largeMeshPreset(12), 4, 200);
  for (Scenario& scenario : builtinScenarios()) {
    UseCaseApp app;
    app.name = scenario.name;
    app.model = std::move(scenario.model);
    // Holding 2 of 4 slots, an instance promises at most ~half the
    // dedicated-tile rate; relax to a quarter so the ceil rounding,
    // wheel overhead, and non-scaling interconnect latencies fit under
    // the conservative guarantee. The fork graph's actors are short
    // (hundreds of cycles), so the per-firing wheel overhead dominates
    // its inflation — it gets a deeper relaxation.
    const Rational slack = scenario.name == "synthetic_fork" ? Rational(1, 8) : Rational(1, 4);
    app.model.setThroughputConstraint(app.model.throughputConstraint() * slack);
    app.options = scenario.options;
    app.options.maxTiles = 2;
    app.options.tdmSlots = 2;
    uc.apps.push_back(std::move(app));
  }
  return uc;
}

}  // namespace

std::vector<UseCase> builtinUseCases() {
  std::vector<UseCase> all;
  all.push_back(mjpegH263Mesh());
  all.push_back(cd2datRingHetero());
  all.push_back(suiteTdmMesh());
  return all;
}

UseCase findUseCase(std::string_view useCase) {
  for (UseCase& uc : builtinUseCases()) {
    if (uc.name == useCase) {
      return std::move(uc);
    }
  }
  throw Error("findUseCase: unknown use case '" + std::string(useCase) + "'");
}

mapping::WorkloadOptions useCaseWorkloadOptions(const UseCase& useCase) {
  mapping::WorkloadOptions options;
  options.appOptions.reserve(useCase.apps.size());
  options.priorities.reserve(useCase.apps.size());
  for (const UseCaseApp& app : useCase.apps) {
    options.appOptions.push_back(app.options);
    options.priorities.push_back(app.priority);
  }
  return options;
}

mapping::WorkloadResult mapUseCase(const UseCase& useCase) {
  std::vector<mapping::AppAnalysisCache> caches;
  caches.reserve(useCase.apps.size());
  for (const UseCaseApp& app : useCase.apps) {
    caches.push_back(mapping::prepareApplication(app.model));
  }
  const platform::Architecture arch = platform::generateFromTemplate(useCase.platform);
  return mapping::mapWorkload(caches, arch, useCaseWorkloadOptions(useCase));
}

UseCaseSweep useCaseDesignPoints(const UseCase& useCase) {
  UseCaseSweep sweep;
  for (const UseCaseApp& app : useCase.apps) {
    sweep.apps.push_back(&app.model);
  }
  for (const auto serialization :
       {comm::SerializationMode::OnProcessor, comm::SerializationMode::CommAssist}) {
    mapping::DesignPoint point;
    point.platform = useCase.platform;
    point.workloadOptions = useCaseWorkloadOptions(useCase);
    for (std::size_t i = 0; i < useCase.apps.size(); ++i) {
      point.workloadApps.push_back(i);
      point.workloadOptions.appOptions[i].serialization = serialization;
    }
    std::string label = useCase.name;
    label += "/";
    label += std::to_string(useCase.platform.tileCount);
    label += "t";
    if (!useCase.platform.hardwareIpTiles.empty()) {
      label += "+";
      label += std::to_string(useCase.platform.hardwareIpTiles.size());
      label += "ip";
    }
    label += "_";
    label += platform::interconnectKindName(useCase.platform.interconnect);
    if (serialization == comm::SerializationMode::CommAssist) {
      label += "_ca";
    }
    point.label = std::move(label);
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

}  // namespace mamps::suite
