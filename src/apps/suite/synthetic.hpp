// Seeded synthetic SDF workload generator.
//
// Produces *consistent, deadlock-free* application models from a seed
// and a handful of distribution knobs: topology family, rate diversity
// (via a sampled repetition vector, so the balance equations hold by
// construction), WCET and token-size ranges, and optional accelerator
// implementations. The same options always produce the same model
// (splitmix64 underneath), so generated scenarios are as pinnable as
// hand-written ones — the suite uses two fixed seeds as its third and
// fourth applications, and sweeps can scale to thousands of distinct
// workloads by varying the seed.
#pragma once

#include <cstdint>

#include "sdf/app_model.hpp"

namespace mamps::suite {

/// Topology family of a generated workload.
enum class Topology {
  /// A linear pipeline with optional extra forward (skip) edges.
  Chain,
  /// Chain plus a closing feedback edge provisioned with one full
  /// iteration of tokens: the whole graph is one big cycle.
  Ring,
  /// One source forking into two parallel branches that rejoin at a
  /// sink actor.
  ForkJoin,
};

/// Distribution knobs of the generator.
struct SyntheticOptions {
  std::uint64_t seed = 1;  ///< same options + seed = same model
  Topology topology = Topology::Chain;  ///< topology family
  std::uint32_t actors = 8;             ///< actor count, >= 3
  std::uint32_t maxQ = 4;           ///< per-actor repetition count range [1, maxQ]
  std::uint32_t maxRateFactor = 2;  ///< multiplies the balance-derived base rates
  std::uint32_t extraChannels = 2;  ///< extra forward (skip) edges, all topologies
  std::uint64_t wcetLo = 50;        ///< per-firing WCET lower bound (cycles)
  std::uint64_t wcetHi = 2000;      ///< per-firing WCET upper bound (cycles)
  std::uint32_t tokenSizeLoWords = 1;   ///< token payload lower bound (32-bit words)
  std::uint32_t tokenSizeHiWords = 16;  ///< token payload upper bound (32-bit words)
  double stateChance = 0.3;   ///< per-actor chance of a state self-edge
  double accelChance = 0.25;  ///< per-actor chance of an "accel" implementation
  std::uint32_t instrMemBytes = 4096;  ///< instruction memory per implementation
  std::uint32_t dataMemBytes = 2048;   ///< data memory per implementation
};

/// Generate a workload. The result validates, is consistent and
/// deadlock-free, and names its graph "synthetic_<seed>".
/// @param options distribution knobs (see the struct)
/// @return a complete application model
/// @throws ModelError when options.actors < 3 or a range is empty
[[nodiscard]] sdf::ApplicationModel buildSynthetic(const SyntheticOptions& options = {});

}  // namespace mamps::suite
