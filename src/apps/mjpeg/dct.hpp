// Fixed-point 8x8 forward and inverse DCT.
//
// The IDCT is the kind of integer implementation that runs on a
// Microblaze without an FPU: 13-bit fixed-point cosine constants and a
// row/column decomposition. Accuracy is tested against a double
// reference in the unit tests.
#pragma once

#include <array>
#include <cstdint>

namespace mamps::mjpeg {

using Block = std::array<std::int16_t, 64>;  ///< raster order

/// Forward DCT of level-shifted samples (input range [-128, 127]).
void forwardDct(const std::array<std::int16_t, 64>& spatial, Block& freq);

/// Inverse DCT; output is clamped level-shifted samples in [-256, 255].
void inverseDct(const Block& freq, std::array<std::int16_t, 64>& spatial);

/// Number of non-zero coefficients (drives the IDCT cost model: rows of
/// zeros are skipped by the implementation).
[[nodiscard]] std::uint32_t nonZeroCount(const Block& freq);

/// Double-precision reference IDCT for accuracy tests.
void inverseDctReference(const Block& freq, std::array<double, 64>& spatial);

}  // namespace mamps::mjpeg
