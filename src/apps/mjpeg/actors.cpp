#include "apps/mjpeg/actors.hpp"

#include <algorithm>

#include "apps/mjpeg/bitio.hpp"
#include "apps/mjpeg/cost_model.hpp"
#include "apps/mjpeg/tables.hpp"

namespace mamps::mjpeg {
namespace {

constexpr std::uint8_t kFrameMarker = 0xa5;

// ---------------------------------------------------------------- VLD core

/// Streaming state of the variable-length decoder over a (looped)
/// sequence of encoded frames.
class VldCore {
 public:
  explicit VldCore(std::vector<std::uint8_t> stream) : stream_(std::move(stream)) {
    if (stream_.empty()) {
      throw Error("VldCore: empty stream");
    }
    loadFrame();
  }

  struct McuResult {
    std::array<std::pair<std::uint8_t, Block>, kBlockRate> blocks;  // kind + zz coefficients
    FrameHeader header;
    std::uint16_t mcuIndex = 0;
    std::uint64_t bitsConsumed = 0;
    std::uint32_t codedBlocks = 0;
  };

  /// Decode the next MCU; loops back to the first frame at stream end.
  McuResult decodeMcu() {
    McuResult out;
    out.header = header_;
    out.mcuIndex = static_cast<std::uint16_t>(mcuIndex_);
    const std::size_t bitsBefore = reader_->bitPosition();
    const std::uint32_t coded = blocksPerMcu(header_.sampling);
    const std::uint32_t luma = lumaBlocksPerMcu(header_.sampling);
    for (std::uint32_t b = 0; b < kBlockRate; ++b) {
      if (b < coded) {
        const std::uint8_t kind =
            b < luma ? kKindLuma : (b == luma ? kKindCb : kKindCr);
        out.blocks[b].first = kind;
        decodeBlock(kind, out.blocks[b].second);
      } else {
        out.blocks[b].first = kKindDummy;
        out.blocks[b].second.fill(0);
      }
    }
    out.bitsConsumed = reader_->bitPosition() - bitsBefore;
    out.codedBlocks = coded;

    if (++mcuIndex_ >= header_.mcusPerFrame()) {
      frameOffset_ = payloadEnd_;
      if (frameOffset_ >= stream_.size()) {
        frameOffset_ = 0;  // loop the sequence
      }
      loadFrame();
    }
    return out;
  }

  [[nodiscard]] const FrameHeader& header() const { return header_; }

 private:
  void loadFrame() {
    if (frameOffset_ + 11 > stream_.size() || stream_[frameOffset_] != kFrameMarker) {
      throw Error("VldCore: malformed frame header");
    }
    const std::uint8_t* p = stream_.data() + frameOffset_;
    header_.width = loadU16(p + 1);
    header_.height = loadU16(p + 3);
    header_.sampling = static_cast<Sampling>(p[5]);
    header_.quality = p[6];
    const std::size_t payloadSize = static_cast<std::size_t>(p[7]) |
                                    (static_cast<std::size_t>(p[8]) << 8) |
                                    (static_cast<std::size_t>(p[9]) << 16) |
                                    (static_cast<std::size_t>(p[10]) << 24);
    const std::size_t payloadStart = frameOffset_ + 11;
    if (payloadStart + payloadSize > stream_.size()) {
      throw Error("VldCore: truncated frame payload");
    }
    reader_.emplace(stream_.data() + payloadStart, payloadSize);
    payloadEnd_ = payloadStart + payloadSize;
    mcuIndex_ = 0;
    dcY_ = dcCb_ = dcCr_ = 0;
  }

  void decodeBlock(std::uint8_t kind, Block& zz) {
    const bool isLuma = kind == kKindLuma;
    const HuffmanTable& dc = isLuma ? lumaDcTable() : chromaDcTable();
    const HuffmanTable& ac = isLuma ? lumaAcTable() : chromaAcTable();
    int& predictor = isLuma ? dcY_ : (kind == kKindCb ? dcCb_ : dcCr_);

    zz.fill(0);
    const std::uint8_t dcCat = dc.decode(*reader_);
    const int diff = extendMagnitude(reader_->getBits(dcCat), dcCat);
    predictor += diff;
    zz[0] = static_cast<std::int16_t>(predictor);

    int k = 1;
    while (k < 64) {
      const std::uint8_t rs = ac.decode(*reader_);
      if (rs == 0x00) {
        break;  // EOB
      }
      if (rs == 0xf0) {
        k += 16;  // ZRL
        continue;
      }
      k += rs >> 4;
      const std::uint8_t cat = rs & 0x0f;
      if (k >= 64) {
        throw Error("VldCore: AC index overflow");
      }
      zz[static_cast<std::size_t>(k)] =
          static_cast<std::int16_t>(extendMagnitude(reader_->getBits(cat), cat));
      ++k;
    }
  }

  std::vector<std::uint8_t> stream_;
  std::size_t frameOffset_ = 0;
  std::size_t payloadEnd_ = 0;
  std::optional<BitReader> reader_;
  FrameHeader header_;
  std::uint32_t mcuIndex_ = 0;
  int dcY_ = 0;
  int dcCb_ = 0;
  int dcCr_ = 0;
};

// ------------------------------------------------------- block operations

void dequantizeBlock(std::uint8_t kind, std::uint8_t quality, const Block& zz, Block& raster) {
  const auto table =
      scaledQuantTable(kind == kKindLuma ? kLumaQuant : kChromaQuant, quality);
  raster.fill(0);
  for (std::size_t k = 0; k < 64; ++k) {
    const std::size_t idx = kZigzagOrder[k];
    const std::int32_t value = zz[k] * table[idx];
    raster[idx] = static_cast<std::int16_t>(std::clamp(value, -30000, 30000));
  }
}

/// Compose one MCU of RGB pixels from its spatial blocks.
void composeMcu(const FrameHeader& header,
                const std::vector<std::pair<std::uint8_t, Block>>& blocks,
                std::uint8_t* rgbOut) {
  const std::uint32_t mw = mcuWidth(header.sampling);
  const std::uint32_t mh = mcuHeight(header.sampling);
  const std::uint32_t luma = lumaBlocksPerMcu(header.sampling);
  const std::uint32_t lumaCols = mw / 8;
  const std::uint32_t subX = mw / 8;
  const std::uint32_t subY = mh / 8;

  for (std::uint32_t y = 0; y < mh; ++y) {
    for (std::uint32_t x = 0; x < mw; ++x) {
      const std::uint32_t lb = (y / 8) * lumaCols + (x / 8);
      if (lb >= luma) {
        throw Error("composeMcu: luma block index out of range");
      }
      const std::int16_t lumaValue = blocks[lb].second[(y % 8) * 8 + (x % 8)];
      const std::int16_t cb = blocks[luma].second[(y / subY) * 8 + (x / subX)];
      const std::int16_t cr = blocks[luma + 1].second[(y / subY) * 8 + (x / subX)];
      std::uint8_t r = 0;
      std::uint8_t g = 0;
      std::uint8_t b = 0;
      ycbcrToRgb(lumaValue, cb, cr, r, g, b);
      std::uint8_t* px = rgbOut + (y * mw + x) * 3;
      px[0] = r;
      px[1] = g;
      px[2] = b;
    }
  }
}

// ---------------------------------------------------------------- behaviors

class VldBehavior final : public sim::ActorBehavior {
 public:
  explicit VldBehavior(std::vector<std::uint8_t> stream) : core_(std::move(stream)) {}

  std::uint64_t fire(sim::FiringData& data) override {
    const VldCore::McuResult mcu = core_.decodeMcu();
    // outputs[0] = vld2iqzz (10 block tokens), [1] = subHeader1, [2] = subHeader2.
    for (std::uint32_t b = 0; b < kBlockRate; ++b) {
      packBlockToken(data.outputs[0][b].data(), mcu.blocks[b].first, mcu.header.quality,
                     mcu.blocks[b].second);
    }
    packHeaderToken(data.outputs[1][0].data(), mcu.header, mcu.mcuIndex);
    packHeaderToken(data.outputs[2][0].data(), mcu.header, mcu.mcuIndex);
    return vldCost(mcu.bitsConsumed, mcu.codedBlocks);
  }

 private:
  VldCore core_;
};

class IqzzBehavior final : public sim::ActorBehavior {
 public:
  std::uint64_t fire(sim::FiringData& data) override {
    std::uint8_t kind = 0;
    std::uint8_t quality = 0;
    Block zz{};
    unpackBlockToken(data.inputs[0][0].data(), kind, quality, zz);
    if (kind == kKindDummy) {
      packBlockToken(data.outputs[0][0].data(), kind, quality, zz);
      return iqzzCost(true);
    }
    Block raster{};
    dequantizeBlock(kind, quality, zz, raster);
    packBlockToken(data.outputs[0][0].data(), kind, quality, raster);
    return iqzzCost(false);
  }
};

class IdctBehavior final : public sim::ActorBehavior {
 public:
  std::uint64_t fire(sim::FiringData& data) override {
    std::uint8_t kind = 0;
    std::uint8_t quality = 0;
    Block freq{};
    unpackBlockToken(data.inputs[0][0].data(), kind, quality, freq);
    if (kind == kKindDummy) {
      packBlockToken(data.outputs[0][0].data(), kind, quality, freq);
      return idctCost(true, 0);
    }
    const std::uint32_t nz = nonZeroCount(freq);
    std::array<std::int16_t, 64> spatial{};
    inverseDct(freq, spatial);
    Block samples{};
    std::copy(spatial.begin(), spatial.end(), samples.begin());
    packBlockToken(data.outputs[0][0].data(), kind, quality, samples);
    return idctCost(false, nz);
  }
};

class CcBehavior final : public sim::ActorBehavior {
 public:
  std::uint64_t fire(sim::FiringData& data) override {
    // inputs[0] = 10 spatial block tokens, inputs[1] = subHeader1.
    FrameHeader header;
    std::uint16_t mcuIndex = 0;
    unpackHeaderToken(data.inputs[1][0].data(), header, mcuIndex);

    std::vector<std::pair<std::uint8_t, Block>> blocks(kBlockRate);
    for (std::uint32_t b = 0; b < kBlockRate; ++b) {
      std::uint8_t quality = 0;
      unpackBlockToken(data.inputs[0][b].data(), blocks[b].first, quality, blocks[b].second);
    }
    composeMcu(header, blocks, data.outputs[0][0].data());
    return ccCost(mcuWidth(header.sampling) * mcuHeight(header.sampling));
  }
};

}  // namespace

std::uint64_t RasterBehavior::fire(sim::FiringData& data) {
  // inputs[0] = MCU pixels, inputs[1] = subHeader2.
  FrameHeader header;
  std::uint16_t mcuIndex = 0;
  unpackHeaderToken(data.inputs[1][0].data(), header, mcuIndex);
  const std::uint32_t mw = mcuWidth(header.sampling);
  const std::uint32_t mh = mcuHeight(header.sampling);

  if (mcuIndex == 0) {
    current_ = Frame(header.mcusPerRow() * mw, header.mcusPerCol() * mh);
  }
  const std::uint32_t mcuX = mcuIndex % header.mcusPerRow();
  const std::uint32_t mcuY = mcuIndex / header.mcusPerRow();
  const std::uint8_t* src = data.inputs[0][0].data();
  for (std::uint32_t y = 0; y < mh; ++y) {
    const std::uint32_t py = mcuY * mh + y;
    std::uint8_t* dst = &current_.rgb[(py * current_.width + mcuX * mw) * 3];
    std::copy_n(src + y * mw * 3, mw * 3, dst);
  }
  if (mcuIndex + 1u == header.mcusPerFrame()) {
    if (frames_.size() >= maxFrames_) {
      frames_.erase(frames_.begin());
    }
    frames_.push_back(current_);
  }
  return rasterCost(mw * mh);
}

MjpegApp buildMjpegApp(const MjpegWcets& wcets) {
  MjpegApp app;
  sdf::Graph g("mjpeg");
  app.vld = g.addActor("VLD");
  app.iqzz = g.addActor("IQZZ");
  app.idct = g.addActor("IDCT");
  app.cc = g.addActor("CC");
  app.raster = g.addActor("Raster");

  const auto connect = [&g](sdf::ActorId src, std::uint32_t prod, sdf::ActorId dst,
                            std::uint32_t cons, std::uint64_t tokens, std::uint32_t size,
                            const char* name) {
    sdf::ChannelSpec spec;
    spec.src = src;
    spec.prodRate = prod;
    spec.dst = dst;
    spec.consRate = cons;
    spec.initialTokens = tokens;
    spec.tokenSizeBytes = size;
    spec.name = name;
    return g.connect(spec);
  };
  app.vld2iqzz = connect(app.vld, kBlockRate, app.iqzz, 1, 0, kBlockTokenSize, "vld2iqzz");
  app.iqzz2idct = connect(app.iqzz, 1, app.idct, 1, 0, kBlockTokenSize, "iqzz2idct");
  app.idct2cc = connect(app.idct, 1, app.cc, kBlockRate, 0, kBlockTokenSize, "idct2cc");
  app.cc2raster = connect(app.cc, 1, app.raster, 1, 0, kMcuTokenSize, "cc2raster");
  app.subHeader1 = connect(app.vld, 1, app.cc, 1, 0, kHeaderTokenSize, "subHeader1");
  app.subHeader2 = connect(app.vld, 1, app.raster, 1, 0, kHeaderTokenSize, "subHeader2");
  app.vldState = connect(app.vld, 1, app.vld, 1, 1, 4, "vldState");
  app.rasterState = connect(app.raster, 1, app.raster, 1, 1, 4, "rasterState");

  app.model = sdf::ApplicationModel(std::move(g));

  const auto addImpl = [&app](sdf::ActorId actor, const char* fn, std::uint64_t wcet,
                              std::uint32_t instr, std::uint32_t dataMem,
                              std::vector<sdf::ChannelId> args) {
    sdf::ActorImplementation impl;
    impl.functionName = fn;
    impl.initFunctionName = std::string(fn) + "_init";
    impl.processorType = "microblaze";
    impl.wcetCycles = wcet;
    impl.instrMemBytes = instr;
    impl.dataMemBytes = dataMem;
    impl.argumentChannels = std::move(args);
    app.model.addImplementation(actor, impl);
  };
  addImpl(app.vld, "actor_vld", wcets.vld, 12 * 1024, 6 * 1024,
          {app.vld2iqzz, app.subHeader1, app.subHeader2});
  addImpl(app.iqzz, "actor_iqzz", wcets.iqzz, 3 * 1024, 1 * 1024,
          {app.vld2iqzz, app.iqzz2idct});
  addImpl(app.idct, "actor_idct", wcets.idct, 5 * 1024, 2 * 1024,
          {app.iqzz2idct, app.idct2cc});
  addImpl(app.cc, "actor_cc", wcets.cc, 4 * 1024, 2 * 1024,
          {app.idct2cc, app.subHeader1, app.cc2raster});
  addImpl(app.raster, "actor_raster", wcets.raster, 3 * 1024, 8 * 1024,
          {app.cc2raster, app.subHeader2});
  return app;
}

MjpegBehaviors attachMjpegBehaviors(sim::PlatformSim& simulator, const MjpegApp& app,
                                    std::vector<std::uint8_t> stream) {
  MjpegBehaviors handles;
  simulator.setBehavior(app.vld, std::make_unique<VldBehavior>(std::move(stream)));
  simulator.setBehavior(app.iqzz, std::make_unique<IqzzBehavior>());
  simulator.setBehavior(app.idct, std::make_unique<IdctBehavior>());
  simulator.setBehavior(app.cc, std::make_unique<CcBehavior>());
  auto raster = std::make_unique<RasterBehavior>();
  handles.raster = raster.get();
  simulator.setBehavior(app.raster, std::move(raster));
  return handles;
}

namespace {

/// Run the decode pipeline sequentially over one pass of the stream,
/// calling `visit(actorCostVector)` per MCU. Returns decoded frames.
struct SequentialCosts {
  std::uint64_t vld = 0;
  std::uint64_t iqzz = 0;
  std::uint64_t idct = 0;
  std::uint64_t cc = 0;
  std::uint64_t raster = 0;
};

std::vector<Frame> decodeSequentially(const std::vector<std::uint8_t>& stream,
                                      std::size_t maxFrames, MjpegWcets* maxCosts,
                                      MjpegWcets* avgCosts = nullptr) {
  VldBehavior vld{stream};
  IqzzBehavior iqzz;
  IdctBehavior idct;
  CcBehavior cc;
  RasterBehavior raster;
  raster.setMaxFrames(maxFrames == 0 ? 1024 : maxFrames);

  // Total MCUs in one pass of the stream: walk the frame headers.
  std::size_t totalMcus = 0;
  std::size_t totalFrames = 0;
  for (std::size_t offset = 0; offset + 11 <= stream.size();) {
    if (stream[offset] != kFrameMarker) {
      throw Error("decodeSequentially: bad frame marker");
    }
    FrameHeader header;
    header.width = loadU16(stream.data() + offset + 1);
    header.height = loadU16(stream.data() + offset + 3);
    header.sampling = static_cast<Sampling>(stream[offset + 5]);
    header.quality = stream[offset + 6];
    const std::size_t payload = static_cast<std::size_t>(stream[offset + 7]) |
                                (static_cast<std::size_t>(stream[offset + 8]) << 8) |
                                (static_cast<std::size_t>(stream[offset + 9]) << 16) |
                                (static_cast<std::size_t>(stream[offset + 10]) << 24);
    totalMcus += header.mcusPerFrame();
    ++totalFrames;
    offset += 11 + payload;
    if (maxFrames != 0 && totalFrames >= maxFrames) {
      break;
    }
  }

  for (std::size_t m = 0; m < totalMcus; ++m) {
    sim::FiringData vldData;
    vldData.outputs.assign(3, {});
    vldData.outputs[0].assign(kBlockRate, sim::Token(kBlockTokenSize, 0));
    vldData.outputs[1].assign(1, sim::Token(kHeaderTokenSize, 0));
    vldData.outputs[2].assign(1, sim::Token(kHeaderTokenSize, 0));
    const std::uint64_t vldCycles = vld.fire(vldData);

    std::vector<sim::Token> spatialBlocks;
    std::uint64_t iqzzMax = 0;
    std::uint64_t idctMax = 0;
    std::uint64_t iqzzTotal = 0;
    std::uint64_t idctTotal = 0;
    for (std::uint32_t b = 0; b < kBlockRate; ++b) {
      sim::FiringData iqzzData;
      iqzzData.inputs.assign(1, {vldData.outputs[0][b]});
      iqzzData.outputs.assign(1, std::vector<sim::Token>(1, sim::Token(kBlockTokenSize, 0)));
      const std::uint64_t iqzzCycles = iqzz.fire(iqzzData);
      iqzzMax = std::max(iqzzMax, iqzzCycles);
      iqzzTotal += iqzzCycles;

      sim::FiringData idctData;
      idctData.inputs.assign(1, {iqzzData.outputs[0][0]});
      idctData.outputs.assign(1, std::vector<sim::Token>(1, sim::Token(kBlockTokenSize, 0)));
      const std::uint64_t idctCycles = idct.fire(idctData);
      idctMax = std::max(idctMax, idctCycles);
      idctTotal += idctCycles;
      spatialBlocks.push_back(idctData.outputs[0][0]);
    }

    sim::FiringData ccData;
    ccData.inputs.assign(2, {});
    ccData.inputs[0] = std::move(spatialBlocks);
    ccData.inputs[1] = {vldData.outputs[1][0]};
    ccData.outputs.assign(1, std::vector<sim::Token>(1, sim::Token(kMcuTokenSize, 0)));
    const std::uint64_t ccCycles = cc.fire(ccData);

    sim::FiringData rasterData;
    rasterData.inputs.assign(2, {});
    rasterData.inputs[0] = {ccData.outputs[0][0]};
    rasterData.inputs[1] = {vldData.outputs[2][0]};
    const std::uint64_t rasterCycles = raster.fire(rasterData);

    if (maxCosts != nullptr) {
      maxCosts->vld = std::max(maxCosts->vld, vldCycles);
      maxCosts->iqzz = std::max(maxCosts->iqzz, iqzzMax);
      maxCosts->idct = std::max(maxCosts->idct, idctMax);
      maxCosts->cc = std::max(maxCosts->cc, ccCycles);
      maxCosts->raster = std::max(maxCosts->raster, rasterCycles);
    }
    if (avgCosts != nullptr) {
      avgCosts->vld += vldCycles;
      avgCosts->iqzz += iqzzTotal;
      avgCosts->idct += idctTotal;
      avgCosts->cc += ccCycles;
      avgCosts->raster += rasterCycles;
    }
  }
  if (avgCosts != nullptr && totalMcus > 0) {
    avgCosts->vld /= totalMcus;
    avgCosts->iqzz /= totalMcus * kBlockRate;
    avgCosts->idct /= totalMcus * kBlockRate;
    avgCosts->cc /= totalMcus;
    avgCosts->raster /= totalMcus;
  }
  return std::vector<Frame>(raster.frames());
}

}  // namespace

std::vector<Frame> referenceDecode(const std::vector<std::uint8_t>& stream,
                                   std::size_t maxFrames) {
  return decodeSequentially(stream, maxFrames, nullptr);
}

MjpegWcets measureCosts(const std::vector<std::uint8_t>& stream) {
  MjpegWcets costs;
  decodeSequentially(stream, 0, &costs);
  return costs;
}

MjpegWcets measureAverageCosts(const std::vector<std::uint8_t>& stream) {
  MjpegWcets avg;
  decodeSequentially(stream, 0, nullptr, &avg);
  return avg;
}

MjpegWcets calibrateWcets(const std::vector<std::uint8_t>& stream, std::uint32_t marginPercent) {
  MjpegWcets wcets = measureCosts(stream);
  const auto addMargin = [marginPercent](std::uint64_t v) {
    return v + (v * marginPercent + 99) / 100;
  };
  wcets.vld = addMargin(wcets.vld);
  wcets.iqzz = addMargin(wcets.iqzz);
  wcets.idct = addMargin(wcets.idct);
  wcets.cc = addMargin(wcets.cc);
  wcets.raster = addMargin(wcets.raster);
  return wcets;
}

}  // namespace mamps::mjpeg
