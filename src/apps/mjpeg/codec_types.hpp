// Shared types and token layouts of the MJPEG decoder application
// (Figure 5). One graph iteration decodes one MCU; all token sizes are
// fixed at their worst case, which is exactly the "modeling overhead"
// the paper discusses in Section 6.3 (the VLD always ships 10 block
// tokens, padding with dummy blocks when the sampling needs fewer).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/mjpeg/dct.hpp"
#include "support/error.hpp"

namespace mamps::mjpeg {

/// Chroma subsampling of a frame. Blocks per MCU: 3 / 4 / 6; the SDF
/// rate is always 10 (the JPEG limit), padded with dummy blocks.
enum class Sampling : std::uint8_t {
  Yuv444 = 0,  ///< 1 Y + Cb + Cr, MCU 8x8
  Yuv422 = 1,  ///< 2 Y + Cb + Cr, MCU 16x8
  Yuv420 = 2,  ///< 4 Y + Cb + Cr, MCU 16x16
  Yuv410 = 3,  ///< 8 Y + Cb + Cr, MCU 32x16 (the JPEG 10-block limit)
};

[[nodiscard]] constexpr std::uint32_t blocksPerMcu(Sampling s) {
  switch (s) {
    case Sampling::Yuv444: return 3;
    case Sampling::Yuv422: return 4;
    case Sampling::Yuv420: return 6;
    case Sampling::Yuv410: return 10;
  }
  return 0;
}

[[nodiscard]] constexpr std::uint32_t lumaBlocksPerMcu(Sampling s) {
  return blocksPerMcu(s) - 2;
}

[[nodiscard]] constexpr std::uint32_t mcuWidth(Sampling s) {
  if (s == Sampling::Yuv410) {
    return 32;
  }
  return s == Sampling::Yuv444 ? 8 : 16;
}

[[nodiscard]] constexpr std::uint32_t mcuHeight(Sampling s) {
  return (s == Sampling::Yuv420 || s == Sampling::Yuv410) ? 16 : 8;
}

/// The fixed SDF production rate of the VLD (10 blocks per MCU).
inline constexpr std::uint32_t kBlockRate = 10;

/// Block kinds carried in the first byte of a block token.
inline constexpr std::uint8_t kKindLuma = 0;
inline constexpr std::uint8_t kKindCb = 1;
inline constexpr std::uint8_t kKindCr = 2;
inline constexpr std::uint8_t kKindDummy = 0xff;

/// Token sizes (bytes).
inline constexpr std::uint32_t kBlockTokenSize = 4 + 64 * 2;  ///< kind, quality, pad, coef[64]
inline constexpr std::uint32_t kHeaderTokenSize = 8;          ///< width, height, sampling, quality
inline constexpr std::uint32_t kMcuTokenSize = 32 * 16 * 3;   ///< worst-case MCU RGB

/// An RGB frame (8-bit per channel, row-major).
struct Frame {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> rgb;  ///< width * height * 3

  Frame() = default;
  Frame(std::uint32_t w, std::uint32_t h) : width(w), height(h), rgb(w * h * 3, 0) {}
};

/// Per-frame stream header.
struct FrameHeader {
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  Sampling sampling = Sampling::Yuv420;
  std::uint8_t quality = 50;

  [[nodiscard]] std::uint32_t mcusPerRow() const {
    return (width + mcuWidth(sampling) - 1) / mcuWidth(sampling);
  }
  [[nodiscard]] std::uint32_t mcusPerCol() const {
    return (height + mcuHeight(sampling) - 1) / mcuHeight(sampling);
  }
  [[nodiscard]] std::uint32_t mcusPerFrame() const { return mcusPerRow() * mcusPerCol(); }
};

// --- Token (de)serialization helpers -----------------------------------

inline void storeU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline std::uint16_t loadU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

/// Pack a coefficient/sample block into a block token.
void packBlockToken(std::uint8_t* token, std::uint8_t kind, std::uint8_t quality,
                    const Block& block);

/// Unpack a block token.
void unpackBlockToken(const std::uint8_t* token, std::uint8_t& kind, std::uint8_t& quality,
                      Block& block);

/// Pack/unpack the sub-header tokens (frame geometry forwarded from the
/// file header to CC and Raster, Section 6).
void packHeaderToken(std::uint8_t* token, const FrameHeader& header, std::uint16_t mcuIndex);
void unpackHeaderToken(const std::uint8_t* token, FrameHeader& header, std::uint16_t& mcuIndex);

// --- Color conversion ----------------------------------------------------

/// BT.601 integer RGB -> YCbCr (full range, level-shifted Y in [-128,127]).
void rgbToYcbcr(std::uint8_t r, std::uint8_t g, std::uint8_t b, std::int16_t& y,
                std::int16_t& cb, std::int16_t& cr);

/// BT.601 integer YCbCr -> RGB (inputs level-shifted as produced above).
void ycbcrToRgb(std::int16_t y, std::int16_t cb, std::int16_t cr, std::uint8_t& r,
                std::uint8_t& g, std::uint8_t& b);

}  // namespace mamps::mjpeg
