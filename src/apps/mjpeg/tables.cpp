#include "apps/mjpeg/tables.hpp"

#include <algorithm>

namespace mamps::mjpeg {

const std::array<std::uint8_t, 64> kZigzagOrder = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

const std::array<std::uint8_t, 64> kLumaQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

const std::array<std::uint8_t, 64> kChromaQuant = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

std::array<std::uint16_t, 64> scaledQuantTable(const std::array<std::uint8_t, 64>& base,
                                               int quality) {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<std::uint16_t, 64> out{};
  for (std::size_t i = 0; i < 64; ++i) {
    const int q = (base[i] * scale + 50) / 100;
    out[i] = static_cast<std::uint16_t>(std::clamp(q, 1, 255));
  }
  return out;
}

HuffmanTable::HuffmanTable(const std::array<std::uint8_t, 16>& bits,
                           std::vector<std::uint8_t> values)
    : values_(std::move(values)) {
  // Canonical code assignment (JPEG Annex C).
  std::uint16_t code = 0;
  std::size_t k = 0;
  minCode_.fill(0);
  maxCode_.fill(-1);
  valPtr_.fill(0);
  for (int length = 1; length <= 16; ++length) {
    const std::uint8_t count = bits[static_cast<std::size_t>(length - 1)];
    if (count != 0) {
      valPtr_[length] = static_cast<int>(k);
      minCode_[length] = code;
      for (std::uint8_t i = 0; i < count; ++i) {
        if (k >= values_.size()) {
          throw Error("HuffmanTable: BITS/HUFFVAL mismatch");
        }
        const std::uint8_t symbol = values_[k];
        encodeLut_[symbol] = Code{code, static_cast<std::uint8_t>(length)};
        hasCode_[symbol] = true;
        ++code;
        ++k;
      }
      maxCode_[length] = code - 1;
    }
    code = static_cast<std::uint16_t>(code << 1);
  }
  if (k != values_.size()) {
    throw Error("HuffmanTable: unused HUFFVAL entries");
  }
}

HuffmanTable::Code HuffmanTable::encode(std::uint8_t symbol) const {
  if (!hasCode_[symbol]) {
    throw Error("HuffmanTable: symbol has no code: " + std::to_string(symbol));
  }
  return encodeLut_[symbol];
}

namespace {

HuffmanTable makeLumaDc() {
  return HuffmanTable({0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
                      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
}

HuffmanTable makeChromaDc() {
  return HuffmanTable({0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0},
                      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
}

HuffmanTable makeLumaAc() {
  return HuffmanTable(
      {0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 125},
      {0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51,
       0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08, 0x23, 0x42, 0xb1, 0xc1,
       0x15, 0x52, 0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16, 0x17, 0x18,
       0x19, 0x1a, 0x25, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
       0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57,
       0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75,
       0x76, 0x77, 0x78, 0x79, 0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92,
       0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
       0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3,
       0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8,
       0xd9, 0xda, 0xe1, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2,
       0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa});
}

HuffmanTable makeChromaAc() {
  return HuffmanTable(
      {0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 119},
      {0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07,
       0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xa1, 0xb1, 0xc1, 0x09,
       0x23, 0x33, 0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25,
       0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38,
       0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56,
       0x57, 0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74,
       0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
       0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5,
       0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba,
       0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6,
       0xd7, 0xd8, 0xd9, 0xda, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2,
       0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa});
}

}  // namespace

const HuffmanTable& lumaDcTable() {
  static const HuffmanTable table = makeLumaDc();
  return table;
}

const HuffmanTable& lumaAcTable() {
  static const HuffmanTable table = makeLumaAc();
  return table;
}

const HuffmanTable& chromaDcTable() {
  static const HuffmanTable table = makeChromaDc();
  return table;
}

const HuffmanTable& chromaAcTable() {
  static const HuffmanTable table = makeChromaAc();
  return table;
}

std::uint8_t magnitudeCategory(int value) {
  std::uint32_t magnitude = static_cast<std::uint32_t>(value < 0 ? -value : value);
  std::uint8_t category = 0;
  while (magnitude != 0) {
    magnitude >>= 1;
    ++category;
  }
  return category;
}

std::uint32_t magnitudeBits(int value, std::uint8_t category) {
  if (category == 0) {
    return 0;
  }
  if (value < 0) {
    return static_cast<std::uint32_t>(value + (1 << category) - 1);
  }
  return static_cast<std::uint32_t>(value);
}

int extendMagnitude(std::uint32_t bits, std::uint8_t category) {
  if (category == 0) {
    return 0;
  }
  const std::uint32_t half = 1u << (category - 1);
  if (bits < half) {
    return static_cast<int>(bits) - (1 << category) + 1;
  }
  return static_cast<int>(bits);
}

}  // namespace mamps::mjpeg
