// Execution-time cost models of the MJPEG actors.
//
// Each function returns the cycle count of one firing on a Microblaze
// tile as a deterministic function of the work performed; the constants
// are calibrated to land the platform in the throughput range Figure 6
// reports (around one MCU per million cycles end to end). WCETs are
// obtained the way the paper does it — "a method based on [4] combined
// with execution time measurement" (Section 6) — by profiling a
// worst-case (synthetic random) calibration stream and adding a safety
// margin (see calibrateWcets in actors.hpp).
#pragma once

#include <cstdint>

namespace mamps::mjpeg {

/// VLD: per-MCU header/bitstream parsing plus per-block decode effort.
/// `bits` = entropy-coded bits consumed, `codedBlocks` = non-dummy blocks.
[[nodiscard]] std::uint64_t vldCost(std::uint64_t bits, std::uint32_t codedBlocks);

/// IQZZ: inverse quantization + zig-zag reorder of one block token.
[[nodiscard]] std::uint64_t iqzzCost(bool dummy);

/// IDCT: row/column IDCT with zero-row skipping: cost grows with the
/// number of non-zero input coefficients.
[[nodiscard]] std::uint64_t idctCost(bool dummy, std::uint32_t nonZero);

/// CC: chroma upsampling + YCbCr->RGB for one MCU of `pixels` pixels.
[[nodiscard]] std::uint64_t ccCost(std::uint32_t pixels);

/// Raster: placing one MCU of `pixels` pixels into the frame buffer.
[[nodiscard]] std::uint64_t rasterCost(std::uint32_t pixels);

}  // namespace mamps::mjpeg
