#include "apps/mjpeg/cost_model.hpp"

namespace mamps::mjpeg {

// Microblaze-flavoured constants: no FPU, single-issue, slow shifts.
// The bottleneck tile (IQZZ + IDCT) ends up near 600k-900k cycles per
// 4:2:0 MCU, i.e. roughly one MCU per MHz per second as in Figure 6.

std::uint64_t vldCost(std::uint64_t bits, std::uint32_t codedBlocks) {
  // Header bookkeeping + per-block setup + ~40 cycles per decoded bit
  // (bit extraction, canonical code walk, magnitude extension).
  return 8000 + 5000ULL * codedBlocks + 40 * bits;
}

std::uint64_t iqzzCost(bool dummy) {
  // 64 multiply + reorder iterations; dummies are recognized from the
  // token header and passed through.
  return dummy ? 600 : 2000 + 90ULL * 64;
}

std::uint64_t idctCost(bool dummy, std::uint32_t nonZero) {
  // Row/column decomposition with zero-coefficient early exit: a large
  // fixed pass (the column transform touches every sample) plus work
  // proportional to the populated coefficients.
  return dummy ? 800 : 58000 + 750ULL * nonZero;
}

std::uint64_t ccCost(std::uint32_t pixels) {
  // Upsampling + 3x3 integer matrix per pixel.
  return 8000 + 300ULL * pixels;
}

std::uint64_t rasterCost(std::uint32_t pixels) {
  // Scatter copy into the frame buffer.
  return 2500 + 60ULL * pixels;
}

}  // namespace mamps::mjpeg
