#include "apps/mjpeg/encoder.hpp"

#include <algorithm>

#include "apps/mjpeg/bitio.hpp"
#include "apps/mjpeg/tables.hpp"

namespace mamps::mjpeg {

namespace {

constexpr std::uint8_t kFrameMarker = 0xa5;

/// Sample the (possibly subsampled) chroma plane of one MCU.
void extractChromaBlock(const Frame& frame, const FrameHeader& header, std::uint32_t mcuX,
                        std::uint32_t mcuY, bool isCb, std::array<std::int16_t, 64>& block) {
  const std::uint32_t mw = mcuWidth(header.sampling);
  const std::uint32_t mh = mcuHeight(header.sampling);
  const std::uint32_t subX = mw / 8;  // horizontal subsampling factor
  const std::uint32_t subY = mh / 8;  // vertical subsampling factor
  for (std::uint32_t by = 0; by < 8; ++by) {
    for (std::uint32_t bx = 0; bx < 8; ++bx) {
      // Average the subX x subY pixel group.
      std::int32_t acc = 0;
      std::uint32_t count = 0;
      for (std::uint32_t dy = 0; dy < subY; ++dy) {
        for (std::uint32_t dx = 0; dx < subX; ++dx) {
          const std::uint32_t px =
              std::min(mcuX * mw + bx * subX + dx, frame.width - 1);
          const std::uint32_t py =
              std::min(mcuY * mh + by * subY + dy, frame.height - 1);
          const std::uint8_t* rgb = &frame.rgb[(py * frame.width + px) * 3];
          std::int16_t y = 0;
          std::int16_t cb = 0;
          std::int16_t cr = 0;
          rgbToYcbcr(rgb[0], rgb[1], rgb[2], y, cb, cr);
          acc += isCb ? cb : cr;
          ++count;
        }
      }
      block[by * 8 + bx] = static_cast<std::int16_t>(acc / static_cast<std::int32_t>(count));
    }
  }
}

void writeHeader(std::vector<std::uint8_t>& out, const FrameHeader& header) {
  out.push_back(kFrameMarker);
  out.push_back(static_cast<std::uint8_t>(header.width & 0xff));
  out.push_back(static_cast<std::uint8_t>(header.width >> 8));
  out.push_back(static_cast<std::uint8_t>(header.height & 0xff));
  out.push_back(static_cast<std::uint8_t>(header.height >> 8));
  out.push_back(static_cast<std::uint8_t>(header.sampling));
  out.push_back(header.quality);
}

/// Huffman-encode one quantized, zig-zagged block.
void encodeBlock(BitWriter& writer, const std::array<std::int16_t, 64>& zz, bool isLuma,
                 int& dcPredictor) {
  const HuffmanTable& dc = isLuma ? lumaDcTable() : chromaDcTable();
  const HuffmanTable& ac = isLuma ? lumaAcTable() : chromaAcTable();

  const int diff = zz[0] - dcPredictor;
  dcPredictor = zz[0];
  const std::uint8_t dcCat = magnitudeCategory(diff);
  const auto dcCode = dc.encode(dcCat);
  writer.putBits(dcCode.code, dcCode.length);
  writer.putBits(magnitudeBits(diff, dcCat), dcCat);

  int run = 0;
  for (int k = 1; k < 64; ++k) {
    if (zz[static_cast<std::size_t>(k)] == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      const auto zrl = ac.encode(0xf0);
      writer.putBits(zrl.code, zrl.length);
      run -= 16;
    }
    const int value = zz[static_cast<std::size_t>(k)];
    const std::uint8_t cat = magnitudeCategory(value);
    const auto code = ac.encode(static_cast<std::uint8_t>((run << 4) | cat));
    writer.putBits(code.code, code.length);
    writer.putBits(magnitudeBits(value, cat), cat);
    run = 0;
  }
  if (run > 0) {
    const auto eob = ac.encode(0x00);
    writer.putBits(eob.code, eob.length);
  }
}

}  // namespace

void extractMcuBlocks(const Frame& frame, const FrameHeader& header, std::uint32_t mcuX,
                      std::uint32_t mcuY, std::vector<std::array<std::int16_t, 64>>& blocks) {
  blocks.clear();
  const std::uint32_t lumaBlocks = lumaBlocksPerMcu(header.sampling);
  const std::uint32_t mw = mcuWidth(header.sampling);
  const std::uint32_t lumaCols = mw / 8;  // luma blocks per MCU row

  for (std::uint32_t lb = 0; lb < lumaBlocks; ++lb) {
    std::array<std::int16_t, 64> block{};
    const std::uint32_t originX = mcuX * mw + (lb % lumaCols) * 8;
    const std::uint32_t originY = mcuY * mcuHeight(header.sampling) + (lb / lumaCols) * 8;
    for (std::uint32_t by = 0; by < 8; ++by) {
      for (std::uint32_t bx = 0; bx < 8; ++bx) {
        const std::uint32_t px = std::min(originX + bx, frame.width - 1);
        const std::uint32_t py = std::min(originY + by, frame.height - 1);
        const std::uint8_t* rgb = &frame.rgb[(py * frame.width + px) * 3];
        std::int16_t y = 0;
        std::int16_t cb = 0;
        std::int16_t cr = 0;
        rgbToYcbcr(rgb[0], rgb[1], rgb[2], y, cb, cr);
        block[by * 8 + bx] = y;
      }
    }
    blocks.push_back(block);
  }
  std::array<std::int16_t, 64> cb{};
  extractChromaBlock(frame, header, mcuX, mcuY, /*isCb=*/true, cb);
  blocks.push_back(cb);
  std::array<std::int16_t, 64> cr{};
  extractChromaBlock(frame, header, mcuX, mcuY, /*isCb=*/false, cr);
  blocks.push_back(cr);
}

std::vector<std::uint8_t> encodeSequence(const std::vector<Frame>& frames,
                                         const EncoderOptions& options) {
  if (frames.empty()) {
    throw Error("encodeSequence: no frames");
  }
  std::vector<std::uint8_t> out;
  const auto lumaTable = scaledQuantTable(kLumaQuant, options.quality);
  const auto chromaTable = scaledQuantTable(kChromaQuant, options.quality);

  for (const Frame& frame : frames) {
    if (frame.width == 0 || frame.height == 0 || frame.rgb.size() != frame.width * frame.height * 3) {
      throw Error("encodeSequence: malformed frame");
    }
    FrameHeader header;
    header.width = static_cast<std::uint16_t>(frame.width);
    header.height = static_cast<std::uint16_t>(frame.height);
    header.sampling = options.sampling;
    header.quality = options.quality;
    writeHeader(out, header);

    BitWriter writer;
    int dcY = 0;
    int dcCb = 0;
    int dcCr = 0;
    std::vector<std::array<std::int16_t, 64>> blocks;
    const std::uint32_t lumaBlocks = lumaBlocksPerMcu(header.sampling);
    for (std::uint32_t my = 0; my < header.mcusPerCol(); ++my) {
      for (std::uint32_t mx = 0; mx < header.mcusPerRow(); ++mx) {
        extractMcuBlocks(frame, header, mx, my, blocks);
        for (std::size_t b = 0; b < blocks.size(); ++b) {
          const bool isLuma = b < lumaBlocks;
          const bool isCb = b == lumaBlocks;
          // FDCT + quantize + zig-zag.
          Block freq{};
          forwardDct(blocks[b], freq);
          const auto& quant = isLuma ? lumaTable : chromaTable;
          std::array<std::int16_t, 64> zz{};
          for (std::size_t k = 0; k < 64; ++k) {
            const std::size_t raster = kZigzagOrder[k];
            const int q = quant[raster];
            const int coefficient = freq[raster];
            zz[k] = static_cast<std::int16_t>(
                coefficient >= 0 ? (coefficient + q / 2) / q : -((-coefficient + q / 2) / q));
          }
          int& predictor = isLuma ? dcY : (isCb ? dcCb : dcCr);
          encodeBlock(writer, zz, isLuma, predictor);
        }
      }
    }
    const std::vector<std::uint8_t> payload = writer.finish();
    // Payload length so the VLD can jump frame to frame.
    out.push_back(static_cast<std::uint8_t>(payload.size() & 0xff));
    out.push_back(static_cast<std::uint8_t>((payload.size() >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((payload.size() >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((payload.size() >> 24) & 0xff));
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

}  // namespace mamps::mjpeg
