#include "apps/mjpeg/codec_types.hpp"

#include <algorithm>

namespace mamps::mjpeg {

void packBlockToken(std::uint8_t* token, std::uint8_t kind, std::uint8_t quality,
                    const Block& block) {
  token[0] = kind;
  token[1] = quality;
  token[2] = 0;
  token[3] = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    storeU16(token + 4 + i * 2, static_cast<std::uint16_t>(block[i]));
  }
}

void unpackBlockToken(const std::uint8_t* token, std::uint8_t& kind, std::uint8_t& quality,
                      Block& block) {
  kind = token[0];
  quality = token[1];
  for (std::size_t i = 0; i < 64; ++i) {
    block[i] = static_cast<std::int16_t>(loadU16(token + 4 + i * 2));
  }
}

void packHeaderToken(std::uint8_t* token, const FrameHeader& header, std::uint16_t mcuIndex) {
  storeU16(token, header.width);
  storeU16(token + 2, header.height);
  token[4] = static_cast<std::uint8_t>(header.sampling);
  token[5] = header.quality;
  storeU16(token + 6, mcuIndex);
}

void unpackHeaderToken(const std::uint8_t* token, FrameHeader& header, std::uint16_t& mcuIndex) {
  header.width = loadU16(token);
  header.height = loadU16(token + 2);
  header.sampling = static_cast<Sampling>(token[4]);
  header.quality = token[5];
  mcuIndex = loadU16(token + 6);
}

void rgbToYcbcr(std::uint8_t r, std::uint8_t g, std::uint8_t b, std::int16_t& y,
                std::int16_t& cb, std::int16_t& cr) {
  // BT.601 full range, 16-bit fixed point.
  const std::int32_t ri = r;
  const std::int32_t gi = g;
  const std::int32_t bi = b;
  y = static_cast<std::int16_t>(((19595 * ri + 38470 * gi + 7471 * bi) >> 16) - 128);
  cb = static_cast<std::int16_t>((-11059 * ri - 21709 * gi + 32768 * bi) >> 16);
  cr = static_cast<std::int16_t>((32768 * ri - 27439 * gi - 5329 * bi) >> 16);
}

void ycbcrToRgb(std::int16_t y, std::int16_t cb, std::int16_t cr, std::uint8_t& r,
                std::uint8_t& g, std::uint8_t& b) {
  const std::int32_t yi = y + 128;
  const std::int32_t cbi = cb;
  const std::int32_t cri = cr;
  const std::int32_t ri = yi + ((91881 * cri) >> 16);
  const std::int32_t gi = yi - ((22554 * cbi + 46802 * cri) >> 16);
  const std::int32_t bi = yi + ((116130 * cbi) >> 16);
  r = static_cast<std::uint8_t>(std::clamp(ri, 0, 255));
  g = static_cast<std::uint8_t>(std::clamp(gi, 0, 255));
  b = static_cast<std::uint8_t>(std::clamp(bi, 0, 255));
}

}  // namespace mamps::mjpeg
