#include "apps/mjpeg/dct.hpp"

#include <algorithm>
#include <cmath>

namespace mamps::mjpeg {
namespace {

// cos((2x+1) u pi / 16) * sqrt(2/8) * (u==0 ? 1/sqrt(2) : 1), scaled by
// 2^13. Shared by both transform directions.
struct CosTable {
  std::array<std::array<std::int32_t, 8>, 8> c{};  // [u][x]

  CosTable() {
    for (int u = 0; u < 8; ++u) {
      const double cu = (u == 0) ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < 8; ++x) {
        const double value =
            0.5 * cu * std::cos((2.0 * x + 1.0) * u * 3.14159265358979323846 / 16.0);
        c[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)] =
            static_cast<std::int32_t>(std::lround(value * 8192.0));
      }
    }
  }
};

const CosTable& cosTable() {
  static const CosTable table;
  return table;
}

}  // namespace

void forwardDct(const std::array<std::int16_t, 64>& spatial, Block& freq) {
  const auto& c = cosTable().c;
  // Rows then columns, keeping 13-bit precision between passes.
  std::array<std::int32_t, 64> tmp{};
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      std::int64_t acc = 0;
      for (int x = 0; x < 8; ++x) {
        acc += static_cast<std::int64_t>(spatial[static_cast<std::size_t>(y * 8 + x)]) *
               c[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      tmp[static_cast<std::size_t>(y * 8 + u)] =
          static_cast<std::int32_t>((acc + (1 << 9)) >> 10);
    }
  }
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      std::int64_t acc = 0;
      for (int y = 0; y < 8; ++y) {
        acc += static_cast<std::int64_t>(tmp[static_cast<std::size_t>(y * 8 + u)]) *
               c[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      // Undo the two 13-bit scalings: >>10 above leaves 3 extra bits;
      // total shift 13 + 3 = 16.
      const std::int64_t value = (acc + (1 << 15)) >> 16;
      freq[static_cast<std::size_t>(v * 8 + u)] =
          static_cast<std::int16_t>(std::clamp<std::int64_t>(value, -2048, 2047));
    }
  }
}

void inverseDct(const Block& freq, std::array<std::int16_t, 64>& spatial) {
  const auto& c = cosTable().c;
  std::array<std::int32_t, 64> tmp{};
  // Columns first: for each column u, samples(y) = sum_v C(v,y) F(v,u).
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      std::int64_t acc = 0;
      for (int v = 0; v < 8; ++v) {
        acc += static_cast<std::int64_t>(freq[static_cast<std::size_t>(v * 8 + u)]) *
               c[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      tmp[static_cast<std::size_t>(y * 8 + u)] =
          static_cast<std::int32_t>((acc + (1 << 9)) >> 10);
    }
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      std::int64_t acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += static_cast<std::int64_t>(tmp[static_cast<std::size_t>(y * 8 + u)]) *
               c[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      const std::int64_t value = (acc + (1 << 15)) >> 16;
      spatial[static_cast<std::size_t>(y * 8 + x)] =
          static_cast<std::int16_t>(std::clamp<std::int64_t>(value, -256, 255));
    }
  }
}

std::uint32_t nonZeroCount(const Block& freq) {
  std::uint32_t count = 0;
  for (const std::int16_t v : freq) {
    count += (v != 0) ? 1 : 0;
  }
  return count;
}

void inverseDctReference(const Block& freq, std::array<double, 64>& spatial) {
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0;
      for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
          const double cu = (u == 0) ? 1.0 / std::sqrt(2.0) : 1.0;
          const double cv = (v == 0) ? 1.0 / std::sqrt(2.0) : 1.0;
          acc += 0.25 * cu * cv * freq[static_cast<std::size_t>(v * 8 + u)] *
                 std::cos((2 * x + 1) * u * 3.14159265358979323846 / 16.0) *
                 std::cos((2 * y + 1) * v * 3.14159265358979323846 / 16.0);
        }
      }
      spatial[static_cast<std::size_t>(y * 8 + x)] = acc;
    }
  }
}

}  // namespace mamps::mjpeg
