// The MJPEG encoder: produces the bitstreams the decoder case study
// consumes. Baseline-JPEG-style coding (FDCT, quantization, zig-zag,
// DC prediction, AC run-length + standard Huffman tables) in a minimal
// frame container.
//
// The paper uses five recorded test sequences plus one synthetic random
// sequence; this encoder generates the equivalent synthetic corpus (see
// testdata.hpp).
#pragma once

#include <vector>

#include "apps/mjpeg/codec_types.hpp"

namespace mamps::mjpeg {

struct EncoderOptions {
  Sampling sampling = Sampling::Yuv420;
  std::uint8_t quality = 50;  ///< 1..100
};

/// Encode a sequence of frames into one bitstream. All frames must have
/// the same dimensions; dimensions are padded up to whole MCUs.
[[nodiscard]] std::vector<std::uint8_t> encodeSequence(const std::vector<Frame>& frames,
                                                       const EncoderOptions& options);

/// Decode the stream with the plain (non-dataflow) reference decoder.
/// This is the golden model the platform-simulated decoder is checked
/// against. Decodes at most `maxFrames` frames (0 = all).
[[nodiscard]] std::vector<Frame> referenceDecode(const std::vector<std::uint8_t>& stream,
                                                 std::size_t maxFrames = 0);

/// Convert a frame's MCU at (mcuX, mcuY) into level-shifted YCbCr blocks
/// in the block order of the stream (Y blocks, Cb, Cr). Shared between
/// the encoder and the tests.
void extractMcuBlocks(const Frame& frame, const FrameHeader& header, std::uint32_t mcuX,
                      std::uint32_t mcuY, std::vector<std::array<std::int16_t, 64>>& blocks);

}  // namespace mamps::mjpeg
