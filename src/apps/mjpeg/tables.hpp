// JPEG baseline tables: zig-zag order, quantization matrices, and the
// standard Huffman tables of ISO/IEC 10918-1 Annex K.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace mamps::mjpeg {

/// Zig-zag scan order: zigzagOrder[k] is the raster index of the k-th
/// coefficient in zig-zag order.
extern const std::array<std::uint8_t, 64> kZigzagOrder;

/// Annex K luminance/chrominance quantization tables (raster order).
extern const std::array<std::uint8_t, 64> kLumaQuant;
extern const std::array<std::uint8_t, 64> kChromaQuant;

/// Scale a base table by JPEG quality (1..100, 50 = unscaled).
[[nodiscard]] std::array<std::uint16_t, 64> scaledQuantTable(const std::array<std::uint8_t, 64>& base,
                                                             int quality);

/// A canonical Huffman table built from the JPEG (BITS, HUFFVAL) spec.
class HuffmanTable {
 public:
  /// `bits[i]` = number of codes of length i+1 (i in 0..15); `values` =
  /// the symbol for each code in order.
  HuffmanTable(const std::array<std::uint8_t, 16>& bits, std::vector<std::uint8_t> values);

  struct Code {
    std::uint16_t code = 0;
    std::uint8_t length = 0;
  };

  /// Encoding lookup; throws for symbols without a code.
  [[nodiscard]] Code encode(std::uint8_t symbol) const;

  /// Canonical decoding state for use with a BitReader: feed bits one at
  /// a time through decodeStep until it returns a symbol.
  /// Returns the decoded symbol. Template-free helper:
  template <typename BitSource>
  [[nodiscard]] std::uint8_t decode(BitSource& reader) const {
    std::int32_t code = 0;
    for (int length = 1; length <= 16; ++length) {
      code = (code << 1) | (reader.getBit() ? 1 : 0);
      if (maxCode_[length] >= 0 && code <= maxCode_[length]) {
        const int index = valPtr_[length] + (code - minCode_[length]);
        return values_[static_cast<std::size_t>(index)];
      }
    }
    throw Error("HuffmanTable: invalid code in stream");
  }

 private:
  std::vector<std::uint8_t> values_;
  std::array<Code, 256> encodeLut_{};
  std::array<bool, 256> hasCode_{};
  std::array<std::int32_t, 17> minCode_{};
  std::array<std::int32_t, 17> maxCode_{};
  std::array<int, 17> valPtr_{};
};

/// The four standard tables.
[[nodiscard]] const HuffmanTable& lumaDcTable();
[[nodiscard]] const HuffmanTable& lumaAcTable();
[[nodiscard]] const HuffmanTable& chromaDcTable();
[[nodiscard]] const HuffmanTable& chromaAcTable();

/// JPEG magnitude category of a value (number of bits needed).
[[nodiscard]] std::uint8_t magnitudeCategory(int value);

/// The extra bits encoding a value within its category.
[[nodiscard]] std::uint32_t magnitudeBits(int value, std::uint8_t category);

/// Reconstruct a value from category + extra bits (JPEG EXTEND).
[[nodiscard]] int extendMagnitude(std::uint32_t bits, std::uint8_t category);

}  // namespace mamps::mjpeg
