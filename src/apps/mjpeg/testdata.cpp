#include "apps/mjpeg/testdata.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace mamps::mjpeg {

const std::vector<std::string>& testSequenceNames() {
  static const std::vector<std::string> names = {"gradient", "checker", "plasma", "blocks",
                                                 "stripes"};
  return names;
}

std::vector<Frame> makeTestSequence(const std::string& name, std::uint32_t frameCount,
                                    std::uint32_t width, std::uint32_t height) {
  std::vector<Frame> frames;
  frames.reserve(frameCount);
  Rng rng(0xBEEF);

  for (std::uint32_t f = 0; f < frameCount; ++f) {
    Frame frame(width, height);
    for (std::uint32_t y = 0; y < height; ++y) {
      for (std::uint32_t x = 0; x < width; ++x) {
        std::uint8_t* px = &frame.rgb[(y * width + x) * 3];
        if (name == "gradient") {
          // Smooth moving diagonal gradient: very low frequency content.
          px[0] = static_cast<std::uint8_t>((x * 2 + f * 4) & 0xff);
          px[1] = static_cast<std::uint8_t>((y * 2 + f * 2) & 0xff);
          px[2] = static_cast<std::uint8_t>((x + y) & 0xff);
        } else if (name == "checker") {
          // Hard-edged 8x8 checkerboard scrolling one pixel per frame.
          const bool on = (((x + f) / 8 + y / 8) % 2) == 0;
          px[0] = px[1] = px[2] = on ? 230 : 25;
        } else if (name == "plasma") {
          // Mid-frequency interference pattern.
          const double v = std::sin((x + 3.0 * f) * 0.18) + std::sin(y * 0.23) +
                           std::sin((x + y + 2.0 * f) * 0.11);
          const auto level = static_cast<std::uint8_t>(128 + 40 * v);
          px[0] = level;
          px[1] = static_cast<std::uint8_t>(255 - level);
          px[2] = static_cast<std::uint8_t>((level * 2) & 0xff);
        } else if (name == "blocks") {
          // Flat 16x16 color patches, re-randomized slowly: easy DC-only
          // content with occasional jumps.
          Rng patch(static_cast<std::uint64_t>(x / 16) * 131 + (y / 16) * 1009 + f / 4);
          px[0] = static_cast<std::uint8_t>(patch.range(0, 255));
          px[1] = static_cast<std::uint8_t>(patch.range(0, 255));
          px[2] = static_cast<std::uint8_t>(patch.range(0, 255));
        } else if (name == "stripes") {
          // High-frequency vertical stripes with light noise.
          const int base = (x % 2) == 0 ? 200 : 55;
          const int noise = static_cast<int>(rng.range(0, 30));
          px[0] = px[1] = px[2] = static_cast<std::uint8_t>(base + noise - 15);
        } else {
          throw Error("unknown test sequence: " + name);
        }
      }
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::vector<Frame> makeSyntheticSequence(std::uint32_t frameCount, std::uint32_t width,
                                         std::uint32_t height, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Frame> frames;
  frames.reserve(frameCount);
  for (std::uint32_t f = 0; f < frameCount; ++f) {
    Frame frame(width, height);
    for (auto& byte : frame.rgb) {
      byte = static_cast<std::uint8_t>(rng.range(0, 255));
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace mamps::mjpeg
