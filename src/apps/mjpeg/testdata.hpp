// Synthetic test material for the MJPEG case study.
//
// The paper evaluates on five recorded test sequences plus one synthetic
// sequence of random data (Section 6.1). Without the original footage we
// generate five deterministic "camera-like" sequences with distinct
// spectral character plus the pure-random synthetic sequence; together
// they span the execution-time variation that drives Figure 6.
#pragma once

#include <string>
#include <vector>

#include "apps/mjpeg/codec_types.hpp"

namespace mamps::mjpeg {

/// Names of the five test sequences.
[[nodiscard]] const std::vector<std::string>& testSequenceNames();

/// Generate frames of a named test sequence ("gradient", "checker",
/// "plasma", "blocks", "stripes") — deterministic for a given name.
[[nodiscard]] std::vector<Frame> makeTestSequence(const std::string& name,
                                                  std::uint32_t frameCount, std::uint32_t width,
                                                  std::uint32_t height);

/// The synthetic sequence: uniform random pixels (maximum entropy, the
/// worst case for the entropy decoder).
[[nodiscard]] std::vector<Frame> makeSyntheticSequence(std::uint32_t frameCount,
                                                       std::uint32_t width, std::uint32_t height,
                                                       std::uint64_t seed = 1);

}  // namespace mamps::mjpeg
