// The MJPEG decoder as an SDF application (Figure 5).
//
//   VLD --10--> IQZZ --1--> IDCT --10--> CC --1--> Raster
//    |                                   ^          ^
//    |---- subHeader1 -------------------'          |
//    |---- subHeader2 ------------------------------'
//   (vldState and rasterState are implicit self-edges with one token)
//
// One graph iteration decodes one MCU, so throughput is in MCUs per
// clock cycle (Section 6). The VLD's production rate is fixed at 10
// blocks (the JPEG worst case); samplings that need fewer blocks pad
// with dummy block tokens — the modeling overhead of Section 6.3.
#pragma once

#include <memory>

#include "apps/mjpeg/codec_types.hpp"
#include "apps/mjpeg/encoder.hpp"
#include "sdf/app_model.hpp"
#include "sim/platform_sim.hpp"

namespace mamps::mjpeg {

/// Worst-case execution times per actor (cycles per firing).
struct MjpegWcets {
  std::uint64_t vld = 0;
  std::uint64_t iqzz = 0;
  std::uint64_t idct = 0;
  std::uint64_t cc = 0;
  std::uint64_t raster = 0;
};

/// The application model plus handles to its actors and channels.
struct MjpegApp {
  sdf::ApplicationModel model;
  sdf::ActorId vld = 0;
  sdf::ActorId iqzz = 0;
  sdf::ActorId idct = 0;
  sdf::ActorId cc = 0;
  sdf::ActorId raster = 0;
  sdf::ChannelId vld2iqzz = 0;
  sdf::ChannelId iqzz2idct = 0;
  sdf::ChannelId idct2cc = 0;
  sdf::ChannelId cc2raster = 0;
  sdf::ChannelId subHeader1 = 0;
  sdf::ChannelId subHeader2 = 0;
  sdf::ChannelId vldState = 0;
  sdf::ChannelId rasterState = 0;
};

/// Build the Figure 5 application model with the given WCET metrics.
[[nodiscard]] MjpegApp buildMjpegApp(const MjpegWcets& wcets);

/// Raster behavior handle: exposes completed frames for verification.
class RasterBehavior;

/// Handles to the attached behaviors (owned by the PlatformSim).
struct MjpegBehaviors {
  RasterBehavior* raster = nullptr;  ///< completed-frame access
};

/// Attach functional behaviors decoding `stream` (looped endlessly) to a
/// platform simulation of `app`.
MjpegBehaviors attachMjpegBehaviors(sim::PlatformSim& simulator, const MjpegApp& app,
                                    std::vector<std::uint8_t> stream);

/// Measurement-based WCET estimation (Section 6: "a method based on [4]
/// combined with execution time measurement"): decode every MCU of the
/// calibration stream once, track the per-actor maxima, and add the
/// given safety margin (percent).
[[nodiscard]] MjpegWcets calibrateWcets(const std::vector<std::uint8_t>& stream,
                                        std::uint32_t marginPercent = 10);

/// Per-actor maximum observed firing cost over one pass of `stream`
/// (no margin) — the "execution time measurement" inputs for the
/// expected-throughput analysis of Figure 6.
[[nodiscard]] MjpegWcets measureCosts(const std::vector<std::uint8_t>& stream);

/// Per-actor *average* observed firing cost over one pass of `stream`;
/// the expected-throughput analysis of Section 6.1 uses these (the
/// long-term average throughput depends on mean, not peak, firing
/// times).
[[nodiscard]] MjpegWcets measureAverageCosts(const std::vector<std::uint8_t>& stream);

class RasterBehavior final : public sim::ActorBehavior {
 public:
  std::uint64_t fire(sim::FiringData& data) override;

  /// Frames completed so far (bounded history; oldest dropped).
  [[nodiscard]] const std::vector<Frame>& frames() const { return frames_; }
  void setMaxFrames(std::size_t n) { maxFrames_ = n; }

 private:
  Frame current_;
  std::vector<Frame> frames_;
  std::size_t maxFrames_ = 16;
};

}  // namespace mamps::mjpeg
