// Bit-level I/O for the MJPEG entropy coder (MSB-first, JPEG style).
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace mamps::mjpeg {

class BitWriter {
 public:
  void putBit(bool bit) {
    current_ = static_cast<std::uint8_t>((current_ << 1) | (bit ? 1 : 0));
    if (++fill_ == 8) {
      bytes_.push_back(current_);
      current_ = 0;
      fill_ = 0;
    }
  }

  /// Write the low `count` bits of `value`, most significant first.
  void putBits(std::uint32_t value, std::uint32_t count) {
    for (std::uint32_t i = count; i-- > 0;) {
      putBit(((value >> i) & 1u) != 0);
    }
  }

  /// Pad with 1-bits to a byte boundary (JPEG convention) and return
  /// the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish() {
    while (fill_ != 0) {
      putBit(true);
    }
    return std::move(bytes_);
  }

  [[nodiscard]] std::size_t bitCount() const { return bytes_.size() * 8 + fill_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  std::uint32_t fill_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] bool getBit() {
    if (pos_ >= size_ * 8) {
      throw Error("BitReader: read past end of stream");
    }
    const bool bit = ((data_[pos_ / 8] >> (7 - pos_ % 8)) & 1u) != 0;
    ++pos_;
    return bit;
  }

  [[nodiscard]] std::uint32_t getBits(std::uint32_t count) {
    std::uint32_t value = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      value = (value << 1) | (getBit() ? 1u : 0u);
    }
    return value;
  }

  [[nodiscard]] std::size_t bitPosition() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= size_ * 8; }
  /// Skip to the next byte boundary.
  void alignToByte() { pos_ = (pos_ + 7) / 8 * 8; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace mamps::mjpeg
