// Flat, arena-backed HSDF expansion for the MCR fast path.
//
// The throughput fast path used to materialize the HSDF expansion as a
// full sdf::Graph — tens of thousands of uniquely named actors and
// channels per analysis, rebuilt from strings for every design point.
// FlatExpansion produces the same expansion as contiguous index-based
// CycleRatioEdge tables instead: no graph object, no names, no
// per-element allocation. The layout mirrors sdf::toHsdf plus the
// static-order encoding of toHsdfWithStaticOrder exactly (both use the
// shared token rule sdf::hsdfTokenDependency, so the encodings cannot
// drift), and the solved maximum cycle ratio is bit-identical to the
// graph-materializing path (pinned by tests/perf_test.cpp).
//
// The table is split into an immutable prefix and mutable slabs:
// topology, rates, execution times, self-concurrency edges, and
// static-order chains are fixed for the lifetime of the expansion and
// encoded once in build(); every SDF channel owns a contiguous slab of
// token edges whose endpoints and delays depend on the channel's
// initial-token count, re-encoded in O(slab) by patchChannel() when a
// capacity changes. Both computeThroughputMcr() (build once, solve
// once) and IncrementalThroughput (build once, patch and re-solve per
// buffer-growth round) run on this structure.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "sdf/graph.hpp"

namespace mamps::analysis {

/// The HSDF expansion of a timed SDF graph as flat CycleRatioEdge
/// tables, with per-channel slabs that can be re-encoded in place when
/// initial-token counts change. See the header comment for the layout
/// contract.
class FlatExpansion {
 public:
  /// Encode the expansion of `timed` (channel token slabs, then
  /// self-concurrency edges, then static-order chains). The graph must
  /// be consistent; static orders, when given, must be exact (every
  /// bound actor appears exactly q[a] times on its own resource), which
  /// is what mcrFastPathApplicable() checks.
  /// @param timed the SDF graph with one execution time per actor
  /// @param resources optional binding and static orders (may be null)
  /// @throws AnalysisError when the graph is inconsistent or a static
  ///   order is not exact
  void build(const sdf::TimedGraph& timed, const ResourceConstraints* resources);

  /// Re-encode one channel's token slab after its initial-token count
  /// changed in `timed`. O(q[dst] * consRate) of the channel.
  /// @param timed the graph holding the channel's current token count
  ///   (must be the graph build() ran on, with only token counts changed)
  /// @param channel the changed channel
  void patchChannel(const sdf::TimedGraph& timed, sdf::ChannelId channel);

  /// Collapse parallel edges to the minimum-delay representative (all
  /// parallel edges share the source, hence the weight) into a reusable
  /// internal table — exactly the reduction the string-graph MCR path
  /// applies before Howard runs. The returned reference stays valid
  /// until the next collapse()/build() call.
  /// @return the collapsed edge table, ready for CycleRatioSolver
  [[nodiscard]] const std::vector<CycleRatioEdge>& collapse();

  /// Total firing copies of the expansion (the HSDF actor count).
  /// @return sum over actors of the repetition count
  [[nodiscard]] std::uint64_t hsdfActors() const { return hsdfActors_; }

 private:
  std::vector<std::uint64_t> q_;          ///< repetition vector
  std::vector<std::uint32_t> copyStart_;  ///< actor -> first firing copy
  std::uint64_t hsdfActors_ = 0;          ///< total firing copies
  std::vector<CycleRatioEdge> edges_;     ///< [channel slabs][self-conc][static order]
  std::vector<std::size_t> slabOffset_;   ///< channel -> offset into edges_
  std::vector<CycleRatioEdge> collapsed_;  ///< scratch: min-delay per pair
  // Collapse scratch: counting-sort buckets by source plus an
  // epoch-stamped slot table per target — O(E + V) with no hashing.
  std::vector<std::uint32_t> srcOff_;      ///< V+1 bucket offsets by edge source
  std::vector<std::uint32_t> srcIdx_;      ///< edge ids grouped by source
  std::vector<std::uint32_t> seenEpoch_;   ///< target -> last source epoch
  std::vector<std::uint32_t> seenSlot_;    ///< target -> collapsed_ index
};

}  // namespace mamps::analysis
