#include "analysis/flat_hsdf.hpp"

#include <algorithm>

#include "sdf/hsdf.hpp"
#include "sdf/repetition_vector.hpp"

namespace mamps::analysis {

using sdf::ActorId;
using sdf::Channel;
using sdf::ChannelId;

void FlatExpansion::build(const sdf::TimedGraph& timed, const ResourceConstraints* resources) {
  const sdf::Graph& g = timed.graph;
  if (timed.execTime.size() != g.actorCount()) {
    throw AnalysisError("FlatExpansion: execTime size does not match actor count");
  }
  const auto qOpt = sdf::computeRepetitionVector(g);
  if (!qOpt) {
    throw AnalysisError("FlatExpansion: graph '" + g.name() + "' is inconsistent");
  }
  q_ = *qOpt;

  copyStart_.resize(g.actorCount());
  hsdfActors_ = 0;
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    copyStart_[a] = static_cast<std::uint32_t>(hsdfActors_);
    hsdfActors_ += q_[a];
  }

  // Channel token slabs: one edge per token consumed within an
  // iteration. Slab extents depend only on rates and the repetition
  // vector, so they are immutable; the edges inside a slab depend on
  // the channel's initial tokens and are (re-)encoded by patchChannel.
  slabOffset_.assign(g.channelCount(), 0);
  std::size_t total = 0;
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    slabOffset_[c] = total;
    total += q_[g.channel(c).dst] * g.channel(c).consRate;
  }
  edges_.clear();
  edges_.resize(total);
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    patchChannel(timed, c);
  }

  // Self-concurrency constraints (see sdf::toHsdf): an actor with
  // finite limit k gets the expansion of a virtual rate-1 self-edge
  // carrying k tokens. These edges never change.
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    const std::uint64_t limit = timed.concurrencyLimit(a);
    if (limit == 0) {
      continue;
    }
    for (std::uint64_t j = 0; j < q_[a]; ++j) {
      const sdf::TokenDependency dep = sdf::hsdfTokenDependency(j, limit, 1, q_[a]);
      CycleRatioEdge e;
      e.from = copyStart_[a] + static_cast<std::uint32_t>(dep.srcCopy);
      e.to = copyStart_[a] + static_cast<std::uint32_t>(j);
      e.weight = static_cast<std::int64_t>(timed.execTime[a]);
      e.delay = static_cast<std::int64_t>(dep.delay);
      edges_.push_back(e);
    }
  }

  // Static-order chains (see toHsdfWithStaticOrder): the j-th
  // appearance of an actor is its firing copy j; consecutive
  // appearances are linked, the wrap-around edge carries one token.
  // The encoding is only exact when every bound actor appears exactly
  // q[a] times on its own resource — validated here, matching the
  // graph-materializing path's checks.
  if (resources != nullptr) {
    resources->validateFor(g);
    std::vector<std::uint64_t> appearance(g.actorCount(), 0);
    for (std::size_t r = 0; r < resources->staticOrder.size(); ++r) {
      const auto& order = resources->staticOrder[r];
      if (order.empty()) {
        continue;
      }
      std::fill(appearance.begin(), appearance.end(), 0);
      std::vector<std::uint32_t> chain;
      chain.reserve(order.size());
      for (const ActorId a : order) {
        if (resources->actorResource[a] != r) {
          throw AnalysisError("FlatExpansion: actor " + g.actor(a).name +
                              " is scheduled on a resource it is not bound to");
        }
        const std::uint64_t j = appearance[a]++;
        if (j >= q_[a]) {
          throw AnalysisError("FlatExpansion: actor " + g.actor(a).name +
                              " appears more often than its repetition count");
        }
        chain.push_back(copyStart_[a] + static_cast<std::uint32_t>(j));
      }
      for (ActorId a = 0; a < g.actorCount(); ++a) {
        if (resources->actorResource[a] == r && appearance[a] != q_[a]) {
          throw AnalysisError("FlatExpansion: actor " + g.actor(a).name + " appears " +
                              std::to_string(appearance[a]) +
                              " times in its static order, expected q = " +
                              std::to_string(q_[a]));
        }
      }
      for (std::size_t i = 0; i < chain.size(); ++i) {
        const std::size_t next = (i + 1) % chain.size();
        CycleRatioEdge e;
        e.from = chain[i];
        e.to = chain[next];
        e.weight = static_cast<std::int64_t>(timed.execTime[order[i]]);
        e.delay = (next == 0) ? 1 : 0;
        edges_.push_back(e);
      }
    }
  }
}

void FlatExpansion::patchChannel(const sdf::TimedGraph& timed, ChannelId channel) {
  // One edge per token consumed within an iteration, following the
  // shared token rule of the standard expansion (sdf::
  // hsdfTokenDependency — the same function sdf::toHsdf uses, so the
  // flat table cannot drift from the from-scratch encoding).
  const Channel& ch = timed.graph.channel(channel);
  const std::uint64_t cons = ch.consRate;
  const std::uint64_t qDst = q_[ch.dst];
  const auto weight = static_cast<std::int64_t>(timed.execTime[ch.src]);
  std::size_t slot = slabOffset_[channel];
  for (std::uint64_t j = 0; j < qDst; ++j) {
    for (std::uint64_t k = 0; k < cons; ++k) {
      const sdf::TokenDependency dep =
          sdf::hsdfTokenDependency(j * cons + k, ch.initialTokens, ch.prodRate, q_[ch.src]);
      CycleRatioEdge& e = edges_[slot++];
      e.from = copyStart_[ch.src] + static_cast<std::uint32_t>(dep.srcCopy);
      e.to = copyStart_[ch.dst] + static_cast<std::uint32_t>(j);
      e.weight = weight;
      e.delay = static_cast<std::int64_t>(dep.delay);
    }
  }
}

const std::vector<CycleRatioEdge>& FlatExpansion::collapse() {
  // Collapse parallel edges to the minimum-delay representative. The
  // groups are not static — a slab's endpoints move with its token
  // count — so the grouping is redone per call, but hash-free: a
  // counting sort buckets edges by source, then within each source
  // bucket an epoch-stamped slot table dedups targets (the epoch is the
  // bucket's position, so the V-sized tables never need clearing).
  const auto n = static_cast<std::uint32_t>(hsdfActors_);
  collapsed_.clear();
  collapsed_.reserve(edges_.size());
  srcOff_.assign(n + 1, 0);
  for (const CycleRatioEdge& e : edges_) {
    ++srcOff_[e.from + 1];
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    srcOff_[v + 1] += srcOff_[v];
  }
  srcIdx_.resize(edges_.size());
  {
    std::vector<std::uint32_t>& cursor = seenSlot_;  // reuse as fill cursor
    cursor.assign(n, 0);
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      const std::uint32_t v = edges_[i].from;
      srcIdx_[srcOff_[v] + cursor[v]++] = static_cast<std::uint32_t>(i);
    }
  }
  seenEpoch_.assign(n, 0);
  seenSlot_.assign(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t epoch = v + 1;
    for (std::uint32_t i = srcOff_[v]; i < srcOff_[v + 1]; ++i) {
      const CycleRatioEdge& e = edges_[srcIdx_[i]];
      if (seenEpoch_[e.to] == epoch) {
        CycleRatioEdge& existing = collapsed_[seenSlot_[e.to]];
        existing.delay = std::min(existing.delay, e.delay);
        continue;
      }
      seenEpoch_[e.to] = epoch;
      seenSlot_[e.to] = static_cast<std::uint32_t>(collapsed_.size());
      collapsed_.push_back(e);
    }
  }
  return collapsed_;
}

}  // namespace mamps::analysis
