#include "analysis/mcm.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <unordered_map>

#include "analysis/flat_hsdf.hpp"
#include "sdf/hsdf.hpp"
#include "sdf/repetition_vector.hpp"
#include "support/timer.hpp"

namespace mamps::analysis {
namespace {

using sdf::ActorId;
using sdf::ChannelId;
using sdf::Graph;

using Edge = CycleRatioEdge;
using Wide = __int128;

constexpr std::uint32_t kNoNode = 0xffffffffu;

void requireHsdf(const sdf::TimedGraph& hsdf) {
  for (const sdf::Channel& c : hsdf.graph.channels()) {
    if (c.prodRate != 1 || c.consRate != 1) {
      throw AnalysisError("cycle-ratio analysis requires an HSDF graph (all rates 1)");
    }
  }
  if (hsdf.execTime.size() != hsdf.graph.actorCount()) {
    throw AnalysisError("cycle-ratio analysis: execTime size mismatch");
  }
}

std::vector<Edge> buildEdges(const sdf::TimedGraph& hsdf) {
  // Parallel edges between the same pair carry the same weight (the
  // source's execution time); only the one with the fewest tokens can
  // attain the maximum ratio, so collapse them. The HSDF expansion of a
  // multi-rate channel produces one parallel edge per token, making this
  // a large reduction on expanded graphs.
  std::vector<Edge> edges;
  edges.reserve(hsdf.graph.channelCount());
  // lint:allow(unordered-deterministic) -- never iterated: try_emplace lookups only, and min() over parallel delays is order-independent
  std::unordered_map<std::uint64_t, std::size_t> byPair;
  byPair.reserve(hsdf.graph.channelCount());
  for (const sdf::Channel& c : hsdf.graph.channels()) {
    const std::uint64_t key = (std::uint64_t{c.src} << 32) | c.dst;
    const auto [it, inserted] = byPair.try_emplace(key, edges.size());
    if (!inserted) {
      Edge& existing = edges[it->second];
      existing.delay = std::min(existing.delay, static_cast<std::int64_t>(c.initialTokens));
      continue;
    }
    Edge e;
    e.from = c.src;
    e.to = c.dst;
    e.weight = static_cast<std::int64_t>(hsdf.execTime[c.src]);
    e.delay = static_cast<std::int64_t>(c.initialTokens);
    edges.push_back(e);
  }
  return edges;
}

/// Outcome of one per-component Howard solve.
struct ComponentOutcome {
  enum class Kind {
    NoCycle,   ///< the component contains no cycle (singleton, no self-loop)
    Deadlock,  ///< a zero-delay cycle (defensive; screened out earlier)
    Ratio,     ///< maximum cycle ratio num/den computed
  };
  Kind kind = Kind::NoCycle;
  std::int64_t num = 0;  ///< cycle weight sum of the maximum-ratio cycle
  std::int64_t den = 1;  ///< cycle delay sum (> 0)
  std::vector<std::uint32_t> successor;  ///< converged policy (local ids)
};

/// Reusable arenas of one Howard instance. Each solve worker owns one
/// (the sequential path keeps one in the solver's Scratch, the parallel
/// path one per thread), so repeated component solves allocate nothing
/// once the capacities have grown — the vector-of-vectors adjacency this
/// replaces cost one allocation per node per solve and dominated DSE
/// sweep profiles.
struct HowardScratch {
  std::vector<Edge> local;                   // component edges, local ids
  std::vector<std::uint32_t> hint;           // local warm-start hints
  std::vector<std::uint32_t> outOff;         // m+1 CSR offsets
  std::vector<std::uint32_t> outIdx;         // edge ids, ascending per node
  std::vector<std::uint32_t> cursor;         // CSR fill cursor
  std::vector<std::uint32_t> policy;         // node -> chosen edge id
  std::vector<std::int64_t> ratioNum, ratioDen;
  std::vector<Wide> valueNum;
  std::vector<char> hasRatio;
  std::vector<std::int32_t> mark;
  std::vector<std::uint32_t> path, cycle;
};

/// Howard's policy iteration over one strongly connected component,
/// renumbered to dense local ids 0..m-1; `hs.local` holds local
/// endpoints, `hs.hint[v]` a local preferred successor (kNoNode = none)
/// used to seed the initial policy. Maximizes the cycle ratio
/// sum(w)/sum(d).
ComponentOutcome howardComponent(std::size_t m, HowardScratch& hs) {
  ComponentOutcome out;
  const std::vector<Edge>& edges = hs.local;
  // CSR adjacency; edge ids stay ascending per node, so "first
  // out-edge" and the improvement scan order match the plain edge-list
  // formulation exactly.
  hs.outOff.assign(m + 1, 0);
  for (const Edge& e : edges) {
    ++hs.outOff[e.from + 1];
  }
  for (std::size_t v = 0; v < m; ++v) {
    hs.outOff[v + 1] += hs.outOff[v];
  }
  hs.outIdx.resize(edges.size());
  hs.cursor.assign(m, 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::uint32_t v = edges[i].from;
    hs.outIdx[hs.outOff[v] + hs.cursor[v]++] = static_cast<std::uint32_t>(i);
  }

  constexpr std::uint32_t kNoEdge = 0xffffffffu;
  hs.policy.assign(m, kNoEdge);
  for (std::size_t v = 0; v < m; ++v) {
    if (hs.outOff[v] == hs.outOff[v + 1]) {
      continue;
    }
    // Cold seed: the minimum-delay out-edge (first wins on ties). All
    // out-edges of an HSDF node carry the same weight — the source's
    // execution time — so the maximum-ratio cycle is biased toward
    // token-free edges; seeding with them cuts cold convergence from
    // dozens of sweeps to a handful. Any seed yields the same unique
    // fixpoint, so this is purely an iteration-count heuristic.
    std::uint32_t pick = hs.outIdx[hs.outOff[v]];
    for (std::uint32_t i = hs.outOff[v] + 1; i < hs.outOff[v + 1]; ++i) {
      if (edges[hs.outIdx[i]].delay < edges[pick].delay) {
        pick = hs.outIdx[i];
      }
    }
    hs.policy[v] = pick;
    if (hs.hint[v] != kNoNode) {
      for (std::uint32_t i = hs.outOff[v]; i < hs.outOff[v + 1]; ++i) {
        if (edges[hs.outIdx[i]].to == hs.hint[v]) {
          hs.policy[v] = hs.outIdx[i];
          break;
        }
      }
    }
  }
  std::vector<std::uint32_t>& policy = hs.policy;

  // Per-node evaluation state. Ratios are kept as *unnormalized*
  // integer fractions (the raw weight/delay sums of the reached cycle)
  // and values as 128-bit numerators over the cycle's delay sum; every
  // comparison cross-multiplies instead of normalizing, which removes
  // all gcd work from the hot loop. The final answer is materialized as
  // a normalized Rational, so results are bit-identical to the
  // rational-arithmetic formulation. Magnitudes stay far inside 128
  // bits: |valueNum| <= pathLength * (maxWeight + cycleWeight) *
  // cycleDelay, and comparisons multiply by one more delay sum.
  hs.ratioNum.assign(m, 0);   // cycle weight sum
  hs.ratioDen.assign(m, 1);   // cycle delay sum (> 0)
  hs.valueNum.assign(m, 0);   // potential * ratioDen[v]
  hs.hasRatio.assign(m, 0);
  std::vector<std::int64_t>& ratioNum = hs.ratioNum;
  std::vector<std::int64_t>& ratioDen = hs.ratioDen;
  std::vector<Wide>& valueNum = hs.valueNum;
  std::vector<char>& hasRatio = hs.hasRatio;
  // ratio[a] > ratio[b] as fractions (denominators are positive).
  const auto ratioGreater = [&](std::size_t a, std::size_t b) {
    return Wide(ratioNum[a]) * ratioDen[b] > Wide(ratioNum[b]) * ratioDen[a];
  };
  const auto ratioEqual = [&](std::size_t a, std::size_t b) {
    return Wide(ratioNum[a]) * ratioDen[b] == Wide(ratioNum[b]) * ratioDen[a];
  };

  hs.mark.assign(m, -1);  // visit epoch of the evaluation walks
  std::vector<std::int32_t>& mark = hs.mark;
  std::vector<std::uint32_t>& path = hs.path;
  std::vector<std::uint32_t>& cycle = hs.cycle;

  const std::size_t maxIterations = edges.size() * m + 16;
  for (std::size_t iteration = 0; iteration < maxIterations; ++iteration) {
    // --- Policy evaluation -------------------------------------------
    std::fill(hasRatio.begin(), hasRatio.end(), false);
    std::fill(mark.begin(), mark.end(), -1);
    // Find the cycle each node reaches in the functional policy graph.
    for (std::size_t start = 0; start < m; ++start) {
      if (policy[start] == kNoEdge || hasRatio[start]) {
        continue;
      }
      // Walk until we hit something marked in this walk (new cycle) or
      // an already-evaluated node.
      path.clear();
      auto v = static_cast<std::uint32_t>(start);
      while (policy[v] != kNoEdge && mark[v] == -1 && !hasRatio[v]) {
        mark[v] = static_cast<std::int32_t>(start);
        path.push_back(v);
        v = edges[policy[v]].to;
      }
      if (policy[v] != kNoEdge && mark[v] == static_cast<std::int32_t>(start) && !hasRatio[v]) {
        // New cycle found; compute its ratio.
        std::int64_t w = 0;
        std::int64_t d = 0;
        std::uint32_t u = v;
        do {
          const Edge& e = edges[policy[u]];
          w += e.weight;
          d += e.delay;
          u = e.to;
        } while (u != v);
        if (d == 0) {
          out.kind = ComponentOutcome::Kind::Deadlock;
          return out;
        }
        // Anchor the cycle: value(v) = 0, propagate around the cycle by
        // walking forward and solving value(u) = w(u) - r*d(u) +
        // value(next), all over the common denominator d.
        valueNum[v] = 0;
        ratioNum[v] = w;
        ratioDen[v] = d;
        hasRatio[v] = true;
        cycle.clear();
        u = v;
        do {
          cycle.push_back(u);
          u = edges[policy[u]].to;
        } while (u != v);
        for (std::size_t i = cycle.size(); i-- > 1;) {
          const std::uint32_t node = cycle[i];
          const Edge& e = edges[policy[node]];
          valueNum[node] = Wide(e.weight) * d - Wide(w) * e.delay + valueNum[e.to];
          ratioNum[node] = w;
          ratioDen[node] = d;
          hasRatio[node] = true;
        }
      } else if (!hasRatio[v]) {
        // Walk ended at a node without out-edge inside the component —
        // cannot happen because every component node lies on a cycle.
        continue;
      }
      // Propagate values back along the path (suffix first).
      for (std::size_t i = path.size(); i-- > 0;) {
        const std::uint32_t node = path[i];
        if (hasRatio[node]) {
          continue;  // part of the freshly evaluated cycle
        }
        const Edge& e = edges[policy[node]];
        valueNum[node] = Wide(e.weight) * ratioDen[e.to] - Wide(ratioNum[e.to]) * e.delay +
                         valueNum[e.to];
        ratioNum[node] = ratioNum[e.to];
        ratioDen[node] = ratioDen[e.to];
        hasRatio[node] = true;
      }
    }

    // --- Policy improvement ------------------------------------------
    // Label-correcting improvement: when v adopts a better successor,
    // its (ratio, value) label is rewritten in place so improvements
    // chain within this phase instead of crawling one node per outer
    // evaluation along long HSDF cycles. One full pass in descending id
    // order (expansion edges mostly point from lower to higher copy
    // ids, so a descending scan propagates a whole chain at once)
    // collects every node whose label rose; a FIFO worklist then
    // rescans just the predecessors of risen nodes — cost proportional
    // to actual changes, not extra full edge scans. Per-node labels
    // only ever increase lexicographically in (ratio, value), so the
    // phase terminates (the pop budget is a defensive cap; anything
    // left over is caught by the next outer iteration). Intermediate
    // labels only steer the pivot path: the outer loop exits solely
    // when a pass over the *exact* evaluation finds no improvement —
    // the classical Howard termination condition — so the unique
    // fixpoint is unchanged.
    const auto relax = [&](std::uint32_t v) -> bool {
      bool changed = false;
      const std::uint32_t off = hs.outOff[v];
      const std::uint32_t end = hs.outOff[v + 1];
      for (std::uint32_t i = off; i < end; ++i) {
        const std::uint32_t ei = hs.outIdx[i];
        const Edge& e = edges[ei];
        if (!hasRatio[e.to]) {
          continue;
        }
        bool adopt = false;
        if (ratioNum[e.to] == ratioNum[v] && ratioDen[e.to] == ratioDen[v]) {
          // Fast path: within one evaluation every node reaching the
          // same cycle carries the *identical* (num, den) pair, and
          // label-correcting adoption copies the representation — so
          // the common case compares values over one shared
          // denominator, with no 128-bit cross-multiplies.
          const Wide candidate = Wide(e.weight) * ratioDen[e.to] -
                                 Wide(ratioNum[e.to]) * e.delay + valueNum[e.to];
          adopt = candidate > valueNum[v];
        } else if (ratioGreater(e.to, v)) {
          adopt = true;
        } else if (ratioEqual(e.to, v)) {
          // candidate = w(e) - r*d(e) + value(e.to), over denominator
          // ratioDen[e.to]; compare against value(v) by
          // cross-multiplying the two denominators.
          const Wide candidate = Wide(e.weight) * ratioDen[e.to] -
                                 Wide(ratioNum[e.to]) * e.delay + valueNum[e.to];
          adopt = candidate * ratioDen[v] > valueNum[v] * ratioDen[e.to];
        }
        if (adopt) {
          policy[v] = ei;
          valueNum[v] = Wide(e.weight) * ratioDen[e.to] - Wide(ratioNum[e.to]) * e.delay +
                        valueNum[e.to];
          ratioNum[v] = ratioNum[e.to];
          ratioDen[v] = ratioDen[e.to];
          changed = true;
        }
      }
      return changed;
    };
    bool improved = false;
    bool changed = true;
    for (int pass = 0; changed && pass < 2; ++pass) {
      changed = false;
      const bool descending = (pass % 2) == 0;
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t v = descending ? m - 1 - k : k;
        if (policy[v] != kNoEdge && relax(static_cast<std::uint32_t>(v))) {
          changed = true;
        }
      }
      improved = improved || changed;
    }
    if (!improved) {
      std::size_t best = m;
      for (std::size_t v = 0; v < m; ++v) {
        if (hasRatio[v] && (best == m || ratioGreater(v, best))) {
          best = v;
        }
      }
      if (best == m) {
        out.kind = ComponentOutcome::Kind::NoCycle;
        return out;
      }
      out.kind = ComponentOutcome::Kind::Ratio;
      out.num = ratioNum[best];
      out.den = ratioDen[best];
      // Remember the converged policy for warm-starting later solves.
      out.successor.assign(m, kNoNode);
      for (std::size_t v = 0; v < m; ++v) {
        if (policy[v] != kNoEdge) {
          out.successor[v] = edges[policy[v]].to;
        }
      }
      return out;
    }
  }
  throw AnalysisError("CycleRatioSolver: policy iteration failed to converge");
}

}  // namespace

/// Reusable per-solve arenas. Every vector keeps its capacity across
/// solve() calls, so steady-state solves (buffer-growth rounds, DSE
/// sweeps, scenario re-analyses) allocate nothing — the allocation churn
/// of rebuilding adjacency per call used to dominate repeated-analysis
/// profiles.
struct CycleRatioSolver::Scratch {
  // --- cyclic-core peeling (CSR adjacency, both directions) ----------
  std::vector<std::uint32_t> inDeg, outDeg;
  std::vector<std::uint32_t> inOff, outOff;  // n+1 CSR offsets
  std::vector<std::uint32_t> inAdj, outAdj;  // edge endpoints
  std::vector<std::uint32_t> cursor;         // CSR fill / grouping cursor
  std::vector<std::uint32_t> queue;          // peel worklist
  std::vector<char> alive;                   // node -> lies on some cycle
  // --- edge working sets ---------------------------------------------
  std::vector<Edge> work;  // cyclic-core edges, contracted in place
  std::vector<Edge> zero;  // zero-delay subset (deadlock check)
  // --- chain contraction ---------------------------------------------
  std::vector<std::uint32_t> soleIn, soleOut;  // degree-1 adjacency slots
  std::vector<char> dead;                      // edge tombstones
  // --- SCC decomposition (iterative Tarjan) --------------------------
  std::vector<std::uint32_t> edgeOff, edgeIdx;  // out-CSR of work-edge ids
  std::vector<std::uint32_t> sccIndex, sccLow, sccStack, comp;
  std::vector<char> onStack;
  std::vector<std::uint32_t> dfsNode, dfsEdge;  // explicit DFS stack
  // --- per-component grouping ----------------------------------------
  std::vector<std::uint32_t> localIndex;              // node -> id within comp
  std::vector<std::uint32_t> compNodeOff, compNodes;  // comp -> nodes (id order)
  std::vector<std::uint32_t> compEdgeOff, compEdges;  // comp -> work-edge ids
  // --- Howard arenas for the sequential path (parallel workers own
  // one HowardScratch each on their stack) ----------------------------
  HowardScratch howard;

  std::size_t cyclicCore(std::size_t n, const std::vector<Edge>& edges);
  void contractChains(std::size_t n);
  std::uint32_t computeSccs(std::size_t n);
  void groupComponents(std::size_t n, std::uint32_t comps);
};

/// Nodes on at least one cycle: Kahn-style peeling of nodes with zero
/// in-degree or zero out-degree, O(V + E). Fills `alive`; returns the
/// number of surviving nodes.
std::size_t CycleRatioSolver::Scratch::cyclicCore(std::size_t n,
                                                  const std::vector<Edge>& edges) {
  inDeg.assign(n, 0);
  outDeg.assign(n, 0);
  for (const Edge& e : edges) {
    ++outDeg[e.from];
    ++inDeg[e.to];
  }
  inOff.assign(n + 1, 0);
  outOff.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    inOff[v + 1] = inOff[v] + inDeg[v];
    outOff[v + 1] = outOff[v] + outDeg[v];
  }
  inAdj.resize(edges.size());
  outAdj.resize(edges.size());
  cursor.assign(n, 0);
  for (const Edge& e : edges) {
    inAdj[inOff[e.to] + cursor[e.to]++] = e.from;
  }
  cursor.assign(n, 0);
  for (const Edge& e : edges) {
    outAdj[outOff[e.from] + cursor[e.from]++] = e.to;
  }

  alive.assign(n, 1);
  queue.clear();
  for (std::size_t v = 0; v < n; ++v) {
    if (inDeg[v] == 0 || outDeg[v] == 0) {
      alive[v] = 0;
      queue.push_back(static_cast<std::uint32_t>(v));
    }
  }
  std::size_t removed = queue.size();
  while (!queue.empty()) {
    const std::uint32_t v = queue.back();
    queue.pop_back();
    for (std::uint32_t i = inOff[v]; i < inOff[v + 1]; ++i) {
      const std::uint32_t u = inAdj[i];
      if (alive[u] != 0 && --outDeg[u] == 0) {
        alive[u] = 0;
        ++removed;
        queue.push_back(u);
      }
    }
    for (std::uint32_t i = outOff[v]; i < outOff[v + 1]; ++i) {
      const std::uint32_t u = outAdj[i];
      if (alive[u] != 0 && --inDeg[u] == 0) {
        alive[u] = 0;
        ++removed;
        queue.push_back(u);
      }
    }
  }
  return n - removed;
}

/// Ratio-preserving chain contraction: a node with exactly one incoming
/// and one outgoing edge lies on a cycle only via both, so the pair
/// (u -> v, v -> x) can be replaced by u -> x with summed weight and
/// delay without changing any cycle's ratio. HSDF expansions are mostly
/// such chains (firing-copy sequences, word-level comm stages), so this
/// typically shrinks the Howard problem by one to two orders of
/// magnitude. Contracting never changes the degree of u or x, so a
/// single pass over the initial candidates reaches the fixpoint.
/// `work` is compacted in place.
void CycleRatioSolver::Scratch::contractChains(std::size_t n) {
  inDeg.assign(n, 0);
  outDeg.assign(n, 0);
  for (const Edge& e : work) {
    ++outDeg[e.from];
    ++inDeg[e.to];
  }
  // Per-node single-slot adjacency; only meaningful for degree-1 nodes.
  soleIn.assign(n, kNoNode);
  soleOut.assign(n, kNoNode);
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (inDeg[work[i].to] == 1) {
      soleIn[work[i].to] = static_cast<std::uint32_t>(i);
    }
    if (outDeg[work[i].from] == 1) {
      soleOut[work[i].from] = static_cast<std::uint32_t>(i);
    }
  }
  dead.assign(work.size(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (inDeg[v] != 1 || outDeg[v] != 1) {
      continue;
    }
    const std::uint32_t e1 = soleIn[v];
    const std::uint32_t e2 = soleOut[v];
    if (e1 == e2) {
      continue;  // self-loop: an irreducible single-node cycle
    }
    // Merge v into its predecessor: e1 becomes u -> x, e2 dies.
    work[e1].to = work[e2].to;
    work[e1].weight += work[e2].weight;
    work[e1].delay += work[e2].delay;
    dead[e2] = 1;
    if (soleIn[work[e1].to] == e2) {
      soleIn[work[e1].to] = e1;
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (dead[i] == 0) {
      work[kept++] = work[i];
    }
  }
  work.resize(kept);
}

/// Strongly connected components of the contracted core via iterative
/// Tarjan. Component ids are assigned in completion order of a DFS
/// started from nodes in ascending id order, so they are a pure
/// function of the edge list — never of thread scheduling. Fills
/// `comp` (kNoNode for nodes outside the core); returns the count.
std::uint32_t CycleRatioSolver::Scratch::computeSccs(std::size_t n) {
  // Out-CSR of work-edge indices.
  outDeg.assign(n, 0);
  for (const Edge& e : work) {
    ++outDeg[e.from];
  }
  edgeOff.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    edgeOff[v + 1] = edgeOff[v] + outDeg[v];
  }
  edgeIdx.resize(work.size());
  cursor.assign(n, 0);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const std::uint32_t f = work[i].from;
    edgeIdx[edgeOff[f] + cursor[f]++] = static_cast<std::uint32_t>(i);
  }

  sccIndex.assign(n, kNoNode);
  sccLow.assign(n, 0);
  onStack.assign(n, 0);
  comp.assign(n, kNoNode);
  sccStack.clear();
  dfsNode.clear();
  dfsEdge.clear();
  std::uint32_t counter = 0;
  std::uint32_t comps = 0;

  for (std::size_t startIdx = 0; startIdx < n; ++startIdx) {
    const auto start = static_cast<std::uint32_t>(startIdx);
    if (sccIndex[start] != kNoNode || edgeOff[start] == edgeOff[start + 1]) {
      continue;
    }
    sccIndex[start] = sccLow[start] = counter++;
    sccStack.push_back(start);
    onStack[start] = 1;
    dfsNode.push_back(start);
    dfsEdge.push_back(edgeOff[start]);
    while (!dfsNode.empty()) {
      const std::uint32_t v = dfsNode.back();
      if (dfsEdge.back() < edgeOff[v + 1]) {
        const std::uint32_t w = work[edgeIdx[dfsEdge.back()++]].to;
        if (sccIndex[w] == kNoNode) {
          sccIndex[w] = sccLow[w] = counter++;
          sccStack.push_back(w);
          onStack[w] = 1;
          dfsNode.push_back(w);
          dfsEdge.push_back(edgeOff[w]);
        } else if (onStack[w] != 0) {
          sccLow[v] = std::min(sccLow[v], sccIndex[w]);
        }
      } else {
        dfsNode.pop_back();
        dfsEdge.pop_back();
        if (sccLow[v] == sccIndex[v]) {
          while (true) {
            const std::uint32_t w = sccStack.back();
            sccStack.pop_back();
            onStack[w] = 0;
            comp[w] = comps;
            if (w == v) {
              break;
            }
          }
          ++comps;
        }
        if (!dfsNode.empty()) {
          const std::uint32_t parent = dfsNode.back();
          sccLow[parent] = std::min(sccLow[parent], sccLow[v]);
        }
      }
    }
  }
  return comps;
}

/// Bucket core nodes and intra-component edges by component, in id
/// order. Cross-component edges are dropped: they lie on no cycle, so
/// they cannot carry the maximum ratio. Fills localIndex/compNodes/
/// compEdges and their offset tables.
void CycleRatioSolver::Scratch::groupComponents(std::size_t n, std::uint32_t comps) {
  compNodeOff.assign(comps + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (comp[v] != kNoNode) {
      ++compNodeOff[comp[v] + 1];
    }
  }
  for (std::uint32_t c = 0; c < comps; ++c) {
    compNodeOff[c + 1] += compNodeOff[c];
  }
  compNodes.resize(compNodeOff[comps]);
  localIndex.assign(n, kNoNode);
  cursor.assign(comps, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (comp[v] == kNoNode) {
      continue;
    }
    const std::uint32_t c = comp[v];
    localIndex[v] = cursor[c];
    compNodes[compNodeOff[c] + cursor[c]++] = static_cast<std::uint32_t>(v);
  }
  compEdgeOff.assign(comps + 1, 0);
  for (const Edge& e : work) {
    if (comp[e.from] != kNoNode && comp[e.from] == comp[e.to]) {
      ++compEdgeOff[comp[e.from] + 1];
    }
  }
  for (std::uint32_t c = 0; c < comps; ++c) {
    compEdgeOff[c + 1] += compEdgeOff[c];
  }
  compEdges.resize(compEdgeOff[comps]);
  cursor.assign(comps, 0);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const Edge& e = work[i];
    if (comp[e.from] != kNoNode && comp[e.from] == comp[e.to]) {
      const std::uint32_t c = comp[e.from];
      compEdges[compEdgeOff[c] + cursor[c]++] = static_cast<std::uint32_t>(i);
    }
  }
}

CycleRatioSolver::CycleRatioSolver() = default;
CycleRatioSolver::~CycleRatioSolver() = default;
CycleRatioSolver::CycleRatioSolver(CycleRatioSolver&&) noexcept = default;
CycleRatioSolver& CycleRatioSolver::operator=(CycleRatioSolver&&) noexcept = default;

CycleRatioSolver::CycleRatioSolver(const CycleRatioSolver& other)
    : preferredSuccessor_(other.preferredSuccessor_), threads_(other.threads_) {}

CycleRatioSolver& CycleRatioSolver::operator=(const CycleRatioSolver& other) {
  preferredSuccessor_ = other.preferredSuccessor_;
  threads_ = other.threads_;
  return *this;
}

CycleRatioResult CycleRatioSolver::solve(std::size_t nodeCount,
                                         const std::vector<CycleRatioEdge>& allEdges) {
  const std::size_t n = nodeCount;
  constexpr std::uint32_t kNoSuccessor = kNoNode;
  if (!scratch_) {
    scratch_ = std::make_unique<Scratch>();
  }
  Scratch& s = *scratch_;
  CycleRatioResult result;

  // Restrict to the cyclic core; acyclic parts never constrain the
  // steady-state period.
  s.cyclicCore(n, allEdges);
  s.work.clear();
  for (const Edge& e : allEdges) {
    if (s.alive[e.from] != 0 && s.alive[e.to] != 0) {
      s.work.push_back(e);
    }
  }
  if (s.work.empty()) {
    result.status = CycleRatioResult::Status::Acyclic;
    return result;
  }

  // Zero-delay cycle <=> deadlock. Detect first: restrict to zero-delay
  // edges and check for a cycle among them.
  s.zero.clear();
  for (const Edge& e : s.work) {
    if (e.delay == 0) {
      s.zero.push_back(e);
    }
  }
  if (!s.zero.empty() && s.cyclicCore(n, s.zero) > 0) {
    result.status = CycleRatioResult::Status::Deadlock;
    return result;
  }

  // Shrink the problem: HSDF expansions are dominated by unbranched
  // chains, which Howard would walk over and over. Contraction keeps
  // every cycle's weight and delay sums, so the maximum ratio is
  // unchanged (cross-checked against the brute-force oracle in the
  // property suite).
  s.contractChains(n);

  // Decompose into strongly connected components. Every cycle lives
  // inside one component, so the global maximum ratio is the maximum of
  // the per-component maxima — independent problems that can be solved
  // concurrently without any result depending on scheduling.
  const std::uint32_t comps = s.computeSccs(n);
  if (comps == 0) {
    result.status = CycleRatioResult::Status::Acyclic;
    return result;
  }
  s.groupComponents(n, comps);

  const bool haveHints = preferredSuccessor_.size() == n;
  std::vector<ComponentOutcome> outcomes(comps);
  std::vector<std::exception_ptr> errors(comps);
  const auto solveComponent = [&](std::uint32_t c, HowardScratch& hs) {
    try {
      const std::uint32_t nodeBegin = s.compNodeOff[c];
      const std::uint32_t nodeEnd = s.compNodeOff[c + 1];
      const std::size_t m = nodeEnd - nodeBegin;
      hs.local.clear();
      hs.local.reserve(s.compEdgeOff[c + 1] - s.compEdgeOff[c]);
      for (std::uint32_t i = s.compEdgeOff[c]; i < s.compEdgeOff[c + 1]; ++i) {
        Edge e = s.work[s.compEdges[i]];
        e.from = s.localIndex[e.from];
        e.to = s.localIndex[e.to];
        hs.local.push_back(e);
      }
      hs.hint.assign(m, kNoNode);
      if (haveHints) {
        for (std::uint32_t i = nodeBegin; i < nodeEnd; ++i) {
          const std::uint32_t global = s.compNodes[i];
          const std::uint32_t preferred = preferredSuccessor_[global];
          if (preferred < n && s.comp[preferred] == c) {
            hs.hint[i - nodeBegin] = s.localIndex[preferred];
          }
        }
      }
      outcomes[c] = howardComponent(m, hs);
    } catch (...) {
      errors[c] = std::current_exception();
    }
  };

  const auto workers = static_cast<unsigned>(
      std::min<std::uint32_t>(threads_, comps));
  if (workers > 1) {
    // Workers pull component ids from a shared counter; each writes only
    // its own outcomes/errors slot, and the reduction below runs after
    // all joins, in component-id order — bit-identical for any schedule.
    std::atomic<std::uint32_t> next{0};
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      pool.emplace_back([&] {
        HowardScratch hs;
        for (std::uint32_t c = next.fetch_add(1); c < comps; c = next.fetch_add(1)) {
          solveComponent(c, hs);
        }
      });
    }
  } else {
    for (std::uint32_t c = 0; c < comps; ++c) {
      solveComponent(c, s.howard);
    }
  }
  for (std::uint32_t c = 0; c < comps; ++c) {
    if (errors[c]) {
      std::rethrow_exception(errors[c]);
    }
  }

  // Deterministic reduction: strict maximum in component-id order.
  std::uint32_t best = comps;
  for (std::uint32_t c = 0; c < comps; ++c) {
    const ComponentOutcome& o = outcomes[c];
    if (o.kind == ComponentOutcome::Kind::Deadlock) {
      result.status = CycleRatioResult::Status::Deadlock;
      return result;
    }
    if (o.kind != ComponentOutcome::Kind::Ratio) {
      continue;
    }
    if (best == comps || Wide(o.num) * outcomes[best].den > Wide(outcomes[best].num) * o.den) {
      best = c;
    }
  }
  if (best == comps) {
    result.status = CycleRatioResult::Status::Acyclic;
    return result;
  }
  result.status = CycleRatioResult::Status::Ok;
  result.ratio = Rational(outcomes[best].num, outcomes[best].den);

  // Remember the optimal policies for the next solve on a perturbed
  // version of this graph (global node ids, so they survive a changed
  // edge layout).
  preferredSuccessor_.assign(n, kNoSuccessor);
  for (std::uint32_t c = 0; c < comps; ++c) {
    const ComponentOutcome& o = outcomes[c];
    if (o.kind != ComponentOutcome::Kind::Ratio) {
      continue;
    }
    for (std::uint32_t i = s.compNodeOff[c]; i < s.compNodeOff[c + 1]; ++i) {
      const std::uint32_t succ = o.successor[i - s.compNodeOff[c]];
      if (succ != kNoNode) {
        preferredSuccessor_[s.compNodes[i]] = s.compNodes[s.compNodeOff[c] + succ];
      }
    }
  }
  return result;
}

CycleRatioResult maxCycleRatioHoward(const sdf::TimedGraph& hsdf) {
  requireHsdf(hsdf);
  CycleRatioSolver solver;
  return solver.solve(hsdf.graph.actorCount(), buildEdges(hsdf));
}

CycleRatioResult maxCycleRatioBruteForce(const sdf::TimedGraph& hsdf) {
  requireHsdf(hsdf);
  const std::size_t n = hsdf.graph.actorCount();
  const std::vector<Edge> edges = buildEdges(hsdf);
  std::vector<std::vector<std::size_t>> outEdges(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    outEdges[edges[i].from].push_back(i);
  }

  CycleRatioResult result;
  bool foundCycle = false;
  bool deadlock = false;
  Rational best(0);

  // DFS enumeration of simple cycles rooted at each start node; only
  // nodes >= start participate, so each cycle is found exactly once
  // (rooted at its minimum node).
  std::vector<bool> onPath(n, false);
  std::vector<std::size_t> pathEdges;

  const std::function<void(std::size_t, std::size_t)> dfs = [&](std::size_t start, std::size_t v) {
    for (const std::size_t ei : outEdges[v]) {
      const Edge& e = edges[ei];
      if (e.to < start || deadlock) {
        continue;
      }
      if (e.to == start) {
        std::int64_t w = e.weight;
        std::int64_t d = e.delay;
        for (const std::size_t pe : pathEdges) {
          w += edges[pe].weight;
          d += edges[pe].delay;
        }
        if (d == 0) {
          deadlock = true;
          return;
        }
        const Rational r(w, d);
        if (!foundCycle || r > best) {
          best = r;
          foundCycle = true;
        }
        continue;
      }
      if (onPath[e.to]) {
        continue;
      }
      onPath[e.to] = true;
      pathEdges.push_back(ei);
      dfs(start, e.to);
      pathEdges.pop_back();
      onPath[e.to] = false;
    }
  };

  for (std::size_t start = 0; start < n && !deadlock; ++start) {
    onPath[start] = true;
    dfs(start, start);
    onPath[start] = false;
  }

  if (deadlock) {
    result.status = CycleRatioResult::Status::Deadlock;
  } else if (foundCycle) {
    result.status = CycleRatioResult::Status::Ok;
    result.ratio = best;
  } else {
    result.status = CycleRatioResult::Status::Acyclic;
  }
  return result;
}

sdf::HsdfExpansion toHsdfWithStaticOrder(const sdf::TimedGraph& timed,
                                         const ResourceConstraints& resources) {
  resources.validateFor(timed.graph);
  const auto qOpt = sdf::computeRepetitionVector(timed.graph);
  if (!qOpt) {
    throw AnalysisError("toHsdfWithStaticOrder: graph '" + timed.graph.name() +
                        "' is inconsistent");
  }
  const auto& q = *qOpt;

  sdf::HsdfExpansion expansion = sdf::toHsdf(timed);

  // Forward map: original actor + firing index -> HSDF copy.
  std::vector<std::vector<sdf::ActorId>> copies(timed.graph.actorCount());
  for (sdf::ActorId h = 0; h < expansion.hsdf.graph.actorCount(); ++h) {
    auto& list = copies[expansion.originalActor[h]];
    if (list.size() <= expansion.firingIndex[h]) {
      list.resize(expansion.firingIndex[h] + 1, sdf::kInvalidActor);
    }
    list[expansion.firingIndex[h]] = h;
  }

  for (std::size_t r = 0; r < resources.staticOrder.size(); ++r) {
    const auto& order = resources.staticOrder[r];
    // The j-th appearance of actor a is its j-th firing of the
    // iteration; collect the chain of HSDF copies in schedule order.
    std::vector<std::uint64_t> appearance(timed.graph.actorCount(), 0);
    std::vector<sdf::ActorId> chain;
    chain.reserve(order.size());
    for (const sdf::ActorId a : order) {
      if (resources.actorResource[a] != r) {
        throw AnalysisError("toHsdfWithStaticOrder: actor " + timed.graph.actor(a).name +
                            " is scheduled on a resource it is not bound to");
      }
      const std::uint64_t j = appearance[a]++;
      if (j >= q[a]) {
        throw AnalysisError("toHsdfWithStaticOrder: actor " + timed.graph.actor(a).name +
                            " appears more often than its repetition count");
      }
      chain.push_back(copies[a][j]);
    }
    for (sdf::ActorId a = 0; a < timed.graph.actorCount(); ++a) {
      if (resources.actorResource[a] == r && appearance[a] != q[a]) {
        throw AnalysisError("toHsdfWithStaticOrder: actor " + timed.graph.actor(a).name +
                            " appears " + std::to_string(appearance[a]) +
                            " times in its static order, expected q = " + std::to_string(q[a]));
      }
    }
    if (chain.empty()) {
      continue;
    }
    // Completion of appearance i enables the start of appearance i+1;
    // the wrap-around token starts the schedule at position 0 and
    // pipelines consecutive iterations of the resource by one.
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const std::size_t next = (i + 1) % chain.size();
      sdf::ChannelSpec spec;
      spec.src = chain[i];
      spec.dst = chain[next];
      spec.prodRate = 1;
      spec.consRate = 1;
      spec.initialTokens = (next == 0) ? 1 : 0;
      spec.name = "so_r" + std::to_string(r) + "_" + std::to_string(i);
      expansion.hsdf.graph.connect(spec);
    }
  }
  return expansion;
}

ThroughputResult computeThroughputMcr(const sdf::TimedGraph& timed,
                                      const ResourceConstraints* resources,
                                      const ThroughputOptions& options) {
  if (timed.execTime.size() != timed.graph.actorCount()) {
    throw AnalysisError("computeThroughputMcr: execTime size does not match actor count");
  }
  ThroughputResult result;
  result.engine = ThroughputEngine::Mcr;
  if (!sdf::isConsistent(timed.graph)) {
    result.status = ThroughputResult::Status::Inconsistent;
    return result;
  }
  if (timed.graph.actorCount() == 0) {
    result.status = ThroughputResult::Status::Deadlock;
    return result;
  }

  // Flat expansion: the same encoding sdf::toHsdf plus
  // toHsdfWithStaticOrder would produce, but as contiguous index tables
  // — no graph object, no name strings, no per-element allocation.
  FlatExpansion flat;
  const std::vector<CycleRatioEdge>* edges = nullptr;
  {
    support::ScopedTimer timer(result.expansionNanos);
    flat.build(timed, resources);
    edges = &flat.collapse();
  }
  result.hsdfActors = flat.hsdfActors();

  CycleRatioSolver solver;
  solver.setThreads(options.solverThreads);
  CycleRatioResult mcr;
  {
    support::ScopedTimer timer(result.solveNanos);
    mcr = solver.solve(static_cast<std::size_t>(flat.hsdfActors()), *edges);
  }
  switch (mcr.status) {
    case CycleRatioResult::Status::Ok:
      if (mcr.ratio.isZero()) {
        // Every cycle has zero total execution time: the graph fires
        // infinitely fast (matches the state-space verdict for a live
        // zero-time cycle).
        result.status = ThroughputResult::Status::Unbounded;
      } else {
        result.status = ThroughputResult::Status::Ok;
        result.iterationsPerCycle = mcr.ratio.reciprocal();
      }
      return result;
    case CycleRatioResult::Status::Deadlock:
      result.status = ThroughputResult::Status::Deadlock;
      result.iterationsPerCycle = Rational(0);
      return result;
    case CycleRatioResult::Status::Acyclic:
      // No cycle constrains the period. With self-concurrency limits in
      // {0, 1} this requires every actor to be unconstrained, which only
      // happens for graphs of limit-0 actors: unbounded throughput.
      result.status = ThroughputResult::Status::Unbounded;
      return result;
  }
  result.status = ThroughputResult::Status::Unbounded;
  return result;
}

std::optional<Rational> throughputViaMcr(const sdf::TimedGraph& timed) {
  const ThroughputResult result = computeThroughputMcr(timed);
  if (!result.ok()) {
    return std::nullopt;
  }
  return result.iterationsPerCycle;
}

}  // namespace mamps::analysis
