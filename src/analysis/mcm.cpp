#include "analysis/mcm.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "sdf/hsdf.hpp"
#include "sdf/repetition_vector.hpp"

namespace mamps::analysis {
namespace {

using sdf::ActorId;
using sdf::ChannelId;
using sdf::Graph;

using Edge = CycleRatioEdge;

void requireHsdf(const sdf::TimedGraph& hsdf) {
  for (const sdf::Channel& c : hsdf.graph.channels()) {
    if (c.prodRate != 1 || c.consRate != 1) {
      throw AnalysisError("cycle-ratio analysis requires an HSDF graph (all rates 1)");
    }
  }
  if (hsdf.execTime.size() != hsdf.graph.actorCount()) {
    throw AnalysisError("cycle-ratio analysis: execTime size mismatch");
  }
}

std::vector<Edge> buildEdges(const sdf::TimedGraph& hsdf) {
  // Parallel edges between the same pair carry the same weight (the
  // source's execution time); only the one with the fewest tokens can
  // attain the maximum ratio, so collapse them. The HSDF expansion of a
  // multi-rate channel produces one parallel edge per token, making this
  // a large reduction on expanded graphs.
  std::vector<Edge> edges;
  edges.reserve(hsdf.graph.channelCount());
  // lint:allow(unordered-deterministic) -- never iterated: try_emplace lookups only, and min() over parallel delays is order-independent
  std::unordered_map<std::uint64_t, std::size_t> byPair;
  byPair.reserve(hsdf.graph.channelCount());
  for (const sdf::Channel& c : hsdf.graph.channels()) {
    const std::uint64_t key = (std::uint64_t{c.src} << 32) | c.dst;
    const auto [it, inserted] = byPair.try_emplace(key, edges.size());
    if (!inserted) {
      Edge& existing = edges[it->second];
      existing.delay = std::min(existing.delay, static_cast<std::int64_t>(c.initialTokens));
      continue;
    }
    Edge e;
    e.from = c.src;
    e.to = c.dst;
    e.weight = static_cast<std::int64_t>(hsdf.execTime[c.src]);
    e.delay = static_cast<std::int64_t>(c.initialTokens);
    edges.push_back(e);
  }
  return edges;
}

/// Nodes on at least one cycle: Kahn-style peeling of nodes with zero
/// in-degree or zero out-degree, O(V + E).
std::vector<bool> nodesOnCycles(std::size_t n, const std::vector<Edge>& edges) {
  std::vector<bool> alive(n, true);
  std::vector<std::uint32_t> inDeg(n, 0);
  std::vector<std::uint32_t> outDeg(n, 0);
  std::vector<std::vector<std::uint32_t>> inAdj(n);
  std::vector<std::vector<std::uint32_t>> outAdj(n);
  for (const Edge& e : edges) {
    ++outDeg[e.from];
    ++inDeg[e.to];
    outAdj[e.from].push_back(e.to);
    inAdj[e.to].push_back(e.from);
  }
  std::vector<std::uint32_t> queue;
  for (std::size_t v = 0; v < n; ++v) {
    if (inDeg[v] == 0 || outDeg[v] == 0) {
      queue.push_back(static_cast<std::uint32_t>(v));
      alive[v] = false;
    }
  }
  while (!queue.empty()) {
    const std::uint32_t v = queue.back();
    queue.pop_back();
    for (const std::uint32_t u : inAdj[v]) {
      if (alive[u] && --outDeg[u] == 0) {
        alive[u] = false;
        queue.push_back(u);
      }
    }
    for (const std::uint32_t u : outAdj[v]) {
      if (alive[u] && --inDeg[u] == 0) {
        alive[u] = false;
        queue.push_back(u);
      }
    }
  }
  return alive;
}

/// Ratio-preserving chain contraction: a node with exactly one incoming
/// and one outgoing edge lies on a cycle only via both, so the pair
/// (u -> v, v -> x) can be replaced by u -> x with summed weight and
/// delay without changing any cycle's ratio. HSDF expansions are mostly
/// such chains (firing-copy sequences, word-level comm stages), so this
/// typically shrinks the Howard problem by one to two orders of
/// magnitude. Contracting never changes the degree of u or x, so a
/// single pass over the initial candidates reaches the fixpoint.
/// `edges` is compacted in place.
void contractChains(std::size_t n, std::vector<Edge>& edges) {
  std::vector<std::uint32_t> inDeg(n, 0);
  std::vector<std::uint32_t> outDeg(n, 0);
  for (const Edge& e : edges) {
    ++outDeg[e.from];
    ++inDeg[e.to];
  }
  // Per-node single-slot adjacency; only meaningful for degree-1 nodes.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> soleIn(n, kNone);
  std::vector<std::size_t> soleOut(n, kNone);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (inDeg[edges[i].to] == 1) {
      soleIn[edges[i].to] = i;
    }
    if (outDeg[edges[i].from] == 1) {
      soleOut[edges[i].from] = i;
    }
  }
  std::vector<bool> dead(edges.size(), false);
  for (std::size_t v = 0; v < n; ++v) {
    if (inDeg[v] != 1 || outDeg[v] != 1) {
      continue;
    }
    const std::size_t e1 = soleIn[v];
    const std::size_t e2 = soleOut[v];
    if (e1 == e2) {
      continue;  // self-loop: an irreducible single-node cycle
    }
    // Merge v into its predecessor: e1 becomes u -> x, e2 dies.
    edges[e1].to = edges[e2].to;
    edges[e1].weight += edges[e2].weight;
    edges[e1].delay += edges[e2].delay;
    dead[e2] = true;
    if (soleIn[edges[e1].to] == e2) {
      soleIn[edges[e1].to] = e1;
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!dead[i]) {
      edges[kept++] = edges[i];
    }
  }
  edges.resize(kept);
}

}  // namespace

CycleRatioResult CycleRatioSolver::solve(std::size_t nodeCount,
                                         const std::vector<CycleRatioEdge>& allEdges) {
  const std::size_t n = nodeCount;
  constexpr std::uint32_t kNoSuccessor = static_cast<std::uint32_t>(-1);

  // Restrict to the cyclic core; acyclic parts never constrain the
  // steady-state period.
  const std::vector<bool> alive = nodesOnCycles(n, allEdges);
  std::vector<Edge> edges;
  for (const Edge& e : allEdges) {
    if (alive[e.from] && alive[e.to]) {
      edges.push_back(e);
    }
  }
  CycleRatioResult result;
  if (edges.empty()) {
    result.status = CycleRatioResult::Status::Acyclic;
    return result;
  }

  // Zero-delay cycle <=> deadlock. Detect first: restrict to zero-delay
  // edges and check for a cycle among them.
  {
    std::vector<Edge> zeroEdges;
    for (const Edge& e : edges) {
      if (e.delay == 0) {
        zeroEdges.push_back(e);
      }
    }
    const std::vector<bool> zeroCycle = nodesOnCycles(n, zeroEdges);
    if (std::any_of(zeroCycle.begin(), zeroCycle.end(), [](bool b) { return b; })) {
      result.status = CycleRatioResult::Status::Deadlock;
      return result;
    }
  }

  // Shrink the problem: HSDF expansions are dominated by unbranched
  // chains, which Howard would walk over and over. Contraction keeps
  // every cycle's weight and delay sums, so the maximum ratio is
  // unchanged (cross-checked against the brute-force oracle in the
  // property suite).
  contractChains(n, edges);

  // Howard's policy iteration, maximizing the ratio sum(w)/sum(d).
  // policy[v] = index into `edges` of the chosen out-edge of v.
  std::vector<std::vector<std::size_t>> outEdges(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    outEdges[edges[i].from].push_back(i);
  }

  // Initial policy: the warm-start hints from the previous solve when
  // available (stored as preferred successor, so they survive a changed
  // edge layout), otherwise the first out-edge.
  constexpr std::size_t kNoEdge = static_cast<std::size_t>(-1);
  std::vector<std::size_t> policy(n, kNoEdge);
  const bool haveHints = preferredSuccessor_.size() == n;
  for (std::size_t v = 0; v < n; ++v) {
    if (outEdges[v].empty()) {
      continue;
    }
    policy[v] = outEdges[v].front();
    if (haveHints && preferredSuccessor_[v] != kNoSuccessor) {
      for (const std::size_t ei : outEdges[v]) {
        if (edges[ei].to == preferredSuccessor_[v]) {
          policy[v] = ei;
          break;
        }
      }
    }
  }

  // Per-node evaluation state. Ratios are kept as *unnormalized*
  // integer fractions (the raw weight/delay sums of the reached cycle)
  // and values as 128-bit numerators over the cycle's delay sum; every
  // comparison cross-multiplies instead of normalizing, which removes
  // all gcd work from the hot loop. The final answer is materialized as
  // a normalized Rational, so results are bit-identical to the
  // rational-arithmetic formulation. Magnitudes stay far inside 128
  // bits: |valueNum| <= pathLength * (maxWeight + cycleWeight) *
  // cycleDelay, and comparisons multiply by one more delay sum.
  using Wide = __int128;
  std::vector<std::int64_t> ratioNum(n, 0);  // cycle weight sum
  std::vector<std::int64_t> ratioDen(n, 1);  // cycle delay sum (> 0)
  std::vector<Wide> valueNum(n, 0);          // potential * ratioDen[v]
  std::vector<bool> hasRatio(n, false);
  // ratio[a] > ratio[b] as fractions (denominators are positive).
  const auto ratioGreater = [&](std::size_t a, std::size_t b) {
    return Wide(ratioNum[a]) * ratioDen[b] > Wide(ratioNum[b]) * ratioDen[a];
  };
  const auto ratioEqual = [&](std::size_t a, std::size_t b) {
    return Wide(ratioNum[a]) * ratioDen[b] == Wide(ratioNum[b]) * ratioDen[a];
  };

  std::vector<int> mark(n, -1);  // visit epoch of the evaluation walks
  std::vector<std::size_t> path;
  std::vector<std::size_t> cycle;

  const std::size_t maxIterations = edges.size() * n + 16;
  for (std::size_t iteration = 0; iteration < maxIterations; ++iteration) {
    // --- Policy evaluation -------------------------------------------
    std::fill(hasRatio.begin(), hasRatio.end(), false);
    std::fill(mark.begin(), mark.end(), -1);
    // Find the cycle each node reaches in the functional policy graph.
    for (std::size_t start = 0; start < n; ++start) {
      if (policy[start] == kNoEdge || hasRatio[start]) {
        continue;
      }
      // Walk until we hit something marked in this walk (new cycle) or
      // an already-evaluated node.
      path.clear();
      std::size_t v = start;
      while (policy[v] != kNoEdge && mark[v] == -1 && !hasRatio[v]) {
        mark[v] = static_cast<int>(start);
        path.push_back(v);
        v = edges[policy[v]].to;
      }
      if (policy[v] != kNoEdge && mark[v] == static_cast<int>(start) && !hasRatio[v]) {
        // New cycle found; compute its ratio.
        std::int64_t w = 0;
        std::int64_t d = 0;
        std::size_t u = v;
        do {
          const Edge& e = edges[policy[u]];
          w += e.weight;
          d += e.delay;
          u = e.to;
        } while (u != v);
        if (d == 0) {
          result.status = CycleRatioResult::Status::Deadlock;
          return result;
        }
        // Anchor the cycle: value(v) = 0, propagate around the cycle by
        // walking forward and solving value(u) = w(u) - r*d(u) +
        // value(next), all over the common denominator d.
        valueNum[v] = 0;
        ratioNum[v] = w;
        ratioDen[v] = d;
        hasRatio[v] = true;
        cycle.clear();
        u = v;
        do {
          cycle.push_back(u);
          u = edges[policy[u]].to;
        } while (u != v);
        for (std::size_t i = cycle.size(); i-- > 1;) {
          const std::size_t node = cycle[i];
          const Edge& e = edges[policy[node]];
          valueNum[node] = Wide(e.weight) * d - Wide(w) * e.delay + valueNum[e.to];
          ratioNum[node] = w;
          ratioDen[node] = d;
          hasRatio[node] = true;
        }
      } else if (!hasRatio[v]) {
        // Walk ended at a node without out-edge inside the cyclic core —
        // cannot happen because every core node lies on a cycle.
        continue;
      }
      // Propagate values back along the path (suffix first).
      for (std::size_t i = path.size(); i-- > 0;) {
        const std::size_t node = path[i];
        if (hasRatio[node]) {
          continue;  // part of the freshly evaluated cycle
        }
        const Edge& e = edges[policy[node]];
        valueNum[node] = Wide(e.weight) * ratioDen[e.to] - Wide(ratioNum[e.to]) * e.delay +
                         valueNum[e.to];
        ratioNum[node] = ratioNum[e.to];
        ratioDen[node] = ratioDen[e.to];
        hasRatio[node] = true;
      }
    }

    // --- Policy improvement ------------------------------------------
    bool improved = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (policy[v] == kNoEdge) {
        continue;
      }
      for (const std::size_t ei : outEdges[v]) {
        const Edge& e = edges[ei];
        if (!hasRatio[e.to]) {
          continue;
        }
        if (ratioGreater(e.to, v)) {
          policy[v] = ei;
          improved = true;
        } else if (ratioEqual(e.to, v)) {
          // candidate = w(e) - r*d(e) + value(e.to), over denominator
          // ratioDen[e.to]; compare against value(v) by cross-multiplying
          // the two denominators.
          const Wide candidate = Wide(e.weight) * ratioDen[e.to] -
                                 Wide(ratioNum[e.to]) * e.delay + valueNum[e.to];
          if (candidate * ratioDen[v] > valueNum[v] * ratioDen[e.to]) {
            policy[v] = ei;
            improved = true;
          }
        }
      }
    }
    if (!improved) {
      std::size_t best = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (hasRatio[v] && (best == n || ratioGreater(v, best))) {
          best = v;
        }
      }
      if (best == n) {
        result.status = CycleRatioResult::Status::Acyclic;
        return result;
      }
      result.status = CycleRatioResult::Status::Ok;
      result.ratio = Rational(ratioNum[best], ratioDen[best]);
      // Remember the optimal policy for the next solve on a perturbed
      // version of this graph.
      preferredSuccessor_.assign(n, kNoSuccessor);
      for (std::size_t v = 0; v < n; ++v) {
        if (policy[v] != kNoEdge) {
          preferredSuccessor_[v] = edges[policy[v]].to;
        }
      }
      return result;
    }
  }
  throw AnalysisError("CycleRatioSolver: policy iteration failed to converge");
}

CycleRatioResult maxCycleRatioHoward(const sdf::TimedGraph& hsdf) {
  requireHsdf(hsdf);
  CycleRatioSolver solver;
  return solver.solve(hsdf.graph.actorCount(), buildEdges(hsdf));
}

CycleRatioResult maxCycleRatioBruteForce(const sdf::TimedGraph& hsdf) {
  requireHsdf(hsdf);
  const std::size_t n = hsdf.graph.actorCount();
  const std::vector<Edge> edges = buildEdges(hsdf);
  std::vector<std::vector<std::size_t>> outEdges(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    outEdges[edges[i].from].push_back(i);
  }

  CycleRatioResult result;
  bool foundCycle = false;
  bool deadlock = false;
  Rational best(0);

  // DFS enumeration of simple cycles rooted at each start node; only
  // nodes >= start participate, so each cycle is found exactly once
  // (rooted at its minimum node).
  std::vector<bool> onPath(n, false);
  std::vector<std::size_t> pathEdges;

  const std::function<void(std::size_t, std::size_t)> dfs = [&](std::size_t start, std::size_t v) {
    for (const std::size_t ei : outEdges[v]) {
      const Edge& e = edges[ei];
      if (e.to < start || deadlock) {
        continue;
      }
      if (e.to == start) {
        std::int64_t w = e.weight;
        std::int64_t d = e.delay;
        for (const std::size_t pe : pathEdges) {
          w += edges[pe].weight;
          d += edges[pe].delay;
        }
        if (d == 0) {
          deadlock = true;
          return;
        }
        const Rational r(w, d);
        if (!foundCycle || r > best) {
          best = r;
          foundCycle = true;
        }
        continue;
      }
      if (onPath[e.to]) {
        continue;
      }
      onPath[e.to] = true;
      pathEdges.push_back(ei);
      dfs(start, e.to);
      pathEdges.pop_back();
      onPath[e.to] = false;
    }
  };

  for (std::size_t start = 0; start < n && !deadlock; ++start) {
    onPath[start] = true;
    dfs(start, start);
    onPath[start] = false;
  }

  if (deadlock) {
    result.status = CycleRatioResult::Status::Deadlock;
  } else if (foundCycle) {
    result.status = CycleRatioResult::Status::Ok;
    result.ratio = best;
  } else {
    result.status = CycleRatioResult::Status::Acyclic;
  }
  return result;
}

sdf::HsdfExpansion toHsdfWithStaticOrder(const sdf::TimedGraph& timed,
                                         const ResourceConstraints& resources) {
  resources.validateFor(timed.graph);
  const auto qOpt = sdf::computeRepetitionVector(timed.graph);
  if (!qOpt) {
    throw AnalysisError("toHsdfWithStaticOrder: graph '" + timed.graph.name() +
                        "' is inconsistent");
  }
  const auto& q = *qOpt;

  sdf::HsdfExpansion expansion = sdf::toHsdf(timed);

  // Forward map: original actor + firing index -> HSDF copy.
  std::vector<std::vector<sdf::ActorId>> copies(timed.graph.actorCount());
  for (sdf::ActorId h = 0; h < expansion.hsdf.graph.actorCount(); ++h) {
    auto& list = copies[expansion.originalActor[h]];
    if (list.size() <= expansion.firingIndex[h]) {
      list.resize(expansion.firingIndex[h] + 1, sdf::kInvalidActor);
    }
    list[expansion.firingIndex[h]] = h;
  }

  for (std::size_t r = 0; r < resources.staticOrder.size(); ++r) {
    const auto& order = resources.staticOrder[r];
    // The j-th appearance of actor a is its j-th firing of the
    // iteration; collect the chain of HSDF copies in schedule order.
    std::vector<std::uint64_t> appearance(timed.graph.actorCount(), 0);
    std::vector<sdf::ActorId> chain;
    chain.reserve(order.size());
    for (const sdf::ActorId a : order) {
      if (resources.actorResource[a] != r) {
        throw AnalysisError("toHsdfWithStaticOrder: actor " + timed.graph.actor(a).name +
                            " is scheduled on a resource it is not bound to");
      }
      const std::uint64_t j = appearance[a]++;
      if (j >= q[a]) {
        throw AnalysisError("toHsdfWithStaticOrder: actor " + timed.graph.actor(a).name +
                            " appears more often than its repetition count");
      }
      chain.push_back(copies[a][j]);
    }
    for (sdf::ActorId a = 0; a < timed.graph.actorCount(); ++a) {
      if (resources.actorResource[a] == r && appearance[a] != q[a]) {
        throw AnalysisError("toHsdfWithStaticOrder: actor " + timed.graph.actor(a).name +
                            " appears " + std::to_string(appearance[a]) +
                            " times in its static order, expected q = " + std::to_string(q[a]));
      }
    }
    if (chain.empty()) {
      continue;
    }
    // Completion of appearance i enables the start of appearance i+1;
    // the wrap-around token starts the schedule at position 0 and
    // pipelines consecutive iterations of the resource by one.
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const std::size_t next = (i + 1) % chain.size();
      sdf::ChannelSpec spec;
      spec.src = chain[i];
      spec.dst = chain[next];
      spec.prodRate = 1;
      spec.consRate = 1;
      spec.initialTokens = (next == 0) ? 1 : 0;
      spec.name = "so_r" + std::to_string(r) + "_" + std::to_string(i);
      expansion.hsdf.graph.connect(spec);
    }
  }
  return expansion;
}

ThroughputResult computeThroughputMcr(const sdf::TimedGraph& timed,
                                      const ResourceConstraints* resources) {
  if (timed.execTime.size() != timed.graph.actorCount()) {
    throw AnalysisError("computeThroughputMcr: execTime size does not match actor count");
  }
  ThroughputResult result;
  result.engine = ThroughputEngine::Mcr;
  if (!sdf::isConsistent(timed.graph)) {
    result.status = ThroughputResult::Status::Inconsistent;
    return result;
  }
  if (timed.graph.actorCount() == 0) {
    result.status = ThroughputResult::Status::Deadlock;
    return result;
  }

  const sdf::HsdfExpansion expansion = resources != nullptr
                                           ? toHsdfWithStaticOrder(timed, *resources)
                                           : sdf::toHsdf(timed);
  result.hsdfActors = expansion.hsdf.graph.actorCount();

  const CycleRatioResult mcr = maxCycleRatioHoward(expansion.hsdf);
  switch (mcr.status) {
    case CycleRatioResult::Status::Ok:
      if (mcr.ratio.isZero()) {
        // Every cycle has zero total execution time: the graph fires
        // infinitely fast (matches the state-space verdict for a live
        // zero-time cycle).
        result.status = ThroughputResult::Status::Unbounded;
      } else {
        result.status = ThroughputResult::Status::Ok;
        result.iterationsPerCycle = mcr.ratio.reciprocal();
      }
      return result;
    case CycleRatioResult::Status::Deadlock:
      result.status = ThroughputResult::Status::Deadlock;
      result.iterationsPerCycle = Rational(0);
      return result;
    case CycleRatioResult::Status::Acyclic:
      // No cycle constrains the period. With self-concurrency limits in
      // {0, 1} this requires every actor to be unconstrained, which only
      // happens for graphs of limit-0 actors: unbounded throughput.
      result.status = ThroughputResult::Status::Unbounded;
      return result;
  }
  result.status = ThroughputResult::Status::Unbounded;
  return result;
}

std::optional<Rational> throughputViaMcr(const sdf::TimedGraph& timed) {
  const ThroughputResult result = computeThroughputMcr(timed);
  if (!result.ok()) {
    return std::nullopt;
  }
  return result.iterationsPerCycle;
}

}  // namespace mamps::analysis
