// Maximum cycle ratio / maximum cycle mean analysis — the polynomial
// throughput fast path.
//
// For an HSDF graph (all rates 1) executing self-timed, the steady-state
// iteration period equals the maximum cycle ratio
//     MCR = max over cycles C of ( sum of execution times / sum of tokens )
// and the graph throughput is 1/MCR iterations per cycle. A cycle with
// zero tokens can never fire: the graph is deadlocked.
//
// General SDF graphs are analyzed by expanding them to HSDF first
// (sdf/hsdf.hpp); static-order schedules of shared resources are encoded
// exactly as additional HSDF precedence edges, so resource-shared
// binding-aware graphs stay on the fast path.
//
// Two cycle-ratio implementations are provided: Howard's policy
// iteration with exact rational arithmetic (fast, used by the flow) and
// a brute-force simple cycle enumeration (exponential, used as a
// cross-check in tests).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/throughput.hpp"
#include "sdf/graph.hpp"
#include "sdf/hsdf.hpp"
#include "support/rational.hpp"

namespace mamps::analysis {

/// Outcome of a maximum-cycle-ratio computation.
struct CycleRatioResult {
  /// Verdict of the cycle-ratio analysis.
  enum class Status {
    Ok,        ///< maximum cycle ratio computed
    Deadlock,  ///< a cycle without tokens exists
    Acyclic,   ///< no cycle exists (ratio undefined; throughput unbounded)
  };

  /// Verdict; `ratio` is only meaningful for Ok.
  Status status = Status::Acyclic;
  /// Maximum cycle ratio in cycles per iteration (valid for Ok).
  Rational ratio = Rational(0);

  /// True when a maximum cycle ratio was computed.
  /// @return status == Status::Ok
  [[nodiscard]] bool ok() const { return status == Status::Ok; }
};

/// One precedence edge of a cycle-ratio problem: `weight` is the
/// execution time of the source node, `delay` the token count.
struct CycleRatioEdge {
  /// Source node index.
  std::uint32_t from = 0;
  /// Destination node index.
  std::uint32_t to = 0;
  /// Execution time of `from` (the numerator contribution of the edge).
  std::int64_t weight = 0;
  /// Initial tokens on the edge (the denominator contribution).
  std::int64_t delay = 0;
};

/// Portable warm-start handle for CycleRatioSolver: a converged policy
/// from a previous solve, stored as preferred successor per node.
/// Seeding from any handle — including one from a *different* graph —
/// never changes a result: Howard's policy iteration converges to the
/// unique maximum cycle ratio from any initial policy, so a warm start
/// only changes how many improvement sweeps convergence takes. The DSE
/// engine hands one handle per sweep worker through the mapping flow so
/// neighboring design points seed each other (mapping/dse.hpp).
struct SolverWarmStart {
  /// node -> preferred successor node (0xffffffff = no preference).
  /// Ignored wholesale when the size does not match the solved problem.
  std::vector<std::uint32_t> preferredSuccessor;
};

/// Howard's policy iteration over an explicit edge list, with reusable
/// policy state: successive solve() calls on perturbed versions of the
/// same graph warm-start from the previous optimal policy (stored as
/// preferred successor per node, so it survives edge re-collapsing),
/// which typically converges in one or two sweeps. A default-constructed
/// solver is cold; the first solve() behaves exactly like
/// maxCycleRatioHoward().
///
/// Internally a solve runs Kahn-style cyclic-core peeling, a zero-delay
/// deadlock check, ratio-preserving chain contraction, strongly
/// connected component decomposition, and one Howard instance per
/// component (components are independent, so the maximum over them is
/// the global MCR and, with setThreads(), components solve in
/// parallel without affecting any result). All per-solve scratch is
/// retained across calls, so repeated solves allocate nothing on the
/// steady state.
class CycleRatioSolver {
 public:
  CycleRatioSolver();
  ~CycleRatioSolver();
  /// Copying transfers the warm-start hints but not the scratch arenas.
  CycleRatioSolver(const CycleRatioSolver& other);
  CycleRatioSolver& operator=(const CycleRatioSolver& other);
  CycleRatioSolver(CycleRatioSolver&&) noexcept;
  CycleRatioSolver& operator=(CycleRatioSolver&&) noexcept;

  /// Maximum cycle ratio sum(weight)/sum(delay) over the cycles of the
  /// edge list. Parallel edges are permitted (only the minimum-delay one
  /// can attain the maximum when weights agree, but the solver does not
  /// require pre-collapsing).
  /// @param nodeCount number of nodes; edge endpoints must be < nodeCount
  /// @param edges the precedence edges
  /// @return the maximum cycle ratio, or Deadlock/Acyclic verdicts
  [[nodiscard]] CycleRatioResult solve(std::size_t nodeCount,
                                      const std::vector<CycleRatioEdge>& edges);

  /// Worker threads for the independent per-SCC Howard solves (large
  /// expansions with several strongly connected components solve them
  /// concurrently). Results are bit-identical for any thread count —
  /// the per-component problems share nothing and the maximum over
  /// components is reduced in deterministic component order.
  /// @param threads thread cap; 0 and 1 both mean sequential
  void setThreads(unsigned threads) { threads_ = threads == 0 ? 1 : threads; }

  /// Seed the next solve() from a previously exported policy.
  /// @param warm the handle to copy hints from
  void adoptWarmStart(const SolverWarmStart& warm) {
    preferredSuccessor_ = warm.preferredSuccessor;
  }

  /// Export the current policy hints (the converged policy of the last
  /// successful solve) into a handle.
  /// @param warm the handle to copy hints into
  void exportWarmStart(SolverWarmStart& warm) const {
    warm.preferredSuccessor = preferredSuccessor_;
  }

 private:
  struct Scratch;  // reusable per-solve arenas; defined in mcm.cpp

  std::vector<std::uint32_t> preferredSuccessor_;  ///< warm-start hints
  unsigned threads_ = 1;                           ///< per-SCC solve threads
  std::unique_ptr<Scratch> scratch_;               ///< lazily created, reused
};

/// Maximum cycle ratio of a timed HSDF graph via Howard's policy
/// iteration. Edge weight = execution time of the channel's source
/// actor; edge delay = initial tokens.
/// @param hsdf the HSDF graph (all channel rates must be 1)
/// @return the maximum cycle ratio, or Deadlock/Acyclic verdicts
/// @throws AnalysisError when the graph has a channel with rates != 1
///   or the execution-time vector does not match the actor count
[[nodiscard]] CycleRatioResult maxCycleRatioHoward(const sdf::TimedGraph& hsdf);

/// Same quantity by enumerating all simple cycles (exponential; only for
/// small test graphs).
/// @param hsdf the HSDF graph (all channel rates must be 1)
/// @return the maximum cycle ratio, or Deadlock/Acyclic verdicts
/// @throws AnalysisError when the graph has a channel with rates != 1
///   or the execution-time vector does not match the actor count
[[nodiscard]] CycleRatioResult maxCycleRatioBruteForce(const sdf::TimedGraph& hsdf);

/// HSDF expansion of `timed` with the static-order schedules of
/// `resources` encoded as precedence edges: per resource, a chain
/// through the firing copies in schedule-appearance order plus a
/// wrap-around edge carrying one token. The encoding is exact — the
/// j-th appearance of actor a in its order is firing copy j of a —
/// which requires every bound actor to appear exactly q[a] times.
/// @param timed the SDF graph to expand
/// @param resources binding and static orders; every entry of a
///   resource's order must be bound to that resource
/// @return the expansion with schedule edges added (named "so_r<R>_<i>")
/// @throws AnalysisError when the graph is inconsistent, an order entry
///   is not bound to its resource, or an appearance count differs from
///   the actor's repetition count
[[nodiscard]] sdf::HsdfExpansion toHsdfWithStaticOrder(const sdf::TimedGraph& timed,
                                                       const ResourceConstraints& resources);

/// Full throughput verdict via the MCR fast path: flat HSDF expansion
/// (analysis/flat_hsdf.hpp; static orders encoded as precedence edges
/// when `resources` is non-null) and Howard's policy iteration. Never
/// returns Status::Diverged or StepLimit; for graphs that are not
/// strongly bounded it reports the exact long-run iteration completion
/// rate. Only `options.solverThreads` affects this entry point (engine
/// selection already happened when it is called); the per-phase
/// expansion/solve counters of the result are filled in.
/// @param timed the SDF graph to analyze
/// @param resources optional binding and static orders (may be null)
/// @param options solver tuning (thread count for per-SCC solves)
/// @return a ThroughputResult with `engine == ThroughputEngine::Mcr`
/// @throws AnalysisError on shape violations (execTime size, schedule
///   appearance counts)
[[nodiscard]] ThroughputResult computeThroughputMcr(
    const sdf::TimedGraph& timed, const ResourceConstraints* resources = nullptr,
    const ThroughputOptions& options = {});

/// Throughput of an SDF graph via conversion to HSDF and MCR analysis.
/// @param timed the SDF graph to analyze
/// @return iterations per cycle; nullopt when deadlocked (or empty)
[[nodiscard]] std::optional<Rational> throughputViaMcr(const sdf::TimedGraph& timed);

}  // namespace mamps::analysis
