// Maximum cycle ratio / maximum cycle mean analysis.
//
// For an HSDF graph (all rates 1) executing self-timed, the steady-state
// iteration period equals the maximum cycle ratio
//     MCR = max over cycles C of ( sum of execution times / sum of tokens )
// and the graph throughput is 1/MCR iterations per cycle. A cycle with
// zero tokens can never fire: the graph is deadlocked.
//
// Two implementations are provided: Howard's policy iteration with exact
// rational arithmetic (fast, used by the flow) and a brute-force simple
// cycle enumeration (exponential, used as a cross-check in tests).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sdf/graph.hpp"
#include "support/rational.hpp"

namespace mamps::analysis {

struct CycleRatioResult {
  enum class Status {
    Ok,        ///< maximum cycle ratio computed
    Deadlock,  ///< a cycle without tokens exists
    Acyclic,   ///< no cycle exists (ratio undefined; throughput unbounded)
  };

  Status status = Status::Acyclic;
  Rational ratio = Rational(0);  ///< cycles per iteration (valid for Ok)

  [[nodiscard]] bool ok() const { return status == Status::Ok; }
};

/// Maximum cycle ratio of a timed HSDF graph via Howard's policy
/// iteration. Edge weight = execution time of the channel's source
/// actor; edge delay = initial tokens. Throws AnalysisError when the
/// graph has a channel with rates != 1.
[[nodiscard]] CycleRatioResult maxCycleRatioHoward(const sdf::TimedGraph& hsdf);

/// Same quantity by enumerating all simple cycles (exponential; only for
/// small test graphs).
[[nodiscard]] CycleRatioResult maxCycleRatioBruteForce(const sdf::TimedGraph& hsdf);

/// Throughput of an SDF graph via conversion to HSDF and MCR analysis.
/// Returns iterations per cycle; nullopt when deadlocked.
[[nodiscard]] std::optional<Rational> throughputViaMcr(const sdf::TimedGraph& timed);

}  // namespace mamps::analysis
