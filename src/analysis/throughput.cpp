#include "analysis/throughput.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/mcm.hpp"
#include "sdf/repetition_vector.hpp"
#include "support/timer.hpp"

namespace mamps::analysis {
namespace {

using sdf::ActorId;
using sdf::Channel;
using sdf::ChannelId;
using sdf::Graph;

/// Canonicalised quiescent-state key: token counts of the channels that
/// are not derivable from the rest of the state, per-actor sorted
/// remaining firing times (length-prefixed), and per-resource schedule
/// positions, packed into one flat buffer.
using StateKey = std::vector<std::uint64_t>;

/// Open-addressing store of quiescent states. Every key's words live
/// back-to-back in one contiguous arena; a slot records (offset, length,
/// visit) so a lookup is one linear probe over a flat table plus a
/// word-wise compare into the arena — no per-state key allocation, no
/// node-based buckets. Membership is decided by exact key equality
/// (the hash only picks the starting probe), so verdicts and
/// statesExplored are bit-identical to a node-based map. Iteration
/// order never escapes: only size(), lookups, and the prune count are
/// observable, and the step-watermark prune keeps exactly the same set
/// a per-entry erase would.
class FlatStateStore {
 public:
  /// Bookkeeping of one stored quiescent state.
  struct Visit {
    std::uint64_t time = 0;
    std::uint64_t completions = 0;
    std::uint64_t step = 0;
  };

  FlatStateStore() { slots_.resize(kInitialSlots); }

  /// Number of live states.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Find `key`, inserting it with `visit` when absent.
  /// @return the stored visit (valid until the next insert or prune)
  ///   and whether an insert happened
  std::pair<Visit*, bool> tryEmplace(const StateKey& key, const Visit& visit) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) {
      rehash(slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hashKey(key.data(), key.size()) & mask;
    while (slots_[i].len != kEmpty) {
      if (slots_[i].len == key.size() &&
          std::equal(key.begin(), key.end(), arena_.begin() + slots_[i].offset)) {
        return {&slots_[i].visit, false};
      }
      i = (i + 1) & mask;
    }
    Slot& slot = slots_[i];
    slot.offset = arena_.size();
    slot.len = key.size();
    slot.visit = visit;
    arena_.insert(arena_.end(), key.begin(), key.end());
    ++size_;
    return {&slot.visit, true};
  }

  /// Drop every state whose visit step is below `watermark` and compact
  /// the key arena (the dropped transient-prefix keys are the bulk of
  /// it). @return the number of dropped states
  std::uint64_t pruneBelow(std::uint64_t watermark) {
    std::uint64_t dropped = 0;
    std::vector<std::uint64_t> keptArena;
    keptArena.reserve(arena_.size());
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size(), Slot{});
    size_ = 0;
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.len == kEmpty) {
        continue;
      }
      if (s.visit.step < watermark) {
        ++dropped;
        continue;
      }
      std::size_t i = hashKey(arena_.data() + s.offset, s.len) & mask;
      while (slots_[i].len != kEmpty) {
        i = (i + 1) & mask;
      }
      slots_[i].offset = keptArena.size();
      slots_[i].len = s.len;
      slots_[i].visit = s.visit;
      keptArena.insert(keptArena.end(), arena_.begin() + s.offset,
                       arena_.begin() + s.offset + s.len);
      ++size_;
    }
    arena_ = std::move(keptArena);
    return dropped;
  }

 private:
  static constexpr std::size_t kInitialSlots = 1024;  // power of two
  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  struct Slot {
    std::size_t offset = 0;    ///< first word of the key in the arena
    std::size_t len = kEmpty;  ///< key length in words (kEmpty = free)
    Visit visit;
  };

  static std::uint64_t hashKey(const std::uint64_t* words, std::size_t len) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
      h ^= words[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  void rehash(std::size_t newSlotCount) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(newSlotCount, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.len == kEmpty) {
        continue;
      }
      std::size_t i = hashKey(arena_.data() + s.offset, s.len) & mask;
      while (slots_[i].len != kEmpty) {
        i = (i + 1) & mask;
      }
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;            ///< open-addressing table
  std::vector<std::uint64_t> arena_;   ///< concatenated key words
  std::size_t size_ = 0;               ///< live states
};

class Simulator {
 public:
  Simulator(const sdf::TimedGraph& timed, const ThroughputOptions& options,
            const ResourceConstraints* resources)
      : graph_(timed.graph),
        execTime_(timed.execTime),
        concurrency_(timed.maxConcurrent),
        options_(options),
        resources_(resources) {
    tokens_.resize(graph_.channelCount());
    for (ChannelId c = 0; c < graph_.channelCount(); ++c) {
      tokens_[c] = graph_.channel(c).initialTokens;
    }
    remaining_.resize(graph_.actorCount());
    if (resources_ != nullptr) {
      schedulePos_.resize(resources_->staticOrder.size(), 0);
      resourceBusy_.resize(resources_->staticOrder.size(), 0);
    }
    computeStoredChannels();
  }

  ThroughputResult run() {
    // Phase profile: storeNanos_ is accumulated around the encode/
    // store/prune blocks inside runImpl(); everything else of the loop
    // is the solver proper.
    std::uint64_t totalNanos = 0;
    ThroughputResult result;
    {
      support::ScopedTimer timer(totalNanos);
      result = runImpl();
    }
    result.storeNanos = storeNanos_;
    result.solveNanos = totalNanos - std::min(storeNanos_, totalNanos);
    return result;
  }

 private:
  ThroughputResult runImpl() {
    ThroughputResult result;
    result.engine = ThroughputEngine::StateSpace;
    const auto qOpt = sdf::computeRepetitionVector(graph_);
    if (!qOpt) {
      result.status = ThroughputResult::Status::Inconsistent;
      return result;
    }
    if (graph_.actorCount() == 0) {
      result.status = ThroughputResult::Status::Deadlock;
      return result;
    }
    const std::uint64_t qRef = (*qOpt)[kReferenceActor];

    // Divergence guard: self-timed execution of a graph that is not
    // strongly bounded (e.g. a fast producer feeding an unbounded
    // channel) accumulates tokens forever and never revisits a state.
    // Token counts above this threshold cannot occur in a recurrent
    // execution of a strongly-bounded graph of this size.
    std::uint64_t initialTotal = 0;
    for (const Channel& c : graph_.channels()) {
      initialTotal += c.initialTokens;
    }
    std::uint64_t perIteration = 0;
    for (const Channel& c : graph_.channels()) {
      perIteration += (*qOpt)[c.src] * c.prodRate;
    }
    const std::uint64_t divergenceThreshold = initialTotal + 64 * perIteration + 4096;

    FlatStateStore seen;
    std::uint64_t pruned = 0;
    const std::uint64_t storeLimit = std::max<std::uint64_t>(options_.maxStoredStates, 16);

    for (std::uint64_t step = 0; step < options_.maxSteps; ++step) {
      // Quiescent point: start everything startable, complete all
      // zero-time work (which may enable more starts).
      if (!settleInstant()) {
        result.status = ThroughputResult::Status::Unbounded;
        return result;
      }

      std::uint64_t totalTokens = 0;
      for (const std::uint64_t t : tokens_) {
        totalTokens += t;
      }
      if (totalTokens > divergenceThreshold) {
        result.status = ThroughputResult::Status::Diverged;
        result.statesExplored = seen.size() + pruned;
        return result;
      }

      const bool anyOngoing = std::any_of(remaining_.begin(), remaining_.end(),
                                          [](const auto& r) { return !r.empty(); });
      if (!anyOngoing) {
        result.status = ThroughputResult::Status::Deadlock;
        result.statesExplored = seen.size() + pruned;
        return result;
      }

      FlatStateStore::Visit* visit = nullptr;
      bool inserted = false;
      {
        support::ScopedTimer timer(storeNanos_);
        encodeState(keyBuffer_);
        std::tie(visit, inserted) =
            seen.tryEmplace(keyBuffer_, FlatStateStore::Visit{now_, refCompletions_, step});
      }
      if (!inserted) {
        const FlatStateStore::Visit& prev = *visit;
        const std::uint64_t period = now_ - prev.time;
        const std::uint64_t completions = refCompletions_ - prev.completions;
        result.statesExplored = seen.size() + pruned;
        result.periodCycles = period;
        if (period == 0) {
          // Cannot happen: time strictly advances between quiescent
          // snapshots once zero-time work is settled.
          result.status = ThroughputResult::Status::Unbounded;
          return result;
        }
        result.status = ThroughputResult::Status::Ok;
        result.iterationsPerCycle = Rational(static_cast<std::int64_t>(completions),
                                             static_cast<std::int64_t>(qRef * period));
        return result;
      }

      // Storage-aware prefix pruning: the oldest stored states belong to
      // the transient prefix (or to laps of the periodic phase that have
      // younger equivalents). Dropping them keeps memory bounded; as
      // long as the periodic phase fits in the retained window
      // (~storeLimit/2 steps) a younger copy of a periodic state is
      // revisited and detection still occurs. A period longer than the
      // window ends in StepLimit — raise maxStoredStates for such
      // graphs.
      if (seen.size() > storeLimit) {
        support::ScopedTimer timer(storeNanos_);
        pruned += seen.pruneBelow(step - storeLimit / 2);
      }

      advanceTime();
    }
    result.status = ThroughputResult::Status::StepLimit;
    result.statesExplored = seen.size() + pruned;
    return result;
  }

 private:
  static constexpr ActorId kReferenceActor = 0;

  /// Mark the channels whose token count must be part of the state key.
  /// Two families are derivable from the rest of the key and are
  /// skipped (the storage-distribution-aware part of the pruning):
  ///
  ///  - self-edges: tokens = initial - consRate * ongoing(actor);
  ///  - channels sharing endpoints and rates with a stored
  ///    representative: same-direction duplicates differ from the
  ///    representative by a constant, and reverse-direction channels
  ///    (the capacity back-edges of a storage distribution) satisfy
  ///      tokens(fwd) + tokens(rev) + prod*ongoing(src) + cons*ongoing(dst)
  ///    = const, so their count follows from the representative's.
  void computeStoredChannels() {
    storeToken_.assign(graph_.channelCount(), true);
    // Key: canonical (src, dst, prod, cons) signature with the two
    // orientations mapped to the same bucket. Ordered map: which
    // channel becomes the representative depends only on ChannelId
    // order, never on hash-bucket layout.
    using Signature = std::pair<std::uint64_t, std::uint64_t>;  // (endpoints, rates)
    std::map<Signature, ChannelId> representative;
    for (ChannelId c = 0; c < graph_.channelCount(); ++c) {
      const Channel& channel = graph_.channel(c);
      if (channel.isSelfEdge()) {
        storeToken_[c] = false;
        continue;
      }
      const bool flip = channel.dst < channel.src;
      const std::uint64_t lo = flip ? channel.dst : channel.src;
      const std::uint64_t hi = flip ? channel.src : channel.dst;
      const std::uint64_t ra = flip ? channel.consRate : channel.prodRate;
      const std::uint64_t rb = flip ? channel.prodRate : channel.consRate;
      const Signature sig{(lo << 32) | hi, (ra << 32) | rb};
      const auto [it, inserted] = representative.try_emplace(sig, c);
      if (!inserted) {
        storeToken_[c] = false;  // derivable from the representative
      }
    }
  }

  /// Encode the current quiescent state into `key` (a reusable buffer;
  /// no allocation once its capacity has grown to the key size).
  void encodeState(StateKey& key) const {
    key.clear();
    key.reserve(graph_.channelCount() + 2 * graph_.actorCount() + schedulePos_.size());
    for (ChannelId c = 0; c < graph_.channelCount(); ++c) {
      if (storeToken_[c]) {
        key.push_back(tokens_[c]);
      }
    }
    for (const auto& r : remaining_) {
      key.push_back(r.size());
      key.insert(key.end(), r.begin(), r.end());
    }
    for (const std::uint32_t p : schedulePos_) {
      key.push_back(p);
    }
  }

  [[nodiscard]] std::uint32_t resourceOf(ActorId a) const {
    if (resources_ == nullptr || a >= resources_->actorResource.size()) {
      return ResourceConstraints::kUnbound;
    }
    return resources_->actorResource[a];
  }

  [[nodiscard]] bool isReady(ActorId a) const {
    if (!options_.autoConcurrency) {
      const std::uint32_t limit = concurrency_.empty() ? 1 : concurrency_[a];
      if (limit != 0 && remaining_[a].size() >= limit) {
        return false;
      }
    }
    const std::uint32_t res = resourceOf(a);
    if (res != ResourceConstraints::kUnbound) {
      // The processing element must be idle and it must be this actor's
      // turn in the static order.
      if (resourceBusy_[res] != 0) {
        return false;
      }
      const auto& order = resources_->staticOrder[res];
      if (order[schedulePos_[res]] != a) {
        return false;
      }
    }
    for (const ChannelId c : graph_.actor(a).inputs) {
      if (tokens_[c] < graph_.channel(c).consRate) {
        return false;
      }
    }
    return true;
  }

  void startFiring(ActorId a) {
    for (const ChannelId c : graph_.actor(a).inputs) {
      tokens_[c] -= graph_.channel(c).consRate;
    }
    auto& r = remaining_[a];
    r.insert(std::upper_bound(r.begin(), r.end(), execTime_[a]), execTime_[a]);
    const std::uint32_t res = resourceOf(a);
    if (res != ResourceConstraints::kUnbound) {
      ++resourceBusy_[res];
      schedulePos_[res] = (schedulePos_[res] + 1) % resources_->staticOrder[res].size();
    }
  }

  void completeFiring(ActorId a, std::size_t slot) {
    remaining_[a].erase(remaining_[a].begin() + static_cast<std::ptrdiff_t>(slot));
    for (const ChannelId c : graph_.actor(a).outputs) {
      tokens_[c] += graph_.channel(c).prodRate;
    }
    const std::uint32_t res = resourceOf(a);
    if (res != ResourceConstraints::kUnbound) {
      --resourceBusy_[res];
    }
    if (a == kReferenceActor) {
      ++refCompletions_;
    }
  }

  /// Start all enabled firings and retire all zero-time firings until
  /// the instant is stable. Returns false when a zero-delay livelock is
  /// detected (unbounded throughput).
  bool settleInstant() {
    // Each retired zero-time firing and each start makes progress; a
    // bound of firingsPerInstantCap breaks zero-delay cycles.
    const std::uint64_t cap =
        4096 + 64 * (graph_.actorCount() + 1) * (graph_.channelCount() + 1);
    std::uint64_t work = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (ActorId a = 0; a < graph_.actorCount(); ++a) {
        while (isReady(a)) {
          startFiring(a);
          changed = true;
          if (++work > cap) {
            return false;
          }
          if (!options_.autoConcurrency) {
            break;
          }
        }
      }
      for (ActorId a = 0; a < graph_.actorCount(); ++a) {
        auto& r = remaining_[a];
        while (!r.empty() && r.front() == 0) {
          completeFiring(a, 0);
          changed = true;
          if (++work > cap) {
            return false;
          }
        }
      }
    }
    return true;
  }

  void advanceTime() {
    std::uint64_t delta = std::numeric_limits<std::uint64_t>::max();
    for (const auto& r : remaining_) {
      if (!r.empty()) {
        delta = std::min(delta, r.front());
      }
    }
    now_ += delta;
    for (auto& r : remaining_) {
      for (auto& v : r) {
        v -= delta;
      }
    }
    // Zero-time completions are retired by the next settleInstant().
  }

  const Graph& graph_;
  const std::vector<std::uint64_t>& execTime_;
  const std::vector<std::uint32_t>& concurrency_;
  ThroughputOptions options_;
  const ResourceConstraints* resources_;
  std::vector<std::uint32_t> resourceBusy_;  // ongoing firings per resource
  std::vector<bool> storeToken_;             // channel token count in the key?
  std::vector<std::uint64_t> tokens_;                  // per channel
  std::vector<std::vector<std::uint64_t>> remaining_;  // per actor, sorted
  std::vector<std::uint32_t> schedulePos_;             // per resource
  std::uint64_t now_ = 0;
  std::uint64_t refCompletions_ = 0;
  StateKey keyBuffer_;            // reusable state-key encode buffer
  std::uint64_t storeNanos_ = 0;  // encode/store/prune time (profile)
};

/// Saturating accumulate for the HSDF-size estimate.
void saturatingAdd(std::uint64_t& total, std::uint64_t amount) {
  const std::uint64_t headroom = std::numeric_limits<std::uint64_t>::max() - total;
  total += std::min(amount, headroom);
}

/// Can the MCR fast path reproduce the state-space semantics exactly?
/// (Shared by Auto selection and forced-Mcr validation; `reason` names
/// the first violated precondition.)
bool mcrRepresentable(const sdf::TimedGraph& timed, const ResourceConstraints* resources,
                      const ThroughputOptions& options, const std::vector<std::uint64_t>& q,
                      const char** reason) {
  if (options.autoConcurrency) {
    *reason = "auto-concurrency requires the state-space engine";
    return false;
  }
  // Every finite self-concurrency limit (including limits > 1) is
  // encoded exactly by the HSDF expansion as a virtual k-token
  // self-edge; limit-0 actors are unconstrained. No limit forces the
  // state-space engine.
  if (resources != nullptr) {
    std::vector<std::uint64_t> appearances(timed.graph.actorCount(), 0);
    for (std::size_t r = 0; r < resources->staticOrder.size(); ++r) {
      for (const ActorId a : resources->staticOrder[r]) {
        if (resources->actorResource[a] != r) {
          *reason = "static order schedules an actor on a foreign resource";
          return false;
        }
        ++appearances[a];
      }
    }
    for (ActorId a = 0; a < timed.graph.actorCount(); ++a) {
      if (resources->actorResource[a] != ResourceConstraints::kUnbound &&
          appearances[a] != q[a]) {
        // The schedule-to-firing-copy mapping is only exact when the
        // cyclic order covers exactly one graph iteration.
        *reason = "static order does not cover exactly one iteration";
        return false;
      }
    }
  }
  return true;
}

/// Estimated HSDF expansion size (actors + edges), saturating.
std::uint64_t hsdfSizeEstimate(const sdf::TimedGraph& timed, const ResourceConstraints* resources,
                               const std::vector<std::uint64_t>& q) {
  std::uint64_t size = 0;
  for (ActorId a = 0; a < timed.graph.actorCount(); ++a) {
    saturatingAdd(size, q[a]);      // copies
    saturatingAdd(size, q[a] + 1);  // sequence edges (upper bound)
  }
  for (const Channel& c : timed.graph.channels()) {
    std::uint64_t tokenEdges = q[c.dst];
    if (c.consRate != 0 && tokenEdges <= std::numeric_limits<std::uint64_t>::max() / c.consRate) {
      tokenEdges *= c.consRate;
    } else {
      tokenEdges = std::numeric_limits<std::uint64_t>::max();
    }
    saturatingAdd(size, tokenEdges);
  }
  if (resources != nullptr) {
    for (const auto& order : resources->staticOrder) {
      saturatingAdd(size, order.size());
    }
  }
  return size;
}

ThroughputResult dispatch(const sdf::TimedGraph& timed, const ResourceConstraints* resources,
                          const ThroughputOptions& options) {
  if (timed.execTime.size() != timed.graph.actorCount()) {
    throw AnalysisError("computeThroughput: execTime size does not match actor count");
  }
  if (resources != nullptr) {
    resources->validateFor(timed.graph);
  }

  if (options.engine != ThroughputEngine::StateSpace) {
    const auto qOpt = sdf::computeRepetitionVector(timed.graph);
    if (!qOpt) {
      ThroughputResult result;
      result.status = ThroughputResult::Status::Inconsistent;
      result.engine = options.engine == ThroughputEngine::Mcr ? ThroughputEngine::Mcr
                                                              : ThroughputEngine::StateSpace;
      return result;
    }
    const char* reason = nullptr;
    const bool representable = mcrRepresentable(timed, resources, options, *qOpt, &reason);
    if (options.engine == ThroughputEngine::Mcr) {
      if (!representable) {
        throw AnalysisError(std::string("computeThroughput: MCR engine not applicable: ") +
                            reason);
      }
      return computeThroughputMcr(timed, resources, options);
    }
    // Auto: take the fast path when it is exact and the expansion stays
    // reasonably sized.
    if (representable &&
        hsdfSizeEstimate(timed, resources, *qOpt) <= options.maxMcrHsdfSize) {
      return computeThroughputMcr(timed, resources, options);
    }
  }

  Simulator sim(timed, options, resources);
  return sim.run();
}

}  // namespace

bool mcrFastPathApplicable(const sdf::TimedGraph& timed, const ResourceConstraints* resources,
                           const ThroughputOptions& options, const char** reason) {
  const char* local = nullptr;
  const char** out = reason != nullptr ? reason : &local;
  const auto qOpt = sdf::computeRepetitionVector(timed.graph);
  if (!qOpt) {
    *out = "inconsistent graph";
    return false;
  }
  if (!mcrRepresentable(timed, resources, options, *qOpt, out)) {
    return false;
  }
  if (hsdfSizeEstimate(timed, resources, *qOpt) > options.maxMcrHsdfSize) {
    *out = "estimated HSDF expansion exceeds maxMcrHsdfSize";
    return false;
  }
  return true;
}

const char* throughputEngineName(ThroughputEngine engine) {
  switch (engine) {
    case ThroughputEngine::Auto:
      return "auto";
    case ThroughputEngine::StateSpace:
      return "state-space";
    case ThroughputEngine::Mcr:
      return "mcr";
  }
  return "unknown";
}

void ResourceConstraints::validateFor(const sdf::Graph& g) const {
  if (actorResource.size() != g.actorCount()) {
    throw AnalysisError("ResourceConstraints: actorResource size mismatch");
  }
  std::vector<std::uint64_t> appearances(g.actorCount(), 0);
  for (const auto& order : staticOrder) {
    for (const sdf::ActorId a : order) {
      if (a >= g.actorCount()) {
        throw AnalysisError("ResourceConstraints: schedule references unknown actor");
      }
      ++appearances[a];
    }
  }
  for (sdf::ActorId a = 0; a < g.actorCount(); ++a) {
    const std::uint32_t res = actorResource[a];
    if (res == kUnbound) {
      continue;
    }
    if (res >= staticOrder.size()) {
      throw AnalysisError("ResourceConstraints: resource id out of range");
    }
    if (appearances[a] == 0) {
      throw AnalysisError("ResourceConstraints: bound actor " + g.actor(a).name +
                          " missing from its static order");
    }
  }
}

ThroughputResult computeThroughput(const sdf::TimedGraph& timed, const ThroughputOptions& options) {
  return dispatch(timed, nullptr, options);
}

ThroughputResult computeThroughput(const sdf::TimedGraph& timed,
                                   const ResourceConstraints& resources,
                                   const ThroughputOptions& options) {
  return dispatch(timed, &resources, options);
}

}  // namespace mamps::analysis
