#include "analysis/throughput.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "sdf/repetition_vector.hpp"

namespace mamps::analysis {
namespace {

using sdf::ActorId;
using sdf::Channel;
using sdf::ChannelId;
using sdf::Graph;

/// Execution state at a quiescent point: channel fillings, per-actor
/// sorted remaining firing times, and per-resource schedule positions.
struct State {
  std::vector<std::uint64_t> tokens;                    // per channel
  std::vector<std::vector<std::uint64_t>> remaining;    // per actor, sorted
  std::vector<std::uint32_t> schedulePos;               // per resource

  bool operator==(const State&) const = default;
};

struct StateHash {
  std::size_t operator()(const State& s) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (const std::uint64_t t : s.tokens) {
      mix(t);
    }
    for (const auto& r : s.remaining) {
      mix(r.size() + 0x1234567ULL);
      for (const std::uint64_t v : r) {
        mix(v);
      }
    }
    for (const std::uint32_t p : s.schedulePos) {
      mix(p + 0x77777777ULL);
    }
    return static_cast<std::size_t>(h);
  }
};

class Simulator {
 public:
  Simulator(const sdf::TimedGraph& timed, const ThroughputOptions& options,
            const ResourceConstraints* resources)
      : graph_(timed.graph),
        execTime_(timed.execTime),
        concurrency_(timed.maxConcurrent),
        options_(options),
        resources_(resources) {
    state_.tokens.resize(graph_.channelCount());
    for (ChannelId c = 0; c < graph_.channelCount(); ++c) {
      state_.tokens[c] = graph_.channel(c).initialTokens;
    }
    state_.remaining.resize(graph_.actorCount());
    if (resources_ != nullptr) {
      state_.schedulePos.resize(resources_->staticOrder.size(), 0);
      resourceBusy_.resize(resources_->staticOrder.size(), 0);
    }
  }

  ThroughputResult run() {
    ThroughputResult result;
    const auto qOpt = sdf::computeRepetitionVector(graph_);
    if (!qOpt) {
      result.status = ThroughputResult::Status::Inconsistent;
      return result;
    }
    if (graph_.actorCount() == 0) {
      result.status = ThroughputResult::Status::Deadlock;
      return result;
    }
    const std::uint64_t qRef = (*qOpt)[kReferenceActor];

    // Divergence guard: self-timed execution of a graph that is not
    // strongly bounded (e.g. a fast producer feeding an unbounded
    // channel) accumulates tokens forever and never revisits a state.
    // Token counts above this threshold cannot occur in a recurrent
    // execution of a strongly-bounded graph of this size.
    std::uint64_t initialTotal = 0;
    for (const Channel& c : graph_.channels()) {
      initialTotal += c.initialTokens;
    }
    std::uint64_t perIteration = 0;
    for (const Channel& c : graph_.channels()) {
      perIteration += (*qOpt)[c.src] * c.prodRate;
    }
    const std::uint64_t divergenceThreshold = initialTotal + 64 * perIteration + 4096;

    std::unordered_map<State, std::pair<std::uint64_t, std::uint64_t>, StateHash> seen;
    for (std::uint64_t step = 0; step < options_.maxSteps; ++step) {
      // Quiescent point: start everything startable, complete all
      // zero-time work (which may enable more starts).
      if (!settleInstant()) {
        result.status = ThroughputResult::Status::Unbounded;
        return result;
      }

      std::uint64_t totalTokens = 0;
      for (const std::uint64_t t : state_.tokens) {
        totalTokens += t;
      }
      if (totalTokens > divergenceThreshold) {
        result.status = ThroughputResult::Status::Diverged;
        result.statesExplored = seen.size();
        return result;
      }

      const bool anyOngoing =
          std::any_of(state_.remaining.begin(), state_.remaining.end(),
                      [](const auto& r) { return !r.empty(); });
      if (!anyOngoing) {
        result.status = ThroughputResult::Status::Deadlock;
        result.statesExplored = seen.size();
        return result;
      }

      const auto [it, inserted] = seen.try_emplace(state_, now_, refCompletions_);
      if (!inserted) {
        const auto [prevTime, prevCompletions] = it->second;
        const std::uint64_t period = now_ - prevTime;
        const std::uint64_t completions = refCompletions_ - prevCompletions;
        result.statesExplored = seen.size();
        result.periodCycles = period;
        if (period == 0) {
          // Cannot happen: time strictly advances between quiescent
          // snapshots once zero-time work is settled.
          result.status = ThroughputResult::Status::Unbounded;
          return result;
        }
        result.status = ThroughputResult::Status::Ok;
        result.iterationsPerCycle =
            Rational(static_cast<std::int64_t>(completions),
                     static_cast<std::int64_t>(qRef * period));
        return result;
      }

      advanceTime();
    }
    result.status = ThroughputResult::Status::StepLimit;
    result.statesExplored = seen.size();
    return result;
  }

 private:
  static constexpr ActorId kReferenceActor = 0;

  [[nodiscard]] std::uint32_t resourceOf(ActorId a) const {
    if (resources_ == nullptr || a >= resources_->actorResource.size()) {
      return ResourceConstraints::kUnbound;
    }
    return resources_->actorResource[a];
  }

  [[nodiscard]] bool isReady(ActorId a) const {
    if (!options_.autoConcurrency) {
      const std::uint32_t limit = concurrency_.empty() ? 1 : concurrency_[a];
      if (limit != 0 && state_.remaining[a].size() >= limit) {
        return false;
      }
    }
    const std::uint32_t res = resourceOf(a);
    if (res != ResourceConstraints::kUnbound) {
      // The processing element must be idle and it must be this actor's
      // turn in the static order.
      if (resourceBusy_[res] != 0) {
        return false;
      }
      const auto& order = resources_->staticOrder[res];
      if (order[state_.schedulePos[res]] != a) {
        return false;
      }
    }
    for (const ChannelId c : graph_.actor(a).inputs) {
      if (state_.tokens[c] < graph_.channel(c).consRate) {
        return false;
      }
    }
    return true;
  }

  void startFiring(ActorId a) {
    for (const ChannelId c : graph_.actor(a).inputs) {
      state_.tokens[c] -= graph_.channel(c).consRate;
    }
    auto& r = state_.remaining[a];
    r.insert(std::upper_bound(r.begin(), r.end(), execTime_[a]), execTime_[a]);
    const std::uint32_t res = resourceOf(a);
    if (res != ResourceConstraints::kUnbound) {
      ++resourceBusy_[res];
      state_.schedulePos[res] =
          (state_.schedulePos[res] + 1) % resources_->staticOrder[res].size();
    }
  }

  void completeFiring(ActorId a, std::size_t slot) {
    state_.remaining[a].erase(state_.remaining[a].begin() + static_cast<std::ptrdiff_t>(slot));
    for (const ChannelId c : graph_.actor(a).outputs) {
      state_.tokens[c] += graph_.channel(c).prodRate;
    }
    const std::uint32_t res = resourceOf(a);
    if (res != ResourceConstraints::kUnbound) {
      --resourceBusy_[res];
    }
    if (a == kReferenceActor) {
      ++refCompletions_;
    }
  }

  /// Start all enabled firings and retire all zero-time firings until
  /// the instant is stable. Returns false when a zero-delay livelock is
  /// detected (unbounded throughput).
  bool settleInstant() {
    // Each retired zero-time firing and each start makes progress; a
    // bound of firingsPerInstantCap breaks zero-delay cycles.
    const std::uint64_t cap =
        4096 + 64 * (graph_.actorCount() + 1) * (graph_.channelCount() + 1);
    std::uint64_t work = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (ActorId a = 0; a < graph_.actorCount(); ++a) {
        while (isReady(a)) {
          startFiring(a);
          changed = true;
          if (++work > cap) {
            return false;
          }
          if (!options_.autoConcurrency) {
            break;
          }
        }
      }
      for (ActorId a = 0; a < graph_.actorCount(); ++a) {
        auto& r = state_.remaining[a];
        while (!r.empty() && r.front() == 0) {
          completeFiring(a, 0);
          changed = true;
          if (++work > cap) {
            return false;
          }
        }
      }
    }
    return true;
  }

  void advanceTime() {
    std::uint64_t delta = std::numeric_limits<std::uint64_t>::max();
    for (const auto& r : state_.remaining) {
      if (!r.empty()) {
        delta = std::min(delta, r.front());
      }
    }
    now_ += delta;
    for (auto& r : state_.remaining) {
      for (auto& v : r) {
        v -= delta;
      }
    }
    // Zero-time completions are retired by the next settleInstant().
  }

  const Graph& graph_;
  const std::vector<std::uint64_t>& execTime_;
  const std::vector<std::uint32_t>& concurrency_;
  ThroughputOptions options_;
  const ResourceConstraints* resources_;
  std::vector<std::uint32_t> resourceBusy_;  // ongoing firings per resource
  State state_;
  std::uint64_t now_ = 0;
  std::uint64_t refCompletions_ = 0;
};

}  // namespace

void ResourceConstraints::validateFor(const sdf::Graph& g) const {
  if (actorResource.size() != g.actorCount()) {
    throw AnalysisError("ResourceConstraints: actorResource size mismatch");
  }
  std::vector<std::uint64_t> appearances(g.actorCount(), 0);
  for (const auto& order : staticOrder) {
    for (const sdf::ActorId a : order) {
      if (a >= g.actorCount()) {
        throw AnalysisError("ResourceConstraints: schedule references unknown actor");
      }
      ++appearances[a];
    }
  }
  for (sdf::ActorId a = 0; a < g.actorCount(); ++a) {
    const std::uint32_t res = actorResource[a];
    if (res == kUnbound) {
      continue;
    }
    if (res >= staticOrder.size()) {
      throw AnalysisError("ResourceConstraints: resource id out of range");
    }
    if (appearances[a] == 0) {
      throw AnalysisError("ResourceConstraints: bound actor " + g.actor(a).name +
                          " missing from its static order");
    }
  }
}

ThroughputResult computeThroughput(const sdf::TimedGraph& timed, const ThroughputOptions& options) {
  if (timed.execTime.size() != timed.graph.actorCount()) {
    throw AnalysisError("computeThroughput: execTime size does not match actor count");
  }
  Simulator sim(timed, options, nullptr);
  return sim.run();
}

ThroughputResult computeThroughput(const sdf::TimedGraph& timed,
                                   const ResourceConstraints& resources,
                                   const ThroughputOptions& options) {
  if (timed.execTime.size() != timed.graph.actorCount()) {
    throw AnalysisError("computeThroughput: execTime size does not match actor count");
  }
  resources.validateFor(timed.graph);
  Simulator sim(timed, options, &resources);
  return sim.run();
}

}  // namespace mamps::analysis
