// Storage-distribution (buffer capacity) analysis.
//
// A bounded channel buffer is modeled by a reverse edge carrying "space
// tokens" (Stuijk [14]): a channel with capacity beta tokens gets a
// back-edge dst -> src with beta - initialTokens space tokens, the
// production rate of the back-edge equal to the forward consumption
// rate and vice versa. The producer then blocks until space is free,
// exactly like the generated platform's software does.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/throughput.hpp"
#include "sdf/graph.hpp"

namespace mamps::analysis {

/// Capacity per channel, in tokens. Zero means unbounded (no back-edge);
/// self-edges are never capacitated (their token count is fixed).
using BufferCapacities = std::vector<std::uint64_t>;

/// Build the capacitated graph: a copy of `g` with one space back-edge
/// per bounded channel. Back-edges are named "<channel>_space".
/// @param g the graph to capacitate
/// @param capacities one entry per channel of `g` (0 = unbounded)
/// @return the graph with space back-edges appended
/// @throws ModelError when a capacity is smaller than the channel's
///   initial tokens or smaller than max(prodRate, consRate)
[[nodiscard]] sdf::Graph withCapacities(const sdf::Graph& g, const BufferCapacities& capacities);

/// Timed variant: back-edge transport is instantaneous (space is
/// released by the consumer firing itself), so execution times carry
/// over unchanged.
/// @param timed the timed graph to capacitate
/// @param capacities one entry per channel (0 = unbounded)
/// @return the capacitated timed graph
/// @throws ModelError on invalid capacities (see the structural variant)
[[nodiscard]] sdf::TimedGraph withCapacities(const sdf::TimedGraph& timed,
                                             const BufferCapacities& capacities);

/// The classical per-channel lower bound for a deadlock-free capacity:
/// prod + cons - gcd(prod, cons) + (initialTokens mod gcd), and at least
/// the number of initial tokens.
/// @param c the channel to bound
/// @return the smallest capacity that can possibly avoid deadlock
[[nodiscard]] std::uint64_t capacityLowerBound(const sdf::Channel& c);

/// Smallest per-channel capacities (found by demand-driven search) for
/// which the graph executes one iteration without deadlock.
/// @param g the graph to size
/// @return the capacities, or nullopt when the uncapacitated graph
///   itself deadlocks
[[nodiscard]] std::optional<BufferCapacities> minimalDeadlockFreeCapacities(const sdf::Graph& g);

/// Outcome of throughput-constrained buffer sizing.
struct BufferSizingResult {
  /// Chosen capacity per channel.
  BufferCapacities capacities;
  /// Throughput of the capacitated graph.
  Rational achievedThroughput = Rational(0);
  std::uint64_t totalTokens = 0;  ///< sum of capacities
  std::uint64_t totalBytes = 0;   ///< capacity * tokenSize summed
};

/// Greedy throughput-constrained buffer sizing: starting from the
/// minimal deadlock-free distribution, repeatedly grow the capacity
/// that yields the best throughput improvement per added byte until
/// `targetIterationsPerCycle` is met.
/// @param timed the graph to size
/// @param targetIterationsPerCycle the throughput to reach
/// @param maxRounds growth-step budget before giving up
/// @return the sizing, or nullopt when the target is unreachable even
///   with effectively-unbounded buffers
[[nodiscard]] std::optional<BufferSizingResult> sizeBuffersForThroughput(
    const sdf::TimedGraph& timed, const Rational& targetIterationsPerCycle,
    std::uint64_t maxRounds = 512);

}  // namespace mamps::analysis
