#include "analysis/buffer.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/mcm.hpp"
#include "sdf/repetition_vector.hpp"

namespace mamps::analysis {

using sdf::ActorId;
using sdf::Channel;
using sdf::ChannelId;
using sdf::ChannelSpec;
using sdf::Graph;

Graph withCapacities(const Graph& g, const BufferCapacities& capacities) {
  if (capacities.size() != g.channelCount()) {
    throw ModelError("withCapacities: capacity vector size mismatch");
  }
  Graph out = g;
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const Channel& channel = g.channel(c);
    const std::uint64_t beta = capacities[c];
    if (beta == 0 || channel.isSelfEdge()) {
      continue;
    }
    if (beta < channel.initialTokens) {
      throw ModelError("capacity of channel " + channel.name +
                       " is smaller than its initial tokens");
    }
    if (beta < std::max(channel.prodRate, channel.consRate)) {
      throw ModelError("capacity of channel " + channel.name +
                       " is smaller than a single production/consumption");
    }
    ChannelSpec space;
    space.src = channel.dst;
    space.dst = channel.src;
    space.prodRate = channel.consRate;  // consuming frees that much space
    space.consRate = channel.prodRate;  // producing claims that much space
    space.initialTokens = beta - channel.initialTokens;
    space.tokenSizeBytes = 1;  // space tokens carry no payload
    space.name = channel.name + "_space";
    out.connect(space);
  }
  return out;
}

sdf::TimedGraph withCapacities(const sdf::TimedGraph& timed, const BufferCapacities& capacities) {
  // rebuildFrom carries over every per-actor annotation — in particular
  // maxConcurrent, which an earlier field-by-field rebuild here dropped,
  // silently serializing the pipelined (limit-0) latency stages of
  // binding-aware graphs.
  return sdf::TimedGraph::rebuildFrom(timed, withCapacities(timed.graph, capacities));
}

std::uint64_t capacityLowerBound(const Channel& c) {
  const std::uint64_t g = std::gcd(c.prodRate, c.consRate);
  const std::uint64_t bound = c.prodRate + c.consRate - g + (c.initialTokens % g);
  return std::max<std::uint64_t>({bound, c.initialTokens, c.prodRate, c.consRate});
}

namespace {

/// Token-counting execution of one iteration on the capacitated graph;
/// on deadlock, reports a channel whose capacity growth would unblock a
/// producer (nullopt when the deadlock is not capacity-induced).
struct IterationProbe {
  bool completed = false;
  std::optional<ChannelId> blockedChannel;  // original channel id
};

IterationProbe probeIteration(const Graph& g, const BufferCapacities& capacities,
                              const std::vector<std::uint64_t>& q) {
  // Token state for forward channels and derived space state.
  std::vector<std::uint64_t> tokens(g.channelCount());
  std::vector<std::uint64_t> space(g.channelCount());
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const Channel& channel = g.channel(c);
    tokens[c] = channel.initialTokens;
    space[c] = (capacities[c] == 0 || channel.isSelfEdge())
                   ? std::numeric_limits<std::uint64_t>::max()
                   : capacities[c] - channel.initialTokens;
  }
  std::vector<std::uint64_t> remaining(q.begin(), q.end());

  bool progress = true;
  while (progress) {
    progress = false;
    for (ActorId a = 0; a < g.actorCount(); ++a) {
      if (remaining[a] == 0) {
        continue;
      }
      bool ready = true;
      for (const ChannelId c : g.actor(a).inputs) {
        if (tokens[c] < g.channel(c).consRate) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      for (const ChannelId c : g.actor(a).outputs) {
        if (space[c] != std::numeric_limits<std::uint64_t>::max() &&
            space[c] < g.channel(c).prodRate) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      for (const ChannelId c : g.actor(a).inputs) {
        tokens[c] -= g.channel(c).consRate;
        if (space[c] != std::numeric_limits<std::uint64_t>::max()) {
          space[c] += g.channel(c).consRate;
        }
      }
      for (const ChannelId c : g.actor(a).outputs) {
        tokens[c] += g.channel(c).prodRate;
        if (space[c] != std::numeric_limits<std::uint64_t>::max()) {
          space[c] -= g.channel(c).prodRate;
        }
      }
      --remaining[a];
      progress = true;
    }
  }

  IterationProbe out;
  out.completed = std::all_of(remaining.begin(), remaining.end(),
                              [](std::uint64_t r) { return r == 0; });
  if (out.completed) {
    return out;
  }
  // Find a pending actor that is token-ready but space-blocked; its
  // fullest blocking channel is the growth candidate.
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    if (remaining[a] == 0) {
      continue;
    }
    bool tokenReady = true;
    for (const ChannelId c : g.actor(a).inputs) {
      if (tokens[c] < g.channel(c).consRate) {
        tokenReady = false;
        break;
      }
    }
    if (!tokenReady) {
      continue;
    }
    for (const ChannelId c : g.actor(a).outputs) {
      if (space[c] != std::numeric_limits<std::uint64_t>::max() &&
          space[c] < g.channel(c).prodRate) {
        out.blockedChannel = c;
        return out;
      }
    }
  }
  return out;
}

}  // namespace

std::optional<BufferCapacities> minimalDeadlockFreeCapacities(const Graph& g) {
  const auto qOpt = sdf::computeRepetitionVector(g);
  if (!qOpt) {
    throw AnalysisError("minimalDeadlockFreeCapacities: inconsistent graph");
  }
  if (!sdf::isDeadlockFree(g)) {
    return std::nullopt;  // deadlocks even with unbounded buffers
  }
  BufferCapacities capacities(g.channelCount(), 0);
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    if (!g.channel(c).isSelfEdge()) {
      capacities[c] = capacityLowerBound(g.channel(c));
    }
  }
  // Demand-driven growth. An upper bound on any needed capacity is the
  // total tokens moved in one iteration, so this terminates.
  for (std::uint64_t round = 0;; ++round) {
    const IterationProbe probe = probeIteration(g, capacities, *qOpt);
    if (probe.completed) {
      return capacities;
    }
    if (!probe.blockedChannel) {
      // Deadlock not caused by capacities — cannot happen because the
      // unbounded graph is deadlock-free, but guard against it.
      return std::nullopt;
    }
    capacities[*probe.blockedChannel] += g.channel(*probe.blockedChannel).prodRate;
    if (round > 1'000'000) {
      throw AnalysisError("minimalDeadlockFreeCapacities: runaway growth");
    }
  }
}

std::optional<BufferSizingResult> sizeBuffersForThroughput(const sdf::TimedGraph& timed,
                                                           const Rational& target,
                                                           std::uint64_t maxRounds) {
  const Graph& g = timed.graph;
  auto capacitiesOpt = minimalDeadlockFreeCapacities(g);
  if (!capacitiesOpt) {
    return std::nullopt;
  }
  BufferCapacities capacities = std::move(*capacitiesOpt);

  const auto evaluate = [&](const BufferCapacities& caps) -> Rational {
    const ThroughputResult r = computeThroughput(withCapacities(timed, caps));
    if (r.status == ThroughputResult::Status::Unbounded) {
      return target;  // infinitely fast: any finite target is met
    }
    return r.ok() ? r.iterationsPerCycle : Rational(0);
  };

  Rational current = evaluate(capacities);
  // The throughput with unbounded buffers is the ceiling; bail out early
  // when even that misses the target. Computed via the MCR analysis,
  // which (unlike state-space execution) handles graphs that are not
  // strongly bounded. An Unbounded verdict (every cycle has zero total
  // execution time) clears any finite target.
  const ThroughputResult ceiling = computeThroughputMcr(timed);
  if (ceiling.status != ThroughputResult::Status::Unbounded &&
      (!ceiling.ok() || ceiling.iterationsPerCycle < target)) {
    return std::nullopt;
  }

  for (std::uint64_t round = 0; round < maxRounds && current < target; ++round) {
    // Greedy: grow each non-self channel by one production quantum, keep
    // the single best improvement per added byte.
    Rational bestGain(-1);
    std::optional<ChannelId> bestChannel;
    Rational bestThroughput = current;
    for (ChannelId c = 0; c < g.channelCount(); ++c) {
      if (g.channel(c).isSelfEdge()) {
        continue;
      }
      BufferCapacities trial = capacities;
      trial[c] += g.channel(c).prodRate;
      const Rational t = evaluate(trial);
      if (t > current) {
        const Rational gain =
            (t - current) / Rational(static_cast<std::int64_t>(
                                g.channel(c).prodRate * g.channel(c).tokenSizeBytes));
        if (gain > bestGain) {
          bestGain = gain;
          bestChannel = c;
          bestThroughput = t;
        }
      }
    }
    if (!bestChannel) {
      // Plateau: grow every channel once to escape (throughput is
      // monotone in capacities, so this is safe).
      for (ChannelId c = 0; c < g.channelCount(); ++c) {
        if (!g.channel(c).isSelfEdge()) {
          capacities[c] += g.channel(c).prodRate;
        }
      }
      current = evaluate(capacities);
      continue;
    }
    capacities[*bestChannel] += g.channel(*bestChannel).prodRate;
    current = bestThroughput;
  }

  if (current < target) {
    return std::nullopt;
  }
  BufferSizingResult result;
  result.capacities = std::move(capacities);
  result.achievedThroughput = current;
  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    result.totalTokens += result.capacities[c];
    result.totalBytes += result.capacities[c] * g.channel(c).tokenSizeBytes;
  }
  return result;
}

}  // namespace mamps::analysis
