// Incremental throughput re-analysis for design-space exploration.
//
// The buffer-growth loop of the mapping flow and the sweeps of a DSE
// run re-analyze the *same* binding-aware graph many times while only
// channel capacities — initial-token counts on capacity back-edges —
// change between rounds. The graph topology, rates, execution times,
// and static-order schedules are invariant, so the expensive parts of
// the MCR fast path (graph construction, repetition vector, HSDF
// expansion layout, static-order precedence encoding) can be computed
// once and reused: IncrementalThroughput caches the expansion as a flat
// edge table in which every SDF channel owns a contiguous slab, patches
// only that slab when the channel's token count changes, and re-solves
// with Howard's policy iteration warm-started from the previous optimal
// policy. The result is bit-identical to a from-scratch
// computeThroughput() call on the patched graph (pinned by the
// randomized properties in tests/analysis_property_test.cpp).
//
// Graphs the MCR fast path cannot represent exactly keep their existing
// path: compute() falls back to the unified computeThroughput() entry
// point on an internally patched graph copy, so the state-space engine
// semantics (divergence detection, auto-concurrency, step limits) are
// untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/flat_hsdf.hpp"
#include "analysis/mcm.hpp"
#include "analysis/throughput.hpp"
#include "sdf/graph.hpp"

namespace mamps::analysis {

/// Reusable throughput-analysis context for a graph whose topology,
/// rates, execution times, and resource constraints are fixed while
/// initial-token counts (channel capacities) change between queries.
class IncrementalThroughput {
 public:
  /// Build the context. When the MCR fast path is exact for the
  /// requested semantics (see mcrFastPathApplicable), the HSDF
  /// expansion layout and static-order encoding are precomputed here;
  /// otherwise every compute() runs the unified entry point on the
  /// internal graph copy.
  /// @param timed the graph to analyze (copied; `timed.execTime` must
  ///   have one entry per actor)
  /// @param resources optional binding and static orders (copied; may
  ///   be null)
  /// @param options engine selection and safety limits, applied to
  ///   every compute() call
  /// @throws AnalysisError on shape violations (execTime size, invalid
  ///   resource constraints)
  explicit IncrementalThroughput(const sdf::TimedGraph& timed,
                                 const ResourceConstraints* resources = nullptr,
                                 const ThroughputOptions& options = {});

  /// Change the initial-token count of one channel (a capacity
  /// back-edge in the flow's use). O(q[dst] * consRate) of the channel
  /// when on the fast path; O(1) otherwise.
  /// @param channel a channel id of the constructed graph
  /// @param tokens the new initial-token count
  /// @throws AnalysisError when `channel` is out of range
  void setInitialTokens(sdf::ChannelId channel, std::uint64_t tokens);

  /// Re-analyze with the current token counts. On the fast path this
  /// collapses the cached edge table and runs warm-started Howard; the
  /// verdict (status, rational, engine, hsdfActors) is identical to
  /// computeThroughput() on the current graph. Off the fast path it
  /// delegates to computeThroughput() directly.
  /// @return the throughput verdict, including which engine ran
  [[nodiscard]] ThroughputResult compute();

  /// True when queries run on the cached MCR expansion (the incremental
  /// path); false when every compute() delegates to the unified entry
  /// point.
  /// @return whether the MCR fast path is active
  [[nodiscard]] bool onFastPath() const { return fastPath_; }

  /// The analyzed graph with the current (patched) token counts.
  /// @return the internal graph copy
  [[nodiscard]] const sdf::TimedGraph& graph() const { return timed_; }

  /// Seed the internal solver's next solve from a previously exported
  /// policy — e.g. a neighboring design point's converged policy during
  /// a DSE sweep. Warm starts never change results (see
  /// SolverWarmStart); mismatched handles are ignored.
  /// @param warm the handle to copy hints from
  void adoptWarmStart(const SolverWarmStart& warm) { solver_.adoptWarmStart(warm); }

  /// Export the internal solver's converged policy for seeding another
  /// context.
  /// @param warm the handle to copy hints into
  void exportWarmStart(SolverWarmStart& warm) const { solver_.exportWarmStart(warm); }

 private:
  sdf::TimedGraph timed_;  ///< current token state (also the fallback input)
  std::optional<ResourceConstraints> resources_;
  ThroughputOptions options_;
  bool fastPath_ = false;
  FlatExpansion flat_;       ///< cached flat expansion (fast path only)
  CycleRatioSolver solver_;  ///< warm-started across compute()s
};

}  // namespace mamps::analysis
