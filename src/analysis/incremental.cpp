#include "analysis/incremental.hpp"

#include "support/timer.hpp"

namespace mamps::analysis {

using sdf::ChannelId;

IncrementalThroughput::IncrementalThroughput(const sdf::TimedGraph& timed,
                                             const ResourceConstraints* resources,
                                             const ThroughputOptions& options)
    // Whole-struct copy of the TimedGraph: every per-actor annotation
    // (execTime, maxConcurrent, future fields) is retained — see
    // TimedGraph::rebuildFrom for the field-by-field-rebuild hazard.
    : timed_(timed), options_(options) {
  if (timed_.execTime.size() != timed_.graph.actorCount()) {
    throw AnalysisError("IncrementalThroughput: execTime size does not match actor count");
  }
  if (resources != nullptr) {
    resources->validateFor(timed_.graph);
    resources_ = *resources;
  }
  const ResourceConstraints* res = resources_ ? &*resources_ : nullptr;
  fastPath_ = options_.engine != ThroughputEngine::StateSpace &&
              mcrFastPathApplicable(timed_, res, options_);
  if (fastPath_) {
    // The immutable prefix (topology, repetition vector, self-
    // concurrency edges, static-order chains) is encoded once here;
    // setInitialTokens only re-encodes the touched channel's slab.
    flat_.build(timed_, res);
    solver_.setThreads(options_.solverThreads);
  }
}

void IncrementalThroughput::setInitialTokens(ChannelId channel, std::uint64_t tokens) {
  if (channel >= timed_.graph.channelCount()) {
    throw AnalysisError("IncrementalThroughput::setInitialTokens: channel out of range");
  }
  if (timed_.graph.channel(channel).initialTokens == tokens) {
    return;
  }
  timed_.graph.setInitialTokens(channel, tokens);
  if (fastPath_) {
    flat_.patchChannel(timed_, channel);
  }
}

ThroughputResult IncrementalThroughput::compute() {
  if (!fastPath_) {
    return resources_ ? computeThroughput(timed_, *resources_, options_)
                      : computeThroughput(timed_, options_);
  }

  ThroughputResult result;
  result.engine = ThroughputEngine::Mcr;
  result.hsdfActors = flat_.hsdfActors();
  if (flat_.hsdfActors() == 0) {
    result.status = ThroughputResult::Status::Deadlock;
    return result;
  }

  const std::vector<CycleRatioEdge>* edges = nullptr;
  {
    support::ScopedTimer timer(result.expansionNanos);
    edges = &flat_.collapse();
  }
  CycleRatioResult mcr;
  {
    support::ScopedTimer timer(result.solveNanos);
    mcr = solver_.solve(static_cast<std::size_t>(flat_.hsdfActors()), *edges);
  }
  switch (mcr.status) {
    case CycleRatioResult::Status::Ok:
      if (mcr.ratio.isZero()) {
        result.status = ThroughputResult::Status::Unbounded;
      } else {
        result.status = ThroughputResult::Status::Ok;
        result.iterationsPerCycle = mcr.ratio.reciprocal();
      }
      return result;
    case CycleRatioResult::Status::Deadlock:
      result.status = ThroughputResult::Status::Deadlock;
      result.iterationsPerCycle = Rational(0);
      return result;
    case CycleRatioResult::Status::Acyclic:
      result.status = ThroughputResult::Status::Unbounded;
      return result;
  }
  result.status = ThroughputResult::Status::Unbounded;
  return result;
}

}  // namespace mamps::analysis
