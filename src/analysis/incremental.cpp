#include "analysis/incremental.hpp"

#include <unordered_map>

#include "sdf/hsdf.hpp"
#include "sdf/repetition_vector.hpp"

namespace mamps::analysis {

using sdf::ActorId;
using sdf::Channel;
using sdf::ChannelId;

IncrementalThroughput::IncrementalThroughput(const sdf::TimedGraph& timed,
                                             const ResourceConstraints* resources,
                                             const ThroughputOptions& options)
    // Whole-struct copy of the TimedGraph: every per-actor annotation
    // (execTime, maxConcurrent, future fields) is retained — see
    // TimedGraph::rebuildFrom for the field-by-field-rebuild hazard.
    : timed_(timed), options_(options) {
  if (timed_.execTime.size() != timed_.graph.actorCount()) {
    throw AnalysisError("IncrementalThroughput: execTime size does not match actor count");
  }
  if (resources != nullptr) {
    resources->validateFor(timed_.graph);
    resources_ = *resources;
  }
  const ResourceConstraints* res = resources_ ? &*resources_ : nullptr;
  fastPath_ = options_.engine != ThroughputEngine::StateSpace &&
              mcrFastPathApplicable(timed_, res, options_);
  if (fastPath_) {
    buildExpansion();
  }
}

void IncrementalThroughput::buildExpansion() {
  // The layout mirrors sdf::toHsdf + toHsdfWithStaticOrder, minus the
  // graph materialization: q[a] firing copies per actor, one edge per
  // consumed token, the virtual self-edge expansion for finite
  // self-concurrency limits, and the static-order chains. Only the
  // per-channel token slabs ever change; everything after them is
  // static.
  q_ = *sdf::computeRepetitionVector(timed_.graph);  // consistent per fastPath_
  copyStart_.resize(timed_.graph.actorCount());
  hsdfActors_ = 0;
  for (ActorId a = 0; a < timed_.graph.actorCount(); ++a) {
    copyStart_[a] = static_cast<std::uint32_t>(hsdfActors_);
    hsdfActors_ += q_[a];
  }

  edges_.clear();
  slabOffset_.assign(timed_.graph.channelCount(), 0);
  std::size_t total = 0;
  for (ChannelId c = 0; c < timed_.graph.channelCount(); ++c) {
    slabOffset_[c] = total;
    total += q_[timed_.graph.channel(c).dst] * timed_.graph.channel(c).consRate;
  }
  edges_.resize(total);
  for (ChannelId c = 0; c < timed_.graph.channelCount(); ++c) {
    rebuildChannelSlab(c);
  }

  // Self-concurrency constraints (see sdf::toHsdf): an actor with
  // finite limit k gets the expansion of a virtual rate-1 self-edge
  // carrying k tokens. These edges never change.
  for (ActorId a = 0; a < timed_.graph.actorCount(); ++a) {
    const std::uint64_t limit = timed_.concurrencyLimit(a);
    if (limit == 0) {
      continue;
    }
    for (std::uint64_t j = 0; j < q_[a]; ++j) {
      const sdf::TokenDependency dep = sdf::hsdfTokenDependency(j, limit, 1, q_[a]);
      CycleRatioEdge e;
      e.from = copyStart_[a] + static_cast<std::uint32_t>(dep.srcCopy);
      e.to = copyStart_[a] + static_cast<std::uint32_t>(j);
      e.weight = static_cast<std::int64_t>(timed_.execTime[a]);
      e.delay = static_cast<std::int64_t>(dep.delay);
      edges_.push_back(e);
    }
  }

  // Static-order chains (see toHsdfWithStaticOrder): the j-th
  // appearance of an actor is its firing copy j; consecutive
  // appearances are linked, the wrap-around edge carries one token.
  // mcrFastPathApplicable already verified the appearance counts.
  if (resources_) {
    std::vector<std::uint64_t> appearance(timed_.graph.actorCount(), 0);
    for (const auto& order : resources_->staticOrder) {
      if (order.empty()) {
        continue;
      }
      std::fill(appearance.begin(), appearance.end(), 0);
      std::vector<std::uint32_t> chain;
      chain.reserve(order.size());
      for (const ActorId a : order) {
        chain.push_back(copyStart_[a] + static_cast<std::uint32_t>(appearance[a]++));
      }
      for (std::size_t i = 0; i < chain.size(); ++i) {
        const std::size_t next = (i + 1) % chain.size();
        CycleRatioEdge e;
        e.from = chain[i];
        e.to = chain[next];
        e.weight = static_cast<std::int64_t>(timed_.execTime[order[i]]);
        e.delay = (next == 0) ? 1 : 0;
        edges_.push_back(e);
      }
    }
  }
}

void IncrementalThroughput::rebuildChannelSlab(ChannelId channel) {
  // One edge per token consumed within an iteration, following the
  // shared token rule of the standard expansion (sdf::
  // hsdfTokenDependency — the same function sdf::toHsdf uses, so the
  // cached table cannot drift from the from-scratch encoding).
  const Channel& ch = timed_.graph.channel(channel);
  const std::uint64_t cons = ch.consRate;
  const std::uint64_t qDst = q_[ch.dst];
  const auto weight = static_cast<std::int64_t>(timed_.execTime[ch.src]);
  std::size_t slot = slabOffset_[channel];
  for (std::uint64_t j = 0; j < qDst; ++j) {
    for (std::uint64_t k = 0; k < cons; ++k) {
      const sdf::TokenDependency dep =
          sdf::hsdfTokenDependency(j * cons + k, ch.initialTokens, ch.prodRate, q_[ch.src]);
      CycleRatioEdge& e = edges_[slot++];
      e.from = copyStart_[ch.src] + static_cast<std::uint32_t>(dep.srcCopy);
      e.to = copyStart_[ch.dst] + static_cast<std::uint32_t>(j);
      e.weight = weight;
      e.delay = static_cast<std::int64_t>(dep.delay);
    }
  }
}

void IncrementalThroughput::setInitialTokens(ChannelId channel, std::uint64_t tokens) {
  if (channel >= timed_.graph.channelCount()) {
    throw AnalysisError("IncrementalThroughput::setInitialTokens: channel out of range");
  }
  if (timed_.graph.channel(channel).initialTokens == tokens) {
    return;
  }
  timed_.graph.setInitialTokens(channel, tokens);
  if (fastPath_) {
    rebuildChannelSlab(channel);
  }
}

ThroughputResult IncrementalThroughput::compute() {
  if (!fastPath_) {
    return resources_ ? computeThroughput(timed_, *resources_, options_)
                      : computeThroughput(timed_, options_);
  }

  ThroughputResult result;
  result.engine = ThroughputEngine::Mcr;
  result.hsdfActors = hsdfActors_;
  if (hsdfActors_ == 0) {
    result.status = ThroughputResult::Status::Deadlock;
    return result;
  }

  // Collapse parallel edges to the minimum-delay representative (all
  // parallel edges share the source, hence the weight), exactly like
  // the from-scratch MCR path does before Howard runs.
  collapsed_.clear();
  collapsed_.reserve(edges_.size());
  // lint:allow(unordered-deterministic) -- never iterated: try_emplace lookups only, and min() over parallel delays is order-independent
  std::unordered_map<std::uint64_t, std::size_t> byPair;
  byPair.reserve(edges_.size());
  for (const CycleRatioEdge& e : edges_) {
    const std::uint64_t key = (std::uint64_t{e.from} << 32) | e.to;
    const auto [it, inserted] = byPair.try_emplace(key, collapsed_.size());
    if (!inserted) {
      CycleRatioEdge& existing = collapsed_[it->second];
      existing.delay = std::min(existing.delay, e.delay);
      continue;
    }
    collapsed_.push_back(e);
  }

  const CycleRatioResult mcr = solver_.solve(hsdfActors_, collapsed_);
  switch (mcr.status) {
    case CycleRatioResult::Status::Ok:
      if (mcr.ratio.isZero()) {
        result.status = ThroughputResult::Status::Unbounded;
      } else {
        result.status = ThroughputResult::Status::Ok;
        result.iterationsPerCycle = mcr.ratio.reciprocal();
      }
      return result;
    case CycleRatioResult::Status::Deadlock:
      result.status = ThroughputResult::Status::Deadlock;
      result.iterationsPerCycle = Rational(0);
      return result;
    case CycleRatioResult::Status::Acyclic:
      result.status = ThroughputResult::Status::Unbounded;
      return result;
  }
  result.status = ThroughputResult::Status::Unbounded;
  return result;
}

}  // namespace mamps::analysis
