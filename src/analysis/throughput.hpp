// Unified throughput analysis entry point.
//
// Two exact engines compute the self-timed throughput of a timed SDF
// graph:
//
//   - a maximum-cycle-ratio (MCR) fast path that expands the graph to
//     HSDF and runs Howard's policy iteration (polynomial time, see
//     analysis/mcm.hpp), and
//   - a state-space engine that executes the operational semantics
//     (Ghamarian et al. [3]) until a state recurs (exponential worst
//     case, but defined for every graph, including divergent ones).
//
// computeThroughput() picks the fast path whenever it is exact for the
// requested semantics and falls back to the state-space engine
// otherwise; ThroughputResult::engine reports which one ran. The flow
// defines throughput as graph iterations per clock cycle; the
// platform's system clock is the base time unit (Section 5).
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/graph.hpp"
#include "support/rational.hpp"

/// \namespace mamps
/// \brief Root namespace of the MAMPS mapping-flow reproduction.

/// \namespace mamps::analysis
/// \brief Throughput, cycle-ratio, and buffer-capacity analyses of
/// timed SDF graphs (the performance-guarantee layer of the flow).

namespace mamps::analysis {

/// Processor sharing: actors bound to the same resource execute
/// mutually exclusively and in a fixed cyclic static order, exactly like
/// the lookup-table scheduler of the generated MAMPS software
/// (Section 6.3: "scheduling ... is done through a static order schedule
/// which reduces the scheduler to a lookup table").
struct ResourceConstraints {
  /// Sentinel resource id meaning "not bound to a shared resource".
  static constexpr std::uint32_t kUnbound = 0xffffffff;

  /// actor id -> resource id (kUnbound = the actor has its own resource,
  /// e.g. hardware stages of the communication model).
  std::vector<std::uint32_t> actorResource;
  /// Per resource: the cyclic firing order. Actors with repetition count
  /// > 1 appear multiple times. Every bound actor must appear.
  std::vector<std::vector<sdf::ActorId>> staticOrder;

  /// Shape checks against a graph.
  /// @param g the graph the constraints will be applied to
  /// @throws AnalysisError when actorResource does not cover every
  ///   actor, a schedule references an unknown actor, a resource id is
  ///   out of range, or a bound actor is missing from its static order.
  void validateFor(const sdf::Graph& g) const;
};

/// Selects the algorithm behind computeThroughput().
enum class ThroughputEngine {
  /// Use the MCR fast path when it is exact for the requested semantics
  /// (see docs/throughput.md for the precise conditions), otherwise
  /// fall back to the state-space engine. The default.
  Auto,
  /// Force the state-space engine (always defined; exponential worst
  /// case; the only engine supporting auto-concurrency and divergence
  /// detection).
  StateSpace,
  /// Force the MCR fast path. computeThroughput() throws AnalysisError
  /// when the fast path cannot represent the requested semantics
  /// (auto-concurrency, or static orders that do not cover one full
  /// iteration). Finite self-concurrency limits — including limits
  /// above 1 — are encoded exactly by the HSDF expansion.
  Mcr,
};

/// Human-readable engine name ("auto", "state-space", "mcr").
/// @param engine the engine to name
/// @return a static, never-null C string
[[nodiscard]] const char* throughputEngineName(ThroughputEngine engine);

/// Tuning knobs for computeThroughput().
struct ThroughputOptions {
  /// Allow an actor to fire concurrently with itself. The MAMPS platform
  /// always serializes firings of an actor on its processing element, so
  /// the flow analyses with auto-concurrency disabled. Forces the
  /// state-space engine under ThroughputEngine::Auto.
  bool autoConcurrency = false;
  /// Safety cap on simulated quiescent steps before the state-space
  /// engine gives up with Status::StepLimit.
  std::uint64_t maxSteps = 10'000'000;
  /// Which engine to run; see ThroughputEngine.
  ThroughputEngine engine = ThroughputEngine::Auto;
  /// Auto only: fall back to the state-space engine when the HSDF
  /// expansion would exceed this many actors plus edges (guards against
  /// graphs whose repetition vector explodes the expansion).
  std::uint64_t maxMcrHsdfSize = 1'000'000;
  /// State-space only: bound on the number of stored quiescent states.
  /// When the store grows past this, the oldest (transient-prefix)
  /// states are pruned; recurrence detection then latches onto a later
  /// revisit of the periodic phase, trading steps for memory. Periodic
  /// phases longer than roughly half this bound can no longer be
  /// detected and end in Status::StepLimit.
  std::uint64_t maxStoredStates = 1u << 20;
  /// MCR only: worker threads for the independent per-SCC Howard solves
  /// of one cycle-ratio problem (CycleRatioSolver::setThreads). Results
  /// are bit-identical for any value; 0 and 1 both mean sequential.
  unsigned solverThreads = 1;
};

/// Would Auto engine selection route this analysis to the MCR fast
/// path? True when the HSDF encoding is exact for the requested
/// semantics (no auto-concurrency; static orders, if any, cover exactly
/// one iteration) and the estimated expansion size stays under
/// `options.maxMcrHsdfSize`. IncrementalThroughput uses the same
/// predicate, so its engine choice always matches a from-scratch
/// computeThroughput() call.
/// @param timed the graph to analyze
/// @param resources optional binding and static orders (may be null)
/// @param options engine selection and safety limits
/// @param reason optional out-parameter; on false names the first
///   violated precondition (static string, never null)
/// @return true when Auto would pick the MCR engine
[[nodiscard]] bool mcrFastPathApplicable(const sdf::TimedGraph& timed,
                                         const ResourceConstraints* resources,
                                         const ThroughputOptions& options,
                                         const char** reason = nullptr);

/// Outcome of a throughput analysis.
struct ThroughputResult {
  /// Verdict of the analysis.
  enum class Status {
    Ok,            ///< throughput computed
    Deadlock,      ///< execution halts; throughput is zero
    Inconsistent,  ///< no repetition vector exists
    Unbounded,     ///< a zero-execution-time cycle fires infinitely fast
    Diverged,      ///< tokens accumulate without bound (graph is not
                   ///< strongly bounded; analyze with buffer capacities
                   ///< or use the MCR engine, which reports the long-run
                   ///< iteration rate for such graphs)
    StepLimit,     ///< maxSteps exceeded before a recurrent state
  };

  /// Verdict; iterationsPerCycle is only meaningful for Ok.
  Status status = Status::StepLimit;
  /// Long-term average graph iterations per clock cycle (valid for Ok;
  /// zero for Deadlock).
  Rational iterationsPerCycle = Rational(0);
  /// The engine that produced this result (never Auto).
  ThroughputEngine engine = ThroughputEngine::StateSpace;
  /// State-space engine: number of quiescent states explored until the
  /// verdict (stored states plus states dropped by prefix pruning; a
  /// pruned-then-revisited state counts in both).
  std::uint64_t statesExplored = 0;
  /// State-space engine: length of the periodic phase in clock cycles.
  std::uint64_t periodCycles = 0;
  /// MCR engine: number of actors of the analyzed HSDF expansion.
  std::uint64_t hsdfActors = 0;

  // Per-phase wall-clock profile of the analysis (support::ScopedTimer
  // accumulations; integer nanoseconds so equality checks stay exact).
  // Timings are measurements, not results: the determinism property
  // wall compares every field of two ThroughputResults *except* these.
  /// Nanoseconds spent building/patching/collapsing the HSDF edge
  /// tables (MCR engine only).
  std::uint64_t expansionNanos = 0;
  /// Nanoseconds spent in the solver proper: Howard's policy iteration
  /// (MCR) or the simulation loop minus state storage (state-space).
  std::uint64_t solveNanos = 0;
  /// Nanoseconds spent encoding, storing, and pruning quiescent states
  /// (state-space engine only).
  std::uint64_t storeNanos = 0;

  /// True when the analysis completed with a throughput value.
  /// @return status == Status::Ok
  [[nodiscard]] bool ok() const { return status == Status::Ok; }
};

/// Compute the self-timed throughput of `timed` with the engine chosen
/// by `options.engine` (Auto picks the MCR fast path when exact).
/// @param timed the graph to analyze; `timed.execTime` must have one
///   entry per actor
/// @param options engine selection and safety limits
/// @return the throughput verdict, including which engine ran
/// @throws AnalysisError on shape violations or when a forced engine
///   cannot represent the requested semantics
[[nodiscard]] ThroughputResult computeThroughput(const sdf::TimedGraph& timed,
                                                 const ThroughputOptions& options = {});

/// Resource-constrained variant: actors bound to a resource additionally
/// wait for the resource to be idle and for their turn in its static
/// order. This is the analysis the flow runs on binding-aware graphs;
/// under Auto it uses the MCR fast path with the static orders encoded
/// as HSDF precedence edges whenever each bound actor appears exactly
/// q[a] times in its order.
/// @param timed the graph to analyze; `timed.execTime` must have one
///   entry per actor
/// @param resources the binding and static-order schedules
/// @param options engine selection and safety limits
/// @return the throughput verdict, including which engine ran
/// @throws AnalysisError on shape violations or when a forced engine
///   cannot represent the requested semantics
[[nodiscard]] ThroughputResult computeThroughput(const sdf::TimedGraph& timed,
                                                 const ResourceConstraints& resources,
                                                 const ThroughputOptions& options = {});

}  // namespace mamps::analysis
