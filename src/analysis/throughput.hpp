// Self-timed state-space throughput analysis (Ghamarian et al. [3]).
//
// Executes the operational semantics of a timed SDF graph: every actor
// fires as soon as it is enabled (tokens are consumed at firing start
// and produced at firing end). Because the state space of a consistent,
// strongly-bounded graph is finite, the execution eventually revisits a
// state; the periodic phase between two visits determines the long-term
// average throughput exactly.
//
// The flow defines throughput as graph iterations per clock cycle; the
// platform's system clock is the base time unit (Section 5).
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/graph.hpp"
#include "support/rational.hpp"

namespace mamps::analysis {

/// Processor sharing: actors bound to the same resource execute
/// mutually exclusively and in a fixed cyclic static order, exactly like
/// the lookup-table scheduler of the generated MAMPS software
/// (Section 6.3: "scheduling ... is done through a static order schedule
/// which reduces the scheduler to a lookup table").
struct ResourceConstraints {
  static constexpr std::uint32_t kUnbound = 0xffffffff;

  /// actor id -> resource id (kUnbound = the actor has its own resource,
  /// e.g. hardware stages of the communication model).
  std::vector<std::uint32_t> actorResource;
  /// Per resource: the cyclic firing order. Actors with repetition count
  /// > 1 appear multiple times. Every bound actor must appear.
  std::vector<std::vector<sdf::ActorId>> staticOrder;

  /// Shape checks against a graph; throws AnalysisError on violations.
  void validateFor(const sdf::Graph& g) const;
};

struct ThroughputOptions {
  /// Allow an actor to fire concurrently with itself. The MAMPS platform
  /// always serializes firings of an actor on its processing element, so
  /// the flow analyses with auto-concurrency disabled.
  bool autoConcurrency = false;
  /// Safety cap on simulated quiescent steps before giving up.
  std::uint64_t maxSteps = 10'000'000;
};

struct ThroughputResult {
  enum class Status {
    Ok,            ///< throughput computed
    Deadlock,      ///< execution halts; throughput is zero
    Inconsistent,  ///< no repetition vector exists
    Unbounded,     ///< a zero-execution-time cycle fires infinitely fast
    Diverged,      ///< tokens accumulate without bound (graph is not
                   ///< strongly bounded; analyze with buffer capacities
                   ///< or use throughputViaMcr)
    StepLimit,     ///< maxSteps exceeded before a recurrent state
  };

  Status status = Status::StepLimit;
  /// Long-term average graph iterations per clock cycle (valid for Ok;
  /// zero for Deadlock).
  Rational iterationsPerCycle = Rational(0);
  /// Number of quiescent states stored until recurrence.
  std::uint64_t statesExplored = 0;
  /// Length of the periodic phase in clock cycles.
  std::uint64_t periodCycles = 0;

  [[nodiscard]] bool ok() const { return status == Status::Ok; }
};

/// Compute the self-timed throughput of `timed`. `timed.execTime` must
/// have one entry per actor.
[[nodiscard]] ThroughputResult computeThroughput(const sdf::TimedGraph& timed,
                                                 const ThroughputOptions& options = {});

/// Resource-constrained variant: actors bound to a resource additionally
/// wait for the resource to be idle and for their turn in its static
/// order. This is the analysis the flow runs on binding-aware graphs.
[[nodiscard]] ThroughputResult computeThroughput(const sdf::TimedGraph& timed,
                                                 const ResourceConstraints& resources,
                                                 const ThroughputOptions& options = {});

}  // namespace mamps::analysis
