#include "sdf/io.hpp"

#include <fstream>
#include <memory>
#include <sstream>

#include "support/strings.hpp"

namespace mamps::sdf {
namespace {

void graphToElement(const Graph& g, xml::Element& el) {
  el.setAttribute("name", g.name());
  for (const Actor& a : g.actors()) {
    el.addChild("actor").setAttribute("name", a.name);
  }
  for (const Channel& c : g.channels()) {
    xml::Element& ce = el.addChild("channel");
    ce.setAttribute("name", c.name);
    ce.setAttribute("src", g.actor(c.src).name);
    ce.setAttribute("srcRate", std::to_string(c.prodRate));
    ce.setAttribute("dst", g.actor(c.dst).name);
    ce.setAttribute("dstRate", std::to_string(c.consRate));
    if (c.initialTokens != 0) {
      ce.setAttribute("initialTokens", std::to_string(c.initialTokens));
    }
    ce.setAttribute("tokenSize", std::to_string(c.tokenSizeBytes));
  }
}

Rational rationalFromString(std::string_view text) {
  const auto parts = split(text, '/');
  if (parts.size() == 1) {
    return Rational(parseI64(parts[0]));
  }
  if (parts.size() == 2) {
    return {parseI64(parts[0]), parseI64(parts[1])};
  }
  throw ParseError("malformed rational: '" + std::string(text) + "'");
}

}  // namespace

std::string graphToXml(const Graph& g) {
  auto root = std::make_unique<xml::Element>("sdfGraph");
  graphToElement(g, *root);
  return xml::Document(std::move(root)).toString();
}

Graph graphFromXml(const xml::Element& element) {
  if (element.name() != "sdfGraph") {
    throw ParseError("expected <sdfGraph>, found <" + element.name() + ">");
  }
  Graph g(std::string(element.attribute("name").value_or("sdf")));
  for (const xml::Element* a : element.childrenNamed("actor")) {
    g.addActor(std::string(a->requiredAttribute("name")));
  }
  for (const xml::Element* c : element.childrenNamed("channel")) {
    ChannelSpec spec;
    spec.name = std::string(c->attribute("name").value_or(""));
    spec.src = g.actorByName(c->requiredAttribute("src"));
    spec.dst = g.actorByName(c->requiredAttribute("dst"));
    spec.prodRate = static_cast<std::uint32_t>(parseU64(c->attribute("srcRate").value_or("1")));
    spec.consRate = static_cast<std::uint32_t>(parseU64(c->attribute("dstRate").value_or("1")));
    spec.initialTokens = parseU64(c->attribute("initialTokens").value_or("0"));
    spec.tokenSizeBytes = static_cast<std::uint32_t>(parseU64(c->attribute("tokenSize").value_or("4")));
    g.connect(spec);
  }
  g.validate();
  return g;
}

Graph graphFromString(const std::string& text) {
  const xml::Document doc = xml::parse(text);
  return graphFromXml(doc.root());
}

std::string applicationModelToXml(const ApplicationModel& model) {
  auto root = std::make_unique<xml::Element>("applicationModel");
  const Graph& g = model.graph();
  root->setAttribute("name", g.name());
  if (!model.throughputConstraint().isZero()) {
    root->setAttribute("throughputConstraint", model.throughputConstraint().toString());
  }
  graphToElement(g, root->addChild("sdfGraph"));

  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    // Self-edges default to implicit; record only deviations from the
    // default so files stay small.
    const bool deflt = g.channel(c).isSelfEdge();
    if (model.isImplicit(c) != deflt) {
      xml::Element& ce = root->addChild("channelProperties");
      ce.setAttribute("channel", g.channel(c).name);
      ce.setAttribute("implicit", model.isImplicit(c) ? "true" : "false");
    }
  }

  for (ActorId a = 0; a < g.actorCount(); ++a) {
    for (const ActorImplementation& impl : model.implementations(a)) {
      xml::Element& ie = root->addChild("implementation");
      ie.setAttribute("actor", g.actor(a).name);
      ie.setAttribute("function", impl.functionName);
      if (!impl.initFunctionName.empty()) {
        ie.setAttribute("initFunction", impl.initFunctionName);
      }
      ie.setAttribute("processorType", impl.processorType);
      ie.setAttribute("wcet", std::to_string(impl.wcetCycles));
      ie.setAttribute("instrMem", std::to_string(impl.instrMemBytes));
      ie.setAttribute("dataMem", std::to_string(impl.dataMemBytes));
      for (const ChannelId c : impl.argumentChannels) {
        ie.addChild("arg").setAttribute("channel", g.channel(c).name);
      }
    }
  }
  return xml::Document(std::move(root)).toString();
}

ApplicationModel applicationModelFromString(const std::string& text) {
  const xml::Document doc = xml::parse(text);
  const xml::Element& root = doc.root();
  if (root.name() != "applicationModel") {
    throw ParseError("expected <applicationModel>, found <" + root.name() + ">");
  }
  ApplicationModel model(graphFromXml(root.requiredChild("sdfGraph")));
  const Graph& g = model.graph();

  if (const auto tc = root.attribute("throughputConstraint")) {
    model.setThroughputConstraint(rationalFromString(*tc));
  }
  for (const xml::Element* ce : root.childrenNamed("channelProperties")) {
    const auto channel = g.findChannel(ce->requiredAttribute("channel"));
    if (!channel) {
      throw ParseError("channelProperties references unknown channel");
    }
    model.setImplicit(*channel, ce->requiredAttribute("implicit") == "true");
  }
  for (const xml::Element* ie : root.childrenNamed("implementation")) {
    const ActorId actor = g.actorByName(ie->requiredAttribute("actor"));
    ActorImplementation impl;
    impl.functionName = std::string(ie->requiredAttribute("function"));
    impl.initFunctionName = std::string(ie->attribute("initFunction").value_or(""));
    impl.processorType = std::string(ie->requiredAttribute("processorType"));
    impl.wcetCycles = parseU64(ie->requiredAttribute("wcet"));
    impl.instrMemBytes = static_cast<std::uint32_t>(parseU64(ie->attribute("instrMem").value_or("0")));
    impl.dataMemBytes = static_cast<std::uint32_t>(parseU64(ie->attribute("dataMem").value_or("0")));
    for (const xml::Element* arg : ie->childrenNamed("arg")) {
      const auto channel = g.findChannel(arg->requiredAttribute("channel"));
      if (!channel) {
        throw ParseError("implementation argument references unknown channel");
      }
      impl.argumentChannels.push_back(*channel);
    }
    model.addImplementation(actor, std::move(impl));
  }
  model.validate();
  return model;
}

ApplicationModel applicationModelFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ParseError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return applicationModelFromString(buffer.str());
}

}  // namespace mamps::sdf
