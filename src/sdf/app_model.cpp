#include "sdf/app_model.hpp"

#include <algorithm>

namespace mamps::sdf {

ApplicationModel::ApplicationModel(Graph graph) : graph_(std::move(graph)) { resync(); }

void ApplicationModel::resync() {
  actors_.resize(graph_.actorCount());
  const std::size_t oldChannels = implicit_.size();
  implicit_.resize(graph_.channelCount(), false);
  for (std::size_t c = oldChannels; c < graph_.channelCount(); ++c) {
    implicit_[c] = graph_.channel(static_cast<ChannelId>(c)).isSelfEdge();
  }
}

void ApplicationModel::addImplementation(ActorId actor, ActorImplementation impl) {
  if (actor >= graph_.actorCount()) {
    throw ModelError("addImplementation: actor id out of range");
  }
  const Actor& a = graph_.actor(actor);
  for (const ChannelId c : impl.argumentChannels) {
    const bool incident = std::find(a.inputs.begin(), a.inputs.end(), c) != a.inputs.end() ||
                          std::find(a.outputs.begin(), a.outputs.end(), c) != a.outputs.end();
    if (!incident) {
      throw ModelError("implementation '" + impl.functionName + "' references channel " +
                       std::to_string(c) + " not incident to actor " + a.name);
    }
  }
  if (impl.functionName.empty()) {
    throw ModelError("implementation for actor " + a.name + " has no function name");
  }
  actors_[actor].implementations.push_back(std::move(impl));
}

const std::vector<ActorImplementation>& ApplicationModel::implementations(ActorId actor) const {
  if (actor >= actors_.size()) {
    throw ModelError("implementations: actor id out of range");
  }
  return actors_[actor].implementations;
}

const ActorImplementation* ApplicationModel::implementationFor(
    ActorId actor, std::string_view processorType) const {
  for (const ActorImplementation& impl : implementations(actor)) {
    if (impl.processorType == processorType) {
      return &impl;
    }
  }
  return nullptr;
}

void ApplicationModel::setImplicit(ChannelId channel, bool implicit) {
  if (channel >= implicit_.size()) {
    throw ModelError("setImplicit: channel id out of range");
  }
  implicit_[channel] = implicit;
}

bool ApplicationModel::isImplicit(ChannelId channel) const {
  if (channel >= implicit_.size()) {
    throw ModelError("isImplicit: channel id out of range");
  }
  return implicit_[channel];
}

void ApplicationModel::setThroughputConstraint(Rational iterationsPerCycle) {
  if (iterationsPerCycle < Rational(0)) {
    throw ModelError("throughput constraint must be non-negative");
  }
  throughputConstraint_ = iterationsPerCycle;
}

std::vector<std::uint64_t> ApplicationModel::wcetVector(std::string_view processorType) const {
  std::vector<std::uint64_t> out(graph_.actorCount(), 0);
  for (ActorId a = 0; a < graph_.actorCount(); ++a) {
    const ActorImplementation* impl = implementationFor(a, processorType);
    if (impl == nullptr) {
      throw ModelError("actor " + graph_.actor(a).name + " has no implementation for '" +
                       std::string(processorType) + "'");
    }
    out[a] = impl->wcetCycles;
  }
  return out;
}

void ApplicationModel::validate() const {
  graph_.validate();
  if (actors_.size() != graph_.actorCount() || implicit_.size() != graph_.channelCount()) {
    throw ModelError("application model is out of sync with its graph (call resync)");
  }
  for (ActorId a = 0; a < graph_.actorCount(); ++a) {
    if (actors_[a].implementations.empty()) {
      throw ModelError("actor " + graph_.actor(a).name + " has no implementation");
    }
    for (const ActorImplementation& impl : actors_[a].implementations) {
      for (const ChannelId c : impl.argumentChannels) {
        if (isImplicit(c)) {
          throw ModelError("implementation '" + impl.functionName +
                           "' uses implicit channel as argument: " + graph_.channel(c).name);
        }
      }
    }
  }
}

}  // namespace mamps::sdf
