// XML (de)serialization of SDF graphs and application models.
//
// The format is the common interchange format of the flow (Section 2 of
// the paper stresses that mapping and platform generation consume the
// same input files, removing manual translation steps).
#pragma once

#include <string>

#include "sdf/app_model.hpp"
#include "sdf/graph.hpp"
#include "support/xml.hpp"

namespace mamps::sdf {

/// Serialize a graph as an <sdfGraph> element string.
[[nodiscard]] std::string graphToXml(const Graph& g);

/// Parse a graph from an <sdfGraph> element.
[[nodiscard]] Graph graphFromXml(const xml::Element& element);

/// Parse a graph from a document string.
[[nodiscard]] Graph graphFromString(const std::string& text);

/// Serialize the complete application model (<applicationModel>).
[[nodiscard]] std::string applicationModelToXml(const ApplicationModel& model);

/// Parse an application model from a document string.
[[nodiscard]] ApplicationModel applicationModelFromString(const std::string& text);

/// Parse an application model from a file.
[[nodiscard]] ApplicationModel applicationModelFromFile(const std::string& path);

}  // namespace mamps::sdf
