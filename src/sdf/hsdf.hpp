// SDF to HSDF (homogeneous SDF) conversion.
//
// Every actor a of the SDF graph is expanded into q[a] copies, one per
// firing within an iteration; every channel is expanded into token-level
// dependencies between specific firings using the standard construction
// (Sriram & Bhattacharyya). All rates in the result are 1, so the
// resulting graph can be analyzed with maximum-cycle-ratio techniques.
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/graph.hpp"

namespace mamps::sdf {

/// Result of expanding an SDF graph into its homogeneous equivalent.
struct HsdfExpansion {
  TimedGraph hsdf;
  /// hsdf actor id -> original SDF actor id
  std::vector<ActorId> originalActor;
  /// hsdf actor id -> firing index within the iteration (0..q[a]-1)
  std::vector<std::uint32_t> firingIndex;
};

/// Expand `timed` into an equivalent HSDF graph. Throws AnalysisError
/// when the graph is inconsistent. The conversion preserves the
/// self-timed throughput of every actor.
[[nodiscard]] HsdfExpansion toHsdf(const TimedGraph& timed);

}  // namespace mamps::sdf
