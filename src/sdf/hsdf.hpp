// SDF to HSDF (homogeneous SDF) conversion.
//
// Every actor a of the SDF graph is expanded into q[a] copies, one per
// firing within an iteration; every channel is expanded into token-level
// dependencies between specific firings using the standard construction
// (Sriram & Bhattacharyya). All rates in the result are 1, so the
// resulting graph can be analyzed with maximum-cycle-ratio techniques.
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/graph.hpp"

/// \namespace mamps::sdf
/// \brief The SDF graph model: structure, repetition vectors, HSDF
/// expansion, application models, and serialization.

namespace mamps::sdf {

/// Result of expanding an SDF graph into its homogeneous equivalent.
struct HsdfExpansion {
  /// The expanded graph; all rates are 1 and execution times are copied
  /// from the original actor of each firing copy.
  TimedGraph hsdf;
  /// hsdf actor id -> original SDF actor id
  std::vector<ActorId> originalActor;
  /// hsdf actor id -> firing index within the iteration (0..q[a]-1)
  std::vector<std::uint32_t> firingIndex;
};

/// Expand `timed` into an equivalent HSDF graph. The conversion
/// preserves the self-timed throughput of every actor: channels become
/// token-level dependencies between firing copies, and actors with a
/// self-concurrency limit of 1 get sequence edges between consecutive
/// copies (with one wrap-around token), so analyzing the expansion with
/// maximum-cycle-ratio techniques reproduces the state-space result.
/// @param timed the SDF graph with one execution time per actor
/// @return the HSDF graph plus the copy-to-original mapping
/// @throws AnalysisError when the graph is inconsistent
[[nodiscard]] HsdfExpansion toHsdf(const TimedGraph& timed);

}  // namespace mamps::sdf
