// SDF to HSDF (homogeneous SDF) conversion.
//
// Every actor a of the SDF graph is expanded into q[a] copies, one per
// firing within an iteration; every channel is expanded into token-level
// dependencies between specific firings using the standard construction
// (Sriram & Bhattacharyya). All rates in the result are 1, so the
// resulting graph can be analyzed with maximum-cycle-ratio techniques.
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/graph.hpp"

/// \namespace mamps::sdf
/// \brief The SDF graph model: structure, repetition vectors, HSDF
/// expansion, application models, and serialization.

namespace mamps::sdf {

/// One token-level dependency of the standard SDF-to-HSDF expansion
/// (see hsdfTokenDependency).
struct TokenDependency {
  /// Index of the source firing copy that produced the token.
  std::uint64_t srcCopy = 0;
  /// Iteration distance to the producing firing (the HSDF edge delay).
  std::uint64_t delay = 0;
};

/// The token rule of the standard expansion (Sriram & Bhattacharyya),
/// shared by sdf::toHsdf and the incremental analysis context so the
/// two encodings cannot drift apart: the token at consumption position
/// `n` of a channel with `d` initial tokens and production rate `prod`
/// was produced by firing floor((n - d) / prod); non-negative indices
/// land in the current iteration (copy index, delay 0), negative ones
/// are initial tokens attributed to copies of earlier iterations (the
/// iteration distance becomes the delay).
/// @param n global consumption position within one iteration
/// @param d initial tokens on the channel
/// @param prod production rate (> 0)
/// @param qSrc repetition count of the producing actor (> 0)
/// @return the producing firing copy and the iteration distance
[[nodiscard]] constexpr TokenDependency hsdfTokenDependency(std::uint64_t n, std::uint64_t d,
                                                           std::uint64_t prod,
                                                           std::uint64_t qSrc) {
  if (n < d) {
    const std::uint64_t fromEnd = d - 1 - n;           // 0 = newest initial token
    const std::uint64_t prodIdxBack = fromEnd / prod;  // firings back from iteration 0
    return {(qSrc - 1) - prodIdxBack % qSrc, prodIdxBack / qSrc + 1};
  }
  return {(n - d) / prod % qSrc, 0};
}

/// Result of expanding an SDF graph into its homogeneous equivalent.
struct HsdfExpansion {
  /// The expanded graph; all rates are 1 and execution times are copied
  /// from the original actor of each firing copy.
  TimedGraph hsdf;
  /// hsdf actor id -> original SDF actor id
  std::vector<ActorId> originalActor;
  /// hsdf actor id -> firing index within the iteration (0..q[a]-1)
  std::vector<std::uint32_t> firingIndex;
};

/// Expand `timed` into an equivalent HSDF graph. The conversion
/// preserves the self-timed throughput of every actor: channels become
/// token-level dependencies between firing copies, and an actor with a
/// finite self-concurrency limit k gets the expansion of a virtual
/// rate-1 self-edge carrying k tokens (firing copy j depends on the
/// completion of firing j - k; for k = 1 this is the classical chain
/// through the copies with one wrap-around token), so analyzing the
/// expansion with maximum-cycle-ratio techniques reproduces the
/// state-space result for any limit, including finite limits > 1.
/// @param timed the SDF graph with one execution time per actor
/// @return the HSDF graph plus the copy-to-original mapping
/// @throws AnalysisError when the graph is inconsistent
[[nodiscard]] HsdfExpansion toHsdf(const TimedGraph& timed);

}  // namespace mamps::sdf
