// Repetition vector and consistency analysis.
//
// An SDF graph is *consistent* when the balance equations
//     q[src(c)] * prodRate(c) == q[dst(c)] * consRate(c)   for every c
// admit a non-trivial solution. The repetition vector is the smallest
// positive integer solution; one *iteration* of the graph fires each
// actor a exactly q[a] times and returns every channel to its initial
// token count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sdf/graph.hpp"

namespace mamps::sdf {

/// The smallest positive integer repetition vector, or nullopt when the
/// graph is inconsistent. Disconnected graphs are solved per weakly
/// connected component; each component is scaled independently to the
/// smallest integers. Actors with no channels get q == 1.
[[nodiscard]] std::optional<std::vector<std::uint64_t>> computeRepetitionVector(const Graph& g);

/// True when the balance equations have a solution.
[[nodiscard]] bool isConsistent(const Graph& g);

/// Total firings in one graph iteration (sum of the repetition vector).
/// Throws AnalysisError for inconsistent graphs.
[[nodiscard]] std::uint64_t firingsPerIteration(const Graph& g);

/// Deadlock check: simulates one iteration with token counting only
/// (execution times are irrelevant for deadlock in SDF). Returns true
/// when every actor can complete its q firings. Throws AnalysisError for
/// inconsistent graphs.
[[nodiscard]] bool isDeadlockFree(const Graph& g);

}  // namespace mamps::sdf
