#include "sdf/repetition_vector.hpp"

#include <numeric>

#include "support/rational.hpp"

namespace mamps::sdf {

std::optional<std::vector<std::uint64_t>> computeRepetitionVector(const Graph& g) {
  const std::size_t n = g.actorCount();
  std::vector<Rational> q(n, Rational(0));

  // Propagate fractional firing rates over each weakly connected
  // component by depth-first search, then verify every balance equation.
  std::vector<ActorId> stack;
  for (ActorId seed = 0; seed < n; ++seed) {
    if (!q[seed].isZero()) {
      continue;
    }
    q[seed] = Rational(1);
    stack.push_back(seed);
    while (!stack.empty()) {
      const ActorId a = stack.back();
      stack.pop_back();
      const auto propagate = [&](const Channel& c) {
        // q[src] * prod == q[dst] * cons
        const Rational prod(static_cast<std::int64_t>(c.prodRate));
        const Rational cons(static_cast<std::int64_t>(c.consRate));
        if (c.src == a && q[c.dst].isZero()) {
          q[c.dst] = q[c.src] * prod / cons;
          stack.push_back(c.dst);
        } else if (c.dst == a && q[c.src].isZero()) {
          q[c.src] = q[c.dst] * cons / prod;
          stack.push_back(c.src);
        }
      };
      for (const ChannelId cid : g.actor(a).outputs) {
        propagate(g.channel(cid));
      }
      for (const ChannelId cid : g.actor(a).inputs) {
        propagate(g.channel(cid));
      }
    }
  }

  for (const Channel& c : g.channels()) {
    const Rational lhs = q[c.src] * Rational(static_cast<std::int64_t>(c.prodRate));
    const Rational rhs = q[c.dst] * Rational(static_cast<std::int64_t>(c.consRate));
    if (!(lhs == rhs)) {
      return std::nullopt;  // inconsistent
    }
  }

  // Scale each connected component independently to smallest integers:
  // multiply by the lcm of denominators, then divide by the gcd.
  // Identify components again (undirected reachability).
  std::vector<int> component(n, -1);
  int componentCount = 0;
  for (ActorId seed = 0; seed < n; ++seed) {
    if (component[seed] != -1) {
      continue;
    }
    const int me = componentCount++;
    component[seed] = me;
    stack.push_back(seed);
    while (!stack.empty()) {
      const ActorId a = stack.back();
      stack.pop_back();
      const auto visit = [&](const Channel& c) {
        const ActorId other = (c.src == a) ? c.dst : c.src;
        if (component[other] == -1) {
          component[other] = me;
          stack.push_back(other);
        }
      };
      for (const ChannelId cid : g.actor(a).outputs) {
        visit(g.channel(cid));
      }
      for (const ChannelId cid : g.actor(a).inputs) {
        visit(g.channel(cid));
      }
    }
  }

  std::vector<std::int64_t> lcmDen(static_cast<std::size_t>(componentCount), 1);
  for (ActorId a = 0; a < n; ++a) {
    auto& l = lcmDen[static_cast<std::size_t>(component[a])];
    l = checkedLcm(l, q[a].den());
  }
  std::vector<std::uint64_t> out(n, 0);
  std::vector<std::uint64_t> gcdNum(static_cast<std::size_t>(componentCount), 0);
  for (ActorId a = 0; a < n; ++a) {
    const Rational scaled = q[a] * Rational(lcmDen[static_cast<std::size_t>(component[a])]);
    out[a] = static_cast<std::uint64_t>(scaled.num());
    auto& gnum = gcdNum[static_cast<std::size_t>(component[a])];
    gnum = std::gcd(gnum, out[a]);
  }
  for (ActorId a = 0; a < n; ++a) {
    out[a] /= gcdNum[static_cast<std::size_t>(component[a])];
  }
  return out;
}

bool isConsistent(const Graph& g) { return computeRepetitionVector(g).has_value(); }

std::uint64_t firingsPerIteration(const Graph& g) {
  const auto q = computeRepetitionVector(g);
  if (!q) {
    throw AnalysisError("firingsPerIteration: graph '" + g.name() + "' is inconsistent");
  }
  std::uint64_t total = 0;
  for (const std::uint64_t f : *q) {
    total += f;
  }
  return total;
}

bool isDeadlockFree(const Graph& g) {
  const auto qOpt = computeRepetitionVector(g);
  if (!qOpt) {
    throw AnalysisError("isDeadlockFree: graph '" + g.name() + "' is inconsistent");
  }
  const auto& q = *qOpt;
  std::vector<std::uint64_t> tokens(g.channelCount());
  for (std::size_t c = 0; c < g.channelCount(); ++c) {
    tokens[c] = g.channel(static_cast<ChannelId>(c)).initialTokens;
  }
  std::vector<std::uint64_t> remaining(q.begin(), q.end());

  // Fire any enabled actor until all firings of the iteration are done
  // or no actor can fire. Termination: each pass fires at least one
  // actor or exits; total firings are bounded by sum(q).
  bool progress = true;
  while (progress) {
    progress = false;
    for (ActorId a = 0; a < g.actorCount(); ++a) {
      if (remaining[a] == 0) {
        continue;
      }
      const Actor& actor = g.actor(a);
      bool ready = true;
      for (const ChannelId c : actor.inputs) {
        if (tokens[c] < g.channel(c).consRate) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      for (const ChannelId c : actor.inputs) {
        tokens[c] -= g.channel(c).consRate;
      }
      for (const ChannelId c : actor.outputs) {
        tokens[c] += g.channel(c).prodRate;
      }
      --remaining[a];
      progress = true;
    }
  }
  for (const std::uint64_t r : remaining) {
    if (r != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace mamps::sdf
