// The application model of the flow (Section 3 of the paper).
//
// It joins the SDF graph with, per actor, one or more *implementations*
// (one per processor type the actor can run on), each carrying:
//   - the C function name of the actor implementation,
//   - the WCET in clock cycles,
//   - instruction- and data-memory requirements (specified separately to
//     support Harvard-architecture processing elements),
//   - the relation between function arguments and *explicit* edges.
// Channels are classified explicit (implemented as function parameters,
// transferring data) or implicit (self-edges modeling state, buffer
// capacity limits, or static-order constraints).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sdf/graph.hpp"
#include "support/rational.hpp"

namespace mamps::sdf {

/// One implementation of an actor for one processor type.
struct ActorImplementation {
  std::string functionName;      ///< C symbol of the actor function
  std::string initFunctionName;  ///< optional _init function ("" = none)
  std::string processorType;     ///< e.g. "microblaze"
  std::uint64_t wcetCycles = 0;  ///< worst-case execution time per firing
  std::uint32_t instrMemBytes = 0;
  std::uint32_t dataMemBytes = 0;
  /// Function-argument order: the k-th argument corresponds to this
  /// explicit channel. Implicit channels never appear here.
  std::vector<ChannelId> argumentChannels;
};

/// Per-actor metadata: the set of alternative implementations.
struct ActorMetadata {
  std::vector<ActorImplementation> implementations;
};

/// The complete application model: graph + implementations + constraint.
class ApplicationModel {
 public:
  ApplicationModel() = default;
  explicit ApplicationModel(Graph graph);

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] Graph& graph() { return graph_; }

  /// Register an implementation for `actor`. The argument channels must
  /// be explicit channels incident to the actor.
  void addImplementation(ActorId actor, ActorImplementation impl);

  [[nodiscard]] const std::vector<ActorImplementation>& implementations(ActorId actor) const;

  /// The implementation of `actor` for `processorType`, or nullptr.
  [[nodiscard]] const ActorImplementation* implementationFor(ActorId actor,
                                                             std::string_view processorType) const;

  /// Mark a channel implicit (no function argument; state/constraint
  /// modeling only). Self-edges are implicit by default.
  void setImplicit(ChannelId channel, bool implicit);
  [[nodiscard]] bool isImplicit(ChannelId channel) const;
  [[nodiscard]] bool isExplicit(ChannelId channel) const { return !isImplicit(channel); }

  /// Minimum required throughput in graph iterations per clock cycle.
  void setThroughputConstraint(Rational iterationsPerCycle);
  [[nodiscard]] const Rational& throughputConstraint() const { return throughputConstraint_; }

  /// WCET vector for a homogeneous platform of the given processor type;
  /// throws ModelError when an actor lacks an implementation for it.
  [[nodiscard]] std::vector<std::uint64_t> wcetVector(std::string_view processorType) const;

  /// Every actor has at least one implementation, argument channels are
  /// explicit and incident; throws ModelError otherwise.
  void validate() const;

  /// Keep metadata arrays in sync after actors/channels were added
  /// directly on the graph.
  void resync();

 private:
  Graph graph_;
  std::vector<ActorMetadata> actors_;   // by ActorId
  std::vector<bool> implicit_;          // by ChannelId
  Rational throughputConstraint_ = Rational(0);
};

}  // namespace mamps::sdf
