#include "sdf/hsdf.hpp"

#include "sdf/repetition_vector.hpp"

namespace mamps::sdf {

HsdfExpansion toHsdf(const TimedGraph& timed) {
  const Graph& g = timed.graph;
  const auto qOpt = computeRepetitionVector(g);
  if (!qOpt) {
    throw AnalysisError("toHsdf: graph '" + g.name() + "' is inconsistent");
  }
  const auto& q = *qOpt;

  HsdfExpansion out;
  out.hsdf.graph.setName(g.name() + "_hsdf");

  // Create q[a] copies of each actor.
  std::vector<std::vector<ActorId>> copies(g.actorCount());
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    copies[a].reserve(q[a]);
    for (std::uint64_t i = 0; i < q[a]; ++i) {
      const ActorId id =
          out.hsdf.graph.addActor(g.actor(a).name + "_" + std::to_string(i));
      copies[a].push_back(id);
      out.originalActor.push_back(a);
      out.firingIndex.push_back(static_cast<std::uint32_t>(i));
      out.hsdf.execTime.push_back(timed.execTime.at(a));
      if (!timed.maxConcurrent.empty()) {
        out.hsdf.maxConcurrent.push_back(timed.concurrencyLimit(a));
      }
    }
  }

  // Expand channels token by token. The k-th token consumed by firing j
  // of the destination (global consumption index n = j*cons + k) is the
  // token at position n in the stream. Tokens 0..d-1 are the initial
  // tokens; token n >= d was produced as the (n-d)-th produced token,
  // i.e. by source firing floor((n-d)/prod). Producer firing index i
  // maps to copy i mod q[src] with iteration distance floor(i/q[src]);
  // similarly for the consumer. The HSDF edge gets
  //   delay = consumerIteration - producerIteration   (>= 0)
  // where producer iteration is negative for initial tokens.
  for (const Channel& c : g.channels()) {
    const std::uint64_t prod = c.prodRate;
    const std::uint64_t cons = c.consRate;
    const std::uint64_t d = c.initialTokens;
    const std::uint64_t qDst = q[c.dst];
    const std::uint64_t qSrc = q[c.src];

    for (std::uint64_t j = 0; j < qDst; ++j) {       // consumer firing in iteration 0
      for (std::uint64_t k = 0; k < cons; ++k) {     // token index within the firing
        const std::uint64_t n = j * cons + k;        // global consumption position
        std::uint64_t srcCopy = 0;
        std::uint64_t delay = 0;
        if (n < d) {
          // Initial token: produced "before time"; attribute it to the
          // source copy that would have produced it in iteration -m.
          // Position from the end of the initial tokens:
          const std::uint64_t fromEnd = d - 1 - n;           // 0 = newest initial token
          const std::uint64_t prodIdxBack = fromEnd / prod;  // firings back from iteration 0
          const std::uint64_t iterBack = prodIdxBack / qSrc + 1;
          const std::uint64_t copyBack = prodIdxBack % qSrc;
          srcCopy = (qSrc - 1) - copyBack;
          delay = iterBack;
        } else {
          const std::uint64_t p = (n - d) / prod;  // producing firing (iteration 0 based)
          srcCopy = p % qSrc;
          delay = 0;
          // If the producing firing lands in a later iteration than 0 it
          // cannot — p < qSrc * prod tokens needed... p ranges within one
          // iteration because n-d < qDst*cons == qSrc*prod.
          (void)0;
        }
        ChannelSpec spec;
        spec.src = copies[c.src][srcCopy];
        spec.dst = copies[c.dst][j];
        spec.prodRate = 1;
        spec.consRate = 1;
        spec.initialTokens = delay;
        spec.tokenSizeBytes = c.tokenSizeBytes;
        spec.name = c.name + "_n" + std::to_string(n);
        out.hsdf.graph.connect(spec);
      }
    }
  }

  // Sequence constraint: firings of the same actor within an iteration
  // execute in order (firing i+1 cannot start before firing i of the
  // same iteration when auto-concurrency is disabled). The classical
  // conversion adds a cycle through the copies with one initial token on
  // the wrap-around edge. We add it only for actors with q > 1; actors
  // whose self-concurrency is already limited by a self-edge keep that
  // limit through the channel expansion above.
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    if (timed.concurrencyLimit(a) != 1) {
      // Actors with relaxed self-concurrency (e.g. the pipelined latency
      // stage of the communication model) get no sequence constraint;
      // their in-flight work is bounded by explicit back-edges instead.
      continue;
    }
    if (q[a] == 1) {
      // Degenerate cycle: a self-edge with one token forbids a firing of
      // iteration m+1 from overlapping the firing of iteration m.
      ChannelSpec spec;
      spec.src = copies[a][0];
      spec.dst = copies[a][0];
      spec.prodRate = 1;
      spec.consRate = 1;
      spec.initialTokens = 1;
      spec.name = g.actor(a).name + "_seq0";
      out.hsdf.graph.connect(spec);
      continue;
    }
    for (std::uint64_t i = 0; i < q[a]; ++i) {
      const std::uint64_t nextIdx = (i + 1) % q[a];
      ChannelSpec spec;
      spec.src = copies[a][i];
      spec.dst = copies[a][nextIdx];
      spec.prodRate = 1;
      spec.consRate = 1;
      spec.initialTokens = (nextIdx == 0) ? 1 : 0;
      spec.name = g.actor(a).name + "_seq" + std::to_string(i);
      out.hsdf.graph.connect(spec);
    }
  }

  return out;
}

}  // namespace mamps::sdf
