#include "sdf/hsdf.hpp"

#include "sdf/repetition_vector.hpp"

namespace mamps::sdf {

HsdfExpansion toHsdf(const TimedGraph& timed) {
  const Graph& g = timed.graph;
  const auto qOpt = computeRepetitionVector(g);
  if (!qOpt) {
    throw AnalysisError("toHsdf: graph '" + g.name() + "' is inconsistent");
  }
  const auto& q = *qOpt;

  HsdfExpansion out;
  out.hsdf.graph.setName(g.name() + "_hsdf");

  // Create q[a] copies of each actor. The expansion changes the actor
  // set, so TimedGraph::rebuildFrom does not apply: every per-actor
  // annotation of TimedGraph must be populated per emitted copy here.
  std::vector<std::vector<ActorId>> copies(g.actorCount());
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    copies[a].reserve(q[a]);
    for (std::uint64_t i = 0; i < q[a]; ++i) {
      const ActorId id =
          out.hsdf.graph.addActor(g.actor(a).name + "_" + std::to_string(i));
      copies[a].push_back(id);
      out.originalActor.push_back(a);
      out.firingIndex.push_back(static_cast<std::uint32_t>(i));
      // lint:allow(timedgraph-rebuild) -- actor-set-changing expansion: rebuildFrom cannot apply (see comment above); annotations are populated per emitted copy
      out.hsdf.execTime.push_back(timed.execTime.at(a));
      if (!timed.maxConcurrent.empty()) {
        // lint:allow(timedgraph-rebuild) -- actor-set-changing expansion: same per-copy population as execTime above
        out.hsdf.maxConcurrent.push_back(timed.concurrencyLimit(a));
      }
    }
  }

  // Expand channels token by token. The k-th token consumed by firing j
  // of the destination (global consumption index n = j*cons + k) is the
  // token at position n in the stream. Tokens 0..d-1 are the initial
  // tokens; token n >= d was produced as the (n-d)-th produced token,
  // i.e. by source firing floor((n-d)/prod). Producer firing index i
  // maps to copy i mod q[src] with iteration distance floor(i/q[src]);
  // similarly for the consumer. The HSDF edge gets
  //   delay = consumerIteration - producerIteration   (>= 0)
  // where producer iteration is negative for initial tokens.
  for (const Channel& c : g.channels()) {
    const std::uint64_t prod = c.prodRate;
    const std::uint64_t cons = c.consRate;
    const std::uint64_t d = c.initialTokens;
    const std::uint64_t qDst = q[c.dst];
    const std::uint64_t qSrc = q[c.src];

    for (std::uint64_t j = 0; j < qDst; ++j) {    // consumer firing in iteration 0
      for (std::uint64_t k = 0; k < cons; ++k) {  // token index within the firing
        const std::uint64_t n = j * cons + k;     // global consumption position
        const TokenDependency dep = hsdfTokenDependency(n, d, prod, qSrc);
        ChannelSpec spec;
        spec.src = copies[c.src][dep.srcCopy];
        spec.dst = copies[c.dst][j];
        spec.prodRate = 1;
        spec.consRate = 1;
        spec.initialTokens = dep.delay;
        spec.tokenSizeBytes = c.tokenSizeBytes;
        spec.name = c.name + "_n" + std::to_string(n);
        out.hsdf.graph.connect(spec);
      }
    }
  }

  // Self-concurrency constraint: an actor with finite limit k may have
  // at most k firings in flight, which is exactly the semantics of a
  // rate-1 self-edge carrying k initial tokens. Expanding that virtual
  // self-edge with the token rule above links firing copy j to the copy
  // that performs firing j - k (k firings back, possibly in an earlier
  // iteration — the edge then carries the iteration distance as delay).
  // The classical limit-1 conversion — a chain through the copies with
  // one wrap-around token — is the k = 1 instance. Limit-0 actors
  // (unbounded pipelining, e.g. the latency stage of the communication
  // model) get no constraint; their in-flight work is bounded by
  // explicit back-edges instead.
  for (ActorId a = 0; a < g.actorCount(); ++a) {
    const std::uint64_t limit = timed.concurrencyLimit(a);
    if (limit == 0) {
      continue;
    }
    for (std::uint64_t j = 0; j < q[a]; ++j) {
      const TokenDependency dep = hsdfTokenDependency(j, limit, 1, q[a]);
      ChannelSpec spec;
      spec.src = copies[a][dep.srcCopy];
      spec.dst = copies[a][j];
      spec.prodRate = 1;
      spec.consRate = 1;
      spec.initialTokens = dep.delay;
      spec.name = g.actor(a).name + "_seq" + std::to_string(j);
      out.hsdf.graph.connect(spec);
    }
  }

  return out;
}

}  // namespace mamps::sdf
