#include "sdf/graph.hpp"

#include <algorithm>

namespace mamps::sdf {

ActorId Graph::addActor(std::string name) {
  if (name.empty()) {
    throw ModelError("actor name must be non-empty");
  }
  const auto id = static_cast<ActorId>(actors_.size());
  if (!actorIndex_.try_emplace(name, id).second) {
    throw ModelError("duplicate actor name: " + name);
  }
  actors_.push_back(Actor{std::move(name), {}, {}});
  return id;
}

ChannelId Graph::connect(const ChannelSpec& spec) {
  if (spec.src >= actors_.size() || spec.dst >= actors_.size()) {
    throw ModelError("channel endpoint out of range");
  }
  if (spec.prodRate == 0 || spec.consRate == 0) {
    throw ModelError("channel rates must be positive");
  }
  if (spec.tokenSizeBytes == 0) {
    throw ModelError("token size must be positive");
  }
  Channel channel;
  channel.src = spec.src;
  channel.dst = spec.dst;
  channel.prodRate = spec.prodRate;
  channel.consRate = spec.consRate;
  channel.initialTokens = spec.initialTokens;
  channel.tokenSizeBytes = spec.tokenSizeBytes;
  channel.name = spec.name.empty() ? actors_[spec.src].name + "_to_" + actors_[spec.dst].name +
                                         "_" + std::to_string(channels_.size())
                                   : spec.name;
  const auto id = static_cast<ChannelId>(channels_.size());
  if (!channelIndex_.try_emplace(channel.name, id).second) {
    throw ModelError("duplicate channel name: " + channel.name);
  }
  channels_.push_back(std::move(channel));
  actors_[spec.src].outputs.push_back(id);
  actors_[spec.dst].inputs.push_back(id);
  return id;
}

ChannelId Graph::connect(ActorId src, std::uint32_t prodRate, ActorId dst, std::uint32_t consRate,
                         std::uint64_t initialTokens, std::string name) {
  ChannelSpec spec;
  spec.src = src;
  spec.prodRate = prodRate;
  spec.dst = dst;
  spec.consRate = consRate;
  spec.initialTokens = initialTokens;
  spec.name = std::move(name);
  return connect(spec);
}

const Actor& Graph::actor(ActorId id) const {
  if (id >= actors_.size()) {
    throw ModelError("actor id out of range: " + std::to_string(id));
  }
  return actors_[id];
}

const Channel& Graph::channel(ChannelId id) const {
  if (id >= channels_.size()) {
    throw ModelError("channel id out of range: " + std::to_string(id));
  }
  return channels_[id];
}

std::optional<ActorId> Graph::findActor(std::string_view name) const {
  const auto it = actorIndex_.find(name);
  if (it == actorIndex_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<ChannelId> Graph::findChannel(std::string_view name) const {
  const auto it = channelIndex_.find(name);
  if (it == channelIndex_.end()) {
    return std::nullopt;
  }
  return it->second;
}

ActorId Graph::actorByName(std::string_view name) const {
  const auto id = findActor(name);
  if (!id) {
    throw ModelError("no such actor: " + std::string(name));
  }
  return *id;
}

void Graph::setInitialTokens(ChannelId id, std::uint64_t tokens) {
  if (id >= channels_.size()) {
    throw ModelError("channel id out of range");
  }
  channels_[id].initialTokens = tokens;
}

void Graph::setTokenSize(ChannelId id, std::uint32_t bytes) {
  if (id >= channels_.size()) {
    throw ModelError("channel id out of range");
  }
  if (bytes == 0) {
    throw ModelError("token size must be positive");
  }
  channels_[id].tokenSizeBytes = bytes;
}

bool Graph::isConnected() const {
  if (actors_.empty()) {
    return true;
  }
  std::vector<bool> seen(actors_.size(), false);
  std::vector<ActorId> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const ActorId a = stack.back();
    stack.pop_back();
    const auto visit = [&](ChannelId c) {
      const Channel& channel = channels_[c];
      const ActorId other = channel.src == a ? channel.dst : channel.src;
      if (!seen[other]) {
        seen[other] = true;
        ++reached;
        stack.push_back(other);
      }
    };
    for (const ChannelId c : actors_[a].inputs) {
      visit(c);
    }
    for (const ChannelId c : actors_[a].outputs) {
      visit(c);
    }
  }
  return reached == actors_.size();
}

void Graph::validate() const {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i].name.empty()) {
      throw ModelError("actor " + std::to_string(i) + " has an empty name");
    }
    for (std::size_t j = i + 1; j < actors_.size(); ++j) {
      if (actors_[i].name == actors_[j].name) {
        throw ModelError("duplicate actor name: " + actors_[i].name);
      }
    }
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const Channel& c = channels_[i];
    if (c.src >= actors_.size() || c.dst >= actors_.size()) {
      throw ModelError("channel " + c.name + " has an endpoint out of range");
    }
    if (c.prodRate == 0 || c.consRate == 0) {
      throw ModelError("channel " + c.name + " has a zero rate");
    }
    if (c.tokenSizeBytes == 0) {
      throw ModelError("channel " + c.name + " has a zero token size");
    }
    const auto& outs = actors_[c.src].outputs;
    const auto& ins = actors_[c.dst].inputs;
    const auto cid = static_cast<ChannelId>(i);
    if (std::find(outs.begin(), outs.end(), cid) == outs.end() ||
        std::find(ins.begin(), ins.end(), cid) == ins.end()) {
      throw ModelError("channel " + c.name + " is not registered with its endpoints");
    }
  }
}

}  // namespace mamps::sdf
