// Synchronous Dataflow (SDF) graph data structure.
//
// An SDF graph (Lee & Messerschmitt [9]) consists of actors connected by
// channels. Each channel has a fixed production rate at its source, a
// fixed consumption rate at its destination, and may carry initial
// tokens. Actors fire when every input channel holds at least the
// consumption rate's worth of tokens; a firing consumes and produces
// fixed token amounts.
//
// The Graph class is purely structural. Timing (execution times),
// implementation metadata, and mapping information are layered on top by
// TimedGraph (this header), ApplicationModel (app_model.hpp), and the
// mapping module.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace mamps::sdf {

using ActorId = std::uint32_t;
using ChannelId = std::uint32_t;

inline constexpr ActorId kInvalidActor = std::numeric_limits<ActorId>::max();
inline constexpr ChannelId kInvalidChannel = std::numeric_limits<ChannelId>::max();

/// A directed, rate-annotated edge between two actors.
struct Channel {
  std::string name;
  ActorId src = kInvalidActor;
  ActorId dst = kInvalidActor;
  std::uint32_t prodRate = 1;   ///< tokens produced per firing of src
  std::uint32_t consRate = 1;   ///< tokens consumed per firing of dst
  std::uint64_t initialTokens = 0;
  std::uint32_t tokenSizeBytes = 4;  ///< payload size of one token

  [[nodiscard]] bool isSelfEdge() const { return src == dst; }
};

/// An SDF actor; ports are implied by the incident channels.
struct Actor {
  std::string name;
  std::vector<ChannelId> inputs;   ///< channels with dst == this actor
  std::vector<ChannelId> outputs;  ///< channels with src == this actor
};

/// Parameters for Graph::connect.
struct ChannelSpec {
  ActorId src = kInvalidActor;
  std::uint32_t prodRate = 1;
  ActorId dst = kInvalidActor;
  std::uint32_t consRate = 1;
  std::uint64_t initialTokens = 0;
  std::uint32_t tokenSizeBytes = 4;
  std::string name;  ///< auto-generated when empty
};

/// A structural SDF graph. Actor and channel ids are dense indices and
/// remain stable; elements are never removed (build-only container).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  /// Add an actor; names must be unique and non-empty.
  ActorId addActor(std::string name);

  /// Add a channel; rates must be positive, endpoints valid.
  ChannelId connect(const ChannelSpec& spec);

  /// Convenience overload for the common case.
  ChannelId connect(ActorId src, std::uint32_t prodRate, ActorId dst, std::uint32_t consRate,
                    std::uint64_t initialTokens = 0, std::string name = {});

  [[nodiscard]] std::size_t actorCount() const { return actors_.size(); }
  [[nodiscard]] std::size_t channelCount() const { return channels_.size(); }

  [[nodiscard]] const Actor& actor(ActorId id) const;
  [[nodiscard]] const Channel& channel(ChannelId id) const;
  [[nodiscard]] const std::vector<Actor>& actors() const { return actors_; }
  [[nodiscard]] const std::vector<Channel>& channels() const { return channels_; }

  /// Find an actor by name.
  [[nodiscard]] std::optional<ActorId> findActor(std::string_view name) const;
  /// Find a channel by name.
  [[nodiscard]] std::optional<ChannelId> findChannel(std::string_view name) const;
  /// Find an actor by name; throws ModelError when absent.
  [[nodiscard]] ActorId actorByName(std::string_view name) const;

  /// Change the initial-token count of a channel (used when assigning
  /// buffer capacities and schedule edges).
  void setInitialTokens(ChannelId id, std::uint64_t tokens);
  /// Change the token size of a channel.
  void setTokenSize(ChannelId id, std::uint32_t bytes);

  /// True when every actor is reachable from every other actor treating
  /// channels as undirected edges. The empty graph is connected.
  [[nodiscard]] bool isConnected() const;

  /// Structural validation; throws ModelError on violations. Graphs
  /// produced through the builder API are valid by construction; this
  /// exists for graphs deserialized from files.
  void validate() const;

 private:
  /// Transparent string hasher so the name indexes answer
  /// string_view lookups without materializing a std::string.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::string name_ = "sdf";
  std::vector<Actor> actors_;
  std::vector<Channel> channels_;
  // Name -> id indexes so addActor/connect duplicate checks and
  // findActor/findChannel are O(1) instead of a linear name scan (HSDF
  // expansions add tens of thousands of uniquely named elements, making
  // the scan quadratic in the expansion size).
  // lint:allow(unordered-deterministic) -- lookup-only index (find/emplace by exact name), never iterated
  std::unordered_map<std::string, ActorId, NameHash, std::equal_to<>> actorIndex_;
  // lint:allow(unordered-deterministic) -- lookup-only index (find/emplace by exact name), never iterated
  std::unordered_map<std::string, ChannelId, NameHash, std::equal_to<>> channelIndex_;
};

/// An SDF graph together with one execution time (in clock cycles of the
/// platform, the flow's base time unit) per actor firing.
struct TimedGraph {
  Graph graph;
  std::vector<std::uint64_t> execTime;  ///< indexed by ActorId

  /// Per-actor self-concurrency limit: how many firings of the actor may
  /// overlap. Empty = every actor is serialized (limit 1), which models
  /// software actors on a processing element. An entry of 0 means
  /// unlimited; the communication model uses it for the latency stage of
  /// an interconnect connection, where multiple words pipeline.
  std::vector<std::uint32_t> maxConcurrent{};

  [[nodiscard]] std::uint64_t timeOf(ActorId id) const { return execTime.at(id); }

  /// Effective concurrency limit of an actor (0 = unlimited).
  [[nodiscard]] std::uint32_t concurrencyLimit(ActorId id) const {
    return maxConcurrent.empty() ? 1 : maxConcurrent.at(id);
  }

  /// Rebuild a TimedGraph around a transformed structural graph that
  /// kept the actor set (same ids, e.g. after adding channels): every
  /// per-actor annotation is carried over from `timing`. All
  /// graph-rewriting code must go through this (or copy the whole
  /// struct) instead of assigning fields one by one, so a future field
  /// cannot be silently dropped the way `maxConcurrent` once was in
  /// analysis::withCapacities. Transformations that change the actor
  /// set (sdf::toHsdf, comm::expandChannels) cannot use it and must
  /// instead populate every annotation per actor they emit.
  /// @param timing source of the per-actor annotations
  /// @param structure the transformed graph; must have the same actor
  ///   count as `timing.graph`
  /// @return `timing` with its structural graph replaced by `structure`
  /// @throws ModelError when the actor counts disagree
  [[nodiscard]] static TimedGraph rebuildFrom(const TimedGraph& timing, Graph structure) {
    if (structure.actorCount() != timing.graph.actorCount()) {
      throw ModelError("TimedGraph::rebuildFrom: actor count changed by the transformation");
    }
    TimedGraph out = timing;  // whole-struct copy: picks up every field
    out.graph = std::move(structure);
    return out;
  }
};

}  // namespace mamps::sdf
