// The parameterized interconnect communication model of Figure 4.
//
// A channel of the application graph that is mapped onto the
// interconnect is replaced by a sub-graph modeling the three phases of
// transferring a token:
//
//   Tile A (sending):    asrc --(d initial)--> s1 -> s2 -> s3
//     s1  consumes one token and performs the serialization work
//         (execution time = serialization WCET; runs on the PE or on
//         the communication assist).
//     s2  (time 0) fragments the token into N 32-bit words.
//     s3  (time 0) injects words into the network interface.
//     alpha_src: back-edge s1 -> asrc bounding the source-side buffer.
//     txBuffer:  back-edge c1 -> s2 bounding words waiting in the NI.
//
//   Interconnect:        c1 -> c2   (latency-rate model)
//     c1  rate stage: execution time = cycles per word on the
//         connection (1 for FSL; ceil(32/wires) for the SDM NoC).
//     c2  latency stage: execution time = connection latency; words
//         pipeline through it (unlimited self-concurrency), bounded by
//         the back-edge c2 -> c1 carrying w initial tokens (the maximum
//         number of words in simultaneous transmission).
//     alpha_n: back-edge d2 -> c1 bounding words buffered in the
//         connection at the receiving side.
//
//   Tile B (receiving):  d3 -> d2 -> d1 --> adst
//     d3  (time 0) extracts words from the network interface.
//     d2  (time 0) collects N words back into one token, releasing the
//         alpha_n buffer space.
//     d1  consumes one assembled token and performs the
//         de-serialization work, delivering the token to adst.
//     alpha_dst: back-edge adst -> d1 bounding the destination buffer.
//
// The original initial tokens d of the channel are placed on the
// asrc -> s1 edge (they exist in the source buffer at startup, matching
// the "alpha_src - n" annotation of Figure 4). Missing port rates are 1,
// as in the figure. Changing w, alpha_n, and the execution times of s1,
// c1/c2, and d1 adapts the model to different interconnects (Sec. 4.2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sdf/graph.hpp"

namespace mamps::comm {

/// All parameters of one expanded connection.
struct CommModelParams {
  std::uint32_t wordsPerToken = 1;       ///< N = ceil(tokenSize / 4)
  std::uint64_t serializeTime = 0;       ///< s1 execution time
  std::uint64_t deserializeTime = 0;     ///< d1 execution time
  std::uint64_t cyclesPerWord = 1;       ///< c1 execution time (rate)
  std::uint64_t latencyCycles = 1;       ///< c2 execution time
  std::uint32_t wordsInFlight = 1;       ///< w: back-edge c2 -> c1
  std::uint32_t connectionBufferWords = 4;  ///< alpha_n (clamped to >= N)
  std::uint32_t txBufferWords = 4;       ///< NI send buffer (clamped to >= N)
  std::uint64_t srcBufferTokens = 2;     ///< alpha_src (must be >= prodRate + initial)
  std::uint64_t dstBufferTokens = 2;     ///< alpha_dst (must be >= consRate)

  /// Check internal consistency for a channel with the given rates and
  /// initial tokens; throws ModelError on violations.
  void validateFor(std::uint32_t prodRate, std::uint32_t consRate,
                   std::uint64_t initialTokens) const;
};

/// Ids of the actors created for one expanded channel (in the new graph).
struct ExpandedChannel {
  sdf::ChannelId original = sdf::kInvalidChannel;  ///< id in the *input* graph
  sdf::ActorId s1 = sdf::kInvalidActor;
  sdf::ActorId s2 = sdf::kInvalidActor;
  sdf::ActorId s3 = sdf::kInvalidActor;
  sdf::ActorId c1 = sdf::kInvalidActor;
  sdf::ActorId c2 = sdf::kInvalidActor;
  sdf::ActorId d1 = sdf::kInvalidActor;
  sdf::ActorId d2 = sdf::kInvalidActor;
  sdf::ActorId d3 = sdf::kInvalidActor;
  /// The alpha_src back-edge (s1 -> asrc) carrying the source-buffer
  /// space tokens; its initial tokens are srcBufferTokens - initial.
  sdf::ChannelId alphaSrc = sdf::kInvalidChannel;
  /// The alpha_dst back-edge (adst -> d1) carrying dstBufferTokens.
  sdf::ChannelId alphaDst = sdf::kInvalidChannel;
};

/// Result of expanding a set of channels.
struct CommExpansion {
  sdf::TimedGraph graph;  ///< the binding-aware graph under construction
  /// Original actor ids are preserved: actor k of the input graph is
  /// actor k of the output graph.
  std::vector<ExpandedChannel> expanded;
};

/// Build a copy of `timed` in which every channel listed in `params` is
/// replaced by the Figure 4 sub-graph with the given parameters.
/// Unlisted channels are copied unchanged. Actor ids of the input graph
/// are preserved; new actors are appended.
[[nodiscard]] CommExpansion expandChannels(
    const sdf::TimedGraph& timed, const std::map<sdf::ChannelId, CommModelParams>& params);

/// Number of 32-bit words needed for a token of `tokenSizeBytes`.
[[nodiscard]] std::uint32_t wordsPerToken(std::uint32_t tokenSizeBytes);

}  // namespace mamps::comm
