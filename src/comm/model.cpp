#include "comm/model.hpp"

#include <algorithm>

#include "platform/architecture.hpp"

namespace mamps::comm {

using sdf::ActorId;
using sdf::Channel;
using sdf::ChannelId;
using sdf::ChannelSpec;
using sdf::Graph;

std::uint32_t wordsPerToken(std::uint32_t tokenSizeBytes) {
  if (tokenSizeBytes == 0) {
    throw ModelError("wordsPerToken: zero token size");
  }
  return (tokenSizeBytes + platform::kWordBytes - 1) / platform::kWordBytes;
}

void CommModelParams::validateFor(std::uint32_t prodRate, std::uint32_t consRate,
                                  std::uint64_t initialTokens) const {
  if (wordsPerToken == 0) {
    throw ModelError("comm model: wordsPerToken must be positive");
  }
  if (wordsInFlight == 0) {
    throw ModelError("comm model: wordsInFlight (w) must be positive");
  }
  if (srcBufferTokens < prodRate + initialTokens) {
    throw ModelError("comm model: alpha_src must cover one production plus initial tokens");
  }
  if (dstBufferTokens < consRate) {
    throw ModelError("comm model: alpha_dst must cover one consumption");
  }
}

namespace {

/// Clamp buffer parameters that must admit a whole token's worth of words.
std::uint32_t atLeastN(std::uint32_t configured, std::uint32_t n) {
  return std::max(configured, n);
}

}  // namespace

CommExpansion expandChannels(const sdf::TimedGraph& timed,
                             const std::map<ChannelId, CommModelParams>& params) {
  const Graph& in = timed.graph;
  if (timed.execTime.size() != in.actorCount()) {
    throw ModelError("expandChannels: execTime size mismatch");
  }
  for (const auto& [channel, p] : params) {
    const Channel& c = in.channel(channel);
    if (c.isSelfEdge()) {
      throw ModelError("expandChannels: self-edge " + c.name +
                       " cannot be mapped to the interconnect");
    }
    p.validateFor(c.prodRate, c.consRate, c.initialTokens);
  }

  CommExpansion out;
  out.graph.graph.setName(in.name() + "_comm");

  // Copy actors (ids preserved). The expansion adds actors below, so
  // TimedGraph::rebuildFrom does not apply: every per-actor annotation
  // of TimedGraph must be populated per actor here and in addActor.
  for (ActorId a = 0; a < in.actorCount(); ++a) {
    out.graph.graph.addActor(in.actor(a).name);
    // lint:allow(timedgraph-rebuild) -- actor-set-changing expansion: rebuildFrom cannot apply (see comment above); annotations are populated per copied actor
    out.graph.execTime.push_back(timed.execTime[a]);
    // lint:allow(timedgraph-rebuild) -- actor-set-changing expansion: same per-actor population as execTime above
    out.graph.maxConcurrent.push_back(timed.concurrencyLimit(a));
  }

  // Copy channels that stay local.
  for (ChannelId c = 0; c < in.channelCount(); ++c) {
    if (params.contains(c)) {
      continue;
    }
    const Channel& channel = in.channel(c);
    ChannelSpec spec;
    spec.src = channel.src;
    spec.dst = channel.dst;
    spec.prodRate = channel.prodRate;
    spec.consRate = channel.consRate;
    spec.initialTokens = channel.initialTokens;
    spec.tokenSizeBytes = channel.tokenSizeBytes;
    spec.name = channel.name;
    out.graph.graph.connect(spec);
  }

  // Expand the mapped channels.
  for (const auto& [channelId, p] : params) {
    const Channel& ch = in.channel(channelId);
    const std::uint32_t n = p.wordsPerToken;
    const std::uint32_t alphaN = atLeastN(p.connectionBufferWords, n);
    const std::uint32_t txBuffer = atLeastN(p.txBufferWords, n);
    const std::string& base = ch.name;
    Graph& g = out.graph.graph;

    ExpandedChannel ids;
    ids.original = channelId;
    const auto addActor = [&](const char* suffix, std::uint64_t execTime,
                              std::uint32_t concurrency) {
      const ActorId id = g.addActor(base + "_" + suffix);
      // lint:allow(timedgraph-rebuild) -- actor-set-changing expansion: annotations for a freshly added protocol actor cannot come from any prior TimedGraph
      out.graph.execTime.push_back(execTime);
      // lint:allow(timedgraph-rebuild) -- actor-set-changing expansion: same per-added-actor population as execTime above
      out.graph.maxConcurrent.push_back(concurrency);
      return id;
    };
    ids.s1 = addActor("s1", p.serializeTime, 1);
    ids.s2 = addActor("s2", 0, 1);
    ids.s3 = addActor("s3", 0, 1);
    ids.c1 = addActor("c1", p.cyclesPerWord, 1);
    ids.c2 = addActor("c2", p.latencyCycles, 0);  // words pipeline through the link
    ids.d3 = addActor("d3", 0, 1);
    ids.d2 = addActor("d2", 0, 1);
    ids.d1 = addActor("d1", p.deserializeTime, 1);

    const auto link = [&](ActorId src, std::uint32_t prod, ActorId dst, std::uint32_t cons,
                          std::uint64_t tokens, const char* suffix) {
      ChannelSpec spec;
      spec.src = src;
      spec.prodRate = prod;
      spec.dst = dst;
      spec.consRate = cons;
      spec.initialTokens = tokens;
      spec.tokenSizeBytes = ch.tokenSizeBytes;
      spec.name = base + "_" + suffix;
      return g.connect(spec);
    };

    // Source tile: asrc -> s1 (token queue, holds the d initial tokens),
    // alpha_src back-pressure, serialization pipeline. s1 claims the NI
    // transmit space for the whole token before serializing, exactly
    // like the generated wrapper code that blocks on the FSL while
    // copying words; c1 releases one slot per injected word.
    link(ch.src, ch.prodRate, ids.s1, 1, ch.initialTokens, "srcq");
    ids.alphaSrc =
        link(ids.s1, 1, ch.src, ch.prodRate, p.srcBufferTokens - ch.initialTokens, "alpha_src");
    link(ids.c1, 1, ids.s1, n, txBuffer, "txbuf");
    link(ids.s1, 1, ids.s2, 1, 0, "ser");
    link(ids.s2, n, ids.s3, 1, 0, "frag");
    link(ids.s3, 1, ids.c1, 1, 0, "inj");

    // Interconnect: rate stage -> latency stage, w words in flight.
    link(ids.c1, 1, ids.c2, 1, 0, "flight");
    link(ids.c2, 1, ids.c1, 1, p.wordsInFlight, "w");

    // Receiving side: words buffered in the connection (alpha_n,
    // released when the de-serialization drains them from the NI),
    // reassembled, and de-serialized into the destination buffer
    // (alpha_dst, released when adst consumes).
    link(ids.c2, 1, ids.d3, 1, 0, "rxq");
    link(ids.d3, 1, ids.d2, n, 0, "ext");
    link(ids.d2, 1, ids.d1, 1, 0, "asm");
    link(ids.d1, n, ids.c1, 1, alphaN, "alpha_n");
    link(ids.d1, 1, ch.dst, ch.consRate, 0, "dstq");
    ids.alphaDst = link(ch.dst, ch.consRate, ids.d1, 1, p.dstBufferTokens, "alpha_dst");

    out.expanded.push_back(ids);
  }

  return out;
}

}  // namespace mamps::comm
