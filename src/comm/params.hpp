// Derivation of communication-model parameters from the architecture.
//
// Section 4.2: "The model in Figure 4 can be used for modeling
// communication over many different forms of interconnect by changing
// w, alpha_n, and the execution times of s1, c2, and d1 to appropriate
// values." This header centralizes those choices for the two available
// interconnects (FSL, SDM NoC) and the two serialization options
// (on the processing element, or on the communication assist of [13]).
#pragma once

#include <cstdint>

#include "comm/model.hpp"
#include "platform/architecture.hpp"

namespace mamps::comm {

/// Where the (de)serialization code runs (Section 4.1).
enum class SerializationMode {
  OnProcessor,  ///< software loop on the PE; costs PE time
  CommAssist,   ///< dedicated CA hardware of [13]; PE is relieved
};

/// Cost model of the (de)serialization of one token into/from N words.
struct SerializationCost {
  std::uint64_t fixedCycles = 0;
  std::uint64_t perWordCycles = 0;

  [[nodiscard]] std::uint64_t cycles(std::uint32_t words) const {
    return fixedCycles + perWordCycles * words;
  }
};

/// The software implementation measured on the Microblaze tiles: a call
/// and loop overhead plus a load/store+FSL access pair per word.
[[nodiscard]] SerializationCost processorSerializationCost();

/// The communication assist of [13]: setup plus streaming at one word
/// per two cycles.
[[nodiscard]] SerializationCost commAssistSerializationCost();

/// Parameters for one channel mapped on the FSL interconnect.
[[nodiscard]] CommModelParams fslParams(const sdf::Channel& channel,
                                        const platform::FslConfig& config,
                                        SerializationMode mode,
                                        std::uint64_t srcBufferTokens,
                                        std::uint64_t dstBufferTokens);

/// Parameters for one channel routed over the SDM NoC with `hops` router
/// traversals and `wires` reserved wires.
[[nodiscard]] CommModelParams nocParams(const sdf::Channel& channel,
                                        const platform::NocConfig& config, std::uint32_t hops,
                                        std::uint32_t wires, SerializationMode mode,
                                        std::uint64_t srcBufferTokens,
                                        std::uint64_t dstBufferTokens);

}  // namespace mamps::comm
