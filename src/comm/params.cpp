#include "comm/params.hpp"

#include "platform/noc_topology.hpp"

namespace mamps::comm {
namespace {

SerializationCost costFor(SerializationMode mode) {
  return mode == SerializationMode::OnProcessor ? processorSerializationCost()
                                                : commAssistSerializationCost();
}

}  // namespace

SerializationCost processorSerializationCost() {
  // Microblaze software loop: function call + pointer setup, then a
  // load, an FSL put/get (blocking handshake), and loop bookkeeping per
  // 32-bit word.
  return {.fixedCycles = 24, .perWordCycles = 8};
}

SerializationCost commAssistSerializationCost() {
  // CA-MPSoC [13]: descriptor setup, then the CA streams one word every
  // other cycle without occupying the processor.
  return {.fixedCycles = 8, .perWordCycles = 2};
}

CommModelParams fslParams(const sdf::Channel& channel, const platform::FslConfig& config,
                          SerializationMode mode, std::uint64_t srcBufferTokens,
                          std::uint64_t dstBufferTokens) {
  const std::uint32_t n = wordsPerToken(channel.tokenSizeBytes);
  const SerializationCost cost = costFor(mode);
  CommModelParams p;
  p.wordsPerToken = n;
  p.serializeTime = cost.cycles(n);
  p.deserializeTime = cost.cycles(n);
  p.cyclesPerWord = 1;  // the FSL accepts one word per cycle
  p.latencyCycles = config.latencyCycles;
  p.wordsInFlight = 1;  // a simplex link holds one word in its register
  p.connectionBufferWords = config.fifoDepthWords;
  p.txBufferWords = config.fifoDepthWords;
  p.srcBufferTokens = srcBufferTokens;
  p.dstBufferTokens = dstBufferTokens;
  p.validateFor(channel.prodRate, channel.consRate, channel.initialTokens);
  return p;
}

CommModelParams nocParams(const sdf::Channel& channel, const platform::NocConfig& config,
                          std::uint32_t hops, std::uint32_t wires, SerializationMode mode,
                          std::uint64_t srcBufferTokens, std::uint64_t dstBufferTokens) {
  if (wires == 0 || wires > config.wiresPerLink) {
    throw ModelError("nocParams: invalid wire count");
  }
  const std::uint32_t n = wordsPerToken(channel.tokenSizeBytes);
  const SerializationCost cost = costFor(mode);
  CommModelParams p;
  p.wordsPerToken = n;
  p.serializeTime = cost.cycles(n);
  p.deserializeTime = cost.cycles(n);
  p.cyclesPerWord = platform::WireAllocator::cyclesPerWord(wires);
  // A connection with zero hops degenerates to a local NI loopback.
  p.latencyCycles = std::max<std::uint64_t>(1, std::uint64_t{hops} * config.hopLatencyCycles);
  // One word can sit in each router stage of the route.
  p.wordsInFlight = std::max<std::uint32_t>(1, hops);
  p.connectionBufferWords = config.connectionBufferWords;
  p.txBufferWords = config.connectionBufferWords;
  p.srcBufferTokens = srcBufferTokens;
  p.dstBufferTokens = dstBufferTokens;
  p.validateFor(channel.prodRate, channel.consRate, channel.initialTokens);
  return p;
}

}  // namespace mamps::comm
