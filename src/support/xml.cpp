#include "support/xml.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "support/strings.hpp"

namespace mamps::xml {

void Element::setAttribute(std::string key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string_view> Element::attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) {
      return std::string_view(v);
    }
  }
  return std::nullopt;
}

std::string_view Element::requiredAttribute(std::string_view key) const {
  const auto value = attribute(key);
  if (!value) {
    throw ParseError("element <" + name_ + "> is missing required attribute '" + std::string(key) +
                     "'");
  }
  return *value;
}

Element& Element::addChild(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::adopt(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

std::vector<const Element*> Element::childrenNamed(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& child : children_) {
    if (child->name() == name) {
      out.push_back(child.get());
    }
  }
  return out;
}

const Element* Element::firstChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) {
      return child.get();
    }
  }
  return nullptr;
}

const Element& Element::requiredChild(std::string_view name) const {
  const Element* child = firstChild(name);
  if (child == nullptr) {
    throw ParseError("element <" + name_ + "> is missing required child <" + std::string(name) +
                     ">");
  }
  return *child;
}

std::string Element::toString(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << '<' << name_;
  for (const auto& [k, v] : attributes_) {
    os << ' ' << k << "=\"" << escape(v) << '"';
  }
  if (children_.empty() && text_.empty()) {
    os << "/>\n";
    return os.str();
  }
  os << '>';
  if (!text_.empty()) {
    os << escape(text_);
  }
  if (!children_.empty()) {
    os << '\n';
    for (const auto& child : children_) {
      os << child->toString(indent + 1);
    }
    os << pad;
  }
  os << "</" << name_ << ">\n";
  return os.str();
}

std::string Document::toString() const {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root_->toString();
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with line tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<Element> parseDocument() {
    skipMisc();
    auto root = parseElement();
    skipMisc();
    if (pos_ != text_.size()) {
      fail("trailing content after document element");
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("XML parse error at line " + std::to_string(line_) + ": " + message);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text_[pos_]; }

  char advance() {
    if (eof()) {
      fail("unexpected end of input");
    }
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + peek() + "'");
    }
    advance();
  }

  bool consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) != token) {
      return false;
    }
    for (std::size_t i = 0; i < token.size(); ++i) {
      advance();
    }
    return true;
  }

  void skipWhitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek())) != 0) {
      advance();
    }
  }

  /// Skip whitespace, comments, processing instructions, and the XML decl.
  void skipMisc() {
    while (true) {
      skipWhitespace();
      if (consume("<!--")) {
        while (!consume("-->")) {
          advance();
        }
      } else if (consume("<?")) {
        while (!consume("?>")) {
          advance();
        }
      } else {
        return;
      }
    }
  }

  [[nodiscard]] static bool isNameChar(char c) {
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' || c == '-' || c == '.' ||
           c == ':';
  }

  std::string parseName() {
    std::string name;
    while (!eof() && isNameChar(peek())) {
      name.push_back(advance());
    }
    if (name.empty()) {
      fail("expected a name");
    }
    return name;
  }

  std::string decodeEntity() {
    // Called after '&' has been consumed.
    std::string entity;
    while (peek() != ';') {
      entity.push_back(advance());
      if (entity.size() > 8) {
        fail("unterminated entity reference");
      }
    }
    advance();  // ';'
    if (entity == "amp") return "&";
    if (entity == "lt") return "<";
    if (entity == "gt") return ">";
    if (entity == "quot") return "\"";
    if (entity == "apos") return "'";
    if (!entity.empty() && entity.front() == '#') {
      const std::string_view digits = std::string_view(entity).substr(1);
      const std::uint64_t code =
          (digits.size() > 1 && (digits[0] == 'x' || digits[0] == 'X'))
              ? std::stoull(std::string(digits.substr(1)), nullptr, 16)
              : parseU64(digits);
      if (code > 127) {
        fail("non-ASCII character references are not supported");
      }
      return std::string(1, static_cast<char>(code));
    }
    fail("unknown entity '&" + entity + ";'");
  }

  std::string parseAttributeValue() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') {
      fail("expected quoted attribute value");
    }
    advance();
    std::string value;
    while (peek() != quote) {
      if (peek() == '&') {
        advance();
        value += decodeEntity();
      } else {
        value.push_back(advance());
      }
    }
    advance();  // closing quote
    return value;
  }

  std::unique_ptr<Element> parseElement() {
    expect('<');
    auto element = std::make_unique<Element>(parseName());
    // Attributes.
    while (true) {
      skipWhitespace();
      if (peek() == '/' || peek() == '>') {
        break;
      }
      std::string key = parseName();
      skipWhitespace();
      expect('=');
      skipWhitespace();
      element->setAttribute(std::move(key), parseAttributeValue());
    }
    if (consume("/>")) {
      return element;
    }
    expect('>');
    // Content: text interleaved with children and comments.
    std::string text;
    while (true) {
      if (consume("<!--")) {
        while (!consume("-->")) {
          advance();
        }
        continue;
      }
      if (text_.substr(pos_, 2) == "</") {
        consume("</");
        const std::string closing = parseName();
        if (closing != element->name()) {
          fail("mismatched closing tag </" + closing + "> for <" + element->name() + ">");
        }
        skipWhitespace();
        expect('>');
        break;
      }
      if (peek() == '<') {
        element->adopt(parseElement());
        continue;
      }
      if (peek() == '&') {
        advance();
        text += decodeEntity();
        continue;
      }
      if (eof()) {
        fail("unterminated element <" + element->name() + ">");
      }
      text.push_back(advance());
    }
    const std::string_view trimmed = trim(text);
    if (!trimmed.empty()) {
      element->setText(std::string(trimmed));
    }
    return element;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Document parse(std::string_view text) {
  Parser parser(text);
  return Document(parser.parseDocument());
}

Document parseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ParseError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace mamps::xml
