// Lightweight scoped wall-clock timer for in-result profiling counters.
//
// The analysis layer attributes its wall time to phases (expansion /
// solve / store) directly in ThroughputResult, so perf regressions can
// be localized from any test or bench run without an external profiler.
// ScopedTimer accumulates elapsed nanoseconds into a caller-owned
// counter on destruction; counters are plain integers, so results stay
// copyable and comparisons of the semantic fields stay exact.
#pragma once

#include <chrono>
#include <cstdint>

namespace mamps::support {

/// Accumulates the scope's wall-clock duration (steady clock,
/// nanoseconds) into the referenced counter when the scope exits.
class ScopedTimer {
 public:
  /// Start timing; `sink` must outlive the timer.
  /// @param sink counter receiving the elapsed nanoseconds on destruction
  explicit ScopedTimer(std::uint64_t& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto end = std::chrono::steady_clock::now();
    sink_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_).count());
  }

 private:
  std::uint64_t& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mamps::support
