// Deterministic pseudo-random number generation for tests, benchmarks,
// and synthetic workload creation. splitmix64: tiny, fast, well mixed,
// and — unlike std::mt19937 seeded naively — gives unrelated streams for
// nearby seeds.
#pragma once

#include <cstdint>

namespace mamps {

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace mamps
