// A small XML document model and parser.
//
// This implements the subset of XML used by the SDF3-style interchange
// files of this flow: elements, attributes, text content, comments, XML
// declarations, and entity references (&amp; &lt; &gt; &quot; &apos;).
// It does not implement DTDs, namespaces-as-semantics, or CDATA.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace mamps::xml {

/// One XML element: tag name, attributes, child elements, and text.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  void setAttribute(std::string key, std::string value);
  [[nodiscard]] std::optional<std::string_view> attribute(std::string_view key) const;
  /// Attribute that must exist; throws ParseError otherwise.
  [[nodiscard]] std::string_view requiredAttribute(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  Element& addChild(std::string name);
  /// Take ownership of an already-built element as the last child.
  Element& adopt(std::unique_ptr<Element> child);
  [[nodiscard]] const std::vector<std::unique_ptr<Element>>& children() const { return children_; }
  /// All direct children with the given tag name.
  [[nodiscard]] std::vector<const Element*> childrenNamed(std::string_view name) const;
  /// The first direct child with the given tag name, or nullptr.
  [[nodiscard]] const Element* firstChild(std::string_view name) const;
  /// The first direct child with the given tag name; throws ParseError when absent.
  [[nodiscard]] const Element& requiredChild(std::string_view name) const;

  void setText(std::string text) { text_ = std::move(text); }
  [[nodiscard]] const std::string& text() const { return text_; }

  /// Serialize this element (and subtree) as indented XML.
  [[nodiscard]] std::string toString(int indent = 0) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<Element>> children_;
  std::string text_;
};

/// A parsed document; owns the root element.
class Document {
 public:
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}

  [[nodiscard]] const Element& root() const { return *root_; }
  [[nodiscard]] std::string toString() const;

 private:
  std::unique_ptr<Element> root_;
};

/// Parse a document from text; throws ParseError with line information.
[[nodiscard]] Document parse(std::string_view text);

/// Parse the file at `path`; throws ParseError on I/O or syntax errors.
[[nodiscard]] Document parseFile(const std::string& path);

/// Escape text for inclusion in XML content or attribute values.
[[nodiscard]] std::string escape(std::string_view text);

}  // namespace mamps::xml
