// Error types used throughout the MAMPS flow.
//
// Convention: exceptions signal *contract violations and unrecoverable
// input errors* (malformed graphs, malformed XML, impossible requests).
// Expected analysis outcomes (deadlock, infeasible mapping, ...) are
// reported through result types, not exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace mamps {

/// Base class for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A structurally invalid model (graph, architecture, application).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Malformed interchange-format input (XML parse/shape errors).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// An analysis was asked to do something outside its domain
/// (e.g. throughput of an inconsistent graph).
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& what) : Error(what) {}
};

/// Platform generation failed (resource exhaustion, missing template).
class GenerationError : public Error {
 public:
  explicit GenerationError(const std::string& what) : Error(what) {}
};

}  // namespace mamps
