// Minimal leveled logging. Tools in the flow report progress at Info;
// analyses report detail at Debug. Quiet by default in tests.
#pragma once

#include <string>

namespace mamps {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

/// Set the global minimum level that is actually printed.
void setLogLevel(LogLevel level);
[[nodiscard]] LogLevel logLevel();

/// Emit one log line to stderr when `level` passes the global filter.
void logMessage(LogLevel level, const std::string& message);

inline void logDebug(const std::string& message) { logMessage(LogLevel::Debug, message); }
inline void logInfo(const std::string& message) { logMessage(LogLevel::Info, message); }
inline void logWarning(const std::string& message) { logMessage(LogLevel::Warning, message); }
inline void logError(const std::string& message) { logMessage(LogLevel::Error, message); }

}  // namespace mamps
