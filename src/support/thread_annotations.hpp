// Clang thread-safety analysis annotations (-Wthread-safety), wrapped
// so they compile away under every other compiler. Annotate shared
// state with MAMPS_GUARDED_BY(mutex) and the member functions that
// touch it with MAMPS_REQUIRES / MAMPS_EXCLUDES; the clang CI leg
// builds the annotated targets with -Wthread-safety -Werror, turning
// "touched guarded state without the lock" into a compile error
// instead of a TSan-sized race hunt. The macro set follows the
// canonical mutex.h pattern from the clang documentation.
#pragma once

#include <mutex>

/// @file
/// Thread-safety annotation macros for clang's -Wthread-safety
/// analysis, plus annotated `Mutex`/`MutexLock` wrappers (libstdc++'s
/// std::mutex carries no capability attributes, so locking it directly
/// is invisible to the analysis). Under non-clang compilers every
/// macro expands to nothing and the wrappers are zero-cost aliases for
/// std::mutex + lock_guard behaviour.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MAMPS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MAMPS_THREAD_ANNOTATION
/// Expands to the clang attribute `x` when the compiler supports
/// thread-safety attributes, and to nothing otherwise.
/// @param x the thread-safety attribute to apply
#define MAMPS_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper class).
/// @param x the capability name reported in diagnostics
#define MAMPS_CAPABILITY(x) MAMPS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability for its lifetime
/// (e.g. a scoped_lock wrapper).
#define MAMPS_SCOPED_CAPABILITY MAMPS_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member may only be read or written while
/// holding `x`; violations are compile errors under -Wthread-safety.
/// @param x the protecting mutex member
#define MAMPS_GUARDED_BY(x) MAMPS_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the pointee of a pointer member may only be accessed
/// while holding `x` (the pointer itself is unguarded).
/// @param x the protecting mutex member
#define MAMPS_PT_GUARDED_BY(x) MAMPS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that the annotated function may only be called while
/// already holding the listed capabilities.
/// @param ... the mutexes the caller must hold
#define MAMPS_REQUIRES(...) MAMPS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that the annotated function may only be called while
/// holding the listed capabilities in shared (reader) mode.
/// @param ... the mutexes the caller must hold shared
#define MAMPS_REQUIRES_SHARED(...) \
  MAMPS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Declares that the annotated function acquires the listed
/// capabilities and does not release them before returning.
/// @param ... the mutexes acquired
#define MAMPS_ACQUIRE(...) MAMPS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Declares that the annotated function releases the listed
/// capabilities before returning.
/// @param ... the mutexes released
#define MAMPS_RELEASE(...) MAMPS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares that the annotated function must NOT be called while
/// holding the listed capabilities (deadlock prevention for functions
/// that acquire them internally).
/// @param ... the mutexes the caller must not hold
#define MAMPS_EXCLUDES(...) MAMPS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a function whose return value is the capability guarding
/// other state (mutex accessors).
/// @param x the capability returned
#define MAMPS_RETURN_CAPABILITY(x) MAMPS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables thread-safety analysis inside the annotated
/// function. Use only with a comment explaining why the analysis
/// cannot see the invariant.
#define MAMPS_NO_THREAD_SAFETY_ANALYSIS MAMPS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mamps::support {

/// std::mutex annotated as a clang thread-safety capability, so that
/// MAMPS_GUARDED_BY(mu_) members and MAMPS_REQUIRES(mu_) functions are
/// actually checked (a raw std::mutex from libstdc++ is invisible to
/// the analysis). Same cost and semantics as std::mutex.
class MAMPS_CAPABILITY("mutex") Mutex {
 public:
  /// Acquire the mutex (blocking).
  void lock() MAMPS_ACQUIRE() { m_.lock(); }
  /// Release the mutex.
  void unlock() MAMPS_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// RAII lock over a Mutex, annotated as a scoped capability: the
/// analysis treats the capability as held from construction to the end
/// of the enclosing scope. Use exactly like std::lock_guard.
class MAMPS_SCOPED_CAPABILITY MutexLock {
 public:
  /// Lock `m` for the lifetime of this object.
  /// @param m the mutex to hold
  explicit MutexLock(Mutex& m) MAMPS_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() MAMPS_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace mamps::support
