#include "support/rational.hpp"

#include <cstdlib>

namespace mamps {
namespace {

std::int64_t checkedMul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw Error("Rational: multiplication overflow");
  }
  return out;
}

std::int64_t checkedAdd(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw Error("Rational: addition overflow");
  }
  return out;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) {
    throw Error("Rational: zero denominator");
  }
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  num_ /= g;
  den_ /= g;
}

std::string Rational::toString() const {
  if (den_ == 1) {
    return std::to_string(num_);
  }
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r = *this;
  r.num_ = -r.num_;
  return r;
}

Rational& Rational::operator+=(const Rational& rhs) {
  // Reduce cross-factors first to delay overflow.
  const std::int64_t g = std::gcd(den_, rhs.den_);
  const std::int64_t lhsScale = rhs.den_ / g;
  const std::int64_t rhsScale = den_ / g;
  num_ = checkedAdd(checkedMul(num_, lhsScale), checkedMul(rhs.num_, rhsScale));
  den_ = checkedMul(den_, lhsScale);
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) { return *this += -rhs; }

Rational& Rational::operator*=(const Rational& rhs) {
  const std::int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, rhs.den_);
  const std::int64_t g2 = std::gcd(rhs.num_ < 0 ? -rhs.num_ : rhs.num_, den_);
  num_ = checkedMul(num_ / g1, rhs.num_ / g2);
  den_ = checkedMul(den_ / g2, rhs.den_ / g1);
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) { return *this *= rhs.reciprocal(); }

Rational Rational::reciprocal() const {
  if (num_ == 0) {
    throw Error("Rational: reciprocal of zero");
  }
  return {den_, num_};
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // Compare a.num/a.den <=> b.num/b.den via cross multiplication with
  // gcd reduction to avoid overflow in common cases.
  const std::int64_t g = std::gcd(a.den_, b.den_);
  const std::int64_t lhs = checkedMul(a.num_, b.den_ / g);
  const std::int64_t rhs = checkedMul(b.num_, a.den_ / g);
  return lhs <=> rhs;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) { return os << r.toString(); }

std::int64_t checkedLcm(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  const std::int64_t g = std::gcd(a, b);
  return checkedMul(a / g, b);
}

}  // namespace mamps
