// Exact rational arithmetic.
//
// Used by the repetition-vector computation (balance equations) and the
// throughput results (iterations per clock cycle are rational numbers).
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <ostream>
#include <string>

#include "support/error.hpp"

namespace mamps {

/// An always-normalized rational number over 64-bit integers.
///
/// Invariants: den > 0, gcd(|num|, den) == 1, 0 is represented as 0/1.
/// Arithmetic throws mamps::Error on overflow or division by zero.
class Rational {
 public:
  constexpr Rational() = default;
  Rational(std::int64_t num, std::int64_t den);
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT: implicit by design

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] constexpr bool isZero() const { return num_ == 0; }
  [[nodiscard]] constexpr bool isInteger() const { return den_ == 1; }
  [[nodiscard]] double toDouble() const { return static_cast<double>(num_) / static_cast<double>(den_); }
  [[nodiscard]] std::string toString() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend constexpr bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  /// The multiplicative inverse; throws on zero.
  [[nodiscard]] Rational reciprocal() const;

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Least common multiple with overflow checking.
std::int64_t checkedLcm(std::int64_t a, std::int64_t b);

}  // namespace mamps
