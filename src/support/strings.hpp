// Small string utilities shared across the flow.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mamps {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a separator character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// True when `s` starts with `prefix`.
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);

/// Parse a non-negative integer; throws mamps::ParseError on junk.
[[nodiscard]] std::uint64_t parseU64(std::string_view s);

/// Parse a signed integer; throws mamps::ParseError on junk.
[[nodiscard]] std::int64_t parseI64(std::string_view s);

/// Parse a double; throws mamps::ParseError on junk.
[[nodiscard]] double parseDouble(std::string_view s);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// A valid C identifier derived from an arbitrary name (for codegen).
[[nodiscard]] std::string sanitizeIdentifier(std::string_view name);

}  // namespace mamps
