#include "support/log.hpp"

#include <atomic>
#include <cstdio>

namespace mamps {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warning};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warning: return "warning";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) {
    return;
  }
  std::fprintf(stderr, "[mamps:%s] %s\n", levelName(level), message.c_str());
}

}  // namespace mamps
