#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "support/error.hpp"

namespace mamps {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::uint64_t parseU64(std::string_view s) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("not an unsigned integer: '" + std::string(s) + "'");
  }
  return value;
}

std::int64_t parseI64(std::string_view s) {
  s = trim(s);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

double parseDouble(std::string_view s) {
  s = trim(s);
  if (s.empty()) {
    throw ParseError("not a number: ''");
  }
  // std::from_chars<double> is available in libstdc++ 11+; keep strtod as
  // the portable route but validate full consumption.
  const std::string copy(s);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    throw ParseError("not a number: '" + copy + "'");
  }
  return value;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list argsCopy;
  va_copy(argsCopy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, argsCopy);
  }
  va_end(argsCopy);
  return out;
}

std::string sanitizeIdentifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace mamps
