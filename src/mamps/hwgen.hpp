// Hardware platform generation (Section 5.2): "Template components are
// instantiated and connected as required by the application. ... The
// interconnect components are instantiated to match the specified
// communication architecture. Connections are routed and the VHDL code
// and peripheral driver for the interconnect are also generated."
//
// On an FPGA-less host this produces the same structural artifacts the
// flow hands to Xilinx Platform Studio: an MHS-style component list and
// a VHDL-style structural netlist for the interconnect.
#pragma once

#include <string>
#include <vector>

#include "mamps/memory_map.hpp"
#include "mapping/flow.hpp"

namespace mamps::gen {

/// The MHS-style system description: one block per tile component plus
/// the interconnect instances.
[[nodiscard]] std::string generateSystemMhs(const sdf::ApplicationModel& app,
                                            const platform::Architecture& arch,
                                            const mapping::Mapping& mapping,
                                            const std::vector<TileMemoryMap>& memory);

/// VHDL-style structural netlist of the interconnect: FSL instances or
/// NoC routers with their programmed connections.
[[nodiscard]] std::string generateInterconnectVhdl(const sdf::ApplicationModel& app,
                                                   const platform::Architecture& arch,
                                                   const mapping::Mapping& mapping);

}  // namespace mamps::gen
