#include "mamps/generator.hpp"

#include <filesystem>
#include <fstream>

#include "mamps/hwgen.hpp"
#include "mamps/project.hpp"
#include "mamps/swgen.hpp"
#include "support/strings.hpp"

namespace mamps::gen {

void PlatformProject::writeTo(const std::string& directory) const {
  namespace fs = std::filesystem;
  for (const auto& [path, content] : files) {
    const fs::path full = fs::path(directory) / path;
    fs::create_directories(full.parent_path());
    std::ofstream out(full, std::ios::binary);
    if (!out) {
      throw GenerationError("cannot write " + full.string());
    }
    out << content;
  }
}

PlatformProject generatePlatform(const sdf::ApplicationModel& app,
                                 const platform::Architecture& arch,
                                 const mapping::Mapping& mapping) {
  const auto start = std::chrono::steady_clock::now();
  if (mapping.actorToTile.size() != app.graph().actorCount() ||
      mapping.channelRoutes.size() != app.graph().channelCount() ||
      mapping.schedules.size() != arch.tileCount()) {
    throw GenerationError("generatePlatform: mapping does not match application/architecture");
  }

  PlatformProject project;
  project.memory = computeMemoryMaps(app, arch, mapping);

  project.files["hw/system.mhs"] = generateSystemMhs(app, arch, mapping, project.memory);
  project.files["hw/interconnect.vhd"] = generateInterconnectVhdl(app, arch, mapping);
  project.files["sw/include/channels.h"] = generateChannelsHeader(app, arch, mapping);
  for (platform::TileId t = 0; t < arch.tileCount(); ++t) {
    project.files[strprintf("sw/tile%u/main.c", t)] = generateTileMain(app, arch, mapping, t);
  }
  project.files["build.tcl"] = generateXpsTcl(arch);
  project.files["MANIFEST.txt"] = generateManifest(app, arch, mapping);

  project.generationTime = std::chrono::steady_clock::now() - start;
  return project;
}

}  // namespace mamps::gen
