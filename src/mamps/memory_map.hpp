// Per-tile memory sizing (Section 5.2): "Memory sizes are calculated
// for each tile based on the mapped buffers, actors and the size of the
// scheduling and communication layer."
#pragma once

#include <cstdint>
#include <vector>

#include "mapping/flow.hpp"
#include "platform/architecture.hpp"
#include "sdf/app_model.hpp"

namespace mamps::gen {

struct TileMemoryMap {
  std::uint32_t actorInstrBytes = 0;    ///< sum of mapped actor code
  std::uint32_t actorDataBytes = 0;     ///< sum of mapped actor data
  std::uint32_t bufferBytes = 0;        ///< channel buffers hosted on this tile
  std::uint32_t runtimeInstrBytes = 0;  ///< scheduler + communication layer
  std::uint32_t runtimeDataBytes = 0;

  [[nodiscard]] std::uint32_t instrBytes() const { return actorInstrBytes + runtimeInstrBytes; }
  [[nodiscard]] std::uint32_t dataBytes() const {
    return actorDataBytes + bufferBytes + runtimeDataBytes;
  }
  /// Memory is instantiated in power-of-two BRAM blocks.
  [[nodiscard]] std::uint32_t instrBytesRounded() const;
  [[nodiscard]] std::uint32_t dataBytesRounded() const;
};

/// Round up to the next power of two (minimum 1 kB).
[[nodiscard]] std::uint32_t roundToBram(std::uint32_t bytes);

/// Compute the memory map of every tile. Local channel buffers live on
/// the tile running both endpoints; an inter-tile channel contributes
/// its alpha_src buffer to the source tile and its alpha_dst buffer to
/// the destination tile. Throws GenerationError when a tile overflows
/// its template memory.
[[nodiscard]] std::vector<TileMemoryMap> computeMemoryMaps(const sdf::ApplicationModel& app,
                                                           const platform::Architecture& arch,
                                                           const mapping::Mapping& mapping);

}  // namespace mamps::gen
