// The MAMPS platform generator: the second tool of the design flow
// (Figure 1). It combines the application model, the architecture
// model, and the SDF3 mapping into a complete FPGA project: hardware
// description, per-tile software, and the XPS build script.
#pragma once

#include <chrono>
#include <map>
#include <string>

#include "mamps/memory_map.hpp"
#include "mapping/flow.hpp"

namespace mamps::gen {

/// All generated artifacts, keyed by project-relative path.
struct PlatformProject {
  std::map<std::string, std::string> files;
  std::vector<TileMemoryMap> memory;
  /// Wall-clock duration of the generation step (Table 1 reports 16 s
  /// for the MJPEG project on the authors' machine).
  std::chrono::duration<double> generationTime{0};

  /// Write every artifact below `directory` (created if needed).
  void writeTo(const std::string& directory) const;
};

/// Generate the complete project.
[[nodiscard]] PlatformProject generatePlatform(const sdf::ApplicationModel& app,
                                               const platform::Architecture& arch,
                                               const mapping::Mapping& mapping);

}  // namespace mamps::gen
