// Software platform generation (Section 5.2): "This includes generating
// wrapper code for each actor, translating the static-order schedule
// provided by SDF3 into C code, and generating initialization code for
// the communication."
#pragma once

#include <string>

#include "mamps/memory_map.hpp"
#include "mapping/flow.hpp"

namespace mamps::gen {

/// The shared channels.h header: buffer declarations and token types.
[[nodiscard]] std::string generateChannelsHeader(const sdf::ApplicationModel& app,
                                                 const platform::Architecture& arch,
                                                 const mapping::Mapping& mapping);

/// main.c of one tile: actor wrappers, the static-order schedule lookup
/// table, the communication initialization, and the main loop.
[[nodiscard]] std::string generateTileMain(const sdf::ApplicationModel& app,
                                           const platform::Architecture& arch,
                                           const mapping::Mapping& mapping,
                                           platform::TileId tile);

}  // namespace mamps::gen
