// XPS project emission (Section 5.2): "The XPS TCL script interface is
// then used to complete the project and to add the required hard and
// software targets for the implementation. Using the script interface
// ensures compatibility over many different versions of XPS."
#pragma once

#include <string>

#include "mapping/flow.hpp"

namespace mamps::gen {

/// The build TCL driving XPS from system creation to bitstream.
[[nodiscard]] std::string generateXpsTcl(const platform::Architecture& arch);

/// A human-readable project manifest summarizing the generated system.
[[nodiscard]] std::string generateManifest(const sdf::ApplicationModel& app,
                                           const platform::Architecture& arch,
                                           const mapping::Mapping& mapping);

}  // namespace mamps::gen
