#include "mamps/memory_map.hpp"

#include "mapping/binding.hpp"

namespace mamps::gen {

using sdf::ActorId;
using sdf::ChannelId;

std::uint32_t roundToBram(std::uint32_t bytes) {
  std::uint32_t size = 1024;
  while (size < bytes) {
    size *= 2;
  }
  return size;
}

std::uint32_t TileMemoryMap::instrBytesRounded() const { return roundToBram(instrBytes()); }
std::uint32_t TileMemoryMap::dataBytesRounded() const { return roundToBram(dataBytes()); }

std::vector<TileMemoryMap> computeMemoryMaps(const sdf::ApplicationModel& app,
                                             const platform::Architecture& arch,
                                             const mapping::Mapping& mapping) {
  const sdf::Graph& g = app.graph();
  std::vector<TileMemoryMap> maps(arch.tileCount());
  for (std::size_t t = 0; t < maps.size(); ++t) {
    // Hardware IP tiles run no software: no scheduler/comm layer.
    if (arch.tile(static_cast<platform::TileId>(t)).kind != platform::TileKind::HardwareIp) {
      maps[t].runtimeInstrBytes = mapping::runtimeLayerInstrBytes();
      maps[t].runtimeDataBytes = mapping::runtimeLayerDataBytes();
    }
  }

  for (ActorId a = 0; a < g.actorCount(); ++a) {
    const platform::TileId t = mapping.actorToTile.at(a);
    const auto* impl = app.implementationFor(a, arch.tile(t).processorType);
    if (impl == nullptr) {
      throw GenerationError("computeMemoryMaps: actor " + g.actor(a).name +
                            " has no implementation for tile " + arch.tile(t).name);
    }
    maps[t].actorInstrBytes += impl->instrMemBytes;
    maps[t].actorDataBytes += impl->dataMemBytes;
  }

  for (ChannelId c = 0; c < g.channelCount(); ++c) {
    const sdf::Channel& channel = g.channel(c);
    const mapping::ChannelRoute& route = mapping.channelRoutes.at(c);
    if (route.interTile) {
      maps[route.srcTile].bufferBytes += static_cast<std::uint32_t>(
          mapping.srcBufferTokens.at(c) * channel.tokenSizeBytes);
      maps[route.dstTile].bufferBytes += static_cast<std::uint32_t>(
          mapping.dstBufferTokens.at(c) * channel.tokenSizeBytes);
    } else if (!channel.isSelfEdge()) {
      maps[route.srcTile].bufferBytes += static_cast<std::uint32_t>(
          mapping.localCapacityTokens.at(c) * channel.tokenSizeBytes);
    } else {
      // Self-edge state buffers: one slot per initial token.
      maps[route.srcTile].bufferBytes +=
          static_cast<std::uint32_t>(channel.initialTokens * channel.tokenSizeBytes);
    }
  }

  for (std::size_t t = 0; t < maps.size(); ++t) {
    const platform::Tile& tile = arch.tile(static_cast<platform::TileId>(t));
    if (maps[t].instrBytesRounded() > tile.memory.instrBytes ||
        maps[t].dataBytesRounded() > tile.memory.dataBytes) {
      throw GenerationError("tile " + tile.name + " memory overflow: needs " +
                            std::to_string(maps[t].instrBytesRounded()) + "+" +
                            std::to_string(maps[t].dataBytesRounded()) + " bytes");
    }
  }
  return maps;
}

}  // namespace mamps::gen
