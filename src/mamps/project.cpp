#include "mamps/project.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace mamps::gen {

std::string generateXpsTcl(const platform::Architecture& arch) {
  std::ostringstream os;
  os << "# Generated XPS build script (MAMPS)\n";
  os << "# xps -nw -scr build.tcl\n";
  os << "xload new " << sanitizeIdentifier(arch.name()) << ".xmp\n";
  os << "xset arch virtex6\n";
  os << "xset dev xc6vlx240t\n";
  os << "xset package ff1156\n";
  os << "xset speedgrade -1\n";
  os << "xset hier sub\n";
  os << "xload mhs system.mhs\n";
  for (std::size_t t = 0; t < arch.tileCount(); ++t) {
    os << "xadd swapp tile" << t << "_sw tile" << t << "/main.c\n";
    os << "xset swproj tile" << t << "_sw proc " << sanitizeIdentifier(arch.tile(
              static_cast<platform::TileId>(t)).name) << "_pe\n";
  }
  os << "run bits\n";
  os << "run initbram\n";
  os << "exit\n";
  return os.str();
}

std::string generateManifest(const sdf::ApplicationModel& app,
                             const platform::Architecture& arch,
                             const mapping::Mapping& mapping) {
  const sdf::Graph& g = app.graph();
  std::ostringstream os;
  os << "MAMPS project manifest\n";
  os << "======================\n";
  os << "application:  " << g.name() << " (" << g.actorCount() << " actors, "
     << g.channelCount() << " channels)\n";
  os << "architecture: " << arch.name() << " (" << arch.tileCount() << " tiles, "
     << platform::interconnectKindName(arch.interconnect()) << ")\n";
  os << "serialization: "
     << (mapping.serialization == comm::SerializationMode::OnProcessor ? "processing element"
                                                                       : "communication assist")
     << "\n\n";
  os << "actor binding:\n";
  for (sdf::ActorId a = 0; a < g.actorCount(); ++a) {
    os << "  " << g.actor(a).name << " -> " << arch.tile(mapping.actorToTile.at(a)).name << "\n";
  }
  os << "\nstatic-order schedules:\n";
  for (std::size_t t = 0; t < mapping.schedules.size(); ++t) {
    os << "  " << arch.tile(static_cast<platform::TileId>(t)).name << ":";
    for (const sdf::ActorId a : mapping.schedules[t]) {
      os << " " << g.actor(a).name;
    }
    os << "\n";
  }
  os << "\ninter-tile channels:\n";
  for (sdf::ChannelId c = 0; c < g.channelCount(); ++c) {
    const mapping::ChannelRoute& route = mapping.channelRoutes.at(c);
    if (!route.interTile) {
      continue;
    }
    os << "  " << g.channel(c).name << ": " << arch.tile(route.srcTile).name << " -> "
       << arch.tile(route.dstTile).name;
    if (arch.interconnect() == platform::InterconnectKind::Fsl) {
      os << " (fsl_" << route.fslIndex << ")";
    } else {
      os << " (" << route.route.size() << " hops, " << route.wires << " wires)";
    }
    os << ", alpha_src=" << mapping.srcBufferTokens.at(c)
       << ", alpha_dst=" << mapping.dstBufferTokens.at(c) << "\n";
  }
  return os.str();
}

}  // namespace mamps::gen
