// SDM mesh NoC topology: router placement, XY routing, and per-link
// wire accounting (Section 5.3.1, based on [17]).
//
// The NoC has one router per tile, arranged in a 2-D mesh kept as close
// to square as possible. Connections are programmed point-to-point; a
// connection is assigned a number of wires on every link along its
// route, and a wire belongs to at most one connection at a time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "platform/architecture.hpp"

namespace mamps::platform {

/// Position of a router in the mesh.
struct MeshCoord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;

  bool operator==(const MeshCoord&) const = default;
};

/// One directed mesh link between adjacent routers.
struct NocLink {
  std::uint32_t fromRouter = 0;
  std::uint32_t toRouter = 0;
};

using LinkId = std::uint32_t;

/// Near-square mesh dimensions for `n` routers: rows = floor(sqrt(n)),
/// cols = ceil(n / rows). This minimizes the maximum hop distance,
/// which relates directly to connection latency (Section 5.3.1).
[[nodiscard]] std::pair<std::uint32_t, std::uint32_t> nearSquareMesh(std::uint32_t n);

/// The static topology derived from a NocConfig: routers, links, routes.
class NocTopology {
 public:
  explicit NocTopology(const NocConfig& config);

  [[nodiscard]] std::uint32_t routerCount() const { return config_.rows * config_.cols; }
  [[nodiscard]] const NocConfig& config() const { return config_; }

  [[nodiscard]] MeshCoord coordOf(std::uint32_t router) const;
  [[nodiscard]] std::uint32_t routerAt(MeshCoord c) const;

  [[nodiscard]] std::size_t linkCount() const { return links_.size(); }
  [[nodiscard]] const NocLink& link(LinkId id) const;
  [[nodiscard]] const std::vector<NocLink>& links() const { return links_; }
  /// The directed link between two adjacent routers.
  [[nodiscard]] LinkId linkBetween(std::uint32_t fromRouter, std::uint32_t toRouter) const;

  /// Dimension-ordered (XY) route between two routers: the sequence of
  /// directed links traversed. Empty when src == dst.
  [[nodiscard]] std::vector<LinkId> xyRoute(std::uint32_t srcRouter,
                                            std::uint32_t dstRouter) const;

  /// Manhattan distance in hops.
  [[nodiscard]] std::uint32_t hopDistance(std::uint32_t srcRouter,
                                          std::uint32_t dstRouter) const;

 private:
  NocConfig config_;
  std::vector<NocLink> links_;
  // linkIndex_[from][direction] would be denser; a flat search keeps it simple.
};

/// Tracks SDM wire usage per link and admits/releases connections.
/// A connection reserving `wires` wires claims them on every link of its
/// route; words are transmitted bit-serially over the reserved wires, so
/// one 32-bit word takes ceil(32 / wires) cycles on the narrowest hop.
class WireAllocator {
 public:
  explicit WireAllocator(const NocTopology& topology);

  /// Reserve `wires` wires along `route`; returns false (and changes
  /// nothing) when any link lacks capacity.
  [[nodiscard]] bool reserve(const std::vector<LinkId>& route, std::uint32_t wires);

  /// Release a previous reservation.
  void release(const std::vector<LinkId>& route, std::uint32_t wires);

  [[nodiscard]] std::uint32_t freeWires(LinkId link) const;
  [[nodiscard]] std::uint32_t usedWires(LinkId link) const;

  /// Cycles needed to move one 32-bit word over `wires` reserved wires.
  [[nodiscard]] static std::uint32_t cyclesPerWord(std::uint32_t wires);

 private:
  const NocTopology* topology_;
  std::vector<std::uint32_t> used_;  // per link
};

}  // namespace mamps::platform
