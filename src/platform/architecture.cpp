#include "platform/architecture.hpp"

namespace mamps::platform {

std::string_view tileKindName(TileKind kind) {
  switch (kind) {
    case TileKind::Master: return "master";
    case TileKind::Slave: return "slave";
    case TileKind::CommAssist: return "commAssist";
    case TileKind::HardwareIp: return "hardwareIp";
  }
  return "?";
}

TileKind tileKindFromName(std::string_view name) {
  if (name == "master") return TileKind::Master;
  if (name == "slave") return TileKind::Slave;
  if (name == "commAssist") return TileKind::CommAssist;
  if (name == "hardwareIp") return TileKind::HardwareIp;
  throw ParseError("unknown tile kind: '" + std::string(name) + "'");
}

std::string_view interconnectKindName(InterconnectKind kind) {
  switch (kind) {
    case InterconnectKind::Fsl: return "fsl";
    case InterconnectKind::NocMesh: return "nocMesh";
  }
  return "?";
}

InterconnectKind interconnectKindFromName(std::string_view name) {
  if (name == "fsl") return InterconnectKind::Fsl;
  if (name == "nocMesh") return InterconnectKind::NocMesh;
  throw ParseError("unknown interconnect kind: '" + std::string(name) + "'");
}

TileId Architecture::addTile(Tile tile) {
  if (tile.name.empty()) {
    throw ModelError("tile name must be non-empty");
  }
  if (findTile(tile.name)) {
    throw ModelError("duplicate tile name: " + tile.name);
  }
  if (tile.memory.totalBytes() > kMaxTileMemoryBytes) {
    throw ModelError("tile " + tile.name + " exceeds the " +
                     std::to_string(kMaxTileMemoryBytes / 1024) + " kB memory limit");
  }
  tiles_.push_back(std::move(tile));
  return static_cast<TileId>(tiles_.size() - 1);
}

const Tile& Architecture::tile(TileId id) const {
  if (id >= tiles_.size()) {
    throw ModelError("tile id out of range: " + std::to_string(id));
  }
  return tiles_[id];
}

std::optional<TileId> Architecture::findTile(std::string_view name) const {
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    if (tiles_[i].name == name) {
      return static_cast<TileId>(i);
    }
  }
  return std::nullopt;
}

void Architecture::validate() const {
  std::size_t masters = 0;
  for (const Tile& t : tiles_) {
    if (t.kind == TileKind::Master) {
      ++masters;
    }
    if (t.memory.totalBytes() > kMaxTileMemoryBytes) {
      throw ModelError("tile " + t.name + " exceeds the memory limit");
    }
    if (t.kind != TileKind::HardwareIp && t.processorType.empty()) {
      throw ModelError("tile " + t.name + " has no processor type");
    }
    if (t.tdm.slotsPerWheel == 0) {
      throw ModelError("tile " + t.name + " has a zero-slot TDM wheel");
    }
    if (t.kind == TileKind::HardwareIp && t.tdm.shared()) {
      throw ModelError("tile " + t.name +
                       " is a hardware IP tile and cannot run a TDM scheduler");
    }
  }
  if (masters > 1) {
    throw ModelError("at most one master tile is allowed (peripherals are not shared)");
  }
  if (interconnect_ == InterconnectKind::NocMesh) {
    if (noc_.rows == 0 || noc_.cols == 0) {
      throw ModelError("NoC mesh dimensions must be positive");
    }
    if (static_cast<std::size_t>(noc_.rows) * noc_.cols < tiles_.size()) {
      throw ModelError("NoC mesh is too small for the tile count");
    }
    if (noc_.wiresPerLink == 0) {
      throw ModelError("NoC must have at least one wire per link");
    }
  }
  if (interconnect_ == InterconnectKind::Fsl && fsl_.fifoDepthWords == 0) {
    throw ModelError("FSL FIFO depth must be positive");
  }
}

}  // namespace mamps::platform
