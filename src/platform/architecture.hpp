// The MAMPS architecture model (Section 4 of the paper).
//
// A platform consists of *tiles* and an *interconnect*. Tiles are the
// processing elements; the interconnect only connects tiles. Every tile
// and interconnect variant uses the same standardized network interface
// (NI): 32-bit words over an FSL-compatible link, which keeps the
// template composable (Section 4.1).
//
// Tile variants (Figure 3):
//   - Master:     Microblaze PE + local memory + peripherals + NI
//   - Slave:      Microblaze PE + local memory + NI (no peripherals)
//   - CommAssist: Microblaze PE + CA handling (de)serialization + NI
//   - HardwareIp: hardware actor connected directly to the NI
//
// Interconnect variants (Section 5.3.1):
//   - Fsl:     Xilinx Fast Simplex Link point-to-point connections
//   - NocMesh: Spatial-Division-Multiplex NoC, 2-D mesh of routers
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace mamps::platform {

using TileId = std::uint32_t;

inline constexpr std::uint32_t kMaxTileMemoryBytes = 256 * 1024;  ///< 256 kB (Sec. 5.3.2)
inline constexpr std::uint32_t kWordBytes = 4;                    ///< 32-bit NI words

enum class TileKind { Master, Slave, CommAssist, HardwareIp };

[[nodiscard]] std::string_view tileKindName(TileKind kind);
[[nodiscard]] TileKind tileKindFromName(std::string_view name);

/// Modified-Harvard memory configuration: separate instruction and data
/// capacities (Section 3: memory requirements are specified separately
/// to support Harvard-architecture PEs).
struct MemorySpec {
  std::uint32_t instrBytes = 64 * 1024;
  std::uint32_t dataBytes = 64 * 1024;

  [[nodiscard]] std::uint32_t totalBytes() const { return instrBytes + dataBytes; }
};

/// TDM slot wheel of a software tile: the processor cycles round-robin
/// through `slotsPerWheel` equal slices, and an application that
/// reserves k slots owns the fraction k/slotsPerWheel of the processor.
/// The composition argument mirrors the NoC's SDM wires: slots are
/// disjoint in time the way wires are disjoint in space, so co-resident
/// applications cannot interfere with each other's reserved slices.
/// Conservative accounting (mapping::mapOntoBudget) inflates each
/// actor's WCET to ceil(wcet * slotsPerWheel / k) + wheelOverheadCycles,
/// a valid response-time bound regardless of what the co-residents do.
/// The default (one slot, no overhead) is an exclusive processor and
/// reproduces the pre-TDM platform exactly.
struct TdmConfig {
  /// Slices per wheel revolution; 1 = exclusive (no sharing).
  std::uint32_t slotsPerWheel = 1;
  /// Worst-case extra cycles a firing waits per wheel revolution
  /// (slot-switch context save/restore); charged once per firing.
  std::uint32_t wheelOverheadCycles = 0;

  /// Can this wheel host more than one client?
  /// @return true when the wheel has more than one slot
  [[nodiscard]] bool shared() const { return slotsPerWheel > 1; }

  /// Field-for-field equality (XML round-trip and pristine checks).
  /// @param other the config to compare against
  /// @return true when every field matches
  [[nodiscard]] bool operator==(const TdmConfig& other) const = default;
};

struct Tile {
  std::string name;
  TileKind kind = TileKind::Slave;
  std::string processorType = "microblaze";  ///< matches ActorImplementation::processorType
  MemorySpec memory{};
  TdmConfig tdm{};  ///< TDM slot wheel (default: exclusive processor)

  [[nodiscard]] bool hasPeripherals() const { return kind == TileKind::Master; }
  [[nodiscard]] bool hasCommAssist() const { return kind == TileKind::CommAssist; }
};

enum class InterconnectKind { Fsl, NocMesh };

[[nodiscard]] std::string_view interconnectKindName(InterconnectKind kind);
[[nodiscard]] InterconnectKind interconnectKindFromName(std::string_view name);

/// Point-to-point FSL interconnect parameters ([15]).
struct FslConfig {
  /// MicroBlaze exposes at most 16 FSL master/slave port pairs per PE,
  /// which bounds how many point-to-point links a tile can terminate —
  /// and hence how many links a platform can instantiate in total.
  static constexpr std::uint32_t kFslPortsPerTile = 16;

  std::uint32_t fifoDepthWords = 16;  ///< per-link FIFO capacity
  std::uint32_t latencyCycles = 1;    ///< word latency through the link
  /// Maximum simultaneously live FSL links on the platform; 0 derives
  /// the cap as kFslPortsPerTile x tileCount (every link consumes one
  /// master port on its source and one slave port on its destination
  /// tile). Enforced by platform::ResourceBudget::allocateFslLink.
  std::uint32_t maxLinks = 0;
};

/// SDM mesh NoC parameters ([17] + the flow-control extension).
struct NocConfig {
  std::uint32_t rows = 1;
  std::uint32_t cols = 1;
  std::uint32_t wiresPerLink = 32;          ///< SDM wires on every mesh link
  std::uint32_t hopLatencyCycles = 3;       ///< router traversal latency
  std::uint32_t connectionBufferWords = 4;  ///< buffering per connection (alpha_n)
  bool flowControl = true;                  ///< credit-based flow control (MAMPS addition)
};

/// A complete platform description: the second input of the design flow.
class Architecture {
 public:
  Architecture() = default;
  explicit Architecture(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  /// Add a tile; names must be unique, memory within the template limit.
  TileId addTile(Tile tile);

  [[nodiscard]] std::size_t tileCount() const { return tiles_.size(); }
  [[nodiscard]] const Tile& tile(TileId id) const;
  [[nodiscard]] const std::vector<Tile>& tiles() const { return tiles_; }
  [[nodiscard]] std::optional<TileId> findTile(std::string_view name) const;

  void setInterconnect(InterconnectKind kind) { interconnect_ = kind; }
  [[nodiscard]] InterconnectKind interconnect() const { return interconnect_; }

  [[nodiscard]] const FslConfig& fsl() const { return fsl_; }
  [[nodiscard]] FslConfig& fsl() { return fsl_; }
  [[nodiscard]] const NocConfig& noc() const { return noc_; }
  [[nodiscard]] NocConfig& noc() { return noc_; }

  /// Structural checks: at most one master tile (peripherals are not
  /// shared across tiles, Section 4), NoC mesh large enough for all
  /// tiles, memory limits respected.
  void validate() const;

 private:
  std::string name_ = "mamps";
  std::vector<Tile> tiles_;
  InterconnectKind interconnect_ = InterconnectKind::Fsl;
  FslConfig fsl_;
  NocConfig noc_;
};

}  // namespace mamps::platform
