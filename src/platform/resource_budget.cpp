#include "platform/resource_budget.hpp"

#include <algorithm>

namespace mamps::platform {

ResourceBudget::ResourceBudget(const Architecture& arch) : arch_(&arch) {
  tiles_.assign(arch.tileCount(), {});
  if (arch.interconnect() == InterconnectKind::NocMesh) {
    topology_.emplace(arch.noc());
    usedWires_.assign(topology_->linkCount(), 0);
  }
}

void ResourceBudget::commitBaseline(std::uint32_t instrBytes, std::uint32_t dataBytes) {
  // Validate every software tile before committing to any: a rejected
  // baseline must leave the budget untouched (all-or-nothing, matching
  // commitTile's contract). The sums are widened to 64 bits so a
  // baseline near UINT32_MAX cannot wrap past the capacity check.
  for (TileId t = 0; t < tiles_.size(); ++t) {
    if (arch_->tile(t).kind == TileKind::HardwareIp) {
      continue;
    }
    const MemorySpec& capacity = arch_->tile(t).memory;
    if (std::uint64_t{tiles_[t].instrBytes} + instrBytes > capacity.instrBytes ||
        std::uint64_t{tiles_[t].dataBytes} + dataBytes > capacity.dataBytes) {
      throw Error("ResourceBudget::commitBaseline: baseline exceeds the residual memory of tile " +
                  arch_->tile(t).name);
    }
  }
  for (TileId t = 0; t < tiles_.size(); ++t) {
    if (arch_->tile(t).kind == TileKind::HardwareIp) {
      continue;  // hardware IP tiles run no software
    }
    tiles_[t].instrBytes += instrBytes;
    tiles_[t].dataBytes += dataBytes;
  }
}

bool ResourceBudget::tileAvailable(TileId tile, std::uint32_t client) const {
  return tileSlots(tile, client) > 0 || freeTileSlots(tile) > 0;
}

std::uint32_t ResourceBudget::tileSlotCapacity(TileId tile) const {
  (void)tiles_.at(tile);
  const std::uint32_t slots = arch_->tile(tile).tdm.slotsPerWheel;
  return slots == 0 ? 1 : slots;
}

std::uint32_t ResourceBudget::freeTileSlots(TileId tile) const {
  const std::uint32_t capacity = tileSlotCapacity(tile);
  const std::uint32_t used = tiles_.at(tile).slotsUsed();
  return used >= capacity ? 0 : capacity - used;
}

std::uint32_t ResourceBudget::tileSlots(TileId tile, std::uint32_t client) const {
  const auto& owners = tiles_.at(tile).slotOwners;
  const auto it = owners.find(client);
  return it == owners.end() ? 0 : it->second;
}

void ResourceBudget::reserveTileSlots(TileId tile, std::uint32_t client, std::uint32_t slots) {
  if (slots == 0) {
    throw ModelError("ResourceBudget::reserveTileSlots: cannot reserve zero slots");
  }
  if (client == TileBudget::kNoClient) {
    throw Error("ResourceBudget::reserveTileSlots: invalid client id");
  }
  if (slots > freeTileSlots(tile)) {
    throw Error("ResourceBudget::reserveTileSlots: tile " + arch_->tile(tile).name + " has " +
                std::to_string(freeTileSlots(tile)) + " free TDM slots, " + std::to_string(slots) +
                " requested");
  }
  tiles_[tile].slotOwners[client] += slots;
  ledgers_[client].tiles[tile].slots += slots;
}

std::uint32_t ResourceBudget::freeInstrBytes(TileId tile) const {
  const std::uint32_t capacity = arch_->tile(tile).memory.instrBytes;
  const std::uint32_t used = tiles_.at(tile).instrBytes;
  return used >= capacity ? 0 : capacity - used;
}

std::uint32_t ResourceBudget::freeDataBytes(TileId tile) const {
  const std::uint32_t capacity = arch_->tile(tile).memory.dataBytes;
  const std::uint32_t used = tiles_.at(tile).dataBytes;
  return used >= capacity ? 0 : capacity - used;
}

void ResourceBudget::commitTile(TileId tile, std::uint32_t client, std::uint64_t loadCycles,
                                std::uint32_t instrBytes, std::uint32_t dataBytes) {
  if (client == TileBudget::kNoClient) {
    throw Error("ResourceBudget::commitTile: invalid client id");
  }
  // Slot-oblivious callers (the pre-TDM exclusive protocol) claim the
  // whole wheel on first touch; a wheel partially held by others must
  // be reserved explicitly via reserveTileSlots first. The claim is
  // deferred past the memory check so a rejected commit changes
  // nothing (the all-or-nothing contract).
  const bool claimWholeWheel = tileSlots(tile, client) == 0;
  if (claimWholeWheel && !tiles_.at(tile).slotOwners.empty()) {
    throw Error("ResourceBudget::commitTile: tile " + arch_->tile(tile).name +
                " is claimed by another client and " + std::to_string(client) +
                " holds no TDM slots on it");
  }
  if (instrBytes > freeInstrBytes(tile) || dataBytes > freeDataBytes(tile)) {
    throw Error("ResourceBudget::commitTile: reservation exceeds the residual memory of tile " +
                arch_->tile(tile).name);
  }
  if (claimWholeWheel) {
    reserveTileSlots(tile, client, tileSlotCapacity(tile));
  }
  TileBudget& budget = tiles_[tile];
  budget.loadCycles += loadCycles;
  budget.instrBytes += instrBytes;
  budget.dataBytes += dataBytes;
  ClientLedger::TileShare& share = ledgers_[client].tiles[tile];
  share.loadCycles += loadCycles;
  share.instrBytes += instrBytes;
  share.dataBytes += dataBytes;
}

const NocTopology& ResourceBudget::nocTopology() const {
  if (!topology_) {
    throw Error("ResourceBudget::nocTopology: architecture has no NoC");
  }
  return *topology_;
}

// Same check-then-commit contract as platform::WireAllocator::reserve
// (noc_topology.hpp) — the budget keeps its own per-link state because
// it must be copyable for trial mappings, but the semantics (including
// rejecting a zero-wire reservation) must not drift apart.
bool ResourceBudget::reserveNocWires(const std::vector<LinkId>& route, std::uint32_t wires,
                                     std::uint32_t client) {
  if (wires == 0) {
    throw ModelError("ResourceBudget::reserveNocWires: cannot reserve zero wires");
  }
  if (client == TileBudget::kNoClient) {
    throw Error("ResourceBudget::reserveNocWires: invalid client id");
  }
  const std::uint32_t capacity = arch_->noc().wiresPerLink;
  for (const LinkId link : route) {
    if (usedWires_.at(link) + wires > capacity) {
      return false;
    }
  }
  ClientLedger& ledger = ledgers_[client];
  for (const LinkId link : route) {
    usedWires_[link] += wires;
    ledger.wires[link] += wires;
  }
  return true;
}

std::uint32_t ResourceBudget::usedWires(LinkId link) const { return usedWires_.at(link); }

std::uint32_t ResourceBudget::fslLinkCapacity() const {
  const std::uint32_t configured = arch_->fsl().maxLinks;
  if (configured != 0) {
    return configured;
  }
  return FslConfig::kFslPortsPerTile * static_cast<std::uint32_t>(arch_->tileCount());
}

std::uint32_t ResourceBudget::allocateFslLink(std::uint32_t client) {
  if (client == TileBudget::kNoClient) {
    throw Error("ResourceBudget::allocateFslLink: invalid client id");
  }
  if (fslLinksUsed() >= fslLinkCapacity()) {
    throw Error("ResourceBudget::allocateFslLink: FSL link capacity (" +
                std::to_string(fslLinkCapacity()) + ") exhausted");
  }
  std::uint32_t index;
  if (!freeFslLinks_.empty()) {
    index = freeFslLinks_.front();  // lowest released index first
    freeFslLinks_.erase(freeFslLinks_.begin());
  } else {
    index = nextFslIndex_++;
  }
  ledgers_[client].fslLinks.push_back(index);
  return index;
}

const ClientLedger* ResourceBudget::ledger(std::uint32_t client) const {
  const auto it = ledgers_.find(client);
  return it == ledgers_.end() ? nullptr : &it->second;
}

void ResourceBudget::release(std::uint32_t client) {
  const auto it = ledgers_.find(client);
  if (it == ledgers_.end()) {
    throw Error("ResourceBudget::release: client " + std::to_string(client) +
                " holds no reservations");
  }
  const ClientLedger& ledger = it->second;
  for (const auto& [tile, share] : ledger.tiles) {
    TileBudget& budget = tiles_[tile];
    budget.loadCycles -= share.loadCycles;
    budget.instrBytes -= share.instrBytes;
    budget.dataBytes -= share.dataBytes;
    const auto owned = budget.slotOwners.find(client);
    if (owned != budget.slotOwners.end()) {
      owned->second -= std::min(owned->second, share.slots);
      if (owned->second == 0) {
        budget.slotOwners.erase(owned);  // back to the (unclaimed) baseline
      }
    }
  }
  for (const auto& [link, wires] : ledger.wires) {
    usedWires_[link] -= wires;
  }
  for (const std::uint32_t index : ledger.fslLinks) {
    freeFslLinks_.insert(
        std::lower_bound(freeFslLinks_.begin(), freeFslLinks_.end(), index), index);
  }
  // Shrink the high-water mark over the released tail so that a fully
  // torn-down budget is bit-identical to a freshly constructed one
  // (empty free-list, nextFslIndex_ == 0).
  while (!freeFslLinks_.empty() && freeFslLinks_.back() + 1 == nextFslIndex_) {
    freeFslLinks_.pop_back();
    --nextFslIndex_;
  }
  ledgers_.erase(it);
}

bool ResourceBudget::operator==(const ResourceBudget& other) const {
  // topology_ is derived deterministically from arch_, so comparing the
  // architecture covers it.
  return arch_ == other.arch_ && tiles_ == other.tiles_ && usedWires_ == other.usedWires_ &&
         nextFslIndex_ == other.nextFslIndex_ && freeFslLinks_ == other.freeFslLinks_ &&
         ledgers_ == other.ledgers_;
}

}  // namespace mamps::platform
