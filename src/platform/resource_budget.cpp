#include "platform/resource_budget.hpp"

#include <algorithm>

namespace mamps::platform {

ResourceBudget::ResourceBudget(const Architecture& arch) : arch_(&arch) {
  tiles_.assign(arch.tileCount(), {});
  if (arch.interconnect() == InterconnectKind::NocMesh) {
    topology_.emplace(arch.noc());
    usedWires_.assign(topology_->linkCount(), 0);
  }
}

// lint:allow(budget-provenance) -- the baseline is deliberately unclaimed: it belongs to the platform (runtime layer), not to any client, so no ledger entry exists to record it
void ResourceBudget::commitBaseline(std::uint32_t instrBytes, std::uint32_t dataBytes) {
  // Validate every software tile before committing to any: a rejected
  // baseline must leave the budget untouched (all-or-nothing, matching
  // commitTile's contract). The sums are widened to 64 bits so a
  // baseline near UINT32_MAX cannot wrap past the capacity check.
  for (TileId t = 0; t < tiles_.size(); ++t) {
    if (arch_->tile(t).kind == TileKind::HardwareIp) {
      continue;
    }
    const MemorySpec& capacity = arch_->tile(t).memory;
    if (std::uint64_t{tiles_[t].instrBytes} + instrBytes > capacity.instrBytes ||
        std::uint64_t{tiles_[t].dataBytes} + dataBytes > capacity.dataBytes) {
      throw Error("ResourceBudget::commitBaseline: baseline exceeds the residual memory of tile " +
                  arch_->tile(t).name);
    }
  }
  for (TileId t = 0; t < tiles_.size(); ++t) {
    if (arch_->tile(t).kind == TileKind::HardwareIp) {
      continue;  // hardware IP tiles run no software
    }
    tiles_[t].instrBytes += instrBytes;
    tiles_[t].dataBytes += dataBytes;
  }
}

bool ResourceBudget::tileAvailable(TileId tile, std::uint32_t client) const {
  if (faults_.tileFailed(tile)) {
    return false;
  }
  return tileSlots(tile, client) > 0 || freeTileSlots(tile) > 0;
}

std::uint32_t ResourceBudget::tileSlotCapacity(TileId tile) const {
  (void)tiles_.at(tile);
  const auto degraded = faults_.degradedTdm.find(tile);
  const std::uint32_t slots = degraded != faults_.degradedTdm.end()
                                  ? degraded->second.slotsPerWheel
                                  : arch_->tile(tile).tdm.slotsPerWheel;
  return slots == 0 ? 1 : slots;
}

std::uint32_t ResourceBudget::tileWheelOverheadCycles(TileId tile) const {
  (void)tiles_.at(tile);
  const auto degraded = faults_.degradedTdm.find(tile);
  return degraded != faults_.degradedTdm.end() ? degraded->second.wheelOverheadCycles
                                               : arch_->tile(tile).tdm.wheelOverheadCycles;
}

std::uint32_t ResourceBudget::freeTileSlots(TileId tile) const {
  if (faults_.tileFailed(tile)) {
    return 0;
  }
  const std::uint32_t capacity = tileSlotCapacity(tile);
  const std::uint32_t used = tiles_.at(tile).slotsUsed();
  return used >= capacity ? 0 : capacity - used;
}

std::uint32_t ResourceBudget::tileSlots(TileId tile, std::uint32_t client) const {
  const auto& owners = tiles_.at(tile).slotOwners;
  const auto it = owners.find(client);
  return it == owners.end() ? 0 : it->second;
}

void ResourceBudget::reserveTileSlots(TileId tile, std::uint32_t client, std::uint32_t slots) {
  if (slots == 0) {
    throw ModelError("ResourceBudget::reserveTileSlots: cannot reserve zero slots");
  }
  if (client == TileBudget::kNoClient) {
    throw Error("ResourceBudget::reserveTileSlots: invalid client id");
  }
  if (faults_.tileFailed(tile)) {
    throw Error("ResourceBudget::reserveTileSlots: tile " + arch_->tile(tile).name +
                " is failed");
  }
  if (slots > freeTileSlots(tile)) {
    throw Error("ResourceBudget::reserveTileSlots: tile " + arch_->tile(tile).name + " has " +
                std::to_string(freeTileSlots(tile)) + " free TDM slots, " + std::to_string(slots) +
                " requested");
  }
  tiles_[tile].slotOwners[client] += slots;
  ledgers_[client].tiles[tile].slots += slots;
}

std::uint32_t ResourceBudget::freeInstrBytes(TileId tile) const {
  if (faults_.tileFailed(tile)) {
    return 0;
  }
  const std::uint32_t capacity = arch_->tile(tile).memory.instrBytes;
  const std::uint32_t used = tiles_.at(tile).instrBytes;
  return used >= capacity ? 0 : capacity - used;
}

std::uint32_t ResourceBudget::freeDataBytes(TileId tile) const {
  if (faults_.tileFailed(tile)) {
    return 0;
  }
  const std::uint32_t capacity = arch_->tile(tile).memory.dataBytes;
  const std::uint32_t used = tiles_.at(tile).dataBytes;
  return used >= capacity ? 0 : capacity - used;
}

void ResourceBudget::commitTile(TileId tile, std::uint32_t client, std::uint64_t loadCycles,
                                std::uint32_t instrBytes, std::uint32_t dataBytes) {
  if (client == TileBudget::kNoClient) {
    throw Error("ResourceBudget::commitTile: invalid client id");
  }
  if (faults_.tileFailed(tile)) {
    throw Error("ResourceBudget::commitTile: tile " + arch_->tile(tile).name + " is failed");
  }
  // Slot-oblivious callers (the pre-TDM exclusive protocol) claim the
  // whole wheel on first touch; a wheel partially held by others must
  // be reserved explicitly via reserveTileSlots first. The claim is
  // deferred past the memory check so a rejected commit changes
  // nothing (the all-or-nothing contract).
  const bool claimWholeWheel = tileSlots(tile, client) == 0;
  if (claimWholeWheel && !tiles_.at(tile).slotOwners.empty()) {
    throw Error("ResourceBudget::commitTile: tile " + arch_->tile(tile).name +
                " is claimed by another client and " + std::to_string(client) +
                " holds no TDM slots on it");
  }
  if (instrBytes > freeInstrBytes(tile) || dataBytes > freeDataBytes(tile)) {
    throw Error("ResourceBudget::commitTile: reservation exceeds the residual memory of tile " +
                arch_->tile(tile).name);
  }
  if (claimWholeWheel) {
    reserveTileSlots(tile, client, tileSlotCapacity(tile));
  }
  TileBudget& budget = tiles_[tile];
  budget.loadCycles += loadCycles;
  budget.instrBytes += instrBytes;
  budget.dataBytes += dataBytes;
  ClientLedger::TileShare& share = ledgers_[client].tiles[tile];
  share.loadCycles += loadCycles;
  share.instrBytes += instrBytes;
  share.dataBytes += dataBytes;
}

const NocTopology& ResourceBudget::nocTopology() const {
  if (!topology_) {
    throw Error("ResourceBudget::nocTopology: architecture has no NoC");
  }
  return *topology_;
}

// Same check-then-commit contract as platform::WireAllocator::reserve
// (noc_topology.hpp) — the budget keeps its own per-link state because
// it must be copyable for trial mappings, but the semantics (including
// rejecting a zero-wire reservation) must not drift apart.
bool ResourceBudget::reserveNocWires(const std::vector<LinkId>& route, std::uint32_t wires,
                                     std::uint32_t client) {
  if (wires == 0) {
    throw ModelError("ResourceBudget::reserveNocWires: cannot reserve zero wires");
  }
  if (client == TileBudget::kNoClient) {
    throw Error("ResourceBudget::reserveNocWires: invalid client id");
  }
  const std::uint32_t capacity = arch_->noc().wiresPerLink;
  for (const LinkId link : route) {
    if (faults_.nocLinkFailed(link) || usedWires_.at(link) + wires > capacity) {
      return false;
    }
  }
  ClientLedger& ledger = ledgers_[client];
  for (const LinkId link : route) {
    usedWires_[link] += wires;
    ledger.wires[link] += wires;
  }
  return true;
}

std::uint32_t ResourceBudget::usedWires(LinkId link) const { return usedWires_.at(link); }

std::uint32_t ResourceBudget::fslLinkCapacity() const { return fslLinkCapacityOf(*arch_); }

std::uint32_t ResourceBudget::fslLinksAvailable() const {
  // Failed indices that no client holds are dead capacity: they sit on
  // (or will be skipped onto) the free-list but must not be handed out,
  // so the effective capacity shrinks by each of them. Failed LIVE
  // links already count through fslLinksUsed().
  std::uint32_t failedFree = 0;
  for (const std::uint32_t index : faults_.failedFslLinks) {
    const bool live = index < nextFslIndex_ &&
                      !std::binary_search(freeFslLinks_.begin(), freeFslLinks_.end(), index);
    failedFree += live ? 0 : 1;
  }
  const std::uint32_t unavailable = fslLinksUsed() + failedFree;
  const std::uint32_t capacity = fslLinkCapacity();
  return unavailable >= capacity ? 0 : capacity - unavailable;
}

std::uint32_t ResourceBudget::allocateFslLink(std::uint32_t client) {
  if (client == TileBudget::kNoClient) {
    throw Error("ResourceBudget::allocateFslLink: invalid client id");
  }
  if (fslLinksAvailable() == 0) {
    throw Error("ResourceBudget::allocateFslLink: FSL link capacity (" +
                std::to_string(fslLinkCapacity()) + ") exhausted");
  }
  std::uint32_t index;
  const auto healthy = std::find_if(
      freeFslLinks_.begin(), freeFslLinks_.end(),
      [this](std::uint32_t candidate) { return !faults_.fslLinkFailed(candidate); });
  if (healthy != freeFslLinks_.end()) {
    index = *healthy;  // lowest released healthy index first
    freeFslLinks_.erase(healthy);
  } else {
    // Mint past failed indices, parking them on the free-list (they
    // stay unallocatable while failed and return to circulation on
    // repair); the capacity check above guarantees a healthy index
    // below the cap remains.
    while (faults_.fslLinkFailed(nextFslIndex_)) {
      freeFslLinks_.push_back(nextFslIndex_++);  // highest so far: stays sorted
    }
    index = nextFslIndex_++;
  }
  ledgers_[client].fslLinks.push_back(index);
  return index;
}

namespace {

/// Does the degraded/failed accounting of `tile` strand this ledger?
bool ledgerTouchesTile(const ClientLedger& ledger, TileId tile) {
  return ledger.tiles.find(tile) != ledger.tiles.end();
}

}  // namespace

std::vector<std::uint32_t> ResourceBudget::failTile(TileId tile) {
  (void)tiles_.at(tile);
  if (faults_.tileFailed(tile)) {
    throw Error("ResourceBudget::failTile: tile " + arch_->tile(tile).name +
                " is already failed");
  }
  faults_.failedTiles.insert(tile);
  std::vector<std::uint32_t> stranded;
  for (const auto& [client, ledger] : ledgers_) {
    if (ledgerTouchesTile(ledger, tile)) {
      stranded.push_back(client);
    }
  }
  return stranded;
}

void ResourceBudget::repairTile(TileId tile) {
  (void)tiles_.at(tile);
  if (faults_.failedTiles.erase(tile) == 0) {
    throw Error("ResourceBudget::repairTile: tile " + arch_->tile(tile).name +
                " is not failed");
  }
}

std::vector<std::uint32_t> ResourceBudget::failNocLink(LinkId link) {
  if (link >= nocTopology().linkCount()) {
    throw Error("ResourceBudget::failNocLink: link " + std::to_string(link) +
                " is out of range");
  }
  if (faults_.nocLinkFailed(link)) {
    throw Error("ResourceBudget::failNocLink: link " + std::to_string(link) +
                " is already failed");
  }
  faults_.failedNocLinks.insert(link);
  std::vector<std::uint32_t> stranded;
  for (const auto& [client, ledger] : ledgers_) {
    if (ledger.wires.find(link) != ledger.wires.end()) {
      stranded.push_back(client);
    }
  }
  return stranded;
}

void ResourceBudget::repairNocLink(LinkId link) {
  if (faults_.failedNocLinks.erase(link) == 0) {
    throw Error("ResourceBudget::repairNocLink: link " + std::to_string(link) +
                " is not failed");
  }
}

std::vector<std::uint32_t> ResourceBudget::failFslLink(std::uint32_t index) {
  if (arch_->interconnect() != InterconnectKind::Fsl) {
    throw Error("ResourceBudget::failFslLink: architecture has no FSL interconnect");
  }
  if (index >= fslLinkCapacity()) {
    throw Error("ResourceBudget::failFslLink: index " + std::to_string(index) +
                " is out of range (capacity " + std::to_string(fslLinkCapacity()) + ")");
  }
  if (faults_.fslLinkFailed(index)) {
    throw Error("ResourceBudget::failFslLink: link " + std::to_string(index) +
                " is already failed");
  }
  faults_.failedFslLinks.insert(index);
  std::vector<std::uint32_t> stranded;
  for (const auto& [client, ledger] : ledgers_) {
    if (std::find(ledger.fslLinks.begin(), ledger.fslLinks.end(), index) !=
        ledger.fslLinks.end()) {
      stranded.push_back(client);
    }
  }
  return stranded;
}

void ResourceBudget::repairFslLink(std::uint32_t index) {
  if (faults_.failedFslLinks.erase(index) == 0) {
    throw Error("ResourceBudget::repairFslLink: link " + std::to_string(index) +
                " is not failed");
  }
}

std::vector<std::uint32_t> ResourceBudget::degradeTileWheel(TileId tile,
                                                            const TdmConfig& wheel) {
  (void)tiles_.at(tile);
  if (faults_.degradedTdm.find(tile) != faults_.degradedTdm.end()) {
    throw Error("ResourceBudget::degradeTileWheel: tile " + arch_->tile(tile).name +
                " is already degraded");
  }
  if (wheel.slotsPerWheel == 0) {
    throw ModelError("ResourceBudget::degradeTileWheel: degraded wheel has zero slots");
  }
  const std::uint32_t built =
      std::max<std::uint32_t>(1, arch_->tile(tile).tdm.slotsPerWheel);
  if (wheel.slotsPerWheel > built) {
    throw ModelError("ResourceBudget::degradeTileWheel: degraded wheel has " +
                     std::to_string(wheel.slotsPerWheel) + " slots, more than the " +
                     std::to_string(built) + " tile " + arch_->tile(tile).name +
                     " was built with");
  }
  faults_.degradedTdm.emplace(tile, wheel);
  std::vector<std::uint32_t> stranded;
  if (tiles_[tile].slotsUsed() > wheel.slotsPerWheel) {
    // The committed slots no longer fit the wheel: every holder's
    // analyzed slice assignment is void, so all of them are stranded.
    for (const auto& [client, slots] : tiles_[tile].slotOwners) {
      stranded.push_back(client);
    }
  }
  return stranded;
}

void ResourceBudget::repairTileWheel(TileId tile) {
  (void)tiles_.at(tile);
  if (faults_.degradedTdm.erase(tile) == 0) {
    throw Error("ResourceBudget::repairTileWheel: tile " + arch_->tile(tile).name +
                " is not degraded");
  }
}

std::vector<std::uint32_t> ResourceBudget::strandedClients() const {
  std::vector<std::uint32_t> stranded;
  for (const auto& [client, ledger] : ledgers_) {
    bool hit = false;
    for (const TileId tile : faults_.failedTiles) {
      hit = hit || ledgerTouchesTile(ledger, tile);
    }
    for (const LinkId link : faults_.failedNocLinks) {
      hit = hit || ledger.wires.find(link) != ledger.wires.end();
    }
    for (const std::uint32_t index : faults_.failedFslLinks) {
      hit = hit || std::find(ledger.fslLinks.begin(), ledger.fslLinks.end(), index) !=
                       ledger.fslLinks.end();
    }
    for (const auto& [tile, wheel] : faults_.degradedTdm) {
      hit = hit || (tiles_[tile].slotsUsed() > wheel.slotsPerWheel &&
                    ledgerTouchesTile(ledger, tile));
    }
    if (hit) {
      stranded.push_back(client);
    }
  }
  return stranded;
}

std::vector<std::uint32_t> ResourceBudget::liveFslLinks() const {
  std::vector<std::uint32_t> live;
  for (const auto& [client, ledger] : ledgers_) {
    live.insert(live.end(), ledger.fslLinks.begin(), ledger.fslLinks.end());
  }
  std::sort(live.begin(), live.end());
  return live;
}

const ClientLedger* ResourceBudget::ledger(std::uint32_t client) const {
  const auto it = ledgers_.find(client);
  return it == ledgers_.end() ? nullptr : &it->second;
}

void ResourceBudget::release(std::uint32_t client) {
  const auto it = ledgers_.find(client);
  if (it == ledgers_.end()) {
    throw Error("ResourceBudget::release: client " + std::to_string(client) +
                " holds no reservations");
  }
  const ClientLedger& ledger = it->second;
  for (const auto& [tile, share] : ledger.tiles) {
    TileBudget& budget = tiles_[tile];
    budget.loadCycles -= share.loadCycles;
    budget.instrBytes -= share.instrBytes;
    budget.dataBytes -= share.dataBytes;
    const auto owned = budget.slotOwners.find(client);
    if (owned != budget.slotOwners.end()) {
      owned->second -= std::min(owned->second, share.slots);
      if (owned->second == 0) {
        budget.slotOwners.erase(owned);  // back to the (unclaimed) baseline
      }
    }
  }
  for (const auto& [link, wires] : ledger.wires) {
    usedWires_[link] -= wires;
  }
  for (const std::uint32_t index : ledger.fslLinks) {
    freeFslLinks_.insert(
        std::lower_bound(freeFslLinks_.begin(), freeFslLinks_.end(), index), index);
  }
  // Shrink the high-water mark over the released tail so that a fully
  // torn-down budget is bit-identical to a freshly constructed one
  // (empty free-list, nextFslIndex_ == 0).
  while (!freeFslLinks_.empty() && freeFslLinks_.back() + 1 == nextFslIndex_) {
    freeFslLinks_.pop_back();
    --nextFslIndex_;
  }
  ledgers_.erase(it);
}

bool ResourceBudget::operator==(const ResourceBudget& other) const {
  // topology_ is derived deterministically from arch_, so comparing the
  // architecture covers it.
  return arch_ == other.arch_ && tiles_ == other.tiles_ && usedWires_ == other.usedWires_ &&
         nextFslIndex_ == other.nextFslIndex_ && freeFslLinks_ == other.freeFslLinks_ &&
         ledgers_ == other.ledgers_ && faults_ == other.faults_;
}

}  // namespace mamps::platform
