#include "platform/resource_budget.hpp"

namespace mamps::platform {

ResourceBudget::ResourceBudget(const Architecture& arch) : arch_(&arch) {
  tiles_.assign(arch.tileCount(), {});
  if (arch.interconnect() == InterconnectKind::NocMesh) {
    topology_.emplace(arch.noc());
    usedWires_.assign(topology_->linkCount(), 0);
  }
}

void ResourceBudget::commitBaseline(std::uint32_t instrBytes, std::uint32_t dataBytes) {
  for (TileId t = 0; t < tiles_.size(); ++t) {
    if (arch_->tile(t).kind == TileKind::HardwareIp) {
      continue;  // hardware IP tiles run no software
    }
    tiles_[t].instrBytes += instrBytes;
    tiles_[t].dataBytes += dataBytes;
  }
}

bool ResourceBudget::tileAvailable(TileId tile, std::uint32_t client) const {
  const TileBudget& budget = tiles_.at(tile);
  return budget.owner == TileBudget::kNoClient || budget.owner == client;
}

std::uint32_t ResourceBudget::freeInstrBytes(TileId tile) const {
  const std::uint32_t capacity = arch_->tile(tile).memory.instrBytes;
  const std::uint32_t used = tiles_.at(tile).instrBytes;
  return used >= capacity ? 0 : capacity - used;
}

std::uint32_t ResourceBudget::freeDataBytes(TileId tile) const {
  const std::uint32_t capacity = arch_->tile(tile).memory.dataBytes;
  const std::uint32_t used = tiles_.at(tile).dataBytes;
  return used >= capacity ? 0 : capacity - used;
}

void ResourceBudget::commitTile(TileId tile, std::uint32_t client, std::uint64_t loadCycles,
                                std::uint32_t instrBytes, std::uint32_t dataBytes) {
  if (client == TileBudget::kNoClient) {
    throw Error("ResourceBudget::commitTile: invalid client id");
  }
  if (!tileAvailable(tile, client)) {
    throw Error("ResourceBudget::commitTile: tile " + arch_->tile(tile).name +
                " is claimed by another client");
  }
  if (instrBytes > freeInstrBytes(tile) || dataBytes > freeDataBytes(tile)) {
    throw Error("ResourceBudget::commitTile: reservation exceeds the residual memory of tile " +
                arch_->tile(tile).name);
  }
  TileBudget& budget = tiles_[tile];
  budget.loadCycles += loadCycles;
  budget.instrBytes += instrBytes;
  budget.dataBytes += dataBytes;
  budget.owner = client;
}

const NocTopology& ResourceBudget::nocTopology() const {
  if (!topology_) {
    throw Error("ResourceBudget::nocTopology: architecture has no NoC");
  }
  return *topology_;
}

// Same check-then-commit contract as platform::WireAllocator::reserve
// (noc_topology.hpp) — the budget keeps its own per-link state because
// it must be copyable for trial mappings, but the semantics (including
// rejecting a zero-wire reservation) must not drift apart.
bool ResourceBudget::reserveNocWires(const std::vector<LinkId>& route, std::uint32_t wires) {
  if (wires == 0) {
    throw ModelError("ResourceBudget::reserveNocWires: cannot reserve zero wires");
  }
  const std::uint32_t capacity = arch_->noc().wiresPerLink;
  for (const LinkId link : route) {
    if (usedWires_.at(link) + wires > capacity) {
      return false;
    }
  }
  for (const LinkId link : route) {
    usedWires_[link] += wires;
  }
  return true;
}

std::uint32_t ResourceBudget::usedWires(LinkId link) const { return usedWires_.at(link); }

std::uint32_t ResourceBudget::allocateFslLink() { return nextFslIndex_++; }

}  // namespace mamps::platform
