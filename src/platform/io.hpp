// XML (de)serialization of architecture models.
//
// FaultState (platform/fault.hpp) rides along as *annotations* on the
// same document: failed tiles carry failed="true" (and degraded wheels
// degradedTdmSlots / degradedTdmOverhead), and the interconnect element
// lists failed link indices in failedLinks="i,j,k". A healthy fault
// state writes no annotations at all, so legacy architecture files
// (and the fault-free overloads below) stay byte-stable on rewrite.
#pragma once

#include <string>

#include "platform/architecture.hpp"
#include "platform/fault.hpp"

namespace mamps::platform {

/// Serialize an architecture as an <architecture> document.
[[nodiscard]] std::string architectureToXml(const Architecture& arch);

/// Serialize an architecture with its current fault annotations.
[[nodiscard]] std::string architectureToXml(const Architecture& arch, const FaultState& faults);

/// Parse an architecture from a document string (fault annotations, if
/// present, are ignored — use architectureWithFaultsFromString to keep
/// them).
[[nodiscard]] Architecture architectureFromString(const std::string& text);

/// An architecture together with its parsed fault annotations.
struct ArchitectureWithFaults {
  Architecture arch;      ///< the platform
  FaultState faults;      ///< its failed/degraded resources (empty = healthy)
};

/// Parse an architecture and its fault annotations from a document
/// string; the faults are validated against the parsed architecture.
[[nodiscard]] ArchitectureWithFaults architectureWithFaultsFromString(const std::string& text);

}  // namespace mamps::platform
