// XML (de)serialization of architecture models.
#pragma once

#include <string>

#include "platform/architecture.hpp"

namespace mamps::platform {

/// Serialize an architecture as an <architecture> document.
[[nodiscard]] std::string architectureToXml(const Architecture& arch);

/// Parse an architecture from a document string.
[[nodiscard]] Architecture architectureFromString(const std::string& text);

}  // namespace mamps::platform
