#include "platform/noc_topology.hpp"

#include <cmath>

namespace mamps::platform {

std::pair<std::uint32_t, std::uint32_t> nearSquareMesh(std::uint32_t n) {
  if (n == 0) {
    return {1, 1};
  }
  auto rows = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n)));
  if (rows == 0) {
    rows = 1;
  }
  const std::uint32_t cols = (n + rows - 1) / rows;
  return {rows, cols};
}

NocTopology::NocTopology(const NocConfig& config) : config_(config) {
  if (config_.rows == 0 || config_.cols == 0) {
    throw ModelError("NocTopology: mesh dimensions must be positive");
  }
  // Enumerate directed links between 4-neighbour routers.
  for (std::uint32_t y = 0; y < config_.rows; ++y) {
    for (std::uint32_t x = 0; x < config_.cols; ++x) {
      const std::uint32_t me = routerAt({x, y});
      if (x + 1 < config_.cols) {
        const std::uint32_t right = routerAt({x + 1, y});
        links_.push_back({me, right});
        links_.push_back({right, me});
      }
      if (y + 1 < config_.rows) {
        const std::uint32_t down = routerAt({x, y + 1});
        links_.push_back({me, down});
        links_.push_back({down, me});
      }
    }
  }
}

MeshCoord NocTopology::coordOf(std::uint32_t router) const {
  if (router >= routerCount()) {
    throw ModelError("router id out of range");
  }
  return {router % config_.cols, router / config_.cols};
}

std::uint32_t NocTopology::routerAt(MeshCoord c) const {
  if (c.x >= config_.cols || c.y >= config_.rows) {
    throw ModelError("mesh coordinate out of range");
  }
  return c.y * config_.cols + c.x;
}

const NocLink& NocTopology::link(LinkId id) const {
  if (id >= links_.size()) {
    throw ModelError("link id out of range");
  }
  return links_[id];
}

LinkId NocTopology::linkBetween(std::uint32_t fromRouter, std::uint32_t toRouter) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].fromRouter == fromRouter && links_[i].toRouter == toRouter) {
      return static_cast<LinkId>(i);
    }
  }
  throw ModelError("no link between routers " + std::to_string(fromRouter) + " and " +
                   std::to_string(toRouter));
}

std::vector<LinkId> NocTopology::xyRoute(std::uint32_t srcRouter, std::uint32_t dstRouter) const {
  std::vector<LinkId> route;
  MeshCoord at = coordOf(srcRouter);
  const MeshCoord target = coordOf(dstRouter);
  // X first, then Y (dimension-ordered routing is deadlock-free).
  while (at.x != target.x) {
    const MeshCoord next{at.x < target.x ? at.x + 1 : at.x - 1, at.y};
    route.push_back(linkBetween(routerAt(at), routerAt(next)));
    at = next;
  }
  while (at.y != target.y) {
    const MeshCoord next{at.x, at.y < target.y ? at.y + 1 : at.y - 1};
    route.push_back(linkBetween(routerAt(at), routerAt(next)));
    at = next;
  }
  return route;
}

std::uint32_t NocTopology::hopDistance(std::uint32_t srcRouter, std::uint32_t dstRouter) const {
  const MeshCoord a = coordOf(srcRouter);
  const MeshCoord b = coordOf(dstRouter);
  const auto dx = (a.x > b.x) ? a.x - b.x : b.x - a.x;
  const auto dy = (a.y > b.y) ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

WireAllocator::WireAllocator(const NocTopology& topology)
    : topology_(&topology), used_(topology.linkCount(), 0) {}

bool WireAllocator::reserve(const std::vector<LinkId>& route, std::uint32_t wires) {
  if (wires == 0) {
    throw ModelError("WireAllocator: cannot reserve zero wires");
  }
  for (const LinkId l : route) {
    if (freeWires(l) < wires) {
      return false;
    }
  }
  for (const LinkId l : route) {
    used_[l] += wires;
  }
  return true;
}

void WireAllocator::release(const std::vector<LinkId>& route, std::uint32_t wires) {
  for (const LinkId l : route) {
    if (used_[l] < wires) {
      throw ModelError("WireAllocator: releasing more wires than reserved");
    }
    used_[l] -= wires;
  }
}

std::uint32_t WireAllocator::freeWires(LinkId link) const {
  if (link >= used_.size()) {
    throw ModelError("WireAllocator: link id out of range");
  }
  return topology_->config().wiresPerLink - used_[link];
}

std::uint32_t WireAllocator::usedWires(LinkId link) const {
  if (link >= used_.size()) {
    throw ModelError("WireAllocator: link id out of range");
  }
  return used_[link];
}

std::uint32_t WireAllocator::cyclesPerWord(std::uint32_t wires) {
  if (wires == 0) {
    throw ModelError("cyclesPerWord: zero wires");
  }
  return (32 + wires - 1) / wires;
}

}  // namespace mamps::platform
