// Template-based architecture generation (Sections 4 and 5.3).
//
// Given only a tile count and an interconnect choice, the template
// instantiates a complete architecture: one master tile (with access to
// the board peripherals), slave tiles for the rest, and — for the NoC —
// a near-square mesh sized to the tile count. Table 1 reports this step
// as fully automated ("Generating architecture model: 1 second").
#pragma once

#include <cstdint>

#include "platform/architecture.hpp"

namespace mamps::platform {

struct TemplateRequest {
  std::uint32_t tileCount = 2;
  InterconnectKind interconnect = InterconnectKind::Fsl;
  /// Default memory per tile; the platform generator later shrinks this
  /// to the actually required sizes.
  MemorySpec tileMemory{128 * 1024, 128 * 1024};
  /// Use CommAssist tiles instead of plain master/slave tiles.
  bool withCommAssist = false;
  /// NoC knobs (ignored for FSL).
  std::uint32_t nocWiresPerLink = 32;
  std::uint32_t nocHopLatencyCycles = 3;
  std::uint32_t nocConnectionBufferWords = 4;
  /// FSL knobs (ignored for NoC).
  std::uint32_t fslFifoDepthWords = 16;
};

/// Instantiate the architecture template. Tile 0 is always the master.
[[nodiscard]] Architecture generateFromTemplate(const TemplateRequest& request);

}  // namespace mamps::platform
