// Template-based architecture generation (Sections 4 and 5.3).
//
// Given only a tile count and an interconnect choice, the template
// instantiates a complete architecture: one master tile (with access to
// the board peripherals), slave tiles for the rest, and — for the NoC —
// a near-square mesh sized to the tile count. Table 1 reports this step
// as fully automated ("Generating architecture model: 1 second").
//
// Beyond the raw request, this header provides the *named presets* of
// the scenario suite (src/apps/suite): a larger mesh NoC for workloads
// with many parallel branches and a heterogeneous-tile variant that
// appends hardware IP tiles for actors with accelerator
// implementations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/architecture.hpp"

namespace mamps::platform {

/// The knobs of the architecture template: what to instantiate and how
/// to parameterize it. Pass to generateFromTemplate.
struct TemplateRequest {
  std::uint32_t tileCount = 2;  ///< processor tiles (master + slaves)
  /// Interconnect family: dedicated FSL links or the SDM mesh NoC.
  InterconnectKind interconnect = InterconnectKind::Fsl;
  /// Default memory per tile; the platform generator later shrinks this
  /// to the actually required sizes.
  MemorySpec tileMemory{128 * 1024, 128 * 1024};
  /// Use CommAssist tiles instead of plain master/slave tiles.
  bool withCommAssist = false;
  std::uint32_t nocWiresPerLink = 32;        ///< NoC knob (ignored for FSL)
  std::uint32_t nocHopLatencyCycles = 3;     ///< NoC knob (ignored for FSL)
  std::uint32_t nocConnectionBufferWords = 4;  ///< NoC knob (ignored for FSL)
  /// FSL FIFO depth in words (ignored for NoC).
  std::uint32_t fslFifoDepthWords = 16;
  /// Platform-wide cap on live FSL links (0 = derive from the
  /// per-tile port limit; see platform::FslConfig::maxLinks).
  std::uint32_t fslMaxLinks = 0;
  /// Hardware IP tiles appended after the processor tiles; each entry
  /// names the IP's processor type (matching
  /// sdf::ActorImplementation::processorType, e.g. "accel"). IP tiles
  /// attach to the interconnect through the same standardized NI as
  /// processor tiles (Section 4.1), and the NoC mesh is sized to the
  /// total tile count including them.
  std::vector<std::string> hardwareIpTiles{};
  /// Memory of each hardware IP tile (scratch buffers only).
  MemorySpec ipTileMemory{8 * 1024, 8 * 1024};
  /// TDM slot wheel installed on every processor tile (hardware IP
  /// tiles stay exclusive — they run no scheduler). The default 1-slot
  /// wheel reproduces the pre-TDM exclusive platform exactly.
  std::uint32_t tdmSlotsPerWheel = 1;
  /// Worst-case slot-switch overhead charged once per firing on shared
  /// wheels (platform::TdmConfig::wheelOverheadCycles).
  std::uint32_t tdmWheelOverheadCycles = 0;

  /// Total tiles the template will instantiate (processor + IP tiles);
  /// also the tile count the generated architecture's name and the NoC
  /// mesh are sized to.
  [[nodiscard]] std::uint32_t totalTiles() const {
    return tileCount + static_cast<std::uint32_t>(hardwareIpTiles.size());
  }
};

/// Instantiate the architecture template. Tile 0 is always the master;
/// hardware IP tiles (if any) get the highest tile ids.
/// @param request the template knobs
/// @return the generated (validated) architecture
[[nodiscard]] Architecture generateFromTemplate(const TemplateRequest& request);

/// Scenario-suite preset: a larger SDM mesh NoC (default 12 tiles, 3x4
/// mesh) with wider links and deeper connection buffers than the stock
/// template, for applications with many parallel branches or deep
/// multi-rate chains.
/// @param tileCount processor tiles in the mesh (master + slaves)
/// @return the request; pass to generateFromTemplate
[[nodiscard]] TemplateRequest largeMeshPreset(std::uint32_t tileCount = 12);

/// Scenario-suite preset: a heterogeneous platform with `tileCount`
/// Microblaze tiles on an FSL interconnect plus one hardware IP tile
/// per entry of `ipTypes`. Actors carrying an implementation for an IP
/// type can be bound to the matching tile by the flow (Section 3:
/// multiple implementations per actor enable heterogeneous mapping).
/// @param tileCount processor tiles (master + slaves)
/// @param ipTypes processor type of each appended hardware IP tile
/// @return the request; pass to generateFromTemplate
[[nodiscard]] TemplateRequest heterogeneousPreset(
    std::uint32_t tileCount = 3, std::vector<std::string> ipTypes = {"accel"});

/// Install a TDM slot wheel on every processor tile of `request`
/// (`request.tdmSlotsPerWheel` / `tdmWheelOverheadCycles`); a
/// convenience for turning any preset into its processor-shared
/// variant: `withTdm(largeMeshPreset(12), 4, 200)`.
/// @param request the request to modify
/// @param slotsPerWheel slots per wheel revolution (>= 1)
/// @param wheelOverheadCycles per-firing slot-switch overhead
/// @return the modified request
[[nodiscard]] TemplateRequest withTdm(TemplateRequest request, std::uint32_t slotsPerWheel,
                                      std::uint32_t wheelOverheadCycles = 0);

}  // namespace mamps::platform
