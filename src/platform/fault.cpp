#include "platform/fault.hpp"

#include <algorithm>
#include <string>

namespace mamps::platform {

std::uint32_t fslLinkCapacityOf(const Architecture& arch) {
  const std::uint32_t configured = arch.fsl().maxLinks;
  if (configured != 0) {
    return configured;
  }
  return FslConfig::kFslPortsPerTile * static_cast<std::uint32_t>(arch.tileCount());
}

void FaultState::validate(const Architecture& arch) const {
  for (const TileId tile : failedTiles) {
    if (tile >= arch.tileCount()) {
      throw ModelError("FaultState: failed tile " + std::to_string(tile) +
                       " is out of range (platform has " + std::to_string(arch.tileCount()) +
                       " tiles)");
    }
  }
  if (!failedNocLinks.empty()) {
    if (arch.interconnect() != InterconnectKind::NocMesh) {
      throw ModelError("FaultState: failed NoC links on a platform without a NoC");
    }
    const NocTopology topology(arch.noc());
    for (const LinkId link : failedNocLinks) {
      if (link >= topology.linkCount()) {
        throw ModelError("FaultState: failed NoC link " + std::to_string(link) +
                         " is out of range (mesh has " + std::to_string(topology.linkCount()) +
                         " links)");
      }
    }
  }
  if (!failedFslLinks.empty()) {
    if (arch.interconnect() != InterconnectKind::Fsl) {
      throw ModelError("FaultState: failed FSL links on a platform without FSL interconnect");
    }
    for (const std::uint32_t index : failedFslLinks) {
      if (index >= fslLinkCapacityOf(arch)) {
        throw ModelError("FaultState: failed FSL link " + std::to_string(index) +
                         " is out of range (capacity " +
                         std::to_string(fslLinkCapacityOf(arch)) + ")");
      }
    }
  }
  for (const auto& [tile, wheel] : degradedTdm) {
    if (tile >= arch.tileCount()) {
      throw ModelError("FaultState: degraded wheel on out-of-range tile " +
                       std::to_string(tile));
    }
    if (wheel.slotsPerWheel == 0) {
      throw ModelError("FaultState: degraded wheel on tile " + arch.tile(tile).name +
                       " has zero slots");
    }
    const std::uint32_t built = std::max<std::uint32_t>(1, arch.tile(tile).tdm.slotsPerWheel);
    if (wheel.slotsPerWheel > built) {
      throw ModelError("FaultState: degraded wheel on tile " + arch.tile(tile).name + " has " +
                       std::to_string(wheel.slotsPerWheel) + " slots, more than the " +
                       std::to_string(built) + " it was built with");
    }
  }
}

}  // namespace mamps::platform
