#include "platform/arch_template.hpp"

#include "platform/noc_topology.hpp"
#include "support/strings.hpp"

namespace mamps::platform {

Architecture generateFromTemplate(const TemplateRequest& request) {
  if (request.tileCount == 0) {
    throw ModelError("architecture template needs at least one tile");
  }
  Architecture arch("mamps_" + std::to_string(request.tileCount) + "t_" +
                    std::string(interconnectKindName(request.interconnect)));

  for (std::uint32_t i = 0; i < request.tileCount; ++i) {
    Tile tile;
    tile.name = strprintf("tile%u", i);
    if (i == 0) {
      tile.kind = TileKind::Master;
    } else {
      tile.kind = request.withCommAssist ? TileKind::CommAssist : TileKind::Slave;
    }
    tile.processorType = "microblaze";
    tile.memory = request.tileMemory;
    arch.addTile(tile);
  }

  arch.setInterconnect(request.interconnect);
  if (request.interconnect == InterconnectKind::NocMesh) {
    const auto [rows, cols] = nearSquareMesh(request.tileCount);
    arch.noc().rows = rows;
    arch.noc().cols = cols;
    arch.noc().wiresPerLink = request.nocWiresPerLink;
    arch.noc().hopLatencyCycles = request.nocHopLatencyCycles;
    arch.noc().connectionBufferWords = request.nocConnectionBufferWords;
    arch.noc().flowControl = true;
  } else {
    arch.fsl().fifoDepthWords = request.fslFifoDepthWords;
  }
  arch.validate();
  return arch;
}

}  // namespace mamps::platform
