#include "platform/arch_template.hpp"

#include "platform/noc_topology.hpp"
#include "support/strings.hpp"

namespace mamps::platform {

Architecture generateFromTemplate(const TemplateRequest& request) {
  if (request.tileCount == 0) {
    throw ModelError("architecture template needs at least one tile");
  }
  const std::uint32_t totalTiles = request.totalTiles();
  Architecture arch("mamps_" + std::to_string(totalTiles) + "t_" +
                    std::string(interconnectKindName(request.interconnect)));

  for (std::uint32_t i = 0; i < request.tileCount; ++i) {
    Tile tile;
    tile.name = strprintf("tile%u", i);
    if (i == 0) {
      tile.kind = TileKind::Master;
    } else {
      tile.kind = request.withCommAssist ? TileKind::CommAssist : TileKind::Slave;
    }
    tile.processorType = "microblaze";
    tile.memory = request.tileMemory;
    tile.tdm.slotsPerWheel = request.tdmSlotsPerWheel;
    tile.tdm.wheelOverheadCycles = request.tdmWheelOverheadCycles;
    arch.addTile(tile);
  }
  for (std::size_t i = 0; i < request.hardwareIpTiles.size(); ++i) {
    Tile tile;
    tile.name = strprintf("ip%zu", i);
    tile.kind = TileKind::HardwareIp;
    tile.processorType = request.hardwareIpTiles[i];
    tile.memory = request.ipTileMemory;
    arch.addTile(tile);
  }

  arch.setInterconnect(request.interconnect);
  if (request.interconnect == InterconnectKind::NocMesh) {
    const auto [rows, cols] = nearSquareMesh(totalTiles);
    arch.noc().rows = rows;
    arch.noc().cols = cols;
    arch.noc().wiresPerLink = request.nocWiresPerLink;
    arch.noc().hopLatencyCycles = request.nocHopLatencyCycles;
    arch.noc().connectionBufferWords = request.nocConnectionBufferWords;
    arch.noc().flowControl = true;
  } else {
    arch.fsl().fifoDepthWords = request.fslFifoDepthWords;
    arch.fsl().maxLinks = request.fslMaxLinks;
  }
  arch.validate();
  return arch;
}

TemplateRequest largeMeshPreset(std::uint32_t tileCount) {
  TemplateRequest request;
  request.tileCount = tileCount;
  request.interconnect = InterconnectKind::NocMesh;
  // Wider links and deeper per-connection buffering than the stock
  // template: a big mesh hosts more simultaneous connections, and the
  // longer average routes make per-hop back-pressure more likely.
  request.nocWiresPerLink = 64;
  request.nocConnectionBufferWords = 8;
  return request;
}

TemplateRequest heterogeneousPreset(std::uint32_t tileCount, std::vector<std::string> ipTypes) {
  TemplateRequest request;
  request.tileCount = tileCount;
  request.interconnect = InterconnectKind::Fsl;
  request.hardwareIpTiles = std::move(ipTypes);
  return request;
}

TemplateRequest withTdm(TemplateRequest request, std::uint32_t slotsPerWheel,
                        std::uint32_t wheelOverheadCycles) {
  request.tdmSlotsPerWheel = slotsPerWheel;
  request.tdmWheelOverheadCycles = wheelOverheadCycles;
  return request;
}

}  // namespace mamps::platform
