// The platform failure model: which resources of a generated MPSoC are
// currently broken.
//
// The paper's flow assumes the platform stays exactly as generated; a
// long-running serving deployment does not get that luxury — processor
// tiles lock up, NoC links drop, FSL FIFOs fail, and a degraded tile
// may come back with fewer usable TDM slots than its wheel was built
// with. FaultState is the value type that names those conditions: a set
// of failed tiles, failed NoC links, failed FSL link indices, and
// optional per-tile degraded TDM wheels. It deliberately carries no
// budget or client state — platform::ResourceBudget owns the live
// accounting and consumes FaultState transitions through its
// failTile/failNocLink/failFslLink/degradeTileWheel/repair* calls, and
// mapping::AdmissionController turns them into evacuation and
// re-admission (see mapping/admission.hpp).
//
// FaultState round-trips through the architecture XML as *annotations*
// (platform/io.hpp): failed tiles carry failed="true", degraded wheels
// carry degradedTdmSlots/degradedTdmOverhead, and the interconnect
// element lists failed link indices. A fault-free state writes no
// annotations at all, so legacy architecture files stay byte-stable on
// rewrite.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "platform/architecture.hpp"
#include "platform/noc_topology.hpp"

namespace mamps::platform {

/// The set of currently failed (or degraded) platform resources. A
/// default-constructed FaultState means a healthy platform. Ordered
/// containers keep iteration — and thus serialization, application
/// order, and equality — deterministic.
struct FaultState {
  /// Failed tiles (processor or hardware IP): no work may be placed on
  /// them and their capacity counts as zero until repaired.
  std::set<TileId> failedTiles;
  /// Failed directed NoC mesh links: no SDM wires may be reserved on
  /// routes crossing them until repaired.
  std::set<LinkId> failedNocLinks;
  /// Failed FSL link indices: the point-to-point link hardware at these
  /// indices is broken and must not be (re)allocated until repaired.
  std::set<std::uint32_t> failedFslLinks;
  /// Tiles running on a degraded TDM wheel (e.g. after a partial
  /// repair): the effective wheel replaces the architecture's wheel for
  /// capacity and WCET-inflation purposes. A degraded wheel never has
  /// more slots than the tile was built with.
  std::map<TileId, TdmConfig> degradedTdm;

  /// Is the platform healthy (nothing failed, nothing degraded)?
  /// @return true when every set and map is empty
  [[nodiscard]] bool empty() const {
    return failedTiles.empty() && failedNocLinks.empty() && failedFslLinks.empty() &&
           degradedTdm.empty();
  }

  /// Is a tile failed?
  /// @param tile the tile to query
  /// @return true when `tile` is in failedTiles
  [[nodiscard]] bool tileFailed(TileId tile) const { return failedTiles.count(tile) != 0; }

  /// Is a NoC link failed?
  /// @param link the link to query
  /// @return true when `link` is in failedNocLinks
  [[nodiscard]] bool nocLinkFailed(LinkId link) const {
    return failedNocLinks.count(link) != 0;
  }

  /// Is an FSL link index failed?
  /// @param index the FSL link index to query
  /// @return true when `index` is in failedFslLinks
  [[nodiscard]] bool fslLinkFailed(std::uint32_t index) const {
    return failedFslLinks.count(index) != 0;
  }

  /// Structural checks against the architecture the faults describe:
  /// tile ids in range, NoC link ids within the mesh (NoC platforms
  /// only), FSL indices within the platform's link capacity (FSL
  /// platforms only), and degraded wheels with at least one slot and no
  /// more slots than the tile was built with.
  /// @param arch the architecture these faults annotate
  /// @throws ModelError when any fault references a resource the
  ///   architecture does not have, or a degraded wheel is invalid
  void validate(const Architecture& arch) const;

  /// Field-for-field equality (XML round-trip and pristine checks).
  /// @param other the fault state to compare against
  /// @return true when every member matches
  [[nodiscard]] bool operator==(const FaultState& other) const = default;
};

/// The platform's FSL link capacity as enforced by the resource budget:
/// FslConfig::maxLinks, or — when that is 0 — kFslPortsPerTile
/// point-to-point links per tile. Shared by
/// platform::ResourceBudget::fslLinkCapacity and FaultState::validate
/// so the two can never drift apart.
/// @param arch the architecture to derive the capacity for
/// @return the maximum number of simultaneously live FSL links
[[nodiscard]] std::uint32_t fslLinkCapacityOf(const Architecture& arch);

}  // namespace mamps::platform
