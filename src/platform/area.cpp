#include "platform/area.hpp"

#include <cmath>

namespace mamps::platform {

std::uint32_t tileSlices(const Tile& tile, const AreaModel& model) {
  std::uint32_t slices = model.networkInterfaceSlices;
  switch (tile.kind) {
    case TileKind::Master:
      slices += model.microblazeSlices + model.peripheralSlices;
      break;
    case TileKind::Slave:
      slices += model.microblazeSlices;
      break;
    case TileKind::CommAssist:
      slices += model.microblazeSlices + model.commAssistSlices;
      break;
    case TileKind::HardwareIp:
      slices += model.hardwareIpSlices;
      break;
  }
  // TDM wheel hardware on software tiles: slot contexts + scheduler,
  // charged per slot beyond the (free) exclusive first slot.
  if (tile.kind != TileKind::HardwareIp && tile.tdm.slotsPerWheel > 1) {
    slices += (tile.tdm.slotsPerWheel - 1) * model.tdmSlotSlices;
  }
  return slices;
}

std::uint32_t nocRouterSlices(const NocConfig& config, const AreaModel& model) {
  const double base = model.nocRouterBaseSlices +
                      static_cast<double>(model.nocRouterPerWireSlices) * config.wiresPerLink;
  const double withFc = config.flowControl ? base * (1.0 + model.flowControlOverhead) : base;
  return static_cast<std::uint32_t>(std::lround(withFc));
}

std::uint32_t interconnectSlices(const Architecture& arch, std::uint32_t fslLinkCount,
                                 const AreaModel& model) {
  if (arch.interconnect() == InterconnectKind::Fsl) {
    return fslLinkCount * model.fslLinkSlices;
  }
  const NocConfig& noc = arch.noc();
  return noc.rows * noc.cols * nocRouterSlices(noc, model);
}

std::uint32_t platformSlices(const Architecture& arch, std::uint32_t fslLinkCount,
                             const AreaModel& model) {
  std::uint32_t slices = interconnectSlices(arch, fslLinkCount, model);
  for (const Tile& tile : arch.tiles()) {
    slices += tileSlices(tile, model);
  }
  return slices;
}

}  // namespace mamps::platform
