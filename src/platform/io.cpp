#include "platform/io.hpp"

#include <memory>

#include "support/strings.hpp"
#include "support/xml.hpp"

namespace mamps::platform {

namespace {

/// Comma-join an ordered set of link indices ("0,3,7").
std::string joinIndices(const std::set<std::uint32_t>& indices) {
  std::string joined;
  for (const std::uint32_t index : indices) {
    if (!joined.empty()) {
      joined += ',';
    }
    joined += std::to_string(index);
  }
  return joined;
}

/// Parse a comma-joined index list back into a set.
std::set<std::uint32_t> splitIndices(std::string_view joined) {
  std::set<std::uint32_t> indices;
  for (const std::string& field : split(joined, ',')) {
    indices.insert(static_cast<std::uint32_t>(parseU64(trim(field))));
  }
  return indices;
}

}  // namespace

std::string architectureToXml(const Architecture& arch) {
  return architectureToXml(arch, FaultState{});
}

std::string architectureToXml(const Architecture& arch, const FaultState& faults) {
  auto root = std::make_unique<xml::Element>("architecture");
  root->setAttribute("name", arch.name());
  root->setAttribute("interconnect", std::string(interconnectKindName(arch.interconnect())));

  for (TileId id = 0; id < arch.tileCount(); ++id) {
    const Tile& t = arch.tile(id);
    xml::Element& te = root->addChild("tile");
    te.setAttribute("name", t.name);
    te.setAttribute("kind", std::string(tileKindName(t.kind)));
    te.setAttribute("processorType", t.processorType);
    te.setAttribute("instrMem", std::to_string(t.memory.instrBytes));
    te.setAttribute("dataMem", std::to_string(t.memory.dataBytes));
    // TDM attributes are written only when non-default so pre-TDM
    // files round-trip byte-identically.
    if (t.tdm != TdmConfig{}) {
      te.setAttribute("tdmSlots", std::to_string(t.tdm.slotsPerWheel));
      te.setAttribute("tdmOverhead", std::to_string(t.tdm.wheelOverheadCycles));
    }
    // Fault annotations follow the same only-when-present rule, so a
    // healthy platform's document is byte-identical to the legacy form.
    if (faults.tileFailed(id)) {
      te.setAttribute("failed", "true");
    }
    const auto degraded = faults.degradedTdm.find(id);
    if (degraded != faults.degradedTdm.end()) {
      te.setAttribute("degradedTdmSlots", std::to_string(degraded->second.slotsPerWheel));
      te.setAttribute("degradedTdmOverhead",
                      std::to_string(degraded->second.wheelOverheadCycles));
    }
  }

  if (arch.interconnect() == InterconnectKind::NocMesh) {
    xml::Element& ne = root->addChild("noc");
    ne.setAttribute("rows", std::to_string(arch.noc().rows));
    ne.setAttribute("cols", std::to_string(arch.noc().cols));
    ne.setAttribute("wiresPerLink", std::to_string(arch.noc().wiresPerLink));
    ne.setAttribute("hopLatency", std::to_string(arch.noc().hopLatencyCycles));
    ne.setAttribute("connectionBuffer", std::to_string(arch.noc().connectionBufferWords));
    ne.setAttribute("flowControl", arch.noc().flowControl ? "true" : "false");
    if (!faults.failedNocLinks.empty()) {
      std::set<std::uint32_t> indices(faults.failedNocLinks.begin(),
                                      faults.failedNocLinks.end());
      ne.setAttribute("failedLinks", joinIndices(indices));
    }
  } else {
    xml::Element& fe = root->addChild("fsl");
    fe.setAttribute("fifoDepth", std::to_string(arch.fsl().fifoDepthWords));
    fe.setAttribute("latency", std::to_string(arch.fsl().latencyCycles));
    fe.setAttribute("maxLinks", std::to_string(arch.fsl().maxLinks));
    if (!faults.failedFslLinks.empty()) {
      fe.setAttribute("failedLinks", joinIndices(faults.failedFslLinks));
    }
  }
  return xml::Document(std::move(root)).toString();
}

Architecture architectureFromString(const std::string& text) {
  return architectureWithFaultsFromString(text).arch;
}

ArchitectureWithFaults architectureWithFaultsFromString(const std::string& text) {
  const xml::Document doc = xml::parse(text);
  const xml::Element& root = doc.root();
  if (root.name() != "architecture") {
    throw ParseError("expected <architecture>, found <" + root.name() + ">");
  }
  ArchitectureWithFaults out;
  Architecture& arch = out.arch;
  FaultState& faults = out.faults;
  arch.setName(std::string(root.attribute("name").value_or("mamps")));
  arch.setInterconnect(interconnectKindFromName(root.requiredAttribute("interconnect")));

  for (const xml::Element* te : root.childrenNamed("tile")) {
    Tile tile;
    tile.name = std::string(te->requiredAttribute("name"));
    tile.kind = tileKindFromName(te->requiredAttribute("kind"));
    tile.processorType = std::string(te->attribute("processorType").value_or("microblaze"));
    tile.memory.instrBytes =
        static_cast<std::uint32_t>(parseU64(te->attribute("instrMem").value_or("65536")));
    tile.memory.dataBytes =
        static_cast<std::uint32_t>(parseU64(te->attribute("dataMem").value_or("65536")));
    tile.tdm.slotsPerWheel =
        static_cast<std::uint32_t>(parseU64(te->attribute("tdmSlots").value_or("1")));
    tile.tdm.wheelOverheadCycles =
        static_cast<std::uint32_t>(parseU64(te->attribute("tdmOverhead").value_or("0")));
    const TileId id = arch.addTile(std::move(tile));
    if (te->attribute("failed").value_or("false") == "true") {
      faults.failedTiles.insert(id);
    }
    if (const auto slots = te->attribute("degradedTdmSlots")) {
      TdmConfig wheel;
      wheel.slotsPerWheel = static_cast<std::uint32_t>(parseU64(*slots));
      wheel.wheelOverheadCycles = static_cast<std::uint32_t>(
          parseU64(te->attribute("degradedTdmOverhead").value_or("0")));
      faults.degradedTdm.emplace(id, wheel);
    }
  }

  if (const xml::Element* ne = root.firstChild("noc")) {
    arch.noc().rows = static_cast<std::uint32_t>(parseU64(ne->requiredAttribute("rows")));
    arch.noc().cols = static_cast<std::uint32_t>(parseU64(ne->requiredAttribute("cols")));
    arch.noc().wiresPerLink =
        static_cast<std::uint32_t>(parseU64(ne->attribute("wiresPerLink").value_or("32")));
    arch.noc().hopLatencyCycles =
        static_cast<std::uint32_t>(parseU64(ne->attribute("hopLatency").value_or("3")));
    arch.noc().connectionBufferWords =
        static_cast<std::uint32_t>(parseU64(ne->attribute("connectionBuffer").value_or("4")));
    arch.noc().flowControl = ne->attribute("flowControl").value_or("true") == "true";
    if (const auto failed = ne->attribute("failedLinks")) {
      for (const std::uint32_t index : splitIndices(*failed)) {
        faults.failedNocLinks.insert(index);
      }
    }
  }
  if (const xml::Element* fe = root.firstChild("fsl")) {
    arch.fsl().fifoDepthWords =
        static_cast<std::uint32_t>(parseU64(fe->attribute("fifoDepth").value_or("16")));
    arch.fsl().latencyCycles =
        static_cast<std::uint32_t>(parseU64(fe->attribute("latency").value_or("1")));
    arch.fsl().maxLinks =
        static_cast<std::uint32_t>(parseU64(fe->attribute("maxLinks").value_or("0")));
    if (const auto failed = fe->attribute("failedLinks")) {
      faults.failedFslLinks = splitIndices(*failed);
    }
  }
  arch.validate();
  faults.validate(arch);
  return out;
}

}  // namespace mamps::platform
