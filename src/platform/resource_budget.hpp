// Shared-platform resource state: capacity minus committed reservations.
//
// One generated MAMPS platform serves a *workload* of applications
// (the paper maps multiple throughput-constrained applications onto one
// MPSoC). Every resource an application claims while being mapped —
// tile processor time, instruction/data memory, SDM wires on NoC links,
// dedicated FSL links — is committed here, so the next application of
// the workload is mapped onto the *residual* budget. The guarantees
// compose because every commitment is disjoint: a tile's TDM slot wheel
// grants each application its own time slices (an exclusive 1-slot
// wheel is the degenerate case), an SDM wire belongs to one connection,
// and an FSL link is point-to-point by construction, so no application
// can interfere with another's analyzed schedule.
//
// The budget is a value type: copy it to trial a mapping attempt and
// assign the copy back to commit, or drop it to roll back.
//
// Beyond batch co-mapping, the budget supports *online* admission
// control (mapping/admission.hpp): every commitment records per-client
// provenance — which tiles (and how much of each), how many SDM wires
// on which links, which FSL link indices — so release() can tear a
// departed client down exactly. After any interleaving of commits and
// releases that ends with every client released, the budget compares
// equal (field for field, operator==) to a freshly constructed one with
// the same baseline: nothing leaks, nothing drifts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "platform/architecture.hpp"
#include "platform/noc_topology.hpp"

namespace mamps::platform {

/// Committed reservations on one tile of the shared platform.
struct TileBudget {
  /// Sentinel client id: no valid client carries this id.
  static constexpr std::uint32_t kNoClient = 0xffffffff;

  std::uint64_t loadCycles = 0;  ///< committed processor cycles per iteration
  std::uint32_t instrBytes = 0;  ///< committed instruction memory
  std::uint32_t dataBytes = 0;   ///< committed data memory
  /// TDM slot reservations: client -> slots held on this tile's wheel.
  /// Empty = unclaimed. A client's static-order schedule runs inside
  /// its own slots only, so co-resident clients cannot invalidate it;
  /// an exclusive (1-slot) wheel degenerates to the pre-TDM one-owner
  /// rule. std::map keeps iteration (and equality) deterministic.
  std::map<std::uint32_t, std::uint32_t> slotOwners;

  /// Slots currently reserved across all clients.
  /// @return the sum of every client's held slots
  [[nodiscard]] std::uint32_t slotsUsed() const {
    std::uint32_t used = 0;
    for (const auto& [client, slots] : slotOwners) {
      used += slots;
    }
    return used;
  }

  /// Field-for-field equality (pristine-restoration checks).
  /// @param other the tile budget to compare against
  /// @return true when every field matches
  [[nodiscard]] bool operator==(const TileBudget& other) const = default;
};

/// Per-client provenance of committed reservations: exactly what
/// release() must hand back. Recorded incrementally by commitTile /
/// reserveNocWires / allocateFslLink; std::map keeps the iteration
/// order (and thus release and equality) deterministic.
struct ClientLedger {
  /// Per claimed tile: this client's share of the committed load/memory
  /// (the tile may additionally carry the unclaimed platform baseline).
  struct TileShare {
    std::uint64_t loadCycles = 0;  ///< committed processor cycles
    std::uint32_t instrBytes = 0;  ///< committed instruction memory
    std::uint32_t dataBytes = 0;   ///< committed data memory
    std::uint32_t slots = 0;       ///< held TDM slots on the tile's wheel

    /// Field-for-field equality.
    /// @param other the share to compare against
    /// @return true when every field matches
    [[nodiscard]] bool operator==(const TileShare& other) const = default;
  };

  std::map<TileId, TileShare> tiles;         ///< tile -> this client's share
  std::map<LinkId, std::uint32_t> wires;     ///< NoC link -> reserved SDM wires
  std::vector<std::uint32_t> fslLinks;       ///< held FSL link indices

  /// Field-for-field equality.
  /// @param other the ledger to compare against
  /// @return true when every member matches
  [[nodiscard]] bool operator==(const ClientLedger& other) const = default;
};

/// Capacity-minus-reservations accounting for one architecture.
///
/// Clients (the applications of a workload, identified by opaque ids)
/// commit reservations; queries report the residual; release() returns
/// a departed client's reservations exactly. The referenced
/// Architecture must outlive the budget.
class ResourceBudget {
 public:
  /// An empty budget over no architecture (assign before use).
  ResourceBudget() = default;
  /// Start an empty budget over `arch` (no reservations committed).
  /// @param arch the architecture to track; must outlive the budget
  explicit ResourceBudget(const Architecture& arch);

  /// The architecture this budget tracks.
  /// @return the architecture, or null for a default-constructed budget
  [[nodiscard]] const Architecture* arch() const { return arch_; }

  // ------------------------------------------------------------- tiles

  /// Charge a platform-level baseline (e.g. the runtime layer image of
  /// the MAMPS scheduler/communication library) on every software tile.
  /// Hardware IP tiles run no software and are skipped. The tiles stay
  /// unclaimed, and the baseline belongs to no client — release() never
  /// returns it.
  /// @param instrBytes instruction memory to charge per software tile
  /// @param dataBytes data memory to charge per software tile
  /// @throws Error when the baseline does not fit the residual memory
  ///   of every software tile (checked overflow-safely before anything
  ///   is committed: a failed call changes nothing)
  void commitBaseline(std::uint32_t instrBytes, std::uint32_t dataBytes);

  /// May `client` place work on the tile?
  /// @param tile the tile to query
  /// @param client the asking client id
  /// @return true when `client` already holds slots on the tile's TDM
  ///   wheel, or free slots remain for it to reserve
  [[nodiscard]] bool tileAvailable(TileId tile, std::uint32_t client) const;

  /// The tile's TDM wheel size (TdmConfig::slotsPerWheel, >= 1).
  /// @param tile the tile to query
  /// @return the number of slots on the wheel
  [[nodiscard]] std::uint32_t tileSlotCapacity(TileId tile) const;

  /// Unreserved slots on the tile's TDM wheel.
  /// @param tile the tile to query
  /// @return wheel capacity minus every client's held slots
  [[nodiscard]] std::uint32_t freeTileSlots(TileId tile) const;

  /// Slots `client` holds on the tile's TDM wheel.
  /// @param tile the tile to query
  /// @param client the client to look up
  /// @return the held slot count (0 = no reservation)
  [[nodiscard]] std::uint32_t tileSlots(TileId tile, std::uint32_t client) const;

  /// Reserve `slots` additional TDM slots on the tile's wheel for
  /// `client` (recorded in the client's ledger; release() hands them
  /// back). The processor fraction a client owns is its held slots over
  /// the wheel size.
  /// @param tile the tile to reserve on
  /// @param client the reserving client id (not kNoClient)
  /// @param slots slots to add (> 0)
  /// @throws Error on a zero-slot request, an invalid client, or when
  ///   fewer than `slots` slots are free (nothing committed)
  void reserveTileSlots(TileId tile, std::uint32_t client, std::uint32_t slots);

  /// Residual instruction memory of a tile.
  /// @param tile the tile to query
  /// @return capacity minus committed instruction bytes (0 when full)
  [[nodiscard]] std::uint32_t freeInstrBytes(TileId tile) const;
  /// Residual data memory of a tile.
  /// @param tile the tile to query
  /// @return capacity minus committed data bytes (0 when full)
  [[nodiscard]] std::uint32_t freeDataBytes(TileId tile) const;

  /// Commit a load/memory reservation for `client` on a tile it holds
  /// TDM slots on. For callers that never touch slots (the pre-TDM
  /// exclusive protocol), a commit to a completely unreserved wheel
  /// implicitly reserves ALL of its slots for `client` — on a 1-slot
  /// wheel that is exactly the old one-owner semantics.
  /// @param tile the tile to reserve on
  /// @param client the claiming client id (not kNoClient)
  /// @param loadCycles processor cycles per iteration to add
  /// @param instrBytes instruction memory to add
  /// @param dataBytes data memory to add
  /// @throws Error when `client` holds no slots and the wheel is
  ///   partially reserved by others, or the reservation exceeds the
  ///   residual memory
  void commitTile(TileId tile, std::uint32_t client, std::uint64_t loadCycles,
                  std::uint32_t instrBytes, std::uint32_t dataBytes);

  /// Per-tile committed reservations.
  /// @return one TileBudget per tile, indexed by TileId
  [[nodiscard]] const std::vector<TileBudget>& tiles() const { return tiles_; }

  // ------------------------------------------------------ interconnect

  /// The NoC topology of the tracked architecture.
  /// @return the topology
  /// @throws Error when the architecture has no NoC interconnect
  [[nodiscard]] const NocTopology& nocTopology() const;

  /// Reserve SDM wires on every link of a route for `client`.
  /// @param route the links of the connection's XY route
  /// @param wires wires to claim on each link
  /// @param client the reserving client id (not kNoClient)
  /// @return true on success; false (and nothing committed) when any
  ///   link lacks capacity
  [[nodiscard]] bool reserveNocWires(const std::vector<LinkId>& route, std::uint32_t wires,
                                     std::uint32_t client);

  /// SDM wires committed on a link.
  /// @param link the link to query
  /// @return the committed wire count
  [[nodiscard]] std::uint32_t usedWires(LinkId link) const;

  /// Claim a dedicated FSL link for `client`. Links come from a capped
  /// free-list: released indices are reused (lowest first) before new
  /// ones are minted, so indices stay dense under admit/release churn
  /// and match the generated point-to-point hardware.
  /// @param client the claiming client id (not kNoClient)
  /// @return the claimed link index
  /// @throws Error when the architecture's FSL link capacity
  ///   (fslLinkCapacity()) is exhausted
  [[nodiscard]] std::uint32_t allocateFslLink(std::uint32_t client);

  /// FSL links currently held by clients (live links, not the
  /// high-water mark: released links do not count).
  /// @return the number of live links
  [[nodiscard]] std::uint32_t fslLinksUsed() const {
    return nextFslIndex_ - static_cast<std::uint32_t>(freeFslLinks_.size());
  }

  /// The architecture's FSL link capacity: FslConfig::maxLinks, or —
  /// when that is 0 — kFslPortsPerTile point-to-point links per tile
  /// (the MicroBlaze FSL port limit).
  /// @return the maximum number of simultaneously live FSL links
  [[nodiscard]] std::uint32_t fslLinkCapacity() const;

  // ------------------------------------------------- release / equality

  /// The committed reservations of one client, exactly as release()
  /// would return them.
  /// @param client the client to look up
  /// @return the ledger, or null when the client holds nothing
  [[nodiscard]] const ClientLedger* ledger(std::uint32_t client) const;

  /// Tear down every reservation `client` holds: tile load/memory goes
  /// back to the residual (the platform baseline stays), TDM slots
  /// return to their wheels, SDM wires return to their links, and FSL
  /// links return to the free-list. After all clients of a budget are
  /// released, the budget equals a freshly constructed one with the
  /// same baseline, field for field.
  /// @param client the departing client id
  /// @throws Error when the client holds no reservations (a
  ///   double-release or unknown-client bug in the caller)
  void release(std::uint32_t client);

  /// Field-for-field equality: same architecture, same per-tile
  /// reservations and ownership, same per-link wires, same FSL
  /// free-list state, same client ledgers. This is the
  /// pristine-restoration check of the admission controller.
  /// @param other the budget to compare against
  /// @return true when every field matches
  [[nodiscard]] bool operator==(const ResourceBudget& other) const;

 private:
  const Architecture* arch_ = nullptr;
  std::vector<TileBudget> tiles_;
  std::optional<NocTopology> topology_;
  std::vector<std::uint32_t> usedWires_;  // per NoC link
  /// High-water mark of minted FSL indices; indices < nextFslIndex_ not
  /// on the free-list are live.
  std::uint32_t nextFslIndex_ = 0;
  /// Released FSL indices, kept sorted ascending; allocation pops the
  /// lowest. release() re-normalizes against nextFslIndex_ so a fully
  /// torn-down budget is bit-identical to a fresh one.
  std::vector<std::uint32_t> freeFslLinks_;
  /// Per-client provenance; empty once every client released.
  std::map<std::uint32_t, ClientLedger> ledgers_;
};

}  // namespace mamps::platform
