// Shared-platform resource state: capacity minus committed reservations.
//
// One generated MAMPS platform serves a *workload* of applications
// (the paper maps multiple throughput-constrained applications onto one
// MPSoC). Every resource an application claims while being mapped —
// tile processor time, instruction/data memory, SDM wires on NoC links,
// dedicated FSL links — is committed here, so the next application of
// the workload is mapped onto the *residual* budget. The guarantees
// compose because every commitment is exclusive: a tile executes actors
// of one application only, an SDM wire belongs to one connection, and
// an FSL link is point-to-point by construction, so no application can
// interfere with another's analyzed schedule.
//
// The budget is a value type: copy it to trial a mapping attempt and
// assign the copy back to commit, or drop it to roll back.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "platform/architecture.hpp"
#include "platform/noc_topology.hpp"

namespace mamps::platform {

/// Committed reservations on one tile of the shared platform.
struct TileBudget {
  /// Sentinel client id: the tile is not claimed by any client.
  static constexpr std::uint32_t kNoClient = 0xffffffff;

  std::uint64_t loadCycles = 0;  ///< committed processor cycles per iteration
  std::uint32_t instrBytes = 0;  ///< committed instruction memory
  std::uint32_t dataBytes = 0;   ///< committed data memory
  /// Owning client (kNoClient = unclaimed). A tile is granted to one
  /// client exclusively: its static-order schedule would otherwise be
  /// invalidated by another application's firings.
  std::uint32_t owner = kNoClient;
};

/// Capacity-minus-reservations accounting for one architecture.
///
/// Clients (the applications of a workload, identified by opaque ids)
/// commit reservations; queries report the residual. The referenced
/// Architecture must outlive the budget.
class ResourceBudget {
 public:
  /// An empty budget over no architecture (assign before use).
  ResourceBudget() = default;
  /// Start an empty budget over `arch` (no reservations committed).
  /// @param arch the architecture to track; must outlive the budget
  explicit ResourceBudget(const Architecture& arch);

  /// The architecture this budget tracks.
  /// @return the architecture, or null for a default-constructed budget
  [[nodiscard]] const Architecture* arch() const { return arch_; }

  // ------------------------------------------------------------- tiles

  /// Charge a platform-level baseline (e.g. the runtime layer image of
  /// the MAMPS scheduler/communication library) on every software tile.
  /// Hardware IP tiles run no software and are skipped. The tiles stay
  /// unclaimed.
  /// @param instrBytes instruction memory to charge per software tile
  /// @param dataBytes data memory to charge per software tile
  void commitBaseline(std::uint32_t instrBytes, std::uint32_t dataBytes);

  /// May `client` place work on the tile?
  /// @param tile the tile to query
  /// @param client the asking client id
  /// @return true when the tile is unclaimed or already owned by
  ///   `client`
  [[nodiscard]] bool tileAvailable(TileId tile, std::uint32_t client) const;

  /// Residual instruction memory of a tile.
  /// @param tile the tile to query
  /// @return capacity minus committed instruction bytes (0 when full)
  [[nodiscard]] std::uint32_t freeInstrBytes(TileId tile) const;
  /// Residual data memory of a tile.
  /// @param tile the tile to query
  /// @return capacity minus committed data bytes (0 when full)
  [[nodiscard]] std::uint32_t freeDataBytes(TileId tile) const;

  /// Commit a reservation and claim the tile for `client`.
  /// @param tile the tile to reserve on
  /// @param client the claiming client id (not kNoClient)
  /// @param loadCycles processor cycles per iteration to add
  /// @param instrBytes instruction memory to add
  /// @param dataBytes data memory to add
  /// @throws Error when the tile is owned by a different client or the
  ///   reservation exceeds the residual memory
  void commitTile(TileId tile, std::uint32_t client, std::uint64_t loadCycles,
                  std::uint32_t instrBytes, std::uint32_t dataBytes);

  /// Per-tile committed reservations.
  /// @return one TileBudget per tile, indexed by TileId
  [[nodiscard]] const std::vector<TileBudget>& tiles() const { return tiles_; }

  // ------------------------------------------------------ interconnect

  /// The NoC topology of the tracked architecture.
  /// @return the topology
  /// @throws Error when the architecture has no NoC interconnect
  [[nodiscard]] const NocTopology& nocTopology() const;

  /// Reserve SDM wires on every link of a route.
  /// @param route the links of the connection's XY route
  /// @param wires wires to claim on each link
  /// @return true on success; false (and nothing committed) when any
  ///   link lacks capacity
  [[nodiscard]] bool reserveNocWires(const std::vector<LinkId>& route, std::uint32_t wires);

  /// SDM wires committed on a link.
  /// @param link the link to query
  /// @return the committed wire count
  [[nodiscard]] std::uint32_t usedWires(LinkId link) const;

  /// Claim the next dedicated FSL link; indices are unique across the
  /// whole workload, matching the generated point-to-point hardware.
  /// @return the claimed link index
  [[nodiscard]] std::uint32_t allocateFslLink();

  /// FSL links claimed so far.
  /// @return the number of allocated links
  [[nodiscard]] std::uint32_t fslLinksUsed() const { return nextFslIndex_; }

 private:
  const Architecture* arch_ = nullptr;
  std::vector<TileBudget> tiles_;
  std::optional<NocTopology> topology_;
  std::vector<std::uint32_t> usedWires_;  // per NoC link
  std::uint32_t nextFslIndex_ = 0;
};

}  // namespace mamps::platform
