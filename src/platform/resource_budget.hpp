// Shared-platform resource state: capacity minus committed reservations.
//
// One generated MAMPS platform serves a *workload* of applications
// (the paper maps multiple throughput-constrained applications onto one
// MPSoC). Every resource an application claims while being mapped —
// tile processor time, instruction/data memory, SDM wires on NoC links,
// dedicated FSL links — is committed here, so the next application of
// the workload is mapped onto the *residual* budget. The guarantees
// compose because every commitment is disjoint: a tile's TDM slot wheel
// grants each application its own time slices (an exclusive 1-slot
// wheel is the degenerate case), an SDM wire belongs to one connection,
// and an FSL link is point-to-point by construction, so no application
// can interfere with another's analyzed schedule.
//
// The budget is a value type: copy it to trial a mapping attempt and
// assign the copy back to commit, or drop it to roll back.
//
// Beyond batch co-mapping, the budget supports *online* admission
// control (mapping/admission.hpp): every commitment records per-client
// provenance — which tiles (and how much of each), how many SDM wires
// on which links, which FSL link indices — so release() can tear a
// departed client down exactly. After any interleaving of commits and
// releases that ends with every client released, the budget compares
// equal (field for field, operator==) to a freshly constructed one with
// the same baseline: nothing leaks, nothing drifts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "platform/architecture.hpp"
#include "platform/fault.hpp"
#include "platform/noc_topology.hpp"

namespace mamps::platform {

/// Committed reservations on one tile of the shared platform.
struct TileBudget {
  /// Sentinel client id: no valid client carries this id.
  static constexpr std::uint32_t kNoClient = 0xffffffff;

  std::uint64_t loadCycles = 0;  ///< committed processor cycles per iteration
  std::uint32_t instrBytes = 0;  ///< committed instruction memory
  std::uint32_t dataBytes = 0;   ///< committed data memory
  /// TDM slot reservations: client -> slots held on this tile's wheel.
  /// Empty = unclaimed. A client's static-order schedule runs inside
  /// its own slots only, so co-resident clients cannot invalidate it;
  /// an exclusive (1-slot) wheel degenerates to the pre-TDM one-owner
  /// rule. std::map keeps iteration (and equality) deterministic.
  std::map<std::uint32_t, std::uint32_t> slotOwners;

  /// Slots currently reserved across all clients.
  /// @return the sum of every client's held slots
  [[nodiscard]] std::uint32_t slotsUsed() const {
    std::uint32_t used = 0;
    for (const auto& [client, slots] : slotOwners) {
      used += slots;
    }
    return used;
  }

  /// Field-for-field equality (pristine-restoration checks).
  /// @param other the tile budget to compare against
  /// @return true when every field matches
  [[nodiscard]] bool operator==(const TileBudget& other) const = default;
};

/// Per-client provenance of committed reservations: exactly what
/// release() must hand back. Recorded incrementally by commitTile /
/// reserveNocWires / allocateFslLink; std::map keeps the iteration
/// order (and thus release and equality) deterministic.
struct ClientLedger {
  /// Per claimed tile: this client's share of the committed load/memory
  /// (the tile may additionally carry the unclaimed platform baseline).
  struct TileShare {
    std::uint64_t loadCycles = 0;  ///< committed processor cycles
    std::uint32_t instrBytes = 0;  ///< committed instruction memory
    std::uint32_t dataBytes = 0;   ///< committed data memory
    std::uint32_t slots = 0;       ///< held TDM slots on the tile's wheel

    /// Field-for-field equality.
    /// @param other the share to compare against
    /// @return true when every field matches
    [[nodiscard]] bool operator==(const TileShare& other) const = default;
  };

  std::map<TileId, TileShare> tiles;         ///< tile -> this client's share
  std::map<LinkId, std::uint32_t> wires;     ///< NoC link -> reserved SDM wires
  std::vector<std::uint32_t> fslLinks;       ///< held FSL link indices

  /// Field-for-field equality.
  /// @param other the ledger to compare against
  /// @return true when every member matches
  [[nodiscard]] bool operator==(const ClientLedger& other) const = default;
};

/// Capacity-minus-reservations accounting for one architecture.
///
/// Clients (the applications of a workload, identified by opaque ids)
/// commit reservations; queries report the residual; release() returns
/// a departed client's reservations exactly. The referenced
/// Architecture must outlive the budget.
class ResourceBudget {
 public:
  /// An empty budget over no architecture (assign before use).
  ResourceBudget() = default;
  /// Start an empty budget over `arch` (no reservations committed).
  /// @param arch the architecture to track; must outlive the budget
  explicit ResourceBudget(const Architecture& arch);

  /// The architecture this budget tracks.
  /// @return the architecture, or null for a default-constructed budget
  [[nodiscard]] const Architecture* arch() const { return arch_; }

  // ------------------------------------------------------------- tiles

  /// Charge a platform-level baseline (e.g. the runtime layer image of
  /// the MAMPS scheduler/communication library) on every software tile.
  /// Hardware IP tiles run no software and are skipped. The tiles stay
  /// unclaimed, and the baseline belongs to no client — release() never
  /// returns it.
  /// @param instrBytes instruction memory to charge per software tile
  /// @param dataBytes data memory to charge per software tile
  /// @throws Error when the baseline does not fit the residual memory
  ///   of every software tile (checked overflow-safely before anything
  ///   is committed: a failed call changes nothing)
  void commitBaseline(std::uint32_t instrBytes, std::uint32_t dataBytes);

  /// May `client` place work on the tile?
  /// @param tile the tile to query
  /// @param client the asking client id
  /// @return false for failed tiles; otherwise true when `client`
  ///   already holds slots on the tile's TDM wheel, or free slots
  ///   remain for it to reserve
  [[nodiscard]] bool tileAvailable(TileId tile, std::uint32_t client) const;

  /// The tile's effective TDM wheel size (>= 1): the degraded wheel's
  /// when the tile is degraded, TdmConfig::slotsPerWheel otherwise.
  /// @param tile the tile to query
  /// @return the number of slots on the effective wheel
  [[nodiscard]] std::uint32_t tileSlotCapacity(TileId tile) const;

  /// Unreserved slots on the tile's TDM wheel; 0 for failed tiles.
  /// @param tile the tile to query
  /// @return effective wheel capacity minus every client's held slots
  [[nodiscard]] std::uint32_t freeTileSlots(TileId tile) const;

  /// Slots `client` holds on the tile's TDM wheel.
  /// @param tile the tile to query
  /// @param client the client to look up
  /// @return the held slot count (0 = no reservation)
  [[nodiscard]] std::uint32_t tileSlots(TileId tile, std::uint32_t client) const;

  /// Reserve `slots` additional TDM slots on the tile's wheel for
  /// `client` (recorded in the client's ledger; release() hands them
  /// back). The processor fraction a client owns is its held slots over
  /// the wheel size.
  /// @param tile the tile to reserve on
  /// @param client the reserving client id (not kNoClient)
  /// @param slots slots to add (> 0)
  /// @throws Error on a zero-slot request, an invalid client, a failed
  ///   tile, or when fewer than `slots` slots are free (nothing
  ///   committed)
  void reserveTileSlots(TileId tile, std::uint32_t client, std::uint32_t slots);

  /// Residual instruction memory of a tile; 0 for failed tiles.
  /// @param tile the tile to query
  /// @return capacity minus committed instruction bytes (0 when full)
  [[nodiscard]] std::uint32_t freeInstrBytes(TileId tile) const;
  /// Residual data memory of a tile; 0 for failed tiles.
  /// @param tile the tile to query
  /// @return capacity minus committed data bytes (0 when full)
  [[nodiscard]] std::uint32_t freeDataBytes(TileId tile) const;

  /// Commit a load/memory reservation for `client` on a tile it holds
  /// TDM slots on. For callers that never touch slots (the pre-TDM
  /// exclusive protocol), a commit to a completely unreserved wheel
  /// implicitly reserves ALL of its slots for `client` — on a 1-slot
  /// wheel that is exactly the old one-owner semantics.
  /// @param tile the tile to reserve on
  /// @param client the claiming client id (not kNoClient)
  /// @param loadCycles processor cycles per iteration to add
  /// @param instrBytes instruction memory to add
  /// @param dataBytes data memory to add
  /// @throws Error when the tile is failed, `client` holds no slots and
  ///   the wheel is partially reserved by others, or the reservation
  ///   exceeds the residual memory
  void commitTile(TileId tile, std::uint32_t client, std::uint64_t loadCycles,
                  std::uint32_t instrBytes, std::uint32_t dataBytes);

  /// Per-tile committed reservations.
  /// @return one TileBudget per tile, indexed by TileId
  [[nodiscard]] const std::vector<TileBudget>& tiles() const { return tiles_; }

  // ------------------------------------------------------ interconnect

  /// The NoC topology of the tracked architecture.
  /// @return the topology
  /// @throws Error when the architecture has no NoC interconnect
  [[nodiscard]] const NocTopology& nocTopology() const;

  /// Reserve SDM wires on every link of a route for `client`.
  /// @param route the links of the connection's XY route
  /// @param wires wires to claim on each link
  /// @param client the reserving client id (not kNoClient)
  /// @return true on success; false (and nothing committed) when any
  ///   link lacks capacity or is failed
  [[nodiscard]] bool reserveNocWires(const std::vector<LinkId>& route, std::uint32_t wires,
                                     std::uint32_t client);

  /// SDM wires committed on a link.
  /// @param link the link to query
  /// @return the committed wire count
  [[nodiscard]] std::uint32_t usedWires(LinkId link) const;

  /// Claim a dedicated FSL link for `client`. Links come from a capped
  /// free-list: released indices are reused (lowest first) before new
  /// ones are minted, so indices stay dense under admit/release churn
  /// and match the generated point-to-point hardware. Failed indices
  /// are never handed out; while failed-and-free they reduce the
  /// effective capacity.
  /// @param client the claiming client id (not kNoClient)
  /// @return the claimed link index
  /// @throws Error when no healthy link below the architecture's FSL
  ///   link capacity (fslLinkCapacity()) remains
  [[nodiscard]] std::uint32_t allocateFslLink(std::uint32_t client);

  /// FSL links currently held by clients (live links, not the
  /// high-water mark: released links do not count).
  /// @return the number of live links
  [[nodiscard]] std::uint32_t fslLinksUsed() const {
    return nextFslIndex_ - static_cast<std::uint32_t>(freeFslLinks_.size());
  }

  /// The architecture's FSL link capacity: FslConfig::maxLinks, or —
  /// when that is 0 — kFslPortsPerTile point-to-point links per tile
  /// (the MicroBlaze FSL port limit).
  /// @return the maximum number of simultaneously live FSL links
  [[nodiscard]] std::uint32_t fslLinkCapacity() const;

  /// FSL links allocateFslLink could still hand out: the capacity minus
  /// live links minus failed-and-free indices (dead capacity until
  /// repaired).
  /// @return the number of remaining allocatable links
  [[nodiscard]] std::uint32_t fslLinksAvailable() const;

  // ------------------------------------------------------------ faults

  /// The budget's current failure state. Failing a resource never
  /// touches reservations or ledgers — it only marks the resource, so
  /// a stranded client's provenance survives for evacuation and repair
  /// restores capacity bit-identically (fail -> repair is a no-op on
  /// every accounting field).
  /// @return the fault state (empty = healthy)
  [[nodiscard]] const FaultState& faults() const { return faults_; }

  /// Is a tile failed? Failed tiles report zero free slots and memory,
  /// and commitTile / reserveTileSlots reject them outright.
  /// @param tile the tile to query
  /// @return true when the tile is currently failed
  [[nodiscard]] bool tileFailed(TileId tile) const { return faults_.tileFailed(tile); }

  /// Fail a tile: its capacity drops to zero for new work (existing
  /// reservations stay in the ledgers — callers evacuate stranded
  /// clients via release()).
  /// @param tile the tile to fail
  /// @return the clients currently holding reservations on the tile
  ///   (ascending id order) — exactly who is stranded by this failure
  /// @throws Error when the tile is already failed
  std::vector<std::uint32_t> failTile(TileId tile);

  /// Repair a failed tile: capacity returns bit-identically (the fault
  /// mark is the only state failTile touched).
  /// @param tile the tile to repair
  /// @throws Error when the tile is not failed
  void repairTile(TileId tile);

  /// Fail a directed NoC mesh link: reserveNocWires rejects any route
  /// crossing it until repaired (existing wire reservations stay).
  /// @param link the link to fail
  /// @return the clients currently holding SDM wires on the link
  ///   (ascending id order)
  /// @throws Error when the platform has no NoC or the link is already
  ///   failed
  std::vector<std::uint32_t> failNocLink(LinkId link);

  /// Repair a failed NoC link.
  /// @param link the link to repair
  /// @throws Error when the link is not failed
  void repairNocLink(LinkId link);

  /// Fail an FSL link index: allocateFslLink never hands it out until
  /// repaired, and the effective link capacity shrinks by one while the
  /// index is failed-and-free.
  /// @param index the FSL link index to fail
  /// @return the client currently holding the link, if any (at most one
  ///   — FSL links are point-to-point)
  /// @throws Error when the platform has no FSL interconnect, the index
  ///   is out of range, or it is already failed
  std::vector<std::uint32_t> failFslLink(std::uint32_t index);

  /// Repair a failed FSL link index.
  /// @param index the index to repair
  /// @throws Error when the index is not failed
  void repairFslLink(std::uint32_t index);

  /// Degrade a tile's TDM wheel to `wheel` (fewer slots and/or a
  /// different switch overhead than the tile was built with). Capacity
  /// and WCET-inflation queries (tileSlotCapacity,
  /// tileWheelOverheadCycles) read the degraded wheel until
  /// repairTileWheel. Guarantees analyzed on the BUILT wheel stay valid
  /// on a smaller one (holding k of S' < S slots is a larger processor
  /// share), but reservations may no longer fit: when the committed
  /// slots exceed the degraded capacity, every slot-holding client of
  /// the tile is stranded.
  /// @param tile the tile to degrade
  /// @param wheel the effective wheel (validated against the built one)
  /// @return the stranded clients (ascending id order; empty when every
  ///   reservation still fits the degraded wheel)
  /// @throws ModelError when the degraded wheel is invalid
  /// @throws Error when the tile is already degraded
  std::vector<std::uint32_t> degradeTileWheel(TileId tile, const TdmConfig& wheel);

  /// Restore a degraded tile's built TDM wheel.
  /// @param tile the tile to restore
  /// @throws Error when the tile is not degraded
  void repairTileWheel(TileId tile);

  /// The effective per-firing wheel-switch overhead of a tile: the
  /// degraded wheel's when degraded, the built wheel's otherwise.
  /// @param tile the tile to query
  /// @return TdmConfig::wheelOverheadCycles of the effective wheel
  [[nodiscard]] std::uint32_t tileWheelOverheadCycles(TileId tile) const;

  /// Every client holding a reservation on any currently failed or
  /// over-committed degraded resource — exactly the set an admission
  /// controller must evacuate.
  /// @return stranded client ids, ascending, each listed once
  [[nodiscard]] std::vector<std::uint32_t> strandedClients() const;

  /// FSL link indices currently held by clients, ascending.
  /// @return every live index across all ledgers
  [[nodiscard]] std::vector<std::uint32_t> liveFslLinks() const;

  // ------------------------------------------------- release / equality

  /// The committed reservations of one client, exactly as release()
  /// would return them.
  /// @param client the client to look up
  /// @return the ledger, or null when the client holds nothing
  [[nodiscard]] const ClientLedger* ledger(std::uint32_t client) const;

  /// Tear down every reservation `client` holds: tile load/memory goes
  /// back to the residual (the platform baseline stays), TDM slots
  /// return to their wheels, SDM wires return to their links, and FSL
  /// links return to the free-list. After all clients of a budget are
  /// released, the budget equals a freshly constructed one with the
  /// same baseline, field for field.
  /// @param client the departing client id
  /// @throws Error when the client holds no reservations (a
  ///   double-release or unknown-client bug in the caller)
  void release(std::uint32_t client);

  /// Field-for-field equality: same architecture, same per-tile
  /// reservations and ownership, same per-link wires, same FSL
  /// free-list state, same client ledgers, same fault state. This is
  /// the pristine-restoration check of the admission controller (a
  /// budget with an outstanding failure is NOT pristine until
  /// repaired).
  /// @param other the budget to compare against
  /// @return true when every field matches
  [[nodiscard]] bool operator==(const ResourceBudget& other) const;

 private:
  const Architecture* arch_ = nullptr;
  std::vector<TileBudget> tiles_;
  std::optional<NocTopology> topology_;
  std::vector<std::uint32_t> usedWires_;  // per NoC link
  /// High-water mark of minted FSL indices; indices < nextFslIndex_ not
  /// on the free-list are live.
  std::uint32_t nextFslIndex_ = 0;
  /// Released FSL indices, kept sorted ascending; allocation pops the
  /// lowest. release() re-normalizes against nextFslIndex_ so a fully
  /// torn-down budget is bit-identical to a fresh one.
  std::vector<std::uint32_t> freeFslLinks_;
  /// Per-client provenance; empty once every client released.
  std::map<std::uint32_t, ClientLedger> ledgers_;
  /// Currently failed/degraded resources; empty on a healthy platform.
  /// Fail/repair touch ONLY this member, which is what makes
  /// fail -> repair -> drain bit-identical to pristine.
  FaultState faults_;
};

}  // namespace mamps::platform
