// FPGA area model (Virtex-6 slice counts).
//
// The paper reports only one area number: adding flow control to the
// SDM NoC of [17] cost approximately 12% more slices (Section 5.3.1).
// The per-component constants below are ballpark figures for Virtex-6
// soft cores; the *relative* flow-control overhead is the calibrated
// quantity, reproduced by bench_noc_area.
#pragma once

#include <cstdint>

#include "platform/architecture.hpp"

namespace mamps::platform {

/// Per-component slice constants of the area model; override members to
/// recalibrate for a different device family.
struct AreaModel {
  // Tiles.
  std::uint32_t microblazeSlices = 1400;   ///< Microblaze soft core
  std::uint32_t peripheralSlices = 600;    ///< UART/timer/IO block (master tile)
  std::uint32_t commAssistSlices = 800;    ///< CA of [13]
  std::uint32_t networkInterfaceSlices = 150;  ///< standardized NI per tile
  std::uint32_t hardwareIpSlices = 500;    ///< placeholder for an IP actor
  /// Per extra TDM slot beyond the first: slot context registers plus
  /// the wheel scheduler's compare/rotate logic. An exclusive (1-slot)
  /// tile pays nothing, keeping pre-TDM area numbers unchanged.
  std::uint32_t tdmSlotSlices = 40;

  // Interconnect.
  std::uint32_t fslLinkSlices = 50;            ///< one Xilinx FSL
  std::uint32_t nocRouterBaseSlices = 260;     ///< SDM router without flow control
  std::uint32_t nocRouterPerWireSlices = 5;    ///< per SDM wire switching
  /// Fraction of the router area added by the MAMPS flow-control
  /// extension; the paper measured "approximately 12% more slices".
  double flowControlOverhead = 0.12;
};

/// Slices of one tile (PE + NI + optional peripherals/CA, plus the TDM
/// wheel scheduler on shared software tiles); memories map to BRAM,
/// not slices.
/// @param tile the tile to price
/// @param model the slice constants
/// @return the tile's slice count
[[nodiscard]] std::uint32_t tileSlices(const Tile& tile, const AreaModel& model = {});

/// Slices of one NoC router with the given configuration.
/// @param config the NoC configuration (wires per link, flow control)
/// @param model the slice constants
/// @return the router's slice count
[[nodiscard]] std::uint32_t nocRouterSlices(const NocConfig& config, const AreaModel& model = {});

/// Slices of the whole interconnect: `fslLinkCount` FSLs, or one router
/// per mesh position.
/// @param arch the architecture whose interconnect to price
/// @param fslLinkCount live FSL links (ignored for a NoC)
/// @param model the slice constants
/// @return the interconnect's slice count
[[nodiscard]] std::uint32_t interconnectSlices(const Architecture& arch,
                                               std::uint32_t fslLinkCount,
                                               const AreaModel& model = {});

/// Slices of the full platform (tiles + interconnect).
/// @param arch the architecture to price
/// @param fslLinkCount live FSL links (ignored for a NoC)
/// @param model the slice constants
/// @return the platform's total slice count
[[nodiscard]] std::uint32_t platformSlices(const Architecture& arch, std::uint32_t fslLinkCount,
                                           const AreaModel& model = {});

}  // namespace mamps::platform
