// Quickstart: the example application of Figure 2 through the whole
// flow — model the graph, generate an architecture from the template,
// map it with the SDF3 step, inspect the throughput guarantee, generate
// the MAMPS platform project, and validate the guarantee on the
// platform simulator.
#include <cstdio>

#include "mamps/generator.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "sdf/io.hpp"
#include "sim/platform_sim.hpp"

using namespace mamps;

int main() {
  // --- 1. Application model (Figure 2 + Listing 1) ----------------------
  sdf::Graph g("figure2");
  const auto a = g.addActor("A");
  const auto b = g.addActor("B");
  const auto c = g.addActor("C");
  g.connect(a, 2, b, 1, 0, "a2b");
  g.connect(a, 1, c, 1, 0, "a2c");
  g.connect(b, 1, c, 2, 0, "b2c");
  g.connect(a, 1, a, 1, 1, "aState");  // the static variable of Listing 1

  sdf::ApplicationModel app(std::move(g));
  const auto addImpl = [&app](sdf::ActorId actor, const char* fn, std::uint64_t wcet,
                              std::vector<sdf::ChannelId> args) {
    sdf::ActorImplementation impl;
    impl.functionName = fn;
    impl.initFunctionName = std::string(fn) + "_init";
    impl.processorType = "microblaze";
    impl.wcetCycles = wcet;
    impl.instrMemBytes = 4096;
    impl.dataMemBytes = 1024;
    impl.argumentChannels = std::move(args);
    app.addImplementation(actor, impl);
  };
  addImpl(a, "actor_A", 900, {0, 1});   // toB, toC as in Listing 1
  addImpl(b, "actor_B", 1400, {0, 2});
  addImpl(c, "actor_C", 700, {1, 2});
  app.setThroughputConstraint(Rational(1, 4000));  // >= 1 iteration / 4000 cycles

  std::printf("Application: %s (%zu actors, %zu channels)\n", app.graph().name().c_str(),
              app.graph().actorCount(), app.graph().channelCount());
  std::printf("%s\n", sdf::applicationModelToXml(app).c_str());

  // --- 2. Architecture from the template --------------------------------
  platform::TemplateRequest request;
  request.tileCount = 2;
  request.interconnect = platform::InterconnectKind::Fsl;
  const platform::Architecture arch = platform::generateFromTemplate(request);
  std::printf("Architecture: %s with %zu tiles\n\n", arch.name().c_str(), arch.tileCount());

  // --- 3. SDF3 mapping step ----------------------------------------------
  const auto result = mapping::mapApplication(app, arch, {});
  if (!result) {
    std::printf("mapping failed\n");
    return 1;
  }
  std::printf("Guaranteed throughput: %s iterations/cycle (%.2f iterations per kcycle)\n",
              result->throughput.iterationsPerCycle.toString().c_str(),
              result->throughput.iterationsPerCycle.toDouble() * 1e3);
  std::printf("Analysis engine: %s (binding-aware graphs take the MCR fast path)\n",
              analysis::throughputEngineName(result->throughput.engine));
  std::printf("Constraint met: %s\n\n", result->meetsConstraint ? "yes" : "NO");

  // --- 4. MAMPS platform generation --------------------------------------
  const gen::PlatformProject project = gen::generatePlatform(app, arch, result->mapping);
  std::printf("Generated %zu artifacts in %.3f ms:\n", project.files.size(),
              project.generationTime.count() * 1e3);
  for (const auto& [path, content] : project.files) {
    std::printf("  %-28s %6zu bytes\n", path.c_str(), content.size());
  }
  std::printf("\n%s\n", project.files.at("MANIFEST.txt").c_str());

  // --- 5. Validate on the simulated platform -----------------------------
  sim::PlatformSim simulator(app, arch, result->mapping);
  const sim::SimResult simResult = simulator.run();
  std::printf("Simulated throughput: %.6f iterations per kcycle (bound %.6f)\n",
              simResult.iterationsPerCycle() * 1e3,
              result->throughput.iterationsPerCycle.toDouble() * 1e3);
  std::printf("Guarantee holds: %s\n",
              simResult.iterationsPerCycle() >=
                      result->throughput.iterationsPerCycle.toDouble() * (1 - 1e-9)
                  ? "yes"
                  : "NO");
  return 0;
}
