// Fast design-space exploration (the use case motivating the flow,
// Section 7): sweep tile count and interconnect for the MJPEG decoder
// and report guaranteed throughput, area, and memory per design point —
// all derived analytically in seconds, no synthesis required. The sweep
// runs through mapping::exploreDesignSpace, the parallel, incremental
// DSE engine (application-level precomputation shared across points,
// buffer-growth rounds re-analyzed incrementally).
#include <cstdio>

#include "apps/mjpeg/actors.hpp"
#include "apps/mjpeg/testdata.hpp"
#include "mamps/memory_map.hpp"
#include "mapping/dse.hpp"
#include "platform/arch_template.hpp"
#include "platform/area.hpp"

using namespace mamps;
using namespace mamps::mjpeg;

int main() {
  const auto calibration = encodeSequence(makeSyntheticSequence(2, 64, 48), {});
  const MjpegApp app = buildMjpegApp(calibrateWcets(calibration));

  std::vector<mapping::DesignPoint> points;
  for (const auto kind :
       {platform::InterconnectKind::Fsl, platform::InterconnectKind::NocMesh}) {
    for (std::uint32_t tiles = 1; tiles <= 5; ++tiles) {
      mapping::DesignPoint point;
      point.platform.tileCount = tiles;
      point.platform.interconnect = kind;
      points.push_back(point);
    }
  }
  const mapping::DseResult sweep = mapping::exploreDesignSpace(app.model, points);

  std::printf("Design-space exploration: MJPEG decoder\n");
  std::printf("%-6s %-8s %10s %12s %10s %12s\n", "tiles", "network", "MCUs/Mcyc", "slices",
              "max kB/tile", "engine");
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const mapping::DesignPointResult& point = sweep.points[i];
    const auto kind = points[i].platform.interconnect;
    const std::uint32_t tiles = points[i].platform.tileCount;
    if (!point.feasible() || !point.mapping->throughput.ok()) {
      std::printf("%-6u %-8s %10s\n", tiles,
                  std::string(platform::interconnectKindName(kind)).c_str(), "infeasible");
      continue;
    }
    const mapping::MappingResult& result = *point.mapping;
    const platform::Architecture arch = platform::generateFromTemplate(points[i].platform);
    const auto memory = gen::computeMemoryMaps(app.model, arch, result.mapping);
    std::uint32_t maxKb = 0;
    for (const auto& m : memory) {
      maxKb = std::max(maxKb, (m.instrBytesRounded() + m.dataBytesRounded()) / 1024);
    }
    const std::uint32_t slices = platform::platformSlices(arch, result.mapping.fslLinkCount());
    std::printf("%-6u %-8s %10.3f %12u %10u %12s\n", tiles,
                std::string(platform::interconnectKindName(kind)).c_str(),
                result.throughput.iterationsPerCycle.toDouble() * 1e6, slices, maxKb,
                analysis::throughputEngineName(result.throughput.engine));
  }
  std::printf("\nExplored %zu design points (%zu feasible) in %.2f s, mean %.1f ms\n",
              sweep.points.size(), sweep.feasibleCount(), sweep.totalSeconds,
              sweep.meanPointSeconds() * 1e3);
  std::printf("per point (Table 1: mapping is the 1-minute step of the flow;\n");
  std::printf("everything here is analytic). Throughput verdicts come from\n");
  std::printf("analysis::computeThroughput, which routes binding-aware graphs to\n");
  std::printf("the polynomial MCR fast path; buffer-growth rounds are re-analyzed\n");
  std::printf("incrementally (docs/throughput.md).\n");
  return 0;
}
