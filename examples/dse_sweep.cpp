// Fast design-space exploration (the use case motivating the flow,
// Section 7): sweep tile count and interconnect for the MJPEG decoder
// and report guaranteed throughput, area, and memory per design point —
// all derived analytically in seconds, no synthesis required.
#include <chrono>
#include <cstdio>

#include "apps/mjpeg/actors.hpp"
#include "apps/mjpeg/testdata.hpp"
#include "mamps/memory_map.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "platform/area.hpp"

using namespace mamps;
using namespace mamps::mjpeg;

int main() {
  const auto calibration = encodeSequence(makeSyntheticSequence(2, 64, 48), {});
  const MjpegApp app = buildMjpegApp(calibrateWcets(calibration));

  std::printf("Design-space exploration: MJPEG decoder\n");
  std::printf("%-6s %-8s %10s %12s %10s %12s\n", "tiles", "network", "MCUs/Mcyc", "slices",
              "max kB/tile", "engine");
  const auto start = std::chrono::steady_clock::now();

  for (const auto kind :
       {platform::InterconnectKind::Fsl, platform::InterconnectKind::NocMesh}) {
    for (std::uint32_t tiles = 1; tiles <= 5; ++tiles) {
      platform::TemplateRequest request;
      request.tileCount = tiles;
      request.interconnect = kind;
      const platform::Architecture arch = platform::generateFromTemplate(request);
      const auto result = mapping::mapApplication(app.model, arch, {});
      if (!result || !result->throughput.ok()) {
        std::printf("%-6u %-8s %10s\n", tiles,
                    std::string(platform::interconnectKindName(kind)).c_str(), "infeasible");
        continue;
      }
      const auto memory = gen::computeMemoryMaps(app.model, arch, result->mapping);
      std::uint32_t maxKb = 0;
      for (const auto& m : memory) {
        maxKb = std::max(maxKb, (m.instrBytesRounded() + m.dataBytesRounded()) / 1024);
      }
      const std::uint32_t slices =
          platform::platformSlices(arch, result->mapping.fslLinkCount());
      std::printf("%-6u %-8s %10.3f %12u %10u %12s\n", tiles,
                  std::string(platform::interconnectKindName(kind)).c_str(),
                  result->throughput.iterationsPerCycle.toDouble() * 1e6, slices, maxKb,
                  analysis::throughputEngineName(result->throughput.engine));
    }
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  std::printf("\nExplored 10 design points in %.2f s (Table 1: mapping is the\n",
              elapsed.count());
  std::printf("1-minute step of the flow; everything else here is analytic).\n");
  std::printf("Throughput verdicts come from analysis::computeThroughput, which\n");
  std::printf("routes binding-aware graphs to the polynomial MCR fast path and\n");
  std::printf("falls back to the state-space engine when the encoding is inexact.\n");
  return 0;
}
