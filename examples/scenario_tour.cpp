// A tour of the multi-application scenario suite: every built-in
// application is pushed through the complete flow (bind, schedule,
// grow buffers, guaranteed-throughput analysis) on each of its
// recommended platform templates, then swept through the DSE engine.
// The tour closes with the co-mapping use cases: whole workloads of
// applications mapped together onto ONE shared platform through
// mapping::mapWorkload, each on the residual of what the previous
// applications committed. Run with a scenario name (e.g.
// `scenario_tour cd2dat`) to tour just that scenario.
#include <cstdio>

#include "apps/suite/suite.hpp"
#include "apps/suite/usecases.hpp"
#include "mapping/dse.hpp"
#include "platform/arch_template.hpp"
#include "sdf/repetition_vector.hpp"

using namespace mamps;

/// The co-mapping leg: every built-in use case's workload is co-mapped
/// onto its shared platform; per application we print the guarantee on
/// the residual budget, then the combined per-tile accounting.
void tourUseCases() {
  std::printf("=== co-mapping use cases ===\n");
  for (const suite::UseCase& uc : suite::builtinUseCases()) {
    std::printf("--- %s ---\n%s\n", uc.name.c_str(), uc.description.c_str());
    const mapping::WorkloadResult workload = suite::mapUseCase(uc);
    for (std::size_t i = 0; i < uc.apps.size(); ++i) {
      if (!workload.apps[i]) {
        std::printf("  %-16s infeasible on the residual budget\n", uc.apps[i].name.c_str());
        continue;
      }
      const auto& result = *workload.apps[i];
      std::printf("  %-16s throughput %lld/%lld (constraint %lld/%lld)%s\n",
                  uc.apps[i].name.c_str(),
                  static_cast<long long>(result.throughput.iterationsPerCycle.num()),
                  static_cast<long long>(result.throughput.iterationsPerCycle.den()),
                  static_cast<long long>(uc.apps[i].model.throughputConstraint().num()),
                  static_cast<long long>(uc.apps[i].model.throughputConstraint().den()),
                  result.meetsConstraint ? "" : "  [constraint missed]");
    }
    std::printf("  shared platform %ut_%s: per-tile load (cycles/iteration):",
                uc.platform.totalTiles(),
                std::string(platform::interconnectKindName(uc.platform.interconnect)).c_str());
    for (const mapping::TileUsage& usage : workload.usage) {
      std::printf(" %llu", static_cast<unsigned long long>(usage.loadCycles));
    }
    std::printf("\n\n");
  }
}

int main(int argc, char** argv) {
  std::vector<suite::Scenario> scenarios;
  if (argc > 1) {
    scenarios.push_back(suite::findScenario(argv[1]));
  } else {
    scenarios = suite::builtinScenarios();
  }

  for (const suite::Scenario& s : scenarios) {
    const auto q = *sdf::computeRepetitionVector(s.model.graph());
    std::uint64_t firings = 0;
    for (const auto v : q) {
      firings += v;
    }
    std::printf("=== %s ===\n%s\n", s.name.c_str(), s.description.c_str());
    std::printf("%zu actors, %zu channels, %llu firings per iteration, constraint %lld/%lld\n",
                s.model.graph().actorCount(), s.model.graph().channelCount(),
                static_cast<unsigned long long>(firings),
                static_cast<long long>(s.model.throughputConstraint().num()),
                static_cast<long long>(s.model.throughputConstraint().den()));

    // One full flow per recommended platform.
    for (const platform::TemplateRequest& request : s.platforms) {
      const auto arch = platform::generateFromTemplate(request);
      const auto result = mapping::mapApplication(s.model, arch, s.options);
      if (!result) {
        std::printf("  %-22s infeasible\n", arch.name().c_str());
        continue;
      }
      std::printf("  %-22s throughput %lld/%lld (%s, %llu HSDF copies)%s\n",
                  arch.name().c_str(),
                  static_cast<long long>(result->throughput.iterationsPerCycle.num()),
                  static_cast<long long>(result->throughput.iterationsPerCycle.den()),
                  analysis::throughputEngineName(result->throughput.engine),
                  static_cast<unsigned long long>(result->throughput.hsdfActors),
                  result->meetsConstraint ? "" : "  [constraint missed]");
    }

    // The same platforms as a DSE sweep (adds the CommAssist variants).
    const auto points = suite::scenarioDesignPoints(s);
    const mapping::DseResult sweep = mapping::exploreDesignSpace(s.model, points, {});
    std::printf("  DSE sweep: %zu points, %zu feasible, %.1f ms/point\n\n", sweep.points.size(),
                sweep.feasibleCount(), sweep.meanPointSeconds() * 1e3);
  }

  if (argc <= 1) {
    tourUseCases();
  }
  return 0;
}
