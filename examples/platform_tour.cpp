// A tour of the MAMPS architecture template (Figure 3): the tile
// variants, the two interconnects, the area model, and the XML
// interchange format of architecture descriptions.
#include <cstdio>

#include "platform/arch_template.hpp"
#include "platform/area.hpp"
#include "platform/io.hpp"
#include "platform/noc_topology.hpp"

using namespace mamps;
using namespace mamps::platform;

int main() {
  // --- Tile variants (Figure 3) -------------------------------------------
  std::printf("Tile variants and their slice areas:\n");
  for (const TileKind kind :
       {TileKind::Master, TileKind::Slave, TileKind::CommAssist, TileKind::HardwareIp}) {
    Tile tile;
    tile.name = std::string(tileKindName(kind));
    tile.kind = kind;
    std::printf("  %-12s %5u slices%s\n", tileKindName(kind).data(), tileSlices(tile),
                tile.hasPeripherals() ? "  (owns the board peripherals)" : "");
  }

  // --- Near-square mesh sizing (Section 5.3.1) ----------------------------
  std::printf("\nNoC mesh sizing (kept close to square to bound latency):\n");
  for (const std::uint32_t n : {2u, 3u, 5u, 6u, 9u, 12u}) {
    const auto [rows, cols] = nearSquareMesh(n);
    std::printf("  %2u tiles -> %u x %u mesh\n", n, rows, cols);
  }

  // --- XY routing demo ------------------------------------------------------
  NocConfig config;
  config.rows = 3;
  config.cols = 3;
  const NocTopology topology(config);
  std::printf("\nXY route from router 0 (0,0) to router 8 (2,2):\n  ");
  for (const LinkId link : topology.xyRoute(0, 8)) {
    std::printf("%u->%u  ", topology.link(link).fromRouter, topology.link(link).toRouter);
  }
  std::printf("\n");

  // --- Flow-control area overhead (Section 5.3.1) --------------------------
  NocConfig withFc = config;
  withFc.flowControl = true;
  NocConfig withoutFc = config;
  withoutFc.flowControl = false;
  std::printf("\nSDM router: %u slices without flow control, %u with (+%.1f%%)\n",
              nocRouterSlices(withoutFc), nocRouterSlices(withFc),
              100.0 * (static_cast<double>(nocRouterSlices(withFc)) /
                           static_cast<double>(nocRouterSlices(withoutFc)) -
                       1.0));

  // --- Architecture XML -----------------------------------------------------
  TemplateRequest request;
  request.tileCount = 4;
  request.interconnect = InterconnectKind::NocMesh;
  const Architecture arch = generateFromTemplate(request);
  std::printf("\nGenerated architecture description:\n%s\n", architectureToXml(arch).c_str());

  // Round-trip through the interchange format.
  const Architecture reparsed = architectureFromString(architectureToXml(arch));
  std::printf("Round-trip through XML: %zu tiles, %s interconnect — ok\n",
              reparsed.tileCount(),
              std::string(interconnectKindName(reparsed.interconnect())).c_str());
  return 0;
}
