// The full case study of Section 6: map the MJPEG decoder (Figure 5)
// onto a 3-tile MAMPS platform, generate the FPGA project artifacts,
// and run the decoder on the platform simulator, verifying the output
// against the golden reference decoder and the throughput against the
// SDF3 guarantee.
#include <cstdio>
#include <cstring>

#include "apps/mjpeg/actors.hpp"
#include "apps/mjpeg/testdata.hpp"
#include "mamps/generator.hpp"
#include "mapping/flow.hpp"
#include "platform/arch_template.hpp"
#include "sim/platform_sim.hpp"

using namespace mamps;
using namespace mamps::mjpeg;

int main(int argc, char** argv) {
  const bool useNoc = argc > 1 && std::strcmp(argv[1], "--noc") == 0;

  // --- 1. Test material ---------------------------------------------------
  const auto frames = makeTestSequence("plasma", 3, 64, 48);
  const auto stream = encodeSequence(frames, {});
  const auto calibration = encodeSequence(makeSyntheticSequence(2, 64, 48), {});
  std::printf("Encoded 3 frames of 64x48 into %zu bytes\n", stream.size());

  // --- 2. Application model with measured WCETs ---------------------------
  const MjpegWcets wcets = calibrateWcets(calibration);
  std::printf("WCETs (cycles): VLD=%llu IQZZ=%llu IDCT=%llu CC=%llu Raster=%llu\n",
              static_cast<unsigned long long>(wcets.vld),
              static_cast<unsigned long long>(wcets.iqzz),
              static_cast<unsigned long long>(wcets.idct),
              static_cast<unsigned long long>(wcets.cc),
              static_cast<unsigned long long>(wcets.raster));
  const MjpegApp app = buildMjpegApp(wcets);

  // --- 3. Architecture + mapping ------------------------------------------
  platform::TemplateRequest request;
  request.tileCount = 3;
  request.interconnect =
      useNoc ? platform::InterconnectKind::NocMesh : platform::InterconnectKind::Fsl;
  const platform::Architecture arch = platform::generateFromTemplate(request);
  const auto result = mapping::mapApplication(app.model, arch, {});
  if (!result) {
    std::printf("mapping failed\n");
    return 1;
  }
  const double bound = result->throughput.iterationsPerCycle.toDouble();
  std::printf("\nInterconnect: %s\n", useNoc ? "SDM NoC" : "FSL");
  std::printf("Guaranteed worst-case throughput: %.4f MCUs per MHz per second\n", bound * 1e6);

  // --- 4. Generate the FPGA project ---------------------------------------
  const gen::PlatformProject project = gen::generatePlatform(app.model, arch, result->mapping);
  project.writeTo("mjpeg_project");
  std::printf("Wrote %zu project artifacts to ./mjpeg_project (%.1f ms)\n",
              project.files.size(), project.generationTime.count() * 1e3);

  // --- 5. Execute on the simulated platform -------------------------------
  sim::PlatformSim simulator(app.model, arch, result->mapping);
  const MjpegBehaviors handles = attachMjpegBehaviors(simulator, app, stream);
  sim::SimOptions options;
  options.warmupIterations = 6;
  options.measureIterations = 48;
  const sim::SimResult simResult = simulator.run(options);
  if (!simResult.ok()) {
    std::printf("simulation failed\n");
    return 1;
  }
  std::printf("Measured throughput:             %.4f MCUs per MHz per second\n",
              simResult.iterationsPerCycle() * 1e6);
  std::printf("Guarantee conservative:          %s\n",
              simResult.iterationsPerCycle() >= bound * (1 - 1e-9) ? "yes" : "NO");

  // --- 6. Functional verification -----------------------------------------
  const auto reference = referenceDecode(stream);
  const auto& decoded = handles.raster->frames();
  std::size_t verified = 0;
  for (std::size_t f = 0; f < decoded.size() && f < reference.size(); ++f) {
    if (decoded[f].rgb == reference[f % reference.size()].rgb) {
      ++verified;
    }
  }
  std::printf("Frames decoded on platform: %zu, byte-identical to reference: %zu\n",
              decoded.size(), verified);
  return verified == 0 ? 1 : 0;
}
